// Command benchjson runs the repository benchmarks and records them as a
// dated JSON snapshot, giving the repo a perf trajectory it can regress
// against.
//
// Usage:
//
//	benchjson                         # run BenchmarkObserve, write BENCH_<date>.json
//	benchjson -bench . -benchtime 1x  # run every benchmark (figures included)
//	benchjson -parse out.txt          # convert existing `go test -bench` output
//	benchjson -prev old.json          # embed a prior snapshot for side-by-side
//	benchjson -gate BENCH_x.json      # exit 1 if Observe ns/op regressed >20%
//	benchjson -compare old.json new.json  # per-benchmark deltas, no run
//
// The JSON records ns/op, B/op, allocs/op and every custom b.ReportMetric
// value per benchmark, plus the machine header (goos/goarch/cpu, GOMAXPROCS,
// NumCPU, git commit) the numbers were taken on. -gate compares the current
// run against the "benchmarks" section of a committed snapshot and fails on
// regression — lower-is-better ns/op for the -gate-match prefixes, plus
// higher-is-better tuples/s for the -gate-throughput prefix — so `make
// perf-gate` can hold the line established by the baseline. The same gate run
// also checks three intra-run contracts: instrumented benchmarks stay within
// -instrumented-threshold of their uninstrumented baseline, the block
// path's ns/row metric undercuts the sequential ns/op at every d ≥
// -gate-block-min-dim point, and the TCP wire transport's tuples/s reaches
// -gate-wire-ratio of the in-process batched baseline measured in the same
// run (skipped with a note when a scoped -bench regexp measured only one
// side).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the full dated record benchjson emits.
type Snapshot struct {
	Date       string  `json:"date"`
	Label      string  `json:"label,omitempty"`
	GoVersion  string  `json:"go_version,omitempty"`
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"numcpu,omitempty"`
	Commit     string  `json:"commit,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
	// Previous optionally embeds the snapshot this one is measured against,
	// so a single committed file shows the before/after pair.
	Previous *Snapshot `json:"previous,omitempty"`
}

func main() {
	bench := flag.String("bench", "Observe", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "2s", "go test -benchtime value")
	pkg := flag.String("pkg", ".", "package to benchmark")
	parse := flag.String("parse", "", "parse an existing `go test -bench` output file instead of running")
	prev := flag.String("prev", "", "JSON snapshot to embed as the previous baseline")
	gate := flag.String("gate", "", "JSON baseline to gate against (no file is written)")
	gateMatch := flag.String("gate-match", "Observe/,ObserveBlock/", "comma-separated benchmark name prefixes the ns/op gate checks")
	gateThroughput := flag.String("gate-throughput", "PipelineThroughput/,WireThroughput", "comma-separated benchmark name prefixes whose tuples/s metric is gated higher-is-better")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional regression for -gate")
	gateInstr := flag.String("gate-instrumented", "ObserveInstrumented/", "current-run prefix gated against the gate-instrumented-base baseline at the instrumented threshold ('' disables)")
	gateInstrBase := flag.String("gate-instrumented-base", "Observe/", "baseline prefix the instrumented benchmarks are compared to")
	instrThreshold := flag.Float64("instrumented-threshold", 0.05, "allowed fractional overhead of instrumented vs uninstrumented hot path")
	gateBlock := flag.String("gate-block", "ObserveBlock/", "current-run prefix whose ns/row metric must beat the gate-block-base ns/op at the same d-point ('' disables)")
	gateBlockBase := flag.String("gate-block-base", "Observe/", "per-observation benchmark prefix the block path is compared against")
	gateBlockMinDim := flag.Int("gate-block-min-dim", 400, "smallest d-<dim> point the block-rate gate applies to")
	gateWire := flag.String("gate-wire", "WireThroughput", "current-run benchmark whose tuples/s must reach gate-wire-ratio of the gate-wire-base rate ('' disables)")
	gateWireBase := flag.String("gate-wire-base", "PipelineThroughput/batched-64", "same-run in-process benchmark the wire transport is measured against")
	gateWireRatio := flag.Float64("gate-wire-ratio", 0.90, "minimum wire/in-process tuples/s ratio for -gate-wire")
	samples := flag.Int("samples", 1, "benchmark passes to run; per-benchmark medians are recorded (noise robustness)")
	label := flag.String("label", "", "free-form label stored in the snapshot")
	out := flag.String("o", "", "output path (default BENCH_<date>.json; - for stdout)")
	compare := flag.Bool("compare", false, "compare two snapshot files given as positional args; no benchmarks run")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare wants exactly two snapshot paths, got %d", flag.NArg()))
		}
		oldSnap, err := readSnapshot(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		newSnap, err := readSnapshot(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		compareSnapshots(oldSnap, newSnap, os.Stdout)
		return
	}

	var snap *Snapshot
	if *parse != "" {
		raw, err := os.ReadFile(*parse)
		if err != nil {
			fatal(err)
		}
		snap, err = parseBenchOutput(raw)
		if err != nil {
			fatal(err)
		}
	} else {
		if *samples < 1 {
			*samples = 1
		}
		runs := make([]*Snapshot, 0, *samples)
		for i := 0; i < *samples; i++ {
			if *samples > 1 {
				fmt.Fprintf(os.Stderr, "benchjson: sample %d/%d\n", i+1, *samples)
			}
			raw, err := runBench(*pkg, *bench, *benchtime)
			if err != nil {
				fatal(err)
			}
			s, err := parseBenchOutput(raw)
			if err != nil {
				fatal(err)
			}
			runs = append(runs, s)
		}
		snap = medianSnapshots(runs)
	}
	snap.Date = time.Now().Format("2006-01-02")
	snap.Label = *label
	snap.GoVersion = runtime.Version()
	snap.NumCPU = runtime.NumCPU()
	snap.Commit = gitCommit()

	if *gate != "" {
		base, err := readSnapshot(*gate)
		if err != nil {
			fatal(err)
		}
		if err := gateAgainst(snap, base, *gateMatch, *gateThroughput, *threshold, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if *gateInstr != "" {
			// Intra-run: the uninstrumented reference points come from this
			// very run, so the comparison isolates the instrumentation
			// overhead from whatever the machine is doing today — a globally
			// slow day shifts both sides equally and cancels out.
			if err := gateInstrumented(snap, snap, *gateInstr, *gateInstrBase, *instrThreshold, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
		}
		if *gateBlock != "" {
			if err := gateBlockRate(snap, *gateBlock, *gateBlockBase, *gateBlockMinDim, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
		}
		if *gateWire != "" {
			if err := gateWireVsInProcess(snap, *gateWire, *gateWireBase, *gateWireRatio, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	if *prev != "" {
		base, err := readSnapshot(*prev)
		if err != nil {
			fatal(err)
		}
		base.Previous = nil // keep the chain one link deep
		snap.Previous = base
	}

	path := *out
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if path == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

func runBench(pkg, bench, benchtime string) ([]byte, error) {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-benchmem", "-benchtime", benchtime, pkg}
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test: %w", err)
	}
	return buf.Bytes(), nil
}

// medianSnapshots folds several benchmark passes into one snapshot holding
// the per-field median of every benchmark all passes share — the defense
// against co-tenant noise on shared hardware, where any single pass can
// swing tens of percent. Machine metadata comes from the first pass.
func medianSnapshots(runs []*Snapshot) *Snapshot {
	if len(runs) == 1 {
		return runs[0]
	}
	out := *runs[0]
	out.Benchmarks = make([]Bench, 0, len(runs[0].Benchmarks))
	for _, first := range runs[0].Benchmarks {
		vals := map[string][]float64{}
		var iters int64
		complete := true
		for _, r := range runs {
			var found *Bench
			for i := range r.Benchmarks {
				if r.Benchmarks[i].Name == first.Name {
					found = &r.Benchmarks[i]
					break
				}
			}
			if found == nil {
				complete = false
				break
			}
			iters += found.Iterations
			vals["ns"] = append(vals["ns"], found.NsPerOp)
			vals["bytes"] = append(vals["bytes"], found.BytesPerOp)
			vals["allocs"] = append(vals["allocs"], found.AllocsPerOp)
			for unit, v := range found.Metrics {
				vals["m:"+unit] = append(vals["m:"+unit], v)
			}
		}
		if !complete {
			continue
		}
		b := Bench{Name: first.Name, Iterations: iters}
		b.NsPerOp = median(vals["ns"])
		b.BytesPerOp = median(vals["bytes"])
		b.AllocsPerOp = median(vals["allocs"])
		for unit, vs := range vals {
			if strings.HasPrefix(unit, "m:") && len(vs) == len(runs) {
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[strings.TrimPrefix(unit, "m:")] = median(vs)
			}
		}
		out.Benchmarks = append(out.Benchmarks, b)
	}
	return &out
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// gitCommit returns the short HEAD hash, best effort: snapshots taken outside
// a git checkout (or without git installed) simply omit the field.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func readSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// benchLine matches `BenchmarkName-8   123   456 ns/op   ...` result lines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseBenchOutput converts `go test -bench -benchmem` text into a Snapshot.
// The trailing -N GOMAXPROCS suffix is stripped from names so snapshots
// taken at different parallelism settings still align by benchmark.
func parseBenchOutput(raw []byte) (*Snapshot, error) {
	snap := &Snapshot{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Bench{Name: strings.TrimPrefix(m[1], "Benchmark")}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	stripGomaxSuffix(snap.Benchmarks)
	return snap, nil
}

// gomaxSuffix is the `-N` the testing package appends to benchmark names
// when GOMAXPROCS > 1.
var gomaxSuffix = regexp.MustCompile(`-(\d+)$`)

// stripGomaxSuffix removes the GOMAXPROCS decoration so snapshots taken at
// different parallelism settings align by name. Because sub-benchmark names
// like Observe/d-400 legitimately end in `-N`, the suffix is stripped only
// when every result line carries the same trailing number — which is exactly
// how the testing package applies it (uniformly, and never at GOMAXPROCS=1).
func stripGomaxSuffix(bs []Bench) {
	if len(bs) < 2 {
		return
	}
	procs := ""
	for _, b := range bs {
		m := gomaxSuffix.FindStringSubmatch(b.Name)
		if m == nil {
			return
		}
		if procs == "" {
			procs = m[1]
		} else if m[1] != procs {
			return
		}
	}
	for i := range bs {
		bs[i].Name = strings.TrimSuffix(bs[i].Name, "-"+procs)
	}
}

// throughputMetric is the custom b.ReportMetric unit the higher-is-better
// gate and the comparison table treat as a rate.
const throughputMetric = "tuples/s"

// gateAgainst fails when any current benchmark matching one of the
// comma-separated prefixes is slower (ns/op) than the baseline's "benchmarks"
// section by more than threshold, when a thrMatch-prefixed baseline entry's
// tuples/s metric dropped by more than threshold, or when a matching baseline
// entry has no current counterpart. Baselines predating the throughput
// benchmarks simply have no thrMatch entries and skip that half of the gate.
// thrMatch is comma-separated like match.
func gateAgainst(cur, base *Snapshot, match, thrMatch string, threshold float64, w io.Writer) error {
	if base.GoVersion != "" && cur.GoVersion != "" && base.GoVersion != cur.GoVersion {
		fmt.Fprintf(w, "note: baseline was recorded on %s, current toolchain is %s; deltas may reflect the compiler, not the code\n",
			base.GoVersion, cur.GoVersion)
	}
	prefixes := strings.Split(match, ",")
	curBy := map[string]Bench{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	checked := 0
	var regressed []string
	for _, b := range base.Benchmarks {
		if !hasAnyPrefix(b.Name, prefixes) || b.NsPerOp <= 0 {
			continue
		}
		now, ok := curBy[b.Name]
		if !ok {
			return fmt.Errorf("baseline benchmark %q missing from current run", b.Name)
		}
		checked++
		ratio := now.NsPerOp/b.NsPerOp - 1
		status := "ok"
		if ratio > threshold {
			status = "REGRESSED"
			regressed = append(regressed, b.Name)
		}
		fmt.Fprintf(w, "%-28s %12.0f → %12.0f ns/op  %+6.1f%%  %s\n",
			b.Name, b.NsPerOp, now.NsPerOp, 100*ratio, status)
	}
	thrPrefixes := strings.Split(thrMatch, ",")
	thrChecked := 0
	for _, b := range base.Benchmarks {
		rate := b.Metrics[throughputMetric]
		if thrMatch == "" || !hasAnyPrefix(b.Name, thrPrefixes) || rate <= 0 {
			continue
		}
		now, ok := curBy[b.Name]
		if !ok {
			return fmt.Errorf("baseline benchmark %q missing from current run", b.Name)
		}
		thrChecked++
		ratio := now.Metrics[throughputMetric]/rate - 1
		status := "ok"
		if ratio < -threshold {
			status = "REGRESSED"
			regressed = append(regressed, b.Name)
		}
		fmt.Fprintf(w, "%-28s %12.0f → %12.0f %s  %+6.1f%%  %s\n",
			b.Name, rate, now.Metrics[throughputMetric], throughputMetric, 100*ratio, status)
	}
	if checked == 0 {
		return fmt.Errorf("baseline has no benchmarks matching %q", match)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %s",
			len(regressed), 100*threshold, strings.Join(regressed, ", "))
	}
	fmt.Fprintf(w, "perf gate passed: %d benchmark(s) within %.0f%% of %s baseline\n",
		checked+thrChecked, 100*threshold, base.Date)
	return nil
}

// gateInstrumented holds the observability subsystem to its "free to leave
// on" contract: every current benchmark named curPrefix+point is compared to
// the *uninstrumented* entry basePrefix+point measured in the same run —
// the instrumentation overhead itself, not run-to-run drift — and fails
// beyond threshold. Any allocation on the instrumented hot path fails
// outright, whatever the timing says.
func gateInstrumented(cur, base *Snapshot, curPrefix, basePrefix string, threshold float64, w io.Writer) error {
	baseBy := map[string]Bench{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	checked := 0
	var failed []string
	for _, b := range cur.Benchmarks {
		if !strings.HasPrefix(b.Name, curPrefix) {
			continue
		}
		point := strings.TrimPrefix(b.Name, curPrefix)
		ref, ok := baseBy[basePrefix+point]
		if !ok || ref.NsPerOp <= 0 {
			return fmt.Errorf("no baseline %q to measure %q overhead against", basePrefix+point, b.Name)
		}
		checked++
		ratio := b.NsPerOp/ref.NsPerOp - 1
		status := "ok"
		if ratio > threshold {
			status = "REGRESSED"
			failed = append(failed, b.Name)
		}
		if b.AllocsPerOp > 0 {
			status = "ALLOCATES"
			failed = append(failed, b.Name)
		}
		fmt.Fprintf(w, "%-28s %12.0f → %12.0f ns/op  %+6.1f%% vs %s  %g allocs/op  %s\n",
			b.Name, ref.NsPerOp, b.NsPerOp, 100*ratio, ref.Name, b.AllocsPerOp, status)
	}
	if checked == 0 {
		return fmt.Errorf("no current benchmarks match the instrumented prefix %q (pass -gate-instrumented '' to skip)", curPrefix)
	}
	if len(failed) > 0 {
		return fmt.Errorf("instrumentation overhead gate failed (> %.0f%% or allocating): %s",
			100*threshold, strings.Join(failed, ", "))
	}
	fmt.Fprintf(w, "instrumentation gate passed: %d benchmark(s) within %.0f%% of the uninstrumented baseline, zero allocs\n",
		checked, 100*threshold)
	return nil
}

// dimSuffix extracts the <dim> from a benchmark point like "d-400".
var dimSuffix = regexp.MustCompile(`^d-(\d+)$`)

// gateBlockRate holds the block-incremental update to its reason for
// existing: within the current run, every blockPrefix benchmark's ns/row
// metric must undercut the basePrefix ns/op at the same d-point once
// d ≥ minDim — the amortization has to actually pay at paper-sized
// dimensionality. The comparison is same-run by construction, so both sides
// share machine conditions and the gate measures the algorithm, not the
// day's co-tenancy.
func gateBlockRate(cur *Snapshot, blockPrefix, basePrefix string, minDim int, w io.Writer) error {
	baseBy := map[string]Bench{}
	for _, b := range cur.Benchmarks {
		if strings.HasPrefix(b.Name, basePrefix) && !strings.HasPrefix(b.Name, blockPrefix) {
			baseBy[strings.TrimPrefix(b.Name, basePrefix)] = b
		}
	}
	checked := 0
	var failed []string
	for _, b := range cur.Benchmarks {
		if !strings.HasPrefix(b.Name, blockPrefix) {
			continue
		}
		point := strings.TrimPrefix(b.Name, blockPrefix)
		m := dimSuffix.FindStringSubmatch(point)
		if m == nil {
			continue
		}
		dim, _ := strconv.Atoi(m[1])
		if dim < minDim {
			continue
		}
		nsRow := b.Metrics["ns/row"]
		if nsRow <= 0 {
			return fmt.Errorf("%s reports no ns/row metric for the block-rate gate", b.Name)
		}
		ref, ok := baseBy[point]
		if !ok || ref.NsPerOp <= 0 {
			return fmt.Errorf("no %s%s in the same run to compare %s against", basePrefix, point, b.Name)
		}
		checked++
		status := "ok"
		if nsRow >= ref.NsPerOp {
			status = "SLOWER"
			failed = append(failed, b.Name)
		}
		fmt.Fprintf(w, "%-28s %12.0f ns/row vs %12.0f ns/op (%s)  %+6.1f%%  %s\n",
			b.Name, nsRow, ref.NsPerOp, ref.Name, 100*(nsRow/ref.NsPerOp-1), status)
	}
	if checked == 0 {
		return fmt.Errorf("no benchmarks match the block-rate gate prefix %q at d >= %d (pass -gate-block '' to skip)", blockPrefix, minDim)
	}
	if len(failed) > 0 {
		return fmt.Errorf("block-rate gate failed (ns/row not below the per-observation ns/op): %s",
			strings.Join(failed, ", "))
	}
	fmt.Fprintf(w, "block-rate gate passed: %d point(s) where the block path's ns/row beats the sequential ns/op\n",
		checked)
	return nil
}

// gateWireVsInProcess holds the TCP transport to its "wire tax" contract:
// within the current run, the wire benchmark's tuples/s must reach minRatio
// of the in-process baseline's tuples/s. Same-run by construction — both
// sides share machine conditions, so the ratio measures the transport, not
// the day's co-tenancy. When either benchmark is absent from the run (a
// scoped -bench regexp) the gate reports itself skipped and passes: it only
// binds runs that actually measured both sides.
func gateWireVsInProcess(cur *Snapshot, wireName, baseName string, minRatio float64, w io.Writer) error {
	var wire, base *Bench
	for i := range cur.Benchmarks {
		switch cur.Benchmarks[i].Name {
		case wireName:
			wire = &cur.Benchmarks[i]
		case baseName:
			base = &cur.Benchmarks[i]
		}
	}
	if wire == nil || base == nil {
		fmt.Fprintf(w, "wire-ratio gate skipped: run lacks %s and/or %s\n", wireName, baseName)
		return nil
	}
	wireRate, baseRate := wire.Metrics[throughputMetric], base.Metrics[throughputMetric]
	if wireRate <= 0 || baseRate <= 0 {
		return fmt.Errorf("wire-ratio gate: %s or %s reports no %s metric", wireName, baseName, throughputMetric)
	}
	ratio := wireRate / baseRate
	status := "ok"
	if ratio < minRatio {
		status = "REGRESSED"
	}
	fmt.Fprintf(w, "%-28s %12.0f vs %12.0f %s (%s)  ratio %.2f (min %.2f)  %s\n",
		wireName, wireRate, baseRate, throughputMetric, baseName, ratio, minRatio, status)
	if ratio < minRatio {
		return fmt.Errorf("wire transport at %.0f%% of in-process throughput, contract is ≥%.0f%%",
			100*ratio, 100*minRatio)
	}
	fmt.Fprintf(w, "wire-ratio gate passed: wire transport at %.0f%% of the in-process baseline\n", 100*ratio)
	return nil
}

func hasAnyPrefix(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if p != "" && strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// compareSnapshots prints a per-benchmark delta table for every benchmark the
// two snapshots share — ns/op first, then every shared custom metric — and
// notes entries present on only one side. Purely informational: unlike -gate
// it never exits non-zero, so it suits "what changed?" queries across any two
// committed snapshots.
func compareSnapshots(oldSnap, newSnap *Snapshot, w io.Writer) {
	fmt.Fprintf(w, "old: %s  %s  (commit %s, %s)\n",
		oldSnap.Date, oldSnap.Label, orDash(oldSnap.Commit), orDash(oldSnap.GoVersion))
	fmt.Fprintf(w, "new: %s  %s  (commit %s, %s)\n\n",
		newSnap.Date, newSnap.Label, orDash(newSnap.Commit), orDash(newSnap.GoVersion))
	oldBy := map[string]Bench{}
	for _, b := range oldSnap.Benchmarks {
		oldBy[b.Name] = b
	}
	seen := map[string]bool{}
	for _, nb := range newSnap.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-28s only in new snapshot\n", nb.Name)
			continue
		}
		seen[nb.Name] = true
		if ob.NsPerOp > 0 && nb.NsPerOp > 0 {
			fmt.Fprintf(w, "%-28s %12.0f → %12.0f ns/op  %+6.1f%%\n",
				nb.Name, ob.NsPerOp, nb.NsPerOp, 100*(nb.NsPerOp/ob.NsPerOp-1))
		}
		units := make([]string, 0, len(nb.Metrics))
		for unit := range nb.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			ov, ok := ob.Metrics[unit]
			if !ok || ov == 0 {
				continue
			}
			fmt.Fprintf(w, "%-28s %12.2f → %12.2f %s  %+6.1f%%\n",
				"  "+nb.Name, ov, nb.Metrics[unit], unit, 100*(nb.Metrics[unit]/ov-1))
		}
	}
	for _, ob := range oldSnap.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(w, "%-28s only in old snapshot\n", ob.Name)
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
