// Command benchjson runs the repository benchmarks and records them as a
// dated JSON snapshot, giving the repo a perf trajectory it can regress
// against.
//
// Usage:
//
//	benchjson                         # run BenchmarkObserve, write BENCH_<date>.json
//	benchjson -bench . -benchtime 1x  # run every benchmark (figures included)
//	benchjson -parse out.txt          # convert existing `go test -bench` output
//	benchjson -prev old.json          # embed a prior snapshot for side-by-side
//	benchjson -gate BENCH_x.json      # exit 1 if Observe ns/op regressed >20%
//
// The JSON records ns/op, B/op, allocs/op and every custom b.ReportMetric
// value per benchmark, plus the machine header (goos/goarch/cpu) the numbers
// were taken on. -gate compares the current run against the "benchmarks"
// section of a committed snapshot and fails on regression, so `make
// perf-gate` can hold the line established by the baseline.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the full dated record benchjson emits.
type Snapshot struct {
	Date       string  `json:"date"`
	Label      string  `json:"label,omitempty"`
	GoVersion  string  `json:"go_version,omitempty"`
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Benchmarks []Bench `json:"benchmarks"`
	// Previous optionally embeds the snapshot this one is measured against,
	// so a single committed file shows the before/after pair.
	Previous *Snapshot `json:"previous,omitempty"`
}

func main() {
	bench := flag.String("bench", "Observe", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "2s", "go test -benchtime value")
	pkg := flag.String("pkg", ".", "package to benchmark")
	parse := flag.String("parse", "", "parse an existing `go test -bench` output file instead of running")
	prev := flag.String("prev", "", "JSON snapshot to embed as the previous baseline")
	gate := flag.String("gate", "", "JSON baseline to gate against (no file is written)")
	gateMatch := flag.String("gate-match", "Observe/", "benchmark name prefix the gate checks")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional ns/op regression for -gate")
	label := flag.String("label", "", "free-form label stored in the snapshot")
	out := flag.String("o", "", "output path (default BENCH_<date>.json; - for stdout)")
	flag.Parse()

	var raw []byte
	var err error
	if *parse != "" {
		raw, err = os.ReadFile(*parse)
		if err != nil {
			fatal(err)
		}
	} else {
		raw, err = runBench(*pkg, *bench, *benchtime)
		if err != nil {
			fatal(err)
		}
	}

	snap, err := parseBenchOutput(raw)
	if err != nil {
		fatal(err)
	}
	snap.Date = time.Now().Format("2006-01-02")
	snap.Label = *label
	snap.GoVersion = runtime.Version()

	if *gate != "" {
		base, err := readSnapshot(*gate)
		if err != nil {
			fatal(err)
		}
		if err := gateAgainst(snap, base, *gateMatch, *threshold, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *prev != "" {
		base, err := readSnapshot(*prev)
		if err != nil {
			fatal(err)
		}
		base.Previous = nil // keep the chain one link deep
		snap.Previous = base
	}

	path := *out
	if path == "" {
		path = "BENCH_" + snap.Date + ".json"
	}
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if path == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

func runBench(pkg, bench, benchtime string) ([]byte, error) {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-benchmem", "-benchtime", benchtime, pkg}
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test: %w", err)
	}
	return buf.Bytes(), nil
}

func readSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// benchLine matches `BenchmarkName-8   123   456 ns/op   ...` result lines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseBenchOutput converts `go test -bench -benchmem` text into a Snapshot.
// The trailing -N GOMAXPROCS suffix is stripped from names so snapshots
// taken at different parallelism settings still align by benchmark.
func parseBenchOutput(raw []byte) (*Snapshot, error) {
	snap := &Snapshot{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Bench{Name: strings.TrimPrefix(m[1], "Benchmark")}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	stripGomaxSuffix(snap.Benchmarks)
	return snap, nil
}

// gomaxSuffix is the `-N` the testing package appends to benchmark names
// when GOMAXPROCS > 1.
var gomaxSuffix = regexp.MustCompile(`-(\d+)$`)

// stripGomaxSuffix removes the GOMAXPROCS decoration so snapshots taken at
// different parallelism settings align by name. Because sub-benchmark names
// like Observe/d-400 legitimately end in `-N`, the suffix is stripped only
// when every result line carries the same trailing number — which is exactly
// how the testing package applies it (uniformly, and never at GOMAXPROCS=1).
func stripGomaxSuffix(bs []Bench) {
	if len(bs) < 2 {
		return
	}
	procs := ""
	for _, b := range bs {
		m := gomaxSuffix.FindStringSubmatch(b.Name)
		if m == nil {
			return
		}
		if procs == "" {
			procs = m[1]
		} else if m[1] != procs {
			return
		}
	}
	for i := range bs {
		bs[i].Name = strings.TrimSuffix(bs[i].Name, "-"+procs)
	}
}

// gateAgainst fails when any current benchmark matching the prefix is slower
// than the baseline's "benchmarks" section by more than threshold, or when a
// matching baseline entry has no current counterpart.
func gateAgainst(cur, base *Snapshot, match string, threshold float64, w io.Writer) error {
	curBy := map[string]Bench{}
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	checked := 0
	var regressed []string
	for _, b := range base.Benchmarks {
		if !strings.HasPrefix(b.Name, match) || b.NsPerOp <= 0 {
			continue
		}
		now, ok := curBy[b.Name]
		if !ok {
			return fmt.Errorf("baseline benchmark %q missing from current run", b.Name)
		}
		checked++
		ratio := now.NsPerOp/b.NsPerOp - 1
		status := "ok"
		if ratio > threshold {
			status = "REGRESSED"
			regressed = append(regressed, b.Name)
		}
		fmt.Fprintf(w, "%-24s %12.0f → %12.0f ns/op  %+6.1f%%  %s\n",
			b.Name, b.NsPerOp, now.NsPerOp, 100*ratio, status)
	}
	if checked == 0 {
		return fmt.Errorf("baseline has no benchmarks matching %q", match)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%: %s",
			len(regressed), 100*threshold, strings.Join(regressed, ", "))
	}
	fmt.Fprintf(w, "perf gate passed: %d benchmark(s) within %.0f%% of %s baseline\n",
		checked, 100*threshold, base.Date)
	return nil
}
