// Command benchfig regenerates the paper's evaluation figures as text
// tables.
//
// Usage:
//
//	benchfig -fig 1      # Figure 1: classic vs robust eigenvalue traces
//	benchfig -fig 45     # Figures 4–5: eigenspectra early vs converged
//	benchfig -fig 6      # Figure 6: throughput vs engines, simulated cluster
//	benchfig -fig 7      # Figure 7: tuples/s/thread vs dimensionality
//	benchfig -fig sync   # extension E7: synchronization ablation
//	benchfig -fig gaps   # extension E8: missing-data ablation
//	benchfig -fig merge  # exact (eq. 15) vs approximate (eq. 16) merge sweep
//	benchfig -fig all    # everything, in order
//
// Add -csv for machine-readable output, -quick for shorter runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"streampca/internal/exp"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 45, 6, 7, sync, gaps, merge, all")
	seed := flag.Uint64("seed", 1, "experiment seed")
	quick := flag.Bool("quick", false, "smaller streams / shorter simulations")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of text tables")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "benchfig: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	n := 20000
	late := 20000
	simDur := 30.0
	ablN := 16000
	if *quick {
		n, late, simDur, ablN = 6000, 6000, 8.0, 8000
	}

	run("1", func() error {
		res, err := exp.RunFig1(exp.Fig1Config{N: n, Seed: *seed})
		if err != nil {
			return err
		}
		if *csv {
			res.WriteCSV(os.Stdout)
		} else {
			res.WriteText(os.Stdout)
		}
		return nil
	})
	run("45", func() error {
		res, err := exp.RunFig45(exp.Fig45Config{Late: late, Seed: *seed})
		if err != nil {
			return err
		}
		if *csv {
			res.WriteCSV(os.Stdout)
		} else {
			res.WriteText(os.Stdout)
		}
		return nil
	})
	run("6", func() error {
		res, err := exp.RunFig6(exp.Fig6Config{Duration: simDur, Seed: *seed})
		if err != nil {
			return err
		}
		if *csv {
			res.WriteCSV(os.Stdout)
		} else {
			res.WriteText(os.Stdout)
		}
		return nil
	})
	run("7", func() error {
		res, err := exp.RunFig7(exp.Fig7Config{Duration: simDur, Seed: *seed})
		if err != nil {
			return err
		}
		if *csv {
			res.WriteCSV(os.Stdout)
		} else {
			res.WriteText(os.Stdout)
		}
		return nil
	})
	run("sync", func() error {
		res, err := exp.RunSyncAblation(exp.SyncAblationConfig{N: int64(ablN), Seed: *seed})
		if err != nil {
			return err
		}
		if *csv {
			res.WriteCSV(os.Stdout)
		} else {
			res.WriteText(os.Stdout)
		}
		return nil
	})
	run("merge", func() error {
		res, err := exp.RunMergeAblation(exp.MergeAblationConfig{Seed: *seed})
		if err != nil {
			return err
		}
		if *csv {
			res.WriteCSV(os.Stdout)
		} else {
			res.WriteText(os.Stdout)
		}
		return nil
	})
	run("gaps", func() error {
		res, err := exp.RunGapsAblation(exp.GapsAblationConfig{N: ablN, Seed: *seed})
		if err != nil {
			return err
		}
		if *csv {
			res.WriteCSV(os.Stdout)
		} else {
			res.WriteText(os.Stdout)
		}
		return nil
	})
}
