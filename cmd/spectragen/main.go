// Command spectragen emits a stream of synthetic SDSS-like galaxy spectra
// as CSV, suitable for piping into `streampca -input -` or any other tool.
//
// Each row is one spectrum: flux values on the wavelength grid, `NaN`
// marking masked (unobserved) bins. With -meta, three leading columns give
// redshift, outlier flag (0/1), and the observed-bin count. The first
// output line is a `# wavelengths: ...` comment carrying the grid.
//
// Usage:
//
//	spectragen -n 10000 -bins 500 -gaps 0.3 -outliers 0.02 > survey.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"streampca"
)

func main() {
	n := flag.Int("n", 1000, "number of spectra")
	bins := flag.Int("bins", 500, "wavelength bins")
	rank := flag.Int("rank", 4, "manifold rank")
	noise := flag.Float64("noise", 0.03, "per-bin noise sigma")
	gaps := flag.Float64("gaps", 0, "fraction of gappy spectra")
	outliers := flag.Float64("outliers", 0, "outlier contamination rate")
	seed := flag.Uint64("seed", 1, "stream seed")
	meta := flag.Bool("meta", false, "prepend redshift, outlier flag, observed-bin count columns")
	flag.Parse()

	gen, err := streampca.NewSpectraGenerator(streampca.SpectraConfig{
		Grid: streampca.SDSSGrid(*bins), Rank: *rank, NoiseSigma: *noise,
		GapRate: *gaps, OutlierRate: *outliers, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spectragen:", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprint(w, "# wavelengths:")
	for _, wl := range gen.Grid().Wavelengths() {
		fmt.Fprintf(w, " %.2f", wl)
	}
	fmt.Fprintln(w)

	for i := 0; i < *n; i++ {
		obs := gen.Next()
		if *meta {
			nObs := 0
			for _, ok := range obs.Mask {
				if ok {
					nObs++
				}
			}
			out := 0
			if obs.Outlier {
				out = 1
			}
			fmt.Fprintf(w, "%.5f,%d,%d,", obs.Redshift, out, nObs)
		}
		for j, f := range obs.Flux {
			if j > 0 {
				w.WriteByte(',')
			}
			if math.IsNaN(f) {
				w.WriteString("NaN")
			} else {
				w.WriteString(strconv.FormatFloat(f, 'g', 8, 64))
			}
		}
		w.WriteByte('\n')
	}
}
