// Command obscheck is the end-to-end acceptance harness for the
// observability subsystem: it builds cmd/streampca, runs an instrumented
// parallel pipeline with -obs, and validates every exposition surface over
// real HTTP — the JSON snapshot, the Prometheus text format, the event
// journal, and the Chrome trace document. It exits non-zero on the first
// contract violation, which is what `make obs-check` gates on.
//
// With -wire it instead boots a real 2-worker localhost TCP cluster (two
// streampca -worker processes with periodic obs-reports, one coordinator
// with -peers) and validates the cluster surface: the merged
// /cluster/metrics.json snapshot, the node-labeled Prometheus text, and the
// skew-corrected merged /cluster/trace.json timeline.
//
// Usage:
//
//	obscheck                  # build ./cmd/streampca and probe it
//	obscheck -bin ./streampca # probe a prebuilt binary
//	obscheck -wire            # probe the 2-worker cluster surface
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "", "prebuilt streampca binary (default: go build ./cmd/streampca)")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline")
	wireMode := flag.Bool("wire", false, "validate the distributed cluster observability surface on a 2-worker localhost cluster")
	flag.Parse()

	if *wireMode {
		if err := runWire(*bin, *timeout); err != nil {
			fmt.Fprintln(os.Stderr, "obscheck: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("obscheck: PASS — cluster JSON, node-labeled Prometheus and merged trace all valid")
		return
	}
	if err := run(*bin, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("obscheck: PASS — JSON, Prometheus, journal and trace endpoints all valid")
}

// buildBin compiles cmd/streampca into a temp dir when no prebuilt binary
// was given; cleanup is a no-op for a prebuilt one.
func buildBin(bin string) (string, func(), error) {
	if bin != "" {
		return bin, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "obscheck")
	if err != nil {
		return "", nil, err
	}
	bin = filepath.Join(dir, "streampca")
	build := exec.Command("go", "build", "-o", bin, "./cmd/streampca")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("building streampca: %w", err)
	}
	return bin, func() { os.RemoveAll(dir) }, nil
}

func run(bin string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)

	bin, cleanup, err := buildBin(bin)
	if err != nil {
		return err
	}
	defer cleanup()

	// A short parallel run with sync on, held open afterwards so the probes
	// read a drained, fully populated pipeline.
	cmd := exec.Command(bin,
		"-synthetic", "signal", "-n", "12000", "-d", "100", "-p", "3",
		"-engines", "2", "-sync", "2ms",
		"-obs", "127.0.0.1:0", "-obswait")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()

	base, err := awaitServer(stdout, deadline)
	if err != nil {
		return err
	}
	fmt.Println("obscheck: probing", base)

	checks := []struct {
		name string
		fn   func(string) error
	}{
		{"metrics.json", checkJSON},
		{"prometheus", checkPrometheus},
		{"journal", checkJournal},
		{"trace.json", checkTrace},
	}
	for _, c := range checks {
		if err := retryUntil(deadline, func() error { return c.fn(base) }); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		fmt.Println("obscheck: ok", c.name)
	}
	return nil
}

// awaitServer scans the child's stdout for the served address and then for
// the end-of-run marker, so every probe sees the finished pipeline.
func awaitServer(stdout io.Reader, deadline time.Time) (string, error) {
	urlRe := regexp.MustCompile(`observability on (http://[^/\s]+)/`)
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println("  |", line)
		if m := urlRe.FindStringSubmatch(line); m != nil {
			base = m[1]
		}
		if strings.Contains(line, "run finished") {
			if base == "" {
				return "", fmt.Errorf("run finished but no served address was printed")
			}
			// Keep draining in the background so the child never blocks on a
			// full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return base, nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("streampca exited before serving observability")
}

func retryUntil(deadline time.Time, fn func() error) error {
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return body, nil
}

// checkJSON validates the structured snapshot: per-operator histograms with
// samples, per-engine gauges with eigenvalues, and sync activity.
func checkJSON(base string) error {
	body, err := get(base + "/metrics.json")
	if err != nil {
		return err
	}
	var snap struct {
		Operators []struct {
			Name    string `json:"name"`
			Latency struct {
				Count int64 `json:"count"`
			} `json:"latency_ns"`
		} `json:"operators"`
		Engines []struct {
			Index        int       `json:"index"`
			Sigma2       float64   `json:"sigma2"`
			Eigenvalues  []float64 `json:"eigenvalues"`
			Observations int64     `json:"observations"`
		} `json:"engines"`
		Sync struct {
			Rounds int64 `json:"rounds"`
		} `json:"sync"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if len(snap.Operators) < 4 {
		return fmt.Errorf("only %d operators in snapshot", len(snap.Operators))
	}
	var sampled int
	for _, op := range snap.Operators {
		if op.Latency.Count > 0 {
			sampled++
		}
	}
	if sampled < 3 {
		return fmt.Errorf("only %d operators recorded latency samples", sampled)
	}
	if len(snap.Engines) != 2 {
		return fmt.Errorf("%d engines in snapshot, want 2", len(snap.Engines))
	}
	for _, en := range snap.Engines {
		if en.Sigma2 <= 0 || len(en.Eigenvalues) == 0 || en.Observations == 0 {
			return fmt.Errorf("engine %d gauges incomplete: %+v", en.Index, en)
		}
	}
	if snap.Sync.Rounds == 0 {
		return fmt.Errorf("no sync rounds recorded")
	}
	return nil
}

// checkPrometheus validates the text exposition: the op histogram series,
// the engine gauges, and well-formed TYPE comments.
func checkPrometheus(base string) error {
	body, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE streampca_op_latency_ns histogram",
		`streampca_op_latency_ns_bucket{op="split",le="+Inf"}`,
		"streampca_op_latency_ns_count",
		`streampca_engine_sigma2{engine="0"}`,
		`streampca_engine_eigenvalue{engine="1",rank="0"}`,
		"streampca_sync_rounds_total",
		"streampca_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("missing %q", want)
		}
	}
	return nil
}

// checkJournal validates the control-plane event feed, including the ?max
// parameter.
func checkJournal(base string) error {
	body, err := get(base + "/journal?max=8")
	if err != nil {
		return err
	}
	var j struct {
		Len    int `json:"len"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &j); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if j.Len == 0 || len(j.Events) == 0 {
		return fmt.Errorf("journal is empty")
	}
	if len(j.Events) > 8 {
		return fmt.Errorf("max=8 returned %d events", len(j.Events))
	}
	for _, ev := range j.Events {
		if ev.Kind == "" {
			return fmt.Errorf("event with empty kind")
		}
	}
	return nil
}

// checkTrace validates the Chrome trace document: complete spans, thread
// metadata, and at least one control-plane instant.
func checkTrace(base string) error {
	body, err := get(base + "/trace.json")
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
	}
	if counts["X"] == 0 {
		return fmt.Errorf("no complete spans (ph=X) in trace")
	}
	if counts["M"] == 0 {
		return fmt.Errorf("no metadata events (ph=M) in trace")
	}
	if counts["i"] == 0 {
		return fmt.Errorf("no instant events (ph=i) in trace")
	}
	return nil
}

// runWire boots two streampca -worker processes with periodic obs-reports,
// drives a batched distributed run through them from a -peers coordinator,
// and validates the coordinator's /cluster/* surface.
func runWire(bin string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)

	bin, cleanup, err := buildBin(bin)
	if err != nil {
		return err
	}
	defer cleanup()

	var addrs []string
	for i := 0; i < 2; i++ {
		addr, err := startWorker(bin, deadline)
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
		addrs = append(addrs, addr)
	}
	fmt.Println("obscheck: workers on", strings.Join(addrs, " "))

	// Batched transport so frames carry trace stamps (the per-tuple path is
	// untraced), sync on so the journal and sync plane have content, and
	// -obswait so every probe reads the drained cluster.
	cmd := exec.Command(bin,
		"-synthetic", "signal", "-n", "12000", "-d", "64", "-p", "3",
		"-batch", "16", "-sync", "2ms",
		"-peers", strings.Join(addrs, ","),
		"-obs", "127.0.0.1:0", "-obswait")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()

	base, err := awaitServer(stdout, deadline)
	if err != nil {
		return err
	}
	fmt.Println("obscheck: probing", base)

	checks := []struct {
		name string
		fn   func(string) error
	}{
		{"cluster/metrics.json", checkClusterJSON},
		{"cluster/prometheus", checkClusterPrometheus},
		{"cluster/trace.json", checkClusterTrace},
	}
	for _, c := range checks {
		if err := retryUntil(deadline, func() error { return c.fn(base) }); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		fmt.Println("obscheck: ok", c.name)
	}
	return nil
}

// startWorker spawns one wire worker with a fast report period and returns
// its scraped listen address.
func startWorker(bin string, deadline time.Time) (string, error) {
	cmd := exec.Command(bin, "-worker", "-listen", "127.0.0.1:0",
		"-d", "64", "-p", "3", "-sessions", "1", "-report", "25ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", err
	}
	readyRe := regexp.MustCompile(`wire worker listening on (\S+)`)
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println("  |", line)
		if m := readyRe.FindStringSubmatch(line); m != nil {
			go func() {
				for sc.Scan() {
				}
				cmd.Wait()
			}()
			return m[1], nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	return "", fmt.Errorf("worker exited before its ready line (%v)", sc.Err())
}

// clusterView mirrors the /cluster/metrics.json shape obscheck cares about.
type clusterView struct {
	Nodes []struct {
		Node       string `json:"node"`
		Reports    int64  `json:"reports"`
		ReportSeq  int64  `json:"report_seq"`
		DupReports int64  `json:"dup_reports"`
		EventGaps  int64  `json:"event_gaps"`
		ClockRTTNs int64  `json:"clock_rtt_ns"`
		Snapshot   struct {
			Engines []struct {
				Observations int64 `json:"observations"`
			} `json:"engines"`
			Journal struct {
				Len int `json:"len"`
			} `json:"journal"`
			E2ELatency *struct {
				Count int64 `json:"count"`
			} `json:"e2e_latency_ns"`
		} `json:"snapshot"`
	} `json:"nodes"`
	E2ELatency *struct {
		Count int64 `json:"count"`
	} `json:"e2e_latency_ns"`
}

// checkClusterJSON validates the merged snapshot: coordinator plus both
// workers present, reports flowing, a bounded clock estimate per worker,
// engine progress, and a merged cross-process end-to-end histogram.
func checkClusterJSON(base string) error {
	body, err := get(base + "/cluster/metrics.json")
	if err != nil {
		return err
	}
	var cs clusterView
	if err := json.Unmarshal(body, &cs); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	byNode := map[string]bool{}
	for _, n := range cs.Nodes {
		byNode[n.Node] = true
	}
	for _, want := range []string{"coordinator", "worker-0", "worker-1"} {
		if !byNode[want] {
			return fmt.Errorf("node %q missing from cluster view (have %v)", want, byNode)
		}
	}
	var e2eTotal int64
	for _, n := range cs.Nodes {
		if n.Node == "coordinator" {
			continue
		}
		if n.Reports < 1 || n.ReportSeq < 1 {
			return fmt.Errorf("%s: no reports absorbed (%d, seq %d)", n.Node, n.Reports, n.ReportSeq)
		}
		if n.ClockRTTNs <= 0 {
			return fmt.Errorf("%s: no clock sample kept (rtt %d)", n.Node, n.ClockRTTNs)
		}
		var obs int64
		for _, e := range n.Snapshot.Engines {
			obs += e.Observations
		}
		if obs == 0 {
			return fmt.Errorf("%s: engine reported no observations", n.Node)
		}
		if n.Snapshot.E2ELatency == nil || n.Snapshot.E2ELatency.Count == 0 {
			return fmt.Errorf("%s: no end-to-end latency samples", n.Node)
		}
		e2eTotal += n.Snapshot.E2ELatency.Count
	}
	if cs.E2ELatency == nil || cs.E2ELatency.Count < e2eTotal {
		return fmt.Errorf("merged e2e histogram incomplete: %+v vs per-node total %d", cs.E2ELatency, e2eTotal)
	}
	return nil
}

// checkClusterPrometheus validates the node-labeled text exposition,
// including the wire transport gauges surfacing under every node.
func checkClusterPrometheus(base string) error {
	body, err := get(base + "/cluster/metrics")
	if err != nil {
		return err
	}
	text := string(body)
	for _, want := range []string{
		"streampca_cluster_nodes 3",
		`streampca_node_reports_total{node="worker-0"}`,
		`streampca_node_reports_total{node="worker-1"}`,
		`streampca_node_clock_offset_seconds{node="worker-0"}`,
		`streampca_node_clock_rtt_seconds{node="worker-1"}`,
		`streampca_node_engine_observations_total{node="worker-0",engine=`,
		`streampca_node_op_latency_ns_bucket{node="coordinator",op="split",le=`,
		`streampca_node_wire_wire_0_bytes_per_writev{node="coordinator"}`,
		`streampca_node_wire_wire_worker_bytes_per_writev{node="worker-0"}`,
		"# TYPE streampca_e2e_latency_ns histogram",
		`streampca_node_e2e_latency_ns_count{node="worker-0"}`,
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("missing %q", want)
		}
	}
	return nil
}

// checkClusterTrace validates the merged timeline: one process per node,
// spans from more than one process, and per-lane monotone timestamps after
// skew correction.
func checkClusterTrace(base string) error {
	body, err := get(base + "/cluster/trace.json")
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   float64        `json:"ts"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	procs := map[int]string{}
	spansPerPid := map[int]int{}
	lastTs := map[[2]int]float64{}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			if name, ok := ev.Args["name"].(string); ok {
				procs[ev.Pid] = name
			}
		case ev.Ph == "X":
			spansPerPid[ev.Pid]++
			lane := [2]int{ev.Pid, ev.Tid}
			if ev.Ts < lastTs[lane] {
				return fmt.Errorf("lane pid=%d tid=%d not monotone: %v after %v", ev.Pid, ev.Tid, ev.Ts, lastTs[lane])
			}
			lastTs[lane] = ev.Ts
			if ev.Ts < 0 {
				return fmt.Errorf("span before the trace epoch: ts=%v pid=%d", ev.Ts, ev.Pid)
			}
		}
	}
	if len(procs) < 3 {
		return fmt.Errorf("only %d processes in merged trace, want 3: %v", len(procs), procs)
	}
	withSpans := 0
	for _, c := range spansPerPid {
		if c > 0 {
			withSpans++
		}
	}
	if withSpans < 2 {
		return fmt.Errorf("spans from only %d process(es); cross-process merge missing", withSpans)
	}
	return nil
}
