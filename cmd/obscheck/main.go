// Command obscheck is the end-to-end acceptance harness for the
// observability subsystem: it builds cmd/streampca, runs an instrumented
// parallel pipeline with -obs, and validates every exposition surface over
// real HTTP — the JSON snapshot, the Prometheus text format, the event
// journal, and the Chrome trace document. It exits non-zero on the first
// contract violation, which is what `make obs-check` gates on.
//
// Usage:
//
//	obscheck                  # build ./cmd/streampca and probe it
//	obscheck -bin ./streampca # probe a prebuilt binary
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"
)

func main() {
	bin := flag.String("bin", "", "prebuilt streampca binary (default: go build ./cmd/streampca)")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline")
	flag.Parse()

	if err := run(*bin, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "obscheck: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("obscheck: PASS — JSON, Prometheus, journal and trace endpoints all valid")
}

func run(bin string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)

	if bin == "" {
		dir, err := os.MkdirTemp("", "obscheck")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		bin = filepath.Join(dir, "streampca")
		build := exec.Command("go", "build", "-o", bin, "./cmd/streampca")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building streampca: %w", err)
		}
	}

	// A short parallel run with sync on, held open afterwards so the probes
	// read a drained, fully populated pipeline.
	cmd := exec.Command(bin,
		"-synthetic", "signal", "-n", "12000", "-d", "100", "-p", "3",
		"-engines", "2", "-sync", "2ms",
		"-obs", "127.0.0.1:0", "-obswait")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()

	base, err := awaitServer(stdout, deadline)
	if err != nil {
		return err
	}
	fmt.Println("obscheck: probing", base)

	checks := []struct {
		name string
		fn   func(string) error
	}{
		{"metrics.json", checkJSON},
		{"prometheus", checkPrometheus},
		{"journal", checkJournal},
		{"trace.json", checkTrace},
	}
	for _, c := range checks {
		if err := retryUntil(deadline, func() error { return c.fn(base) }); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		fmt.Println("obscheck: ok", c.name)
	}
	return nil
}

// awaitServer scans the child's stdout for the served address and then for
// the end-of-run marker, so every probe sees the finished pipeline.
func awaitServer(stdout io.Reader, deadline time.Time) (string, error) {
	urlRe := regexp.MustCompile(`observability on (http://[^/\s]+)/`)
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println("  |", line)
		if m := urlRe.FindStringSubmatch(line); m != nil {
			base = m[1]
		}
		if strings.Contains(line, "run finished") {
			if base == "" {
				return "", fmt.Errorf("run finished but no served address was printed")
			}
			// Keep draining in the background so the child never blocks on a
			// full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return base, nil
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("streampca exited before serving observability")
}

func retryUntil(deadline time.Time, fn func() error) error {
	for {
		err := fn()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return body, nil
}

// checkJSON validates the structured snapshot: per-operator histograms with
// samples, per-engine gauges with eigenvalues, and sync activity.
func checkJSON(base string) error {
	body, err := get(base + "/metrics.json")
	if err != nil {
		return err
	}
	var snap struct {
		Operators []struct {
			Name    string `json:"name"`
			Latency struct {
				Count int64 `json:"count"`
			} `json:"latency_ns"`
		} `json:"operators"`
		Engines []struct {
			Index        int       `json:"index"`
			Sigma2       float64   `json:"sigma2"`
			Eigenvalues  []float64 `json:"eigenvalues"`
			Observations int64     `json:"observations"`
		} `json:"engines"`
		Sync struct {
			Rounds int64 `json:"rounds"`
		} `json:"sync"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if len(snap.Operators) < 4 {
		return fmt.Errorf("only %d operators in snapshot", len(snap.Operators))
	}
	var sampled int
	for _, op := range snap.Operators {
		if op.Latency.Count > 0 {
			sampled++
		}
	}
	if sampled < 3 {
		return fmt.Errorf("only %d operators recorded latency samples", sampled)
	}
	if len(snap.Engines) != 2 {
		return fmt.Errorf("%d engines in snapshot, want 2", len(snap.Engines))
	}
	for _, en := range snap.Engines {
		if en.Sigma2 <= 0 || len(en.Eigenvalues) == 0 || en.Observations == 0 {
			return fmt.Errorf("engine %d gauges incomplete: %+v", en.Index, en)
		}
	}
	if snap.Sync.Rounds == 0 {
		return fmt.Errorf("no sync rounds recorded")
	}
	return nil
}

// checkPrometheus validates the text exposition: the op histogram series,
// the engine gauges, and well-formed TYPE comments.
func checkPrometheus(base string) error {
	body, err := get(base + "/metrics")
	if err != nil {
		return err
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE streampca_op_latency_ns histogram",
		`streampca_op_latency_ns_bucket{op="split",le="+Inf"}`,
		"streampca_op_latency_ns_count",
		`streampca_engine_sigma2{engine="0"}`,
		`streampca_engine_eigenvalue{engine="1",rank="0"}`,
		"streampca_sync_rounds_total",
		"streampca_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("missing %q", want)
		}
	}
	return nil
}

// checkJournal validates the control-plane event feed, including the ?max
// parameter.
func checkJournal(base string) error {
	body, err := get(base + "/journal?max=8")
	if err != nil {
		return err
	}
	var j struct {
		Len    int `json:"len"`
		Events []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &j); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	if j.Len == 0 || len(j.Events) == 0 {
		return fmt.Errorf("journal is empty")
	}
	if len(j.Events) > 8 {
		return fmt.Errorf("max=8 returned %d events", len(j.Events))
	}
	for _, ev := range j.Events {
		if ev.Kind == "" {
			return fmt.Errorf("event with empty kind")
		}
	}
	return nil
}

// checkTrace validates the Chrome trace document: complete spans, thread
// metadata, and at least one control-plane instant.
func checkTrace(base string) error {
	body, err := get(base + "/trace.json")
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		counts[ev.Ph]++
	}
	if counts["X"] == 0 {
		return fmt.Errorf("no complete spans (ph=X) in trace")
	}
	if counts["M"] == 0 {
		return fmt.Errorf("no metadata events (ph=M) in trace")
	}
	if counts["i"] == 0 {
		return fmt.Errorf("no instant events (ph=i) in trace")
	}
	return nil
}
