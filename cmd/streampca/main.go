// Command streampca runs the parallel streaming robust-PCA pipeline over a
// CSV/binary/network stream or a built-in synthetic workload and reports
// the resulting eigensystem and per-engine statistics.
//
// Usage:
//
//	spectragen -n 20000 -gaps 0.3 | streampca -input - -d 500 -p 4
//	streampca -input survey.csv -meta -engines 4 -sync 5ms
//	streampca -binary obs.f64 -d 250 -p 5
//	streampca -listen 127.0.0.1:9000 -d 250 -p 5     # CSV lines over TCP
//	streampca -url http://host/survey.csv -d 500 -p 4
//	streampca -synthetic spectra -n 20000 -d 500 -p 4 -engines 4
//	streampca -synthetic signal  -n 50000 -d 250 -p 5 -save model.spca
//	streampca -resume model.spca -synthetic signal -n 50000 -d 250 -p 5
//	streampca -worker -listen 127.0.0.1:7401 -d 250 -p 5   # one wire engine
//	streampca -synthetic signal -n 200000 -d 250 -p 5 \
//	          -peers 127.0.0.1:7401,127.0.0.1:7402          # coordinator
//
// CSV rows are observations (one value per dimension, NaN or empty =
// missing); '#' lines are comments; -meta skips three leading metadata
// columns. -save writes the final merged eigensystem as a binary
// checkpoint; -resume seeds a single-engine run from one.
//
// -worker turns the process into one distributed PCA engine serving the
// wire protocol on -listen; -peers turns it into the coordinator of such
// workers (each peer runs one engine; -engines is ignored). See
// cmd/wireharness for a self-contained localhost cluster.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streampca"
)

func main() {
	input := flag.String("input", "", "CSV file of observations ('-' for stdin)")
	dir := flag.String("dir", "", "folder of CSV files to stream in name order")
	binaryIn := flag.String("binary", "", "binary file of little-endian float64 records")
	listen := flag.String("listen", "", "accept CSV observation lines on this TCP address")
	url := flag.String("url", "", "GET a CSV observation stream from this URL")
	meta := flag.Bool("meta", false, "input rows carry three leading metadata columns")
	synthetic := flag.String("synthetic", "", "built-in workload: 'spectra' or 'signal'")
	n := flag.Int64("n", 20000, "observations to stream (synthetic mode)")
	d := flag.Int("d", 500, "dimensionality")
	p := flag.Int("p", 4, "principal components")
	extra := flag.Int("extra", 2, "extra components for gap residual correction")
	window := flag.Float64("window", 5000, "effective sample size N (alpha = 1-1/N; 0 = infinite memory)")
	engines := flag.Int("engines", 1, "parallel PCA engines")
	syncEvery := flag.Duration("sync", 0, "sync throttle period (0 disables)")
	strategy := flag.String("strategy", "ring", "sync strategy: ring, broadcast, group")
	outliers := flag.Float64("outliers", 0.02, "synthetic outlier rate")
	gaps := flag.Float64("gaps", 0, "synthetic gappy-observation rate")
	seed := flag.Uint64("seed", 1, "seed")
	vectors := flag.String("vectors", "", "write final eigenvectors as CSV to this file")
	save := flag.String("save", "", "write the merged eigensystem checkpoint to this file")
	resume := flag.String("resume", "", "seed the run from a checkpoint file (single engine)")
	obsAddr := flag.String("obs", "", "serve observability HTTP (JSON/Prometheus/pprof/trace) on this address")
	obsWait := flag.Bool("obswait", false, "keep the -obs server up after the run until interrupted")
	traceOut := flag.String("traceout", "", "write a Chrome trace-event JSON of the run to this file")
	worker := flag.Bool("worker", false, "run as a distributed PCA worker; -listen is its wire TCP address")
	peers := flag.String("peers", "", "comma-separated worker addresses: run as the distributed coordinator")
	sessions := flag.Int("sessions", 0, "worker mode: coordinator sessions to serve before exiting (0 = forever)")
	batch := flag.Int("batch", 0, "micro-batch size for the transport (0 = per-tuple)")
	report := flag.Duration("report", 0, "worker mode: ship an observability report to the coordinator this often (0 disables)")
	flag.Parse()

	alpha := 1.0
	if *window > 0 {
		alpha = 1 - 1 / *window
	}
	engCfg := streampca.Config{Dim: *d, Components: *p, Extra: *extra, Alpha: alpha}

	if *worker {
		if *peers != "" {
			fatal(fmt.Errorf("-worker and -peers are mutually exclusive"))
		}
		runWorker(*listen, *sessions, streampca.WorkerConfig{
			Engine: engCfg, Batch: *batch, ReportEvery: *report,
		})
		return
	}

	src, cleanup, err := buildSource(sourceFlags{
		input: *input, dir: *dir, binary: *binaryIn, listen: *listen, url: *url,
		meta: *meta, synthetic: *synthetic,
		n: *n, d: *d, p: *p, outliers: *outliers, gaps: *gaps, seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	if cleanup != nil {
		defer cleanup()
	}

	// Observability: one instrument bundle covers whichever run mode
	// executes; -obs serves it live, -traceout dumps the span/event timeline
	// after the run.
	var obsSet *streampca.ObsSet
	if *obsAddr != "" || *traceOut != "" {
		obsSet = streampca.NewObsSet()
	}
	var clusterObs *streampca.ObsClusterCollector
	if *obsAddr != "" {
		col := streampca.NewObsCollector(obsSet, 0)
		col.Start()
		defer col.Stop()
		var srv *http.Server
		var serr error
		if *peers != "" {
			// Coordinator of a distributed run: aggregate the workers'
			// obs-reports next to the local view and serve both.
			clusterObs = streampca.NewObsClusterCollector(col)
			srv, serr = streampca.ServeObsCluster(*obsAddr, clusterObs)
		} else {
			srv, serr = streampca.ServeObs(*obsAddr, col)
		}
		if serr != nil {
			fatal(serr)
		}
		defer srv.Close()
		extra := ""
		if clusterObs != nil {
			extra = ", cluster/metrics, cluster/metrics.json, cluster/trace.json"
		}
		fmt.Printf("observability on http://%s/ (metrics, metrics.json, journal, trace.json%s, debug/pprof)\n", srv.Addr, extra)
	}

	var merged *streampca.Eigensystem
	if *resume != "" {
		merged, err = runResumed(*resume, engCfg, src, obsSet)
		if err != nil {
			fatal(err)
		}
	} else {
		var strat streampca.SyncStrategy
		switch *strategy {
		case "ring":
			strat = streampca.SyncRing
		case "broadcast":
			strat = streampca.SyncBroadcast
		case "group":
			strat = streampca.SyncGroup
		default:
			fatal(fmt.Errorf("unknown strategy %q", *strategy))
		}
		var res *streampca.PipelineResult
		if *peers != "" {
			// Distributed mode: the listed workers each run one engine
			// behind a TCP wire edge; this process keeps the source, the
			// split, the sync controller and the sink.
			res, err = streampca.RunCoordinator(context.Background(), streampca.DistConfig{
				Engine:       engCfg,
				Workers:      strings.Split(*peers, ","),
				Source:       src,
				Seed:         *seed,
				SyncEvery:    *syncEvery,
				SyncStrategy: strat,
				Batch:        *batch,
				Obs:          obsSet,
				Cluster:      clusterObs,
			})
		} else {
			res, err = streampca.RunPipeline(context.Background(), streampca.PipelineConfig{
				Engine:       engCfg,
				NumEngines:   *engines,
				Source:       src,
				Seed:         *seed,
				SyncEvery:    *syncEvery,
				SyncStrategy: strat,
				Batch:        *batch,
				Obs:          obsSet,
			})
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stream: %d tuples in %v (%.0f tuples/s)\n",
			res.TuplesIn, res.Elapsed.Round(time.Millisecond), res.Throughput())
		for _, st := range res.Engines {
			fmt.Printf("engine %d: processed %d, outliers %d, syncs sent %d, merges %d\n",
				st.Engine, st.Processed, st.Outliers, st.SnapshotsSent, st.MergesApplied)
		}
		for i, ws := range res.Wire {
			fmt.Printf("edge %d: %d tuples, %d msgs out, %d msgs in, %d reconnects\n",
				i, ws.TuplesSent, ws.MsgsSent, ws.MsgsRecv, ws.Reconnects)
		}
		merged = res.Merged
	}
	if merged == nil {
		fatal(fmt.Errorf("no engine initialized — stream too short or degenerate"))
	}

	fmt.Printf("merged eigensystem: %s\n", merged)
	fmt.Printf("eigenvalues:")
	for _, v := range merged.Values {
		fmt.Printf(" %.5g", v)
	}
	fmt.Println()
	fmt.Printf("sigma2 (M-scale): %.5g\n", merged.Sigma2)

	if *vectors != "" {
		if err := writeVectors(*vectors, merged); err != nil {
			fatal(err)
		}
		fmt.Printf("eigenvectors written to %s\n", *vectors)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := streampca.WriteEigensystem(f, merged); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *save)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := streampca.WriteObsTrace(f, obsSet); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (load at chrome://tracing)\n", *traceOut)
	}
	if *obsAddr != "" && *obsWait {
		// Scrapers (and the obs-check harness) read the finished run's
		// metrics after the pipeline drains; hold the server until told
		// to go.
		fmt.Println("run finished — observability still serving, ctrl-c to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}

// runWorker serves distributed coordinator sessions until interrupted (or
// the configured session count completes).
func runWorker(addr string, sessions int, cfg streampca.WorkerConfig) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := streampca.RunWorker(ctx, addr, sessions, cfg, func(a net.Addr) {
		fmt.Printf("wire worker listening on %s (engine %dd/%dp, ctrl-c to exit)\n",
			a, cfg.Engine.Dim, cfg.Engine.Components)
	})
	if err != nil && ctx.Err() == nil {
		fatal(err)
	}
}

// runResumed restores a checkpoint into a single engine and streams into it.
func runResumed(path string, cfg streampca.Config, src streampca.PipelineSource, set *streampca.ObsSet) (*streampca.Eigensystem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	es, err := streampca.ReadEigensystem(f)
	if err != nil {
		return nil, err
	}
	en, err := streampca.ResumeEngine(cfg, es)
	if err != nil {
		return nil, err
	}
	if set != nil {
		en.SetInstruments(set.Engine(0))
	}
	var processed, outliers int64
	for {
		vec, mask, ok := src()
		if !ok {
			break
		}
		var u streampca.Update
		var oerr error
		if mask != nil {
			u, oerr = en.ObserveMasked(vec, mask)
		} else {
			u, oerr = en.ObserveAuto(vec)
		}
		if oerr != nil {
			continue
		}
		processed++
		if u.Outlier {
			outliers++
		}
	}
	fmt.Printf("resumed engine: processed %d more observations, %d outliers\n", processed, outliers)
	return en.Snapshot()
}

type sourceFlags struct {
	input, dir, binary, listen, url, synthetic string
	meta                                       bool
	n                                          int64
	d, p                                       int
	outliers, gaps                             float64
	seed                                       uint64
}

func buildSource(f sourceFlags) (streampca.PipelineSource, func(), error) {
	onErr := func(err error) { fmt.Fprintln(os.Stderr, "streampca: skipping record:", err) }
	opts := streampca.CSVOptions{Dim: 0}
	if f.meta {
		opts.MetaColumns = 3
	}
	switch {
	case f.input != "":
		var r *os.File
		if f.input == "-" {
			r = os.Stdin
		} else {
			file, err := os.Open(f.input)
			if err != nil {
				return nil, nil, err
			}
			r = file
		}
		return streampca.StreamSource(streampca.NewCSVStream(r, opts), onErr),
			func() { r.Close() }, nil

	case f.dir != "":
		ds, err := streampca.NewDirStream(f.dir, "*.csv", opts)
		if err != nil {
			return nil, nil, err
		}
		return streampca.StreamSource(ds, onErr), func() { ds.Close() }, nil

	case f.binary != "":
		file, err := os.Open(f.binary)
		if err != nil {
			return nil, nil, err
		}
		return streampca.StreamSource(streampca.NewBinaryStream(file, f.d), onErr),
			func() { file.Close() }, nil

	case f.listen != "":
		srv, err := streampca.NewTCPServer(f.listen, opts)
		if err != nil {
			return nil, nil, err
		}
		fmt.Printf("listening for CSV observations on %s (close producers to finish)\n", srv.Addr())
		return streampca.StreamSource(srv, onErr), func() { srv.Close() }, nil

	case f.url != "":
		s, closer, err := streampca.HTTPStream(f.url, opts)
		if err != nil {
			return nil, nil, err
		}
		return streampca.StreamSource(s, onErr), func() { closer.Close() }, nil

	case f.synthetic == "spectra":
		gen, err := streampca.NewSpectraGenerator(streampca.SpectraConfig{
			Grid: streampca.SDSSGrid(f.d), Rank: f.p,
			OutlierRate: f.outliers, GapRate: f.gaps, Seed: f.seed,
		})
		if err != nil {
			return nil, nil, err
		}
		var i int64
		return func() ([]float64, []bool, bool) {
			if i >= f.n {
				return nil, nil, false
			}
			i++
			obs := gen.Next()
			return obs.Flux, obs.Mask, true
		}, nil, nil

	case f.synthetic == "signal":
		gen, err := streampca.NewSignalGenerator(streampca.SignalConfig{
			Dim: f.d, Signals: f.p, OutlierRate: f.outliers, Seed: f.seed,
		})
		if err != nil {
			return nil, nil, err
		}
		var i int64
		return func() ([]float64, []bool, bool) {
			if i >= f.n {
				return nil, nil, false
			}
			i++
			x, _ := gen.Next()
			return x, nil, true
		}, nil, nil
	}
	return nil, nil, fmt.Errorf("choose an input: -input, -binary, -listen, -url, or -synthetic spectra|signal")
}

func writeVectors(path string, es *streampca.Eigensystem) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()
	d := es.Dim()
	k := es.NumComponents()
	for i := 0; i < d; i++ {
		for j := 0; j < k; j++ {
			if j > 0 {
				w.WriteByte(',')
			}
			fmt.Fprintf(w, "%.8g", es.Vectors.At(i, j))
		}
		w.WriteByte('\n')
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streampca:", err)
	os.Exit(1)
}
