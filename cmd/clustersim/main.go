// Command clustersim runs one scenario on the discrete-event model of the
// paper's 10-node testbed and reports throughput — the tool for what-if
// placement questions beyond the canned Figure 6/7 sweeps.
//
// Usage:
//
//	clustersim -engines 20 -d 250                  # the paper's optimum
//	clustersim -engines 30 -d 250                  # the degraded config
//	clustersim -engines 8 -single                  # all fused on one node
//	clustersim -engines 20 -d 2000 -nodes 16 -bw 1.25e9
//	clustersim -engines 20 -strategy broadcast -syncperiod 0.25
//	clustersim -engines 20 -chaos drop5                  # 5% lossy link
//	clustersim -engines 20 -chaos crash1                 # one engine dies
//	clustersim -engines 20 -chaos flaky                  # drops + crash/restart
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"streampca"
)

func main() {
	engines := flag.Int("engines", 20, "parallel PCA engines")
	d := flag.Int("d", 250, "tuple dimensionality")
	p := flag.Int("p", 5, "principal components")
	single := flag.Bool("single", false, "fuse everything on one node")
	nodes := flag.Int("nodes", 10, "cluster size")
	cores := flag.Int("cores", 4, "cores per node")
	bw := flag.Float64("bw", 125e6, "NIC bandwidth, bytes/s")
	syncPeriod := flag.Float64("syncperiod", 0.5, "sync throttle, virtual seconds (0 disables)")
	windowN := flag.Float64("N", 5000, "forgetting window N for the 1.5N criterion")
	strategy := flag.String("strategy", "ring", "sync strategy: ring, broadcast, group, p2p")
	duration := flag.Float64("duration", 30, "measured virtual seconds")
	seed := flag.Uint64("seed", 1, "split seed")
	chaos := flag.String("chaos", "", "fault scenario: drop5, drop20, crash1, flaky (empty = none)")
	obsAddr := flag.String("obs", "", "after the simulation, serve its stats as observability HTTP on this address until interrupted")
	calD1 := flag.Int("cal-d1", 0, "calibration: first dimensionality")
	calS1 := flag.Float64("cal-s1", 0, "calibration: seconds/update at cal-d1")
	calD2 := flag.Int("cal-d2", 0, "calibration: second dimensionality")
	calS2 := flag.Float64("cal-s2", 0, "calibration: seconds/update at cal-d2")
	flag.Parse()

	spec := streampca.DefaultClusterSpec()
	spec.Nodes = *nodes
	spec.CoresPerNode = *cores
	spec.LinkBandwidth = *bw

	work := streampca.DefaultClusterWorkload()
	work.Dim = *d
	work.Components = *p
	if *calD1 != 0 {
		if err := work.Calibrate(*calD1, *calS1, *calD2, *calS2); err != nil {
			fatal(err)
		}
	}

	var strat streampca.SyncStrategy
	switch *strategy {
	case "ring":
		strat = streampca.SyncRing
	case "broadcast":
		strat = streampca.SyncBroadcast
	case "group":
		strat = streampca.SyncGroup
	case "p2p":
		strat = streampca.SyncPeerToPeer
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	const warmup = 5.0
	spec2, err := chaosScenario(*chaos, *engines, warmup, *duration)
	if err != nil {
		fatal(err)
	}

	st, err := streampca.SimulateCluster(streampca.ClusterConfig{
		Spec: spec, Workload: work,
		Engines: *engines, SingleNode: *single,
		SyncPeriod: *syncPeriod, SyncStrategy: strat, WindowN: *windowN,
		Duration: *duration, Warmup: warmup, Seed: *seed,
		Chaos: spec2,
	})
	if err != nil {
		fatal(err)
	}

	placement := "distributed"
	if *single {
		placement = "single-node (fused)"
	}
	fmt.Printf("scenario: %d engines, d=%d, %s, %d nodes × %d cores\n",
		*engines, *d, placement, *nodes, *cores)
	fmt.Printf("throughput: %.0f tuples/s (%.1f per thread)\n", st.Throughput(), st.PerThread())
	fmt.Printf("syncs: %d sent, %d suppressed by the 1.5N criterion\n", st.SyncsSent, st.SyncsSkipped)
	fmt.Printf("splitter NIC: %.1f MB/s (%.0f%% of capacity)\n",
		st.WireBytes/st.Duration/1e6, 100*st.WireBytes/st.Duration / *bw)
	var min, max int64
	min = 1 << 62
	for _, n := range st.PerEngine {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	fmt.Printf("per-engine load: min %d, max %d tuples (imbalance %.2f)\n",
		min, max, float64(max)/float64(min+1))
	if *chaos != "" {
		fmt.Printf("chaos [%s]: %d tuples dropped, %d crashes, %d recoveries\n",
			*chaos, st.TuplesDropped, st.Crashes, st.Recoveries)
	}

	if *obsAddr != "" {
		if err := serveObs(*obsAddr, st, spec2); err != nil {
			fatal(err)
		}
	}
}

// serveObs exports the finished simulation's statistics through the same
// observability endpoints a live pipeline serves — named gauges/counters,
// per-engine load, and the injected fault schedule in the journal — then
// blocks until interrupted so the endpoints can be scraped.
func serveObs(addr string, st *streampca.ClusterStats, chaos *streampca.ClusterChaos) error {
	set := streampca.NewObsSet()
	set.Gauge("sim_throughput_tuples_per_s").Set(st.Throughput())
	set.Gauge("sim_per_thread_tuples_per_s").Set(st.PerThread())
	set.Gauge("sim_duration_virtual_s").Set(st.Duration)
	set.Gauge("sim_wire_bytes").Set(st.WireBytes)
	set.Counter("sim_tuples_total").Add(st.Tuples)
	set.Counter("sim_syncs_sent_total").Add(st.SyncsSent)
	set.Counter("sim_syncs_skipped_total").Add(st.SyncsSkipped)
	set.Counter("sim_tuples_dropped_total").Add(st.TuplesDropped)
	set.Counter("sim_crashes_total").Add(st.Crashes)
	set.Counter("sim_recoveries_total").Add(st.Recoveries)
	for i, n := range st.PerEngine {
		set.Engine(i).EffN.Set(float64(n))
	}
	if chaos != nil {
		for _, c := range chaos.Crashes {
			set.Journal().Append(streampca.ObsEvent{
				Kind: streampca.ObsEvCrash, Engine: c.Engine, A: c.At,
			})
			if c.RecoverAt > 0 {
				set.Journal().Append(streampca.ObsEvent{
					Kind: streampca.ObsEvRecover, Engine: c.Engine, A: c.RecoverAt,
				})
			}
		}
	}

	col := streampca.NewObsCollector(set, 0)
	col.Start()
	defer col.Stop()
	srv, err := streampca.ServeObs(addr, col)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("observability on http://%s/ — ctrl-c to exit\n", srv.Addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}

// chaosScenario maps a -chaos preset name onto a deterministic fault spec.
// Crash times are placed inside the measured window so their impact shows up
// in the reported throughput.
func chaosScenario(name string, engines int, warmup, duration float64) (*streampca.ClusterChaos, error) {
	victim := 0
	if engines > 1 {
		victim = 1
	}
	crashAt := warmup + duration/4
	recoverAt := warmup + duration/2
	switch name {
	case "":
		return nil, nil
	case "drop5":
		return &streampca.ClusterChaos{DropRate: 0.05}, nil
	case "drop20":
		return &streampca.ClusterChaos{DropRate: 0.20}, nil
	case "crash1":
		return &streampca.ClusterChaos{
			Crashes: []streampca.ClusterCrash{{Engine: victim, At: crashAt}},
		}, nil
	case "flaky":
		return &streampca.ClusterChaos{
			DropRate: 0.05,
			Crashes: []streampca.ClusterCrash{
				{Engine: victim, At: crashAt, RecoverAt: recoverAt},
			},
		}, nil
	default:
		return nil, fmt.Errorf("unknown chaos scenario %q (want drop5, drop20, crash1, flaky)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clustersim:", err)
	os.Exit(1)
}
