// Command streamvet runs the repo's static-analysis suite: ten analyzers
// that enforce the hot-path, determinism, concurrency, and pooled-lifetime
// contracts the paper's claims rest on (see internal/analysis). It exits
// non-zero when any unsuppressed diagnostic is found.
//
// Usage:
//
//	streamvet [-json] [-escape] [-budget file] [-C dir] [package-dir ...]
//
// With no package arguments (or "./...") every package in the module is
// analyzed. Arguments name package directories relative to the module root
// ("internal/core", "./internal/core") and restrict the set of packages
// whose diagnostics are reported; the whole module is still loaded so
// cross-package types resolve.
//
// -json emits the diagnostics as a JSON array — including suppressed ones,
// flagged with their //streamvet:ignore reason — for machine consumption
// (see `make lint-json`). The exit status considers unsuppressed
// diagnostics only.
//
// -escape additionally rebuilds the module with -gcflags=-m and cross-checks
// the //streampca:noalloc annotations against the compiler's escape
// analysis.
//
// -budget FILE prints the live //streamvet:ignore count per analyzer and
// fails when any count exceeds the checked-in baseline (see
// internal/analysis/suppressions.txt): suppressions only grow through an
// explicit diff.
//
// Unused //streamvet:ignore directives are reported as findings. Directives
// naming noalloc are audited only under -escape, because several noalloc
// suppressions silence compiler-level escape findings that the AST pass
// alone cannot see.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"streampca/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (suppressed included, flagged)")
	escape := flag.Bool("escape", false, "cross-check //streampca:noalloc functions with go build -gcflags=-m")
	budget := flag.String("budget", "", "suppression-budget baseline file; print live counts and fail when any exceeds it")
	chdir := flag.String("C", "", "module root directory (default: nearest go.mod from the working directory)")
	flag.Parse()

	root := *chdir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatal(err)
	}

	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fatal(err)
	}
	if *escape {
		esc, err := analysis.EscapeCheck(loader.Root(), pkgs)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, esc...)
	}
	// Audit directives against the full (pre-filter) diagnostic set; noalloc
	// directives can only be judged when the escape findings are present.
	for _, u := range analysis.FindUnusedDirectives(pkgs, diags) {
		if u.Analyzer == "noalloc" && !*escape {
			continue
		}
		diags = append(diags, u.Diagnostic())
	}
	budgetFailed := false
	if *budget != "" {
		data, err := os.ReadFile(*budget)
		if err != nil {
			fatal(err)
		}
		baseline, err := analysis.ParseSuppressionBudget(data)
		if err != nil {
			fatal(err)
		}
		live := analysis.DirectiveCounts(pkgs)
		fmt.Fprintf(os.Stderr, "streamvet: suppressions in use:\n%s", indent(analysis.FormatDirectiveCounts(live)))
		for _, v := range analysis.CheckSuppressionBudget(live, baseline) {
			fmt.Fprintf(os.Stderr, "streamvet: suppression budget exceeded: %s\n", v)
			budgetFailed = true
		}
	}
	diags = filterDirs(diags, loader.Root(), flag.Args())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	}
	failing := analysis.Unsuppressed(diags)
	if !*jsonOut {
		for _, d := range failing {
			if rel, err := filepath.Rel(loader.Root(), d.File); err == nil {
				d.File = rel
			}
			fmt.Println(d)
		}
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "streamvet: %d unsuppressed finding(s)\n", len(failing))
		os.Exit(1)
	}
	if budgetFailed {
		os.Exit(1)
	}
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	return b.String()
}

// filterDirs restricts diagnostics to the requested package directories;
// no arguments, or any "./..."-style pattern, keeps everything.
func filterDirs(diags []analysis.Diagnostic, root string, args []string) []analysis.Diagnostic {
	var prefixes []string
	for _, a := range args {
		if a == "." || strings.HasSuffix(a, "...") {
			return diags
		}
		prefixes = append(prefixes, filepath.Join(root, filepath.Clean(a))+string(filepath.Separator))
	}
	if len(prefixes) == 0 {
		return diags
	}
	var out []analysis.Diagnostic
	for _, d := range diags {
		for _, p := range prefixes {
			if strings.HasPrefix(d.File, p) {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("streamvet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "streamvet: %v\n", err)
	os.Exit(2)
}
