// Command wireharness boots an N-process streaming-PCA cluster on localhost
// TCP and drives a synthetic workload through it: it re-executes itself once
// per engine as a wire worker, hands the worker addresses to the
// coordinator, and reports throughput, per-engine statistics and per-edge
// transport counters. Optional flags inject connection faults (resets and
// partition windows) on chosen edges, turning the harness into a one-line
// chaos experiment against real sockets.
//
// Usage:
//
//	wireharness -engines 4 -n 200000 -d 250 -p 5 -sync 8ms
//	wireharness -engines 4 -reset 0.02 -partition 0.2 -chaosedges 1,2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"streampca"
)

func main() {
	ctx := context.Background()
	// A re-executed copy of this binary becomes a worker process.
	if ran, err := streampca.WireWorkerFromEnv(ctx); ran {
		if err != nil {
			fmt.Fprintln(os.Stderr, "wireharness worker:", err)
			os.Exit(1)
		}
		return
	}

	engines := flag.Int("engines", 4, "worker processes to spawn")
	n := flag.Int64("n", 100000, "observations to stream")
	d := flag.Int("d", 250, "dimensionality")
	p := flag.Int("p", 5, "principal components")
	window := flag.Float64("window", 5000, "effective sample size N (alpha = 1-1/N)")
	syncEvery := flag.Duration("sync", 8*time.Millisecond, "sync throttle period (0 disables)")
	strategy := flag.String("strategy", "broadcast", "sync strategy: ring, broadcast, group, p2p")
	batch := flag.Int("batch", 32, "micro-batch size for the transport")
	adaptive := flag.Bool("adaptive", false, "let the coordinator retune batch width and cork deadline from its own instruments")
	seed := flag.Uint64("seed", 1, "seed")
	outliers := flag.Float64("outliers", 0.02, "synthetic outlier rate")
	reset := flag.Float64("reset", 0, "per-write probability of an injected connection reset")
	partition := flag.Float64("partition", 0, "probability a reconnect dial lands in a partition window")
	partitionFor := flag.Duration("partitionfor", 50*time.Millisecond, "length of one partition window")
	chaosEdges := flag.String("chaosedges", "", "comma-separated edge indices to fault (default: all, when -reset/-partition set)")
	flag.Parse()

	alpha := 1.0
	if *window > 0 {
		alpha = 1 - 1 / *window
	}
	var strat streampca.SyncStrategy
	switch *strategy {
	case "ring":
		strat = streampca.SyncRing
	case "broadcast":
		strat = streampca.SyncBroadcast
	case "group":
		strat = streampca.SyncGroup
	case "p2p":
		strat = streampca.SyncPeerToPeer
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	chaos, err := chaosPlans(*engines, *reset, *partition, *partitionFor, *chaosEdges, *seed)
	if err != nil {
		fatal(err)
	}

	spec := streampca.WorkerSpec{
		Dim: *d, Components: *p, Alpha: alpha, Batch: *batch, Sessions: 1,
	}
	cl, err := streampca.LaunchWorkers(ctx, *engines, spec)
	if err != nil {
		fatal(err)
	}
	defer cl.Shutdown()
	fmt.Printf("cluster: %d workers on %s\n", *engines, strings.Join(cl.Addrs, " "))

	gen, err := streampca.NewSignalGenerator(streampca.SignalConfig{
		Dim: *d, Signals: *p, OutlierRate: *outliers, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	var streamed int64
	source := func() ([]float64, []bool, bool) {
		if streamed >= *n {
			return nil, nil, false
		}
		streamed++
		x, _ := gen.Next()
		return x, nil, true
	}

	res, err := streampca.RunCoordinator(ctx, streampca.DistConfig{
		Engine:        streampca.Config{Dim: *d, Components: *p, Alpha: alpha},
		Workers:       cl.Addrs,
		Source:        source,
		Seed:          *seed,
		SyncEvery:     *syncEvery,
		SyncStrategy:  strat,
		Batch:         *batch,
		AdaptiveBatch: *adaptive,
		Chaos:         chaos,
		Retry: streampca.RetryPolicy{
			MaxAttempts: 60, Base: time.Millisecond,
			Cap: 100 * time.Millisecond, Factor: 2, Jitter: 0.2,
		},
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("stream: %d tuples in %v (%.0f tuples/s)\n",
		res.TuplesIn, res.Elapsed.Round(time.Millisecond), res.Throughput())
	if *adaptive {
		fmt.Printf("adaptive: %d retunes, final batch %d, final flush %v\n",
			res.Retunes, res.FinalBatch, res.FinalFlush)
	}
	var processed int64
	for _, st := range res.Engines {
		processed += st.Processed
		fmt.Printf("engine %d: processed %d, outliers %d, syncs sent %d, merges %d\n",
			st.Engine, st.Processed, st.Outliers, st.SnapshotsSent, st.MergesApplied)
	}
	for i, ws := range res.Wire {
		fmt.Printf("edge %d: %d tuples out, %d msgs out, %d msgs in, %d reconnects, %d resets, %d drops\n",
			i, ws.TuplesSent, ws.MsgsSent, ws.MsgsRecv, ws.Reconnects, ws.Resets, ws.Drops)
	}
	fmt.Printf("delivered: %d/%d tuples (%.2f%%)\n",
		processed, res.TuplesIn, 100*float64(processed)/float64(res.TuplesIn))
	if res.Merged != nil {
		fmt.Printf("merged eigensystem: %s\n", res.Merged)
	}
	if err := cl.Wait(); err != nil {
		fatal(fmt.Errorf("worker exit: %w", err))
	}
}

// chaosPlans builds the per-edge fault map from the flag values; nil when no
// fault rate is set.
func chaosPlans(engines int, reset, partition float64, window time.Duration, edges string, seed uint64) (map[int]*streampca.WireConnPlan, error) {
	if reset == 0 && partition == 0 {
		return nil, nil
	}
	idx := make([]int, 0, engines)
	if edges == "" {
		for i := 0; i < engines; i++ {
			idx = append(idx, i)
		}
	} else {
		for _, f := range strings.Split(edges, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || i < 0 || i >= engines {
				return nil, fmt.Errorf("bad chaos edge %q", f)
			}
			idx = append(idx, i)
		}
	}
	plans := make(map[int]*streampca.WireConnPlan, len(idx))
	for _, i := range idx {
		plans[i] = &streampca.WireConnPlan{
			Reset: reset, Partition: partition, PartitionFor: window,
			Seed: seed + uint64(i),
		}
	}
	return plans, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wireharness:", err)
	os.Exit(1)
}
