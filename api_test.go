package streampca_test

import (
	"context"
	"testing"
	"time"

	"streampca"
)

// TestPublicAPIEndToEnd exercises the whole facade the way the quickstart
// example does: generate spectra, run the estimator, check convergence.
func TestPublicAPIEndToEnd(t *testing.T) {
	gen, err := streampca.NewSpectraGenerator(streampca.SpectraConfig{
		Grid: streampca.SDSSGrid(200), Rank: 3, Seed: 1, OutlierRate: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	en, err := streampca.NewEngine(streampca.Config{
		Dim: 200, Components: 3, Alpha: 1 - 1.0/2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var outliers int
	for i := 0; i < 8000; i++ {
		obs := gen.Next()
		u, err := en.Observe(obs.Flux)
		if err != nil {
			t.Fatal(err)
		}
		if u.Outlier {
			outliers++
		}
	}
	es, err := en.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if aff := es.SubspaceAffinity(gen.TrueBasis()); aff < 0.95 {
		t.Fatalf("affinity = %v", aff)
	}
	if outliers == 0 {
		t.Fatal("no outliers flagged")
	}
}

func TestPublicPipeline(t *testing.T) {
	gen, err := streampca.NewSignalGenerator(streampca.SignalConfig{Dim: 30, Signals: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var n int
	res, err := streampca.RunPipeline(context.Background(), streampca.PipelineConfig{
		Engine:       streampca.Config{Dim: 30, Components: 2, Alpha: 1 - 1.0/300},
		NumEngines:   3,
		SyncEvery:    2 * time.Millisecond,
		SyncStrategy: streampca.SyncRing,
		Source: func() ([]float64, []bool, bool) {
			if n >= 6000 {
				return nil, nil, false
			}
			n++
			x, _ := gen.Next()
			return x, nil, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged == nil {
		t.Fatal("no merged system")
	}
	if aff := res.Merged.SubspaceAffinity(gen.TrueBasis()); aff < 0.85 {
		t.Fatalf("pipeline affinity = %v", aff)
	}
}

func TestPublicBaselinesAndMerge(t *testing.T) {
	gen, _ := streampca.NewSignalGenerator(streampca.SignalConfig{Dim: 25, Signals: 2, Seed: 3, OutlierRate: 0.1})
	xs := make([][]float64, 2000)
	for i := range xs {
		xs[i], _ = gen.Next()
	}
	classic, err := streampca.BatchPCA(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	rob, err := streampca.BatchRobustPCA(xs, 2, streampca.DefaultBisquare(), 0.5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rob.Sigma2 >= classic.Sigma2 {
		t.Fatal("robust scale should be below contaminated classical scale")
	}
	vals, err := streampca.RobustEigenvalues(gen.TrueBasis(), make([]float64, 25), xs,
		streampca.DefaultBisquare(), 0.5)
	if err != nil || len(vals) != 2 {
		t.Fatalf("RobustEigenvalues: %v %v", vals, err)
	}
}

func TestPublicClusterSim(t *testing.T) {
	st, err := streampca.SimulateCluster(streampca.ClusterConfig{
		Engines: 10, Duration: 5, Warmup: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
	if streampca.DefaultClusterSpec().Nodes != 10 {
		t.Fatal("default spec wrong")
	}
	if streampca.DefaultClusterWorkload().Dim != 250 {
		t.Fatal("default workload wrong")
	}
}

func TestPublicHelpers(t *testing.T) {
	if c := streampca.TuneBisquare(0.5); c < 1.5 || c > 1.6 {
		t.Fatalf("TuneBisquare = %v", c)
	}
	s2, err := streampca.MScale(streampca.DefaultBisquare(), []float64{1, 1.2, 0.9, 1.1}, 0.5, 0)
	if err != nil || s2 <= 0 {
		t.Fatalf("MScale: %v %v", s2, err)
	}
	if len(streampca.LineCatalog()) < 10 {
		t.Fatal("line catalog too small")
	}
	flux := []float64{1, 2, 3}
	if _, err := streampca.Normalize(flux, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPublicFusionAndMetrics(t *testing.T) {
	gen, _ := streampca.NewSignalGenerator(streampca.SignalConfig{Dim: 20, Signals: 2, Seed: 40})
	var n int
	res, err := streampca.RunPipeline(context.Background(), streampca.PipelineConfig{
		Engine:     streampca.Config{Dim: 20, Components: 2, Alpha: 1 - 1.0/300},
		NumEngines: 3,
		Source: func() ([]float64, []bool, bool) {
			if n >= 3000 {
				return nil, nil, false
			}
			n++
			x, _ := gen.Next()
			return x, nil, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	placement := streampca.SuggestFusion(res.Metrics, 2)
	if len(placement) == 0 {
		t.Fatal("empty placement")
	}
	for _, pe := range placement {
		if pe < 0 || pe > 1 {
			t.Fatalf("placement out of range: %v", placement)
		}
	}
	if im := placement.Imbalance(res.Metrics); im < 1 {
		t.Fatalf("imbalance %v below 1", im)
	}
}
