package streampca_test

import (
	"context"
	"testing"
	"time"

	"streampca"
)

// The chaos suite drives the full pipeline through the deterministic fault
// injector: a 4-engine ring survives a lossy, duplicating, reordering split
// fabric plus the crash and checkpoint-restart of one engine, and still
// converges to the same eigenbasis as a clean run.

const (
	chaosDim    = 40
	chaosRank   = 3
	chaosTuples = 20000
)

func chaosSource(t *testing.T, seed uint64, pauseAt int64) streampca.PipelineSource {
	t.Helper()
	gen, err := streampca.NewSignalGenerator(streampca.SignalConfig{
		Dim: chaosDim, Signals: chaosRank, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	return func() ([]float64, []bool, bool) {
		if n >= chaosTuples {
			return nil, nil, false
		}
		n++
		if pauseAt > 0 && n == pauseAt {
			// Give the restart supervisor time to revive the crashed engine
			// while most of the stream is still ahead of it.
			time.Sleep(30 * time.Millisecond)
		}
		x, _ := gen.Next()
		return x, nil, true
	}
}

func chaosRing(src streampca.PipelineSource, chaos *streampca.PipelineChaos) streampca.PipelineConfig {
	return streampca.PipelineConfig{
		Engine:       streampca.Config{Dim: chaosDim, Components: chaosRank, Alpha: 1 - 1.0/2000},
		NumEngines:   4,
		Source:       src,
		Seed:         7,
		SyncEvery:    2 * time.Millisecond,
		SyncStrategy: streampca.SyncRing,
		Chaos:        chaos,
	}
}

func fullChaos() *streampca.PipelineChaos {
	return &streampca.PipelineChaos{
		Edge: map[int]streampca.FaultPlan{
			0: {Seed: 100, Drop: 0.05, Duplicate: 0.02},
			1: {Seed: 101, Drop: 0.05, Reorder: 0.02},
			2: {Seed: 102, Drop: 0.05, Delay: 0.02, MaxDelay: 8},
			3: {Seed: 103, Drop: 0.05, Duplicate: 0.01, Reorder: 0.01},
		},
		// Engine 2 panics on its ~1500th tuple (≈ global tuple 6000 of
		// 20000) and restarts from its last in-memory checkpoint.
		Engine:          map[int]streampca.FaultPlan{2: {PanicAfter: 1500}},
		RestartAfter:    time.Millisecond,
		CheckpointEvery: 200,
	}
}

// TestChaosRingReconverges is the headline scenario: 5% tuple drop on every
// edge (plus duplication, reordering and bounded delay), one engine crash
// and checkpoint-restart — and the surviving cluster still recovers the
// planted eigenbasis, matching the clean run within tolerance.
func TestChaosRingReconverges(t *testing.T) {
	gen, err := streampca.NewSignalGenerator(streampca.SignalConfig{
		Dim: chaosDim, Signals: chaosRank, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := gen.TrueBasis()

	clean, err := streampca.RunPipeline(context.Background(),
		chaosRing(chaosSource(t, 51, 0), nil))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Merged == nil {
		t.Fatal("clean run produced no merged eigensystem")
	}
	cleanAff := clean.Merged.SubspaceAffinity(truth)
	if cleanAff < 0.9 {
		t.Fatalf("clean run affinity = %v, workload too hard for the suite", cleanAff)
	}

	chaotic, err := streampca.RunPipeline(context.Background(),
		chaosRing(chaosSource(t, 51, 12000), fullChaos()))
	if err != nil {
		t.Fatal(err)
	}
	if chaotic.Merged == nil {
		t.Fatal("chaos run produced no merged eigensystem")
	}
	if len(chaotic.Failures) != 1 || chaotic.Failures[0].Name != "pca2" {
		t.Fatalf("failures = %+v, want exactly pca2", chaotic.Failures)
	}
	if chaotic.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", chaotic.Restarts)
	}
	if !chaotic.Engines[2].ResumedFromCheckpoint {
		t.Fatal("crashed engine restarted cold instead of from its checkpoint")
	}
	if chaotic.FaultLog == "" {
		t.Fatal("chaos run produced no fault log")
	}

	// Reconvergence: the chaos-run basis must recover the planted signals
	// and agree with the clean run's basis.
	if aff := chaotic.Merged.SubspaceAffinity(truth); aff < 0.85 {
		t.Fatalf("chaos run affinity to truth = %v (clean %v)", aff, cleanAff)
	}
	cleanBasis := clean.Merged.Vectors.SliceCols(0, chaosRank)
	if aff := chaotic.Merged.SubspaceAffinity(cleanBasis); aff < 0.85 {
		t.Fatalf("chaos run diverged from clean run: cross affinity = %v", aff)
	}
}

// TestChaosBatchedRingReconverges runs the headline scenario over the
// micro-batched transport: the injectors now drop, duplicate and reorder
// whole 16-tuple frames, the crashed engine's checkpoint-restart replays
// across frame boundaries, and the cluster still recovers the planted basis.
// PanicAfter counts messages, so the crash point shrinks by the batch factor
// relative to fullChaos (≈90 frames ≈ 1440 tuples for engine 2).
func TestChaosBatchedRingReconverges(t *testing.T) {
	const batch = 16
	gen, err := streampca.NewSignalGenerator(streampca.SignalConfig{
		Dim: chaosDim, Signals: chaosRank, Seed: 53,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaos := &streampca.PipelineChaos{
		Edge: map[int]streampca.FaultPlan{
			0: {Seed: 100, Drop: 0.05, Duplicate: 0.02},
			1: {Seed: 101, Drop: 0.05, Reorder: 0.02},
			2: {Seed: 102, Drop: 0.05, Delay: 0.02, MaxDelay: 8},
			3: {Seed: 103, Drop: 0.05, Duplicate: 0.01, Reorder: 0.01},
		},
		Engine:          map[int]streampca.FaultPlan{2: {PanicAfter: 90}},
		RestartAfter:    time.Millisecond,
		CheckpointEvery: 200,
	}
	cfg := chaosRing(chaosSource(t, 53, 12000), chaos)
	cfg.Batch = batch
	res, err := streampca.RunPipeline(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 || res.Failures[0].Name != "pca2" {
		t.Fatalf("failures = %+v, want exactly pca2", res.Failures)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	if !res.Engines[2].ResumedFromCheckpoint {
		t.Fatal("crashed engine restarted cold instead of from its checkpoint")
	}
	if res.Engines[2].Processed <= 90*batch {
		t.Fatalf("revived engine processed %d tuples, no post-restart progress",
			res.Engines[2].Processed)
	}
	if res.FaultLog == "" {
		t.Fatal("batched chaos run produced no fault log")
	}
	if res.Merged == nil {
		t.Fatal("batched chaos run produced no merged eigensystem")
	}
	if aff := res.Merged.SubspaceAffinity(gen.TrueBasis()); aff < 0.85 {
		t.Fatalf("batched chaos run affinity to truth = %v", aff)
	}
}

// TestChaosFaultLogDeterministic: the injected fault schedule is a pure
// function of the seeds and the tuple sequence, so two identical runs emit
// byte-identical fault logs — even though goroutine scheduling and sync
// timing differ between them.
func TestChaosFaultLogDeterministic(t *testing.T) {
	run := func() string {
		res, err := streampca.RunPipeline(context.Background(),
			chaosRing(chaosSource(t, 51, 12000), fullChaos()))
		if err != nil {
			t.Fatal(err)
		}
		return res.FaultLog
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("empty fault log")
	}
	if a != b {
		t.Fatalf("same-seed chaos runs produced different fault logs:\n--- a ---\n%.400s\n--- b ---\n%.400s", a, b)
	}
}

// TestChaosCrashWithoutRestartStillFinishes: when the crashed engine stays
// down, the remaining three engines finish the stream and produce a usable
// merged basis — no hangs, no lost termination.
func TestChaosCrashWithoutRestartStillFinishes(t *testing.T) {
	gen, err := streampca.NewSignalGenerator(streampca.SignalConfig{
		Dim: chaosDim, Signals: chaosRank, Seed: 52,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaos := &streampca.PipelineChaos{
		Engine: map[int]streampca.FaultPlan{1: {PanicAfter: 1000}},
	}
	res, err := streampca.RunPipeline(context.Background(),
		chaosRing(chaosSource(t, 52, 0), chaos))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(res.Failures))
	}
	if res.Engines[1].Final != nil {
		t.Fatal("dead engine still reported a final state")
	}
	if res.Merged == nil {
		t.Fatal("survivors produced no merged eigensystem")
	}
	if aff := res.Merged.SubspaceAffinity(gen.TrueBasis()); aff < 0.85 {
		t.Fatalf("survivor affinity = %v", aff)
	}
}
