package pipeline

import (
	"context"
	"testing"
	"time"

	"streampca/internal/obs"
	"streampca/internal/spectra"
)

func newTestTuner(batch int) (*adaptiveTuner, *obs.Set) {
	set := obs.NewSet()
	insts := []*obs.OpInstruments{set.Op("pca0")}
	return newAdaptiveTuner(batch, 2*time.Millisecond, insts, set.Journal(), 0), set
}

// TestAdaptiveTunerPolicy drives retune with synthetic window signals and
// pins the controller's decision table: backpressure growth, hill-climb
// reversal on regression, continuation on improvement, plateau hold, the
// [adaptMinBatch, maxBatch] clamp, and the latency-tracking flush deadline
// with its clamps.
func TestAdaptiveTunerPolicy(t *testing.T) {
	tn, set := newTestTuner(64)
	tn.batch.Store(8)

	// Standing backpressure doubles the width regardless of the rate trend.
	tn.retune(1000, adaptDepthHigh, 0)
	if got := tn.targetBatch(); got != 16 {
		t.Fatalf("backpressure: batch = %d, want 16", got)
	}
	// ...and saturates at maxBatch.
	tn.retune(1000, 100, 0)
	tn.retune(1000, 100, 0)
	tn.retune(1000, 100, 0)
	if got := tn.targetBatch(); got != 64 {
		t.Fatalf("backpressure clamp: batch = %d, want 64", got)
	}

	// A clear rate improvement with no backlog continues the current
	// direction (+1 after backpressure growth) — already at max, so held.
	tn.retune(2000, 0, 0)
	if got := tn.targetBatch(); got != 64 {
		t.Fatalf("improve at max: batch = %d, want 64", got)
	}
	// A regression reverses: 64 → 32.
	tn.retune(1000, 0, 0)
	if got := tn.targetBatch(); got != 32 {
		t.Fatalf("regression: batch = %d, want 32", got)
	}
	// Improvement now continues downward: 32 → 16.
	tn.retune(2000, 0, 0)
	if got := tn.targetBatch(); got != 16 {
		t.Fatalf("continue: batch = %d, want 16", got)
	}
	// A plateau (within ±adaptPlateau) holds.
	tn.retune(2000*(1+adaptPlateau/2), 0, 0)
	if got := tn.targetBatch(); got != 16 {
		t.Fatalf("plateau: batch = %d, want 16", got)
	}
	// Repeated regressions never narrow below adaptMinBatch.
	for i := 0; i < 10; i++ {
		tn.retune(float64(100-i), 0, 0)
	}
	if got := tn.targetBatch(); got < adaptMinBatch {
		t.Fatalf("floor: batch = %d, want ≥ %d", got, adaptMinBatch)
	}

	// The flush deadline tracks adaptFlushFactor × mean latency, clamped.
	tn.retune(1000, 0, 1e6) // 1ms mean → 8ms deadline
	if got := tn.targetFlush(); got != 8*time.Millisecond {
		t.Fatalf("flush tracking: %v, want 8ms", got)
	}
	tn.retune(1000, 0, 1e3) // 1µs mean → clamped up to the floor
	if got := tn.targetFlush(); got != time.Duration(adaptMinFlushNs) {
		t.Fatalf("flush floor: %v, want %v", got, time.Duration(adaptMinFlushNs))
	}
	tn.retune(1000, 0, 1e9) // 1s mean → clamped down to the ceiling
	if got := tn.targetFlush(); got != time.Duration(adaptMaxFlushNs) {
		t.Fatalf("flush ceiling: %v, want %v", got, time.Duration(adaptMaxFlushNs))
	}

	// Every knob change was journaled as adapt-retune with the new width.
	evs := set.Journal().Events(0)
	var retunes int64
	for _, ev := range evs {
		if ev.Kind != obs.EvAdaptRetune {
			continue
		}
		retunes++
		if ev.Engine != -1 {
			t.Fatalf("retune event Engine = %d, want -1", ev.Engine)
		}
		if ev.N < adaptMinBatch || ev.N > 64 {
			t.Fatalf("retune event width %d out of range", ev.N)
		}
	}
	if retunes != tn.Retunes() {
		t.Fatalf("journaled %d retunes, counter says %d", retunes, tn.Retunes())
	}
	if retunes == 0 {
		t.Fatal("no retunes journaled")
	}
}

// TestAdaptiveTunerTick pins the windowing mechanics: evaluations fire only
// at adaptEvalTuples boundaries, skip windows shorter than adaptMinEvalNs
// without losing the accumulated interval, and read the engines' histogram
// signals by differencing — so a second window sees only its own samples.
func TestAdaptiveTunerTick(t *testing.T) {
	tn, set := newTestTuner(64)
	inst := set.Op("pca0")

	// Backlog samples land before the first evaluation.
	for i := 0; i < 10; i++ {
		inst.QueueDepth.Record(100)
	}
	// Mid-window ticks are no-ops.
	tn.tick(adaptEvalTuples/2, 10*adaptMinEvalNs)
	if tn.Retunes() != 0 {
		t.Fatal("mid-window tick retuned")
	}
	// A window boundary reached too fast (dt < adaptMinEvalNs since lastNs=0
	// ... here dt is large, so it fires) — use a long dt and check the
	// backpressure rule saw the mean backlog of 100.
	tn.tick(adaptEvalTuples, 20*adaptMinEvalNs)
	if got := tn.targetBatch(); got != 64 {
		t.Fatalf("first window: batch = %d, want 64 (backpressure doubling from 64 clamps)", got)
	}
	if tn.Retunes() != 0 {
		// Width already at max and flush unchanged (no latency samples) — no
		// journal entry expected.
		t.Fatalf("first window journaled %d retunes, want 0", tn.Retunes())
	}

	// Second window: only NEW latency samples count. Record a 4ms mean and
	// confirm the flush deadline moves to 8×4ms clamped to the 20ms ceiling.
	inst.Latency.Record(4_000_000)
	inst.Latency.Record(4_000_000)
	tn.tick(2*adaptEvalTuples, 40*adaptMinEvalNs)
	if got := tn.targetFlush(); got != time.Duration(adaptMaxFlushNs) {
		t.Fatalf("second window flush = %v, want %v", got, time.Duration(adaptMaxFlushNs))
	}

	// A too-short window is skipped but not lost: the next boundary's rate
	// spans the accumulated interval.
	before := tn.lastNs
	tn.tick(3*adaptEvalTuples, before+adaptMinEvalNs-1)
	if tn.lastNs != before {
		t.Fatal("short window advanced the rate anchor")
	}
	tn.tick(4*adaptEvalTuples, before+2*adaptMinEvalNs)
	if tn.lastNs == before {
		t.Fatal("accumulated window did not evaluate")
	}
}

// TestAdaptiveBatchPipeline runs the in-process pipeline end to end with
// AdaptiveBatch on and verifies the tuner stayed inside its contract: the
// final width within [adaptMinBatch, Batch], the flush deadline within its
// clamps, the journal trail consistent with the retune counter, and the
// PCA result intact.
func TestAdaptiveBatchPipeline(t *testing.T) {
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 40, Signals: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	set := obs.NewSet()
	const tuples = 30000
	res, err := Run(context.Background(), Config{
		Engine:        engineConfig(40, 3, 500),
		NumEngines:    2,
		Source:        signalSource(gen, tuples),
		Batch:         64,
		AdaptiveBatch: true,
		Obs:           set,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesIn != tuples {
		t.Fatalf("TuplesIn = %d, want %d", res.TuplesIn, tuples)
	}
	if res.Merged == nil {
		t.Fatal("no merged eigensystem")
	}
	if res.FinalBatch < adaptMinBatch || res.FinalBatch > 64 {
		t.Fatalf("FinalBatch = %d, want within [%d, 64]", res.FinalBatch, adaptMinBatch)
	}
	if fl := int64(res.FinalFlush); fl != int64(2*time.Millisecond) &&
		(fl < adaptMinFlushNs || fl > adaptMaxFlushNs) {
		t.Fatalf("FinalFlush = %v outside clamps", res.FinalFlush)
	}
	var journaled int64
	for _, ev := range set.Journal().Events(0) {
		if ev.Kind == obs.EvAdaptRetune {
			journaled++
		}
	}
	if journaled != res.Retunes {
		t.Fatalf("journal has %d retunes, Result says %d", journaled, res.Retunes)
	}
}

// TestAdaptiveBatchWithoutObs verifies the tuner provisions its own private
// instrument set when the caller did not ask for observability.
func TestAdaptiveBatchWithoutObs(t *testing.T) {
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 30, Signals: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Engine:        engineConfig(30, 2, 400),
		NumEngines:    1,
		Source:        signalSource(gen, 8000),
		Batch:         32,
		AdaptiveBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesIn != 8000 {
		t.Fatalf("TuplesIn = %d", res.TuplesIn)
	}
	if res.FinalBatch < adaptMinBatch || res.FinalBatch > 32 {
		t.Fatalf("FinalBatch = %d out of range", res.FinalBatch)
	}
}
