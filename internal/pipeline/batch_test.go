package pipeline

import (
	"context"
	"math"
	"testing"
	"time"

	"streampca/internal/spectra"
	"streampca/internal/syncctl"
)

// TestBatchedPipelineConverges runs the micro-batched transport end to end:
// no tuples lost, same convergence as the unbatched path, and the metrics
// prove the batching actually happened — the split moves far fewer messages
// than tuples while the tuple-weighted counters still account for every
// observation.
func TestBatchedPipelineConverges(t *testing.T) {
	const tuples, batch = 20000, 64
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 40, Signals: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Engine:       engineConfig(40, 3, 300),
		NumEngines:   4,
		Source:       signalSource(gen, tuples),
		Batch:        batch,
		SyncEvery:    2 * time.Millisecond,
		SyncStrategy: syncctl.Ring,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesIn != tuples {
		t.Fatalf("TuplesIn = %d", res.TuplesIn)
	}
	var processed int64
	for _, st := range res.Engines {
		processed += st.Processed
		if st.Final == nil {
			t.Fatalf("engine %d never initialized", st.Engine)
		}
	}
	if processed != tuples {
		t.Fatalf("processed %d/%d", processed, tuples)
	}
	if aff := res.Merged.SubspaceAffinity(gen.TrueBasis()); aff < 0.9 {
		t.Fatalf("merged affinity = %v", aff)
	}
	for _, m := range res.Metrics {
		if m.Name != "split" {
			continue
		}
		// A fast in-memory source fills nearly every frame; allow slack for
		// deadline-flushed partials but require an order-of-magnitude win.
		if m.In > tuples/batch*4 {
			t.Fatalf("split consumed %d messages for %d tuples — transport not batched", m.In, tuples)
		}
		if m.TuplesIn != tuples {
			t.Fatalf("split tuple-weighted in = %d, want %d", m.TuplesIn, tuples)
		}
		if m.TuplesOut != tuples {
			t.Fatalf("split tuple-weighted out = %d, want %d", m.TuplesOut, tuples)
		}
	}
}

// TestBatchedPipelineSkipsMalformedTuples is the batched twin of
// TestPipelineSkipsMalformedTuples: wrong-length and all-NaN vectors inside
// frames must be dropped with identical accounting to the unbatched path.
func TestBatchedPipelineSkipsMalformedTuples(t *testing.T) {
	gen, _ := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 20, Signals: 2, Seed: 50})
	var n int
	res, err := Run(context.Background(), Config{
		Engine:     engineConfig(20, 2, 300),
		NumEngines: 2,
		Batch:      16,
		Source: func() ([]float64, []bool, bool) {
			if n >= 4000 {
				return nil, nil, false
			}
			n++
			switch n % 10 {
			case 0:
				return make([]float64, 7), nil, true // wrong length
			case 5:
				bad := make([]float64, 20)
				for i := range bad {
					bad[i] = math.NaN()
				}
				return bad, nil, true // entirely missing
			default:
				x, _ := gen.Next()
				return x, nil, true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var processed int64
	for _, st := range res.Engines {
		processed += st.Processed
	}
	if processed != 3200 {
		t.Fatalf("processed %d, want 3200", processed)
	}
	if res.Merged == nil {
		t.Fatal("malformed tuples derailed the run")
	}
}

// TestBatchedPipelineGappySpectra routes masked observations through the
// batched transport: gappy rows break the engine's clean runs and take the
// scalar masked path, so convergence must match the unbatched gappy test.
func TestBatchedPipelineGappySpectra(t *testing.T) {
	gen, err := spectra.NewGenerator(spectra.GeneratorConfig{
		Grid: spectra.SDSSGrid(120), Rank: 3, Seed: 6, GapRate: 0.3, NoiseSigma: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := engineConfig(120, 3, 500)
	cfg.Extra = 2
	res, err := Run(context.Background(), Config{
		Engine:     cfg,
		NumEngines: 2,
		Source:     spectraSource(gen, 8000),
		Batch:      32,
		SyncEvery:  3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if aff := res.Merged.SubspaceAffinity(gen.TrueBasis()); aff < 0.85 {
		t.Fatalf("batched gappy spectra affinity = %v", aff)
	}
}

// TestBatchedFlushDeadline checks the tail-latency bound: a source that
// trickles tuples far slower than the frame fills must still see its data
// flushed by the deadline, not held until Batch tuples accumulate.
func TestBatchedFlushDeadline(t *testing.T) {
	const tuples = 10
	gen, _ := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 20, Signals: 2, Seed: 22})
	var n int
	res, err := Run(context.Background(), Config{
		Engine:     engineConfig(20, 2, 100),
		NumEngines: 1,
		Batch:      64,
		FlushEvery: time.Millisecond,
		Source: func() ([]float64, []bool, bool) {
			if n >= tuples {
				return nil, nil, false
			}
			n++
			time.Sleep(5 * time.Millisecond)
			x, _ := gen.Next()
			return x, nil, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesIn != tuples {
		t.Fatalf("TuplesIn = %d", res.TuplesIn)
	}
	for _, m := range res.Metrics {
		if m.Name == "source" {
			// With a 64-tuple frame and a deadline far below the inter-tuple
			// gap, the stream must arrive as several partial frames, not one.
			if m.Out < 3 {
				t.Fatalf("source emitted %d frames; deadline flush not working", m.Out)
			}
			if m.TuplesOut != tuples {
				t.Fatalf("source tuple-weighted out = %d, want %d", m.TuplesOut, tuples)
			}
		}
	}
}
