package pipeline

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"streampca/internal/core"
	"streampca/internal/ingest"
	"streampca/internal/mat"
	"streampca/internal/obs"
	"streampca/internal/stream"
	"streampca/internal/syncctl"
	"streampca/internal/wire"
)

// This file is the multi-process deployment of the Figure-2 graph: the
// coordinator keeps the source, split, sync controller and sink, while each
// PCA engine runs in its own process behind a wire.Edge. The graph shape is
// unchanged — TCP edges are spliced exactly where the split→engine and
// engine→sink channels used to be, and the sync fabric's control and
// snapshot messages ride the same sockets.
//
//	coordinator                                 worker i
//	source ─ split ─┬─ send₀ ══════ TCP ══════ recv ─┬─ pca ─ report ─ send
//	 ticker ─ ctl ─▷│   …                            │◁ control/snapshot
//	        router ─┴─ sendᵢ (loop edges)            ╵
//	   ▲────┴── recvᵢ (snapshots, reports) ◁═══════ engine's send half
//
// Control commands and peer snapshots are routed point-to-point by the
// coordinator: worker i's snapshot addressed To=j comes up edge i and goes
// back down edge j, so workers never dial each other and the paper's 1.5·N
// independence criterion still runs inside each engine (both on send and on
// merge), with send/skip evidence journaled worker-side via internal/obs.

// DistConfig assembles a distributed streaming-PCA run. The zero values of
// the sync fields mirror Config.
type DistConfig struct {
	// Engine is the per-engine PCA configuration (validated by RunCoordinator).
	Engine core.Config
	// Workers lists the TCP addresses of the worker processes; one engine
	// per worker. Required.
	Workers []string
	// Source provides the data; required.
	Source Source
	// Split, Seed, SyncEvery, SyncStrategy, SyncGroupSize, SyncFactor,
	// Batch, FlushEvery and Buffer mean exactly what they mean on Config.
	Split         stream.SplitPolicy
	Seed          uint64
	SyncEvery     time.Duration
	SyncStrategy  syncctl.Strategy
	SyncGroupSize int
	SyncFactor    float64
	Batch         int
	FlushEvery    time.Duration
	Buffer        int
	// AdaptiveBatch mirrors Config.AdaptiveBatch: when true (and Batch > 1)
	// the coordinator retunes the packer's frame width and flush deadline
	// from the wire-send operators' queue-depth and latency histograms, and
	// drives each edge's coalescing cork deadline from the same signal.
	AdaptiveBatch bool
	// BarrierEvery, when positive, weaves a checkpoint barrier into the
	// data stream every that many tuples; the split broadcasts it to every
	// engine, which snapshots its state on arrival.
	BarrierEvery int64
	// Retry is the per-edge reconnect policy (ingest defaults apply).
	Retry ingest.RetryPolicy
	// DialTimeout bounds one dial attempt per edge.
	DialTimeout time.Duration
	// Chaos maps an engine index to a connection fault plan on its edge —
	// the wire analogue of ChaosConfig.Edge.
	Chaos map[int]*wire.ConnPlan
	// Obs, when non-nil, instruments the coordinator graph and journals
	// wire connect/down/EOS events.
	Obs *obs.Set
	// Cluster, when non-nil, absorbs the workers' periodic obs-reports into
	// the coordinator's cluster-wide view (metrics, merged trace, end-to-end
	// latency); nil drops the reports on arrival.
	Cluster *obs.ClusterCollector
}

// routePort maps a decoded wire message to the engine operator's input
// port on the worker side.
func routePort(msg stream.Message) int {
	switch msg.(type) {
	case stream.Control:
		return portControl
	case stream.Snapshot:
		return portSnapshot
	case wire.ClockEcho:
		// Toward the telemetry operator; with telemetry off the port is
		// unconnected and the echo is silently dropped.
		return portClock
	default:
		return portData
	}
}

// statsFromReport converts the wire form of an engine report back into the
// pipeline's result type.
func statsFromReport(r wire.EngineReport) EngineStats {
	return EngineStats{
		Engine:                r.Engine,
		Processed:             r.Processed,
		Outliers:              r.Outliers,
		SnapshotsSent:         r.SnapshotsSent,
		MergesApplied:         r.MergesApplied,
		Restarts:              r.Restarts,
		ResumedFromCheckpoint: r.Resumed,
		Final:                 r.Final,
	}
}

// reportFromStats is the worker-side inverse of statsFromReport.
func reportFromStats(st EngineStats) wire.EngineReport {
	return wire.EngineReport{
		Engine:        st.Engine,
		Processed:     st.Processed,
		Outliers:      st.Outliers,
		SnapshotsSent: st.SnapshotsSent,
		MergesApplied: st.MergesApplied,
		Restarts:      st.Restarts,
		Resumed:       st.ResumedFromCheckpoint,
		Final:         st.Final,
	}
}

// wireRouter is the coordinator's sync-plane switchboard. Inputs: ports
// 0..n-1 carry worker traffic (snapshots, reports) up their edges, port n
// carries controller commands over a loop edge. Outputs: ports 0..n-1 feed
// the per-worker send operators over loop edges (droppable, like the
// in-process sync fabric), port n feeds the result sink.
type wireRouter struct {
	n       int
	cluster *obs.ClusterCollector
}

// Process implements stream.Operator.
func (r *wireRouter) Process(port int, msg stream.Message, emit stream.Emit) {
	switch m := msg.(type) {
	case stream.Control:
		if m.Sender >= 0 && m.Sender < r.n {
			emit(m.Sender, m)
		}
	case stream.Snapshot:
		if m.To >= 0 && m.To < r.n {
			emit(m.To, m)
		}
	case wire.EngineReport:
		emit(r.n, stream.Result{Engine: m.Engine, Seq: m.Processed, Payload: statsFromReport(m)})
	// Clock probes never reach the router: the edge answers them at the
	// transport layer (recvLoop stamps and replies through the sender's
	// priority slot), so the echo cannot be lost to a full send queue the
	// way droppable loop-edge traffic can.
	case wire.ObsReport:
		if r.cluster != nil {
			_ = r.cluster.AbsorbJSON(m.Body)
		}
	}
}

// Flush implements stream.Operator.
func (r *wireRouter) Flush(stream.Emit) {}

// wireLaneFrames sizes a wire send node's queue in frames: enough to keep
// the edge busy through one socket stall. The budget is 32 calibrated
// kernel blocks' worth of tuples — the engine-side unit of work the lane
// must be able to feed without draining — converted to frames at the
// packer's batch width and clamped to [4, 64]. At the measured reference
// point (d=400, batch=32, calibrated block 16) this reproduces the
// 16-frame floor the hardcoded heuristic used.
func wireLaneFrames(engCfg core.Config, batch int) int {
	c := engCfg.BlockSize
	if c <= 0 {
		c = mat.BlockSize(engCfg.Dim, engCfg.Components+engCfg.Extra, 16)
	}
	frames := (32*c + batch - 1) / batch
	if frames < 4 {
		frames = 4
	}
	if frames > 64 {
		frames = 64
	}
	return frames
}

// corkFromFlush maps the packer's flush deadline to a wire cork deadline:
// the cork must be short enough that a corked lone frame still meets the
// producer's latency budget (an eighth of the deadline), but long enough
// to actually bridge an inter-frame gap (50µs floor), and never more than
// 1ms — past that, corking trades too much latency for amortization.
func corkFromFlush(d time.Duration) time.Duration {
	c := d / 8
	if c < 50*time.Microsecond {
		c = 50 * time.Microsecond
	}
	if c > time.Millisecond {
		c = time.Millisecond
	}
	return c
}

// RunCoordinator drives a distributed run against already-listening
// workers and blocks until every worker reported its final state. The
// returned Result matches Run's, with Wire carrying per-edge transport
// counters.
func RunCoordinator(ctx context.Context, cfg DistConfig) (*Result, error) {
	n := len(cfg.Workers)
	if n == 0 {
		return nil, errors.New("pipeline: no workers")
	}
	if cfg.Source == nil {
		return nil, errors.New("pipeline: Source is required")
	}
	engCfg := cfg.Engine
	if err := engCfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SyncFactor == 0 {
		cfg.SyncFactor = 1.5
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	batch := cfg.Batch
	if batch < 1 {
		batch = 1
	}
	nodeBuf := cfg.Buffer
	if batch > 1 {
		nodeBuf = (cfg.Buffer + batch - 1) / batch
		if nodeBuf < 2 {
			nodeBuf = 2
		}
	}
	// The in-process queue heuristic (nodeBuf, as shallow as 2 frames) is
	// tuned for operators whose consumer is a local goroutine. A wire send
	// node's consumer is a TCP socket: its writes block for the whole
	// window-update round trip whenever the kernel buffer fills, and with a
	// 2-deep queue that stall backs up through the split and idles every
	// other edge (and, on a saturated host, the engines themselves). The
	// floor that keeps each edge's lane full across those stalls scales
	// with how much work one engine absorbs per kernel call, so it is
	// derived from the calibrated block width rather than hardcoded —
	// wireLaneFrames reproduces the previously measured 16-frame floor at
	// the d=400, batch=32 reference point.
	wireBuf := nodeBuf
	lane := wireLaneFrames(engCfg, batch)
	if wireBuf < lane {
		wireBuf = lane
	}
	// The router and the send operators also carry the control plane over
	// droppable loop edges; their queues must additionally not be so shallow
	// that data backpressure squeezes every snapshot out.
	syncBuf := wireBuf
	if syncBuf < 2*lane {
		syncBuf = 2 * lane
	}
	for i, plan := range cfg.Chaos {
		if plan == nil {
			continue
		}
		if err := plan.Validate(); err != nil {
			return nil, fmt.Errorf("pipeline: chaos plan for engine %d: %w", i, err)
		}
	}

	// The frame pool is safe here even under chaos: the wire fault layer
	// duplicates encoded bytes, never the frame store, and the send
	// operator releases each frame exactly once after Encode.
	var fpool *framePool
	var tpool *tuplePool
	if batch > 1 {
		fpool = newFramePool(engCfg.Dim, batch)
	} else {
		tpool = newTuplePool(engCfg.Dim)
	}

	var ctl *syncctl.Controller
	if cfg.SyncEvery > 0 && n > 1 {
		ctl = &syncctl.Controller{N: n, Strategy: cfg.SyncStrategy, GroupSize: cfg.SyncGroupSize}
		if cfg.Obs != nil {
			ctl.Inst = cfg.Obs.Sync()
		}
	}

	// Adaptive batching reads the wire-send operators' histograms, so the
	// runtime must be instrumented even when the caller did not ask for
	// observability — a private set keeps that invisible outside the run
	// (the same arrangement Run uses with the engine operators).
	flushEff := cfg.FlushEvery
	if flushEff <= 0 {
		flushEff = 2 * time.Millisecond
	}
	obsSet := cfg.Obs
	var tuner *adaptiveTuner
	if cfg.AdaptiveBatch && batch > 1 {
		if obsSet == nil {
			obsSet = obs.NewSet()
		}
		insts := make([]*obs.OpInstruments, n)
		for i := range insts {
			insts[i] = obsSet.Op(fmt.Sprintf("wire-send-%d", i))
		}
		tuner = newAdaptiveTuner(batch, cfg.FlushEvery, insts, obsSet.Journal(),
			time.Now().UnixNano())
	}

	edges := make([]*wire.Edge, n)
	for i, addr := range cfg.Workers {
		opt := wire.EdgeOptions{
			Name: fmt.Sprintf("wire-%d", i),
			// The coordinator's hello assigns the worker its engine index.
			Hello:       wire.Hello{Engine: i, Dim: engCfg.Dim, Batch: batch, Epoch: 1},
			Retry:       cfg.Retry,
			DialTimeout: cfg.DialTimeout,
			Chaos:       cfg.Chaos[i],
			Obs:         obsSet,
			// The send ring is the coalescing bound; match it to the node
			// queue so one writev can gather a full lane.
			SendLane: wireBuf,
		}
		if tuner != nil {
			// The cork deadline tracks the tuner's flush target: when the
			// tuner stretches the deadline to fill frames, the cork stretches
			// with it (clamped — see corkFromFlush).
			opt.CorkFn = func() time.Duration { return corkFromFlush(tuner.targetFlush()) }
		} else if batch > 1 {
			opt.Cork = corkFromFlush(flushEff)
		}
		if ctl != nil {
			// Exclude unreachable engines from sync plans while their link
			// is down — the distributed analogue of MarkFailed on crash.
			opt.OnState = func(up bool) {
				if up {
					ctl.MarkRecovered(i)
				} else {
					ctl.MarkFailed(i)
				}
			}
		}
		edges[i] = wire.DialEdge(addr, opt)
	}
	defer func() {
		for _, e := range edges {
			e.Close()
		}
	}()

	g := stream.NewGraph()
	var tuplesIn int64
	srcFn := sourceFunc(cfg.Source, engCfg.Dim, batch, cfg.FlushEvery, fpool, tpool, &tuplesIn, cfg.BarrierEvery, tuner)
	src := g.AddSource("source", srcFn)
	split := g.Add("split", &stream.Split{N: n, Policy: cfg.Split, Seed: cfg.Seed},
		stream.WithBuffer(wireBuf))
	if err := g.Connect(src, 0, split, 0); err != nil {
		return nil, err
	}

	router := &wireRouter{n: n, cluster: cfg.Cluster}
	routerID := g.Add("wire-router", router, stream.WithBuffer(syncBuf))
	sendIDs := make([]stream.NodeID, n)
	for i := range edges {
		sendIDs[i] = g.Add(fmt.Sprintf("wire-send-%d", i), edges[i].Operator(),
			stream.WithBuffer(syncBuf))
		if err := g.Connect(split, i, sendIDs[i], 0); err != nil {
			return nil, err
		}
		recvID := g.AddSource(fmt.Sprintf("wire-recv-%d", i), edges[i].Source(nil))
		if err := g.Connect(recvID, 0, routerID, i); err != nil {
			return nil, err
		}
		// Sync traffic back down an edge rides a loop edge: droppable, and
		// outside the EOS accounting (the data path ends the stream, not
		// the control plane).
		if err := g.ConnectLoop(routerID, i, sendIDs[i], 0); err != nil {
			return nil, err
		}
	}
	if ctl != nil {
		tick := g.AddSource("sync-ticker", stream.Ticker(cfg.SyncEvery))
		ctlID := g.Add("sync-controller", ctl)
		if err := g.Connect(tick, 0, ctlID, 0); err != nil {
			return nil, err
		}
		if err := g.ConnectLoop(ctlID, 0, routerID, n); err != nil {
			return nil, err
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var final []EngineStats
	sink := &stream.Collect{
		OnItem: func(msg stream.Message) {
			res := msg.(stream.Result)
			final = append(final, res.Payload.(EngineStats))
		},
		OnFlush: cancel,
	}
	snk := g.Add("sink", sink)
	if err := g.Connect(routerID, n, snk, 0); err != nil {
		return nil, err
	}

	if obsSet != nil {
		g.Instrument(obsSet)
	}

	start := time.Now()
	err := g.Run(runCtx)
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, context.Canceled) {
		return nil, err
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, ctxErr
	}

	res := &Result{
		Engines:  make([]EngineStats, n),
		Metrics:  g.Metrics(),
		Elapsed:  elapsed,
		TuplesIn: tuplesIn,
		Failures: g.Failures(),
		Wire:     make([]wire.EdgeStats, n),
	}
	for i, e := range edges {
		res.Wire[i] = e.Stats()
	}
	if tuner != nil {
		res.Retunes = tuner.Retunes()
		res.FinalBatch = tuner.targetBatch()
		res.FinalFlush = tuner.targetFlush()
	}
	for _, st := range final {
		if st.Engine >= 0 && st.Engine < n {
			res.Engines[st.Engine] = st
		}
	}
	var systems []*core.Eigensystem
	for _, st := range res.Engines {
		if st.Final != nil {
			systems = append(systems, st.Final)
		}
	}
	if len(systems) > 0 {
		if merged, mErr := core.MergeMany(systems); mErr == nil {
			res.Merged = merged
		}
	}
	return res, nil
}

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Engine is the PCA configuration; must match the coordinator's Dim.
	Engine core.Config
	// SyncFactor is the independence criterion multiplier (default 1.5).
	SyncFactor float64
	// Batch sizes the receive pool (frames allocate per message when 0).
	Batch int
	// Buffer is the per-node channel buffer (default 64).
	Buffer int
	// Retry is the edge reconnect policy.
	Retry ingest.RetryPolicy
	// Obs, when non-nil, instruments the worker graph and engine.
	Obs *obs.Set
	// ReportEvery, when positive, turns on the worker's telemetry plane:
	// every period the worker sends the coordinator an NTP-style clock probe
	// and an obs-report carrying its cumulative snapshot, the journal events
	// since the last report (with a fixed re-send overlap, so delivery is
	// at-least-once across reconnects), and recent operator spans for the
	// merged cluster trace. A final report ships at end of stream. When Obs
	// is nil a private set is created so reports still carry the engine and
	// runtime instruments.
	ReportEvery time.Duration
}

// reportOp converts the engine's flush-time Result into a wire
// EngineReport and forwards peer-bound snapshots unchanged — the boundary
// where pipeline types become wire types, so the wire package itself stays
// application-neutral.
type reportOp struct{}

// Process implements stream.Operator.
func (reportOp) Process(_ int, msg stream.Message, emit stream.Emit) {
	switch m := msg.(type) {
	case stream.Result:
		emit(0, reportFromStats(m.Payload.(EngineStats)))
	case stream.Snapshot:
		emit(0, m)
	}
}

// Flush implements stream.Operator.
func (reportOp) Flush(stream.Emit) {}

// telemetryOp is the worker's observability pump. Port 0 carries ticks from
// the telemetry ticker, port 1 the coordinator's clock echoes routed off the
// recv source. Each tick sends a fresh clock probe (so the offset estimate
// keeps converging) followed by an obs-report built against the current
// estimate; each echo folds a new offset sample into the clock state the PCA
// operator also reads for end-to-end stamping.
type telemetryOp struct {
	rep   *obs.Reporter
	clock *wire.ClockState
	node  int
}

// Process implements stream.Operator.
func (t *telemetryOp) Process(_ int, msg stream.Message, emit stream.Emit) {
	if e, ok := msg.(wire.ClockEcho); ok {
		t.clock.AddSample(e, time.Now().UnixNano())
		return
	}
	emit(0, wire.ClockProbe{Node: t.node, T1: time.Now().UnixNano()})
	t.emitReport(emit)
}

func (t *telemetryOp) emitReport(emit stream.Emit) {
	r := t.rep.Report(t.clock.OffsetNs(), t.clock.RTTNs())
	body, err := json.Marshal(r)
	if err != nil {
		return
	}
	emit(0, wire.ObsReport{Node: t.node, Seq: r.Seq, Body: body})
}

// Flush implements stream.Operator: one last report at end of stream, so the
// coordinator's cluster view always includes the session's final state even
// when the run is shorter than one report period.
func (t *telemetryOp) Flush(emit stream.Emit) {
	t.emitReport(emit)
}

// telemetryTicker emits one tick per period until the data stream ends
// (done closes) or ctx is cancelled. Unlike stream.Ticker it terminates on
// its own: the worker graph has no sink-driven cancel — every source must
// return for the run to drain, and it is the tick source's EOS (together
// with the recv source's) that flushes the telemetry operator's final
// report before the wire-send operator seals the session.
func telemetryTicker(period time.Duration, done <-chan struct{}) stream.SourceFunc {
	return func(ctx context.Context, emit stream.Emit) error {
		// An immediate first tick: a session shorter than one period must
		// still probe the coordinator clock and ship a report — the echo
		// round-trips in well under the data drain time, so even the
		// fastest run ends with a kept clock sample.
		emit(0, 0)
		t := time.NewTicker(period)
		defer t.Stop()
		for i := int64(1); ; i++ {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-done:
				return nil
			case <-t.C:
				emit(0, i)
			}
		}
	}
}

// ServeWorkerSession accepts one coordinator session on the listener and
// runs a single PCA engine against it: data, control and snapshot traffic
// come down the edge, snapshots and the final report go back up. The
// engine index is whatever the coordinator's hello assigned. Returns the
// engine's final stats.
func ServeWorkerSession(ctx context.Context, ln *wire.Listener, cfg WorkerConfig) (*EngineStats, error) {
	engCfg := cfg.Engine
	if err := engCfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.SyncFactor == 0 {
		cfg.SyncFactor = 1.5
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}

	edge := ln.Edge()
	defer edge.Close()
	hello, err := edge.Peer(ctx)
	if err != nil {
		return nil, err
	}
	id := hello.Engine
	en, err := core.NewEngine(engCfg)
	if err != nil {
		return nil, err
	}
	op := &pcaOperator{id: id, engine: en, syncFactor: cfg.SyncFactor, cfg: engCfg}
	// Park the kernel pool when the session ends (restore may have swapped
	// the engine, so close through the operator's current pointer).
	defer func() { op.engine.Close() }()
	// Telemetry needs an instrument set to report from; make a private one
	// when the caller turned on reporting without providing observability.
	obsSet := cfg.Obs
	if cfg.ReportEvery > 0 && obsSet == nil {
		obsSet = obs.NewSet()
	}
	if obsSet != nil {
		inst := obsSet.Engine(max(id, 0))
		op.inst = inst
		op.journal = obsSet.Journal()
		op.e2e = obsSet.E2E()
		en.SetInstruments(inst)
	}
	var tel *telemetryOp
	if cfg.ReportEvery > 0 {
		clock := &wire.ClockState{}
		op.clock = clock
		tel = &telemetryOp{
			rep:   obs.NewReporter(obsSet, fmt.Sprintf("worker-%d", max(id, 0))),
			clock: clock,
			node:  id,
		}
	}

	g := stream.NewGraph()
	recvFn := edge.Source(routePort)
	var dataDone chan struct{}
	if tel != nil {
		// The telemetry ticker stops when the data stream does: the recv
		// source's return closes dataDone, the ticker returns, and EOS from
		// both flushes the telemetry operator's final report.
		dataDone = make(chan struct{})
		inner := recvFn
		recvFn = func(ctx context.Context, emit stream.Emit) error {
			defer close(dataDone)
			return inner(ctx, emit)
		}
	}
	src := g.AddSource("wire-recv", recvFn)
	pcaID := g.Add(fmt.Sprintf("pca%d", id), op, stream.WithBuffer(cfg.Buffer))
	for _, port := range []int{portData, portControl, portSnapshot} {
		if err := g.Connect(src, port, pcaID, port); err != nil {
			return nil, err
		}
	}
	var st EngineStats
	trans := g.Add("wire-report", reportOp{})
	if err := g.Connect(pcaID, portResult, trans, 0); err != nil {
		return nil, err
	}
	if err := g.Connect(pcaID, portSnapshotOut, trans, 1); err != nil {
		return nil, err
	}
	send := g.Add("wire-send", edge.Operator())
	if err := g.Connect(trans, 0, send, 0); err != nil {
		return nil, err
	}
	if tel != nil {
		telID := g.Add("wire-telemetry", tel)
		tick := g.AddSource("obs-ticker", telemetryTicker(cfg.ReportEvery, dataDone))
		if err := g.Connect(tick, 0, telID, 0); err != nil {
			return nil, err
		}
		if err := g.Connect(src, portClock, telID, 1); err != nil {
			return nil, err
		}
		if err := g.Connect(telID, 0, send, 0); err != nil {
			return nil, err
		}
	}
	if obsSet != nil {
		g.Instrument(obsSet)
	}
	if err := g.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return nil, err
	}
	st = EngineStats{
		Engine:                id,
		Processed:             op.processed,
		Outliers:              op.outliers,
		SnapshotsSent:         op.sent,
		MergesApplied:         op.merged,
		Restarts:              op.restarts,
		ResumedFromCheckpoint: op.resumed,
	}
	return &st, ctx.Err()
}

// RunWorker listens on addr and serves coordinator sessions until sessions
// have completed (0 = until ctx is cancelled). ready, when non-nil, is
// called once with the bound address — how the harness learns a port-0
// listener's port.
func RunWorker(ctx context.Context, addr string, sessions int, cfg WorkerConfig, ready func(net.Addr)) error {
	// With reporting on, the instrument set must exist before the listener so
	// the worker edge's transport gauges (bytes/frames per writev, cork
	// stalls) land in the set the reports ship.
	if cfg.ReportEvery > 0 && cfg.Obs == nil {
		cfg.Obs = obs.NewSet()
	}
	ln, err := wire.ListenEdge(addr, wire.EdgeOptions{
		Name:  "wire-worker",
		Hello: wire.Hello{Engine: -1, Dim: cfg.Engine.Dim, Batch: cfg.Batch, Epoch: 1},
		Dim:   cfg.Engine.Dim,
		Batch: cfg.Batch,
		Retry: cfg.Retry,
		Obs:   cfg.Obs,
	})
	if err != nil {
		return err
	}
	defer ln.Close()
	if ready != nil {
		ready(ln.Addr())
	}
	for served := 0; sessions <= 0 || served < sessions; served++ {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if _, err := ServeWorkerSession(ctx, ln, cfg); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
	}
	return nil
}

// sourceFunc builds the graph source shared by the in-process and
// distributed runtimes: the micro-batching frame packer (batch > 1) or the
// per-tuple emitter, optionally weaving checkpoint barriers into the data
// stream every barrierEvery tuples. A non-nil tuner makes the frame width
// and flush deadline adaptive: the packer re-reads both targets every tuple
// and ticks the tuner so it can retune at window boundaries (frame stores
// are allocated at the configured maximum, so a narrower target just means
// partial fill — never a realloc).
func sourceFunc(src Source, dim, batch int, flushEvery time.Duration, fpool *framePool, pool *tuplePool, tuplesIn *int64, barrierEvery int64, tuner *adaptiveTuner) stream.SourceFunc {
	if batch > 1 {
		if flushEvery <= 0 {
			flushEvery = 2 * time.Millisecond
		}
		return func(ctx context.Context, emit stream.Emit) error {
			var fs *frameStore
			var opened time.Time
			var sinceBarrier, epoch int64
			flush := func() {
				// The trace stamp reuses the frame-open timestamp the flush
				// deadline already tracks — zero extra clock reads on the hot
				// path. Origin 0: the packer always runs in the stamping
				// (coordinator or single) process.
				fr := stream.Frame{
					Seq:    fs.tuples[0].Seq,
					Tuples: fs.tuples,
					Trace:  stream.Trace{IngestNs: opened.UnixNano()},
				}
				if fpool != nil {
					s := fs
					fr.Release = func() { fpool.put(s) }
				}
				emit(0, fr)
				fs = nil
			}
			for seq := int64(0); ; seq++ {
				vec, mask, ok := src()
				if !ok {
					if fs != nil && len(fs.tuples) > 0 {
						flush()
					}
					return nil
				}
				select {
				case <-ctx.Done():
					return ctx.Err()
				default:
				}
				*tuplesIn++
				if fs == nil {
					if fpool != nil {
						fs = fpool.get()
					} else {
						fs = &frameStore{
							dim:    dim,
							buf:    make([]float64, batch*dim),
							tuples: make([]stream.Tuple, 0, batch),
						}
					}
					opened = time.Now()
				}
				fs.add(seq, vec, mask)
				width, deadline := batch, flushEvery
				now := time.Now()
				if tuner != nil {
					width, deadline = tuner.targetBatch(), tuner.targetFlush()
				}
				if len(fs.tuples) >= width || now.Sub(opened) >= deadline {
					flush()
				}
				if tuner != nil {
					tuner.tick(*tuplesIn, now.UnixNano())
				}
				if barrierEvery > 0 {
					if sinceBarrier++; sinceBarrier >= barrierEvery {
						if fs != nil && len(fs.tuples) > 0 {
							flush()
						}
						epoch++
						emit(0, stream.Barrier{Epoch: epoch})
						sinceBarrier = 0
					}
				}
			}
		}
	}
	return func(ctx context.Context, emit stream.Emit) error {
		var sinceBarrier, epoch int64
		for seq := int64(0); ; seq++ {
			vec, mask, ok := src()
			if !ok {
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			*tuplesIn++
			if pool != nil {
				vec = pool.getVec(vec)
				if mask != nil {
					mask = pool.getMask(mask)
				}
			}
			emit(0, stream.Tuple{Seq: seq, Vec: vec, Mask: mask})
			if barrierEvery > 0 {
				if sinceBarrier++; sinceBarrier >= barrierEvery {
					epoch++
					emit(0, stream.Barrier{Epoch: epoch})
					sinceBarrier = 0
				}
			}
		}
	}
}
