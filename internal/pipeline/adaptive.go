package pipeline

import (
	"sync/atomic"
	"time"

	"streampca/internal/obs"
)

// Adaptive transport tuning closes the observability loop: instead of the
// operator hand-picking Config.Batch and Config.FlushEvery for a workload
// they have to profile offline, the source reads its frame width and flush
// deadline from atomics that a small controller retunes from the runtime's
// own instruments — the same per-operator latency and queue-depth histograms
// the HTTP exposition serves. The controller runs inline on the source
// goroutine (no extra goroutine to supervise), evaluates once per
// adaptEvalTuples window, and journals every move so a postmortem can line
// the retune trail up against the throughput it produced.
//
// Policy, in priority order:
//
//  1. Backpressure: when the engines dequeue against a standing backlog the
//     transport is dispatch-bound — wider frames amortize more per hop, so
//     the width grows regardless of the throughput trend.
//  2. Hill-climb: otherwise the width follows the measured tuples/s —
//     keep moving while it improves, reverse when it regresses, hold on a
//     plateau. Moves are multiplicative (×2/÷2) over a span this small.
//  3. The flush deadline tracks the engines' measured per-message Process
//     time: long enough that deadline flushes stay the exception, clamped
//     so tail staleness stays bounded when engines stall.
//
// The frame width never exceeds Config.Batch: frame stores are allocated at
// that capacity once, so adaptation reuses them at partial fill instead of
// reallocating the pool.
const (
	// adaptEvalTuples is the evaluation window in source tuples.
	adaptEvalTuples = 2048
	// adaptMinEvalNs skips windows shorter than this wall time — rate
	// estimates over a few microseconds are noise.
	adaptMinEvalNs = int64(5 * time.Millisecond)
	// adaptMinBatch is the narrowest adaptive frame; below 2 the batched
	// transport is strictly overhead over the tuple transport.
	adaptMinBatch = 2
	// adaptMinFlushNs / adaptMaxFlushNs clamp the flush deadline.
	adaptMinFlushNs = int64(200 * time.Microsecond)
	adaptMaxFlushNs = int64(20 * time.Millisecond)
	// adaptPlateau is the relative rate change treated as noise.
	adaptPlateau = 0.03
	// adaptDepthHigh is the mean dequeue backlog (messages) above which the
	// backpressure rule overrides the hill-climb.
	adaptDepthHigh = 4.0
	// adaptFlushFactor scales the engines' mean per-message latency into a
	// flush deadline.
	adaptFlushFactor = 8
)

// adaptiveTuner owns the shared knobs (batch, flushNs — written here, read
// by the source's frame loop) and the evaluation state (everything else,
// touched only from the source goroutine's tick calls).
type adaptiveTuner struct {
	batch   atomic.Int64 // current frame width target
	flushNs atomic.Int64 // current flush deadline, ns
	retunes atomic.Int64

	maxBatch int64
	journal  *obs.Journal
	engines  []*obs.OpInstruments

	nextEval   int64
	lastNs     int64
	lastTuples int64
	lastRate   float64
	dir        int64 // +1 widening, −1 narrowing

	// previous cumulative histogram reads, for windowed means
	lastDepthCount, lastDepthSum int64
	lastLatCount, lastLatSum     int64
}

// newAdaptiveTuner starts at the configured width and deadline; engines are
// the pca operators' instrument bundles the signals are read from.
func newAdaptiveTuner(batch int, flushEvery time.Duration, engines []*obs.OpInstruments, journal *obs.Journal, nowNs int64) *adaptiveTuner {
	t := &adaptiveTuner{
		maxBatch: int64(batch),
		journal:  journal,
		engines:  engines,
		nextEval: adaptEvalTuples,
		lastNs:   nowNs,
		dir:      1,
	}
	t.batch.Store(int64(batch))
	if flushEvery <= 0 {
		flushEvery = 2 * time.Millisecond
	}
	t.flushNs.Store(int64(flushEvery))
	return t
}

// targetBatch and targetFlush are the source's per-frame reads.
func (t *adaptiveTuner) targetBatch() int           { return int(t.batch.Load()) }
func (t *adaptiveTuner) targetFlush() time.Duration { return time.Duration(t.flushNs.Load()) }

// Retunes returns how many journal-visible moves the tuner made.
func (t *adaptiveTuner) Retunes() int64 { return t.retunes.Load() }

// tick is called by the source once per emitted tuple; it evaluates at
// window boundaries and is a single comparison otherwise.
func (t *adaptiveTuner) tick(tuples, nowNs int64) {
	if tuples < t.nextEval {
		return
	}
	t.nextEval = tuples + adaptEvalTuples
	dt := nowNs - t.lastNs
	if dt < adaptMinEvalNs {
		return
	}
	rate := float64(tuples-t.lastTuples) / (float64(dt) / 1e9)
	t.lastNs, t.lastTuples = nowNs, tuples
	depthMean, latMeanNs := t.windowedSignals()
	t.retune(rate, depthMean, latMeanNs)
}

// windowedSignals returns the engines' mean dequeue backlog and mean
// per-message Process latency over the window since the previous call, by
// differencing the cumulative histogram totals — no bucket snapshots, no
// allocation.
func (t *adaptiveTuner) windowedSignals() (depthMean, latMeanNs float64) {
	var dc, ds, lc, ls int64
	for _, e := range t.engines {
		dc += e.QueueDepth.Count()
		ds += e.QueueDepth.Sum()
		lc += e.Latency.Count()
		ls += e.Latency.Sum()
	}
	if n := dc - t.lastDepthCount; n > 0 {
		depthMean = float64(ds-t.lastDepthSum) / float64(n)
	}
	if n := lc - t.lastLatCount; n > 0 {
		latMeanNs = float64(ls-t.lastLatSum) / float64(n)
	}
	t.lastDepthCount, t.lastDepthSum = dc, ds
	t.lastLatCount, t.lastLatSum = lc, ls
	return depthMean, latMeanNs
}

// retune applies the policy for one evaluation window and journals the move
// when either knob changed.
func (t *adaptiveTuner) retune(rate, depthMean, latMeanNs float64) {
	oldBatch := t.batch.Load()
	newBatch := oldBatch
	switch {
	case depthMean >= adaptDepthHigh:
		newBatch = oldBatch * 2
		t.dir = 1
	case t.lastRate > 0 && rate < t.lastRate*(1-adaptPlateau):
		t.dir = -t.dir
		newBatch = step(oldBatch, t.dir)
	case t.lastRate > 0 && rate > t.lastRate*(1+adaptPlateau):
		newBatch = step(oldBatch, t.dir)
	}
	if newBatch < adaptMinBatch {
		newBatch = adaptMinBatch
	}
	if newBatch > t.maxBatch {
		newBatch = t.maxBatch
	}

	oldFlush := t.flushNs.Load()
	newFlush := oldFlush
	if latMeanNs > 0 {
		newFlush = int64(adaptFlushFactor * latMeanNs)
		if newFlush < adaptMinFlushNs {
			newFlush = adaptMinFlushNs
		}
		if newFlush > adaptMaxFlushNs {
			newFlush = adaptMaxFlushNs
		}
	}

	t.lastRate = rate
	if newBatch == oldBatch && newFlush == oldFlush {
		return
	}
	t.batch.Store(newBatch)
	t.flushNs.Store(newFlush)
	t.retunes.Add(1)
	if t.journal != nil {
		t.journal.Append(obs.Event{
			Kind: obs.EvAdaptRetune, Engine: -1,
			N: newBatch, A: float64(newFlush), B: rate,
		})
	}
}

// step moves a width one multiplicative notch in dir.
func step(batch, dir int64) int64 {
	if dir > 0 {
		return batch * 2
	}
	return batch / 2
}
