package pipeline

import (
	"sync"

	"streampca/internal/stream"
)

// tuplePool recycles tuple payload buffers between the source and the engine
// operators. The source goroutine copies every emitted vector (and mask) into
// a pooled buffer — so sources are free to reuse their own scratch between
// calls — and the consuming engine returns the buffers once Observe is done
// with them, since the core engine never retains an observation past the
// call. Without the pool every tuple costs one d-sized allocation that lives
// exactly as long as its trip through the split; with it the same handful of
// buffers cycle through the graph.
//
// The pool is disabled under chaos: fault injectors may duplicate a tuple,
// and two deliveries sharing one backing slice would let the first engine's
// release recycle a buffer the duplicate still reads.
type tuplePool struct {
	dim   int
	vecs  sync.Pool
	masks sync.Pool
}

func newTuplePool(dim int) *tuplePool {
	tp := &tuplePool{dim: dim}
	tp.vecs.New = func() any {
		b := make([]float64, dim)
		return &b
	}
	tp.masks.New = func() any {
		b := make([]bool, dim)
		return &b
	}
	return tp
}

// getVec copies src into a pooled buffer. Vectors of the wrong length are
// copied into a fresh slice instead (the engine rejects them; release skips
// them), so malformed tuples still flow through for error accounting.
func (tp *tuplePool) getVec(src []float64) []float64 {
	if len(src) != tp.dim {
		out := make([]float64, len(src))
		copy(out, src)
		return out
	}
	b := *(tp.vecs.Get().(*[]float64))
	copy(b, src)
	//streamvet:ignore workspace-escape intentional lending: the consuming engine returns the buffer via put once Observe is done
	return b
}

// getMask copies a non-nil mask into a pooled buffer, with the same
// wrong-length escape hatch as getVec.
func (tp *tuplePool) getMask(src []bool) []bool {
	if len(src) != tp.dim {
		out := make([]bool, len(src))
		copy(out, src)
		return out
	}
	b := *(tp.masks.Get().(*[]bool))
	copy(b, src)
	//streamvet:ignore workspace-escape intentional lending: the consuming engine returns the buffer via put once Observe is done
	return b
}

// frameStore is the recyclable storage behind one micro-batch frame: a
// single contiguous batch×dim vector buffer (one allocation serving every
// tuple in the frame, cache-friendly for the engine's block path), a lazily
// allocated mask buffer for gappy streams, and the tuple headers themselves.
type frameStore struct {
	dim    int
	buf    []float64
	masks  []bool
	tuples []stream.Tuple
}

// add copies one observation into the store's next slot. Wrong-length
// vectors and masks take the same fresh-copy escape hatch as tuplePool, so
// malformed tuples still flow through for error accounting.
func (fs *frameStore) add(seq int64, vec []float64, mask []bool) {
	i := len(fs.tuples)
	var v []float64
	if len(vec) == fs.dim {
		v = fs.buf[i*fs.dim : (i+1)*fs.dim : (i+1)*fs.dim]
		copy(v, vec)
	} else {
		v = append([]float64(nil), vec...)
	}
	var m []bool
	if mask != nil {
		if len(mask) == fs.dim {
			if fs.masks == nil {
				fs.masks = make([]bool, cap(fs.tuples)*fs.dim)
			}
			m = fs.masks[i*fs.dim : (i+1)*fs.dim : (i+1)*fs.dim]
			copy(m, mask)
		} else {
			m = append([]bool(nil), mask...)
		}
	}
	fs.tuples = append(fs.tuples, stream.Tuple{Seq: seq, Vec: v, Mask: m})
}

// framePool recycles frame stores between the source and the engines under
// the same single-consumer ownership contract as tuplePool: the receiving
// engine calls Frame.Release exactly once when done, returning the whole
// store. Disabled under chaos for the same duplication reason.
type framePool struct {
	dim, batch int
	pool       sync.Pool
}

func newFramePool(dim, batch int) *framePool {
	fp := &framePool{dim: dim, batch: batch}
	fp.pool.New = func() any {
		return &frameStore{
			dim:    dim,
			buf:    make([]float64, batch*dim),
			tuples: make([]stream.Tuple, 0, batch),
		}
	}
	return fp
}

func (fp *framePool) get() *frameStore {
	//streamvet:ignore workspace-escape intentional lending: the receiving engine calls Frame.Release exactly once, returning the store
	return fp.pool.Get().(*frameStore)
}

func (fp *framePool) put(fs *frameStore) {
	fs.tuples = fs.tuples[:0]
	fp.pool.Put(fs)
}

// put returns a tuple's buffers after the engine has consumed it. Only
// exactly dim-sized slices re-enter the pool; anything else was a pass-through
// copy from the wrong-length path. The &slice boxing costs one slice header
// per recycle — small against the d-sized payload it saves.
func (tp *tuplePool) put(vec []float64, mask []bool) {
	if len(vec) == tp.dim {
		tp.vecs.Put(&vec)
	}
	if mask != nil && len(mask) == tp.dim {
		tp.masks.Put(&mask)
	}
}
