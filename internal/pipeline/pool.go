package pipeline

import "sync"

// tuplePool recycles tuple payload buffers between the source and the engine
// operators. The source goroutine copies every emitted vector (and mask) into
// a pooled buffer — so sources are free to reuse their own scratch between
// calls — and the consuming engine returns the buffers once Observe is done
// with them, since the core engine never retains an observation past the
// call. Without the pool every tuple costs one d-sized allocation that lives
// exactly as long as its trip through the split; with it the same handful of
// buffers cycle through the graph.
//
// The pool is disabled under chaos: fault injectors may duplicate a tuple,
// and two deliveries sharing one backing slice would let the first engine's
// release recycle a buffer the duplicate still reads.
type tuplePool struct {
	dim   int
	vecs  sync.Pool
	masks sync.Pool
}

func newTuplePool(dim int) *tuplePool {
	tp := &tuplePool{dim: dim}
	tp.vecs.New = func() any {
		b := make([]float64, dim)
		return &b
	}
	tp.masks.New = func() any {
		b := make([]bool, dim)
		return &b
	}
	return tp
}

// getVec copies src into a pooled buffer. Vectors of the wrong length are
// copied into a fresh slice instead (the engine rejects them; release skips
// them), so malformed tuples still flow through for error accounting.
func (tp *tuplePool) getVec(src []float64) []float64 {
	if len(src) != tp.dim {
		out := make([]float64, len(src))
		copy(out, src)
		return out
	}
	b := *(tp.vecs.Get().(*[]float64))
	copy(b, src)
	return b
}

// getMask copies a non-nil mask into a pooled buffer, with the same
// wrong-length escape hatch as getVec.
func (tp *tuplePool) getMask(src []bool) []bool {
	if len(src) != tp.dim {
		out := make([]bool, len(src))
		copy(out, src)
		return out
	}
	b := *(tp.masks.Get().(*[]bool))
	copy(b, src)
	return b
}

// put returns a tuple's buffers after the engine has consumed it. Only
// exactly dim-sized slices re-enter the pool; anything else was a pass-through
// copy from the wrong-length path. The &slice boxing costs one slice header
// per recycle — small against the d-sized payload it saves.
func (tp *tuplePool) put(vec []float64, mask []bool) {
	if len(vec) == tp.dim {
		tp.vecs.Put(&vec)
	}
	if mask != nil && len(mask) == tp.dim {
		tp.masks.Put(&mask)
	}
}
