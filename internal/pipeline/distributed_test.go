package pipeline

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"streampca/internal/cluster"
	"streampca/internal/ingest"
	"streampca/internal/obs"
	"streampca/internal/spectra"
	"streampca/internal/syncctl"
	"streampca/internal/wire"
)

// TestMain is the harness re-exec hook: LaunchWorkers spawns this very test
// binary with WorkerEnv set, and the child must become a wire worker instead
// of running the test suite.
func TestMain(m *testing.M) {
	if ran, err := WorkerFromEnv(context.Background()); ran {
		if err != nil {
			fmt.Fprintln(os.Stderr, "wire worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// distRetry keeps reconnect latency low enough for tests while never giving
// up inside a chaos partition window.
var distRetry = ingest.RetryPolicy{
	MaxAttempts: 60,
	Base:        time.Millisecond,
	Cap:         50 * time.Millisecond,
	Factor:      2,
	Jitter:      0.2,
}

// launchCluster boots n worker processes serving one session each and
// registers cleanup.
func launchCluster(t *testing.T, n int, spec WorkerSpec) *Cluster {
	t.Helper()
	if spec.Sessions == 0 {
		spec.Sessions = 1
	}
	cl, err := LaunchWorkers(context.Background(), n, spec)
	if err != nil {
		t.Fatalf("launch workers: %v", err)
	}
	t.Cleanup(cl.Shutdown)
	return cl
}

// TestDistributedFourWorkers is the multi-process analogue of
// TestParallelPipelineWithRingSync: the same graph, but every engine lives
// in its own OS process behind a TCP edge. The run must be lossless, the
// sync fabric must move snapshots through the coordinator's router, and
// every engine (and the merged system) must find the planted subspace.
func TestDistributedFourWorkers(t *testing.T) {
	const n, tuples = 4, 20000
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 40, Signals: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cl := launchCluster(t, n, WorkerSpec{Dim: 40, Components: 3, Alpha: 1 - 1.0/150, Batch: 32})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	// Sync-plane timing: the tick must exceed the two-hop snapshot latency
	// (worker → coordinator → worker), or the next round's control beats
	// the previous snapshot to its receiver, which then resets its own
	// window and refuses the merge. Broadcast gives every send three
	// receivers, so merges survive the double-sided 1.5·N criterion's
	// phase alignment reliably enough to assert on.
	res, err := RunCoordinator(ctx, DistConfig{
		Engine:       engineConfig(40, 3, 150),
		Workers:      cl.Addrs,
		Source:       signalSource(gen, tuples),
		SyncEvery:    8 * time.Millisecond,
		SyncStrategy: syncctl.Broadcast,
		Seed:         7,
		Batch:        32,
		BarrierEvery: 2500,
		Retry:        distRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesIn != tuples {
		t.Fatalf("TuplesIn = %d, want %d", res.TuplesIn, tuples)
	}
	var processed, syncsSent, merges int64
	for _, st := range res.Engines {
		processed += st.Processed
		syncsSent += st.SnapshotsSent
		merges += st.MergesApplied
		if st.Final == nil {
			t.Fatalf("engine %d never reported a final eigensystem", st.Engine)
		}
	}
	if processed != tuples {
		t.Fatalf("processed %d/%d", processed, tuples)
	}
	if syncsSent == 0 {
		t.Fatal("no synchronizations crossed the wire")
	}
	if merges == 0 {
		t.Fatal("no merges applied")
	}
	truth := gen.TrueBasis()
	if aff := res.Merged.SubspaceAffinity(truth); aff < 0.9 {
		t.Fatalf("merged affinity = %v", aff)
	}
	for _, st := range res.Engines {
		if aff := st.Final.SubspaceAffinity(truth); aff < 0.8 {
			t.Fatalf("engine %d affinity = %v", st.Engine, aff)
		}
	}
	// Transport accounting: a clean run reconnects never, ships every tuple
	// exactly once, and the per-edge counters agree with the split.
	var sent int64
	for i, ws := range res.Wire {
		if ws.Reconnects != 0 {
			t.Fatalf("edge %d reconnected %d times on a clean network", i, ws.Reconnects)
		}
		if ws.MsgsRecv == 0 {
			t.Fatalf("edge %d never received worker traffic", i)
		}
		sent += ws.TuplesSent
	}
	if sent != tuples {
		t.Fatalf("edges sent %d tuples, split produced %d", sent, tuples)
	}
}

// TestDistributedChaosConvergence is the chaos integration test: four
// worker processes over localhost TCP with injected connection resets and
// partition windows on two of the four edges. The run must complete, never
// invent tuples (at-least-once delivery with no duplicates means every
// engine processes at most what its edge was asked to carry), observe real
// reconnects, and still converge on the planted subspace.
func TestDistributedChaosConvergence(t *testing.T) {
	const n, tuples = 4, 16000
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 40, Signals: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cl := launchCluster(t, n, WorkerSpec{Dim: 40, Components: 3, Alpha: 1 - 1.0/300, Batch: 16})

	chaos := map[int]*wire.ConnPlan{
		1: {Reset: 0.03, Seed: 11},
		2: {Reset: 0.02, Partition: 0.25, PartitionFor: 40 * time.Millisecond, Seed: 12},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := RunCoordinator(ctx, DistConfig{
		Engine:       engineConfig(40, 3, 300),
		Workers:      cl.Addrs,
		Source:       signalSource(gen, tuples),
		SyncEvery:    2 * time.Millisecond,
		SyncStrategy: syncctl.Ring,
		Seed:         9,
		Batch:        16,
		BarrierEvery: 2000,
		Retry:        distRetry,
		Chaos:        chaos,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesIn != tuples {
		t.Fatalf("TuplesIn = %d, want %d", res.TuplesIn, tuples)
	}

	var processed int64
	for i, st := range res.Engines {
		processed += st.Processed
		// TuplesOut <= TuplesIn per edge: reconnect retransmission must
		// never duplicate an observation.
		if st.Processed > res.Wire[i].TuplesSent {
			t.Fatalf("engine %d processed %d tuples but its edge only carried %d",
				i, st.Processed, res.Wire[i].TuplesSent)
		}
	}
	if processed > res.TuplesIn {
		t.Fatalf("engines processed %d tuples from an input of %d", processed, res.TuplesIn)
	}
	if processed < res.TuplesIn/2 {
		t.Fatalf("chaos starved the run: only %d/%d tuples processed", processed, res.TuplesIn)
	}

	var reconnects, resets int64
	for i := range chaos {
		reconnects += res.Wire[i].Reconnects
		resets += res.Wire[i].Resets
	}
	if resets == 0 {
		t.Fatal("chaos plans injected no resets")
	}
	if reconnects == 0 {
		t.Fatal("edges never reconnected despite injected faults")
	}
	for i := range res.Wire {
		if _, chaotic := chaos[i]; !chaotic && res.Wire[i].Reconnects != 0 {
			t.Fatalf("clean edge %d reconnected %d times", i, res.Wire[i].Reconnects)
		}
	}

	// Convergence across reconnects: the merged eigenbasis still finds the
	// planted subspace even though two engines saw torn, replayed streams.
	truth := gen.TrueBasis()
	if res.Merged == nil {
		t.Fatal("no merged eigensystem")
	}
	if aff := res.Merged.SubspaceAffinity(truth); aff < 0.8 {
		t.Fatalf("merged affinity = %v after chaos", aff)
	}
}

// runMeasured drives one real 4-process run with the given forgetting
// window and returns total processed tuples, total snapshot sends, and the
// wall-clock elapsed time.
func runMeasured(t *testing.T, window float64, tuples int64) (int64, int64, time.Duration) {
	t.Helper()
	const n = 4
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 60, Signals: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cl := launchCluster(t, n, WorkerSpec{Dim: 60, Components: 3, Alpha: 1 - 1/window, Batch: 32})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := RunCoordinator(ctx, DistConfig{
		Engine:       engineConfig(60, 3, window),
		Workers:      cl.Addrs,
		Source:       signalSource(gen, tuples),
		SyncEvery:    time.Millisecond,
		SyncStrategy: syncctl.Ring,
		Seed:         13,
		Batch:        32,
		Retry:        distRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	var processed, syncs int64
	for _, st := range res.Engines {
		processed += st.Processed
		syncs += st.SnapshotsSent
	}
	return processed, syncs, res.Elapsed
}

// TestDESAgreesWithMeasuredWireRun validates the discrete-event simulator
// against the real TCP runtime on the same workload. Both systems throttle
// synchronization with the 1.5·N independence criterion, so with a fast
// sync tick the criterion is the binding constraint and the snapshot sends
// per tuple must agree within a generous tolerance. The exclusion decision
// is cross-checked too: with a forgetting window far larger than the
// stream, both the simulator and the real cluster must refuse every sync.
func TestDESAgreesWithMeasuredWireRun(t *testing.T) {
	const tuples = 24000
	const window = 500.0

	processed, realSyncs, elapsed := runMeasured(t, window, tuples)
	if realSyncs == 0 {
		t.Fatal("measured run produced no syncs to validate against")
	}
	realRate := float64(realSyncs) / float64(processed)

	// Calibrate the simulator's cost model from the measured per-thread
	// throughput, then replay the same scenario in virtual time: same
	// engine count, sync period, and independence window.
	perThread := float64(processed) / 4 / elapsed.Seconds()
	wl := cluster.Workload{Dim: 60, Components: 3}
	wl.CostPerFlop = (1 / perThread) / (60 * 4 * 4)
	des, err := cluster.Simulate(cluster.Config{
		Workload:     wl,
		Engines:      4,
		SingleNode:   true,
		SyncPeriod:   1e-3,
		SyncStrategy: syncctl.Ring,
		WindowN:      window,
		Duration:     elapsed.Seconds(),
		Warmup:       1e-3,
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if des.SyncsSent == 0 {
		t.Fatal("simulator predicted no syncs")
	}
	desRate := float64(des.SyncsSent) / float64(des.Tuples)
	if ratio := desRate / realRate; ratio < 1.0/3 || ratio > 3 {
		t.Fatalf("sync rate disagreement: DES %.5f sends/tuple vs measured %.5f (ratio %.2f)",
			desRate, realRate, ratio)
	}

	// Exclusion agreement: a window of 10^6 observations means no engine
	// ever accumulates 1.5·N fresh tuples, so the criterion must suppress
	// every sync in both systems.
	_, blockedSyncs, _ := runMeasured(t, 1e6, 8000)
	if blockedSyncs != 0 {
		t.Fatalf("real cluster sent %d syncs that the criterion should exclude", blockedSyncs)
	}
	desBlocked, err := cluster.Simulate(cluster.Config{
		Workload:     wl,
		Engines:      4,
		SingleNode:   true,
		SyncPeriod:   1e-3,
		SyncStrategy: syncctl.Ring,
		WindowN:      1e6,
		Duration:     elapsed.Seconds(),
		Warmup:       1e-3,
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if desBlocked.SyncsSent != 0 {
		t.Fatalf("simulator sent %d syncs that the criterion should exclude", desBlocked.SyncsSent)
	}
	if desBlocked.SyncsSkipped == 0 {
		t.Fatal("simulator recorded no skipped syncs under the blocking window")
	}
}

// TestDistributedChaosObsReports turns the telemetry plane on under the same
// chaos plans as TestDistributedChaosConvergence and checks the at-least-once
// obs-report accounting: every worker's journal survives the injected resets
// and partitions with zero proven event loss (the per-report overlap window
// re-carries the tail, so a report killed mid-flight costs nothing once a
// later one lands), redeliveries are discarded as dups rather than merged
// twice, and the cluster-wide end-to-end latency histogram is exactly the
// bucket-wise sum of the per-worker ones.
func TestDistributedChaosObsReports(t *testing.T) {
	const n, tuples = 4, 16000
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 40, Signals: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cl := launchCluster(t, n, WorkerSpec{
		Dim: 40, Components: 3, Alpha: 1 - 1.0/300, Batch: 16,
		ReportEvery: 5 * time.Millisecond,
	})

	chaos := map[int]*wire.ConnPlan{
		1: {Reset: 0.03, Seed: 21},
		2: {Reset: 0.02, Partition: 0.25, PartitionFor: 40 * time.Millisecond, Seed: 22},
	}
	cc := obs.NewClusterCollector(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := RunCoordinator(ctx, DistConfig{
		Engine:       engineConfig(40, 3, 300),
		Workers:      cl.Addrs,
		Source:       signalSource(gen, tuples),
		SyncEvery:    2 * time.Millisecond,
		SyncStrategy: syncctl.Ring,
		Seed:         9,
		Batch:        16,
		BarrierEvery: 2000,
		Retry:        distRetry,
		Chaos:        chaos,
		Cluster:      cc,
	})
	if err != nil {
		t.Fatal(err)
	}
	var resets int64
	for i := range chaos {
		resets += res.Wire[i].Resets
	}
	if resets == 0 {
		t.Fatal("chaos plans injected no resets")
	}

	cs := cc.Snapshot()
	if len(cs.Nodes) != n {
		t.Fatalf("cluster snapshot has %d nodes, want %d workers", len(cs.Nodes), n)
	}
	var e2eTotal int64
	for _, node := range cs.Nodes {
		// The telemetry edge flushes a final cumulative report at EOS after
		// the periodic ones, so every worker must land at least two.
		if node.Reports < 2 {
			t.Errorf("%s delivered %d reports, want >= 2 (periodic + final)", node.Node, node.Reports)
		}
		// Reports that died with a reset simply leave seq holes; the ones
		// that arrived must never exceed the seq watermark.
		if node.Reports+node.DupReports > node.ReportSeq {
			t.Errorf("%s absorbed %d reports (+%d dups) beyond seq watermark %d",
				node.Node, node.Reports, node.DupReports, node.ReportSeq)
		}
		// The at-least-once guarantee under chaos: the journal overlap
		// window must cover every reconnect hole, so the merged seq chain
		// proves no event was lost and no duplicate was merged.
		if node.EventGaps != 0 {
			t.Errorf("%s journal lost %d events across reconnects", node.Node, node.EventGaps)
		}
		if node.EventsMerged == 0 {
			t.Errorf("%s merged no journal events despite sync traffic", node.Node)
		}
		if node.Snapshot.E2ELatency == nil || node.Snapshot.E2ELatency.Count == 0 {
			t.Errorf("%s reported no end-to-end latency samples", node.Node)
		} else {
			e2eTotal += node.Snapshot.E2ELatency.Count
		}
	}
	if cs.E2ELatency == nil || cs.E2ELatency.Count != e2eTotal {
		t.Fatalf("merged e2e histogram count = %+v, want sum of per-node counts %d",
			cs.E2ELatency, e2eTotal)
	}
}
