package pipeline

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"streampca/internal/core"
)

// The wire harness boots an N-process localhost cluster by re-executing the
// current binary: a launcher (a test binary or cmd/wireharness) sets
// WorkerEnv to a JSON WorkerSpec and spawns itself N times; each child sees
// the variable, becomes a worker, prints its bound address as the first
// stdout line and serves coordinator sessions. The launcher scrapes the
// ready lines and hands the address list to RunCoordinator.

// WorkerEnv is the environment variable that turns a re-executed binary
// into a wire worker.
const WorkerEnv = "STREAMPCA_WIRE_WORKER"

// readyPrefix is the line a worker prints once it listens.
const readyPrefix = "wire: listening on "

// WorkerSpec is the JSON-serializable subset of a worker's configuration
// that crosses the exec boundary. Engine options that are interfaces (the
// robust loss) stay at their defaults.
type WorkerSpec struct {
	// Dim, Components, Extra, Alpha and InitSize populate core.Config.
	Dim, Components, Extra int
	Alpha                  float64
	InitSize               int
	// SyncFactor is the 1.5·N independence multiplier (default 1.5).
	SyncFactor float64
	// Batch sizes the receive pool.
	Batch int
	// Sessions is how many coordinator sessions to serve before exiting
	// (0 = serve forever).
	Sessions int
	// ReportEvery, when positive, turns on the worker's telemetry plane
	// (see WorkerConfig.ReportEvery). Serialized as nanoseconds.
	ReportEvery time.Duration
}

// Config converts the spec into the worker's engine configuration.
func (ws WorkerSpec) Config() core.Config {
	return core.Config{
		Dim: ws.Dim, Components: ws.Components, Extra: ws.Extra,
		Alpha: ws.Alpha, InitSize: ws.InitSize,
	}
}

// WorkerFromEnv turns the current process into a wire worker when
// WorkerEnv is set: it listens on a kernel-chosen localhost port, prints
// the ready line to stdout and serves the configured sessions. Returns
// false immediately when the variable is unset. Call it first thing in
// main (or TestMain) of any binary used as a harness launcher.
func WorkerFromEnv(ctx context.Context) (bool, error) {
	raw := os.Getenv(WorkerEnv)
	if raw == "" {
		return false, nil
	}
	var ws WorkerSpec
	if err := json.Unmarshal([]byte(raw), &ws); err != nil {
		return true, fmt.Errorf("pipeline: bad %s: %w", WorkerEnv, err)
	}
	cfg := WorkerConfig{
		Engine: ws.Config(), SyncFactor: ws.SyncFactor, Batch: ws.Batch,
		ReportEvery: ws.ReportEvery,
	}
	err := RunWorker(ctx, "127.0.0.1:0", ws.Sessions, cfg, func(a net.Addr) {
		fmt.Printf("%s%s\n", readyPrefix, a)
	})
	return true, err
}

// Cluster is a set of spawned worker processes.
type Cluster struct {
	// Addrs lists the workers' TCP addresses in spawn order; pass it to
	// DistConfig.Workers.
	Addrs []string

	procs []*exec.Cmd
	wg    sync.WaitGroup
}

// LaunchWorkers spawns n copies of the current executable as wire workers
// and waits for each to print its ready line. Call Shutdown when done; a
// cluster whose workers serve a finite session count exits on its own and
// Shutdown merely reaps it.
func LaunchWorkers(ctx context.Context, n int, spec WorkerSpec) (*Cluster, error) {
	bin, err := os.Executable()
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	c := &Cluster{}
	for i := 0; i < n; i++ {
		cmd := exec.CommandContext(ctx, bin)
		cmd.Env = append(os.Environ(), WorkerEnv+"="+string(payload))
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			c.Shutdown()
			return nil, err
		}
		c.procs = append(c.procs, cmd)
		sc := bufio.NewScanner(out)
		addr := ""
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, readyPrefix) {
				addr = strings.TrimPrefix(line, readyPrefix)
				break
			}
		}
		if addr == "" {
			c.Shutdown()
			return nil, fmt.Errorf("pipeline: worker %d exited before its ready line (%v)", i, sc.Err())
		}
		c.Addrs = append(c.Addrs, addr)
		// Keep draining the child's stdout so it never blocks on a full
		// pipe; the goroutine ends when the child exits and closes it.
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			io.Copy(io.Discard, out)
		}()
	}
	return c, nil
}

// Shutdown kills any still-running workers and reaps them all.
func (c *Cluster) Shutdown() {
	for _, p := range c.procs {
		if p.Process != nil {
			p.Process.Kill()
		}
	}
	for _, p := range c.procs {
		p.Wait()
	}
	c.wg.Wait()
}

// Wait blocks until every worker process has exited on its own (useful
// with a finite Sessions spec) and returns the first non-nil exit error.
func (c *Cluster) Wait() error {
	var first error
	for _, p := range c.procs {
		if err := p.Wait(); err != nil && first == nil {
			first = err
		}
	}
	c.wg.Wait()
	return first
}
