package pipeline

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"streampca/internal/core"
	"streampca/internal/spectra"
	"streampca/internal/stream"
	"streampca/internal/syncctl"
)

// signalSource adapts a SignalGenerator to a pipeline Source emitting n
// tuples.
func signalSource(gen *spectra.SignalGenerator, n int64) Source {
	var i int64
	return func() ([]float64, []bool, bool) {
		if i >= n {
			return nil, nil, false
		}
		i++
		x, _ := gen.Next()
		return x, nil, true
	}
}

func spectraSource(gen *spectra.Generator, n int64) Source {
	var i int64
	return func() ([]float64, []bool, bool) {
		if i >= n {
			return nil, nil, false
		}
		i++
		obs := gen.Next()
		return obs.Flux, obs.Mask, true
	}
}

func engineConfig(d, p int, window float64) core.Config {
	return core.Config{Dim: d, Components: p, Alpha: 1 - 1/window}
}

func TestSingleEnginePipeline(t *testing.T) {
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 40, Signals: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Engine:     engineConfig(40, 3, 500),
		NumEngines: 1,
		Source:     signalSource(gen, 4000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TuplesIn != 4000 {
		t.Fatalf("TuplesIn = %d", res.TuplesIn)
	}
	if res.Engines[0].Processed != 4000 {
		t.Fatalf("Processed = %d", res.Engines[0].Processed)
	}
	if res.Merged == nil {
		t.Fatal("no merged eigensystem")
	}
	if aff := res.Merged.SubspaceAffinity(gen.TrueBasis()); aff < 0.95 {
		t.Fatalf("affinity = %v", aff)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not measured")
	}
}

func TestParallelPipelineWithRingSync(t *testing.T) {
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 40, Signals: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Engine:       engineConfig(40, 3, 300),
		NumEngines:   4,
		Source:       signalSource(gen, 20000),
		SyncEvery:    2 * time.Millisecond,
		SyncStrategy: syncctl.Ring,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var processed, syncsSent, merges int64
	for _, st := range res.Engines {
		processed += st.Processed
		syncsSent += st.SnapshotsSent
		merges += st.MergesApplied
		if st.Final == nil {
			t.Fatalf("engine %d never initialized", st.Engine)
		}
	}
	if processed != 20000 {
		t.Fatalf("processed %d/20000", processed)
	}
	if syncsSent == 0 {
		t.Fatal("no synchronizations happened")
	}
	if merges == 0 {
		t.Fatal("no merges applied")
	}
	// Every engine individually, plus the merged system, should have found
	// the planted subspace.
	truth := gen.TrueBasis()
	if aff := res.Merged.SubspaceAffinity(truth); aff < 0.9 {
		t.Fatalf("merged affinity = %v", aff)
	}
	for _, st := range res.Engines {
		if aff := st.Final.SubspaceAffinity(truth); aff < 0.8 {
			t.Fatalf("engine %d affinity = %v", st.Engine, aff)
		}
	}
}

func TestParallelPipelineNoSync(t *testing.T) {
	gen, _ := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 30, Signals: 2, Seed: 3})
	res, err := Run(context.Background(), Config{
		Engine:     engineConfig(30, 2, 300),
		NumEngines: 3,
		Source:     signalSource(gen, 9000),
		Seed:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Engines {
		if st.SnapshotsSent != 0 || st.MergesApplied != 0 {
			t.Fatal("sync disabled but snapshots moved")
		}
	}
	if aff := res.Merged.SubspaceAffinity(gen.TrueBasis()); aff < 0.9 {
		t.Fatalf("merged affinity = %v", aff)
	}
}

func TestBroadcastSyncStrategy(t *testing.T) {
	gen, _ := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 30, Signals: 2, Seed: 4})
	res, err := Run(context.Background(), Config{
		Engine:       engineConfig(30, 2, 200),
		NumEngines:   3,
		Source:       signalSource(gen, 12000),
		SyncEvery:    2 * time.Millisecond,
		SyncStrategy: syncctl.Broadcast,
		Seed:         9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var merges int64
	for _, st := range res.Engines {
		merges += st.MergesApplied
	}
	if merges == 0 {
		t.Fatal("broadcast produced no merges")
	}
}

func TestPipelineWithOutliersAndRoundRobin(t *testing.T) {
	gen, _ := spectra.NewSignalGenerator(spectra.SignalConfig{
		Dim: 30, Signals: 2, Seed: 5, OutlierRate: 0.08,
	})
	res, err := Run(context.Background(), Config{
		Engine:     engineConfig(30, 2, 400),
		NumEngines: 2,
		Source:     signalSource(gen, 10000),
		Split:      stream.SplitRoundRobin,
	})
	if err != nil {
		t.Fatal(err)
	}
	var outliers int64
	for _, st := range res.Engines {
		outliers += st.Outliers
	}
	// ≈ 8% injected; detection should flag a comparable count.
	if outliers < 400 || outliers > 1600 {
		t.Fatalf("outliers flagged = %d, expected ≈ 800", outliers)
	}
	// Round-robin split halves exactly.
	if d := res.Engines[0].Processed - res.Engines[1].Processed; d < -1 || d > 1 {
		t.Fatalf("round robin unbalanced: %d vs %d", res.Engines[0].Processed, res.Engines[1].Processed)
	}
	if aff := res.Merged.SubspaceAffinity(gen.TrueBasis()); aff < 0.9 {
		t.Fatalf("affinity under contamination = %v", aff)
	}
}

func TestPipelineGappySpectra(t *testing.T) {
	gen, err := spectra.NewGenerator(spectra.GeneratorConfig{
		Grid: spectra.SDSSGrid(120), Rank: 3, Seed: 6, GapRate: 0.3, NoiseSigma: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := engineConfig(120, 3, 500)
	cfg.Extra = 2
	res, err := Run(context.Background(), Config{
		Engine:     cfg,
		NumEngines: 2,
		Source:     spectraSource(gen, 8000),
		SyncEvery:  3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if aff := res.Merged.SubspaceAffinity(gen.TrueBasis()); aff < 0.85 {
		t.Fatalf("gappy spectra affinity = %v", aff)
	}
}

func TestPipelineFusedPlacement(t *testing.T) {
	gen, _ := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 30, Signals: 2, Seed: 7})
	res, err := Run(context.Background(), Config{
		Engine:           engineConfig(30, 2, 300),
		NumEngines:       4,
		Source:           signalSource(gen, 8000),
		FuseEnginesPerPE: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var processed int64
	for _, st := range res.Engines {
		processed += st.Processed
	}
	if processed != 8000 {
		t.Fatalf("fused placement lost tuples: %d", processed)
	}
}

func TestPipelineConfigErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("missing source should error")
	}
	src := func() ([]float64, []bool, bool) { return nil, nil, false }
	if _, err := Run(context.Background(), Config{
		Source: src,
		Engine: core.Config{Dim: -1, Components: 1},
	}); err == nil {
		t.Fatal("bad engine config should error")
	}
}

func TestPipelineOuterCancel(t *testing.T) {
	gen, _ := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 20, Signals: 2, Seed: 8})
	var mu sync.Mutex
	endless := func() ([]float64, []bool, bool) {
		mu.Lock()
		defer mu.Unlock()
		x, _ := gen.Next()
		return x, nil, true
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := Run(ctx, Config{
		Engine:     engineConfig(20, 2, 300),
		NumEngines: 2,
		Source:     endless,
	})
	if err == nil {
		t.Fatal("cancelled endless run should surface the context error")
	}
}

func TestMetricsExposeAnalysisGraph(t *testing.T) {
	gen, _ := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 20, Signals: 2, Seed: 9})
	res, err := Run(context.Background(), Config{
		Engine:     engineConfig(20, 2, 300),
		NumEngines: 2,
		Source:     signalSource(gen, 2000),
	})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, m := range res.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{"source", "split", "pca0", "pca1", "sink"} {
		if !names[want] {
			t.Fatalf("metrics missing node %q (have %v)", want, names)
		}
	}
	var splitOut int64
	for _, m := range res.Metrics {
		if m.Name == "split" {
			splitOut = m.Out
		}
	}
	if splitOut != 2000 {
		t.Fatalf("split emitted %d", splitOut)
	}
}

func TestSyncImprovesWorstEngine(t *testing.T) {
	// With a short stream per engine, the unsynchronized worst engine
	// should trail the synchronized one. Uses the same seed for both runs.
	run := func(sync bool) float64 {
		gen, _ := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 40, Signals: 3, Seed: 10})
		cfg := Config{
			Engine:     engineConfig(40, 3, 200),
			NumEngines: 4,
			Source:     signalSource(gen, 8000),
			Seed:       11,
		}
		if sync {
			cfg.SyncEvery = time.Millisecond
			cfg.SyncStrategy = syncctl.Broadcast
		}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		worst := math.Inf(1)
		truth := gen.TrueBasis()
		for _, st := range res.Engines {
			if st.Final == nil {
				return 0
			}
			if a := st.Final.SubspaceAffinity(truth); a < worst {
				worst = a
			}
		}
		return worst
	}
	withSync := run(true)
	if withSync < 0.7 {
		t.Fatalf("worst synced engine affinity = %v", withSync)
	}
}

func TestPipelineSkipsMalformedTuples(t *testing.T) {
	// Wrong-length and NaN-only vectors must be dropped by the engines
	// without derailing the run.
	gen, _ := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 20, Signals: 2, Seed: 50})
	var n int
	res, err := Run(context.Background(), Config{
		Engine:     engineConfig(20, 2, 300),
		NumEngines: 2,
		Source: func() ([]float64, []bool, bool) {
			if n >= 4000 {
				return nil, nil, false
			}
			n++
			switch n % 10 {
			case 0:
				return make([]float64, 7), nil, true // wrong length
			case 5:
				bad := make([]float64, 20)
				for i := range bad {
					bad[i] = math.NaN()
				}
				return bad, nil, true // entirely missing
			default:
				x, _ := gen.Next()
				return x, nil, true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var processed int64
	for _, st := range res.Engines {
		processed += st.Processed
	}
	// 2 of every 10 tuples are malformed and dropped.
	if processed != 3200 {
		t.Fatalf("processed %d, want 3200", processed)
	}
	if res.Merged == nil {
		t.Fatal("malformed tuples derailed the run")
	}
}

func TestPipelineTinyStreamNeverInitializes(t *testing.T) {
	// Fewer tuples than the warm-up size: engines never initialize; the
	// run must still terminate cleanly with Merged == nil.
	gen, _ := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 20, Signals: 2, Seed: 51})
	var n int
	res, err := Run(context.Background(), Config{
		Engine:     engineConfig(20, 2, 300),
		NumEngines: 4,
		Source: func() ([]float64, []bool, bool) {
			if n >= 10 {
				return nil, nil, false
			}
			n++
			x, _ := gen.Next()
			return x, nil, true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged != nil {
		t.Fatal("merged eigensystem from uninitialized engines")
	}
	if res.TuplesIn != 10 {
		t.Fatalf("TuplesIn = %d", res.TuplesIn)
	}
}
