package pipeline

import (
	"bytes"
	"math"
	"time"

	"streampca/internal/core"
	"streampca/internal/obs"
	"streampca/internal/stream"
	"streampca/internal/wire"
)

// Engine operator port layout. Data and results are forward edges; control
// and snapshots ride the loop fabric.
const (
	portData     = 0 // in: stream.Tuple from the split
	portControl  = 1 // in: stream.Control from the sync controller
	portSnapshot = 2 // in: stream.Snapshot from peer engines
	portClock    = 3 // in (worker recv only): wire.ClockEcho toward telemetry

	portResult      = 0 // out: stream.Result at flush
	portSnapshotOut = 1 // out: stream.Snapshot toward peers
)

// pcaOperator adapts a core.Engine to the stream runtime — the Go analogue
// of the paper's custom C++ "streaming PCA operator" (§III-A2). The runtime
// guarantees single-goroutine access, standing in for the mutex the paper
// uses inside the SPL operator's process method.
type pcaOperator struct {
	id         int
	engine     *core.Engine
	syncFactor float64

	// cfg is kept for crash-recovery: a revived operator resumes from its
	// last in-memory checkpoint (§III-C's periodic eigensystem saves).
	cfg       core.Config
	ckptEvery int64
	lastCkpt  []byte

	// pool, when non-nil, receives the tuple's buffers back once Observe has
	// consumed them (the engine never retains an observation past the call).
	pool *tuplePool

	// inst and journal, when non-nil (Config.Obs), receive algorithm gauges
	// and control-plane events. restore re-attaches inst to the replacement
	// engine so gauges survive a crash.
	inst    *obs.EngineInstruments
	journal *obs.Journal

	// e2e, when non-nil, receives the end-to-end tuple latency of every
	// traced frame: ingest stamp at the source to the outlier decision here,
	// in coordinator-clock nanoseconds. clock, when non-nil, supplies the
	// NTP-style offset that maps this process's clock onto the stamping
	// clock (nil in-process, where both stamps share one clock).
	e2e   *obs.Histogram
	clock *wire.ClockState

	// runBuf and updBuf are the frame path's reusable scratch: consecutive
	// clean rows of a frame are collected into runBuf and handed to
	// ObserveBlock with updBuf as the append target, so the steady state
	// absorbs whole frames without allocating.
	runBuf [][]float64
	updBuf []core.Update

	processed, outliers int64
	sent, merged        int64
	restarts            int64
	resumed             bool
}

// Process implements stream.Operator.
func (p *pcaOperator) Process(port int, msg stream.Message, emit stream.Emit) {
	switch port {
	case portData:
		switch t := msg.(type) {
		case stream.Tuple:
			p.observe(t)
		case stream.Frame:
			p.observeFrame(t)
		case stream.Barrier:
			// A checkpoint barrier riding the data stream (Chandy–Lamport
			// style): snapshot state at a consistent point. The distributed
			// runtime injects these so every engine checkpoints against the
			// same stream prefix regardless of channel depths.
			p.checkpoint()
		}
	case portControl:
		ctl, ok := msg.(stream.Control)
		if !ok {
			return
		}
		p.control(ctl, emit)
	case portSnapshot:
		snap, ok := msg.(stream.Snapshot)
		if !ok {
			return
		}
		p.absorb(snap)
	}
}

func (p *pcaOperator) observe(t stream.Tuple) {
	prev := p.processed
	p.observeTuple(t)
	if p.pool != nil {
		p.pool.put(t.Vec, t.Mask)
	}
	p.maybeCheckpoint(prev)
}

// observeTuple feeds one tuple through the engine and updates the counters.
// Malformed or degenerate tuples are dropped; the robust estimator treats
// data quality as a statistical property, not a fatal one.
func (p *pcaOperator) observeTuple(t stream.Tuple) {
	var u core.Update
	var err error
	if t.Mask != nil {
		u, err = p.engine.ObserveMasked(t.Vec, t.Mask)
	} else {
		u, err = p.engine.ObserveAuto(t.Vec)
	}
	if err != nil {
		return
	}
	p.processed++
	if u.Outlier {
		p.outliers++
	}
}

// observeFrame absorbs a micro-batch. Consecutive clean rows — complete,
// right-length, NaN-free — are handed to the engine's block-incremental
// update in one call; masked, gappy or malformed tuples break the run and
// take the scalar route, preserving the exact per-tuple semantics of the
// unbatched transport (including drop accounting). The frame's storage is
// released back to the transport pool once every row has been consumed.
func (p *pcaOperator) observeFrame(f stream.Frame) {
	prev := p.processed
	dim := p.cfg.Dim
	run := p.runBuf[:0]
	flush := func() {
		if len(run) == 0 {
			return
		}
		out, _ := p.engine.ObserveBlock(run, p.updBuf[:0])
		p.processed += int64(len(out))
		for _, u := range out {
			if u.Outlier {
				p.outliers++
			}
		}
		run = run[:0]
	}
	for _, t := range f.Tuples {
		if t.Mask == nil && len(t.Vec) == dim && !hasNaN(t.Vec) {
			run = append(run, t.Vec)
			continue
		}
		flush()
		p.observeTuple(t)
	}
	flush()
	p.runBuf = run[:0]
	p.recordE2E(f)
	if f.Release != nil {
		f.Release()
	}
	p.maybeCheckpoint(prev)
}

// recordE2E records the frame's end-to-end tuple latency: the span from the
// ingest stamp the source wrote into the frame to the outlier decision that
// just completed here. Across processes the local clock is first mapped onto
// the stamping (coordinator) clock by the NTP-style offset θ, so the sample
// is wrong by at most the offset error (≤ rtt/2 of the kept probe). One
// sample per frame: every tuple in the frame shares the ingest stamp and
// finished in the same ObserveBlock pass.
//
//streampca:noalloc
func (p *pcaOperator) recordE2E(f stream.Frame) {
	if p.e2e == nil || f.Trace.IngestNs == 0 {
		return
	}
	now := time.Now().UnixNano()
	if p.clock != nil {
		now += p.clock.OffsetNs()
	}
	lat := now - f.Trace.IngestNs
	if lat < 0 {
		lat = 0 // clock skew beyond θ's error bound; clamp, don't corrupt
	}
	p.e2e.Record(lat)
}

// hasNaN reports whether the vector needs the gap-aware scalar route.
func hasNaN(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// maybeCheckpoint saves engine state when the processed count crossed a
// checkpoint boundary since prev — frames advance the count by many at once,
// so the period is a crossing check, not a divisibility check.
func (p *pcaOperator) maybeCheckpoint(prev int64) {
	if p.ckptEvery > 0 && p.processed/p.ckptEvery != prev/p.ckptEvery {
		p.checkpoint()
	}
}

// checkpoint serializes the engine state through the real SaveCheckpoint
// path; before warm-up completes there is nothing to save and the previous
// checkpoint (if any) is kept.
func (p *pcaOperator) checkpoint() {
	var buf bytes.Buffer
	if err := p.engine.SaveCheckpoint(&buf); err == nil {
		p.lastCkpt = buf.Bytes()
		if p.journal != nil {
			p.journal.Append(obs.Event{
				Kind: obs.EvCheckpointWrite, Engine: p.id,
				N: p.processed, A: float64(len(p.lastCkpt)),
			})
		}
	}
}

// restore rebuilds the engine after a crash, replaying the last checkpoint
// through ReadEigensystem/ResumeEngine — the same path an operator restarted
// from disk would take. With no checkpoint yet, the engine restarts cold and
// re-enters warm-up. Called on the node's PE goroutine via Graph.Revive, so
// no locking is needed.
func (p *pcaOperator) restore() {
	p.restarts++
	p.resumed = false
	defer func() {
		if p.inst != nil {
			// The replacement engine must keep publishing to the same bundle.
			p.engine.SetInstruments(p.inst)
		}
		if p.journal != nil {
			resumed := 0.0
			if p.resumed {
				resumed = 1
			}
			p.journal.Append(obs.Event{
				Kind: obs.EvCheckpointRestore, Engine: p.id,
				N: p.restarts, A: resumed,
			})
		}
	}()
	if p.lastCkpt != nil {
		if es, err := core.ReadEigensystem(bytes.NewReader(p.lastCkpt)); err == nil {
			if en, rerr := core.ResumeEngine(p.cfg, es); rerr == nil {
				p.engine.Close() // park the crashed engine's kernel pool
				p.engine = en
				p.resumed = true
				return
			}
		}
	}
	if en, err := core.NewEngine(p.cfg); err == nil {
		p.engine.Close()
		p.engine = en
	}
}

// control handles a sync command: when this engine is the designated sender
// and its own independence criterion holds (§II-C), it shares a snapshot
// with every receiver.
func (p *pcaOperator) control(ctl stream.Control, emit stream.Emit) {
	if ctl.Sender != p.id {
		return
	}
	if !p.engine.ShouldSync(p.syncFactor) {
		p.journalSync(obs.EvSyncSkip, ctl.Round)
		return
	}
	snap, err := p.engine.Snapshot()
	if err != nil {
		return
	}
	for _, to := range ctl.Receivers {
		emit(portSnapshotOut, stream.Snapshot{
			Round: ctl.Round, From: p.id, To: to, State: snap.Clone(),
		})
	}
	p.journalSync(obs.EvSyncSend, ctl.Round)
	p.engine.MarkSynced()
	p.sent++
}

// journalSync records a send/skip decision with the evidence behind it:
// A is the observations absorbed since the last sync, B the 1.5·N-style
// threshold it was compared against (§II-C).
func (p *pcaOperator) journalSync(kind obs.EventKind, round int64) {
	if p.journal == nil {
		return
	}
	p.journal.Append(obs.Event{
		Kind: kind, Engine: p.id, N: round,
		A: float64(p.engine.SinceSync()),
		B: p.syncFactor * p.cfg.WindowN(),
	})
}

// absorb merges a peer snapshot addressed to this engine, provided the
// receiving side also satisfies the independence criterion — both sides
// check, as the paper has every node "verify every time that the
// eigensystems are statistically independent".
func (p *pcaOperator) absorb(snap stream.Snapshot) {
	if snap.To != p.id {
		return
	}
	es, ok := snap.State.(*core.Eigensystem)
	if !ok {
		return
	}
	if !p.engine.ShouldSync(p.syncFactor) {
		return
	}
	if err := p.engine.MergeSnapshot(es); err != nil {
		return
	}
	if p.journal != nil {
		p.journal.Append(obs.Event{
			Kind: obs.EvSyncMerge, Engine: p.id,
			N: snap.Round, A: float64(snap.From),
		})
	}
	p.merged++
}

// Flush implements stream.Operator: it reports the engine's final state.
func (p *pcaOperator) Flush(emit stream.Emit) {
	st := EngineStats{
		Engine:                p.id,
		Processed:             p.processed,
		Outliers:              p.outliers,
		SnapshotsSent:         p.sent,
		MergesApplied:         p.merged,
		Restarts:              p.restarts,
		ResumedFromCheckpoint: p.resumed,
	}
	if snap, err := p.engine.Snapshot(); err == nil {
		st.Final = snap
	}
	emit(portResult, stream.Result{Engine: p.id, Seq: p.processed, Payload: st})
}
