package pipeline

import (
	"context"
	"testing"
	"time"

	"streampca/internal/fault"
	"streampca/internal/obs"
	"streampca/internal/spectra"
	"streampca/internal/syncctl"
)

// TestPipelineThreadsObservability runs an instrumented parallel pipeline and
// checks every layer reported: operator histograms from the stream runtime,
// algorithm gauges from the engines, sync telemetry from the controller, and
// sync/init events in the journal. It is the end-to-end contract for
// Config.Obs.
func TestPipelineThreadsObservability(t *testing.T) {
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 40, Signals: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	set := obs.NewSet()
	res, err := Run(context.Background(), Config{
		Engine:       engineConfig(40, 3, 300),
		NumEngines:   3,
		Source:       signalSource(gen, 12000),
		SyncEvery:    2 * time.Millisecond,
		SyncStrategy: syncctl.Ring,
		Obs:          set,
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := set.Snapshot()

	// Stream layer: every graph node recorded Process latencies and counters.
	ops := make(map[string]obs.OpSnapshot, len(snap.Operators))
	for _, op := range snap.Operators {
		ops[op.Name] = op
	}
	for _, name := range []string{"source", "split", "pca0", "pca1", "pca2", "sink"} {
		op, ok := ops[name]
		if !ok {
			t.Fatalf("operator %q missing from snapshot (have %d ops)", name, len(snap.Operators))
		}
		if name != "source" && op.Latency.Count == 0 {
			t.Errorf("operator %q recorded no latency samples", name)
		}
		if op.Counters == nil {
			t.Errorf("operator %q has no runtime counters", name)
		}
	}
	if ops["split"].Counters.TuplesIn != res.TuplesIn {
		t.Errorf("split counters saw %d tuples, run emitted %d",
			ops["split"].Counters.TuplesIn, res.TuplesIn)
	}

	// Algorithm layer: each engine published σ², eigenvalues and tallies that
	// agree with the run result.
	if len(snap.Engines) != 3 {
		t.Fatalf("snapshot has %d engines, want 3", len(snap.Engines))
	}
	for _, es := range snap.Engines {
		if es.Sigma2 <= 0 {
			t.Errorf("engine %d: sigma2 gauge = %g", es.Index, es.Sigma2)
		}
		if len(es.Eigenvalues) == 0 {
			t.Errorf("engine %d published no eigenvalues", es.Index)
		}
		if es.Observations == 0 || es.Rebuilds.RankOne == 0 {
			t.Errorf("engine %d: observations=%d rank-one=%d",
				es.Index, es.Observations, es.Rebuilds.RankOne)
		}
	}

	// Control plane: the controller planned rounds and the engines journaled
	// their send/skip decisions against the 1.5·N threshold.
	if snap.Sync.Rounds == 0 {
		t.Error("controller recorded no sync rounds")
	}
	var sends, inits int
	for _, ev := range set.Journal().Events(0) {
		switch ev.Kind {
		case obs.EvSyncSend:
			sends++
			if ev.B <= 0 {
				t.Errorf("sync-send event with threshold %g", ev.B)
			}
		case obs.EvEngineInit:
			inits++
		}
	}
	var wantSends int64
	for _, st := range res.Engines {
		wantSends += st.SnapshotsSent
	}
	if int64(sends) != wantSends {
		t.Errorf("journal has %d sync-send events, engines sent %d", sends, wantSends)
	}
	if inits != 3 {
		t.Errorf("journal has %d engine-init events, want 3", inits)
	}
}

// TestPipelineJournalsFailureRecovery: with chaos and obs both on, a crash
// and checkpoint-revival leave the full event trail — checkpoint writes, the
// node failure, the revival, and the checkpoint restore.
func TestPipelineJournalsFailureRecovery(t *testing.T) {
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 30, Signals: 3, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	set := obs.NewSet()
	res, err := Run(context.Background(), Config{
		Engine:     engineConfig(30, 3, 500),
		NumEngines: 2,
		Source:     slowSource(signalSource(gen, 4000), time.Millisecond),
		Obs:        set,
		Chaos: &ChaosConfig{
			Engine:          map[int]fault.Plan{1: {PanicAfter: 600}},
			RestartAfter:    time.Millisecond,
			CheckpointEvery: 100,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts == 0 {
		t.Skip("engine was not revived before end of stream")
	}
	counts := map[obs.EventKind]int{}
	for _, ev := range set.Journal().Events(0) {
		counts[ev.Kind]++
	}
	for _, kind := range []obs.EventKind{
		obs.EvCheckpointWrite, obs.EvNodeFailure, obs.EvNodeRevive, obs.EvCheckpointRestore,
	} {
		if counts[kind] == 0 {
			t.Errorf("journal has no %v events (counts: %v)", kind, counts)
		}
	}
}

// slowSource throttles a Source (one sleep per 16 tuples, so timer
// granularity doesn't balloon the test) so revival timers get a chance to
// fire before the stream drains.
func slowSource(src Source, d time.Duration) Source {
	var i int
	return func() ([]float64, []bool, bool) {
		if i++; i%16 == 0 {
			time.Sleep(d)
		}
		return src()
	}
}
