package pipeline

import (
	"context"
	"testing"

	"streampca/internal/spectra"
)

// TestPooledTuplesSafeWithBufferReusingSource is the correctness contract of
// the tuple pool: because the source wrapper copies every vector (and mask)
// into pooled buffers before it enters the graph, a source that overwrites
// one scratch buffer on every call must produce results identical to one that
// allocates a fresh vector per tuple.
func TestPooledTuplesSafeWithBufferReusingSource(t *testing.T) {
	const d, n = 60, 6000
	gen, err := spectra.NewGenerator(spectra.GeneratorConfig{
		Grid: spectra.SDSSGrid(d), Rank: 3, Seed: 77, GapRate: 0.2, NoiseSigma: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([][]float64, n)
	masks := make([][]bool, n)
	for i := range vecs {
		obs := gen.Next()
		vecs[i] = append([]float64(nil), obs.Flux...)
		masks[i] = append([]bool(nil), obs.Mask...)
	}

	cfg := engineConfig(d, 3, 500)
	cfg.Extra = 2
	run := func(src Source) []float64 {
		res, err := Run(context.Background(), Config{
			Engine: cfg, NumEngines: 1, Source: src,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Merged == nil {
			t.Fatal("no merged eigensystem")
		}
		return res.Merged.Values
	}

	var i int
	fresh := run(func() ([]float64, []bool, bool) {
		if i >= n {
			return nil, nil, false
		}
		i++
		return vecs[i-1], masks[i-1], true
	})

	// Same data, but recycled through one scratch vector and one scratch
	// mask that the source scribbles over between calls.
	var j int
	buf := make([]float64, d)
	mbuf := make([]bool, d)
	reused := run(func() ([]float64, []bool, bool) {
		if j >= n {
			return nil, nil, false
		}
		copy(buf, vecs[j])
		copy(mbuf, masks[j])
		j++
		return buf, mbuf, true
	})

	if len(fresh) != len(reused) {
		t.Fatalf("component counts differ: %d vs %d", len(fresh), len(reused))
	}
	for k := range fresh {
		if fresh[k] != reused[k] {
			t.Fatalf("eigenvalue %d differs: %v vs %v (buffer reuse corrupted tuples)", k, fresh[k], reused[k])
		}
	}
}
