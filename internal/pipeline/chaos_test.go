package pipeline

import (
	"context"
	"testing"
	"time"

	"streampca/internal/fault"
	"streampca/internal/spectra"
	"streampca/internal/syncctl"
)

// TestChaosDropLogged: an edge drop plan produces a non-empty deterministic
// fault log and the dropped tuples show up in the split's stream metrics.
func TestChaosDropLogged(t *testing.T) {
	run := func() *Result {
		gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 30, Signals: 3, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), Config{
			Engine:     engineConfig(30, 3, 500),
			NumEngines: 2,
			Source:     signalSource(gen, 3000),
			Chaos: &ChaosConfig{
				Edge: map[int]fault.Plan{
					0: {Seed: 11, Drop: 0.1},
					1: {Seed: 12, Drop: 0.05, Duplicate: 0.05},
				},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.FaultLog == "" {
		t.Fatal("chaos run produced an empty fault log")
	}
	var injected int64
	for _, m := range res.Metrics {
		if m.Name == "split" {
			injected = m.Dropped
		}
	}
	if injected == 0 {
		t.Fatal("injected drops not visible in split metrics")
	}
	if res.Engines[0].Processed+res.Engines[1].Processed >= res.TuplesIn {
		t.Fatalf("processed %d+%d with drops injected, source emitted %d",
			res.Engines[0].Processed, res.Engines[1].Processed, res.TuplesIn)
	}
	if again := run(); again.FaultLog != res.FaultLog {
		t.Fatal("same-seed chaos runs produced different fault logs")
	}
}

// TestChaosCrashWithoutRestart: a crashed engine must not hang the run even
// with a live sync ticker — the flush-based sink cancel terminates the graph
// — and the failure is reported.
func TestChaosCrashWithoutRestart(t *testing.T) {
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 30, Signals: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Config{
		Engine:       engineConfig(30, 3, 500),
		NumEngines:   3,
		Source:       signalSource(gen, 3000),
		SyncEvery:    2 * time.Millisecond,
		SyncStrategy: syncctl.Ring,
		Chaos: &ChaosConfig{
			Engine: map[int]fault.Plan{1: {PanicAfter: 200}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(res.Failures))
	}
	if res.Failures[0].Name != "pca1" {
		t.Fatalf("failed node %q, want pca1", res.Failures[0].Name)
	}
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d without RestartAfter", res.Restarts)
	}
	// The crashed engine never flushed, so its slot is zero-valued.
	if res.Engines[1].Processed != 0 || res.Engines[1].Final != nil {
		t.Fatal("crashed engine without restart still reported results")
	}
	for _, i := range []int{0, 2} {
		if res.Engines[i].Processed == 0 {
			t.Fatalf("surviving engine %d processed nothing", i)
		}
	}
}

// TestChaosBatchedTransport: fault injection composes with micro-batched
// transport. Injectors act on whole frames — a dropped frame loses its whole
// batch, a duplicated one replays it — the pool stays disabled so duplicated
// frames never share recycled storage, and a crashed engine still recovers
// from its checkpoint. PanicAfter counts messages, so the crash point is
// expressed in frames here, not tuples.
func TestChaosBatchedTransport(t *testing.T) {
	const batch = 16
	run := func() *Result {
		gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 30, Signals: 3, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		// Pause the source after the crash point so the restart timer fires
		// with stream remaining (engine 1's ~40th frame lands near global
		// tuple 1900 of 6000).
		inner := signalSource(gen, 6000)
		var seq int64
		src := func() ([]float64, []bool, bool) {
			seq++
			if seq == 4000 {
				time.Sleep(20 * time.Millisecond)
			}
			return inner()
		}
		res, err := Run(context.Background(), Config{
			Engine:     engineConfig(30, 3, 500),
			NumEngines: 3,
			Source:     src,
			Batch:      batch,
			// Frames must always fill completely: a deadline-flushed partial
			// frame would shift every later frame boundary and perturb the
			// per-message fault schedule this test asserts is deterministic.
			FlushEvery:   time.Minute,
			SyncEvery:    2 * time.Millisecond,
			SyncStrategy: syncctl.Ring,
			Seed:         9,
			Chaos: &ChaosConfig{
				Edge: map[int]fault.Plan{
					0: {Seed: 13, Drop: 0.1, Duplicate: 0.05, Reorder: 0.05},
				},
				Engine:          map[int]fault.Plan{1: {PanicAfter: 40}},
				RestartAfter:    time.Millisecond,
				CheckpointEvery: 200,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if len(res.Failures) != 1 || res.Failures[0].Name != "pca1" {
		t.Fatalf("failures = %+v, want exactly pca1", res.Failures)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	st := res.Engines[1]
	if !st.ResumedFromCheckpoint {
		t.Fatal("engine restarted cold despite checkpoints every 200 observations")
	}
	// The wrapper panics on engine 1's 40th message, capping pre-crash
	// progress at 40 frames; anything beyond proves post-restart progress.
	if st.Processed <= 40*batch {
		t.Fatalf("revived engine processed %d tuples, no post-restart progress", st.Processed)
	}
	var dropped int64
	for _, m := range res.Metrics {
		if m.Name == "split" {
			dropped = m.Dropped
		}
	}
	if dropped == 0 {
		t.Fatal("frame drops not visible in split metrics")
	}
	var processed int64
	for _, eng := range res.Engines {
		processed += eng.Processed
	}
	// Engine 0's edge drops whole frames, so hundreds of tuples must be gone
	// (10% of ~125 16-tuple frames), not a handful.
	if processed >= res.TuplesIn-100 {
		t.Fatalf("processed %d of %d: whole-frame drops not taking effect", processed, res.TuplesIn)
	}
	if res.Merged == nil {
		t.Fatal("batched chaos run produced no merged eigensystem")
	}
	if again := run(); again.FaultLog != res.FaultLog {
		t.Fatal("same-seed batched chaos runs produced different fault logs")
	}
}

// TestChaosCrashRestartResumes: with RestartAfter set, the crashed engine is
// revived from its in-memory checkpoint, rejoins the run, and reports final
// results that include pre-crash state.
func TestChaosCrashRestartResumes(t *testing.T) {
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{Dim: 30, Signals: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Pause the source well after the crash point (engine 1's 600th tuple
	// lands near global tuple 1800 of 4000) so the restart timer is certain
	// to fire while plenty of stream remains for the revived engine.
	inner := signalSource(gen, 4000)
	var seq int64
	src := func() ([]float64, []bool, bool) {
		seq++
		if seq == 2800 {
			time.Sleep(20 * time.Millisecond)
		}
		return inner()
	}
	res, err := Run(context.Background(), Config{
		Engine:       engineConfig(30, 3, 500),
		NumEngines:   3,
		Source:       src,
		SyncEvery:    2 * time.Millisecond,
		SyncStrategy: syncctl.Ring,
		Chaos: &ChaosConfig{
			Engine:          map[int]fault.Plan{1: {PanicAfter: 600}},
			RestartAfter:    time.Millisecond,
			CheckpointEvery: 100,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(res.Failures))
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
	st := res.Engines[1]
	if st.Final == nil {
		t.Fatal("restarted engine reported no final eigensystem")
	}
	if st.Restarts != 1 {
		t.Fatalf("engine restarts = %d, want 1", st.Restarts)
	}
	if !st.ResumedFromCheckpoint {
		t.Fatal("engine restarted cold despite having a checkpoint")
	}
	// p.processed stops at 599 when the wrapper panics on message 600; any
	// count beyond that proves the revived engine processed fresh tuples.
	if st.Processed <= 600 {
		t.Fatalf("revived engine processed %d tuples, no post-restart progress", st.Processed)
	}
}
