// Package pipeline wires the paper's analysis graph (Figure 2): an input
// source feeding a multithreaded split, N stateful streaming-PCA engines, a
// throttled synchronization controller, and a result sink. Engines exchange
// eigensystem snapshots over loop edges exactly as InfoSphere control ports
// carry sync messages, and the final eigensystem "can be obtained from any
// node" — or merged across all of them.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"streampca/internal/core"
	"streampca/internal/stream"
	"streampca/internal/syncctl"
)

// Source yields the input stream: each call returns the next observation
// (vec required; mask nil for complete vectors) and ok=false when the
// stream is exhausted. Implementations are called from a single goroutine.
type Source func() (vec []float64, mask []bool, ok bool)

// Config assembles a parallel streaming-PCA application.
type Config struct {
	// Engine is the per-engine PCA configuration (validated by Run).
	Engine core.Config
	// NumEngines is the parallel width N of the split (default 1).
	NumEngines int
	// Source provides the data; required.
	Source Source
	// Split selects the load-balancing policy (default random, as in the
	// paper).
	Split stream.SplitPolicy
	// Seed seeds the random split.
	Seed uint64
	// SyncEvery is the synchronization throttle period; 0 disables the
	// controller entirely (independent engines).
	SyncEvery time.Duration
	// SyncStrategy selects the controller pattern (default ring).
	SyncStrategy syncctl.Strategy
	// SyncGroupSize is the group width for the Group strategy.
	SyncGroupSize int
	// SyncFactor is the data-driven independence criterion multiplier; an
	// engine participates in a sync only after SyncFactor·N observations
	// since its last one. Default 1.5 (§II-C).
	SyncFactor float64
	// FuseEnginesPerPE, when > 0, places that many engines on each
	// processing element (operator fusion); 0 gives each engine its own PE.
	FuseEnginesPerPE int
	// Buffer is the per-node channel buffer (default 64).
	Buffer int
}

// EngineStats summarizes one engine's run.
type EngineStats struct {
	// Engine is the engine index.
	Engine int
	// Processed counts observations absorbed (including warm-up).
	Processed int64
	// Outliers counts observations flagged by the robust weighting.
	Outliers int64
	// SnapshotsSent and MergesApplied count synchronization activity.
	SnapshotsSent, MergesApplied int64
	// Final is the engine's eigensystem at end of stream (nil if the
	// engine never initialized).
	Final *core.Eigensystem
}

// Result is the outcome of a pipeline run.
type Result struct {
	// Engines holds per-engine statistics, indexed by engine id.
	Engines []EngineStats
	// Merged is the MergeMany reduction of every initialized engine's
	// final eigensystem (nil when none initialized).
	Merged *core.Eigensystem
	// Metrics is the stream-level profiler output.
	Metrics []stream.MetricsSnapshot
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// TuplesIn counts tuples the source emitted.
	TuplesIn int64
}

// Throughput returns tuples per second over the whole run.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TuplesIn) / r.Elapsed.Seconds()
}

// Run executes the pipeline until the source is exhausted, then returns the
// per-engine and merged results. ctx cancels an in-flight run.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Source == nil {
		return nil, errors.New("pipeline: Source is required")
	}
	if cfg.NumEngines <= 0 {
		cfg.NumEngines = 1
	}
	if cfg.SyncFactor == 0 {
		cfg.SyncFactor = 1.5
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	engCfg := cfg.Engine
	if err := engCfg.Validate(); err != nil {
		return nil, err
	}

	n := cfg.NumEngines
	engines := make([]*pcaOperator, n)
	for i := 0; i < n; i++ {
		en, err := core.NewEngine(engCfg)
		if err != nil {
			return nil, err
		}
		engines[i] = &pcaOperator{
			id: i, engine: en, syncFactor: cfg.SyncFactor,
		}
	}

	g := stream.NewGraph()
	var tuplesIn int64
	src := g.AddSource("source", func(ctx context.Context, emit stream.Emit) error {
		for seq := int64(0); ; seq++ {
			vec, mask, ok := cfg.Source()
			if !ok {
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			tuplesIn++
			emit(0, stream.Tuple{Seq: seq, Vec: vec, Mask: mask})
		}
	})
	split := g.Add("split", &stream.Split{N: n, Policy: cfg.Split, Seed: cfg.Seed},
		stream.WithBuffer(cfg.Buffer))
	if err := g.Connect(src, 0, split, 0); err != nil {
		return nil, err
	}

	engIDs := make([]stream.NodeID, n)
	for i, op := range engines {
		opts := []stream.Option{stream.WithBuffer(cfg.Buffer)}
		if cfg.FuseEnginesPerPE > 0 {
			opts = append(opts, stream.WithPE(i/cfg.FuseEnginesPerPE))
		}
		engIDs[i] = g.Add(fmt.Sprintf("pca%d", i), op, opts...)
		if err := g.Connect(split, i, engIDs[i], portData); err != nil {
			return nil, err
		}
	}

	// Synchronization fabric: ticker → controller → engines (control), and
	// engine → engine snapshot loop edges.
	if cfg.SyncEvery > 0 && n > 1 {
		tick := g.AddSource("sync-ticker", stream.Ticker(cfg.SyncEvery))
		ctl := g.Add("sync-controller", &syncctl.Controller{
			N: n, Strategy: cfg.SyncStrategy, GroupSize: cfg.SyncGroupSize,
		})
		if err := g.Connect(tick, 0, ctl, 0); err != nil {
			return nil, err
		}
		for i := range engines {
			// Control commands reach every engine over loop edges (the
			// controller is upstream of nothing in the data sense).
			if err := g.ConnectLoop(ctl, 0, engIDs[i], portControl); err != nil {
				return nil, err
			}
			// Snapshots fan out to all peers; receivers filter on To.
			for j := range engines {
				if i == j {
					continue
				}
				if err := g.ConnectLoop(engIDs[i], portSnapshotOut, engIDs[j], portSnapshot); err != nil {
					return nil, err
				}
			}
		}
	}

	// Result sink: collects each engine's flush-time Result and cancels the
	// run once all engines reported, so graphs with a live sync ticker
	// terminate deterministically.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var final []EngineStats
	done := 0
	sink := &stream.Collect{OnItem: func(msg stream.Message) {
		res := msg.(stream.Result)
		final = append(final, res.Payload.(EngineStats))
		done++
		if done == n {
			cancel()
		}
	}}
	snk := g.Add("sink", sink)
	for i := range engines {
		if err := g.Connect(engIDs[i], portResult, snk, 0); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	err := g.Run(runCtx)
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, context.Canceled) {
		return nil, err
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, ctxErr
	}

	res := &Result{
		Engines:  make([]EngineStats, n),
		Metrics:  g.Metrics(),
		Elapsed:  elapsed,
		TuplesIn: tuplesIn,
	}
	for _, st := range final {
		res.Engines[st.Engine] = st
	}
	var systems []*core.Eigensystem
	for _, st := range res.Engines {
		if st.Final != nil {
			systems = append(systems, st.Final)
		}
	}
	if len(systems) > 0 {
		merged, mErr := core.MergeMany(systems)
		if mErr == nil {
			res.Merged = merged
		}
	}
	return res, nil
}
