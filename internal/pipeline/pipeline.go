// Package pipeline wires the paper's analysis graph (Figure 2): an input
// source feeding a multithreaded split, N stateful streaming-PCA engines, a
// throttled synchronization controller, and a result sink. Engines exchange
// eigensystem snapshots over loop edges exactly as InfoSphere control ports
// carry sync messages, and the final eigensystem "can be obtained from any
// node" — or merged across all of them.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"streampca/internal/core"
	"streampca/internal/fault"
	"streampca/internal/obs"
	"streampca/internal/stream"
	"streampca/internal/syncctl"
	"streampca/internal/wire"
)

// Source yields the input stream: each call returns the next observation
// (vec required; mask nil for complete vectors) and ok=false when the
// stream is exhausted. Implementations are called from a single goroutine.
type Source func() (vec []float64, mask []bool, ok bool)

// Config assembles a parallel streaming-PCA application.
type Config struct {
	// Engine is the per-engine PCA configuration (validated by Run).
	Engine core.Config
	// NumEngines is the parallel width N of the split (default 1).
	NumEngines int
	// Source provides the data; required.
	Source Source
	// Split selects the load-balancing policy (default random, as in the
	// paper).
	Split stream.SplitPolicy
	// Seed seeds the random split.
	Seed uint64
	// SyncEvery is the synchronization throttle period; 0 disables the
	// controller entirely (independent engines).
	SyncEvery time.Duration
	// SyncStrategy selects the controller pattern (default ring).
	SyncStrategy syncctl.Strategy
	// SyncGroupSize is the group width for the Group strategy.
	SyncGroupSize int
	// SyncFactor is the data-driven independence criterion multiplier; an
	// engine participates in a sync only after SyncFactor·N observations
	// since its last one. Default 1.5 (§II-C).
	SyncFactor float64
	// FuseEnginesPerPE, when > 0, places that many engines on each
	// processing element (operator fusion); 0 gives each engine its own PE.
	FuseEnginesPerPE int
	// Batch, when > 1, turns on micro-batched transport: the source packs up
	// to Batch tuples into one stream.Frame, so every channel hop, split
	// decision and operator dispatch is paid once per frame instead of once
	// per tuple, and the engines absorb each frame's clean runs through the
	// block-incremental update (core.Engine.ObserveBlock). 0 or 1 keeps the
	// one-tuple-per-message transport.
	Batch int
	// FlushEvery bounds how long a partially filled frame may accumulate
	// before it is emitted anyway, keeping tail latency bounded when the
	// source slows down (default 2ms; only meaningful with Batch > 1). The
	// deadline is checked as tuples arrive, so it bounds staleness relative
	// to source progress — a source that blocks indefinitely holds its
	// partial frame with it.
	FlushEvery time.Duration
	// AdaptiveBatch, when true (and Batch > 1), lets the runtime retune the
	// frame width and flush deadline while the stream runs: a controller on
	// the source goroutine reads the engines' own latency and queue-depth
	// histograms, hill-climbs the width within [2, Batch] toward the best
	// measured tuples/s (growing it outright under standing backpressure),
	// and tracks the flush deadline to the engines' measured per-message
	// latency. Every move is journaled as an adapt-retune event. Batch then
	// acts as the capacity ceiling rather than a hand-tuned operating point.
	AdaptiveBatch bool
	// Buffer is the per-node channel buffer (default 64).
	Buffer int
	// Chaos, when non-nil, injects deterministic faults into the run.
	Chaos *ChaosConfig
	// Obs, when non-nil, threads the observability bundle through every
	// layer: per-operator latency/batch/queue histograms on the stream
	// runtime, algorithm gauges on each engine, sync telemetry on the
	// controller, and control-plane events (syncs, failures, checkpoints)
	// in the shared journal. Serve it with obs.Handler during the run.
	Obs *obs.Set
}

// ChaosConfig describes a deterministic fault scenario for a pipeline run.
// Every fault source is driven by seeded PRNGs, so two runs with the same
// configuration and source produce identical fault schedules.
type ChaosConfig struct {
	// Edge maps an engine index to a fault plan interposed on its
	// split→engine data edge (drop/duplicate/delay/reorder).
	Edge map[int]fault.Plan
	// Engine maps an engine index to a fault plan whose PanicAfter crashes
	// that engine's operator mid-stream.
	Engine map[int]fault.Plan
	// RestartAfter is how long after a crash the supervisor revives the
	// engine from its last checkpoint; 0 leaves crashed engines down.
	RestartAfter time.Duration
	// CheckpointEvery is the per-engine in-memory checkpoint period in
	// observations (default 500 when RestartAfter is set).
	CheckpointEvery int64
}

// EngineStats summarizes one engine's run.
type EngineStats struct {
	// Engine is the engine index.
	Engine int
	// Processed counts observations absorbed (including warm-up).
	Processed int64
	// Outliers counts observations flagged by the robust weighting.
	Outliers int64
	// SnapshotsSent and MergesApplied count synchronization activity.
	SnapshotsSent, MergesApplied int64
	// Restarts counts crash recoveries this engine went through.
	Restarts int64
	// ResumedFromCheckpoint reports whether the latest restart replayed a
	// checkpoint (false for a cold restart before the first checkpoint).
	ResumedFromCheckpoint bool
	// Final is the engine's eigensystem at end of stream (nil if the
	// engine never initialized).
	Final *core.Eigensystem
}

// Result is the outcome of a pipeline run.
type Result struct {
	// Engines holds per-engine statistics, indexed by engine id.
	Engines []EngineStats
	// Merged is the MergeMany reduction of every initialized engine's
	// final eigensystem (nil when none initialized).
	Merged *core.Eigensystem
	// Metrics is the stream-level profiler output.
	Metrics []stream.MetricsSnapshot
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// TuplesIn counts tuples the source emitted.
	TuplesIn int64
	// Failures lists operator failures observed during the run.
	Failures []stream.NodeFailure
	// Restarts counts engines successfully revived from checkpoint.
	Restarts int64
	// FaultLog is the concatenated injector event log in engine order —
	// byte-identical across runs with the same seeds and source.
	FaultLog string
	// Wire holds the per-edge transport counters of a distributed run
	// (nil for the in-process runtime).
	Wire []wire.EdgeStats
	// Retunes counts adaptive-batching moves (0 unless AdaptiveBatch).
	Retunes int64
	// FinalBatch and FinalFlush are the adaptive tuner's last operating
	// point (zero unless AdaptiveBatch).
	FinalBatch int
	FinalFlush time.Duration
}

// Throughput returns tuples per second over the whole run.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.TuplesIn) / r.Elapsed.Seconds()
}

// Run executes the pipeline until the source is exhausted, then returns the
// per-engine and merged results. ctx cancels an in-flight run.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Source == nil {
		return nil, errors.New("pipeline: Source is required")
	}
	if cfg.NumEngines <= 0 {
		cfg.NumEngines = 1
	}
	if cfg.SyncFactor == 0 {
		cfg.SyncFactor = 1.5
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 64
	}
	engCfg := cfg.Engine
	if err := engCfg.Validate(); err != nil {
		return nil, err
	}

	chaos := cfg.Chaos
	var ckptEvery int64
	if chaos != nil {
		for _, plan := range chaos.Edge {
			if err := plan.Validate(); err != nil {
				return nil, fmt.Errorf("pipeline: chaos edge plan: %w", err)
			}
		}
		for _, plan := range chaos.Engine {
			if err := plan.Validate(); err != nil {
				return nil, fmt.Errorf("pipeline: chaos engine plan: %w", err)
			}
		}
		ckptEvery = chaos.CheckpointEvery
		if ckptEvery <= 0 && chaos.RestartAfter > 0 {
			ckptEvery = 500
		}
	}

	// Tuple and frame buffers are pooled between the source and the engines
	// unless a chaos plan is active (injectors may duplicate messages, which
	// breaks the single-consumer ownership the pools rely on — see tuplePool).
	batch := cfg.Batch
	if batch < 1 {
		batch = 1
	}
	// Buffer is denominated in tuples; under batched transport one queued
	// message holds a whole frame, so the per-node channel depth shrinks by
	// the batch factor. Without this, Batch would silently multiply the
	// pipeline's buffered-tuple capacity ~batch-fold — tens of megabytes of
	// in-flight frame stores whose cache churn erases the transport win.
	nodeBuf := cfg.Buffer
	if batch > 1 {
		nodeBuf = (cfg.Buffer + batch - 1) / batch
		if nodeBuf < 2 {
			nodeBuf = 2
		}
	}
	var pool *tuplePool
	var fpool *framePool
	if chaos == nil {
		if batch > 1 {
			fpool = newFramePool(engCfg.Dim, batch)
		} else {
			pool = newTuplePool(engCfg.Dim)
		}
	}

	// Adaptive batching needs the runtime instrumented even when the caller
	// did not ask for observability: the tuner's signals ARE the per-operator
	// histograms. A private set keeps the instrumentation invisible outside
	// the run; when the caller provides one, the retune trail lands in their
	// journal alongside the sync and failure events.
	obsSet := cfg.Obs
	var tuner *adaptiveTuner
	if cfg.AdaptiveBatch && batch > 1 {
		if obsSet == nil {
			obsSet = obs.NewSet()
		}
		insts := make([]*obs.OpInstruments, cfg.NumEngines)
		for i := range insts {
			insts[i] = obsSet.Op(fmt.Sprintf("pca%d", i))
		}
		tuner = newAdaptiveTuner(batch, cfg.FlushEvery, insts, obsSet.Journal(),
			time.Now().UnixNano())
	}

	n := cfg.NumEngines
	engines := make([]*pcaOperator, n)
	// Engines own parked kernel-pool workers; park them when the run ends —
	// through each operator's current pointer, since restore swaps engines.
	defer func() {
		for _, op := range engines {
			if op != nil {
				op.engine.Close()
			}
		}
	}()
	for i := 0; i < n; i++ {
		en, err := core.NewEngine(engCfg)
		if err != nil {
			return nil, err
		}
		engines[i] = &pcaOperator{
			id: i, engine: en, syncFactor: cfg.SyncFactor,
			cfg: engCfg, ckptEvery: ckptEvery, pool: pool,
		}
		if cfg.Obs != nil {
			inst := cfg.Obs.Engine(i)
			engines[i].inst = inst
			engines[i].journal = cfg.Obs.Journal()
			// In-process both stamps read the same clock, so end-to-end
			// latency needs no offset correction (clock stays nil).
			engines[i].e2e = cfg.Obs.E2E()
			en.SetInstruments(inst)
		}
	}

	g := stream.NewGraph()
	var tuplesIn int64
	srcFn := sourceFunc(cfg.Source, engCfg.Dim, batch, cfg.FlushEvery, fpool, pool, &tuplesIn, 0, tuner)
	src := g.AddSource("source", srcFn)
	split := g.Add("split", &stream.Split{N: n, Policy: cfg.Split, Seed: cfg.Seed},
		stream.WithBuffer(nodeBuf))
	if err := g.Connect(src, 0, split, 0); err != nil {
		return nil, err
	}

	engIDs := make([]stream.NodeID, n)
	injectors := make([]*fault.Injector, n)
	for i, op := range engines {
		opts := []stream.Option{stream.WithBuffer(nodeBuf)}
		if cfg.FuseEnginesPerPE > 0 {
			opts = append(opts, stream.WithPE(i/cfg.FuseEnginesPerPE))
		}
		var node stream.Operator = op
		if chaos != nil {
			if plan, ok := chaos.Engine[i]; ok {
				node = fault.WrapOperator(op, plan)
			}
		}
		engIDs[i] = g.Add(fmt.Sprintf("pca%d", i), node, opts...)
		if err := g.Connect(split, i, engIDs[i], portData); err != nil {
			return nil, err
		}
		if chaos != nil {
			if plan, ok := chaos.Edge[i]; ok {
				inj := fault.NewInjector(plan)
				if err := g.TapEdge(split, i, engIDs[i], portData, inj); err != nil {
					return nil, err
				}
				injectors[i] = inj
			}
		}
	}

	// Synchronization fabric: ticker → controller → engines (control), and
	// engine → engine snapshot loop edges. The controller is kept visible to
	// the failure supervisor so crashed engines are excluded from sync plans.
	var ctl *syncctl.Controller
	if cfg.SyncEvery > 0 && n > 1 {
		tick := g.AddSource("sync-ticker", stream.Ticker(cfg.SyncEvery))
		ctl = &syncctl.Controller{
			N: n, Strategy: cfg.SyncStrategy, GroupSize: cfg.SyncGroupSize,
		}
		if cfg.Obs != nil {
			ctl.Inst = cfg.Obs.Sync()
		}
		ctlID := g.Add("sync-controller", ctl)
		if err := g.Connect(tick, 0, ctlID, 0); err != nil {
			return nil, err
		}
		for i := range engines {
			// Control commands reach every engine over loop edges (the
			// controller is upstream of nothing in the data sense).
			if err := g.ConnectLoop(ctlID, 0, engIDs[i], portControl); err != nil {
				return nil, err
			}
			// Snapshots fan out to all peers; receivers filter on To.
			for j := range engines {
				if i == j {
					continue
				}
				if err := g.ConnectLoop(engIDs[i], portSnapshotOut, engIDs[j], portSnapshot); err != nil {
					return nil, err
				}
			}
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Failure supervisor: a crashed engine is excluded from sync plans
	// immediately; if RestartAfter is set, it is revived from its last
	// checkpoint on its own PE goroutine and re-enters the sync rotation.
	// Registered whenever chaos or observability is on — an instrumented
	// run journals failures and revivals even without injected faults.
	var restarts atomic.Int64
	if chaos != nil || cfg.Obs != nil {
		engineOf := make(map[stream.NodeID]int, n)
		for i, id := range engIDs {
			engineOf[id] = i
		}
		var journal *obs.Journal
		if cfg.Obs != nil {
			journal = cfg.Obs.Journal()
		}
		g.OnNodeFailure(func(f stream.NodeFailure) {
			idx, ok := engineOf[f.Node]
			if !ok {
				return
			}
			if journal != nil {
				journal.Append(obs.Event{
					Kind: obs.EvNodeFailure, Node: f.Name, Engine: idx,
				})
			}
			if ctl != nil {
				ctl.MarkFailed(idx)
			}
			if chaos == nil || chaos.RestartAfter <= 0 {
				return
			}
			go func() {
				t := time.NewTimer(chaos.RestartAfter)
				defer t.Stop()
				select {
				case <-t.C:
				case <-runCtx.Done():
					return
				}
				err := g.Revive(f.Node, func() {
					engines[idx].restore()
					if ctl != nil {
						ctl.MarkRecovered(idx)
					}
				})
				if err == nil {
					restarts.Add(1)
					if journal != nil {
						journal.Append(obs.Event{
							Kind: obs.EvNodeRevive, Node: f.Name, Engine: idx,
						})
					}
				}
			}()
		})
	}

	// Result sink: collects each engine's flush-time Result and cancels the
	// run once every result edge has drained — Flush fires even when a
	// crashed engine never emitted its Result, so graphs with a live sync
	// ticker still terminate deterministically.
	var final []EngineStats
	sink := &stream.Collect{
		OnItem: func(msg stream.Message) {
			res := msg.(stream.Result)
			final = append(final, res.Payload.(EngineStats))
		},
		OnFlush: cancel,
	}
	snk := g.Add("sink", sink)
	for i := range engines {
		if err := g.Connect(engIDs[i], portResult, snk, 0); err != nil {
			return nil, err
		}
	}

	if obsSet != nil {
		// Per-operator histograms on the runtime, and a counter adapter so
		// the exposition layer can serve live message/tuple/drop tallies
		// without obs importing stream.
		g.Instrument(obsSet)
		obsSet.SetOpCounters(func() []obs.OpCounters {
			ms := g.Metrics()
			out := make([]obs.OpCounters, len(ms))
			for i, m := range ms {
				out[i] = obs.OpCounters{
					Name: m.Name, In: m.In, Out: m.Out,
					TuplesIn: m.TuplesIn, TuplesOut: m.TuplesOut,
					Dropped: m.Dropped, BusyNs: int64(m.Busy),
					QueueLen: int64(m.QueueLen),
				}
			}
			return out
		})
	}

	start := time.Now()
	err := g.Run(runCtx)
	elapsed := time.Since(start)
	if err != nil && !errors.Is(err, context.Canceled) {
		return nil, err
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return nil, ctxErr
	}

	res := &Result{
		Engines:  make([]EngineStats, n),
		Metrics:  g.Metrics(),
		Elapsed:  elapsed,
		TuplesIn: tuplesIn,
		Failures: g.Failures(),
		Restarts: restarts.Load(),
	}
	if tuner != nil {
		res.Retunes = tuner.Retunes()
		res.FinalBatch = tuner.targetBatch()
		res.FinalFlush = tuner.targetFlush()
	}
	if chaos != nil {
		var b strings.Builder
		for i, inj := range injectors {
			if inj == nil {
				continue
			}
			fmt.Fprintf(&b, "# engine %d\n", i)
			b.WriteString(inj.Log())
		}
		res.FaultLog = b.String()
	}
	for _, st := range final {
		res.Engines[st.Engine] = st
	}
	var systems []*core.Eigensystem
	for _, st := range res.Engines {
		if st.Final != nil {
			systems = append(systems, st.Final)
		}
	}
	if len(systems) > 0 {
		merged, mErr := core.MergeMany(systems)
		if mErr == nil {
			res.Merged = merged
		}
	}
	return res, nil
}
