package exp

import (
	"strings"
	"testing"
)

func TestFig1ShapesMatchPaper(t *testing.T) {
	res, err := RunFig1(Fig1Config{N: 12000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claims: robust converges and is insensitive to outliers;
	// classic does not converge ("rainbow effect"); outliers detected.
	if res.RobustAff < 0.9 {
		t.Fatalf("robust affinity = %v", res.RobustAff)
	}
	if res.ClassicAff > res.RobustAff-0.2 {
		t.Fatalf("classic (%v) should trail robust (%v) badly", res.ClassicAff, res.RobustAff)
	}
	if res.DetectionRate < 0.9 {
		t.Fatalf("detection rate = %v", res.DetectionRate)
	}
	if res.ClassicInstability < 2*res.RobustInstability {
		t.Fatalf("classic instability (%v) should dwarf robust (%v)",
			res.ClassicInstability, res.RobustInstability)
	}
	if len(res.Steps) == 0 || len(res.Classic) != len(res.Steps) {
		t.Fatal("trace sampling broken")
	}
	var sb strings.Builder
	res.WriteText(&sb)
	if !strings.Contains(sb.String(), "Figure 1") {
		t.Fatal("renderer broken")
	}
}

func TestFig45ConvergenceShapes(t *testing.T) {
	res, err := RunFig45(Fig45Config{Bins: 300, Late: 12000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.LateAff < 0.95 {
		t.Fatalf("late affinity = %v", res.LateAff)
	}
	if res.LateAff <= res.EarlyAff {
		t.Fatalf("affinity should improve: early %v late %v", res.EarlyAff, res.LateAff)
	}
	if res.LateRoughness >= res.EarlyRoughness {
		t.Fatalf("smoothness should improve: early %v late %v",
			res.EarlyRoughness, res.LateRoughness)
	}
	if res.LineRecall < 0.5 {
		t.Fatalf("late eigenspectra should localize catalog lines, recall = %v", res.LineRecall)
	}
	var sb strings.Builder
	res.WriteText(&sb)
	if !strings.Contains(sb.String(), "Figures 4–5") {
		t.Fatal("renderer broken")
	}
}

func TestFig6ShapesMatchPaper(t *testing.T) {
	res, err := RunFig6(Fig6Config{Duration: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakEngines < 15 || res.PeakEngines > 25 {
		t.Fatalf("distributed peak at %d engines, paper says ≈20", res.PeakEngines)
	}
	last := len(res.Engines) - 1
	if res.Engines[last] != 30 {
		t.Fatal("sweep should reach 30")
	}
	peakThr := 0.0
	for _, v := range res.Distributed {
		if v > peakThr {
			peakThr = v
		}
	}
	if res.Distributed[last] >= peakThr {
		t.Fatal("30 engines must degrade below the peak")
	}
	// Distributed beats single-node at scale; single-node wins (or ties)
	// at 1 engine.
	if res.Distributed[0] > res.Single[0] {
		t.Fatalf("1 distributed engine (%v) should not beat 1 fused (%v)",
			res.Distributed[0], res.Single[0])
	}
	for i, n := range res.Engines {
		if n >= 10 && res.Distributed[i] <= res.Single[i] {
			t.Fatalf("distributed should win at %d engines", n)
		}
	}
	var sb strings.Builder
	res.WriteText(&sb)
	if !strings.Contains(sb.String(), "Figure 6") {
		t.Fatal("renderer broken")
	}
}

func TestFig7ShapesMatchPaper(t *testing.T) {
	res, err := RunFig7(Fig7Config{Duration: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	find := func(threads int) []float64 {
		for i, th := range res.Threads {
			if th == threads {
				return res.PerThread[i]
			}
		}
		t.Fatalf("missing series %d", threads)
		return nil
	}
	ten, twenty := find(10), find(20)
	// Per-thread rate falls monotonically with dimensionality.
	for _, series := range res.PerThread {
		for j := 1; j < len(series); j++ {
			if series[j] >= series[j-1] {
				t.Fatalf("per-thread rate should fall with d: %v", series)
			}
		}
	}
	// 20 threads saturate the interconnect at small d: clearly below the
	// 10-thread series there, converging at large d.
	if twenty[0] >= ten[0]*0.95 {
		t.Fatalf("20-thread per-thread at d=250 (%v) should trail 10-thread (%v)",
			twenty[0], ten[0])
	}
	lastIdx := len(res.Dims) - 1
	if twenty[lastIdx] < ten[lastIdx]*0.9 {
		t.Fatalf("20-thread should converge toward 10-thread at high d: %v vs %v",
			twenty[lastIdx], ten[lastIdx])
	}
	var sb strings.Builder
	res.WriteText(&sb)
	if !strings.Contains(sb.String(), "Figure 7") {
		t.Fatal("renderer broken")
	}
}

func TestSyncAblation(t *testing.T) {
	res, err := RunSyncAblation(SyncAblationConfig{N: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]SyncAblationRow{}
	for _, r := range res.Rows {
		rows[r.Regime] = r
	}
	if rows["no-sync"].Syncs != 0 {
		t.Fatal("no-sync regime synced")
	}
	if rows["ring-1.5N"].Syncs == 0 || rows["broadcast-1.5N"].Syncs == 0 {
		t.Fatal("sync regimes did not sync")
	}
	// The 1.5·N independence criterion is the paper's "good compromise
	// between speed and consistency": without it the controller floods the
	// fabric with ~10× the snapshot transfers (each one the most expensive
	// operation in the system) for no accuracy gain — the redundant merges
	// combine correlated states, which also costs a little merged accuracy.
	always := rows["ring-always"]
	if always.Syncs <= 3*rows["ring-1.5N"].Syncs {
		t.Fatalf("unconditioned regime should sync far more often: %d vs %d",
			always.Syncs, rows["ring-1.5N"].Syncs)
	}
	for name, r := range rows {
		if r.MeanAff < 0.9 {
			t.Fatalf("%s mean affinity = %v", name, r.MeanAff)
		}
	}
	for _, name := range []string{"no-sync", "ring-1.5N", "broadcast-1.5N"} {
		r := rows[name]
		if r.MergedAff < 0.95 {
			t.Fatalf("%s merged affinity = %v", name, r.MergedAff)
		}
		// The margin is deliberately small: the *direction* (redundant
		// merging loses accuracy) is the claim under test, while the gap's
		// magnitude moves with round-off trajectory across kernel changes.
		if always.MergedAff >= r.MergedAff-5e-4 {
			t.Fatalf("redundant merging should cost merged accuracy: always %v vs %s %v",
				always.MergedAff, name, r.MergedAff)
		}
	}
	var sb strings.Builder
	res.WriteText(&sb)
	if !strings.Contains(sb.String(), "Sync ablation") {
		t.Fatal("renderer broken")
	}
}

func TestGapsAblation(t *testing.T) {
	res, err := RunGapsAblation(GapsAblationConfig{Bins: 120, N: 8000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]GapsAblationRow{}
	for _, r := range res.Rows {
		rows[r.Strategy] = r
	}
	// In the survey regime every spectrum is gappy (the observed window
	// slides with redshift), so dropping incomplete data leaves nothing at
	// all — patching is mandatory, not an optimization.
	if rows["drop-gappy"].Used != 0 || rows["drop-gappy"].Affinity != 0 {
		t.Fatalf("drop strategy should starve completely: %+v", rows["drop-gappy"])
	}
	// Both patching modes recover the interior subspace quickly.
	for _, name := range []string{"patch-extra0", "patch-extra2"} {
		r := rows[name]
		if r.Affinity < 0.9 {
			t.Fatalf("%s interior affinity = %v", name, r.Affinity)
		}
		if r.ConvergedAt == 0 || r.ConvergedAt > 2000 {
			t.Fatalf("%s converged at %d", name, r.ConvergedAt)
		}
	}
	// §II-D's bias: patching without the higher-order correction removes
	// residual mass in the masked bins, deflating the M-scale.
	if rows["patch-extra0"].Sigma2 >= rows["patch-extra2"].Sigma2 {
		t.Fatalf("uncorrected sigma2 (%v) should be deflated below corrected (%v)",
			rows["patch-extra0"].Sigma2, rows["patch-extra2"].Sigma2)
	}
	var sb strings.Builder
	res.WriteText(&sb)
	if !strings.Contains(sb.String(), "Gap-handling") {
		t.Fatal("renderer broken")
	}
}

func TestCSVWriters(t *testing.T) {
	var sb strings.Builder
	f1, err := RunFig1(Fig1Config{N: 3000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	f1.WriteCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if !strings.HasPrefix(lines[0], "step,classic_l1") || len(lines) < 10 {
		t.Fatalf("fig1 csv malformed: %q...", lines[0])
	}
	if got := len(strings.Split(lines[1], ",")); got != 7 {
		t.Fatalf("fig1 csv has %d columns", got)
	}

	sb.Reset()
	f6, err := RunFig6(Fig6Config{Duration: 3, Engines: []int{1, 2}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	f6.WriteCSV(&sb)
	lines = strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "engines,") {
		t.Fatalf("fig6 csv malformed: %v", lines)
	}

	sb.Reset()
	f7, err := RunFig7(Fig7Config{Duration: 3, Dims: []int{250, 500}, Threads: []int{1, 5}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	f7.WriteCSV(&sb)
	lines = strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 || lines[0] != "dims,thr1,thr5" {
		t.Fatalf("fig7 csv malformed: %v", lines)
	}

	sb.Reset()
	f45, err := RunFig45(Fig45Config{Bins: 60, Late: 600, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	f45.WriteCSV(&sb)
	lines = strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 61 || !strings.HasPrefix(lines[0], "wavelength,early_e1") {
		t.Fatalf("fig45 csv malformed: %d lines, header %q", len(lines), lines[0])
	}

	sb.Reset()
	gaps, err := RunGapsAblation(GapsAblationConfig{Bins: 100, N: 2500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	gaps.WriteCSV(&sb)
	if !strings.HasPrefix(sb.String(), "strategy,affinity,used") {
		t.Fatal("gaps csv malformed")
	}

	sb.Reset()
	sync, err := RunSyncAblation(SyncAblationConfig{N: 3000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sync.WriteCSV(&sb)
	if !strings.HasPrefix(sb.String(), "regime,worst_aff") {
		t.Fatal("sync csv malformed")
	}
}

func TestMergeAblation(t *testing.T) {
	res, err := RunMergeAblation(MergeAblationConfig{PerEngine: 1500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// At zero separation the two merges agree.
	if res.Rows[0].ValueGap > 0.05 {
		t.Fatalf("zero-separation gap = %v", res.Rows[0].ValueGap)
	}
	// At large separation the exact merge captures the shift direction and
	// its top eigenvalue dwarfs the approximation's.
	last := res.Rows[len(res.Rows)-1]
	if last.ShiftCapture < 0.9 {
		t.Fatalf("exact merge missed the shift: capture = %v", last.ShiftCapture)
	}
	if last.ValueGap < 0.5 {
		t.Fatalf("approximation should underestimate at separation 10: gap = %v", last.ValueGap)
	}
	// The gap grows monotonically-ish with separation.
	if res.Rows[2].ValueGap <= res.Rows[0].ValueGap {
		t.Fatal("gap should grow with separation")
	}
	var sb strings.Builder
	res.WriteText(&sb)
	if !strings.Contains(sb.String(), "Merge ablation") {
		t.Fatal("renderer broken")
	}
	sb.Reset()
	res.WriteCSV(&sb)
	if !strings.HasPrefix(sb.String(), "separation,exact_l1") {
		t.Fatal("csv broken")
	}
}
