package exp

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"streampca/internal/core"
	"streampca/internal/eig"
	"streampca/internal/mat"
	"streampca/internal/pipeline"
	"streampca/internal/spectra"
	"streampca/internal/syncctl"
)

// SyncAblationConfig parameterizes the synchronization ablation (extension
// experiment E7): the same contaminated stream through a real goroutine
// pipeline under different coordination regimes, comparing the *worst*
// engine's subspace accuracy — the quantity synchronization exists to
// protect ("the resulting eigensystem can be obtained from any node").
type SyncAblationConfig struct {
	// Dim, Components, Window: estimator settings (defaults 40, 3, 300).
	Dim, Components int
	Window          float64
	// Engines is the parallel width (default 4).
	Engines int
	// N is the stream length (default 16000).
	N int64
	// Seed fixes the stream and split.
	Seed uint64
}

func (c *SyncAblationConfig) defaults() {
	if c.Dim == 0 {
		c.Dim = 40
	}
	if c.Components == 0 {
		c.Components = 3
	}
	if c.Window == 0 {
		c.Window = 300
	}
	if c.Engines == 0 {
		c.Engines = 4
	}
	if c.N == 0 {
		c.N = 16000
	}
}

// SyncAblationRow is one regime's outcome.
type SyncAblationRow struct {
	// Regime names the coordination mode.
	Regime string
	// WorstAff and MeanAff summarize per-engine subspace affinity to the
	// planted basis; MergedAff is the all-engine reduction.
	WorstAff, MeanAff, MergedAff float64
	// Syncs counts snapshot transfers that happened.
	Syncs int64
	// Throughput is tuples/second through the real pipeline.
	Throughput float64
}

// SyncAblationResult is the regime table.
type SyncAblationResult struct {
	// Rows, one per regime: none, ring, broadcast, ring-unconditioned.
	Rows []SyncAblationRow
}

// RunSyncAblation executes each regime on an identically seeded stream.
func RunSyncAblation(cfg SyncAblationConfig) (*SyncAblationResult, error) {
	cfg.defaults()
	type regime struct {
		name     string
		every    time.Duration
		strategy syncctl.Strategy
		factor   float64
	}
	regimes := []regime{
		{"no-sync", 0, syncctl.Ring, 1.5},
		{"ring-1.5N", time.Millisecond, syncctl.Ring, 1.5},
		{"broadcast-1.5N", time.Millisecond, syncctl.Broadcast, 1.5},
		{"ring-always", time.Millisecond, syncctl.Ring, -1},
	}
	res := &SyncAblationResult{}
	for _, rg := range regimes {
		gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{
			Dim: cfg.Dim, Signals: cfg.Components, Seed: cfg.Seed, OutlierRate: 0.05,
		})
		if err != nil {
			return nil, err
		}
		var i int64
		src := func() ([]float64, []bool, bool) {
			if i >= cfg.N {
				return nil, nil, false
			}
			i++
			x, _ := gen.Next()
			return x, nil, true
		}
		pcfg := pipeline.Config{
			Engine: core.Config{
				Dim: cfg.Dim, Components: cfg.Components, Alpha: 1 - 1/cfg.Window,
			},
			NumEngines:   cfg.Engines,
			Source:       src,
			Seed:         cfg.Seed + 1,
			SyncEvery:    rg.every,
			SyncStrategy: rg.strategy,
			SyncFactor:   rg.factor,
		}
		out, err := pipeline.Run(context.Background(), pcfg)
		if err != nil {
			return nil, err
		}
		row := SyncAblationRow{Regime: rg.name, WorstAff: 1, Throughput: out.Throughput()}
		truth := gen.TrueBasis()
		var sum float64
		var counted int
		for _, st := range out.Engines {
			row.Syncs += st.SnapshotsSent
			if st.Final == nil {
				row.WorstAff = 0
				continue
			}
			a := st.Final.SubspaceAffinity(truth)
			sum += a
			counted++
			if a < row.WorstAff {
				row.WorstAff = a
			}
		}
		if counted > 0 {
			row.MeanAff = sum / float64(counted)
		}
		if out.Merged != nil {
			row.MergedAff = out.Merged.SubspaceAffinity(truth)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteText renders the regime table.
func (r *SyncAblationResult) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Sync ablation — per-engine accuracy under coordination regimes")
	fmt.Fprintln(w, "regime            worst-aff  mean-aff  merged-aff   syncs   tuples/s")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s  %9.3f  %8.3f  %10.3f  %6d  %9.0f\n",
			row.Regime, row.WorstAff, row.MeanAff, row.MergedAff, row.Syncs, row.Throughput)
	}
}

// GapsAblationConfig parameterizes the missing-data ablation (extension
// experiment E8): gappy spectra under (a) dropping gappy observations,
// (b) patching without the higher-order residual correction (Extra = 0),
// (c) patching with it (Extra > 0) — §II-D's design choices.
type GapsAblationConfig struct {
	// Bins, Rank: spectra settings (defaults 200, 3).
	Bins, Rank int
	// GapRate is the fraction of gappy observations. The default is 1.0 —
	// the paper's redshift-coverage regime where *every* spectrum has
	// wavelength gaps, so dropping gappy data starves the estimator.
	GapRate float64
	// Noise is the per-bin noise level (default 0.05, survey-like).
	Noise float64
	// MaxRedshift bounds the sliding coverage window (default 0.15, about
	// 16% of the grid masked per spectrum).
	MaxRedshift float64
	// N is the stream length (default 12000).
	N int
	// Seed fixes the stream.
	Seed uint64
}

func (c *GapsAblationConfig) defaults() {
	if c.Bins == 0 {
		c.Bins = 200
	}
	if c.Rank == 0 {
		c.Rank = 3
	}
	if c.GapRate == 0 {
		c.GapRate = 1.0
	}
	if c.Noise == 0 {
		c.Noise = 0.05
	}
	if c.MaxRedshift == 0 {
		c.MaxRedshift = 0.15
	}
	if c.N == 0 {
		c.N = 12000
	}
}

// GapsAblationRow is one strategy's outcome.
type GapsAblationRow struct {
	// Strategy names the gap-handling mode.
	Strategy string
	// Affinity is the final subspace affinity to the generator truth.
	Affinity float64
	// Used counts observations actually absorbed.
	Used int64
	// ConvergedAt is the stream position at which affinity first reached
	// 0.9 (checked every 200 observations), or 0 if never — the paper's
	// §II-C argument against dropping is precisely that it delays new
	// solutions in stream time.
	ConvergedAt int
	// Sigma2 is the final M-scale. Patching without the higher-order
	// correction artificially removes residuals in the masked bins
	// (§II-D), so its σ² is biased low relative to the corrected run.
	Sigma2 float64
}

// GapsAblationResult is the strategy table.
type GapsAblationResult struct {
	Rows []GapsAblationRow
}

// RunGapsAblation streams the same gappy survey through the three
// strategies.
func RunGapsAblation(cfg GapsAblationConfig) (*GapsAblationResult, error) {
	cfg.defaults()
	type strategy struct {
		name  string
		extra int
		drop  bool
	}
	strategies := []strategy{
		{"drop-gappy", 0, true},
		{"patch-extra0", 0, false},
		{"patch-extra2", 2, false},
	}
	res := &GapsAblationResult{}
	for _, st := range strategies {
		gen, err := spectra.NewGenerator(spectra.GeneratorConfig{
			Grid: spectra.SDSSGrid(cfg.Bins), Rank: cfg.Rank,
			GapRate: cfg.GapRate, NoiseSigma: cfg.Noise,
			MaxRedshift: cfg.MaxRedshift, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		en, err := core.NewEngine(core.Config{
			Dim: cfg.Bins, Components: cfg.Rank, Extra: st.extra, Alpha: 1 - 1.0/3000,
		})
		if err != nil {
			return nil, err
		}
		row := GapsAblationRow{Strategy: st.name}
		// Judge on the well-observed interior of the grid: the outermost
		// bins are covered only by extreme redshifts, so no estimator can
		// be expected to constrain them (astronomers likewise trim
		// eigenspectra edges).
		lo, hi := gen.Grid().Range()
		span := math.Log10(hi) - math.Log10(lo)
		margin := int(math.Log10(1+cfg.MaxRedshift) / span * float64(cfg.Bins))
		truth := interiorRows(gen.TrueBasis().SliceCols(0, cfg.Rank), margin, cfg.Bins-margin)
		for i := 0; i < cfg.N; i++ {
			obs := gen.Next()
			gappy := false
			for _, ok := range obs.Mask {
				if !ok {
					gappy = true
					break
				}
			}
			if !(gappy && st.drop) {
				var err error
				if gappy {
					_, err = en.ObserveMasked(obs.Flux, obs.Mask)
				} else {
					_, err = en.Observe(obs.Flux)
				}
				if err == nil {
					row.Used++
				}
			}
			if row.ConvergedAt == 0 && (i+1)%200 == 0 && en.Ready() {
				if interiorAffinity(truth, en.Eigensystem(), cfg.Rank, margin, cfg.Bins-margin) >= 0.9 {
					row.ConvergedAt = i + 1
				}
			}
		}
		if en.Ready() {
			row.Affinity = interiorAffinity(truth, en.Eigensystem(), cfg.Rank, margin, cfg.Bins-margin)
			row.Sigma2 = en.Eigensystem().Sigma2
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// interiorRows extracts rows [lo,hi) of m and re-orthonormalizes the
// columns so the result spans the row-restricted subspace.
func interiorRows(m *mat.Dense, lo, hi int) *mat.Dense {
	if lo < 0 {
		lo = 0
	}
	if hi > m.Rows() {
		hi = m.Rows()
	}
	out := mat.NewDense(hi-lo, m.Cols())
	for i := lo; i < hi; i++ {
		copy(out.Row(i-lo), m.Row(i))
	}
	eig.Orthonormalize(out)
	return out
}

// interiorAffinity compares the first p components of an eigensystem with
// an (already row-restricted, orthonormal) truth basis over rows [lo,hi).
func interiorAffinity(truth *mat.Dense, es *core.Eigensystem, p, lo, hi int) float64 {
	est := interiorRows(es.Vectors.SliceCols(0, p), lo, hi)
	g := mat.MulTA(nil, truth, est)
	f := g.FrobeniusNorm()
	return f * f / float64(truth.Cols())
}

// WriteText renders the strategy table.
func (r *GapsAblationResult) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Gap-handling ablation — §II-D design choices (interior affinity)")
	fmt.Fprintln(w, "strategy       affinity   used   pos@0.9-aff   sigma2")
	for _, row := range r.Rows {
		conv := "never"
		if row.ConvergedAt > 0 {
			conv = fmt.Sprintf("%d", row.ConvergedAt)
		}
		fmt.Fprintf(w, "%-13s  %8.3f  %5d   %11s   %.4g\n",
			row.Strategy, row.Affinity, row.Used, conv, row.Sigma2)
	}
}
