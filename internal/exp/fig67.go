package exp

import (
	"fmt"
	"io"

	"streampca/internal/cluster"
)

// Fig6Config parameterizes the throughput-vs-parallelism experiment
// (Figure 6): 250-dimensional tuples, 1–30 engines, single node vs
// distributed over the 10-node cluster, sync throttle 0.5 s, N = 5000.
type Fig6Config struct {
	// Engines is the sweep (default 1,2,...,30 in steps mirroring the
	// figure's x-axis).
	Engines []int
	// Spec and Workload override the simulated testbed.
	Spec     cluster.Spec
	Workload cluster.Workload
	// Duration is the measured virtual window in seconds (default 30 —
	// the paper averages over 30 s after warm-up).
	Duration float64
	// Seed fixes the split.
	Seed uint64
}

func (c *Fig6Config) defaults() {
	if len(c.Engines) == 0 {
		c.Engines = []int{1, 2, 3, 5, 8, 10, 12, 15, 18, 20, 25, 30}
	}
	if c.Spec.Nodes == 0 {
		c.Spec = cluster.DefaultSpec()
	}
	if c.Workload.Dim == 0 {
		c.Workload = cluster.DefaultWorkload()
	}
	if c.Duration == 0 {
		c.Duration = 30
	}
}

// Fig6Result holds the two series of the figure.
type Fig6Result struct {
	// Engines is the x-axis.
	Engines []int
	// Single and Distributed are tuples/second for the two placements.
	Single, Distributed []float64
	// PeakEngines is the distributed argmax — the paper's "optimum number
	// is 2 instances per node, or 20 instances per 10 nodes".
	PeakEngines int
}

// RunFig6 sweeps engine counts under both placements through the cluster
// simulator with the paper's sync settings (0.5 s throttle, N = 5000).
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	cfg.defaults()
	res := &Fig6Result{Engines: cfg.Engines}
	peak := 0.0
	for _, n := range cfg.Engines {
		base := cluster.Config{
			Spec: cfg.Spec, Workload: cfg.Workload, Engines: n,
			SyncPeriod: 0.5, WindowN: 5000,
			Duration: cfg.Duration, Seed: cfg.Seed,
		}
		single := base
		single.SingleNode = true
		ss, err := cluster.Simulate(single)
		if err != nil {
			return nil, err
		}
		ds, err := cluster.Simulate(base)
		if err != nil {
			return nil, err
		}
		res.Single = append(res.Single, ss.Throughput())
		res.Distributed = append(res.Distributed, ds.Throughput())
		if ds.Throughput() > peak {
			peak = ds.Throughput()
			res.PeakEngines = n
		}
	}
	return res, nil
}

// WriteText renders the figure's two series.
func (r *Fig6Result) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Figure 6 — throughput vs parallel engines (250 dims, 10-node cluster)")
	fmt.Fprintln(w, "engines   single (t/s)   distributed (t/s)")
	for i, n := range r.Engines {
		fmt.Fprintf(w, "%7d  %13.0f  %18.0f\n", n, r.Single[i], r.Distributed[i])
	}
	fmt.Fprintf(w, "distributed peak at %d engines (%.1f per node)\n",
		r.PeakEngines, float64(r.PeakEngines)/10)
}

// Fig7Config parameterizes the dimensionality sweep (Figure 7):
// tuples/second/thread for 1, 5, 10 and 20 engines at 250–2000 dimensions.
type Fig7Config struct {
	// Dims is the x-axis (default 250, 500, 1000, 1500, 2000).
	Dims []int
	// Threads are the engine counts, one series each (default 1, 5, 10,
	// 20).
	Threads []int
	// Spec overrides the testbed.
	Spec cluster.Spec
	// Duration is the measured virtual window (default 30 s).
	Duration float64
	// Seed fixes the split.
	Seed uint64
}

func (c *Fig7Config) defaults() {
	if len(c.Dims) == 0 {
		c.Dims = []int{250, 500, 1000, 1500, 2000}
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 5, 10, 20}
	}
	if c.Spec.Nodes == 0 {
		c.Spec = cluster.DefaultSpec()
	}
	if c.Duration == 0 {
		c.Duration = 30
	}
}

// Fig7Result holds tuples/s/thread per series.
type Fig7Result struct {
	// Dims is the x-axis.
	Dims []int
	// Threads labels the series.
	Threads []int
	// PerThread[i][j] is tuples/s/thread for Threads[i] at Dims[j].
	PerThread [][]float64
}

// RunFig7 sweeps dimensionality for each engine count on the distributed
// placement, paper sync settings.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	cfg.defaults()
	res := &Fig7Result{Dims: cfg.Dims, Threads: cfg.Threads}
	for _, threads := range cfg.Threads {
		series := make([]float64, 0, len(cfg.Dims))
		for _, d := range cfg.Dims {
			w := cluster.DefaultWorkload()
			w.Dim = d
			st, err := cluster.Simulate(cluster.Config{
				Spec: cfg.Spec, Workload: w, Engines: threads,
				SyncPeriod: 0.5, WindowN: 5000,
				Duration: cfg.Duration, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			series = append(series, st.PerThread())
		}
		res.PerThread = append(res.PerThread, series)
	}
	return res, nil
}

// WriteText renders the series in the figure's log-plot layout.
func (r *Fig7Result) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Figure 7 — tuples/s/thread vs dimensionality (distributed, 10 nodes)")
	fmt.Fprintf(w, "   dims")
	for _, t := range r.Threads {
		fmt.Fprintf(w, "  %7d-thr", t)
	}
	fmt.Fprintln(w)
	for j, d := range r.Dims {
		fmt.Fprintf(w, "%7d", d)
		for i := range r.Threads {
			fmt.Fprintf(w, "  %11.1f", r.PerThread[i][j])
		}
		fmt.Fprintln(w)
	}
}
