package exp

import (
	"fmt"
	"io"

	"streampca/internal/core"
	"streampca/internal/mat"
	"streampca/internal/spectra"
)

// MergeAblationConfig parameterizes the eq. 15 vs eq. 16 comparison: two
// engines trained on populations whose locations are separated by a
// controlled distance, merged both ways. §IV: "When the eigensystem vector
// locations of the components are close to each other, an approximation
// becomes possible that speeds up the synchronization step" — this
// experiment maps where that approximation is safe.
type MergeAblationConfig struct {
	// Dim, Components: estimator settings (defaults 40, 3).
	Dim, Components int
	// PerEngine is the observations each engine absorbs (default 3000).
	PerEngine int
	// Separations are the mean distances to sweep, in units of the
	// signal's top standard deviation (default 0, 0.5, 1, 2, 5, 10).
	Separations []float64
	// Seed fixes the streams.
	Seed uint64
}

func (c *MergeAblationConfig) defaults() {
	if c.Dim == 0 {
		c.Dim = 40
	}
	if c.Components == 0 {
		c.Components = 3
	}
	if c.PerEngine == 0 {
		c.PerEngine = 3000
	}
	if len(c.Separations) == 0 {
		c.Separations = []float64{0, 0.5, 1, 2, 5, 10}
	}
}

// MergeAblationRow is one separation's outcome.
type MergeAblationRow struct {
	// Separation is the planted mean distance (σ₁ units).
	Separation float64
	// ExactTopValue and ApproxTopValue are the merged λ₁ under eq. 15 and
	// eq. 16; the exact merge grows with separation (the pooled
	// mean-difference term), the approximation does not.
	ExactTopValue, ApproxTopValue float64
	// ShiftCapture is |v₁·d̂|, the alignment of the exact merge's top
	// eigenvector with the mean-difference direction — ≈1 once separation
	// dominates.
	ShiftCapture float64
	// ValueGap is the relative disagreement of the top eigenvalues,
	// |exact−approx|/exact — the price of the fast path.
	ValueGap float64
}

// MergeAblationResult is the separation sweep.
type MergeAblationResult struct {
	Rows []MergeAblationRow
}

// RunMergeAblation trains engine pairs at each separation and merges a
// snapshot both ways.
func RunMergeAblation(cfg MergeAblationConfig) (*MergeAblationResult, error) {
	cfg.defaults()
	res := &MergeAblationResult{}
	for _, sep := range cfg.Separations {
		genA, err := spectra.NewSignalGenerator(spectra.SignalConfig{
			Dim: cfg.Dim, Signals: cfg.Components, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		genB, err := spectra.NewSignalGenerator(spectra.SignalConfig{
			Dim: cfg.Dim, Signals: cfg.Components, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		// Shift population B's location along a fixed direction.
		shift := make([]float64, cfg.Dim)
		shift[0] = sep * 3 // SignalAmp default 3 = top signal stddev

		mk := func(gen *spectra.SignalGenerator, offset []float64) (*core.Engine, error) {
			en, err := core.NewEngine(core.Config{
				Dim: cfg.Dim, Components: cfg.Components, Alpha: 1 - 1.0/1000,
			})
			if err != nil {
				return nil, err
			}
			for i := 0; i < cfg.PerEngine; i++ {
				x, _ := gen.Next()
				if offset != nil {
					mat.Axpy(1, offset, x)
				}
				if _, err := en.Observe(x); err != nil {
					return nil, err
				}
			}
			return en, nil
		}
		a1, err := mk(genA, nil)
		if err != nil {
			return nil, err
		}
		b, err := mk(genB, shift)
		if err != nil {
			return nil, err
		}
		snapA, err := a1.Snapshot()
		if err != nil {
			return nil, err
		}
		snapB, err := b.Snapshot()
		if err != nil {
			return nil, err
		}

		exact, err := core.ResumeEngine(core.Config{Dim: cfg.Dim, Components: cfg.Components}, snapA)
		if err != nil {
			return nil, err
		}
		if err := exact.MergeSnapshot(snapB); err != nil {
			return nil, err
		}
		approx, err := core.ResumeEngine(core.Config{Dim: cfg.Dim, Components: cfg.Components}, snapA)
		if err != nil {
			return nil, err
		}
		if err := approx.MergeApprox(snapB); err != nil {
			return nil, err
		}

		row := MergeAblationRow{
			Separation:     sep,
			ExactTopValue:  exact.Eigensystem().Values[0],
			ApproxTopValue: approx.Eigensystem().Values[0],
		}
		// Alignment of the exact top eigenvector with the shift direction.
		top := exact.Eigensystem().Component(0)
		diff := mat.SubTo(make([]float64, cfg.Dim), snapA.Mean, snapB.Mean)
		if n := mat.Norm2(diff); n > 0 {
			mat.Scale(1/n, diff)
			c := mat.Dot(top, diff)
			if c < 0 {
				c = -c
			}
			row.ShiftCapture = c
		}
		if row.ExactTopValue > 0 {
			g := row.ExactTopValue - row.ApproxTopValue
			if g < 0 {
				g = -g
			}
			row.ValueGap = g / row.ExactTopValue
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteText renders the sweep.
func (r *MergeAblationResult) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Merge ablation — exact (eq. 15) vs approximate (eq. 16) by mean separation")
	fmt.Fprintln(w, "separation(σ)   exact λ1   approx λ1   shift-capture   value-gap")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%12.1f  %9.3g  %10.3g  %14.3f  %10.3f\n",
			row.Separation, row.ExactTopValue, row.ApproxTopValue,
			row.ShiftCapture, row.ValueGap)
	}
}

// WriteCSV emits the sweep as CSV.
func (r *MergeAblationResult) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "separation,exact_l1,approx_l1,shift_capture,value_gap")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%g,%g,%g,%g,%g\n",
			row.Separation, row.ExactTopValue, row.ApproxTopValue,
			row.ShiftCapture, row.ValueGap)
	}
}
