// Package exp contains one harness per figure of the paper's evaluation,
// each regenerating the figure's rows/series as plain text (and exercised
// by the repository's top-level benchmarks). Absolute numbers depend on the
// machine and the synthetic substrate; the shapes are what the harnesses
// assert and EXPERIMENTS.md records.
package exp

import (
	"fmt"
	"io"

	"streampca/internal/core"
	"streampca/internal/robust"
	"streampca/internal/spectra"
)

// Fig1Config parameterizes the classic-vs-robust eigenvalue-trace
// experiment (Figure 1): random Gaussian data with planted signals and
// artificially generated outliers, streamed through both estimators.
type Fig1Config struct {
	// Dim, Components, Window are the estimator settings (defaults 50, 5,
	// 1000).
	Dim, Components int
	Window          float64
	// N is the stream length (default 20000).
	N int
	// OutlierRate is the contamination fraction (default 0.10).
	OutlierRate float64
	// SampleEvery is the trace sampling stride (default N/200).
	SampleEvery int
	// Seed fixes the stream.
	Seed uint64
}

func (c *Fig1Config) defaults() {
	if c.Dim == 0 {
		c.Dim = 50
	}
	if c.Components == 0 {
		c.Components = 5
	}
	if c.Window == 0 {
		c.Window = 1000
	}
	if c.N == 0 {
		c.N = 20000
	}
	if c.OutlierRate == 0 {
		c.OutlierRate = 0.10
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = c.N / 200
		if c.SampleEvery < 1 {
			c.SampleEvery = 1
		}
	}
}

// Fig1Result carries the eigenvalue traces and detection statistics.
type Fig1Result struct {
	// Steps are the observation indices at which traces were sampled.
	Steps []int
	// Classic and Robust hold one eigenvalue vector per sampled step.
	Classic, Robust [][]float64
	// ClassicAff and RobustAff are the final subspace affinities to the
	// planted basis.
	ClassicAff, RobustAff float64
	// OutliersInjected and OutliersDetected count ground truth vs the
	// robust engine's flags; DetectionRate is their ratio.
	OutliersInjected, OutliersDetected int
	// FalsePositives counts clean observations flagged by the robust
	// engine.
	FalsePositives int
	// DetectionRate = OutliersDetected / OutliersInjected.
	DetectionRate float64
	// ClassicInstability and RobustInstability quantify the "rainbow
	// effect": the mean relative step-to-step change of the top eigenvalue
	// over the second half of the stream (noisy, non-converging traces
	// score high).
	ClassicInstability, RobustInstability float64
}

// RunFig1 streams the same contaminated data through a classic and a robust
// engine and samples their eigenvalue traces.
func RunFig1(cfg Fig1Config) (*Fig1Result, error) {
	cfg.defaults()
	gen, err := spectra.NewSignalGenerator(spectra.SignalConfig{
		Dim: cfg.Dim, Signals: cfg.Components, Seed: cfg.Seed, OutlierRate: cfg.OutlierRate,
	})
	if err != nil {
		return nil, err
	}
	alpha := 1 - 1/cfg.Window
	classic, err := core.NewEngine(core.Config{
		Dim: cfg.Dim, Components: cfg.Components, Alpha: alpha, Rho: robust.Classic{},
	})
	if err != nil {
		return nil, err
	}
	rob, err := core.NewEngine(core.Config{
		Dim: cfg.Dim, Components: cfg.Components, Alpha: alpha,
	})
	if err != nil {
		return nil, err
	}

	res := &Fig1Result{}
	for i := 0; i < cfg.N; i++ {
		x, isOut := gen.Next()
		if isOut {
			res.OutliersInjected++
		}
		if _, err := classic.Observe(x); err != nil {
			return nil, err
		}
		u, err := rob.Observe(x)
		if err != nil {
			return nil, err
		}
		if !u.Warmup && u.Outlier {
			if isOut {
				res.OutliersDetected++
			} else {
				res.FalsePositives++
			}
		}
		if (i+1)%cfg.SampleEvery == 0 && classic.Ready() && rob.Ready() {
			res.Steps = append(res.Steps, i+1)
			res.Classic = append(res.Classic, snapshotValues(classic))
			res.Robust = append(res.Robust, snapshotValues(rob))
		}
	}
	truth := gen.TrueBasis()
	if classic.Ready() {
		res.ClassicAff = classic.Eigensystem().SubspaceAffinity(truth)
	}
	if rob.Ready() {
		res.RobustAff = rob.Eigensystem().SubspaceAffinity(truth)
	}
	if res.OutliersInjected > 0 {
		res.DetectionRate = float64(res.OutliersDetected) / float64(res.OutliersInjected)
	}
	res.ClassicInstability = instability(res.Classic)
	res.RobustInstability = instability(res.Robust)
	return res, nil
}

func snapshotValues(en *core.Engine) []float64 {
	vals := en.Eigensystem().Values
	out := make([]float64, len(vals))
	copy(out, vals)
	return out
}

// instability is the mean |λ₁(t+1)−λ₁(t)|/λ₁(t) over the second half of the
// trace.
func instability(trace [][]float64) float64 {
	if len(trace) < 4 {
		return 0
	}
	half := trace[len(trace)/2:]
	var sum float64
	var n int
	for i := 1; i < len(half); i++ {
		prev := half[i-1][0]
		if prev <= 0 {
			continue
		}
		d := half[i][0] - prev
		if d < 0 {
			d = -d
		}
		sum += d / prev
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteText renders the figure as aligned columns: step, classic λ₁..λ₃,
// robust λ₁..λ₃, followed by the summary block.
func (r *Fig1Result) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Figure 1 — eigenvalue traces under outlier contamination (classic vs robust)")
	fmt.Fprintln(w, "   step   classic λ1      λ2      λ3  |  robust λ1      λ2      λ3")
	stride := len(r.Steps) / 25
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(r.Steps); i += stride {
		c, b := r.Classic[i], r.Robust[i]
		fmt.Fprintf(w, "%7d  %10.3g %7.3g %7.3g  | %10.3g %7.3g %7.3g\n",
			r.Steps[i], c[0], c[1], c[2], b[0], b[1], b[2])
	}
	fmt.Fprintf(w, "final subspace affinity: classic %.3f, robust %.3f\n", r.ClassicAff, r.RobustAff)
	fmt.Fprintf(w, "top-eigenvalue instability (2nd half): classic %.3f, robust %.3f\n",
		r.ClassicInstability, r.RobustInstability)
	fmt.Fprintf(w, "outliers: injected %d, detected %d (rate %.2f), false positives %d\n",
		r.OutliersInjected, r.OutliersDetected, r.DetectionRate, r.FalsePositives)
}
