package exp

import (
	"fmt"
	"io"

	"streampca/internal/core"
	"streampca/internal/mat"
	"streampca/internal/spectra"
)

// Fig45Config parameterizes the eigenspectra-convergence experiment
// (Figures 4 and 5): streaming synthetic galaxy spectra and snapshotting
// the first four eigenvectors early (noisy, Figure 4) and late (converged,
// physically meaningful, Figure 5).
type Fig45Config struct {
	// Bins is the wavelength-grid size (default 500).
	Bins int
	// Rank is the manifold dimensionality (default 4).
	Rank int
	// Early and Late are the observation counts for the two snapshots
	// (defaults 100 and 20000).
	Early, Late int
	// NoiseSigma is the per-bin noise (default 0.2 — noisy enough that the
	// early eigenvectors look like the paper's Figure 4).
	NoiseSigma float64
	// Window is the effective sample size (default 5000).
	Window float64
	// Seed fixes the stream.
	Seed uint64
}

func (c *Fig45Config) defaults() {
	if c.Bins == 0 {
		c.Bins = 500
	}
	if c.Rank == 0 {
		c.Rank = 4
	}
	if c.Early == 0 {
		c.Early = 100
	}
	if c.Late == 0 {
		c.Late = 20000
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.2
	}
	if c.Window == 0 {
		c.Window = 5000
	}
}

// Fig45Result carries the two snapshots plus the convergence metrics that
// make the paper's visual claims quantitative.
type Fig45Result struct {
	// Wavelengths are the grid centers (Å).
	Wavelengths []float64
	// EarlyVectors and LateVectors hold the first four eigenvectors as
	// columns at the two snapshots.
	EarlyVectors, LateVectors *mat.Dense
	// EarlyAff and LateAff are subspace affinities to the generator truth.
	EarlyAff, LateAff float64
	// EarlyRoughness and LateRoughness are mean squared second differences
	// of the eigenvectors — the paper reads smoothness as the sign of
	// robustness ("PCA has no notion of where the pixels are relative to
	// each other"), so converged vectors must score much lower.
	EarlyRoughness, LateRoughness float64
	// LineRecall is the fraction of strong catalog lines whose wavelength
	// coincides with a local extremum of the late eigenvectors — the
	// "physically meaningful features" of Figure 5.
	LineRecall float64
}

// RunFig45 streams synthetic SDSS spectra through a robust engine and
// snapshots the leading eigenspectra at the early and late marks.
func RunFig45(cfg Fig45Config) (*Fig45Result, error) {
	cfg.defaults()
	gen, err := spectra.NewGenerator(spectra.GeneratorConfig{
		Grid: spectra.SDSSGrid(cfg.Bins), Rank: cfg.Rank,
		NoiseSigma: cfg.NoiseSigma, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	en, err := core.NewEngine(core.Config{
		Dim: cfg.Bins, Components: cfg.Rank, Alpha: 1 - 1/cfg.Window,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig45Result{Wavelengths: gen.Grid().Wavelengths()}
	truth := gen.TrueBasis()

	show := 4
	if show > cfg.Rank {
		show = cfg.Rank
	}
	for i := 0; i < cfg.Late; i++ {
		obs := gen.Next()
		if _, err := en.Observe(obs.Flux); err != nil {
			return nil, err
		}
		if i+1 == cfg.Early && en.Ready() {
			res.EarlyVectors = en.Eigensystem().Vectors.SliceCols(0, show)
			res.EarlyAff = en.Eigensystem().SubspaceAffinity(truth)
		}
	}
	if !en.Ready() {
		return nil, fmt.Errorf("exp: engine never initialized")
	}
	if res.EarlyVectors == nil {
		res.EarlyVectors = en.Eigensystem().Vectors.SliceCols(0, show)
		res.EarlyAff = en.Eigensystem().SubspaceAffinity(truth)
	}
	res.LateVectors = en.Eigensystem().Vectors.SliceCols(0, show)
	res.LateAff = en.Eigensystem().SubspaceAffinity(truth)
	res.EarlyRoughness = roughness(res.EarlyVectors)
	res.LateRoughness = roughness(res.LateVectors)
	res.LineRecall = lineRecall(gen.Grid(), res.LateVectors)
	return res, nil
}

// roughness is the mean squared second difference across all columns,
// scaled by the number of bins so it is comparable across grid sizes.
func roughness(v *mat.Dense) float64 {
	d, k := v.Dims()
	if d < 3 || k == 0 {
		return 0
	}
	var sum float64
	for j := 0; j < k; j++ {
		for i := 1; i < d-1; i++ {
			s := v.At(i-1, j) - 2*v.At(i, j) + v.At(i+1, j)
			sum += s * s
		}
	}
	return sum * float64(d) / float64(k*(d-2))
}

// lineRecall checks, for each catalog line inside the grid, whether any of
// the eigenvectors has a local extremum within ±3 bins of the line center.
func lineRecall(g spectra.Grid, v *mat.Dense) float64 {
	d, k := v.Dims()
	var total, hit int
	for _, line := range spectra.Catalog() {
		bin := g.Bin(line.Wavelength)
		if bin < 3 || bin > d-4 {
			continue
		}
		total++
	search:
		for j := 0; j < k; j++ {
			for b := bin - 3; b <= bin+3; b++ {
				if b < 1 || b >= d-1 {
					continue
				}
				c := v.At(b, j)
				if (c > v.At(b-1, j) && c > v.At(b+1, j)) || (c < v.At(b-1, j) && c < v.At(b+1, j)) {
					hit++
					break search
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// WriteText renders Figures 4 and 5 as a coarse waveband table plus the
// convergence metrics.
func (r *Fig45Result) WriteText(w io.Writer) {
	fmt.Fprintln(w, "Figures 4–5 — first eigenspectra early vs converged")
	d := len(r.Wavelengths)
	stride := d / 16
	if stride < 1 {
		stride = 1
	}
	fmt.Fprintln(w, "    λ(Å)   early e1      e2  |   late e1      e2")
	for i := 0; i < d; i += stride {
		fmt.Fprintf(w, "%8.0f  %8.4f %7.4f  | %8.4f %7.4f\n",
			r.Wavelengths[i],
			r.EarlyVectors.At(i, 0), r.EarlyVectors.At(i, 1),
			r.LateVectors.At(i, 0), r.LateVectors.At(i, 1))
	}
	fmt.Fprintf(w, "subspace affinity: early %.3f → late %.3f\n", r.EarlyAff, r.LateAff)
	fmt.Fprintf(w, "roughness (mean sq. 2nd diff ×d): early %.4g → late %.4g\n",
		r.EarlyRoughness, r.LateRoughness)
	fmt.Fprintf(w, "catalog-line recall in late eigenspectra: %.2f\n", r.LineRecall)
}
