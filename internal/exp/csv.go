package exp

import (
	"fmt"
	"io"
)

// CSV renderers for each figure, so the series can be re-plotted with any
// external tool (`benchfig -fig 6 -csv > fig6.csv`).

// WriteCSV emits the sampled eigenvalue traces: step, classic λ1..λ3,
// robust λ1..λ3.
func (r *Fig1Result) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "step,classic_l1,classic_l2,classic_l3,robust_l1,robust_l2,robust_l3")
	for i, s := range r.Steps {
		c, b := r.Classic[i], r.Robust[i]
		fmt.Fprintf(w, "%d,%g,%g,%g,%g,%g,%g\n", s, c[0], c[1], c[2], b[0], b[1], b[2])
	}
}

// WriteCSV emits wavelength, the early eigenvectors, and the late
// eigenvectors, one row per bin.
func (r *Fig45Result) WriteCSV(w io.Writer) {
	k := r.LateVectors.Cols()
	fmt.Fprint(w, "wavelength")
	for j := 0; j < k; j++ {
		fmt.Fprintf(w, ",early_e%d", j+1)
	}
	for j := 0; j < k; j++ {
		fmt.Fprintf(w, ",late_e%d", j+1)
	}
	fmt.Fprintln(w)
	for i, wl := range r.Wavelengths {
		fmt.Fprintf(w, "%g", wl)
		for j := 0; j < k; j++ {
			fmt.Fprintf(w, ",%g", r.EarlyVectors.At(i, j))
		}
		for j := 0; j < k; j++ {
			fmt.Fprintf(w, ",%g", r.LateVectors.At(i, j))
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV emits engines, single-node and distributed throughput.
func (r *Fig6Result) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "engines,single_tps,distributed_tps")
	for i, n := range r.Engines {
		fmt.Fprintf(w, "%d,%g,%g\n", n, r.Single[i], r.Distributed[i])
	}
}

// WriteCSV emits dims and one tuples/s/thread column per engine count.
func (r *Fig7Result) WriteCSV(w io.Writer) {
	fmt.Fprint(w, "dims")
	for _, t := range r.Threads {
		fmt.Fprintf(w, ",thr%d", t)
	}
	fmt.Fprintln(w)
	for j, d := range r.Dims {
		fmt.Fprintf(w, "%d", d)
		for i := range r.Threads {
			fmt.Fprintf(w, ",%g", r.PerThread[i][j])
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV emits one row per coordination regime.
func (r *SyncAblationResult) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "regime,worst_aff,mean_aff,merged_aff,syncs,tuples_per_s")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s,%g,%g,%g,%d,%g\n",
			row.Regime, row.WorstAff, row.MeanAff, row.MergedAff, row.Syncs, row.Throughput)
	}
}

// WriteCSV emits one row per gap-handling strategy.
func (r *GapsAblationResult) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "strategy,affinity,used,converged_at,sigma2")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s,%g,%d,%d,%g\n",
			row.Strategy, row.Affinity, row.Used, row.ConvergedAt, row.Sigma2)
	}
}
