package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"unsafe"

	"streampca/internal/core"
	"streampca/internal/stream"
)

// Every wire message is one 8-byte header followed by a payload:
//
//	0      magic 0xD5
//	1      version (Version)
//	2      kind (Kind)
//	3      flags (kind-specific, see flag* constants)
//	4..7   payload length, u32 little-endian
//
// Multi-byte payload fields are little-endian throughout. The dense-frame
// payload is
//
//	baseSeq i64 | count u32 | dim u32 [| origin u32 | rsvd u32 | ingestNs i64]
//	  | count·dim f64 [| count·dim mask u8]
//
// where the bracketed trace extension is present iff flagTrace is set.
//
// which is byte-identical to the transport pool's contiguous B×d buffer on
// little-endian hosts — that identity is what makes the send side zero-copy
// (one writev over the header and the pooled floats) and the receive side a
// single ReadFull into a pooled buffer.
const (
	magicByte = 0xD5
	headerLen = 8

	// flagMask on a KindFrame header marks a trailing mask block.
	flagMask = 1 << 0
	// flagOutlier on a KindTuple header carries the ground-truth label.
	flagOutlier = 1 << 1
	// flagResumed / flagFinal on a KindReport header.
	flagResumed = 1 << 0
	// flagFinal marks a trailing eigensystem block on a KindReport.
	flagFinal = 1 << 1
	// flagTrace on a KindFrame header marks a 16-byte trace-context
	// extension (origin u32 | reserved u32 | ingestNs i64) between the
	// shape prefix and the float payload. Untraced frames omit it, so the
	// pre-trace byte stream is unchanged.
	flagTrace = 1 << 2
)

// Decode-side hard caps: shapes beyond these are protocol errors, rejected
// before any allocation sized from the header. They bound what a hostile
// 8-byte header can demand, exactly like internal/core's checkpoint guards.
const (
	// MaxPayload caps one message's payload (64 MiB — a 1k×8k frame).
	MaxPayload = 64 << 20
	maxWireDim = 1 << 24
	maxTuples  = 1 << 20
	maxRecv    = 1 << 16
)

// hostLE reports whether this host stores float64 little-endian, enabling
// the zero-copy reinterpretation paths; big-endian hosts take the portable
// conversion loops.
var hostLE = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

// floatBytes reinterprets a float64 slice as its in-memory byte view. Only
// meaningful as wire format on little-endian hosts (callers guard on
// hostLE).
//
//streampca:noalloc
func floatBytes(f []float64) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), len(f)*8)
}

// putFloatsLE writes src into dst as little-endian float64 bytes — the
// portable (big-endian host) encode path.
//
//streampca:noalloc
func putFloatsLE(dst []byte, src []float64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:8*i+8], math.Float64bits(v))
	}
}

// getFloatsLE fills dst from little-endian float64 bytes.
//
//streampca:noalloc
func getFloatsLE(dst []float64, src []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i : 8*i+8]))
	}
}

// helloWireLen is the exact on-wire size of a hello message: the handshake
// reads precisely this many bytes off the raw socket so pipelined data
// behind the hello stays for the steady-state decoder.
const helloWireLen = headerLen + 20

// parseHelloPayload decodes a hello's fixed-size payload.
func parseHelloPayload(p []byte) Hello {
	return Hello{
		Engine: int(int32(binary.LittleEndian.Uint32(p[0:]))),
		Dim:    int(binary.LittleEndian.Uint32(p[4:])),
		Batch:  int(binary.LittleEndian.Uint32(p[8:])),
		Epoch:  int64(binary.LittleEndian.Uint64(p[12:])),
	}
}

// parseHello validates one complete raw hello message, header included.
func parseHello(raw []byte) (Hello, error) {
	if len(raw) != helloWireLen || raw[0] != magicByte {
		return Hello{}, errors.New("wire: malformed hello")
	}
	if raw[1] != Version {
		return Hello{}, fmt.Errorf("wire: peer speaks protocol version %d, want %d", raw[1], Version)
	}
	if Kind(raw[2]) != KindHello {
		return Hello{}, fmt.Errorf("wire: peer opened with message kind %d, want hello", raw[2])
	}
	if binary.LittleEndian.Uint32(raw[4:8]) != helloWireLen-headerLen {
		return Hello{}, errors.New("wire: hello payload length mismatch")
	}
	return parseHelloPayload(raw[headerLen:]), nil
}

// putHeader packs one wire header.
//
//streampca:noalloc
func putHeader(dst []byte, kind Kind, flags byte, payloadLen int) {
	dst[0] = magicByte
	dst[1] = Version
	dst[2] = byte(kind)
	dst[3] = flags
	binary.LittleEndian.PutUint32(dst[4:8], uint32(payloadLen))
}

// Encoder serializes stream messages onto one writer. Not safe for
// concurrent use; an edge owns one per connection.
//
// Two usage shapes:
//
//   - Encode(msg): assemble one message and write it immediately — the
//     handshake and compatibility path.
//   - Append(msg)…Append(msg) then Flush(): the coalescing path. Append
//     only assembles (fixed-layout bytes into an arena, dense-frame floats
//     as zero-copy views); Flush hands the whole batch to the kernel as
//     one net.Buffers writev, amortizing the syscall over every message
//     queued behind the first. The byte stream is identical either way —
//     coalescing changes write granularity, never layout.
type Encoder struct {
	w io.Writer
	// single forces every message into its own Write call(s) (header and
	// payload assembled contiguously) instead of the gathered writev fast
	// path. Fault conns need it: their per-write fault rolls assume one
	// write == one whole frame, the same reason transport pools switch off
	// under chaos. It also disables snapshot deltas — an injector that
	// drops or reorders whole messages would desync the delta chain.
	single bool
	// arena holds every assembled header/payload byte of the pending
	// batch; parts index into it rather than aliasing it, so arena growth
	// mid-batch never invalidates an earlier part.
	arena []byte
	parts []encPart
	bufs  net.Buffers
	snap  bytes.Buffer
	// wrote/writes count bytes the writer accepted and the write calls
	// that carried them (partial writes included) — the edge's
	// bytes-per-writev signal.
	wrote  int64
	writes int64
	// lastFlushed is how many bytes the last Flush handed to the kernel,
	// valid on error too: the sender uses it to resolve a torn writev to
	// whole delivered messages.
	lastFlushed int
	// deltas is the per-sender snapshot base state (see delta.go), nil
	// until the first snapshot; deltaBuf is the delta encode scratch.
	deltas   map[int]*deltaStream
	deltaBuf []byte
}

// encPart is one gather segment of the pending batch: a span of the arena
// (ext nil) or a zero-copy view of caller-owned float storage.
type encPart struct {
	ext    []byte
	off, n int
}

// NewEncoder returns an encoder writing to w. single selects the
// one-write-per-message mode required when w rolls faults per write.
func NewEncoder(w io.Writer, single bool) *Encoder {
	return &Encoder{w: w, single: single}
}

// reserve appends an n-byte span to the arena and returns its offset.
func (e *Encoder) reserve(n int) int {
	off := len(e.arena)
	if cap(e.arena) < off+n {
		grown := make([]byte, off, 2*(off+n))
		copy(grown, e.arena)
		e.arena = grown
	}
	e.arena = e.arena[:off+n]
	return off
}

// span records an arena segment as a gather part.
func (e *Encoder) span(off, n int) {
	e.parts = append(e.parts, encPart{off: off, n: n})
}

// view records caller-owned bytes as a zero-copy gather part.
func (e *Encoder) view(b []byte) {
	e.parts = append(e.parts, encPart{ext: b})
}

// Append assembles one message onto the pending batch. Supported kinds:
// stream.Frame, stream.Tuple, stream.Control, stream.Snapshot (State must
// be a *core.Eigensystem), stream.Barrier, Hello, EngineReport, ClockProbe,
// ClockEcho, ObsReport and EOS.
// Anything else is an error, and on error the batch is exactly as it was
// before the call. Nothing reaches the writer until Flush — except in
// single-write mode, where each assembled span is written immediately and
// Flush is a no-op. Zero-copy frame views stay referenced until Flush
// returns, so callers must not release a frame store before then.
func (e *Encoder) Append(msg stream.Message) error {
	pmark, amark := len(e.parts), len(e.arena)
	if err := e.assemble(msg); err != nil {
		e.parts = e.parts[:pmark]
		e.arena = e.arena[:amark]
		return err
	}
	if !e.single {
		return nil
	}
	var err error
	for _, p := range e.parts[pmark:] {
		// Single mode never assembles ext parts (assembleFrame guards on
		// it), so every part is an arena span.
		b := e.arena[p.off : p.off+p.n]
		if _, err = e.w.Write(b); err != nil {
			break
		}
		e.wrote += int64(len(b))
		e.writes++
	}
	e.parts = e.parts[:pmark]
	e.arena = e.arena[:amark]
	return err
}

// Flush writes the pending batch as one gathered writev and resets the
// assembly state. A no-op when nothing is pending (and always in
// single-write mode, where Append already wrote). A flush error tears the
// connection — callers re-assemble on a fresh encoder after reconnecting —
// so the pending state is discarded either way.
func (e *Encoder) Flush() error {
	if len(e.parts) == 0 {
		return nil
	}
	// Arena spans are reserved in order, so consecutive ones are contiguous
	// bytes: merge each run into a single gather segment. A batch with no
	// zero-copy views collapses to one buffer (one plain Write); zero-copy
	// frames keep their float views but share merged prefix runs.
	bufs := e.bufs[:0]
	runStart, runEnd := -1, -1
	for _, p := range e.parts {
		if p.ext != nil {
			if runStart >= 0 {
				bufs = append(bufs, e.arena[runStart:runEnd])
				runStart = -1
			}
			bufs = append(bufs, p.ext)
			continue
		}
		if runStart >= 0 && p.off == runEnd {
			runEnd = p.off + p.n
			continue
		}
		if runStart >= 0 {
			bufs = append(bufs, e.arena[runStart:runEnd])
		}
		runStart, runEnd = p.off, p.off+p.n
	}
	if runStart >= 0 {
		bufs = append(bufs, e.arena[runStart:runEnd])
	}
	var wrote int64
	var err error
	if len(bufs) == 1 {
		var n int
		n, err = e.w.Write(bufs[0])
		wrote = int64(n)
	} else {
		e.bufs = bufs
		wrote, err = e.bufs.WriteTo(e.w)
	}
	// WriteTo consumes its receiver; restore the backing slice and drop
	// the byte views so pooled frame storage is not pinned past the flush.
	for i := range bufs {
		bufs[i] = nil
	}
	e.bufs = bufs[:0]
	e.parts = e.parts[:0]
	e.arena = e.arena[:0]
	e.lastFlushed = int(wrote)
	if wrote > 0 {
		e.wrote += wrote
		e.writes++
	}
	return err
}

// pendingBytes is the byte length of the assembled, unflushed batch — what
// the next Flush will hand to the kernel.
func (e *Encoder) pendingBytes() int {
	n := 0
	for _, p := range e.parts {
		if p.ext != nil {
			n += len(p.ext)
		} else {
			n += p.n
		}
	}
	return n
}

// Encode writes one message immediately: Append plus a single-message
// Flush. The batch-of-one byte stream is identical to a coalesced one.
func (e *Encoder) Encode(msg stream.Message) error {
	if err := e.Append(msg); err != nil {
		return err
	}
	return e.Flush()
}

func (e *Encoder) assemble(msg stream.Message) error {
	switch m := msg.(type) {
	case stream.Frame:
		return e.assembleFrame(m)
	case stream.Tuple:
		return e.assembleTuple(m)
	case stream.Control:
		return e.assembleControl(m)
	case stream.Snapshot:
		return e.assembleSnapshot(m)
	case stream.Barrier:
		off := e.reserve(headerLen + 8)
		b := e.arena[off:]
		putHeader(b, KindBarrier, 0, 8)
		binary.LittleEndian.PutUint64(b[headerLen:], uint64(m.Epoch))
		e.span(off, headerLen+8)
		return nil
	case Hello:
		off := e.reserve(helloWireLen)
		b := e.arena[off:]
		putHeader(b, KindHello, 0, 20)
		binary.LittleEndian.PutUint32(b[8:], uint32(int32(m.Engine)))
		binary.LittleEndian.PutUint32(b[12:], uint32(m.Dim))
		binary.LittleEndian.PutUint32(b[16:], uint32(m.Batch))
		binary.LittleEndian.PutUint64(b[20:], uint64(m.Epoch))
		e.span(off, helloWireLen)
		return nil
	case EngineReport:
		return e.assembleReport(m)
	case ClockProbe:
		off := e.reserve(headerLen + 16)
		b := e.arena[off:]
		putHeader(b, KindClockProbe, 0, 16)
		binary.LittleEndian.PutUint32(b[8:], uint32(int32(m.Node)))
		binary.LittleEndian.PutUint32(b[12:], 0)
		binary.LittleEndian.PutUint64(b[16:], uint64(m.T1))
		e.span(off, headerLen+16)
		return nil
	case ClockEcho:
		off := e.reserve(headerLen + 24)
		b := e.arena[off:]
		putHeader(b, KindClockEcho, 0, 24)
		binary.LittleEndian.PutUint64(b[8:], uint64(m.T1))
		binary.LittleEndian.PutUint64(b[16:], uint64(m.T2))
		binary.LittleEndian.PutUint64(b[24:], uint64(m.T3))
		e.span(off, headerLen+24)
		return nil
	case ObsReport:
		return e.assembleObsReport(m)
	case EOS:
		off := e.reserve(headerLen)
		putHeader(e.arena[off:], KindEOS, 0, 0)
		e.span(off, headerLen)
		return nil
	default:
		return fmt.Errorf("wire: cannot encode %T", msg)
	}
}

// frameShape validates that f fits the dense-frame layout: at least one
// tuple, uniform dimension, consecutive sequence numbers, uniform
// mask-ness, no ground-truth outlier labels (those only exist on synthetic
// test streams and would be silently lost). It returns the dimension and
// whether a mask block is present.
func frameShape(f stream.Frame) (dim int, masked, ok bool) {
	if len(f.Tuples) == 0 {
		return 0, false, false
	}
	dim = len(f.Tuples[0].Vec)
	if dim == 0 {
		return 0, false, false
	}
	masked = f.Tuples[0].Mask != nil
	for i := range f.Tuples {
		t := &f.Tuples[i]
		if len(t.Vec) != dim || t.Outlier || t.Seq != f.Seq+int64(i) {
			return 0, false, false
		}
		if hasMask := t.Mask != nil; hasMask != masked || (hasMask && len(t.Mask) != dim) {
			return 0, false, false
		}
	}
	return dim, masked, true
}

func (e *Encoder) assembleFrame(f stream.Frame) error {
	dim, masked, ok := frameShape(f)
	if !ok {
		// Irregular frame (mixed shapes, outlier labels, seq gaps): send the
		// tuples individually. Semantics are identical — the engine's block
		// path is bitwise-equal to the scalar path — only batching is lost.
		for _, t := range f.Tuples {
			if err := e.assembleTuple(t); err != nil {
				return err
			}
		}
		return nil
	}
	count := len(f.Tuples)
	floats := count * dim
	preLen := 16
	var flags byte
	if f.Trace.IngestNs != 0 {
		// Trace context rides as a fixed 16-byte prefix extension: a few
		// arena bytes per frame, no extra gather segment, no allocation.
		flags |= flagTrace
		preLen += 16
	}
	payload := preLen + floats*8
	if masked {
		flags |= flagMask
		payload += floats
	}
	if hostLE && !e.single && !masked {
		// Zero-copy fast path: header+prefix plus each tuple's float
		// storage viewed in place, gathered into the batch's writev. Each
		// byte view stays inside its own vector's allocation (a slice
		// spanning the pool's whole B×d buffer would be undefined behavior
		// whenever the vectors are NOT pool slots that merely happen to sit
		// adjacently). The frame store is only released by the caller after
		// Flush returns, so the kernel is done with the bytes by then.
		off := e.reserve(headerLen + preLen)
		pre := e.arena[off:]
		putHeader(pre, KindFrame, flags, payload)
		binary.LittleEndian.PutUint64(pre[8:], uint64(f.Seq))
		binary.LittleEndian.PutUint32(pre[16:], uint32(count))
		binary.LittleEndian.PutUint32(pre[20:], uint32(dim))
		if flags&flagTrace != 0 {
			binary.LittleEndian.PutUint32(pre[24:], f.Trace.Origin)
			binary.LittleEndian.PutUint32(pre[28:], 0)
			binary.LittleEndian.PutUint64(pre[32:], uint64(f.Trace.IngestNs))
		}
		e.span(off, headerLen+preLen)
		for i := range f.Tuples {
			e.view(floatBytes(f.Tuples[i].Vec))
		}
		return nil
	}
	off := e.reserve(headerLen + payload)
	buf := e.arena[off:]
	putHeader(buf, KindFrame, flags, payload)
	binary.LittleEndian.PutUint64(buf[8:], uint64(f.Seq))
	binary.LittleEndian.PutUint32(buf[16:], uint32(count))
	binary.LittleEndian.PutUint32(buf[20:], uint32(dim))
	if flags&flagTrace != 0 {
		binary.LittleEndian.PutUint32(buf[24:], f.Trace.Origin)
		binary.LittleEndian.PutUint32(buf[28:], 0)
		binary.LittleEndian.PutUint64(buf[32:], uint64(f.Trace.IngestNs))
	}
	pos := headerLen + preLen
	for _, t := range f.Tuples {
		putFloatsLE(buf[pos:pos+dim*8], t.Vec)
		pos += dim * 8
	}
	if masked {
		for _, t := range f.Tuples {
			for _, b := range t.Mask {
				if b {
					buf[pos] = 1
				} else {
					buf[pos] = 0
				}
				pos++
			}
		}
	}
	e.span(off, headerLen+payload)
	return nil
}

func (e *Encoder) assembleTuple(t stream.Tuple) error {
	n := len(t.Vec)
	if n > maxWireDim {
		return fmt.Errorf("wire: tuple dimension %d exceeds the wire limit", n)
	}
	payload := 16 + n*8
	var flags byte
	if t.Mask != nil {
		if len(t.Mask) != n {
			return fmt.Errorf("wire: tuple mask length %d != vector length %d", len(t.Mask), n)
		}
		flags |= flagMask
		payload += n
	}
	if t.Outlier {
		flags |= flagOutlier
	}
	off := e.reserve(headerLen + payload)
	buf := e.arena[off:]
	putHeader(buf, KindTuple, flags, payload)
	binary.LittleEndian.PutUint64(buf[8:], uint64(t.Seq))
	binary.LittleEndian.PutUint32(buf[16:], uint32(n))
	binary.LittleEndian.PutUint32(buf[20:], 0)
	putFloatsLE(buf[24:24+n*8], t.Vec)
	pos := 24 + n*8
	for _, b := range t.Mask {
		if b {
			buf[pos] = 1
		} else {
			buf[pos] = 0
		}
		pos++
	}
	e.span(off, headerLen+payload)
	return nil
}

func (e *Encoder) assembleControl(c stream.Control) error {
	if len(c.Receivers) > maxRecv {
		return fmt.Errorf("wire: control names %d receivers, limit %d", len(c.Receivers), maxRecv)
	}
	payload := 16 + 4*len(c.Receivers)
	off := e.reserve(headerLen + payload)
	buf := e.arena[off:]
	putHeader(buf, KindControl, 0, payload)
	binary.LittleEndian.PutUint64(buf[8:], uint64(c.Round))
	binary.LittleEndian.PutUint32(buf[16:], uint32(int32(c.Sender)))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(c.Receivers)))
	for i, r := range c.Receivers {
		binary.LittleEndian.PutUint32(buf[24+4*i:], uint32(int32(r)))
	}
	e.span(off, headerLen+payload)
	return nil
}

// deltaState returns (creating on first use) the snapshot base state for
// sender from, or nil when deltas are disabled on this encoder.
func (e *Encoder) deltaState(from int) *deltaStream {
	if e.single {
		return nil
	}
	if e.deltas == nil {
		e.deltas = make(map[int]*deltaStream)
	}
	st := e.deltas[from]
	if st == nil {
		st = &deltaStream{}
		e.deltas[from] = st
	}
	return st
}

func (e *Encoder) assembleSnapshot(s stream.Snapshot) error {
	es, ok := s.State.(*core.Eigensystem)
	if !ok || es == nil {
		return fmt.Errorf("wire: snapshot state is %T, need *core.Eigensystem", s.State)
	}
	e.snap.Reset()
	if err := core.WriteEigensystem(&e.snap, es); err != nil {
		return err
	}
	full := e.snap.Bytes()
	st := e.deltaState(s.From)
	if st != nil && st.gen > 0 && len(st.full) == len(full) && len(full)%8 == 0 {
		if cap(e.deltaBuf) < len(full)+16 {
			e.deltaBuf = make([]byte, len(full)+16)
		}
		if dn := deltaInto(e.deltaBuf[:len(full)+16], st.full, full); dn >= 0 {
			payload := snapDeltaHeadLen + dn
			off := e.reserve(headerLen + payload)
			buf := e.arena[off:]
			putHeader(buf, KindSnapshotDelta, 0, payload)
			binary.LittleEndian.PutUint64(buf[8:], uint64(s.Round))
			binary.LittleEndian.PutUint32(buf[16:], uint32(int32(s.From)))
			binary.LittleEndian.PutUint32(buf[20:], uint32(int32(s.To)))
			binary.LittleEndian.PutUint32(buf[24:], st.gen)
			binary.LittleEndian.PutUint32(buf[28:], uint32(len(full)))
			copy(buf[32:], e.deltaBuf[:dn])
			e.span(off, headerLen+payload)
			st.advance(full)
			return nil
		}
	}
	payload := 16 + len(full)
	if payload > MaxPayload {
		return fmt.Errorf("wire: snapshot payload %d exceeds MaxPayload", payload)
	}
	off := e.reserve(headerLen + payload)
	buf := e.arena[off:]
	putHeader(buf, KindSnapshot, 0, payload)
	binary.LittleEndian.PutUint64(buf[8:], uint64(s.Round))
	binary.LittleEndian.PutUint32(buf[16:], uint32(int32(s.From)))
	binary.LittleEndian.PutUint32(buf[20:], uint32(int32(s.To)))
	copy(buf[24:], full)
	e.span(off, headerLen+payload)
	if st != nil {
		st.advance(full)
	}
	return nil
}

func (e *Encoder) assembleReport(r EngineReport) error {
	var flags byte
	if r.Resumed {
		flags |= flagResumed
	}
	e.snap.Reset()
	if r.Final != nil {
		flags |= flagFinal
		if err := core.WriteEigensystem(&e.snap, r.Final); err != nil {
			return err
		}
	}
	payload := 48 + e.snap.Len()
	if payload > MaxPayload {
		return fmt.Errorf("wire: report payload %d exceeds MaxPayload", payload)
	}
	off := e.reserve(headerLen + payload)
	buf := e.arena[off:]
	putHeader(buf, KindReport, flags, payload)
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(r.Engine)))
	binary.LittleEndian.PutUint32(buf[12:], 0)
	binary.LittleEndian.PutUint64(buf[16:], uint64(r.Processed))
	binary.LittleEndian.PutUint64(buf[24:], uint64(r.Outliers))
	binary.LittleEndian.PutUint64(buf[32:], uint64(r.SnapshotsSent))
	binary.LittleEndian.PutUint64(buf[40:], uint64(r.MergesApplied))
	binary.LittleEndian.PutUint64(buf[48:], uint64(r.Restarts))
	copy(buf[56:], e.snap.Bytes())
	e.span(off, headerLen+payload)
	return nil
}

// maxObsBody caps one obs-report body. Reports are deltas of a bounded
// snapshot (fixed histogram buckets, a capped journal window, sampled span
// rings), so a megabyte is generous headroom; anything larger is a protocol
// error, not a reason to allocate.
const maxObsBody = 1 << 20

func (e *Encoder) assembleObsReport(r ObsReport) error {
	if len(r.Body) > maxObsBody {
		return fmt.Errorf("wire: obs report body %d exceeds limit %d", len(r.Body), maxObsBody)
	}
	payload := 16 + len(r.Body)
	off := e.reserve(headerLen + payload)
	buf := e.arena[off:]
	putHeader(buf, KindObsReport, 0, payload)
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(r.Node)))
	binary.LittleEndian.PutUint32(buf[12:], 0)
	binary.LittleEndian.PutUint64(buf[16:], uint64(r.Seq))
	copy(buf[24:], r.Body)
	e.span(off, headerLen+payload)
	return nil
}

// RecvPool recycles the frame stores dense frames are decoded into,
// mirroring the pipeline's frame pool: the consuming operator must call
// Frame.Release exactly once. Frames whose shape does not match the pool
// fall back to ordinary allocation with a nil Release.
type RecvPool struct {
	dim, batch int
	pool       sync.Pool
}

type recvStore struct {
	buf    []float64
	masks  []bool
	tuples []stream.Tuple
}

// NewRecvPool returns a pool for count≤batch frames of dimension dim.
func NewRecvPool(dim, batch int) *RecvPool {
	if dim <= 0 || batch <= 0 {
		return nil
	}
	rp := &RecvPool{dim: dim, batch: batch}
	rp.pool.New = func() any {
		return &recvStore{
			buf:    make([]float64, batch*dim),
			tuples: make([]stream.Tuple, 0, batch),
		}
	}
	return rp
}

func (rp *RecvPool) get() *recvStore {
	//streamvet:ignore workspace-escape intentional lending: the receiving operator calls Frame.Release exactly once, returning the store
	return rp.pool.Get().(*recvStore)
}

func (rp *RecvPool) put(rs *recvStore) {
	rs.tuples = rs.tuples[:0]
	rp.pool.Put(rs)
}

// Decoder reads wire messages from one reader. Not safe for concurrent
// use. Decode never panics on malformed input and its allocations are
// bounded by the bytes the peer actually delivered (plus one fixed-size
// chunk), never by what a hostile header claims.
type Decoder struct {
	br      *bufio.Reader
	hdr     [headerLen]byte
	scratch []byte
	pool    *RecvPool
	max     int
	// deltas is the per-sender snapshot base state mirrored from the
	// encoder (see delta.go): every decoded snapshot, full or delta,
	// advances the sender's generation and replaces its base bytes.
	deltas map[int]*deltaStream
}

// NewDecoder returns a decoder reading from r, recycling dense frames via
// pool (nil disables pooling). maxPayload caps the accepted payload size;
// <=0 uses MaxPayload.
func NewDecoder(r io.Reader, pool *RecvPool, maxPayload int) *Decoder {
	if maxPayload <= 0 || maxPayload > MaxPayload {
		maxPayload = MaxPayload
	}
	// The reader buffer is deliberately small: dense-frame floats bypass it
	// (readFloatsInto drains the buffer, then ReadFulls straight into the
	// pooled store), so any byte the buffer slurps ahead of a frame payload
	// is copied twice. 4 KiB amortises header and control-plane reads while
	// keeping that double-copied fraction a few percent of a frame.
	return &Decoder{br: bufio.NewReaderSize(r, 4<<10), pool: pool, max: maxPayload}
}

// readPayload reads exactly n payload bytes into scratch, growing it in
// bounded steps as bytes actually arrive so a lying header cannot force a
// large allocation.
func (d *Decoder) readPayload(n int) ([]byte, error) {
	const chunk = 1 << 16
	got := 0
	for got < n {
		c := n - got
		if c > chunk {
			c = chunk
		}
		if cap(d.scratch) < got+c {
			grown := make([]byte, got+c)
			copy(grown, d.scratch[:got])
			d.scratch = grown
		}
		d.scratch = d.scratch[:got+c]
		if _, err := io.ReadFull(d.br, d.scratch[got:got+c]); err != nil {
			return nil, fmt.Errorf("wire: reading payload: %w", err)
		}
		got += c
	}
	return d.scratch[:n], nil
}

// Decode reads and returns the next message. It returns EOS{} for the
// clean end-of-stream frame and an error for torn connections or protocol
// violations.
func (d *Decoder) Decode() (stream.Message, error) {
	if _, err := io.ReadFull(d.br, d.hdr[:]); err != nil {
		return nil, err
	}
	if d.hdr[0] != magicByte {
		return nil, errors.New("wire: bad magic byte")
	}
	if d.hdr[1] != Version {
		return nil, fmt.Errorf("wire: unsupported protocol version %d", d.hdr[1])
	}
	kind, flags := Kind(d.hdr[2]), d.hdr[3]
	n := int(binary.LittleEndian.Uint32(d.hdr[4:8]))
	if n > d.max {
		return nil, fmt.Errorf("wire: payload %d exceeds limit %d", n, d.max)
	}
	switch kind {
	case KindHello:
		if n != helloWireLen-headerLen {
			return nil, fmt.Errorf("wire: hello payload %d, want %d", n, helloWireLen-headerLen)
		}
		p, err := d.readPayload(n)
		if err != nil {
			return nil, err
		}
		return parseHelloPayload(p), nil
	case KindTuple:
		return d.decodeTuple(flags, n)
	case KindFrame:
		return d.decodeFrame(flags, n)
	case KindControl:
		return d.decodeControl(n)
	case KindSnapshot:
		return d.decodeSnapshot(n)
	case KindSnapshotDelta:
		return d.decodeSnapshotDelta(n)
	case KindReport:
		return d.decodeReport(flags, n)
	case KindClockProbe:
		if n != 16 {
			return nil, fmt.Errorf("wire: clock probe payload %d, want 16", n)
		}
		p, err := d.readPayload(n)
		if err != nil {
			return nil, err
		}
		return ClockProbe{
			Node: int(int32(binary.LittleEndian.Uint32(p[0:]))),
			T1:   int64(binary.LittleEndian.Uint64(p[8:])),
		}, nil
	case KindClockEcho:
		if n != 24 {
			return nil, fmt.Errorf("wire: clock echo payload %d, want 24", n)
		}
		p, err := d.readPayload(n)
		if err != nil {
			return nil, err
		}
		return ClockEcho{
			T1: int64(binary.LittleEndian.Uint64(p[0:])),
			T2: int64(binary.LittleEndian.Uint64(p[8:])),
			T3: int64(binary.LittleEndian.Uint64(p[16:])),
		}, nil
	case KindObsReport:
		return d.decodeObsReport(n)
	case KindBarrier:
		if n != 8 {
			return nil, fmt.Errorf("wire: barrier payload %d, want 8", n)
		}
		p, err := d.readPayload(n)
		if err != nil {
			return nil, err
		}
		return stream.Barrier{Epoch: int64(binary.LittleEndian.Uint64(p))}, nil
	case KindEOS:
		if n != 0 {
			return nil, fmt.Errorf("wire: EOS payload %d, want 0", n)
		}
		return EOS{}, nil
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
}

func (d *Decoder) decodeTuple(flags byte, n int) (stream.Message, error) {
	if n < 16 {
		return nil, fmt.Errorf("wire: tuple payload %d too short", n)
	}
	p, err := d.readPayload(n)
	if err != nil {
		return nil, err
	}
	dim := int(binary.LittleEndian.Uint32(p[8:]))
	want := 16 + dim*8
	if flags&flagMask != 0 {
		want += dim
	}
	if dim > maxWireDim || n != want {
		return nil, fmt.Errorf("wire: tuple shape dim=%d does not match payload %d", dim, n)
	}
	t := stream.Tuple{
		Seq:     int64(binary.LittleEndian.Uint64(p[0:])),
		Vec:     make([]float64, dim),
		Outlier: flags&flagOutlier != 0,
	}
	getFloatsLE(t.Vec, p[16:16+dim*8])
	if flags&flagMask != 0 {
		t.Mask = make([]bool, dim)
		for i, b := range p[16+dim*8:] {
			t.Mask[i] = b != 0
		}
	}
	return t, nil
}

func (d *Decoder) decodeFrame(flags byte, n int) (stream.Message, error) {
	preLen := 16
	traced := flags&flagTrace != 0
	if traced {
		preLen += 16
	}
	if n < preLen {
		return nil, fmt.Errorf("wire: frame payload %d too short", n)
	}
	if _, err := d.readPayload(preLen); err != nil {
		return nil, err
	}
	baseSeq := int64(binary.LittleEndian.Uint64(d.scratch[0:]))
	count := int(binary.LittleEndian.Uint32(d.scratch[8:]))
	dim := int(binary.LittleEndian.Uint32(d.scratch[12:]))
	var trace stream.Trace
	if traced {
		trace.Origin = binary.LittleEndian.Uint32(d.scratch[16:])
		trace.IngestNs = int64(binary.LittleEndian.Uint64(d.scratch[24:]))
	}
	if count <= 0 || count > maxTuples || dim <= 0 || dim > maxWireDim {
		return nil, fmt.Errorf("wire: implausible frame shape %dx%d", count, dim)
	}
	floats := count * dim
	want := preLen + floats*8
	masked := flags&flagMask != 0
	if masked {
		want += floats
	}
	if n != want {
		return nil, fmt.Errorf("wire: frame shape %dx%d does not match payload %d", count, dim, n)
	}
	if rp := d.pool; rp != nil && dim == rp.dim && count <= rp.batch && !masked {
		// Pooled fast path: the floats land directly in a recycled
		// contiguous buffer (one ReadFull, no conversion on LE hosts).
		rs := rp.get()
		dst := rs.buf[:floats]
		if err := d.readFloatsInto(dst); err != nil {
			rp.put(rs)
			return nil, err
		}
		rs.tuples = rs.tuples[:0]
		for i := 0; i < count; i++ {
			rs.tuples = append(rs.tuples, stream.Tuple{
				Seq: baseSeq + int64(i),
				Vec: dst[i*dim : (i+1)*dim : (i+1)*dim],
			})
		}
		return stream.Frame{
			Seq:     baseSeq,
			Tuples:  rs.tuples,
			Trace:   trace,
			Release: func() { rp.put(rs) },
		}, nil
	}
	// Unpooled path: payload bytes are read chunk-bounded before the float
	// buffer is sized, so allocation tracks delivered bytes.
	p, err := d.readPayload(n - preLen)
	if err != nil {
		return nil, err
	}
	buf := make([]float64, floats)
	getFloatsLE(buf, p[:floats*8])
	tuples := make([]stream.Tuple, count)
	var masks []bool
	if masked {
		masks = make([]bool, floats)
		for i, b := range p[floats*8:] {
			masks[i] = b != 0
		}
	}
	for i := range tuples {
		tuples[i] = stream.Tuple{
			Seq: baseSeq + int64(i),
			Vec: buf[i*dim : (i+1)*dim : (i+1)*dim],
		}
		if masked {
			tuples[i].Mask = masks[i*dim : (i+1)*dim : (i+1)*dim]
		}
	}
	return stream.Frame{Seq: baseSeq, Tuples: tuples, Trace: trace}, nil
}

// readFloatsInto fills dst straight from the stream: a single ReadFull
// into the buffer's byte view on little-endian hosts, a bounded conversion
// loop elsewhere.
func (d *Decoder) readFloatsInto(dst []float64) error {
	if hostLE {
		_, err := io.ReadFull(d.br, floatBytes(dst))
		if err != nil {
			return fmt.Errorf("wire: reading frame payload: %w", err)
		}
		return nil
	}
	const chunk = 1 << 11 // floats per conversion step
	for len(dst) > 0 {
		c := len(dst)
		if c > chunk {
			c = chunk
		}
		p, err := d.readPayload(c * 8)
		if err != nil {
			return err
		}
		getFloatsLE(dst[:c], p)
		dst = dst[c:]
	}
	return nil
}

func (d *Decoder) decodeControl(n int) (stream.Message, error) {
	if n < 16 {
		return nil, fmt.Errorf("wire: control payload %d too short", n)
	}
	p, err := d.readPayload(n)
	if err != nil {
		return nil, err
	}
	nrecv := int(binary.LittleEndian.Uint32(p[12:]))
	if nrecv > maxRecv || n != 16+4*nrecv {
		return nil, fmt.Errorf("wire: control receiver count %d does not match payload %d", nrecv, n)
	}
	c := stream.Control{
		Round:  int64(binary.LittleEndian.Uint64(p[0:])),
		Sender: int(int32(binary.LittleEndian.Uint32(p[8:]))),
	}
	if nrecv > 0 {
		c.Receivers = make([]int, nrecv)
		for i := range c.Receivers {
			c.Receivers[i] = int(int32(binary.LittleEndian.Uint32(p[16+4*i:])))
		}
	}
	return c, nil
}

// deltaState returns (creating on first use) the snapshot base state for
// sender from.
func (d *Decoder) deltaState(from int) *deltaStream {
	if d.deltas == nil {
		d.deltas = make(map[int]*deltaStream)
	}
	st := d.deltas[from]
	if st == nil {
		st = &deltaStream{}
		d.deltas[from] = st
	}
	return st
}

func (d *Decoder) decodeSnapshot(n int) (stream.Message, error) {
	if n < 16 {
		return nil, fmt.Errorf("wire: snapshot payload %d too short", n)
	}
	p, err := d.readPayload(n)
	if err != nil {
		return nil, err
	}
	es, err := core.ReadEigensystem(bytes.NewReader(p[16:]))
	if err != nil {
		return nil, fmt.Errorf("wire: snapshot eigensystem: %w", err)
	}
	from := int(int32(binary.LittleEndian.Uint32(p[8:])))
	d.deltaState(from).advance(p[16:])
	return stream.Snapshot{
		Round: int64(binary.LittleEndian.Uint64(p[0:])),
		From:  from,
		To:    int(int32(binary.LittleEndian.Uint32(p[12:]))),
		State: es,
	}, nil
}

// decodeSnapshotDelta reconstructs a snapshot from its XOR delta against
// the sender's base state. Same hostile-input posture as every other
// decode path: the base-state checks reject a delta whose claimed base
// generation or length does not match what this connection actually
// carried, so a lying header can neither force an allocation nor make
// applyDeltaInPlace touch bytes outside the established base.
func (d *Decoder) decodeSnapshotDelta(n int) (stream.Message, error) {
	if n < snapDeltaHeadLen {
		return nil, fmt.Errorf("wire: snapshot delta payload %d too short", n)
	}
	p, err := d.readPayload(n)
	if err != nil {
		return nil, err
	}
	from := int(int32(binary.LittleEndian.Uint32(p[8:])))
	baseGen := binary.LittleEndian.Uint32(p[16:])
	fullLen := int(binary.LittleEndian.Uint32(p[20:]))
	st := d.deltas[from]
	if st == nil || st.gen == 0 || st.gen != baseGen ||
		len(st.full) != fullLen || fullLen%8 != 0 {
		return nil, errDeltaNoBase
	}
	if err := applyDeltaInPlace(st.full, p[snapDeltaHeadLen:]); err != nil {
		return nil, err
	}
	es, err := core.ReadEigensystem(bytes.NewReader(st.full))
	if err != nil {
		return nil, fmt.Errorf("wire: snapshot delta eigensystem: %w", err)
	}
	st.gen++
	return stream.Snapshot{
		Round: int64(binary.LittleEndian.Uint64(p[0:])),
		From:  from,
		To:    int(int32(binary.LittleEndian.Uint32(p[12:]))),
		State: es,
	}, nil
}

func (d *Decoder) decodeObsReport(n int) (stream.Message, error) {
	if n < 16 || n > 16+maxObsBody {
		return nil, fmt.Errorf("wire: obs report payload %d out of range", n)
	}
	p, err := d.readPayload(n)
	if err != nil {
		return nil, err
	}
	r := ObsReport{
		Node: int(int32(binary.LittleEndian.Uint32(p[0:]))),
		Seq:  int64(binary.LittleEndian.Uint64(p[8:])),
	}
	if n > 16 {
		// Copy out of scratch: the report outlives the next Decode call.
		r.Body = append([]byte(nil), p[16:]...)
	}
	return r, nil
}

func (d *Decoder) decodeReport(flags byte, n int) (stream.Message, error) {
	if n < 48 {
		return nil, fmt.Errorf("wire: report payload %d too short", n)
	}
	p, err := d.readPayload(n)
	if err != nil {
		return nil, err
	}
	r := EngineReport{
		Engine:        int(int32(binary.LittleEndian.Uint32(p[0:]))),
		Processed:     int64(binary.LittleEndian.Uint64(p[8:])),
		Outliers:      int64(binary.LittleEndian.Uint64(p[16:])),
		SnapshotsSent: int64(binary.LittleEndian.Uint64(p[24:])),
		MergesApplied: int64(binary.LittleEndian.Uint64(p[32:])),
		Restarts:      int64(binary.LittleEndian.Uint64(p[40:])),
		Resumed:       flags&flagResumed != 0,
	}
	if flags&flagFinal != 0 {
		es, err := core.ReadEigensystem(bytes.NewReader(p[48:]))
		if err != nil {
			return nil, fmt.Errorf("wire: report eigensystem: %w", err)
		}
		r.Final = es
	} else if n != 48 {
		return nil, fmt.Errorf("wire: report payload %d with no final eigensystem", n)
	}
	return r, nil
}
