package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streampca/internal/ingest"
	"streampca/internal/obs"
	"streampca/internal/stream"
)

// ErrEdgeClosed is returned once an edge has been Closed; pending and
// future sends drop, the receive source ends.
var ErrEdgeClosed = errors.New("wire: edge closed")

// handshakeTimeout bounds the hello exchange on a fresh connection; a peer
// that connects but never speaks is torn down and retried.
const handshakeTimeout = 5 * time.Second

// EdgeOptions configures one remote edge.
type EdgeOptions struct {
	// Name labels the edge in journals and stats (e.g. "wire-send-2").
	Name string
	// Hello is announced to the peer on every (re)connect.
	Hello Hello
	// Dim and Batch size the receive pool; 0 disables pooling (frames then
	// allocate per message — correct, just slower).
	Dim, Batch int
	// Retry is the reconnect backoff policy (ingest defaults apply).
	Retry ingest.RetryPolicy
	// DialTimeout bounds one dial attempt (default 2 s). Dial side only.
	DialTimeout time.Duration
	// Chaos, when non-nil, injects connection faults (dial side only).
	Chaos *ConnPlan
	// Obs, when non-nil, journals connect/drop/EOS events.
	Obs *obs.Set
	// OnState, when non-nil, is called with false when the link drops and
	// true when it is re-established — the hook the coordinator uses to
	// exclude an engine from sync planning while it is unreachable. Called
	// from edge goroutines; must be safe for concurrent use.
	OnState func(up bool)
}

// Edge is one full-duplex TCP link a graph splices in place of a channel
// edge: Operator() is the send half (a stream.Operator), Source() the
// receive half (a stream.SourceFunc). The edge reconnects transparently
// with seeded backoff — the dial side redials, the accept side re-accepts
// — and keeps cumulative tuple-weighted stats across reconnects.
type Edge struct {
	opt   EdgeOptions
	addr  string       // dial side: peer address
	ln    net.Listener // accept side: shared listener
	chaos *connChaos
	pool  *RecvPool

	mu        sync.Mutex
	conn      net.Conn
	enc       *Encoder
	dec       *Decoder
	gen       int
	downGen   int // highest generation already noted down
	closed    bool
	repairing chan struct{}
	backoff   *ingest.Backoff
	peer      Hello
	havePeer  bool

	reconnects atomic.Int64
	drops      atomic.Int64
	abandoned  atomic.Int64
	tuplesOut  atomic.Int64
	tuplesIn   atomic.Int64
	framesOut  atomic.Int64
	framesIn   atomic.Int64
	msgsOut    atomic.Int64
	msgsIn     atomic.Int64
}

// EdgeStats is a point-in-time copy of an edge's cumulative counters. They
// survive reconnects: only a process restart resets them (which is what
// stream.TupleRateBetween's regression guard tolerates).
type EdgeStats struct {
	// Name is the edge label.
	Name string
	// Gen is the connection generation (1 after the first connect).
	Gen int
	// Reconnects counts successful re-links, Drops noted link losses, and
	// Abandoned messages given up on after a terminal failure.
	Reconnects, Drops, Abandoned int64
	// TuplesSent/TuplesRecv weigh frames by their batch size.
	TuplesSent, TuplesRecv int64
	// FramesSent/FramesRecv count dense frames, MsgsSent/MsgsRecv all
	// messages.
	FramesSent, FramesRecv, MsgsSent, MsgsRecv int64
	// Resets and Partitions count injected connection faults (chaos only).
	Resets, Partitions int64
	// PeerEpoch is the session epoch the peer last announced (0 before the
	// handshake); a jump means the peer restarted and reset its counters.
	PeerEpoch int64
}

func newEdge(opt EdgeOptions) *Edge {
	e := &Edge{
		opt:     opt,
		pool:    NewRecvPool(opt.Dim, opt.Batch),
		backoff: ingest.NewBackoff(opt.Retry),
	}
	if opt.Chaos != nil {
		e.chaos = newConnChaos(*opt.Chaos)
	}
	return e
}

// DialEdge returns the dial side of a remote edge. No I/O happens until
// the first send, receive or Peer call; from then on the edge redials with
// the configured backoff whenever the link drops.
func DialEdge(addr string, opt EdgeOptions) *Edge {
	e := newEdge(opt)
	e.addr = addr
	return e
}

// Listener accepts the peer side of remote edges. One listener serves
// sequential sessions: each Edge() call returns an edge bound to the next
// accepted connection (re-accepting on drops).
type Listener struct {
	ln  net.Listener
	opt EdgeOptions
}

// ListenEdge binds addr (e.g. "127.0.0.1:0") and returns the accept-side
// listener. opt applies to every edge it hands out.
func ListenEdge(addr string, opt EdgeOptions) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{ln: ln, opt: opt}, nil
}

// Addr returns the bound address (useful with port 0).
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Close stops accepting; it unblocks any edge waiting in accept.
func (l *Listener) Close() error { return l.ln.Close() }

// Edge returns an edge that accepts its connections from this listener.
// Use one edge at a time per listener.
func (l *Listener) Edge() *Edge {
	e := newEdge(l.opt)
	e.ln = l.ln
	return e
}

// Close tears the edge down: the current connection closes, blocked sends
// and receives finish with ErrEdgeClosed. It does not close a shared
// Listener.
func (e *Edge) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	c := e.conn
	e.conn = nil
	e.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Peer blocks until the first handshake completed and returns the peer's
// Hello — how a worker learns which engine index the coordinator assigned
// its connection. It triggers the first connect if none happened yet.
func (e *Edge) Peer(ctx context.Context) (Hello, error) {
	e.mu.Lock()
	have := e.havePeer
	e.mu.Unlock()
	if !have {
		// Drive the first connect from this goroutine; concurrent users
		// coordinate through the single-flight repair.
		stop := context.AfterFunc(ctx, e.Close)
		_, _, _, _, err := e.link(0)
		stop()
		if err != nil {
			if ctx.Err() != nil {
				return Hello{}, ctx.Err()
			}
			return Hello{}, err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peer, nil
}

// Stats returns the edge's cumulative counters.
func (e *Edge) Stats() EdgeStats {
	e.mu.Lock()
	gen := e.gen
	peerEpoch := int64(0)
	if e.havePeer {
		peerEpoch = e.peer.Epoch
	}
	e.mu.Unlock()
	s := EdgeStats{
		Name:       e.opt.Name,
		Gen:        gen,
		Reconnects: e.reconnects.Load(),
		Drops:      e.drops.Load(),
		Abandoned:  e.abandoned.Load(),
		TuplesSent: e.tuplesOut.Load(),
		TuplesRecv: e.tuplesIn.Load(),
		FramesSent: e.framesOut.Load(),
		FramesRecv: e.framesIn.Load(),
		MsgsSent:   e.msgsOut.Load(),
		MsgsRecv:   e.msgsIn.Load(),
		PeerEpoch:  peerEpoch,
	}
	if e.chaos != nil {
		s.Resets = e.chaos.Resets()
		s.Partitions = e.chaos.Partitions()
	}
	return s
}

func (e *Edge) journal(kind obs.EventKind, n int64, a float64) {
	if e.opt.Obs == nil {
		return
	}
	engine := -1
	e.mu.Lock()
	if e.havePeer {
		engine = e.peer.Engine
	}
	e.mu.Unlock()
	e.opt.Obs.Journal().Append(obs.Event{
		Kind: kind, Node: e.opt.Name, Engine: engine, N: n, A: a,
	})
}

// noteDown records one link loss exactly once per generation (the send and
// receive halves usually both notice), journaling it and notifying
// OnState.
func (e *Edge) noteDown(gen int, injected bool) {
	e.mu.Lock()
	if gen <= e.downGen || e.closed {
		e.mu.Unlock()
		return
	}
	e.downGen = gen
	e.mu.Unlock()
	e.drops.Add(1)
	a := 0.0
	if injected {
		a = 1
	}
	e.journal(obs.EvWireDown, int64(gen), a)
	if e.opt.OnState != nil {
		e.opt.OnState(false)
	}
}

// link returns the current connection once its generation exceeds after,
// establishing or re-establishing it as needed. Exactly one caller runs
// the repair; the other half waits on it.
func (e *Edge) link(after int) (net.Conn, *Encoder, *Decoder, int, error) {
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return nil, nil, nil, 0, ErrEdgeClosed
		}
		if e.gen > after && e.conn != nil {
			c, enc, dec, gen := e.conn, e.enc, e.dec, e.gen
			e.mu.Unlock()
			return c, enc, dec, gen, nil
		}
		if ch := e.repairing; ch != nil {
			e.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		e.repairing = ch
		e.mu.Unlock()

		err := e.repair()

		e.mu.Lock()
		e.repairing = nil
		e.mu.Unlock()
		close(ch)
		if err != nil {
			return nil, nil, nil, 0, err
		}
	}
}

// repair establishes the next connection generation: dial (with backoff
// and chaos gates) or accept, then the hello handshake. The handshake runs
// on the raw conn — chaos wraps only the steady-state writes, so injected
// faults cannot wedge connection establishment itself.
func (e *Edge) repair() error {
	e.mu.Lock()
	stale := e.conn
	e.conn = nil
	reconnecting := e.gen > 0
	e.mu.Unlock()
	if stale != nil {
		stale.Close()
	}

	for {
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return ErrEdgeClosed
		}
		c, attempts, err := e.establish()
		if err != nil {
			return err
		}
		peer, err := e.handshake(c)
		if err != nil {
			c.Close()
			// An aborted handshake on the accept side is a stray or dead
			// dialer: accept again. On the dial side it costs one backoff
			// step like any failed attempt.
			if e.addr != "" {
				e.backoffSleep()
			}
			continue
		}
		wire := c
		if e.chaos != nil {
			wire = e.chaos.wrap(c)
		}
		enc := NewEncoder(wire, e.chaos != nil)
		dec := NewDecoder(c, e.pool, 0)
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return ErrEdgeClosed
		}
		e.conn = c
		e.enc, e.dec = enc, dec
		e.gen++
		gen := e.gen
		e.peer = peer
		e.havePeer = true
		e.mu.Unlock()
		if reconnecting {
			e.reconnects.Add(1)
		}
		e.backoff.Reset()
		e.journal(obs.EvWireConnect, int64(gen), float64(attempts))
		if e.opt.OnState != nil {
			e.opt.OnState(true)
		}
		return nil
	}
}

// establish produces one raw connection: a backoff-paced dial loop on the
// dial side, one accept on the accept side. It reports how many dial
// attempts were used.
func (e *Edge) establish() (net.Conn, int, error) {
	if e.addr == "" {
		// Accept with a short deadline so Close() (which cannot touch the
		// shared listener) still unblocks this edge promptly.
		for {
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if closed {
				return nil, 0, ErrEdgeClosed
			}
			if tl, ok := e.ln.(*net.TCPListener); ok {
				tl.SetDeadline(time.Now().Add(200 * time.Millisecond))
			}
			c, err := e.ln.Accept()
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					continue
				}
				// A closed listener usually accompanies a closed edge; report
				// the clean shutdown rather than the racing accept error.
				e.mu.Lock()
				closed = e.closed
				e.mu.Unlock()
				if closed {
					return nil, 0, ErrEdgeClosed
				}
				return nil, 0, fmt.Errorf("wire: accept on %q: %w", e.opt.Name, err)
			}
			return c, 1, nil
		}
	}
	timeout := e.opt.DialTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	max := e.opt.Retry.MaxAttempts
	if max <= 0 {
		max = 5
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return nil, attempt, ErrEdgeClosed
		}
		if e.chaos != nil {
			if err := e.chaos.dialGate(); err != nil {
				lastErr = err
			} else {
				c, err := net.DialTimeout("tcp", e.addr, timeout)
				if err == nil {
					return c, attempt, nil
				}
				lastErr = err
			}
		} else {
			c, err := net.DialTimeout("tcp", e.addr, timeout)
			if err == nil {
				return c, attempt, nil
			}
			lastErr = err
		}
		if attempt >= max {
			return nil, attempt, fmt.Errorf("wire: dialing %s for %q: %w after %d attempts",
				e.addr, e.opt.Name, lastErr, attempt)
		}
		e.backoffSleep()
	}
}

func (e *Edge) backoffSleep() {
	e.mu.Lock()
	d := e.backoff.Next()
	e.mu.Unlock()
	time.Sleep(d)
}

// handshake exchanges hellos on a fresh raw connection under a deadline.
// It reads exactly the hello's bytes — no buffered reader — so data the
// peer pipelines right behind its hello is left on the socket for the
// steady-state decoder.
func (e *Edge) handshake(c net.Conn) (Hello, error) {
	c.SetDeadline(time.Now().Add(handshakeTimeout))
	defer c.SetDeadline(time.Time{})
	enc := NewEncoder(c, false)
	if err := enc.Encode(e.opt.Hello); err != nil {
		return Hello{}, err
	}
	var raw [helloWireLen]byte
	if _, err := io.ReadFull(c, raw[:]); err != nil {
		return Hello{}, fmt.Errorf("wire: reading peer hello: %w", err)
	}
	return parseHello(raw[:])
}

// sendOp is the send half: a stream.Operator that serializes every
// incoming message onto the link, retransmitting across reconnects, and
// emits the wire EOS on Flush. Messages that cannot be delivered after a
// terminal failure are counted and dropped — for the data plane this is
// at-least-once with possible loss on abandonment, for the droppable sync
// plane it is exactly the loop-edge contract.
type sendOp struct {
	e *Edge
	// after is the last generation known bad; link blocks until a newer one.
	after int
	// dead marks a terminal failure (edge closed or dial exhausted).
	dead bool
}

// Operator returns the edge's send half. One graph node per edge.
func (e *Edge) Operator() stream.Operator { return &sendOp{e: e} }

// Process implements stream.Operator.
func (s *sendOp) Process(_ int, msg stream.Message, _ stream.Emit) {
	s.send(msg)
}

// Flush implements stream.Operator: it announces end-of-stream to the peer.
func (s *sendOp) Flush(stream.Emit) {
	s.send(EOS{})
}

func (s *sendOp) send(msg stream.Message) {
	e := s.e
	if s.dead {
		e.abandoned.Add(1)
		return
	}
	for {
		_, enc, _, gen, err := e.link(s.after)
		if err != nil {
			s.dead = true
			e.abandoned.Add(1)
			return
		}
		err = enc.Encode(msg)
		if err == nil {
			// EOS is stream framing, not payload: keep MsgsSent comparable
			// to the peer's MsgsRecv, which stops counting at EOS.
			if _, isEOS := msg.(EOS); !isEOS {
				e.msgsOut.Add(1)
			}
			switch m := msg.(type) {
			case stream.Frame:
				e.framesOut.Add(1)
				e.tuplesOut.Add(int64(len(m.Tuples)))
				if m.Release != nil {
					m.Release()
				}
			case stream.Tuple:
				e.tuplesOut.Add(1)
			}
			return
		}
		// Encoding errors that are not transport failures (an unencodable
		// message) would retry forever; drop them instead. Transport errors
		// surface as net.Error (*net.OpError wraps EPIPE/ECONNRESET),
		// net.ErrClosed, or an injected reset.
		var ne net.Error
		transport := errors.Is(err, ErrInjectedReset) || errors.As(err, &ne) ||
			errors.Is(err, net.ErrClosed)
		if !transport {
			e.abandoned.Add(1)
			return
		}
		e.noteDown(gen, errors.Is(err, ErrInjectedReset))
		s.after = gen
	}
}

// Source returns the edge's receive half: a stream.SourceFunc that decodes
// messages until the peer's EOS, reconnecting on link loss. route maps
// each message to an output port (nil routes everything to port 0). The
// returned func closes the edge when ctx is cancelled.
func (e *Edge) Source(route func(stream.Message) int) stream.SourceFunc {
	return func(ctx context.Context, emit stream.Emit) error {
		stop := context.AfterFunc(ctx, e.Close)
		defer stop()
		after := 0
		for {
			_, _, dec, gen, err := e.link(after)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				if errors.Is(err, ErrEdgeClosed) {
					return nil
				}
				return err
			}
			msg, err := dec.Decode()
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				e.mu.Lock()
				closed := e.closed
				e.mu.Unlock()
				if closed {
					return nil
				}
				e.noteDown(gen, false)
				after = gen
				continue
			}
			switch m := msg.(type) {
			case EOS:
				e.journal(obs.EvWireEOS, e.tuplesIn.Load(), 0)
				return nil
			case Hello:
				// Mid-stream hello: the peer restarted its session.
				e.mu.Lock()
				e.peer = m
				e.mu.Unlock()
				continue
			case stream.Frame:
				e.framesIn.Add(1)
				e.tuplesIn.Add(int64(len(m.Tuples)))
			case stream.Tuple:
				e.tuplesIn.Add(1)
			}
			e.msgsIn.Add(1)
			port := 0
			if route != nil {
				port = route(msg)
			}
			emit(port, msg)
		}
	}
}
