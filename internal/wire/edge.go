package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streampca/internal/ingest"
	"streampca/internal/obs"
	"streampca/internal/stream"
)

// ErrEdgeClosed is returned once an edge has been Closed; pending and
// future sends drop, the receive source ends.
var ErrEdgeClosed = errors.New("wire: edge closed")

// handshakeTimeout bounds the hello exchange on a fresh connection; a peer
// that connects but never speaks is torn down and retried.
const handshakeTimeout = 5 * time.Second

// EdgeOptions configures one remote edge.
type EdgeOptions struct {
	// Name labels the edge in journals and stats (e.g. "wire-send-2").
	Name string
	// Hello is announced to the peer on every (re)connect.
	Hello Hello
	// Dim and Batch size the receive pool; 0 disables pooling (frames then
	// allocate per message — correct, just slower).
	Dim, Batch int
	// Retry is the reconnect backoff policy (ingest defaults apply).
	Retry ingest.RetryPolicy
	// DialTimeout bounds one dial attempt (default 2 s). Dial side only.
	DialTimeout time.Duration
	// Chaos, when non-nil, injects connection faults (dial side only).
	Chaos *ConnPlan
	// Obs, when non-nil, journals connect/drop/EOS events and publishes
	// the edge's syscall-amortization gauges.
	Obs *obs.Set
	// OnState, when non-nil, is called with false when the link drops and
	// true when it is re-established — the hook the coordinator uses to
	// exclude an engine from sync planning while it is unreachable. Called
	// from edge goroutines; must be safe for concurrent use.
	OnState func(up bool)
	// SendLane and RecvLane size the edge's send and receive rings in
	// messages (default 16). The sender drains up to a full lane into one
	// coalesced writev; the receiver decodes up to a full lane ahead of
	// the consuming operator.
	SendLane, RecvLane int
	// Cork is the coalescing deadline: when a single message is pending
	// and nothing is queued behind it, the sender holds the writev up to
	// this long to pick up a following burst. 0 disables corking (a lone
	// message flushes immediately).
	Cork time.Duration
	// CorkFn, when non-nil, supplies the coalescing deadline dynamically
	// (read once per lone-message stall) and overrides Cork — the hook the
	// pipeline's adaptive tuner drives from its flush-deadline signal.
	CorkFn func() time.Duration
}

// Edge is one full-duplex TCP link a graph splices in place of a channel
// edge: Operator() is the send half (a stream.Operator), Source() the
// receive half (a stream.SourceFunc). The edge reconnects transparently
// with seeded backoff — the dial side redials, the accept side re-accepts
// — and keeps cumulative tuple-weighted stats across reconnects.
type Edge struct {
	opt   EdgeOptions
	addr  string       // dial side: peer address
	ln    net.Listener // accept side: shared listener
	chaos *connChaos
	pool  *RecvPool
	wi    *obs.WireInstruments

	// closedCh closes when the edge is Closed; it wakes the send loop out
	// of its cork and empty-ring waits.
	closedCh chan struct{}

	// echoCh hands clock echoes from the receive loop to the send loop:
	// a probe is answered at the transport layer (T2 = T3 = the stamp taken
	// right at decode) instead of riding the graph's droppable sync loops,
	// so an echo is never lost to data-plane backpressure. Capacity 1,
	// newest wins — only the freshest probe matters and each echo carries
	// its own T1, so overwriting a stale one loses nothing.
	echoCh chan ClockEcho

	// testWrapConn, when non-nil, wraps each steady-state connection before
	// the encoder sees it — the test seam for failing a specific write of a
	// coalesced batch mid-writev.
	testWrapConn func(net.Conn) net.Conn

	mu        sync.Mutex
	conn      net.Conn
	enc       *Encoder
	dec       *Decoder
	gen       int
	downGen   int // highest generation already noted down
	closed    bool
	repairing chan struct{}
	backoff   *ingest.Backoff
	peer      Hello
	havePeer  bool

	reconnects atomic.Int64
	drops      atomic.Int64
	abandoned  atomic.Int64
	tuplesOut  atomic.Int64
	tuplesIn   atomic.Int64
	framesOut  atomic.Int64
	framesIn   atomic.Int64
	msgsOut    atomic.Int64
	msgsIn     atomic.Int64
	bytesOut   atomic.Int64
	writevs    atomic.Int64
	corkStalls atomic.Int64
}

// EdgeStats is a point-in-time copy of an edge's cumulative counters. They
// survive reconnects: only a process restart resets them (which is what
// stream.TupleRateBetween's regression guard tolerates).
type EdgeStats struct {
	// Name is the edge label.
	Name string
	// Gen is the connection generation (1 after the first connect).
	Gen int
	// Reconnects counts successful re-links, Drops noted link losses, and
	// Abandoned messages given up on after a terminal failure.
	Reconnects, Drops, Abandoned int64
	// TuplesSent/TuplesRecv weigh frames by their batch size.
	TuplesSent, TuplesRecv int64
	// FramesSent/FramesRecv count dense frames, MsgsSent/MsgsRecv all
	// messages.
	FramesSent, FramesRecv, MsgsSent, MsgsRecv int64
	// BytesSent counts payload bytes the kernel accepted and Writevs the
	// write calls that carried them — BytesSent/Writevs is the syscall
	// amortization the coalescing sender exists to maximize.
	BytesSent, Writevs int64
	// CorkStalls counts coalescing deadlines that expired without a second
	// message arriving (the cork cost latency and amortized nothing).
	CorkStalls int64
	// Resets and Partitions count injected connection faults (chaos only).
	Resets, Partitions int64
	// PeerEpoch is the session epoch the peer last announced (0 before the
	// handshake); a jump means the peer restarted and reset its counters.
	PeerEpoch int64
}

func newEdge(opt EdgeOptions) *Edge {
	e := &Edge{
		opt:      opt,
		pool:     NewRecvPool(opt.Dim, opt.Batch),
		backoff:  ingest.NewBackoff(opt.Retry),
		closedCh: make(chan struct{}),
		echoCh:   make(chan ClockEcho, 1),
	}
	if opt.Chaos != nil {
		e.chaos = newConnChaos(*opt.Chaos)
	}
	if opt.Obs != nil && opt.Name != "" {
		e.wi = opt.Obs.Wire(opt.Name)
	}
	return e
}

// DialEdge returns the dial side of a remote edge. No I/O happens until
// the first send, receive or Peer call; from then on the edge redials with
// the configured backoff whenever the link drops.
func DialEdge(addr string, opt EdgeOptions) *Edge {
	e := newEdge(opt)
	e.addr = addr
	return e
}

// Listener accepts the peer side of remote edges. One listener serves
// sequential sessions: each Edge() call returns an edge bound to the next
// accepted connection (re-accepting on drops).
type Listener struct {
	ln  net.Listener
	opt EdgeOptions
}

// ListenEdge binds addr (e.g. "127.0.0.1:0") and returns the accept-side
// listener. opt applies to every edge it hands out.
func ListenEdge(addr string, opt EdgeOptions) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{ln: ln, opt: opt}, nil
}

// Addr returns the bound address (useful with port 0).
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Close stops accepting; it unblocks any edge waiting in accept.
func (l *Listener) Close() error { return l.ln.Close() }

// Edge returns an edge that accepts its connections from this listener.
// Use one edge at a time per listener.
func (l *Listener) Edge() *Edge {
	e := newEdge(l.opt)
	e.ln = l.ln
	return e
}

// Close tears the edge down: the current connection closes, blocked sends
// and receives finish with ErrEdgeClosed. It does not close a shared
// Listener.
func (e *Edge) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	c := e.conn
	e.conn = nil
	close(e.closedCh)
	e.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// Peer blocks until the first handshake completed and returns the peer's
// Hello — how a worker learns which engine index the coordinator assigned
// its connection. It triggers the first connect if none happened yet.
func (e *Edge) Peer(ctx context.Context) (Hello, error) {
	e.mu.Lock()
	have := e.havePeer
	e.mu.Unlock()
	if !have {
		// Drive the first connect from this goroutine; concurrent users
		// coordinate through the single-flight repair.
		stop := context.AfterFunc(ctx, e.Close)
		_, _, _, _, err := e.link(0)
		stop()
		if err != nil {
			if ctx.Err() != nil {
				return Hello{}, ctx.Err()
			}
			return Hello{}, err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peer, nil
}

// Stats returns the edge's cumulative counters.
func (e *Edge) Stats() EdgeStats {
	e.mu.Lock()
	gen := e.gen
	peerEpoch := int64(0)
	if e.havePeer {
		peerEpoch = e.peer.Epoch
	}
	e.mu.Unlock()
	s := EdgeStats{
		Name:       e.opt.Name,
		Gen:        gen,
		Reconnects: e.reconnects.Load(),
		Drops:      e.drops.Load(),
		Abandoned:  e.abandoned.Load(),
		TuplesSent: e.tuplesOut.Load(),
		TuplesRecv: e.tuplesIn.Load(),
		FramesSent: e.framesOut.Load(),
		FramesRecv: e.framesIn.Load(),
		MsgsSent:   e.msgsOut.Load(),
		MsgsRecv:   e.msgsIn.Load(),
		BytesSent:  e.bytesOut.Load(),
		Writevs:    e.writevs.Load(),
		CorkStalls: e.corkStalls.Load(),
		PeerEpoch:  peerEpoch,
	}
	if e.chaos != nil {
		s.Resets = e.chaos.Resets()
		s.Partitions = e.chaos.Partitions()
	}
	return s
}

func (e *Edge) journal(kind obs.EventKind, n int64, a float64) {
	if e.opt.Obs == nil {
		return
	}
	engine := -1
	e.mu.Lock()
	if e.havePeer {
		engine = e.peer.Engine
	}
	e.mu.Unlock()
	e.opt.Obs.Journal().Append(obs.Event{
		Kind: kind, Node: e.opt.Name, Engine: engine, N: n, A: a,
	})
}

// noteDown records one link loss exactly once per generation (the send and
// receive halves usually both notice), journaling it and notifying
// OnState.
func (e *Edge) noteDown(gen int, injected bool) {
	e.mu.Lock()
	if gen <= e.downGen || e.closed {
		e.mu.Unlock()
		return
	}
	e.downGen = gen
	e.mu.Unlock()
	e.drops.Add(1)
	a := 0.0
	if injected {
		a = 1
	}
	e.journal(obs.EvWireDown, int64(gen), a)
	if e.opt.OnState != nil {
		e.opt.OnState(false)
	}
}

// link returns the current connection once its generation exceeds after,
// establishing or re-establishing it as needed. Exactly one caller runs
// the repair; the other half waits on it.
func (e *Edge) link(after int) (net.Conn, *Encoder, *Decoder, int, error) {
	for {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return nil, nil, nil, 0, ErrEdgeClosed
		}
		if e.gen > after && e.conn != nil {
			c, enc, dec, gen := e.conn, e.enc, e.dec, e.gen
			e.mu.Unlock()
			return c, enc, dec, gen, nil
		}
		if ch := e.repairing; ch != nil {
			e.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		e.repairing = ch
		e.mu.Unlock()

		err := e.repair()

		e.mu.Lock()
		e.repairing = nil
		e.mu.Unlock()
		close(ch)
		if err != nil {
			return nil, nil, nil, 0, err
		}
	}
}

// repair establishes the next connection generation: dial (with backoff
// and chaos gates) or accept, then the hello handshake. The handshake runs
// on the raw conn — chaos wraps only the steady-state writes, so injected
// faults cannot wedge connection establishment itself.
func (e *Edge) repair() error {
	e.mu.Lock()
	stale := e.conn
	e.conn = nil
	reconnecting := e.gen > 0
	e.mu.Unlock()
	if stale != nil {
		stale.Close()
	}

	for {
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return ErrEdgeClosed
		}
		c, attempts, err := e.establish()
		if err != nil {
			return err
		}
		tuneConn(c)
		peer, err := e.handshake(c)
		if err != nil {
			c.Close()
			// An aborted handshake on the accept side is a stray or dead
			// dialer: accept again. On the dial side it costs one backoff
			// step like any failed attempt.
			if e.addr != "" {
				e.backoffSleep()
			}
			continue
		}
		wire := c
		if e.chaos != nil {
			wire = e.chaos.wrap(c)
		}
		if e.testWrapConn != nil {
			wire = e.testWrapConn(wire)
		}
		enc := NewEncoder(wire, e.chaos != nil)
		dec := NewDecoder(c, e.pool, 0)
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return ErrEdgeClosed
		}
		e.conn = c
		e.enc, e.dec = enc, dec
		e.gen++
		gen := e.gen
		e.peer = peer
		e.havePeer = true
		e.mu.Unlock()
		if reconnecting {
			e.reconnects.Add(1)
		}
		e.backoff.Reset()
		e.journal(obs.EvWireConnect, int64(gen), float64(attempts))
		if e.opt.OnState != nil {
			e.opt.OnState(true)
		}
		return nil
	}
}

// sockBufBytes is the kernel send/receive buffer size requested for edge
// connections: ten d=400 frames instead of the ~2 the platform default
// holds.
const sockBufBytes = 1 << 20

// tuneConn widens the kernel socket buffers on real TCP connections. When
// coordinator and workers time-slice one core, the writer can only burst
// until the socket buffer fills before the kernel forces a switch to the
// reader; deeper buffers mean one switch drains a whole lane of frames
// rather than two. Non-TCP conns (in-memory test pipes, chaos wrappers
// around them) just keep their defaults.
func tuneConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetReadBuffer(sockBufBytes)
		tc.SetWriteBuffer(sockBufBytes)
	}
}

// establish produces one raw connection: a backoff-paced dial loop on the
// dial side, one accept on the accept side. It reports how many dial
// attempts were used.
func (e *Edge) establish() (net.Conn, int, error) {
	if e.addr == "" {
		// Accept with a short deadline so Close() (which cannot touch the
		// shared listener) still unblocks this edge promptly.
		for {
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if closed {
				return nil, 0, ErrEdgeClosed
			}
			if tl, ok := e.ln.(*net.TCPListener); ok {
				tl.SetDeadline(time.Now().Add(200 * time.Millisecond))
			}
			c, err := e.ln.Accept()
			if err != nil {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					continue
				}
				// A closed listener usually accompanies a closed edge; report
				// the clean shutdown rather than the racing accept error.
				e.mu.Lock()
				closed = e.closed
				e.mu.Unlock()
				if closed {
					return nil, 0, ErrEdgeClosed
				}
				return nil, 0, fmt.Errorf("wire: accept on %q: %w", e.opt.Name, err)
			}
			return c, 1, nil
		}
	}
	timeout := e.opt.DialTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	max := e.opt.Retry.MaxAttempts
	if max <= 0 {
		max = 5
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return nil, attempt, ErrEdgeClosed
		}
		if e.chaos != nil {
			if err := e.chaos.dialGate(); err != nil {
				lastErr = err
			} else {
				c, err := net.DialTimeout("tcp", e.addr, timeout)
				if err == nil {
					return c, attempt, nil
				}
				lastErr = err
			}
		} else {
			c, err := net.DialTimeout("tcp", e.addr, timeout)
			if err == nil {
				return c, attempt, nil
			}
			lastErr = err
		}
		if attempt >= max {
			return nil, attempt, fmt.Errorf("wire: dialing %s for %q: %w after %d attempts",
				e.addr, e.opt.Name, lastErr, attempt)
		}
		e.backoffSleep()
	}
}

func (e *Edge) backoffSleep() {
	e.mu.Lock()
	d := e.backoff.Next()
	e.mu.Unlock()
	time.Sleep(d)
}

// handshake exchanges hellos on a fresh raw connection under a deadline.
// It reads exactly the hello's bytes — no buffered reader — so data the
// peer pipelines right behind its hello is left on the socket for the
// steady-state decoder.
func (e *Edge) handshake(c net.Conn) (Hello, error) {
	c.SetDeadline(time.Now().Add(handshakeTimeout))
	defer c.SetDeadline(time.Time{})
	enc := NewEncoder(c, false)
	if err := enc.Encode(e.opt.Hello); err != nil {
		return Hello{}, err
	}
	var raw [helloWireLen]byte
	if _, err := io.ReadFull(c, raw[:]); err != nil {
		return Hello{}, fmt.Errorf("wire: reading peer hello: %w", err)
	}
	return parseHello(raw[:])
}

// defaultLane is the send/receive ring size (messages) when the options
// leave it zero — also the coalescing bound: at most one lane of messages
// is gathered into a single writev.
const defaultLane = 16

// lane resolves a ring-size option to its effective value.
func (e *Edge) lane(n int) int {
	if n <= 0 {
		return defaultLane
	}
	return n
}

// corkFor returns the current coalescing deadline: CorkFn when set, else
// the static Cork option (0 disables corking).
func (e *Edge) corkFor() time.Duration {
	if e.opt.CorkFn != nil {
		return e.opt.CorkFn()
	}
	return e.opt.Cork
}

// isTransport reports whether err is a connection failure worth a
// reconnect, as opposed to an assembly error worth abandoning one message.
// Transport errors surface as net.Error (*net.OpError wraps
// EPIPE/ECONNRESET), net.ErrClosed, or an injected reset.
func isTransport(err error) bool {
	var ne net.Error
	return errors.Is(err, ErrInjectedReset) || errors.As(err, &ne) ||
		errors.Is(err, net.ErrClosed)
}

// markSent counts one delivered message and recycles its frame storage.
// The kernel copies writev payloads synchronously, so by the time a flush
// has returned the pooled buffer is free to reuse.
func (e *Edge) markSent(msg stream.Message) {
	// EOS is stream framing, not payload: keep MsgsSent comparable to the
	// peer's MsgsRecv, which stops counting at EOS.
	if _, isEOS := msg.(EOS); !isEOS {
		e.msgsOut.Add(1)
	}
	switch m := msg.(type) {
	case stream.Frame:
		e.framesOut.Add(1)
		e.tuplesOut.Add(int64(len(m.Tuples)))
		if m.Release != nil {
			m.Release()
		}
	case stream.Tuple:
		e.tuplesOut.Add(1)
	}
}

// abandonMsg counts one undeliverable message and recycles its frame
// storage — an abandoned frame never reached the kernel (or its delivered
// prefix was already copied out), so the buffer is safe to reuse.
func (e *Edge) abandonMsg(msg stream.Message) {
	e.abandoned.Add(1)
	if f, ok := msg.(stream.Frame); ok && f.Release != nil {
		f.Release()
	}
}

// releaseFrame recycles a frame that will be neither sent nor emitted.
func releaseFrame(msg stream.Message) {
	if f, ok := msg.(stream.Frame); ok && f.Release != nil {
		f.Release()
	}
}

// sendOp is the send half: a stream.Operator that hands every incoming
// message to the edge's sender goroutine through an SPSC ring, so graph
// processing and socket writes overlap. The sender coalesces a lane of
// pending messages into one gathered writev, retransmits across
// reconnects, and emits the wire EOS when Flush pushes it. Messages that
// cannot be delivered after a terminal failure are counted and dropped —
// for the data plane this is at-least-once with possible loss on
// abandonment, for the droppable sync plane it is exactly the loop-edge
// contract.
type sendOp struct {
	e    *Edge
	ring *spscRing
}

// Operator returns the edge's send half and starts its sender goroutine.
// One graph node per edge.
func (e *Edge) Operator() stream.Operator {
	s := &sendOp{e: e, ring: newSPSCRing(e.lane(e.opt.SendLane))}
	go e.sendLoop(s.ring)
	return s
}

// Process implements stream.Operator: enqueue for the sender, or count the
// message abandoned if the sender has already failed terminally. The graph
// node goroutine is the send ring's single producer.
//
//streamvet:spsc producer
func (s *sendOp) Process(_ int, msg stream.Message, _ stream.Emit) {
	if !s.ring.push(msg) {
		s.e.abandonMsg(msg)
	}
}

// Flush implements stream.Operator: it enqueues the wire EOS and waits for
// the sender goroutine to finish delivering everything before it. Flush runs
// on the same graph node goroutine as Process — the ring's producer.
//
//streamvet:spsc producer
func (s *sendOp) Flush(stream.Emit) {
	if !s.ring.push(EOS{}) {
		s.e.abandoned.Add(1)
	}
	<-s.ring.exited
}

// sendLoop is the edge's sender goroutine: it drains the ring in lanes,
// corks lone messages briefly to let a burst accumulate, and hands each
// batch to the delivery state machine. It exits on EOS, terminal link
// failure, or edge close — shutting the ring down so producers fail fast.
//
//streamvet:spsc consumer
func (e *Edge) sendLoop(r *spscRing) {
	snd := &edgeSender{e: e}
	lane := e.lane(e.opt.SendLane)
	buf := make([]stream.Message, lane)
	var cork *time.Timer
	defer func() {
		if cork != nil {
			cork.Stop()
		}
	}()
	for {
		// Pending clock echo first: it is one tiny message, it never waits
		// behind a saturated data ring, and answering promptly is what keeps
		// the peer's sampled RTT honest.
		select {
		case echo := <-e.echoCh:
			if !snd.deliver([]stream.Message{echo}) {
				e.drainAbandon(r)
				return
			}
		default:
		}
		n := r.pop(buf)
		if n == 0 {
			select {
			case <-r.notEmpty:
				continue
			case echo := <-e.echoCh:
				if !snd.deliver([]stream.Message{echo}) {
					e.drainAbandon(r)
					return
				}
				continue
			case <-e.closedCh:
				e.drainAbandon(r)
				return
			}
		}
		if n == 1 {
			if _, isEOS := buf[0].(EOS); !isEOS {
				if d := e.corkFor(); d > 0 {
					n += e.corkWait(r, &cork, d, buf[1:])
				}
			}
		}
		batch := buf[:n]
		_, eos := batch[n-1].(EOS)
		if !snd.deliver(batch) {
			e.drainAbandon(r)
			return
		}
		if eos {
			e.drainAbandon(r)
			return
		}
	}
}

// corkWait holds a lone message for up to d waiting for followers, then
// pops whatever arrived into rest and returns the count. A stall (deadline
// expired, nothing arrived) is counted — it is the signal that the cork
// deadline exceeds the producer's inter-message gap.
func (e *Edge) corkWait(r *spscRing, cork **time.Timer, d time.Duration, rest []stream.Message) int {
	// Clear any stale doorbell (the message we already popped rang it),
	// then re-poll: a racing push between the clear and here is caught by
	// the pop, and any later push rings the now-empty doorbell.
	select {
	case <-r.notEmpty:
	default:
	}
	if n := r.pop(rest); n > 0 {
		return n
	}
	if *cork == nil {
		*cork = time.NewTimer(d)
	} else {
		(*cork).Reset(d)
	}
	fired := false
	select {
	case <-r.notEmpty:
	case <-(*cork).C:
		fired = true
	case <-e.closedCh:
	}
	if !fired && !(*cork).Stop() {
		<-(*cork).C
	}
	n := r.pop(rest)
	if n == 0 {
		e.corkStalls.Add(1)
	}
	return n
}

// offerEcho parks an echo for the send loop, displacing any staler one
// still waiting: the channel holds one echo and each carries its own T1,
// so newest-wins drops nothing a min-RTT filter would have kept.
func (e *Edge) offerEcho(echo ClockEcho) {
	for {
		select {
		case e.echoCh <- echo:
			return
		default:
		}
		select {
		case <-e.echoCh:
		default:
		}
	}
}

// drainAbandon shuts the ring down and counts everything still queued as
// abandoned.
func (e *Edge) drainAbandon(r *spscRing) {
	for _, m := range r.shutdown() {
		e.abandonMsg(m)
	}
}

// edgeSender is the sender goroutine's delivery state: the last generation
// known bad and the byte/write counters already folded into edge stats for
// the current connection's encoder.
type edgeSender struct {
	e     *Edge
	after int
	// sizes holds per-message assembled byte lengths for the current batch,
	// so a partial writev can be resolved to whole delivered messages.
	sizes []int
	// statGen / lastWrote / lastWrites track which encoder generation the
	// edge's cumulative byte counters are synced to.
	statGen   int
	lastWrote int64
	lastWrite int64
}

// syncWireStats folds the per-connection encoder's byte and write counters
// into the edge's cumulative stats and refreshes the amortization gauges.
func (s *edgeSender) syncWireStats(enc *Encoder, gen int) {
	if gen != s.statGen {
		s.statGen, s.lastWrote, s.lastWrite = gen, 0, 0
	}
	if d := enc.wrote - s.lastWrote; d > 0 {
		s.e.bytesOut.Add(d)
	}
	if d := enc.writes - s.lastWrite; d > 0 {
		s.e.writevs.Add(d)
	}
	s.lastWrote, s.lastWrite = enc.wrote, enc.writes
	if wi := s.e.wi; wi != nil {
		if w := s.e.writevs.Load(); w > 0 {
			wi.BytesPerWritev.Set(float64(s.e.bytesOut.Load()) / float64(w))
			wi.FramesPerWritev.Set(float64(s.e.framesOut.Load()) / float64(w))
		}
		wi.CorkStalls.Set(float64(s.e.corkStalls.Load()))
	}
}

// deliver pushes batch onto the link, reconnecting and retransmitting the
// undelivered remainder as needed; messages that fail to assemble are
// abandoned individually. It returns false once the edge is terminally
// down (the batch's remainder has then been abandoned).
func (s *edgeSender) deliver(batch []stream.Message) bool {
	e := s.e
	for {
		_, enc, _, gen, err := e.link(s.after)
		if err != nil {
			for _, m := range batch {
				e.abandonMsg(m)
			}
			return false
		}
		if enc.single {
			batch, err = s.deliverSingle(enc, batch)
		} else {
			batch, err = s.deliverGathered(enc, batch)
		}
		s.syncWireStats(enc, gen)
		if err == nil {
			return true
		}
		e.noteDown(gen, errors.Is(err, ErrInjectedReset))
		s.after = gen
	}
}

// deliverSingle writes messages one Write each — the chaos-compatible path
// where the fault injector's one-write-one-message contract must hold. On
// a transport error it returns the unsent remainder for retransmission.
func (s *edgeSender) deliverSingle(enc *Encoder, batch []stream.Message) ([]stream.Message, error) {
	e := s.e
	for len(batch) > 0 {
		err := enc.Append(batch[0]) // single mode: Append writes immediately
		if err == nil {
			e.markSent(batch[0])
			batch = batch[1:]
			continue
		}
		if !isTransport(err) {
			e.abandonMsg(batch[0])
			batch = batch[1:]
			continue
		}
		return batch, err
	}
	return nil, nil
}

// deliverGathered assembles the whole batch into the encoder and flushes
// it with one gathered writev. On a transport error it uses the flushed
// byte count to mark the fully delivered prefix sent and returns the rest
// for retransmission on a fresh connection — the peer's decoder tears at
// the torn tail, so resending the first incomplete message from its start
// neither duplicates nor loses anything.
func (s *edgeSender) deliverGathered(enc *Encoder, batch []stream.Message) ([]stream.Message, error) {
	e := s.e
	sizes := s.sizes[:0]
	kept := batch[:0]
	prev := 0
	for _, m := range batch {
		if err := enc.Append(m); err != nil {
			e.abandonMsg(m)
			continue
		}
		now := enc.pendingBytes()
		sizes = append(sizes, now-prev)
		prev = now
		kept = append(kept, m)
	}
	s.sizes = sizes
	batch = kept
	if len(batch) == 0 {
		return nil, nil
	}
	if err := enc.Flush(); err != nil {
		flushed := enc.lastFlushed
		done := 0
		for done < len(batch) && flushed >= sizes[done] {
			flushed -= sizes[done]
			done++
		}
		for _, m := range batch[:done] {
			e.markSent(m)
		}
		return batch[done:], err
	}
	for _, m := range batch {
		e.markSent(m)
	}
	return nil, nil
}

// recvEnd is the receive loop's terminal sentinel: err is nil for a clean
// EOS or edge close, non-nil for a hard failure.
type recvEnd struct{ err error }

// Source returns the edge's receive half: a stream.SourceFunc that decodes
// messages until the peer's EOS, reconnecting on link loss. Decoding runs
// in its own goroutine feeding an SPSC ring, so socket reads and payload
// decodes overlap with downstream processing. route maps each message to
// an output port (nil routes everything to port 0). The returned func
// closes the edge when ctx is cancelled; it runs on the graph's source
// goroutine, which is the recv ring's single consumer.
//
//streamvet:spsc consumer
func (e *Edge) Source(route func(stream.Message) int) stream.SourceFunc {
	return func(ctx context.Context, emit stream.Emit) error {
		stop := context.AfterFunc(ctx, e.Close)
		defer stop()
		r := newSPSCRing(e.lane(e.opt.RecvLane))
		done := make(chan struct{})
		go e.recvLoop(r, done)
		defer func() {
			// Shut the ring so a blocked recvLoop push fails fast; frames it
			// already decoded but we never emitted go back to the pool.
			for _, m := range r.shutdown() {
				releaseFrame(m)
			}
		}()
		buf := make([]stream.Message, e.lane(e.opt.RecvLane))
		for {
			n := r.pop(buf)
			if n == 0 {
				select {
				case <-r.notEmpty:
					continue
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			for _, msg := range buf[:n] {
				if end, ok := msg.(recvEnd); ok {
					if end.err != nil && ctx.Err() != nil {
						return ctx.Err()
					}
					return end.err
				}
				port := 0
				if route != nil {
					port = route(msg)
				}
				emit(port, msg)
			}
		}
	}
}

// recvLoop is the edge's receive goroutine: it owns the decoder and the
// reconnect loop, counts what it decodes, and pushes messages into the
// ring. It ends by pushing a recvEnd sentinel (clean for EOS or close) and
// closing done. It is the recv ring's single producer.
//
//streamvet:spsc producer
func (e *Edge) recvLoop(r *spscRing, done chan struct{}) {
	defer close(done)
	after := 0
	for {
		_, _, dec, gen, err := e.link(after)
		if err != nil {
			if errors.Is(err, ErrEdgeClosed) {
				err = nil
			}
			r.push(recvEnd{err: err})
			return
		}
		msg, err := dec.Decode()
		if err != nil {
			e.mu.Lock()
			closed := e.closed
			e.mu.Unlock()
			if closed {
				r.push(recvEnd{})
				return
			}
			e.noteDown(gen, false)
			after = gen
			continue
		}
		switch m := msg.(type) {
		case EOS:
			e.journal(obs.EvWireEOS, e.tuplesIn.Load(), 0)
			r.push(recvEnd{})
			return
		case Hello:
			// Mid-stream hello: the peer restarted its session.
			e.mu.Lock()
			e.peer = m
			e.mu.Unlock()
			continue
		case ClockProbe:
			// Answered here, at the lowest layer that sees the probe: the
			// stamp is taken at decode and the reply never queues behind
			// data frames, which keeps the sampled RTT close to the true
			// path time and makes echo delivery independent of graph load.
			now := time.Now().UnixNano()
			e.offerEcho(ClockEcho{T1: m.T1, T2: now, T3: now})
			continue
		case stream.Frame:
			e.framesIn.Add(1)
			e.tuplesIn.Add(int64(len(m.Tuples)))
		case stream.Tuple:
			e.tuplesIn.Add(1)
		}
		e.msgsIn.Add(1)
		if !r.push(msg) {
			// Consumer gone (ctx cancelled): recycle and stop reading.
			releaseFrame(msg)
			return
		}
	}
}
