package wire

import (
	"sync"
	"sync/atomic"

	"streampca/internal/stream"
)

// spscRing is the lock-free single-producer/single-consumer queue between a
// graph goroutine and an edge's I/O goroutine. The hot path is two atomics
// per message (head/tail are only ever advanced by their owning side);
// blocking is handled by one-slot doorbell channels so a waiting side parks
// in the scheduler instead of spinning.
//
// Shutdown is the only moment both sides can race for a message, and it is
// resolved Dekker-style: the consumer stores closing=true and then drains
// under mu; the producer stores tail and then loads closing. Sequential
// consistency of the atomics guarantees at least one side observes the
// other, and the mutex serializes the doubtful case — so every message is
// accounted by exactly one side (delivered/abandoned by the consumer's
// drain, or reclaimed by the producer).
type spscRing struct {
	buf  []stream.Message
	mask uint64

	head atomic.Uint64 // next slot the consumer pops; consumer-owned
	tail atomic.Uint64 // next slot the producer fills; producer-owned

	notEmpty chan struct{} // producer → consumer doorbell, capacity 1
	notFull  chan struct{} // consumer → producer doorbell, capacity 1

	closing atomic.Bool   // consumer is in (or past) its final drain
	mu      sync.Mutex    // serializes the final drain against a racing push
	exited  chan struct{} // closed once the final drain finished
}

// newSPSCRing returns a ring holding at least n messages (rounded up to a
// power of two, minimum 2).
func newSPSCRing(n int) *spscRing {
	size := 2
	for size < n {
		size *= 2
	}
	return &spscRing{
		buf:      make([]stream.Message, size),
		mask:     uint64(size - 1),
		notEmpty: make(chan struct{}, 1),
		notFull:  make(chan struct{}, 1),
		exited:   make(chan struct{}),
	}
}

// push enqueues m, blocking while the ring is full. It returns false — and
// does not retain m — once the consumer has shut the ring down; the caller
// then owns m's accounting.
//
//streamvet:spsc producer
func (r *spscRing) push(m stream.Message) bool {
	for {
		if r.closing.Load() {
			return false
		}
		t := r.tail.Load()
		if t-r.head.Load() < uint64(len(r.buf)) {
			r.buf[t&r.mask] = m
			r.tail.Store(t + 1)
			if r.closing.Load() {
				// The consumer may have begun its final drain between the
				// publish above and now; settle ownership under the lock. The
				// drain holds mu, so head is stable while we look.
				r.mu.Lock()
				taken := r.head.Load() > t
				if !taken {
					r.tail.Store(t)
					r.buf[t&r.mask] = nil
				}
				r.mu.Unlock()
				return taken
			}
			select {
			case r.notEmpty <- struct{}{}:
			default:
			}
			return true
		}
		select {
		case <-r.notFull:
		case <-r.exited:
			return false
		}
	}
}

// pop moves up to len(dst) queued messages into dst and returns how many.
// Consumer side only; returns 0 when the ring is momentarily empty (wait on
// notEmpty before retrying).
//
//streamvet:spsc consumer
//streampca:noalloc
func (r *spscRing) pop(dst []stream.Message) int {
	h, t := r.head.Load(), r.tail.Load()
	n := int(t - h)
	if n == 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		j := (h + uint64(i)) & r.mask
		dst[i] = r.buf[j]
		r.buf[j] = nil
	}
	r.head.Store(h + uint64(n))
	select {
	case r.notFull <- struct{}{}:
	default:
	}
	return n
}

// shutdown flips the ring terminal and returns every message still queued;
// the caller owns their accounting. After shutdown returns, push always
// fails fast. Consumer side only, at most once.
//
//streamvet:spsc consumer
func (r *spscRing) shutdown() []stream.Message {
	r.closing.Store(true)
	r.mu.Lock()
	var left []stream.Message
	h, t := r.head.Load(), r.tail.Load()
	for ; h < t; h++ {
		j := h & r.mask
		left = append(left, r.buf[j])
		r.buf[j] = nil
	}
	r.head.Store(h)
	r.mu.Unlock()
	close(r.exited)
	return left
}
