// Package wire is the TCP runtime that makes the single-process stream
// graph distributable: the paper's InfoSphere deployment runs the parallel
// PCA engines as distinct processes exchanging eigensystems over a network
// (figs. 6–7), and this package supplies the transport those processes use.
//
// It has three layers:
//
//   - a length-prefixed, versioned binary codec for every stream message
//     kind (codec.go). Micro-batch frames are the hot path: the contiguous
//     B×d buffer the transport pools are already wire-shaped, so on
//     little-endian hosts a dense frame is sent zero-copy (header and float
//     payload gathered into one writev) and received straight into a pooled
//     buffer;
//   - remote edges (edge.go): DialEdge / ListenEdge produce a send half
//     that is a stream.Operator and a receive half that is a
//     stream.SourceFunc, so a graph splices a TCP link exactly where a
//     channel edge used to be. Edges reconnect with seeded exponential
//     backoff, keep tuple-weighted metrics across reconnects, and journal
//     connect/drop/EOS evidence via internal/obs;
//   - a fault-injecting net.Conn wrapper (conn.go) reusing internal/fault
//     so the chaos suite runs unchanged against real sockets: message
//     drop/duplicate/delay plus connection resets and timed partitions.
//
// The wire protocol never trusts the peer: every decode path validates
// shapes against hard caps and grows buffers only as bytes actually arrive,
// so adversarial input can neither panic the decoder nor make it allocate
// more than the data it really sent (mirroring internal/core's checkpoint
// reader).
package wire

import (
	"streampca/internal/core"
)

// Version is the wire protocol version byte. A peer speaking a different
// version is rejected at decode time — bump it on any incompatible layout
// change.
const Version = 1

// Kind identifies the payload type of one wire message.
type Kind uint8

// The wire message kinds. Values are part of the protocol; append only.
const (
	// KindHello is the connection preamble: each side announces its engine
	// index, data shape and session epoch immediately after connecting.
	KindHello Kind = iota + 1
	// KindTuple is a single observation (the unbatched / gappy fallback).
	KindTuple
	// KindFrame is a dense micro-batch: count×dim float64 payload with
	// consecutive sequence numbers, optionally carrying a mask block.
	KindFrame
	// KindControl is a syncctl command (round, sender, receivers).
	KindControl
	// KindSnapshot carries one engine's eigensystem to a named receiver,
	// serialized in the internal/core checkpoint format.
	KindSnapshot
	// KindReport is an engine's end-of-stream report (counters plus the
	// final eigensystem).
	KindReport
	// KindBarrier is a checkpoint-barrier marker flowing with the data.
	KindBarrier
	// KindEOS is the clean end-of-stream frame; the peer stops reading
	// after it.
	KindEOS
	// KindSnapshotDelta carries an eigensystem as an XOR delta against the
	// previous snapshot this connection carried for the same sender (see
	// delta.go). Falls back to KindSnapshot on reconnect, shape change or
	// drift.
	KindSnapshotDelta
	// KindClockProbe is a worker's NTP-style clock sample request: the
	// worker's wall clock at transmit time, echoed back by the coordinator
	// as a KindClockEcho (clock.go).
	KindClockProbe
	// KindClockEcho is the coordinator's reply to a clock probe: the
	// probe's T1 plus the coordinator's receive/transmit wall clocks, from
	// which the worker derives an offset and its round-trip error bound.
	KindClockEcho
	// KindObsReport is a worker's periodic observability report: a small
	// binary prefix (node, report sequence) plus an opaque body the
	// application layer encodes (the pipeline ships JSON-encoded
	// obs.Report deltas; wire stays application-neutral).
	KindObsReport
)

// Hello is the connection preamble. Epoch lets the receiver tell a
// reconnect of the same process (epoch unchanged) from a restarted peer
// (epoch advanced), which is what resets counters mid-window.
type Hello struct {
	// Engine is the sender's engine index, -1 when it has none (the
	// coordinator side of a data edge).
	Engine int
	// Dim and Batch describe the data shape the sender will use, so the
	// receiver can size its frame pool; zero when the side sends no data.
	Dim, Batch int
	// Epoch counts the sender's sessions: it starts at 1 and advances each
	// time the sender process restarts its wire state from scratch.
	Epoch int64
}

// EngineReport is a worker engine's end-of-stream report — the wire form
// of the pipeline's per-engine statistics. It is wire's own type (not the
// pipeline's) so the protocol layer stays application-neutral; the
// coordinator converts it back.
type EngineReport struct {
	// Engine is the reporting engine index.
	Engine int
	// Processed and Outliers count observations absorbed and flagged.
	Processed, Outliers int64
	// SnapshotsSent and MergesApplied count synchronization activity.
	SnapshotsSent, MergesApplied int64
	// Restarts counts crash recoveries.
	Restarts int64
	// Resumed reports whether the latest restart replayed a checkpoint.
	Resumed bool
	// Final is the engine's final eigensystem, nil when it never
	// initialized.
	Final *core.Eigensystem
}

// ObsReport is a worker's periodic observability report in wire form. The
// body is opaque to the transport — the pipeline encodes obs.Report deltas
// as JSON — so the protocol layer stays application-neutral, exactly as
// EngineReport keeps engine statistics out of the codec's vocabulary.
type ObsReport struct {
	// Node is the reporting worker's node ID.
	Node int
	// Seq numbers the worker's reports (strictly increasing per session) so
	// the coordinator can count redeliveries and gaps across reconnects.
	Seq int64
	// Body is the application-encoded report payload.
	Body []byte
}

// EOS is the decoded form of the clean end-of-stream frame.
type EOS struct{}
