package wire

import (
	"bytes"
	"testing"

	"streampca/internal/stream"
)

// countingWriter records every Write call and its size.
type countingWriter struct {
	buf    bytes.Buffer
	writes int
}

func (w *countingWriter) Write(b []byte) (int, error) {
	w.writes++
	return w.buf.Write(b)
}

// coalesceMessages is a representative mixed batch: dense zero-copy frames,
// a tuple, control-plane traffic and a barrier.
func coalesceMessages() []stream.Message {
	return []stream.Message{
		contiguousFrame(0, 4, 3),
		stream.Tuple{Seq: 4, Vec: []float64{1.5, -2.5, 3.25}},
		stream.Control{Round: 7, Sender: 1, Receivers: []int{0, 2}},
		contiguousFrame(5, 2, 3),
		stream.Barrier{Epoch: 9},
		stream.Snapshot{Round: 7, From: 1, To: 0, State: testEigensystem(6, 2)},
		EngineReport{Engine: 1, Processed: 42, Final: testEigensystem(6, 2)},
		EOS{},
	}
}

// TestCoalesceOfOneMatchesEncode: a batch of one flushed through
// Append+Flush must be bitwise identical to Encode — coalescing changes
// write granularity, never the byte stream.
func TestCoalesceOfOneMatchesEncode(t *testing.T) {
	for _, msg := range coalesceMessages() {
		var direct, batched bytes.Buffer
		if err := NewEncoder(&direct, false).Encode(msg); err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		enc := NewEncoder(&batched, false)
		if err := enc.Append(msg); err != nil {
			t.Fatalf("append %T: %v", msg, err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatalf("flush %T: %v", msg, err)
		}
		if !bytes.Equal(direct.Bytes(), batched.Bytes()) {
			t.Fatalf("%T: batch-of-one bytes differ from Encode", msg)
		}
	}
}

// TestCoalescedBatchMatchesConcatenation: a multi-message batch flushed as
// one writev must produce exactly the concatenation of the per-message
// encodings — including the snapshot-delta chain, which must evolve
// identically whether snapshots flush one at a time or gathered.
func TestCoalescedBatchMatchesConcatenation(t *testing.T) {
	msgs := coalesceMessages()
	var sequential bytes.Buffer
	seqEnc := NewEncoder(&sequential, false)
	for _, m := range msgs {
		if err := seqEnc.Encode(m); err != nil {
			t.Fatalf("sequential encode %T: %v", m, err)
		}
	}
	var coalesced bytes.Buffer
	enc := NewEncoder(&coalesced, false)
	for _, m := range msgs {
		if err := enc.Append(m); err != nil {
			t.Fatalf("append %T: %v", m, err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if !bytes.Equal(sequential.Bytes(), coalesced.Bytes()) {
		t.Fatal("coalesced byte stream differs from sequential encoding")
	}

	// And the stream must decode back to the same message count.
	dec := NewDecoder(bytes.NewReader(coalesced.Bytes()), nil, 0)
	for i := range msgs {
		if _, err := dec.Decode(); err != nil {
			t.Fatalf("decode message %d of coalesced stream: %v", i, err)
		}
	}
}

// TestCoalescedFlushMergesArenaRuns: a batch of arena-only messages (no
// zero-copy views) must reach the writer as ONE Write call — adjacent
// arena spans merge into a single gather segment, so even the
// non-TCP fallback path (per-buffer sequential writes) pays one syscall.
func TestCoalescedFlushMergesArenaRuns(t *testing.T) {
	w := &countingWriter{}
	enc := NewEncoder(w, false)
	msgs := []stream.Message{
		stream.Control{Round: 1, Sender: 0, Receivers: []int{1}},
		stream.Barrier{Epoch: 2},
		stream.Control{Round: 2, Sender: 1, Receivers: []int{0}},
		EOS{},
	}
	for _, m := range msgs {
		if err := enc.Append(m); err != nil {
			t.Fatalf("append %T: %v", m, err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if w.writes != 1 {
		t.Fatalf("arena-only batch took %d writes, want 1", w.writes)
	}
	dec := NewDecoder(bytes.NewReader(w.buf.Bytes()), nil, 0)
	for i := range msgs {
		if _, err := dec.Decode(); err != nil {
			t.Fatalf("decode message %d: %v", i, err)
		}
	}
}

// TestSingleModeWritesPerMessage: in single-write mode (chaos), Append
// writes immediately — one Write per assembled message — and Flush is a
// no-op, preserving the fault injector's one-write-one-message contract.
func TestSingleModeWritesPerMessage(t *testing.T) {
	w := &countingWriter{}
	enc := NewEncoder(w, true)
	msgs := []stream.Message{
		stream.Control{Round: 1, Sender: 0},
		stream.Barrier{Epoch: 1},
		EOS{},
	}
	for i, m := range msgs {
		if err := enc.Append(m); err != nil {
			t.Fatalf("append %T: %v", m, err)
		}
		if w.writes != i+1 {
			t.Fatalf("after message %d: %d writes, want %d", i, w.writes, i+1)
		}
	}
	before := w.writes
	if err := enc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if w.writes != before {
		t.Fatal("single-mode Flush performed a write")
	}
}

// TestEncoderCountsBytesAndWrites pins the wrote/writes counters the edge
// folds into its syscall-amortization stats.
func TestEncoderCountsBytesAndWrites(t *testing.T) {
	w := &countingWriter{}
	enc := NewEncoder(w, false)
	for _, m := range []stream.Message{
		stream.Control{Round: 1, Sender: 0},
		stream.Barrier{Epoch: 1},
	} {
		if err := enc.Append(m); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	pending := enc.pendingBytes()
	if pending == 0 {
		t.Fatal("pendingBytes reported 0 for an assembled batch")
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if enc.wrote != int64(pending) || int64(w.buf.Len()) != enc.wrote {
		t.Fatalf("wrote=%d, pending=%d, writer saw %d", enc.wrote, pending, w.buf.Len())
	}
	if enc.writes != 1 {
		t.Fatalf("writes=%d, want 1", enc.writes)
	}
	if enc.lastFlushed != pending {
		t.Fatalf("lastFlushed=%d, want %d", enc.lastFlushed, pending)
	}
	if enc.pendingBytes() != 0 {
		t.Fatal("pendingBytes nonzero after Flush")
	}
}

// TestAppendErrorLeavesBatchIntact: a failed Append must roll the pending
// batch back exactly — the earlier messages still flush byte-identically.
func TestAppendErrorLeavesBatchIntact(t *testing.T) {
	good := stream.Control{Round: 3, Sender: 2, Receivers: []int{0, 1}}
	var want bytes.Buffer
	if err := NewEncoder(&want, false).Encode(good); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	enc := NewEncoder(&got, false)
	if err := enc.Append(good); err != nil {
		t.Fatal(err)
	}
	if err := enc.Append(struct{ stream.Message }{}); err == nil {
		t.Fatal("appending an unencodable message succeeded")
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("failed Append corrupted the pending batch")
	}
}
