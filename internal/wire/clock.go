package wire

import "sync/atomic"

// Clock-offset estimation for the distributed observability plane.
//
// Workers stamp frames with their own wall clock at ingest; the coordinator
// merges traces and computes end-to-end latency on its clock. To place a
// worker's timestamps on the coordinator timeline, each worker runs the
// classic NTP four-timestamp exchange over its existing edge: it sends a
// ClockProbe carrying T1 (worker transmit), the coordinator echoes a
// ClockEcho carrying T1, T2 (coordinator receive) and T3 (coordinator
// transmit), and the worker notes T4 (worker receive). Then
//
//	offset θ = ((T2-T1) + (T3-T4)) / 2   (coordinator clock − worker clock)
//	rtt      = (T4-T1) − (T3-T2)
//
// and the estimation error is bounded by rtt/2 (the true offset lies within
// ±rtt/2 of θ, assuming path symmetry only for the point estimate, not the
// bound). ClockState keeps the sample with the smallest rtt seen — the
// tightest bound — exactly as NTP's clock filter prefers minimum-delay
// samples. Probes and echoes ride the droppable sync plane: a lost sample
// costs nothing but a retry at the next report tick.

// ClockProbe is a worker's clock sample request.
type ClockProbe struct {
	// Node identifies the probing worker, so the coordinator can echo the
	// probe down the matching loop edge.
	Node int
	// T1 is the worker's wall clock (UnixNano) at transmit.
	T1 int64
}

// ClockEcho is the coordinator's reply to a ClockProbe.
type ClockEcho struct {
	// T1 echoes the probe's transmit timestamp.
	T1 int64
	// T2 is the coordinator's wall clock (UnixNano) when the probe arrived.
	T2 int64
	// T3 is the coordinator's wall clock (UnixNano) when the echo left.
	T3 int64
}

// ClockState is a worker's running clock-offset estimate against the
// coordinator. It is written by the telemetry operator when an echo returns
// and read on the frame-observe hot path to convert end-to-end latencies
// onto one timeline, so all fields are atomics and AddSample/OffsetNs stay
// allocation-free.
type ClockState struct {
	offsetNs atomic.Int64 // θ: coordinator clock − worker clock
	rttNs    atomic.Int64 // rtt of the kept (minimum-delay) sample
	samples  atomic.Int64 // echoes absorbed, kept or not
}

// AddSample absorbs one completed exchange. It keeps the offset from the
// minimum-rtt sample seen so far: smaller round trip, tighter error bound.
// Samples with non-positive rtt (clock stepped mid-exchange) are dropped.
//
//streampca:noalloc
func (c *ClockState) AddSample(e ClockEcho, t4 int64) {
	rtt := (t4 - e.T1) - (e.T3 - e.T2)
	if rtt <= 0 {
		return
	}
	c.samples.Add(1)
	for {
		best := c.rttNs.Load()
		if best != 0 && rtt >= best {
			return
		}
		if c.rttNs.CompareAndSwap(best, rtt) {
			c.offsetNs.Store(((e.T2 - e.T1) + (e.T3 - t4)) / 2)
			return
		}
	}
}

// OffsetNs returns the current offset estimate θ (coordinator − worker),
// zero before the first sample lands.
//
//streampca:noalloc
func (c *ClockState) OffsetNs() int64 { return c.offsetNs.Load() }

// RTTNs returns the round trip of the kept sample; the offset error bound
// is half of it. Zero before the first sample.
func (c *ClockState) RTTNs() int64 { return c.rttNs.Load() }

// Samples returns how many echoes have been absorbed.
func (c *ClockState) Samples() int64 { return c.samples.Load() }
