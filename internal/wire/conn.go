package wire

import (
	"errors"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"streampca/internal/fault"
)

// ConnPlan is the fault profile for one remote edge's connections —
// internal/fault extended to the failure modes only real sockets have. The
// message-level faults reuse fault.Plan verbatim (the injector treats each
// whole encoded frame as one message, which is why chaos encoders run in
// single-write mode); Reset and Partition add connection-level chaos. All
// randomness is seeded; only partition windows touch the wall clock.
type ConnPlan struct {
	// Frames injects per-message drop/duplicate/delay/reorder on writes.
	Frames fault.Plan
	// Reset is the per-write probability the connection is torn down
	// (write fails, both halves see the close, the edge reconnects).
	Reset float64
	// Partition is the per-dial probability a partition window opens:
	// every dial fails until the window elapses.
	Partition float64
	// PartitionFor is the partition window length (default 150 ms).
	PartitionFor time.Duration
	// Seed drives the reset/partition rolls (Frames has its own seed).
	Seed uint64
}

// Validate checks the probabilities.
func (p ConnPlan) Validate() error {
	if err := p.Frames.Validate(); err != nil {
		return err
	}
	if p.Reset < 0 || p.Reset > 1 || p.Partition < 0 || p.Partition > 1 {
		return errors.New("wire: Reset and Partition must be probabilities")
	}
	return nil
}

// ErrInjectedReset is the error an injected connection reset surfaces, so
// reconnect logic and journals can tell chaos from real network failures.
var ErrInjectedReset = errors.New("wire: injected connection reset")

// errPartitioned is returned by dialGate while a partition window is open.
var errPartitioned = errors.New("wire: injected network partition")

// connChaos is the seeded fault state shared by every connection of one
// edge: the frame injector, the reset/partition PRNG and the partition
// window survive reconnects, so the schedule is one deterministic sequence
// per edge rather than restarting with each new socket.
type connChaos struct {
	plan ConnPlan

	mu             sync.Mutex
	inj            *fault.Injector
	rng            *rand.Rand
	partitionUntil time.Time
	resets         int64
	partitions     int64
}

func newConnChaos(plan ConnPlan) *connChaos {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	if plan.PartitionFor <= 0 {
		plan.PartitionFor = 150 * time.Millisecond
	}
	return &connChaos{
		plan: plan,
		inj:  fault.NewInjector(plan.Frames),
		rng:  rand.New(rand.NewPCG(plan.Seed, 0x5e7e)),
	}
}

// dialGate rolls the partition schedule for one dial attempt: it fails
// while a window is open and may open a new one.
func (cc *connChaos) dialGate() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	now := time.Now()
	if now.Before(cc.partitionUntil) {
		return errPartitioned
	}
	if cc.plan.Partition > 0 && cc.rng.Float64() < cc.plan.Partition {
		cc.partitionUntil = now.Add(cc.plan.PartitionFor)
		cc.partitions++
		return errPartitioned
	}
	return nil
}

// Resets and Partitions report how many connection-level faults fired.
func (cc *connChaos) Resets() int64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.resets
}

func (cc *connChaos) Partitions() int64 {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.partitions
}

// wrap dresses one freshly established connection in the fault layer.
func (cc *connChaos) wrap(c net.Conn) net.Conn {
	return &faultConn{Conn: c, cc: cc}
}

// faultConn wraps a net.Conn with write-side fault injection. Each Write
// must carry exactly one encoded wire message (edges guarantee it via the
// encoder's single-write mode): the injector then drops, duplicates,
// delays or reorders whole frames, and the reset roll tears the socket
// down mid-stream. Reads pass through untouched — a frame dropped by the
// writer is indistinguishable from one dropped before the reader.
type faultConn struct {
	net.Conn
	cc *connChaos
}

func (c *faultConn) Write(p []byte) (int, error) {
	cc := c.cc
	cc.mu.Lock()
	if cc.plan.Reset > 0 && cc.rng.Float64() < cc.plan.Reset {
		cc.resets++
		cc.mu.Unlock()
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	// The injector may hold the bytes past this call (delay/reorder), and
	// the encoder reuses its scratch buffer — copy first. Chaos paths may
	// allocate; only the clean path is allocation free.
	owned := make([]byte, len(p))
	copy(owned, p)
	out, _ := cc.inj.Tap(owned)
	cc.mu.Unlock()
	for _, m := range out {
		b, ok := m.([]byte)
		if !ok {
			continue
		}
		if _, err := c.Conn.Write(b); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// Close closes the socket. Frames the injector still holds under a
// logical delay stay held — in-flight bytes on a torn connection are lost,
// and the shared chaos state may release them onto the next connection,
// which is exactly a retransmit-after-reconnect arriving late.
func (c *faultConn) Close() error {
	return c.Conn.Close()
}
