package wire

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

// Delta-encoded sync snapshots. An eigensystem serialized by
// core.WriteEigensystem is a fixed-layout block of 8-byte words (header,
// mean, eigenvalues, basis — always a multiple of 8 bytes), and between two
// consecutive syncs of the same engine most of those words move little or
// not at all: the mean and eigenvalues drift in their low mantissa bytes
// while sign, exponent and high mantissa stay put. KindSnapshotDelta
// exploits that by shipping the XOR of the serialized bytes against the
// previous snapshot the same connection carried for the same sender,
// run-length-coding zero words and stripping zero bytes from the nonzero
// ones.
//
// The base state lives on the Encoder/Decoder pair, which an edge creates
// fresh per connection — so a reconnect implicitly resets both sides to
// "no base" and the next snapshot goes out full (the reconnect fallback).
// Within a connection the two sides advance their per-sender generation
// counters in lockstep (full and delta snapshots both advance it); a delta
// whose base generation or length does not match the receiver's state is a
// protocol error, which tears the connection and recovers through the same
// full-snapshot path. When the XOR stream carries no savings (shape change
// re-serializes differently, or the basis genuinely moved everywhere) the
// encoder falls back to a full KindSnapshot for that message — the drift
// fallback.
//
// Wire layout of a KindSnapshotDelta payload:
//
//	round i64 | from i32 | to i32 | baseGen u32 | fullLen u32 | delta bytes
//
// and the delta byte stream is a sequence of word records:
//
//	ctrl 0x80, uvarint n       n consecutive words unchanged
//	ctrl L<<4|T (high bit 0)   one word: L leading and T trailing zero
//	                           bytes (of its LE representation), followed
//	                           by the 8−L−T middle XOR bytes
const snapDeltaHeadLen = 24

var (
	errDeltaTruncated = errors.New("wire: snapshot delta truncated")
	errDeltaMalformed = errors.New("wire: malformed snapshot delta")
	errDeltaNoBase    = errors.New("wire: snapshot delta without matching base")
)

// deltaStream is one sender's snapshot base: the serialized bytes of the
// last snapshot carried for that sender on this connection, and how many
// snapshots have been carried (the generation the next delta is based on).
type deltaStream struct {
	gen  uint32
	full []byte
}

// advance replaces the base with cur and bumps the generation; both sides
// call it for full and delta snapshots alike, keeping the counters in
// lockstep.
func (st *deltaStream) advance(cur []byte) {
	st.full = append(st.full[:0], cur...)
	st.gen++
}

// deltaInto writes the delta record stream for cur XOR prev into dst and
// returns its length, or -1 when the encoding would not beat the full
// payload (the caller then sends a full snapshot). len(prev) must equal
// len(cur) and be a multiple of 8; dst needs len(cur)+16 bytes of headroom
// past the bail threshold, i.e. cap(dst) >= len(cur)+16.
//
//streampca:noalloc
func deltaInto(dst, prev, cur []byte) int {
	words := len(cur) / 8
	n := 0
	for i := 0; i < words; {
		x := binary.LittleEndian.Uint64(cur[i*8:]) ^ binary.LittleEndian.Uint64(prev[i*8:])
		if x == 0 {
			run := 1
			for i+run < words &&
				binary.LittleEndian.Uint64(cur[(i+run)*8:]) == binary.LittleEndian.Uint64(prev[(i+run)*8:]) {
				run++
			}
			dst[n] = 0x80
			n++
			n += binary.PutUvarint(dst[n:], uint64(run))
			i += run
		} else {
			l := bits.TrailingZeros64(x) / 8
			t := bits.LeadingZeros64(x) / 8
			mid := 8 - l - t
			dst[n] = byte(l<<4 | t)
			n++
			v := x >> (8 * l)
			for j := 0; j < mid; j++ {
				dst[n+j] = byte(v >> (8 * j))
			}
			n += mid
			i++
		}
		if n >= len(cur) {
			return -1
		}
	}
	return n
}

// applyDeltaInPlace XORs the decoded record stream into full, which holds
// the previous snapshot's bytes and ends up holding the new one. It never
// reads or writes outside full and delta, and rejects malformed or
// truncated streams without allocating.
//
//streampca:noalloc
func applyDeltaInPlace(full, delta []byte) error {
	words := len(full) / 8
	n := 0
	for i := 0; i < words; {
		if n >= len(delta) {
			return errDeltaTruncated
		}
		ctrl := delta[n]
		n++
		if ctrl == 0x80 {
			run, sz := binary.Uvarint(delta[n:])
			if sz <= 0 || run == 0 || run > uint64(words-i) {
				return errDeltaMalformed
			}
			n += sz
			i += int(run)
			continue
		}
		if ctrl&0x80 != 0 {
			return errDeltaMalformed
		}
		l, t := int(ctrl>>4), int(ctrl&0xf)
		mid := 8 - l - t
		if t > 7 || mid < 1 {
			return errDeltaMalformed
		}
		if n+mid > len(delta) {
			return errDeltaTruncated
		}
		var v uint64
		for j := 0; j < mid; j++ {
			v |= uint64(delta[n+j]) << (8 * j)
		}
		n += mid
		w := binary.LittleEndian.Uint64(full[i*8:]) ^ (v << (8 * l))
		binary.LittleEndian.PutUint64(full[i*8:], w)
		i++
	}
	if n != len(delta) {
		return errDeltaMalformed
	}
	return nil
}
