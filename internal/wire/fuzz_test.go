package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"streampca/internal/stream"
)

// encodeAll serializes msgs back-to-back, failing the test on error.
func encodeAll(t testing.TB, msgs ...stream.Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf, true)
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatalf("seed encode %T: %v", m, err)
		}
	}
	return buf.Bytes()
}

// encodeCoalesced serializes msgs through the gathered Append/Flush path —
// bit-identical to encodeAll for most kinds, but it exercises the delta
// chain: consecutive same-sender snapshots come out as KindSnapshotDelta.
func encodeCoalesced(t testing.TB, msgs ...stream.Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf, false)
	for _, m := range msgs {
		if err := enc.Append(m); err != nil {
			t.Fatalf("seed append %T: %v", m, err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("seed flush: %v", err)
	}
	return buf.Bytes()
}

// perturbedSnapshots yields n same-sender snapshots with tiny drift — the
// shape that produces a full snapshot followed by deltas on the wire.
func perturbedSnapshots(n int) []stream.Message {
	es := testEigensystem(6, 2)
	msgs := make([]stream.Message, 0, n)
	for round := 0; round < n; round++ {
		msgs = append(msgs, stream.Snapshot{Round: int64(round), From: 1, To: 0, State: es})
		es = perturb(es, 1e-9)
	}
	return msgs
}

// FuzzFrameCodec drives the full decoder with adversarial bytes. The
// decoder must never panic and never allocate more than the bytes that
// actually arrived (the scratch cap assertion), whatever shape the header
// claims. Whenever a message does decode, re-encoding it must succeed —
// anything the decoder accepts is by definition wire-expressible.
func FuzzFrameCodec(f *testing.F) {
	f.Add(encodeAll(f, contiguousFrame(0, 4, 3)))
	f.Add(encodeAll(f, contiguousFrame(9, 1, 1), stream.Barrier{Epoch: 2}, EOS{}))
	f.Add(encodeAll(f, stream.Tuple{Seq: 5, Vec: []float64{1, 2}, Mask: []bool{true, false}, Outlier: true}))
	f.Add(encodeAll(f, Hello{Engine: -1, Dim: 400, Batch: 64, Epoch: 1}))
	masked := contiguousFrame(0, 2, 3)
	masked.Tuples[0].Mask = []bool{true, false, true}
	masked.Tuples[1].Mask = []bool{false, false, false}
	f.Add(encodeAll(f, masked))
	// A traced frame: the flagTrace header bit and the 32-byte pre-block
	// carrying origin node and ingest stamp.
	traced := contiguousFrame(7, 4, 3)
	traced.Trace = stream.Trace{Origin: 2, IngestNs: 1_700_000_000_000_000_000}
	f.Add(encodeAll(f, traced))
	// Adversarial seeds: truncated header, huge claimed payload, wrong magic,
	// a frame whose shape prefix disagrees with the payload length.
	f.Add([]byte{magicByte, Version, byte(KindFrame)})
	f.Add([]byte{magicByte, Version, byte(KindFrame), 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0xAA, Version, byte(KindTuple), 0, 8, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	shapeLie := make([]byte, headerLen+16)
	putHeader(shapeLie, KindFrame, 0, 16)
	binary.LittleEndian.PutUint32(shapeLie[headerLen+8:], 1<<19)
	binary.LittleEndian.PutUint32(shapeLie[headerLen+12:], 1<<20)
	f.Add(shapeLie)
	// Coalesced-path seeds: a gathered mixed batch, and a snapshot chain
	// whose second and third messages are KindSnapshotDelta.
	f.Add(encodeCoalesced(f, contiguousFrame(0, 4, 3), stream.Control{Round: 1, Sender: 0},
		contiguousFrame(4, 4, 3), stream.Barrier{Epoch: 1}, EOS{}))
	f.Add(encodeCoalesced(f, perturbedSnapshots(3)...))
	// Hostile delta headers: a baseless delta, a delta claiming a huge base
	// length, and a delta whose record stream is a malformed ctrl byte.
	orphan := make([]byte, headerLen+snapDeltaHeadLen+2)
	putHeader(orphan, KindSnapshotDelta, 0, snapDeltaHeadLen+2)
	binary.LittleEndian.PutUint32(orphan[headerLen+16:], 1)
	binary.LittleEndian.PutUint32(orphan[headerLen+20:], 0xFFFFFF8)
	orphan[headerLen+snapDeltaHeadLen] = 0xC1
	f.Add(orphan)
	chain := encodeCoalesced(f, perturbedSnapshots(2)...)
	chain[len(chain)-1] ^= 0xFF // corrupt the delta's record tail
	f.Add(chain)

	f.Fuzz(func(t *testing.T, data []byte) {
		pool := NewRecvPool(3, 4)
		dec := NewDecoder(bytes.NewReader(data), pool, 1<<20)
		enc := NewEncoder(io.Discard, false)
		for {
			msg, err := dec.Decode()
			if err != nil {
				break
			}
			switch m := msg.(type) {
			case stream.Frame:
				if len(m.Tuples) == 0 || len(m.Tuples) > maxTuples {
					t.Fatalf("decoded frame with %d tuples", len(m.Tuples))
				}
				for i := range m.Tuples {
					if len(m.Tuples[i].Vec) > maxWireDim {
						t.Fatalf("decoded tuple dim %d", len(m.Tuples[i].Vec))
					}
				}
				if err := enc.Encode(m); err != nil {
					t.Fatalf("re-encode decoded frame: %v", err)
				}
				if m.Release != nil {
					m.Release()
				}
			case stream.Tuple, stream.Control, stream.Barrier, stream.Snapshot, Hello, EOS:
				if err := enc.Encode(m); err != nil {
					t.Fatalf("re-encode decoded %T: %v", m, err)
				}
			}
		}
		// The decoder must not have ballooned its scratch past the input
		// plus one growth chunk, no matter what payload sizes were claimed.
		if cap(dec.scratch) > len(data)+(64<<10) {
			t.Fatalf("decoder scratch grew to %d for %d input bytes", cap(dec.scratch), len(data))
		}
	})
}

// FuzzSyncMessage targets the synchronization plane: control commands,
// eigensystem snapshots and engine reports, whose payloads nest the
// internal/core checkpoint format. Decoding must never panic or
// over-allocate, and accepted messages must re-encode.
func FuzzSyncMessage(f *testing.F) {
	es := testEigensystem(5, 2)
	f.Add(encodeAll(f, stream.Control{Round: 3, Sender: 1, Receivers: []int{0, 2, 3}}))
	f.Add(encodeAll(f, stream.Snapshot{Round: 4, From: 2, To: 0, State: es}))
	f.Add(encodeCoalesced(f, perturbedSnapshots(4)...))
	f.Add(encodeAll(f, EngineReport{Engine: 1, Processed: 10, Resumed: true, Final: es}))
	f.Add(encodeAll(f, EngineReport{Engine: 0}))
	// Telemetry-plane kinds: a clock probe/echo pair and an obs report whose
	// body is opaque JSON to the wire layer.
	f.Add(encodeAll(f, ClockProbe{Node: 1, T1: 12345}))
	f.Add(encodeAll(f, ClockEcho{T1: 12345, T2: 12400, T3: 12400}))
	f.Add(encodeAll(f, ObsReport{Node: 2, Seq: 7, Body: []byte(`{"node":"worker-2","seq":7}`)}))
	f.Add(encodeAll(f, ObsReport{Node: 0, Seq: 1}))
	// Hostile obs reports: a header claiming a payload past the body cap,
	// and one whose declared payload is truncated mid-body.
	overCap := make([]byte, headerLen)
	putHeader(overCap, KindObsReport, 0, 16+maxObsBody+1)
	f.Add(overCap)
	short := make([]byte, headerLen+20)
	putHeader(short, KindObsReport, 0, 64)
	f.Add(short)
	// A snapshot whose eigensystem header claims enormous dimensions.
	var lie bytes.Buffer
	hdr := make([]byte, headerLen)
	putHeader(hdr, KindSnapshot, 0, 48)
	lie.Write(hdr)
	lie.Write(make([]byte, 24))
	lie.WriteString("SPCA")
	lie.Write([]byte{1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x00, 0xFF, 0xFF, 0xFF, 0x00})
	lie.Write(make([]byte, 8))
	f.Add(lie.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data), nil, 1<<20)
		enc := NewEncoder(io.Discard, false)
		for {
			msg, err := dec.Decode()
			if err != nil {
				break
			}
			switch m := msg.(type) {
			case stream.Control:
				if len(m.Receivers) > maxRecv {
					t.Fatalf("decoded control with %d receivers", len(m.Receivers))
				}
				if err := enc.Encode(m); err != nil {
					t.Fatalf("re-encode control: %v", err)
				}
			case stream.Snapshot:
				if err := enc.Encode(m); err != nil {
					t.Fatalf("re-encode snapshot: %v", err)
				}
			case EngineReport:
				if err := enc.Encode(m); err != nil {
					t.Fatalf("re-encode report: %v", err)
				}
			case ClockProbe, ClockEcho, ObsReport:
				if err := enc.Encode(m); err != nil {
					t.Fatalf("re-encode %T: %v", m, err)
				}
			}
		}
		if cap(dec.scratch) > len(data)+(64<<10) {
			t.Fatalf("decoder scratch grew to %d for %d input bytes", cap(dec.scratch), len(data))
		}
	})
}
