package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"streampca/internal/core"
	"streampca/internal/stream"
)

// perturb returns a copy of es with a few low-order wiggles — the shape of
// real eigensystem drift between sync rounds, where most serialized words
// change in their low mantissa bytes or not at all.
func perturb(es *core.Eigensystem, step float64) *core.Eigensystem {
	cp := es.Clone()
	for i := range cp.Mean {
		if i%3 == 0 {
			cp.Mean[i] += step
		}
	}
	for i := range cp.Values {
		cp.Values[i] += step / 2
	}
	cp.Count += 10
	cp.SumU += step
	return cp
}

// wireKinds parses a raw byte stream into its message kinds without
// decoding payloads.
func wireKinds(t *testing.T, raw []byte) []Kind {
	t.Helper()
	var kinds []Kind
	for off := 0; off < len(raw); {
		if raw[off] != magicByte {
			t.Fatalf("bad magic at offset %d", off)
		}
		kinds = append(kinds, Kind(raw[off+2]))
		n := int(binary.LittleEndian.Uint32(raw[off+4 : off+8]))
		off += headerLen + n
	}
	return kinds
}

// TestSnapshotDeltaRoundTrip: consecutive snapshots of the same sender go
// out as one full snapshot then deltas, and every decode is bitwise equal
// to what a full snapshot would have carried.
func TestSnapshotDeltaRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, false)
	es := testEigensystem(12, 3)
	var want []*core.Eigensystem
	for round := 0; round < 5; round++ {
		want = append(want, es)
		if err := enc.Encode(stream.Snapshot{Round: int64(round), From: 2, To: 0, State: es}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		es = perturb(es, 1e-9)
	}
	kinds := wireKinds(t, buf.Bytes())
	if kinds[0] != KindSnapshot {
		t.Fatalf("first snapshot went out as kind %d, want full snapshot", kinds[0])
	}
	for i, k := range kinds[1:] {
		if k != KindSnapshotDelta {
			t.Fatalf("snapshot %d went out as kind %d, want delta", i+1, k)
		}
	}
	dec := NewDecoder(&buf, nil, 0)
	for round, wantES := range want {
		msg, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode round %d: %v", round, err)
		}
		snap := msg.(stream.Snapshot)
		if snap.Round != int64(round) || snap.From != 2 || snap.To != 0 {
			t.Fatalf("round %d header mismatch: %+v", round, snap)
		}
		if !reflect.DeepEqual(snap.State, wantES) {
			t.Fatalf("round %d eigensystem not bitwise-equal after delta decode", round)
		}
	}
}

// TestSnapshotDeltaPerSenderChains: deltas chain per sender — interleaved
// senders each get their own base and neither desyncs the other.
func TestSnapshotDeltaPerSenderChains(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, false)
	a, b := testEigensystem(8, 2), testEigensystem(10, 2)
	var msgs []stream.Snapshot
	for round := 0; round < 3; round++ {
		msgs = append(msgs,
			stream.Snapshot{Round: int64(round), From: 0, To: 1, State: a},
			stream.Snapshot{Round: int64(round), From: 1, To: 0, State: b})
		a, b = perturb(a, 1e-9), perturb(b, 2e-9)
	}
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	kinds := wireKinds(t, buf.Bytes())
	wantKinds := []Kind{KindSnapshot, KindSnapshot, KindSnapshotDelta, KindSnapshotDelta, KindSnapshotDelta, KindSnapshotDelta}
	if !reflect.DeepEqual(kinds, wantKinds) {
		t.Fatalf("kinds %v, want %v", kinds, wantKinds)
	}
	dec := NewDecoder(&buf, nil, 0)
	for i, m := range msgs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(got.(stream.Snapshot).State, m.State) {
			t.Fatalf("message %d eigensystem mismatch", i)
		}
	}
}

// TestSnapshotDeltaShapeChangeFallsBack: a snapshot that re-serializes to
// a different length cannot delta against the old base and must go full.
func TestSnapshotDeltaShapeChangeFallsBack(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, false)
	if err := enc.Encode(stream.Snapshot{Round: 0, From: 0, To: 1, State: testEigensystem(8, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(stream.Snapshot{Round: 1, From: 0, To: 1, State: testEigensystem(16, 3)}); err != nil {
		t.Fatal(err)
	}
	kinds := wireKinds(t, buf.Bytes())
	if kinds[1] != KindSnapshot {
		t.Fatalf("shape change went out as kind %d, want full-snapshot fallback", kinds[1])
	}
	// The full fallback still advances the chain: a third snapshot at the
	// new shape deltas against it.
	if err := enc.Encode(stream.Snapshot{Round: 2, From: 0, To: 1, State: perturb(testEigensystem(16, 3), 1e-9)}); err != nil {
		t.Fatal(err)
	}
	if kinds = wireKinds(t, buf.Bytes()); kinds[2] != KindSnapshotDelta {
		t.Fatalf("post-fallback snapshot went out as kind %d, want delta", kinds[2])
	}
	dec := NewDecoder(&buf, nil, 0)
	for i := 0; i < 3; i++ {
		if _, err := dec.Decode(); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
	}
}

// TestSnapshotDeltaNoGainFallsBack: when every serialized word moves in
// all its bytes the delta encoding cannot beat the full payload, and the
// encoder must fall back rather than inflate.
func TestSnapshotDeltaNoGainFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fresh := func() *core.Eigensystem {
		es := testEigensystem(12, 3)
		for i := range es.Mean {
			es.Mean[i] = rng.NormFloat64() * 1e3
		}
		for i := range es.Values {
			es.Values[i] = rng.ExpFloat64() + 1
		}
		es.Sigma2 = rng.Float64()
		es.SumU, es.SumV, es.SumQ = rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
		es.Count = rng.Int63()
		data := es.Vectors.Data()
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		return es
	}
	var buf bytes.Buffer
	enc := NewEncoder(&buf, false)
	for round := 0; round < 3; round++ {
		if err := enc.Encode(stream.Snapshot{Round: int64(round), From: 0, To: 1, State: fresh()}); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range wireKinds(t, buf.Bytes()) {
		if k != KindSnapshot {
			t.Fatalf("uncorrelated snapshot %d went out as kind %d, want full fallback", i, k)
		}
	}
}

// TestSingleModeNeverDeltas: a chaos-mode encoder must not emit deltas —
// an injector that drops or reorders whole messages would desync the
// chain.
func TestSingleModeNeverDeltas(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, true)
	es := testEigensystem(8, 2)
	for round := 0; round < 3; round++ {
		if err := enc.Encode(stream.Snapshot{Round: int64(round), From: 0, To: 1, State: es}); err != nil {
			t.Fatal(err)
		}
		es = perturb(es, 1e-9)
	}
	for i, k := range wireKinds(t, buf.Bytes()) {
		if k != KindSnapshot {
			t.Fatalf("single-mode snapshot %d went out as kind %d", i, k)
		}
	}
}

// TestSnapshotDeltaWithoutBaseRejected: a delta arriving on a connection
// that never carried the base (a reconnect) must be rejected as a protocol
// error — the tear is what forces the sender back to a full snapshot.
func TestSnapshotDeltaWithoutBaseRejected(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, false)
	es := testEigensystem(8, 2)
	if err := enc.Encode(stream.Snapshot{Round: 0, From: 0, To: 1, State: es}); err != nil {
		t.Fatal(err)
	}
	full := buf.Len()
	if err := enc.Encode(stream.Snapshot{Round: 1, From: 0, To: 1, State: perturb(es, 1e-9)}); err != nil {
		t.Fatal(err)
	}
	deltaBytes := buf.Bytes()[full:]
	if Kind(deltaBytes[2]) != KindSnapshotDelta {
		t.Fatalf("second snapshot is kind %d, want delta", deltaBytes[2])
	}
	dec := NewDecoder(bytes.NewReader(deltaBytes), nil, 0)
	if _, err := dec.Decode(); err == nil {
		t.Fatal("baseless delta decoded")
	}
}

// TestSnapshotDeltaHostileInput: truncated, garbage-tailed and
// malformed-control delta payloads must error without panicking, and a
// generation mismatch must be rejected.
func TestSnapshotDeltaHostileInput(t *testing.T) {
	es := testEigensystem(8, 2)
	next := perturb(es, 1e-9)
	encodePair := func() []byte {
		var buf bytes.Buffer
		enc := NewEncoder(&buf, false)
		if err := enc.Encode(stream.Snapshot{Round: 0, From: 0, To: 1, State: es}); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(stream.Snapshot{Round: 1, From: 0, To: 1, State: next}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base := encodePair()
	kinds := wireKinds(t, base)
	if len(kinds) != 2 || kinds[1] != KindSnapshotDelta {
		t.Fatalf("fixture kinds %v, want [snapshot delta]", kinds)
	}
	fullLen := headerLen + int(binary.LittleEndian.Uint32(base[4:8]))

	mutate := func(name string, f func(raw []byte) []byte) {
		raw := encodePair()
		raw = f(raw)
		dec := NewDecoder(bytes.NewReader(raw), nil, 0)
		if _, err := dec.Decode(); err != nil {
			t.Fatalf("%s: base snapshot failed: %v", name, err)
		}
		if _, err := dec.Decode(); err == nil {
			t.Fatalf("%s: hostile delta decoded", name)
		}
	}
	mutate("truncated-delta", func(raw []byte) []byte {
		// Shorten the delta payload by 1 byte; fix the header length.
		dn := binary.LittleEndian.Uint32(raw[fullLen+4:])
		binary.LittleEndian.PutUint32(raw[fullLen+4:], dn-1)
		return raw[:len(raw)-1]
	})
	mutate("garbage-tail", func(raw []byte) []byte {
		dn := binary.LittleEndian.Uint32(raw[fullLen+4:])
		binary.LittleEndian.PutUint32(raw[fullLen+4:], dn+2)
		return append(raw, 0x80, 0x01)
	})
	mutate("bad-ctrl", func(raw []byte) []byte {
		// High bit set but not the zero-run marker.
		raw[fullLen+headerLen+snapDeltaHeadLen] = 0xC1
		return raw
	})
	mutate("gen-mismatch", func(raw []byte) []byte {
		binary.LittleEndian.PutUint32(raw[fullLen+headerLen+16:], 99)
		return raw
	})
	mutate("len-mismatch", func(raw []byte) []byte {
		binary.LittleEndian.PutUint32(raw[fullLen+headerLen+20:], 16)
		return raw
	})
}

// TestDeltaCodecProperty: deltaInto followed by applyDeltaInPlace must
// reproduce cur exactly for random word streams at every correlation
// level, and bail out (rather than inflate) when there is nothing to save.
func TestDeltaCodecProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		words := 1 + rng.Intn(64)
		prev := make([]byte, words*8)
		rng.Read(prev)
		cur := append([]byte(nil), prev...)
		// Change a random fraction of words, some fully, some in one byte.
		changes := rng.Intn(words + 1)
		for c := 0; c < changes; c++ {
			w := rng.Intn(words)
			if rng.Intn(2) == 0 {
				cur[w*8+rng.Intn(8)] ^= byte(1 + rng.Intn(255))
			} else {
				rng.Read(cur[w*8 : w*8+8])
			}
		}
		dst := make([]byte, len(cur)+16)
		dn := deltaInto(dst, prev, cur)
		if dn < 0 {
			continue // no gain: encoder falls back to full, nothing to verify
		}
		if dn >= len(cur) {
			t.Fatalf("trial %d: delta %d bytes did not beat full %d", trial, dn, len(cur))
		}
		got := append([]byte(nil), prev...)
		if err := applyDeltaInPlace(got, dst[:dn]); err != nil {
			t.Fatalf("trial %d: apply: %v", trial, err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("trial %d: delta round trip diverged", trial)
		}
	}
}
