package wire

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"streampca/internal/core"
	"streampca/internal/mat"
	"streampca/internal/stream"
)

// testEigensystem builds a small valid eigensystem for snapshot payloads.
func testEigensystem(d, k int) *core.Eigensystem {
	vecs := make([]float64, d*k)
	for i := range vecs {
		vecs[i] = float64(i%7) * 0.25
	}
	mean := make([]float64, d)
	vals := make([]float64, k)
	for i := range mean {
		mean[i] = float64(i) * 0.5
	}
	for i := range vals {
		vals[i] = float64(k - i)
	}
	return &core.Eigensystem{
		Mean: mean, Values: vals, Vectors: mat.NewDenseData(d, k, vecs),
		Sigma2: 0.5, SumU: 10, SumV: 9, SumQ: 8, Count: 123,
	}
}

// contiguousFrame builds a frame whose tuple vectors are consecutive slots
// of one backing buffer — the transport-pool layout the zero-copy path
// recognizes.
func contiguousFrame(baseSeq int64, count, dim int) stream.Frame {
	buf := make([]float64, count*dim)
	for i := range buf {
		buf[i] = math.Sqrt(float64(i)) - 1.5
	}
	tuples := make([]stream.Tuple, count)
	for i := range tuples {
		tuples[i] = stream.Tuple{
			Seq: baseSeq + int64(i),
			Vec: buf[i*dim : (i+1)*dim : (i+1)*dim],
		}
	}
	return stream.Frame{Seq: baseSeq, Tuples: tuples}
}

func roundTrip(t *testing.T, msg stream.Message, pool *RecvPool) stream.Message {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf, false)
	if err := enc.Encode(msg); err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	dec := NewDecoder(&buf, pool, 0)
	out, err := dec.Decode()
	if err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return out
}

func sameTuples(t *testing.T, got, want []stream.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("tuple count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq {
			t.Fatalf("tuple %d seq %d, want %d", i, got[i].Seq, want[i].Seq)
		}
		if !reflect.DeepEqual(got[i].Vec, want[i].Vec) {
			t.Fatalf("tuple %d vector mismatch", i)
		}
		if !reflect.DeepEqual(got[i].Mask, want[i].Mask) {
			t.Fatalf("tuple %d mask mismatch", i)
		}
	}
}

func TestFrameRoundTripContiguous(t *testing.T) {
	f := contiguousFrame(100, 8, 5)
	got := roundTrip(t, f, nil).(stream.Frame)
	if got.Seq != 100 {
		t.Fatalf("frame seq %d", got.Seq)
	}
	sameTuples(t, got.Tuples, f.Tuples)
}

func TestFrameRoundTripPooled(t *testing.T) {
	pool := NewRecvPool(5, 8)
	f := contiguousFrame(7, 8, 5)
	got := roundTrip(t, f, pool).(stream.Frame)
	sameTuples(t, got.Tuples, f.Tuples)
	if got.Release == nil {
		t.Fatal("pooled frame must carry a Release")
	}
	got.Release()
	// The recycled store must serve the next frame without corruption.
	f2 := contiguousFrame(50, 4, 5)
	got2 := roundTrip(t, f2, pool).(stream.Frame)
	sameTuples(t, got2.Tuples, f2.Tuples)
}

func TestFrameRoundTripNonContiguous(t *testing.T) {
	// Per-tuple allocations: still dense-encodable, via the gather path.
	tuples := make([]stream.Tuple, 4)
	for i := range tuples {
		v := []float64{float64(i), float64(i) * 2, float64(i) * 3}
		tuples[i] = stream.Tuple{Seq: 20 + int64(i), Vec: v}
	}
	f := stream.Frame{Seq: 20, Tuples: tuples}
	got := roundTrip(t, f, nil).(stream.Frame)
	sameTuples(t, got.Tuples, f.Tuples)
}

func TestFrameRoundTripMasked(t *testing.T) {
	f := contiguousFrame(0, 3, 4)
	masks := make([]bool, 3*4)
	for i := range f.Tuples {
		m := masks[i*4 : (i+1)*4 : (i+1)*4]
		m[i%4] = true
		f.Tuples[i].Mask = m
		f.Tuples[i].Vec[i%4] = math.NaN()
	}
	var buf bytes.Buffer
	if err := NewEncoder(&buf, false).Encode(f); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(&buf, nil, 0).Decode()
	if err != nil {
		t.Fatal(err)
	}
	gf := got.(stream.Frame)
	if len(gf.Tuples) != 3 {
		t.Fatalf("got %d tuples", len(gf.Tuples))
	}
	for i, tp := range gf.Tuples {
		if !reflect.DeepEqual(tp.Mask, f.Tuples[i].Mask) {
			t.Fatalf("tuple %d mask mismatch: %v vs %v", i, tp.Mask, f.Tuples[i].Mask)
		}
		if !math.IsNaN(tp.Vec[i%4]) {
			t.Fatalf("tuple %d lost its NaN gap", i)
		}
	}
}

func TestIrregularFrameFallsBackToTuples(t *testing.T) {
	// A sequence gap disqualifies the dense layout; the encoder must emit
	// individual tuples instead.
	f := stream.Frame{Seq: 0, Tuples: []stream.Tuple{
		{Seq: 0, Vec: []float64{1, 2}},
		{Seq: 5, Vec: []float64{3, 4}},
	}}
	var buf bytes.Buffer
	if err := NewEncoder(&buf, false).Encode(f); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf, nil, 0)
	for i, want := range f.Tuples {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		tp, ok := got.(stream.Tuple)
		if !ok {
			t.Fatalf("decode %d: got %T, want Tuple", i, got)
		}
		if tp.Seq != want.Seq || !reflect.DeepEqual(tp.Vec, want.Vec) {
			t.Fatalf("decode %d mismatch", i)
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	tp := stream.Tuple{
		Seq:     42,
		Vec:     []float64{1.5, math.NaN(), -3},
		Mask:    []bool{true, false, true},
		Outlier: true,
	}
	got := roundTrip(t, tp, nil).(stream.Tuple)
	if got.Seq != 42 || !got.Outlier {
		t.Fatalf("seq/outlier lost: %+v", got)
	}
	if !reflect.DeepEqual(got.Mask, tp.Mask) {
		t.Fatal("mask mismatch")
	}
	if got.Vec[0] != 1.5 || !math.IsNaN(got.Vec[1]) || got.Vec[2] != -3 {
		t.Fatalf("vec mismatch: %v", got.Vec)
	}
}

func TestControlRoundTrip(t *testing.T) {
	c := stream.Control{Round: 9, Sender: 2, Receivers: []int{0, 1, 3}}
	got := roundTrip(t, c, nil).(stream.Control)
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("got %+v, want %+v", got, c)
	}
	// Empty receiver list survives too.
	c2 := stream.Control{Round: 1, Sender: 0}
	got2 := roundTrip(t, c2, nil).(stream.Control)
	if got2.Round != 1 || len(got2.Receivers) != 0 {
		t.Fatalf("got %+v", got2)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	es := testEigensystem(6, 2)
	s := stream.Snapshot{Round: 3, From: 1, To: 2, State: es}
	got := roundTrip(t, s, nil).(stream.Snapshot)
	if got.Round != 3 || got.From != 1 || got.To != 2 {
		t.Fatalf("envelope mismatch: %+v", got)
	}
	ges := got.State.(*core.Eigensystem)
	if ges.Count != es.Count || ges.Sigma2 != es.Sigma2 {
		t.Fatal("eigensystem scalars lost")
	}
	if !reflect.DeepEqual(ges.Mean, es.Mean) || !reflect.DeepEqual(ges.Values, es.Values) {
		t.Fatal("eigensystem payload lost")
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := EngineReport{
		Engine: 3, Processed: 1000, Outliers: 17, SnapshotsSent: 4,
		MergesApplied: 6, Restarts: 1, Resumed: true, Final: testEigensystem(4, 2),
	}
	got := roundTrip(t, r, nil).(EngineReport)
	if got.Engine != 3 || got.Processed != 1000 || got.Outliers != 17 ||
		got.SnapshotsSent != 4 || got.MergesApplied != 6 || got.Restarts != 1 || !got.Resumed {
		t.Fatalf("counter mismatch: %+v", got)
	}
	if got.Final == nil || got.Final.Count != 123 {
		t.Fatal("final eigensystem lost")
	}
	// Uninitialized engine: no final eigensystem.
	r2 := EngineReport{Engine: 0, Processed: 5}
	got2 := roundTrip(t, r2, nil).(EngineReport)
	if got2.Final != nil || got2.Processed != 5 {
		t.Fatalf("got %+v", got2)
	}
}

func TestHelloBarrierEOSRoundTrip(t *testing.T) {
	h := Hello{Engine: -1, Dim: 400, Batch: 64, Epoch: 7}
	if got := roundTrip(t, h, nil).(Hello); got != h {
		t.Fatalf("hello %+v, want %+v", got, h)
	}
	b := stream.Barrier{Epoch: 12}
	if got := roundTrip(t, b, nil).(stream.Barrier); got != b {
		t.Fatalf("barrier %+v", got)
	}
	if _, ok := roundTrip(t, EOS{}, nil).(EOS); !ok {
		t.Fatal("EOS did not round-trip")
	}
}

func TestEncodeRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf, false).Encode("not a message"); err == nil {
		t.Fatal("expected an error for an unencodable message")
	}
	if err := NewEncoder(&buf, false).Encode(stream.Snapshot{State: 42}); err == nil {
		t.Fatal("expected an error for a non-eigensystem snapshot")
	}
}

func TestDecodeRejectsAdversarialHeaders(t *testing.T) {
	cases := map[string][]byte{
		"bad magic":       {0x00, Version, byte(KindEOS), 0, 0, 0, 0, 0},
		"bad version":     {magicByte, 99, byte(KindEOS), 0, 0, 0, 0, 0},
		"unknown kind":    {magicByte, Version, 0xEE, 0, 0, 0, 0, 0},
		"oversize claim":  {magicByte, Version, byte(KindFrame), 0, 0xFF, 0xFF, 0xFF, 0x7F},
		"eos with bytes":  {magicByte, Version, byte(KindEOS), 0, 4, 0, 0, 0},
		"short hello":     {magicByte, Version, byte(KindHello), 0, 3, 0, 0, 0, 1, 2, 3},
		"truncated frame": {magicByte, Version, byte(KindFrame), 0, 64, 0, 0, 0, 1, 2},
	}
	for name, raw := range cases {
		if _, err := NewDecoder(bytes.NewReader(raw), nil, 0).Decode(); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	// A frame whose claimed shape disagrees with its payload length must be
	// rejected before any shape-sized allocation.
	var buf bytes.Buffer
	hdr := make([]byte, headerLen)
	putHeader(hdr, KindFrame, 0, 16)
	buf.Write(hdr)
	var prefix [16]byte
	prefix[8] = 0xFF // count = huge
	prefix[12] = 0xFF
	buf.Write(prefix[:])
	if _, err := NewDecoder(&buf, nil, 0).Decode(); err == nil {
		t.Fatal("accepted frame with mismatched shape")
	}
}

func TestDecoderBoundedAllocation(t *testing.T) {
	// A header claiming a huge (but under-cap) payload with no bytes behind
	// it must fail from truncation without allocating the claimed size.
	var raw bytes.Buffer
	hdr := make([]byte, headerLen)
	putHeader(hdr, KindSnapshot, 0, 32<<20)
	raw.Write(hdr)
	raw.WriteString("short")
	d := NewDecoder(&raw, nil, 0)
	if _, err := d.Decode(); err == nil {
		t.Fatal("decode of truncated jumbo payload succeeded")
	}
	if cap(d.scratch) > 1<<17 {
		t.Fatalf("decoder allocated %d bytes for a payload that never arrived", cap(d.scratch))
	}
}

func TestDecoderStreamsMultipleMessages(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf, true) // single-write mode, same bytes
	msgs := []stream.Message{
		Hello{Engine: 0, Dim: 3, Batch: 4, Epoch: 1},
		contiguousFrame(0, 4, 3),
		stream.Control{Round: 1, Sender: 0, Receivers: []int{1}},
		stream.Barrier{Epoch: 1},
		EOS{},
	}
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf, nil, 0)
	for i := range msgs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if reflect.TypeOf(got) != reflect.TypeOf(msgs[i]) {
			t.Fatalf("message %d: %T, want %T", i, got, msgs[i])
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("after the stream: %v, want io.EOF", err)
	}
}
