package wire

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streampca/internal/fault"
	"streampca/internal/ingest"
	"streampca/internal/obs"
	"streampca/internal/stream"
)

// fastRetry keeps reconnect loops snappy in tests.
var fastRetry = ingest.RetryPolicy{MaxAttempts: 20, Base: time.Millisecond, Cap: 20 * time.Millisecond, Factor: 2, Jitter: 0.2}

// runSource runs an edge's receive half in a goroutine, collecting every
// emitted message; the returned wait func joins it and reports the error.
func runSource(ctx context.Context, e *Edge) (func() ([]stream.Message, error), *int64) {
	var (
		mu   sync.Mutex
		got  []stream.Message
		err  error
		wg   sync.WaitGroup
		tups int64
	)
	src := e.Source(nil)
	wg.Add(1)
	go func() {
		defer wg.Done()
		err = src(ctx, func(_ int, msg stream.Message) {
			mu.Lock()
			got = append(got, msg)
			mu.Unlock()
			if f, ok := msg.(stream.Frame); ok {
				atomic.AddInt64(&tups, int64(len(f.Tuples)))
				if f.Release != nil {
					f.Release()
				}
			}
		})
	}()
	return func() ([]stream.Message, error) {
		wg.Wait()
		mu.Lock()
		defer mu.Unlock()
		return got, err
	}, &tups
}

func TestEdgeLoopback(t *testing.T) {
	set := obs.NewSet()
	ln, err := ListenEdge("127.0.0.1:0", EdgeOptions{
		Name: "accept", Hello: Hello{Engine: 2, Epoch: 1}, Dim: 3, Batch: 4, Obs: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	worker := ln.Edge()
	defer worker.Close()
	dial := DialEdge(ln.Addr().String(), EdgeOptions{
		Name: "dial", Hello: Hello{Engine: -1, Dim: 3, Batch: 4, Epoch: 1}, Retry: fastRetry, Obs: set,
	})
	defer dial.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	wait, _ := runSource(ctx, worker)

	op := dial.Operator()
	op.Process(0, contiguousFrame(0, 4, 3), nil)
	op.Process(0, stream.Control{Round: 1, Sender: 0, Receivers: []int{2}}, nil)
	op.Process(0, stream.Snapshot{Round: 1, From: 0, To: 2, State: testEigensystem(3, 2)}, nil)
	op.Process(0, stream.Barrier{Epoch: 1}, nil)
	op.Flush(nil)

	got, srcErr := wait()
	if srcErr != nil {
		t.Fatalf("source: %v", srcErr)
	}
	if len(got) != 4 {
		t.Fatalf("received %d messages, want 4", len(got))
	}
	if _, ok := got[0].(stream.Frame); !ok {
		t.Fatalf("message 0 is %T", got[0])
	}
	if c, ok := got[1].(stream.Control); !ok || c.Round != 1 {
		t.Fatalf("message 1 is %#v", got[1])
	}
	if _, ok := got[2].(stream.Snapshot); !ok {
		t.Fatalf("message 2 is %T", got[2])
	}
	if b, ok := got[3].(stream.Barrier); !ok || b.Epoch != 1 {
		t.Fatalf("message 3 is %#v", got[3])
	}

	// Peer identity flows both ways.
	peer, err := dial.Peer(ctx)
	if err != nil || peer.Engine != 2 {
		t.Fatalf("dial peer = %+v, %v; want engine 2", peer, err)
	}
	wp, err := worker.Peer(ctx)
	if err != nil || wp.Engine != -1 {
		t.Fatalf("worker peer = %+v, %v; want engine -1", wp, err)
	}

	ds, ws := dial.Stats(), worker.Stats()
	if ds.TuplesSent != 4 || ws.TuplesRecv != 4 {
		t.Fatalf("tuples sent/recv = %d/%d, want 4/4", ds.TuplesSent, ws.TuplesRecv)
	}
	if ds.MsgsSent != 4 || ws.MsgsRecv != 4 {
		t.Fatalf("msgs sent/recv = %d/%d, want 4/4", ds.MsgsSent, ws.MsgsRecv)
	}
	if ds.Gen != 1 || ds.Reconnects != 0 {
		t.Fatalf("dial gen/reconnects = %d/%d", ds.Gen, ds.Reconnects)
	}
	if ws.PeerEpoch != 1 {
		t.Fatalf("worker peer epoch = %d", ws.PeerEpoch)
	}

	// Both connects and the EOS left journal evidence.
	var connects, eoses int
	for _, ev := range set.Journal().Events(0) {
		switch ev.Kind {
		case obs.EvWireConnect:
			connects++
		case obs.EvWireEOS:
			eoses++
		}
	}
	if connects != 2 || eoses != 1 {
		t.Fatalf("journal: %d connects, %d eos; want 2, 1", connects, eoses)
	}
}

func TestEdgeSurvivesInjectedResets(t *testing.T) {
	var ups, downs atomic.Int64
	ln, err := ListenEdge("127.0.0.1:0", EdgeOptions{
		Name: "accept", Hello: Hello{Engine: 1, Epoch: 1}, Dim: 3, Batch: 4, Retry: fastRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	worker := ln.Edge()
	defer worker.Close()
	dial := DialEdge(ln.Addr().String(), EdgeOptions{
		Name:  "dial",
		Hello: Hello{Engine: -1, Epoch: 1},
		Retry: fastRetry,
		Chaos: &ConnPlan{Reset: 0.15, Seed: 7},
		OnState: func(up bool) {
			if up {
				ups.Add(1)
			} else {
				downs.Add(1)
			}
		},
	})
	defer dial.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wait, tups := runSource(ctx, worker)

	const frames, batch = 120, 4
	op := dial.Operator()
	for i := 0; i < frames; i++ {
		op.Process(0, contiguousFrame(int64(i*batch), batch, 3), nil)
	}
	op.Flush(nil)

	_, srcErr := wait()
	if srcErr != nil {
		t.Fatalf("source: %v", srcErr)
	}
	ds := dial.Stats()
	if ds.Resets == 0 {
		t.Fatal("chaos plan with Reset=0.15 over 120 writes injected no resets")
	}
	if ds.Reconnects == 0 || ds.Drops == 0 {
		t.Fatalf("reconnects=%d drops=%d, want both > 0", ds.Reconnects, ds.Drops)
	}
	if ds.Gen != 1+int(ds.Reconnects) {
		t.Fatalf("gen=%d with %d reconnects", ds.Gen, ds.Reconnects)
	}
	// At-least-once on the write side, with loss only for bytes already
	// buffered on a torn connection: never duplication (resets fire before
	// the write), so the receiver can't see more tuples than were sent.
	recv := atomic.LoadInt64(tups)
	if recv == 0 {
		t.Fatal("no tuples survived the chaos run")
	}
	if recv > ds.TuplesSent {
		t.Fatalf("received %d tuples but only %d sent", recv, ds.TuplesSent)
	}
	if ds.TuplesSent != frames*batch {
		t.Fatalf("sent %d tuples, want %d", ds.TuplesSent, frames*batch)
	}
	if ups.Load() == 0 || downs.Load() == 0 {
		t.Fatalf("OnState saw ups=%d downs=%d, want both > 0", ups.Load(), downs.Load())
	}
}

func TestEdgeDialExhaustionDropsNotWedges(t *testing.T) {
	// Nothing listens here; the dial side must give up after MaxAttempts and
	// then drop (count) every message instead of blocking the graph.
	dial := DialEdge("127.0.0.1:1", EdgeOptions{
		Name:        "dial",
		Retry:       ingest.RetryPolicy{MaxAttempts: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond, Factor: 2},
		DialTimeout: 200 * time.Millisecond,
	})
	defer dial.Close()
	op := dial.Operator()
	done := make(chan struct{})
	go func() {
		defer close(done)
		op.Process(0, stream.Tuple{Seq: 1, Vec: []float64{1}}, nil)
		op.Process(0, stream.Tuple{Seq: 2, Vec: []float64{2}}, nil)
		op.Flush(nil)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("send wedged on an unreachable peer")
	}
	if got := dial.Stats().Abandoned; got != 3 {
		t.Fatalf("abandoned %d messages, want 3 (2 tuples + EOS)", got)
	}
}

func TestEdgePartitionWindowDelaysDial(t *testing.T) {
	ln, err := ListenEdge("127.0.0.1:0", EdgeOptions{Name: "accept", Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	worker := ln.Edge()
	defer worker.Close()
	dial := DialEdge(ln.Addr().String(), EdgeOptions{
		Name:  "dial",
		Retry: ingest.RetryPolicy{MaxAttempts: 50, Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond, Factor: 2},
		Chaos: &ConnPlan{Partition: 1, PartitionFor: 30 * time.Millisecond, Seed: 11},
	})
	defer dial.Close()
	// Partition=1 opens a window on the first roll, but an elapsed window
	// must not be rolled again before the probability check — each retry gets
	// a fresh roll, and with finite windows the dial eventually... does not:
	// probability 1 re-partitions forever. The dial must exhaust and drop.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wait, _ := runSource(ctx, worker)
	op := dial.Operator()
	op.Process(0, stream.Tuple{Seq: 1, Vec: []float64{1}}, nil)
	// The sender goroutine abandons the tuple once the dial loop exhausts
	// its attempts against the never-closing partition window.
	deadline := time.Now().Add(25 * time.Second)
	for dial.Stats().Abandoned != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned %d, want 1", dial.Stats().Abandoned)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if dial.Stats().Partitions == 0 {
		t.Fatal("no partition window ever opened")
	}
	worker.Close()
	ln.Close()
	cancel()
	if _, err := wait(); err != nil && err != context.Canceled {
		t.Fatalf("source: %v", err)
	}
}

func TestEdgeCloseUnblocksAcceptSide(t *testing.T) {
	ln, err := ListenEdge("127.0.0.1:0", EdgeOptions{Name: "accept"})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	worker := ln.Edge()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wait, _ := runSource(ctx, worker)
	// No dialer ever shows up; cancelling the context must end the source
	// cleanly even though the edge is parked inside Accept.
	time.Sleep(20 * time.Millisecond)
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		wait()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("accept-side source did not unblock on context cancel")
	}
}

func TestEdgeFrameFaultsDropWholeMessages(t *testing.T) {
	// Message-level drops via the fault injector: some frames vanish, but
	// the byte stream stays parseable (whole messages only) and EOS arrives.
	ln, err := ListenEdge("127.0.0.1:0", EdgeOptions{
		Name: "accept", Hello: Hello{Engine: 1, Epoch: 1}, Dim: 2, Batch: 2, Retry: fastRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	worker := ln.Edge()
	defer worker.Close()
	dial := DialEdge(ln.Addr().String(), EdgeOptions{
		Name:  "dial",
		Hello: Hello{Engine: -1, Epoch: 1},
		Retry: fastRetry,
		Chaos: &ConnPlan{Frames: fault.Plan{Drop: 0.3, Seed: 5}},
	})
	defer dial.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wait, tups := runSource(ctx, worker)
	op := dial.Operator()
	const frames = 100
	for i := 0; i < frames; i++ {
		op.Process(0, contiguousFrame(int64(i*2), 2, 2), nil)
	}
	// The EOS write itself can be dropped by the injector; retry until the
	// reader finishes (real runs layer EOS on Flush + connection close).
	fin := make(chan struct{})
	go func() {
		defer close(fin)
		if _, err := wait(); err != nil {
			t.Errorf("source: %v", err)
		}
	}()
	for {
		op.Flush(nil)
		select {
		case <-fin:
		case <-time.After(50 * time.Millisecond):
			continue
		}
		break
	}
	recv := atomic.LoadInt64(tups)
	if recv == 0 || recv >= frames*2 {
		t.Fatalf("received %d tuples of %d sent; want some but not all with Drop=0.3", recv, frames*2)
	}
}

// failNthWriteConn is the mid-writev test seam: it forwards writes to the
// underlying conn but fails write number failAt (counted across every
// wrapped conn via the shared counter), closing the conn so the peer sees
// a genuine tear. Because it is not a *net.TCPConn, net.Buffers falls back
// to sequential per-buffer writes — so the failure lands in the middle of
// a coalesced batch, after some of its buffers already reached the peer.
type failNthWriteConn struct {
	net.Conn
	calls  *atomic.Int64
	failAt int64
}

func (c *failNthWriteConn) Write(b []byte) (int, error) {
	if c.calls.Add(1) == c.failAt {
		c.Conn.Close()
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: errors.New("injected mid-writev tear")}
	}
	return c.Conn.Write(b)
}

// TestEdgeCoalescedResetMidWritevStatsExact kills a connection in the
// middle of a coalesced gathered write and checks the edge's cumulative
// tuple-weighted counters stay exact across the reconnect: every frame is
// counted sent exactly once (delivered-prefix resolution plus retransmit
// of the torn remainder), and the peer receives every tuple exactly once.
func TestEdgeCoalescedResetMidWritevStatsExact(t *testing.T) {
	ln, err := ListenEdge("127.0.0.1:0", EdgeOptions{Name: "accept", Dim: 3, Batch: 4, Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	worker := ln.Edge()
	defer worker.Close()

	dial := DialEdge(ln.Addr().String(), EdgeOptions{
		Name:  "dial",
		Hello: Hello{Engine: 0, Dim: 3, Batch: 4, Epoch: 1},
		Retry: fastRetry,
		// A generous cork so the frames below coalesce into one gathered
		// flush even if the sender goroutine pops the first one early.
		Cork: 100 * time.Millisecond,
	})
	defer dial.Close()
	var writes atomic.Int64
	// A batch of 6 zero-copy frames flushes as alternating prefix/payload
	// buffers; failing the 5th write tears the batch partway through, with
	// whole messages already delivered ahead of the tear.
	dial.testWrapConn = func(c net.Conn) net.Conn {
		return &failNthWriteConn{Conn: c, calls: &writes, failAt: 5}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	wait, tups := runSource(ctx, worker)

	const frames, batch = 6, 4
	op := dial.Operator()
	for i := 0; i < frames; i++ {
		f := contiguousFrame(int64(i*batch), batch, 3)
		op.Process(0, f, nil)
	}
	op.Flush(nil)

	got, err := wait()
	if err != nil {
		t.Fatalf("source: %v", err)
	}
	st := dial.Stats()
	if st.Abandoned != 0 {
		t.Fatalf("abandoned %d messages across the mid-writev tear, want 0", st.Abandoned)
	}
	if st.FramesSent != frames || st.TuplesSent != frames*batch {
		t.Fatalf("sent %d frames / %d tuples, want %d / %d — counters tore with the writev",
			st.FramesSent, st.TuplesSent, frames, frames*batch)
	}
	if st.Drops == 0 || st.Reconnects == 0 {
		t.Fatalf("tear invisible in stats: drops=%d reconnects=%d", st.Drops, st.Reconnects)
	}
	if *tups != frames*batch {
		t.Fatalf("peer received %d tuples, want exactly %d (no loss, no duplication)", *tups, frames*batch)
	}
	recvFrames := 0
	for _, m := range got {
		if _, ok := m.(stream.Frame); ok {
			recvFrames++
		}
	}
	if recvFrames != frames {
		t.Fatalf("peer received %d frames, want %d", recvFrames, frames)
	}
	if st.BytesSent == 0 || st.Writevs == 0 {
		t.Fatalf("wire accounting empty: bytes=%d writevs=%d", st.BytesSent, st.Writevs)
	}
	ws := worker.Stats()
	if ws.TuplesRecv != frames*batch || ws.FramesRecv != frames {
		t.Fatalf("receive counters %d tuples / %d frames, want %d / %d",
			ws.TuplesRecv, ws.FramesRecv, frames*batch, frames)
	}
}

// TestEdgeAnswersClockProbeUnderLoad pins the transport-level clock echo:
// a probe sent up an edge must come back as an echo even while the
// answering side's sender is busy with data frames — the reply rides the
// sender's priority slot, not a droppable graph loop — and the probe
// itself must never surface to the answering side's consumer.
func TestEdgeAnswersClockProbeUnderLoad(t *testing.T) {
	ln, err := ListenEdge("127.0.0.1:0", EdgeOptions{
		Name: "coord", Hello: Hello{Engine: 2, Epoch: 1}, Dim: 3, Batch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	coord := ln.Edge()
	defer coord.Close()
	dial := DialEdge(ln.Addr().String(), EdgeOptions{
		Name: "dial", Hello: Hello{Engine: -1, Dim: 3, Batch: 4, Epoch: 1}, Retry: fastRetry,
	})
	defer dial.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	coordWait, _ := runSource(ctx, coord)

	echoed := make(chan ClockEcho, 1)
	var dialWG sync.WaitGroup
	dialWG.Add(1)
	go func() {
		defer dialWG.Done()
		_ = dial.Source(nil)(ctx, func(_ int, msg stream.Message) {
			if e, ok := msg.(ClockEcho); ok {
				select {
				case echoed <- e:
				default:
				}
			}
			releaseFrame(msg)
		})
	}()

	dialOp := dial.Operator()
	coordOp := coord.Operator()
	dialOp.Process(0, ClockProbe{Node: 0, T1: 42}, nil)
	// Saturate the answering side's data plane while the echo is pending.
	for i := 0; i < 200; i++ {
		coordOp.Process(0, contiguousFrame(int64(i*4), 4, 3), nil)
	}

	var echo ClockEcho
	select {
	case echo = <-echoed:
	case <-time.After(5 * time.Second):
		t.Fatal("no clock echo within 5s despite data-plane load")
	}
	if echo.T1 != 42 {
		t.Fatalf("echo T1 = %d, want the probe's 42", echo.T1)
	}
	if echo.T2 == 0 || echo.T2 != echo.T3 {
		t.Fatalf("echo stamps T2=%d T3=%d, want equal non-zero", echo.T2, echo.T3)
	}

	coordOp.Flush(nil)
	dialOp.Flush(nil)
	got, srcErr := coordWait()
	if srcErr != nil {
		t.Fatalf("coordinator source: %v", srcErr)
	}
	for _, m := range got {
		if _, ok := m.(ClockProbe); ok {
			t.Fatal("probe leaked past the transport layer to the consumer")
		}
	}
	dial.Close()
	dialWG.Wait()
}
