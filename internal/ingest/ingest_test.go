package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCSVStreamBasic(t *testing.T) {
	in := "# comment\n1,2,3\n\n4,5,6\n"
	s := NewCSVStream(strings.NewReader(in), CSVOptions{})
	v1, m1, err := s.Next()
	if err != nil || m1 != nil {
		t.Fatal(err, m1)
	}
	if v1[0] != 1 || v1[2] != 3 {
		t.Fatalf("v1 = %v", v1)
	}
	v2, _, err := s.Next()
	if err != nil || v2[0] != 4 {
		t.Fatal(err, v2)
	}
	if _, _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCSVStreamNaNProducesMask(t *testing.T) {
	s := NewCSVStream(strings.NewReader("1,NaN,3\n1,,3\n"), CSVOptions{})
	for i := 0; i < 2; i++ {
		v, m, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if m == nil || m[1] || !m[0] || !m[2] {
			t.Fatalf("row %d mask = %v", i, m)
		}
		if !math.IsNaN(v[1]) {
			t.Fatalf("row %d v = %v", i, v)
		}
	}
}

func TestCSVStreamMetaColumns(t *testing.T) {
	s := NewCSVStream(strings.NewReader("0.1,1,250,7,8,9\n"), CSVOptions{MetaColumns: 3})
	v, _, err := s.Next()
	if err != nil || len(v) != 3 || v[0] != 7 {
		t.Fatalf("v = %v, err = %v", v, err)
	}
}

func TestCSVStreamDimEnforcement(t *testing.T) {
	s := NewCSVStream(strings.NewReader("1,2\n1,2,3\n4,5\n"), CSVOptions{})
	if _, _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Next()
	var rec *RecordError
	if !errors.As(err, &rec) {
		t.Fatalf("want RecordError, got %v", err)
	}
	// Stream stays usable after a bad record.
	v, _, err := s.Next()
	if err != nil || v[1] != 5 {
		t.Fatal(err, v)
	}
}

func TestCSVStreamParseError(t *testing.T) {
	s := NewCSVStream(strings.NewReader("1,x,3\n"), CSVOptions{})
	_, _, err := s.Next()
	var rec *RecordError
	if !errors.As(err, &rec) || rec.Line != 1 {
		t.Fatalf("want RecordError line 1, got %v", err)
	}
	if rec.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestCSVStreamExplicitDim(t *testing.T) {
	s := NewCSVStream(strings.NewReader("1,2,3\n"), CSVOptions{Dim: 4})
	if _, _, err := s.Next(); err == nil {
		t.Fatal("explicit dim should reject 3-field row")
	}
}

func TestAsSourceSkipsBadRecords(t *testing.T) {
	in := "1,2\nbad,row\n3,4\n"
	var reported []error
	src := AsSource(NewCSVStream(strings.NewReader(in), CSVOptions{}), func(err error) {
		reported = append(reported, err)
	})
	var got [][]float64
	for {
		v, _, ok := src()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 2 || got[1][0] != 3 {
		t.Fatalf("got %v", got)
	}
	if len(reported) != 1 {
		t.Fatalf("reported %v", reported)
	}
}

func TestBinaryStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rows := [][]float64{{1, 2, 3}, {4, math.NaN(), 6}}
	for _, r := range rows {
		if err := binary.Write(&buf, binary.LittleEndian, r); err != nil {
			t.Fatal(err)
		}
	}
	s := NewBinaryStream(&buf, 3)
	v1, m1, err := s.Next()
	if err != nil || m1 != nil || v1[2] != 3 {
		t.Fatal(err, v1, m1)
	}
	v2, m2, err := s.Next()
	if err != nil || m2 == nil || m2[1] || !math.IsNaN(v2[1]) {
		t.Fatal(err, v2, m2)
	}
	if _, _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBinaryStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, []float64{1, 2, 3})
	buf.Write([]byte{1, 2, 3}) // partial trailing record
	s := NewBinaryStream(&buf, 3)
	if _, _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Next()
	var rec *RecordError
	if !errors.As(err, &rec) {
		t.Fatalf("want RecordError for truncation, got %v", err)
	}
}

func TestBinaryStreamPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBinaryStream(strings.NewReader(""), 0)
}

func TestHTTPStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "# header\n1,2\n3,4\n")
	}))
	defer srv.Close()
	s, closer, err := HTTPStream(srv.URL, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	var n int
	for {
		_, _, err := s.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("read %d rows", n)
	}
}

func TestHTTPStreamBadStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer srv.Close()
	if _, _, err := HTTPStream(srv.URL, CSVOptions{}); err == nil {
		t.Fatal("404 should fail")
	}
}

func TestTCPServerSingleProducer(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Error(err)
			return
		}
		fmt.Fprint(conn, "1,2,3\n4,5,6\n")
		conn.Close()
	}()
	var rows [][]float64
	deadline := time.After(10 * time.Second)
	for len(rows) < 2 {
		select {
		case <-deadline:
			t.Fatal("timed out waiting for records")
		default:
		}
		v, _, err := srv.Next()
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, v)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after close, got %v", err)
	}
}

func TestTCPServerMultipleProducers(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const producers = 4
	const rowsEach = 25
	for p := 0; p < producers; p++ {
		go func(p int) {
			conn, err := net.Dial("tcp", srv.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for i := 0; i < rowsEach; i++ {
				fmt.Fprintf(conn, "%d,%d\n", p, i)
			}
		}(p)
	}
	seen := 0
	deadline := time.After(20 * time.Second)
	for seen < producers*rowsEach {
		select {
		case <-deadline:
			t.Fatalf("timed out after %d records", seen)
		default:
		}
		_, _, err := srv.Next()
		if err != nil {
			t.Fatal(err)
		}
		seen++
	}
	srv.Close()
}

func TestTCPServerCloseUnblocksProducers(t *testing.T) {
	srv, err := NewTCPServer("127.0.0.1:0", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Flood without the consumer reading: producer will block on the
	// internal channel; Close must still return promptly.
	go func() {
		for i := 0; i < 100000; i++ {
			if _, err := fmt.Fprintf(conn, "%d,1\n", i); err != nil {
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked with a blocked producer")
	}
}

func TestDirStreamConcatenatesFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("b.csv", "3,4\n")
	write("a.csv", "1,2\n")
	write("skip.txt", "not,a,csv,row\n")
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	ds, err := NewDirStream(dir, "*.csv", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	var rows [][]float64
	for {
		v, _, err := ds.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, v)
	}
	if len(rows) != 2 || rows[0][0] != 1 || rows[1][0] != 3 {
		t.Fatalf("rows = %v (name order a.csv then b.csv expected)", rows)
	}
}

func TestDirStreamInconsistentDims(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a.csv"), []byte("1,2\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "b.csv"), []byte("1,2,3\n"), 0o644)
	ds, err := NewDirStream(dir, "", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, _, err := ds.Next(); err != nil {
		t.Fatal(err)
	}
	_, _, err = ds.Next()
	var rec *RecordError
	if !errors.As(err, &rec) {
		t.Fatalf("dimension change across files should be a RecordError, got %v", err)
	}
}

func TestDirStreamMissingDir(t *testing.T) {
	if _, err := NewDirStream("/nonexistent-xyz", "", CSVOptions{}); err == nil {
		t.Fatal("missing dir should error")
	}
}

func TestDirStreamEmpty(t *testing.T) {
	ds, err := NewDirStream(t.TempDir(), "", CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ds.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty dir should EOF, got %v", err)
	}
}
