// Package ingest provides the input-side flexibility of §III-A1: "Local
// regular text or binary file with CSV ... Network TCP sockets and http
// URLs are also supported out of the box as a source of data." Every
// source yields observations as ([]float64, mask) records; NaN entries (or
// the literal "NaN") mark missing bins and produce a mask.
package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Stream yields observations until io.EOF. Implementations are not safe
// for concurrent use.
type Stream interface {
	// Next returns the next observation. mask is nil for complete vectors
	// (true = observed otherwise). The error is io.EOF at clean end of
	// stream; any other error describes a malformed record or transport
	// failure.
	Next() (vec []float64, mask []bool, err error)
}

// AsSource adapts a Stream to the pipeline's pull function. Malformed
// records are skipped (reported to onErr when non-nil); the source ends at
// io.EOF or any transport error.
func AsSource(s Stream, onErr func(error)) func() ([]float64, []bool, bool) {
	return func() ([]float64, []bool, bool) {
		for {
			vec, mask, err := s.Next()
			if err == nil {
				return vec, mask, true
			}
			if errors.Is(err, io.EOF) {
				return nil, nil, false
			}
			var rec *RecordError
			if errors.As(err, &rec) {
				if onErr != nil {
					onErr(err)
				}
				continue // skip the bad record, keep streaming
			}
			if onErr != nil {
				onErr(err)
			}
			return nil, nil, false
		}
	}
}

// RecordError marks a single malformed record; the stream remains usable.
type RecordError struct {
	// Line is the 1-based record number.
	Line int
	// Reason describes the problem.
	Reason string
}

// Error implements error.
func (e *RecordError) Error() string {
	return fmt.Sprintf("ingest: record %d: %s", e.Line, e.Reason)
}

// CSVOptions configures CSV parsing.
type CSVOptions struct {
	// MetaColumns leading columns are skipped (e.g. spectragen -meta
	// emits redshift, outlier flag, observed count).
	MetaColumns int
	// Dim, when non-zero, enforces the observation length; otherwise the
	// first valid record fixes it.
	Dim int
	// Comment is the line-comment prefix (default "#").
	Comment string
}

// CSVStream parses comma-separated observations from r, one per line.
// Empty entries and the literals NaN/nan are treated as missing bins.
type CSVStream struct {
	opts CSVOptions
	sc   *bufio.Scanner
	line int
	dim  int
}

// NewCSVStream wraps r as a CSV observation stream.
func NewCSVStream(r io.Reader, opts CSVOptions) *CSVStream {
	if opts.Comment == "" {
		opts.Comment = "#"
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	return &CSVStream{opts: opts, sc: sc, dim: opts.Dim}
}

// Next implements Stream.
func (c *CSVStream) Next() ([]float64, []bool, error) {
	for c.sc.Scan() {
		c.line++
		text := strings.TrimSpace(c.sc.Text())
		if text == "" || strings.HasPrefix(text, c.opts.Comment) {
			continue
		}
		fields := strings.Split(text, ",")
		if c.opts.MetaColumns > 0 {
			if len(fields) <= c.opts.MetaColumns {
				return nil, nil, &RecordError{c.line, "fewer fields than MetaColumns"}
			}
			fields = fields[c.opts.MetaColumns:]
		}
		if c.dim == 0 {
			c.dim = len(fields)
		}
		if len(fields) != c.dim {
			return nil, nil, &RecordError{c.line, fmt.Sprintf("got %d values, want %d", len(fields), c.dim)}
		}
		vec := make([]float64, c.dim)
		var mask []bool
		for i, f := range fields {
			f = strings.TrimSpace(f)
			if f == "" || strings.EqualFold(f, "nan") {
				vec[i] = math.NaN()
				if mask == nil {
					mask = fullMask(c.dim)
				}
				mask[i] = false
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, nil, &RecordError{c.line, fmt.Sprintf("column %d: %v", i+1, err)}
			}
			if math.IsNaN(v) {
				vec[i] = math.NaN()
				if mask == nil {
					mask = fullMask(c.dim)
				}
				mask[i] = false
				continue
			}
			vec[i] = v
		}
		return vec, mask, nil
	}
	if err := c.sc.Err(); err != nil {
		return nil, nil, err
	}
	return nil, nil, io.EOF
}

func fullMask(d int) []bool {
	m := make([]bool, d)
	for i := range m {
		m[i] = true
	}
	return m
}

// BinaryStream reads fixed-length records of little-endian float64 values
// (the "binary file" input of §III-A1). NaN payload values mark missing
// bins.
type BinaryStream struct {
	r    io.Reader
	dim  int
	line int
}

// NewBinaryStream wraps r as a binary observation stream of the given
// dimensionality. It panics if dim is not positive.
func NewBinaryStream(r io.Reader, dim int) *BinaryStream {
	if dim <= 0 {
		panic("ingest: BinaryStream dim must be positive")
	}
	return &BinaryStream{r: bufio.NewReader(r), dim: dim}
}

// Next implements Stream.
func (b *BinaryStream) Next() ([]float64, []bool, error) {
	b.line++
	vec := make([]float64, b.dim)
	if err := binary.Read(b.r, binary.LittleEndian, vec); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, nil, &RecordError{b.line, "truncated record at end of stream"}
		}
		return nil, nil, err
	}
	var mask []bool
	for i, v := range vec {
		if math.IsNaN(v) {
			if mask == nil {
				mask = fullMask(b.dim)
			}
			mask[i] = false
		}
	}
	return vec, mask, nil
}

// DirStream reads every regular file in dir (sorted by name, matching the
// optional glob pattern) as a concatenated CSV stream — "a folder of such
// files can feed the data" (§III-A1).
type DirStream struct {
	opts  CSVOptions
	files []string
	cur   Stream
	curF  io.Closer
}

// NewDirStream lists dir and prepares to stream its files in name order.
// pattern is a filepath.Match glob applied to base names ("" = all files).
func NewDirStream(dir, pattern string, opts CSVOptions) (*DirStream, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if pattern != "" {
			ok, err := filepath.Match(pattern, e.Name())
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		files = append(files, filepath.Join(dir, e.Name()))
	}
	sort.Strings(files)
	return &DirStream{opts: opts, files: files}, nil
}

// Next implements Stream, advancing through the folder's files.
func (d *DirStream) Next() ([]float64, []bool, error) {
	for {
		if d.cur == nil {
			if len(d.files) == 0 {
				return nil, nil, io.EOF
			}
			f, err := os.Open(d.files[0])
			d.files = d.files[1:]
			if err != nil {
				return nil, nil, err
			}
			// The Dim learned from the first file carries across files so
			// inconsistent folders surface as record errors.
			d.cur = NewCSVStream(f, d.opts)
			d.curF = f
		}
		vec, mask, err := d.cur.Next()
		if errors.Is(err, io.EOF) {
			if cs, ok := d.cur.(*CSVStream); ok && d.opts.Dim == 0 {
				d.opts.Dim = cs.dim // enforce consistency across files
			}
			d.curF.Close()
			d.cur, d.curF = nil, nil
			continue
		}
		return vec, mask, err
	}
}

// Close releases the currently open file, if any.
func (d *DirStream) Close() error {
	if d.curF != nil {
		err := d.curF.Close()
		d.cur, d.curF = nil, nil
		return err
	}
	return nil
}

// HTTPStream fetches url with a GET request and parses the response body
// as CSV (the "http URLs" input of §III-A1).
func HTTPStream(url string, opts CSVOptions) (Stream, io.Closer, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, nil, fmt.Errorf("ingest: GET %s: %s", url, resp.Status)
	}
	return NewCSVStream(resp.Body, opts), resp.Body, nil
}

// TCPServer accepts CSV observation lines on a listening socket (the "TCP
// sockets" input of §III-A1). Multiple producers may connect sequentially
// or concurrently; their parsed records are merged into one stream. Close
// the server to end the stream.
type TCPServer struct {
	ln      net.Listener
	records chan tcpRecord
	closing chan struct{}
	done    chan struct{}

	mu    sync.Mutex
	conns []net.Conn
}

type tcpRecord struct {
	vec  []float64
	mask []bool
	err  error
}

// NewTCPServer listens on addr (e.g. "127.0.0.1:0") and starts accepting
// producers.
func NewTCPServer(addr string, opts CSVOptions) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{
		ln:      ln,
		records: make(chan tcpRecord, 256),
		closing: make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.acceptLoop(opts)
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *TCPServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, disconnects producers, and ends the stream.
func (s *TCPServer) Close() error {
	close(s.closing)
	err := s.ln.Close()
	s.mu.Lock()
	for _, c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-s.done // acceptLoop closes records after all producers finish
	return err
}

func (s *TCPServer) acceptLoop(opts CSVOptions) {
	var wg sync.WaitGroup
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			break // listener closed
		}
		s.mu.Lock()
		s.conns = append(s.conns, conn)
		s.mu.Unlock()
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			cs := NewCSVStream(conn, opts)
			for {
				vec, mask, err := cs.Next()
				if errors.Is(err, io.EOF) {
					return
				}
				var rec *RecordError
				terminal := err != nil && !errors.As(err, &rec)
				select {
				case s.records <- tcpRecord{vec, mask, err}:
				case <-s.closing:
					return
				}
				if terminal {
					return // transport failure: stop reading this producer
				}
			}
		}(conn)
	}
	wg.Wait()
	close(s.records)
	close(s.done)
}

// Next implements Stream: it blocks until a record arrives from any
// connected producer, and returns io.EOF after Close.
func (s *TCPServer) Next() ([]float64, []bool, error) {
	rec, ok := <-s.records
	if !ok {
		return nil, nil, io.EOF
	}
	return rec.vec, rec.mask, rec.err
}
