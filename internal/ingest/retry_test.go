package ingest

import (
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// TestBackoffDeterministic: same seed ⇒ identical delay schedule; delays
// grow exponentially and never exceed the cap.
func TestBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{Base: 10 * time.Millisecond, Cap: 200 * time.Millisecond,
		Factor: 2, Jitter: 0.2, Seed: 99}
	one := NewBackoff(p)
	two := NewBackoff(p)
	for i := 0; i < 12; i++ {
		a, b := one.Next(), two.Next()
		if a != b {
			t.Fatalf("attempt %d: schedules diverged (%v vs %v)", i, a, b)
		}
		if a > p.Cap {
			t.Fatalf("attempt %d: delay %v exceeds cap %v", i, a, p.Cap)
		}
		if a <= 0 {
			t.Fatalf("attempt %d: non-positive delay %v", i, a)
		}
	}
	other := NewBackoff(RetryPolicy{Base: 10 * time.Millisecond, Cap: 200 * time.Millisecond,
		Factor: 2, Jitter: 0.2, Seed: 100})
	diverged := false
	oneAgain := NewBackoff(p)
	for i := 0; i < 12; i++ {
		if oneAgain.Next() != other.Next() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter (suspicious)")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := NewBackoff(RetryPolicy{Base: time.Millisecond, Cap: 32 * time.Millisecond,
		Factor: 2, Jitter: -1}) // jitter disabled
	want := []time.Duration{1, 2, 4, 8, 16, 32, 32, 32}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want %v", i, got, w*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); got != time.Millisecond {
		t.Fatalf("after Reset: %v, want 1ms", got)
	}
}

// TestRetrySucceedsAfterFailures: op fails twice then succeeds; Retry
// sleeps exactly twice with the backoff schedule.
func TestRetrySucceedsAfterFailures(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{MaxAttempts: 5, Base: time.Millisecond, Jitter: -1,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	v, err := Retry(p, func(attempt int) (string, error) {
		if attempt != calls {
			t.Fatalf("attempt %d, want %d", attempt, calls)
		}
		calls++
		if calls < 3 {
			return "", errors.New("transient")
		}
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("Retry = %q, %v", v, err)
	}
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("sleep schedule %v, want [1ms 2ms]", slept)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Jitter: -1,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	_, err := Retry(p, func(int) (int, error) {
		calls++
		return 0, fmt.Errorf("down %d", calls)
	})
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (no sleep after the last attempt)", len(slept))
	}
}

// TestDialCSVRetriesUntilServerUp: the first dials hit a dead address; the
// listener appears before the attempts run out and the stream then parses
// records normally.
func TestDialCSVRetriesUntilServerUp(t *testing.T) {
	// Reserve an address, then close it so the first dial fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	attempts := 0
	p := RetryPolicy{MaxAttempts: 6, Base: time.Millisecond, Seed: 4,
		Sleep: func(d time.Duration) {
			attempts++
			if attempts == 2 {
				// Bring the server up between attempts 2 and 3.
				l2, err := net.Listen("tcp", addr)
				if err != nil {
					t.Fatalf("relisten: %v", err)
				}
				go func() {
					conn, err := l2.Accept()
					if err != nil {
						return
					}
					fmt.Fprintln(conn, "1.5,2.5,NaN")
					conn.Close()
					l2.Close()
				}()
			}
		}}
	s, closer, err := DialCSV(addr, CSVOptions{}, p)
	if err != nil {
		t.Fatalf("DialCSV: %v (after %d sleeps)", err, attempts)
	}
	defer closer.Close()
	vec, mask, err := s.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 3 || vec[0] != 1.5 || mask == nil || mask[2] {
		t.Fatalf("parsed %v mask %v", vec, mask)
	}
	if _, _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after server closed, got %v", err)
	}
	if attempts < 2 {
		t.Fatalf("dial succeeded after %d sleeps, expected ≥ 2", attempts)
	}
}

func TestDialCSVGivesUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	slept := 0
	_, _, err = DialCSV(addr, CSVOptions{}, RetryPolicy{
		MaxAttempts: 3, Base: time.Microsecond,
		Sleep: func(time.Duration) { slept++ },
	})
	if err == nil {
		t.Fatal("dial to dead address must fail")
	}
	if slept != 2 {
		t.Fatalf("slept %d times, want 2", slept)
	}
}
