package ingest

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"time"
)

// RetryPolicy configures exponential backoff for the network connectors.
// The jitter PRNG is seeded, so a retry schedule — like everything else in
// the fault-injection story — is a pure function of its seed: chaos tests
// can assert the exact delays.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries (default 5; 1 = no retry).
	MaxAttempts int
	// Base is the first delay (default 100 ms).
	Base time.Duration
	// Cap bounds every delay after jitter (default 5 s).
	Cap time.Duration
	// Factor is the exponential growth rate (default 2).
	Factor float64
	// Jitter is the uniform ± fraction applied to each delay (default 0.2;
	// negative disables jitter entirely).
	Jitter float64
	// Seed drives the jitter PRNG.
	Seed uint64
	// Sleep is the delay function (default time.Sleep; tests inject a
	// recorder).
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 5 * time.Second
	}
	if p.Factor <= 1 {
		p.Factor = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Backoff produces the policy's delay sequence: Base·Factor^attempt,
// jittered by ±Jitter, capped at Cap.
type Backoff struct {
	p       RetryPolicy
	rng     *rand.Rand
	attempt int
}

// NewBackoff builds the policy's deterministic delay generator.
func NewBackoff(p RetryPolicy) *Backoff {
	p = p.withDefaults()
	return &Backoff{p: p, rng: rand.New(rand.NewPCG(p.Seed, 0xb0ff))}
}

// Next returns the next delay in the schedule.
func (b *Backoff) Next() time.Duration {
	d := float64(b.p.Base)
	for i := 0; i < b.attempt; i++ {
		d *= b.p.Factor
		if d >= float64(b.p.Cap) {
			d = float64(b.p.Cap)
			break
		}
	}
	b.attempt++
	if b.p.Jitter > 0 {
		d *= 1 + b.p.Jitter*(2*b.rng.Float64()-1)
	}
	if d > float64(b.p.Cap) {
		d = float64(b.p.Cap)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Reset restarts the schedule (the jitter stream keeps advancing, so a
// reset schedule is still deterministic for a fixed call pattern).
func (b *Backoff) Reset() { b.attempt = 0 }

// Retry runs op until it succeeds or the policy's attempts are exhausted,
// sleeping the backoff schedule between tries. op receives the 0-based
// attempt number. The last error is returned wrapped with the attempt
// count.
func Retry[T any](p RetryPolicy, op func(attempt int) (T, error)) (T, error) {
	pd := p.withDefaults()
	b := NewBackoff(p)
	var zero T
	var err error
	for attempt := 0; attempt < pd.MaxAttempts; attempt++ {
		var v T
		v, err = op(attempt)
		if err == nil {
			return v, nil
		}
		if attempt+1 < pd.MaxAttempts {
			pd.Sleep(b.Next())
		}
	}
	return zero, fmt.Errorf("ingest: %d attempts failed: %w", pd.MaxAttempts, err)
}

// DialCSV connects to a TCP endpoint serving CSV observation lines — the
// client side of the §III-A1 network connector — retrying the dial with
// exponential backoff so an engine restarting after a crash can rejoin a
// cluster whose feed is momentarily unreachable. Close the returned closer
// to drop the connection.
func DialCSV(addr string, opts CSVOptions, p RetryPolicy) (Stream, io.Closer, error) {
	conn, err := Retry(p, func(int) (net.Conn, error) {
		return net.Dial("tcp", addr)
	})
	if err != nil {
		return nil, nil, err
	}
	return NewCSVStream(conn, opts), conn, nil
}
