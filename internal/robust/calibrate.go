package robust

import "math"

// ExpectedRhoNormal returns E[ρ(Z²/σ²)] for Z ~ N(0, σ²) with σ² = 1, i.e.
// the expected loss of a standard-normal residual. At the consistent tuning
// the value equals the breakdown parameter δ. Computed with composite
// Simpson quadrature over z ∈ [0, 12] (the tail beyond contributes < 1e-30
// for bounded ρ).
func ExpectedRhoNormal(rho Rho) float64 {
	const (
		zmax = 12.0
		n    = 4096 // even
	)
	h := zmax / n
	f := func(z float64) float64 {
		return rho.Rho(z*z) * math.Exp(-z*z/2)
	}
	sum := f(0) + f(zmax)
	for i := 1; i < n; i++ {
		z := float64(i) * h
		if i%2 == 1 {
			sum += 4 * f(z)
		} else {
			sum += 2 * f(z)
		}
	}
	integral := sum * h / 3
	// Density normalization: 2·∫₀^∞ φ(z) dz = 1, φ = e^{−z²/2}/√(2π).
	return 2 * integral / math.Sqrt(2*math.Pi)
}

// TuneBisquare returns the bisquare cutoff c such that E[ρ_c(Z²)] = delta
// for standard-normal residuals, making the M-scale Fisher-consistent at
// the normal model with breakdown point min(delta, 1−delta). For the
// paper's δ = 0.5 this yields c ≈ 1.548 (the classical 50%-breakdown
// biweight tuning). Solved by bisection; panics if delta ∉ (0, 1).
func TuneBisquare(delta float64) float64 {
	if delta <= 0 || delta >= 1 {
		panic("robust: delta must lie in (0,1)")
	}
	// E[ρ_c] is strictly decreasing in c: larger cutoff → smaller loss.
	lo, hi := 1e-3, 50.0
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if ExpectedRhoNormal(Bisquare{C: mid}) > delta {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12 {
			break
		}
	}
	return (lo + hi) / 2
}

// DefaultBisquare returns the bisquare loss tuned for the paper's default
// breakdown δ = 0.5.
func DefaultBisquare() Bisquare {
	return Bisquare{C: defaultBisquareC}
}

// defaultBisquareC caches TuneBisquare(0.5) so engine construction does not
// re-run quadrature. The value is asserted against the live calibration in
// tests.
const defaultBisquareC = 1.5476449809322568
