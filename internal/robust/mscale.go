package robust

import (
	"errors"
	"math"
)

// DefaultDelta is the breakdown parameter the paper uses implicitly via
// Maronna (2005): δ = 0.5 gives the maximal 50% breakdown point.
const DefaultDelta = 0.5

// ErrNoScale is returned when the M-scale equation has no positive solution
// for the given residuals (e.g. more than a (1−δ) fraction are exactly 0).
var ErrNoScale = errors.New("robust: M-scale fixed point did not converge")

// MScale solves eq. (5), (1/N)·Σ ρ(rᵢ²/σ²) = δ, for σ² given squared
// residuals r2 using the fixed-point iteration of eq. (8):
//
//	σ² ← (1/(N·δ))·Σ W*(rᵢ²/σ²)·rᵢ²
//
// The iteration is monotone-convergent for bounded ρ (Maronna 2005). sigma0
// is the starting value; pass 0 to start from the median of r2 (a 50%
// breakdown initialization). Returns the scale σ² (not σ).
func MScale(rho Rho, r2 []float64, delta, sigma0 float64) (float64, error) {
	if len(r2) == 0 {
		return 0, ErrNoScale
	}
	if delta <= 0 || delta > 1 {
		return 0, errors.New("robust: delta must lie in (0,1]")
	}
	// δ = 1 is only meaningful for unbounded ρ (Classic), where the fixed
	// point is the plain mean square; bounded ρ with δ = 1 has no solution
	// and would iterate to zero, which the convergence loop reports.
	s := sigma0
	if s <= 0 {
		s = median(r2)
		if s <= 0 {
			s = mean(r2)
		}
		if s <= 0 {
			return 0, ErrNoScale
		}
	}
	const (
		maxIter = 200
		relTol  = 1e-12
	)
	n := float64(len(r2))
	for iter := 0; iter < maxIter; iter++ {
		var sum float64
		for _, r := range r2 {
			sum += rho.WStar(r/s) * r
		}
		next := sum / (n * delta)
		if next <= 0 || math.IsNaN(next) || math.IsInf(next, 0) {
			return 0, ErrNoScale
		}
		if math.Abs(next-s) <= relTol*s {
			return next, nil
		}
		s = next
	}
	return s, nil // converged slowly; current iterate is still a usable scale
}

// RhoMean returns (1/N)·Σ ρ(rᵢ²/σ²), the left side of eq. (5). At the
// M-scale solution this equals δ.
func RhoMean(rho Rho, r2 []float64, sigma2 float64) float64 {
	if len(r2) == 0 || sigma2 <= 0 {
		return math.NaN()
	}
	var sum float64
	for _, r := range r2 {
		sum += rho.Rho(r / sigma2)
	}
	return sum / float64(len(r2))
}

// Weights fills w[i] = W(rᵢ²/σ²), the observation weights of eqs. (6)–(7).
// w is allocated when nil.
func Weights(rho Rho, r2 []float64, sigma2 float64, w []float64) []float64 {
	if w == nil {
		w = make([]float64, len(r2))
	}
	if len(w) != len(r2) {
		panic("robust: Weights length mismatch")
	}
	for i, r := range r2 {
		w[i] = rho.W(r / sigma2)
	}
	return w
}

func mean(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// median returns the median of x without modifying it.
func median(x []float64) float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return quickselectMedian(c)
}

// quickselectMedian selects the lower median in expected O(n), mutating c.
func quickselectMedian(c []float64) float64 {
	k := (len(c) - 1) / 2
	lo, hi := 0, len(c)-1
	for lo < hi {
		p := partition(c, lo, hi)
		switch {
		case p == k:
			return c[k]
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return c[k]
}

func partition(c []float64, lo, hi int) int {
	// median-of-three pivot for resilience to sorted inputs
	mid := (lo + hi) / 2
	if c[mid] < c[lo] {
		c[mid], c[lo] = c[lo], c[mid]
	}
	if c[hi] < c[lo] {
		c[hi], c[lo] = c[lo], c[hi]
	}
	if c[hi] < c[mid] {
		c[hi], c[mid] = c[mid], c[hi]
	}
	pivot := c[mid]
	c[mid], c[hi] = c[hi], c[mid]
	i := lo
	for j := lo; j < hi; j++ {
		if c[j] < pivot {
			c[i], c[j] = c[j], c[i]
			i++
		}
	}
	c[i], c[hi] = c[hi], c[i]
	return i
}
