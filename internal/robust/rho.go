// Package robust implements the bounded ρ-functions and M-scale estimation
// from Maronna (2005), "Principal components and orthogonal regression based
// on robust scales", which the paper's robust streaming PCA builds on.
//
// Conventions follow the paper: ρ acts on the *squared* standardized
// residual t = r²/σ², is bounded with ρ(0)=0 and ρ(∞)=1, W(t) = ρ′(t) is
// the weight applied to observations in the weighted mean/covariance
// (eq. 6–7), and W*(t) = ρ(t)/t drives the σ² fixed-point iteration
// (eq. 8). The breakdown parameter δ ∈ (0, 1) is the target value of the
// average ρ (eq. 5); larger δ tolerates more contamination.
package robust

import "math"

// Rho is a bounded robust loss on the squared standardized residual.
// Implementations must satisfy Rho(0)=0, Rho(t)→1 as t→∞, Rho
// non-decreasing, and W = dρ/dt.
type Rho interface {
	// Rho evaluates ρ(t) for t = r²/σ² ≥ 0.
	Rho(t float64) float64
	// W evaluates the observation weight W(t) = ρ′(t) ≥ 0.
	W(t float64) float64
	// WStar evaluates W*(t) = ρ(t)/t, continuously extended at t=0.
	WStar(t float64) float64
	// Name identifies the family for logs and experiment output.
	Name() string
}

// Bisquare is Tukey's biweight in squared-residual form:
//
//	ρ(t) = 1 − (1 − t/c²)³  for t ≤ c²,  1 otherwise,
//
// so observations with r²/σ² beyond c² get weight exactly 0 — the property
// that makes the streaming estimator immune to gross outliers. The tuning
// constant c trades efficiency against robustness; see TuneBisquare.
type Bisquare struct {
	// C is the cutoff in standardized-residual units (not squared).
	C float64
}

// NewBisquare returns a Bisquare with cutoff c; it panics if c <= 0.
func NewBisquare(c float64) Bisquare {
	if c <= 0 {
		panic("robust: bisquare cutoff must be positive")
	}
	return Bisquare{C: c}
}

// Rho implements Rho.
func (b Bisquare) Rho(t float64) float64 {
	c2 := b.C * b.C
	if t >= c2 {
		return 1
	}
	if t <= 0 {
		return 0
	}
	u := 1 - t/c2
	return 1 - u*u*u
}

// W implements Rho; W(t) = (3/c²)(1 − t/c²)² inside the cutoff, 0 outside.
func (b Bisquare) W(t float64) float64 {
	c2 := b.C * b.C
	if t >= c2 || t < 0 {
		return 0
	}
	u := 1 - t/c2
	return 3 / c2 * u * u
}

// WStar implements Rho; the limit at t→0 is ρ′(0) = 3/c².
func (b Bisquare) WStar(t float64) float64 {
	if t <= 0 {
		return 3 / (b.C * b.C)
	}
	return b.Rho(t) / t
}

// Name implements Rho.
func (b Bisquare) Name() string { return "bisquare" }

// BoundedHuber is a smoothly bounded Huber-like loss in squared-residual
// form: ρ(t) = 1 − exp(−t/c²). Unlike Bisquare its weights never reach
// exactly zero, so extreme outliers retain a vanishing but non-zero
// influence. Included for ablations against Bisquare.
type BoundedHuber struct {
	// C is the scale of the exponential roll-off in standardized-residual
	// units.
	C float64
}

// NewBoundedHuber returns a BoundedHuber with scale c; it panics if c <= 0.
func NewBoundedHuber(c float64) BoundedHuber {
	if c <= 0 {
		panic("robust: huber scale must be positive")
	}
	return BoundedHuber{C: c}
}

// Rho implements Rho.
func (h BoundedHuber) Rho(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return 1 - math.Exp(-t/(h.C*h.C))
}

// W implements Rho.
func (h BoundedHuber) W(t float64) float64 {
	if t < 0 {
		return 0
	}
	c2 := h.C * h.C
	return math.Exp(-t/c2) / c2
}

// WStar implements Rho; the limit at t→0 is 1/c².
func (h BoundedHuber) WStar(t float64) float64 {
	if t <= 0 {
		return 1 / (h.C * h.C)
	}
	return h.Rho(t) / t
}

// Name implements Rho.
func (h BoundedHuber) Name() string { return "bounded-huber" }

// Classic is the identity-weight loss that makes every robust formula
// collapse to classical (non-robust) PCA: W ≡ 1 so all observations are
// weighted equally and the "M-scale" is the ordinary mean square. ρ(t)=t is
// unbounded, so Classic violates the bounded contract deliberately — it is
// the paper's classical baseline expressed in the same machinery.
type Classic struct{}

// Rho implements Rho (unbounded: ρ(t)=t).
func (Classic) Rho(t float64) float64 { return t }

// W implements Rho: constant weight 1.
func (Classic) W(t float64) float64 { return 1 }

// WStar implements Rho: constant 1.
func (Classic) WStar(t float64) float64 { return 1 }

// Name implements Rho.
func (Classic) Name() string { return "classic" }
