package robust

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

var allRhos = []Rho{DefaultBisquare(), NewBisquare(2.0), NewBoundedHuber(1.5)}

func TestRhoBoundaryConditions(t *testing.T) {
	for _, r := range allRhos {
		if got := r.Rho(0); got != 0 {
			t.Errorf("%s: rho(0) = %v, want 0", r.Name(), got)
		}
		if got := r.Rho(1e12); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s: rho(inf) = %v, want 1", r.Name(), got)
		}
	}
}

func TestRhoMonotoneAndBounded(t *testing.T) {
	for _, r := range allRhos {
		prev := -1.0
		for t1 := 0.0; t1 <= 20; t1 += 0.01 {
			v := r.Rho(t1)
			if v < prev-1e-12 {
				t.Fatalf("%s: rho not monotone at %v", r.Name(), t1)
			}
			if v < 0 || v > 1 {
				t.Fatalf("%s: rho out of [0,1] at %v: %v", r.Name(), t1, v)
			}
			prev = v
		}
	}
}

func TestWIsDerivativeOfRho(t *testing.T) {
	const h = 1e-6
	for _, r := range allRhos {
		for _, t1 := range []float64{0.05, 0.3, 1.0, 1.7, 2.2, 3.9} {
			num := (r.Rho(t1+h) - r.Rho(t1-h)) / (2 * h)
			if math.Abs(num-r.W(t1)) > 1e-5 {
				t.Errorf("%s: W(%v) = %v, numeric derivative %v", r.Name(), t1, r.W(t1), num)
			}
		}
	}
}

func TestWStarMatchesRhoOverT(t *testing.T) {
	for _, r := range allRhos {
		for _, t1 := range []float64{1e-9, 0.1, 1, 5, 100} {
			want := r.Rho(t1) / t1
			if math.Abs(r.WStar(t1)-want) > 1e-6*(1+want) {
				t.Errorf("%s: WStar(%v) = %v, want %v", r.Name(), t1, r.WStar(t1), want)
			}
		}
		// Continuity at 0: WStar(0) == lim ρ(t)/t == W(0).
		if math.Abs(r.WStar(0)-r.W(0)) > 1e-9 {
			t.Errorf("%s: WStar(0)=%v != W(0)=%v", r.Name(), r.WStar(0), r.W(0))
		}
	}
}

func TestBisquareCutoffZeroWeight(t *testing.T) {
	b := NewBisquare(1.5)
	if w := b.W(1.5*1.5 + 0.001); w != 0 {
		t.Fatalf("weight beyond cutoff = %v, want 0", w)
	}
	if w := b.W(1.5*1.5 - 0.001); w <= 0 {
		t.Fatalf("weight inside cutoff = %v, want > 0", w)
	}
}

func TestConstructorsPanicOnBadC(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBisquare(0) },
		func() { NewBisquare(-1) },
		func() { NewBoundedHuber(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestClassicCollapsesToIdentityWeights(t *testing.T) {
	c := Classic{}
	if c.W(123) != 1 || c.WStar(7) != 1 || c.Rho(3) != 3 {
		t.Fatal("Classic should be identity machinery")
	}
}

func TestMScaleGaussianConsistency(t *testing.T) {
	// For N(0, σ²) residuals and a consistently tuned bisquare, the M-scale
	// of the squared residuals should estimate σ².
	rng := rand.New(rand.NewPCG(41, 42))
	rho := DefaultBisquare()
	sigma := 2.5
	n := 20000
	r2 := make([]float64, n)
	for i := range r2 {
		z := rng.NormFloat64() * sigma
		r2[i] = z * z
	}
	s2, err := MScale(rho, r2, DefaultDelta, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2-sigma*sigma)/(sigma*sigma) > 0.05 {
		t.Fatalf("M-scale = %v, want ≈ %v", s2, sigma*sigma)
	}
}

func TestMScaleSatisfiesDefiningEquation(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 44))
	rho := DefaultBisquare()
	r2 := make([]float64, 500)
	for i := range r2 {
		z := rng.NormFloat64()
		r2[i] = z * z
	}
	s2, err := MScale(rho, r2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := RhoMean(rho, r2, s2); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("rho mean at solution = %v, want 0.5", got)
	}
}

func TestMScaleRobustToContamination(t *testing.T) {
	// 30% gross outliers should barely move the scale.
	rng := rand.New(rand.NewPCG(45, 46))
	rho := DefaultBisquare()
	clean := make([]float64, 1000)
	for i := range clean {
		z := rng.NormFloat64()
		clean[i] = z * z
	}
	dirty := append([]float64(nil), clean...)
	for i := 0; i < 300; i++ {
		dirty[i] = 1e6 + rng.Float64()*1e6
	}
	sClean, err1 := MScale(rho, clean, 0.5, 0)
	sDirty, err2 := MScale(rho, dirty, 0.5, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if sDirty > 5*sClean {
		t.Fatalf("contaminated scale exploded: clean %v dirty %v", sClean, sDirty)
	}
	// Classical mean square, by contrast, explodes.
	if m := mean(dirty); m < 100*sClean {
		t.Fatalf("test setup wrong: classical scale should explode, got %v", m)
	}
}

func TestMScaleScaleEquivariance(t *testing.T) {
	// M-scale(k²·r²) == k²·M-scale(r²).
	rng := rand.New(rand.NewPCG(47, 48))
	rho := DefaultBisquare()
	r2 := make([]float64, 400)
	for i := range r2 {
		z := rng.NormFloat64()
		r2[i] = z * z
	}
	s1, err := MScale(rho, r2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	k2 := 9.0
	scaled := make([]float64, len(r2))
	for i := range scaled {
		scaled[i] = k2 * r2[i]
	}
	s2, err := MScale(rho, scaled, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2-k2*s1) > 1e-6*k2*s1 {
		t.Fatalf("not scale equivariant: %v vs %v", s2, k2*s1)
	}
}

func TestMScaleErrorCases(t *testing.T) {
	rho := DefaultBisquare()
	if _, err := MScale(rho, nil, 0.5, 0); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := MScale(rho, []float64{1}, 0, 0); err == nil {
		t.Fatal("delta=0 should error")
	}
	if _, err := MScale(rho, []float64{1}, 1.5, 0); err == nil {
		t.Fatal("delta>1 should error")
	}
	// δ = 1 with Classic is the plain mean square.
	if s, err := MScale(Classic{}, []float64{2, 4}, 1, 0); err != nil || math.Abs(s-3) > 1e-9 {
		t.Fatalf("classic delta=1 M-scale = %v, %v; want mean square 3", s, err)
	}
	if _, err := MScale(rho, []float64{0, 0, 0}, 0.5, 0); err == nil {
		t.Fatal("all-zero residuals should error")
	}
}

func TestWeights(t *testing.T) {
	rho := NewBisquare(2)
	r2 := []float64{0, 1, 100}
	w := Weights(rho, r2, 1, nil)
	if len(w) != 3 {
		t.Fatal("wrong length")
	}
	if w[0] != rho.W(0) || w[2] != 0 {
		t.Fatalf("weights = %v", w)
	}
	dst := make([]float64, 3)
	if got := Weights(rho, r2, 1, dst); &got[0] != &dst[0] {
		t.Fatal("should reuse dst")
	}
}

func TestMedianSelection(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{3, 1}, 1},
		{[]float64{3, 1, 2}, 2},
		{[]float64{5, 4, 3, 2, 1}, 3},
		{[]float64{1, 1, 1, 9}, 1},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Fatalf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianMatchesSortProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) {
				return true
			}
		}
		got := median(xs)
		// count elements <= got and >= got
		var le, ge int
		for _, v := range xs {
			if v <= got {
				le++
			}
			if v >= got {
				ge++
			}
		}
		k := (len(xs)-1)/2 + 1
		return le >= k && ge >= len(xs)-k+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedRhoNormalSanity(t *testing.T) {
	// Tiny cutoff → loss ≈ 1 almost surely; huge cutoff → loss ≈ 0.
	if v := ExpectedRhoNormal(Bisquare{C: 1e-3}); v < 0.99 {
		t.Fatalf("tiny cutoff expected rho = %v", v)
	}
	if v := ExpectedRhoNormal(Bisquare{C: 40}); v > 0.01 {
		t.Fatalf("huge cutoff expected rho = %v", v)
	}
}

func TestTuneBisquareHitsDelta(t *testing.T) {
	for _, delta := range []float64{0.2, 0.5, 0.7} {
		c := TuneBisquare(delta)
		got := ExpectedRhoNormal(Bisquare{C: c})
		if math.Abs(got-delta) > 1e-6 {
			t.Fatalf("delta %v: tuned c=%v gives E rho = %v", delta, c, got)
		}
	}
}

func TestDefaultBisquareMatchesLiveCalibration(t *testing.T) {
	want := TuneBisquare(0.5)
	if math.Abs(DefaultBisquare().C-want) > 1e-6 {
		t.Fatalf("cached default c = %v, live calibration = %v", DefaultBisquare().C, want)
	}
	// Cross-check against the classical 50%-breakdown biweight constant.
	if math.Abs(want-1.5476) > 0.01 {
		t.Fatalf("calibrated c = %v far from literature value 1.5476", want)
	}
}

func BenchmarkMScale(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	rho := DefaultBisquare()
	r2 := make([]float64, 5000)
	for i := range r2 {
		z := rng.NormFloat64()
		r2[i] = z * z
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MScale(rho, r2, 0.5, 0); err != nil {
			b.Fatal(err)
		}
	}
}
