package cluster

import (
	"math"
	"testing"

	"streampca/internal/syncctl"
)

func simOrFail(t testing.TB, cfg Config) *Stats {
	t.Helper()
	st, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestConfigValidation(t *testing.T) {
	if _, err := Simulate(Config{}); err == nil {
		t.Fatal("Engines=0 should error")
	}
	if _, err := Simulate(Config{Engines: 2, Warmup: -1}); err == nil {
		t.Fatal("negative warmup should error")
	}
	bad := Config{Engines: 2}
	bad.Spec = DefaultSpec()
	bad.Spec.LinkBandwidth = -1
	if _, err := Simulate(bad); err == nil {
		t.Fatal("bad spec should error")
	}
}

func TestWorkloadCostModel(t *testing.T) {
	w := DefaultWorkload()
	c250 := w.PCACost()
	w.Dim = 2000
	c2000 := w.PCACost()
	if c2000 <= c250 {
		t.Fatal("cost must grow with dimensionality")
	}
	// ≈700 tuples/s/thread for the paper's 250-dim setting.
	rate := 1 / c250
	if rate < 400 || rate > 1200 {
		t.Fatalf("250-dim per-thread rate = %v, want ≈ 700", rate)
	}
}

func TestCalibrate(t *testing.T) {
	w := DefaultWorkload()
	if err := w.Calibrate(250, 0.001, 1000, 0.004); err != nil {
		t.Fatal(err)
	}
	if got := w.PCACost(); math.Abs(got-0.001) > 1e-9 {
		w2 := w
		w2.Dim = 250
		if math.Abs(w2.PCACost()-0.001) > 1e-9 {
			t.Fatalf("calibration does not reproduce anchor: %v", w2.PCACost())
		}
	}
	if err := w.Calibrate(250, 0.001, 250, 0.002); err == nil {
		t.Fatal("same-dim calibration should error")
	}
	if err := w.Calibrate(250, 0.004, 1000, 0.001); err == nil {
		t.Fatal("decreasing cost should error")
	}
}

func TestSimulateDeterminism(t *testing.T) {
	cfg := Config{Engines: 8, Seed: 42, Duration: 5, Warmup: 1}
	a := simOrFail(t, cfg)
	b := simOrFail(t, cfg)
	if a.Tuples != b.Tuples || a.WireBytes != b.WireBytes {
		t.Fatalf("simulation not deterministic: %v vs %v", a.Tuples, b.Tuples)
	}
}

func TestSingleEngineRatesMatchModel(t *testing.T) {
	// One fused engine: throughput ≈ 1/PCACost (splitter negligible).
	cfg := Config{Engines: 1, SingleNode: true, Duration: 10, Warmup: 2}
	st := simOrFail(t, cfg)
	want := 1 / DefaultWorkload().PCACost()
	if got := st.Throughput(); math.Abs(got-want)/want > 0.1 {
		t.Fatalf("single fused engine rate = %v, want ≈ %v", got, want)
	}
}

func TestDistributedSingleEngineSlowerThanFused(t *testing.T) {
	fused := simOrFail(t, Config{Engines: 1, SingleNode: true, Duration: 10, Warmup: 2})
	dist := simOrFail(t, Config{Engines: 1, Duration: 10, Warmup: 2})
	if dist.Throughput() >= fused.Throughput() {
		t.Fatalf("network hop should cost throughput: dist %v vs fused %v",
			dist.Throughput(), fused.Throughput())
	}
}

func TestDistributedScalesThenDegrades(t *testing.T) {
	// The Figure 6 shape: 10 engines < 20 engines (peak, 2/node); 30
	// engines (3/node) must fall below the 20-engine peak.
	thr := map[int]float64{}
	for _, n := range []int{10, 20, 30} {
		st := simOrFail(t, Config{Engines: n, Duration: 10, Warmup: 2, Seed: 1})
		thr[n] = st.Throughput()
	}
	if thr[20] <= thr[10] {
		t.Fatalf("20 engines (%v) should beat 10 (%v)", thr[20], thr[10])
	}
	if thr[30] >= thr[20] {
		t.Fatalf("30 engines (%v) must degrade below the 20-engine peak (%v)", thr[30], thr[20])
	}
}

func TestSingleNodePlateausWithoutDegrading(t *testing.T) {
	// Figure 6's single-node line: rises to ~cores, then stays flat (no
	// thrash for fused in-process threads), and never reaches the
	// distributed peak.
	var prev, at8 float64
	for _, n := range []int{1, 2, 4, 8, 16, 30} {
		st := simOrFail(t, Config{Engines: n, SingleNode: true, Duration: 10, Warmup: 2, Seed: 1})
		thr := st.Throughput()
		if n <= 8 && thr < prev*0.98 {
			t.Fatalf("single-node should scale up to core count: %d engines %v < %v", n, thr, prev)
		}
		if n == 8 {
			at8 = thr
		}
		if n > 8 && (thr < at8*0.85 || thr > at8*1.15) {
			t.Fatalf("single-node should plateau: %d engines %v vs %v at 8", n, thr, at8)
		}
		prev = thr
	}
	dist := simOrFail(t, Config{Engines: 20, Duration: 10, Warmup: 2, Seed: 1})
	single := simOrFail(t, Config{Engines: 20, SingleNode: true, Duration: 10, Warmup: 2, Seed: 1})
	if single.Throughput() >= dist.Throughput() {
		t.Fatalf("distributed peak (%v) should beat single-node (%v)",
			dist.Throughput(), single.Throughput())
	}
}

func TestPerThreadRateFallsWithDimensionality(t *testing.T) {
	// Figure 7: tuples/s/thread decreases with d for fixed engine count.
	var prev float64 = math.Inf(1)
	for _, d := range []int{250, 500, 1000, 2000} {
		w := DefaultWorkload()
		w.Dim = d
		st := simOrFail(t, Config{Engines: 10, Workload: w, Duration: 10, Warmup: 2, Seed: 1})
		pt := st.PerThread()
		if pt >= prev {
			t.Fatalf("per-thread rate should fall with d: %v at d=%d vs %v before", pt, d, prev)
		}
		prev = pt
	}
}

func TestTwentyThreadsSaturateInterconnectAtSmallDim(t *testing.T) {
	// Figure 7's other claim: at small d, 20 engines are NIC-bound, so
	// their per-thread rate falls clearly below 10 engines'.
	st10 := simOrFail(t, Config{Engines: 10, Duration: 10, Warmup: 2, Seed: 1})
	st20 := simOrFail(t, Config{Engines: 20, Duration: 10, Warmup: 2, Seed: 1})
	if st20.PerThread() >= st10.PerThread()*0.95 {
		t.Fatalf("20-engine per-thread (%v) should trail 10-engine (%v)",
			st20.PerThread(), st10.PerThread())
	}
	// And the wire must be near its message-rate capacity.
	nicCap := DefaultSpec().LinkBandwidth
	util := st20.WireBytes / st20.Duration / nicCap
	if util < 0.7 {
		t.Fatalf("expected NIC near saturation, utilization = %v", util)
	}
}

func TestSyncCriterionSuppressesEarlyRounds(t *testing.T) {
	// With a large N, engines cannot have absorbed 1.5·N observations
	// between 0.5 s rounds, so almost every round is skipped.
	cfg := Config{
		Engines: 4, Duration: 10, Warmup: 2, Seed: 1,
		SyncPeriod: 0.5, WindowN: 1e9,
	}
	st := simOrFail(t, cfg)
	if st.SyncsSent != 0 {
		t.Fatalf("no sync should pass an absurd criterion, got %d", st.SyncsSent)
	}
	if st.SyncsSkipped == 0 {
		t.Fatal("controller rounds should have been suppressed, not absent")
	}
}

func TestSyncHappensWithPaperSettings(t *testing.T) {
	// Paper settings: throttle 0.5 s, N = 5000. Engines process ~700/s
	// each, so syncs should flow but not every round.
	cfg := Config{
		Engines: 10, Duration: 30, Warmup: 5, Seed: 1,
		SyncPeriod: 0.5, WindowN: 5000,
	}
	st := simOrFail(t, cfg)
	if st.SyncsSent == 0 {
		t.Fatal("paper settings should produce synchronizations")
	}
	rounds := int64(30 / 0.5)
	if st.SyncsSent > rounds {
		t.Fatalf("more syncs (%d) than controller rounds (%d)", st.SyncsSent, rounds)
	}
}

func TestConservationPerEngineSumsToTotal(t *testing.T) {
	st := simOrFail(t, Config{Engines: 7, Duration: 5, Warmup: 1, Seed: 3})
	var sum int64
	for _, n := range st.PerEngine {
		sum += n
	}
	if sum != st.Tuples {
		t.Fatalf("per-engine sum %d != total %d", sum, st.Tuples)
	}
	if st.Tuples == 0 {
		t.Fatal("simulation processed nothing")
	}
}

func TestLoadBalancingFollowsCapacity(t *testing.T) {
	// With 11 engines on 10 nodes, node 0 hosts 2 engines plus the
	// splitter; credit-based flow control should still keep the spread
	// sane (no engine starves).
	st := simOrFail(t, Config{Engines: 11, Duration: 10, Warmup: 2, Seed: 4})
	var min, max int64 = math.MaxInt64, 0
	for _, n := range st.PerEngine {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		t.Fatal("an engine starved")
	}
	if float64(min) < 0.2*float64(max) {
		t.Fatalf("load imbalance too extreme: min %d max %d", min, max)
	}
}

func TestStatsHelpers(t *testing.T) {
	s := &Stats{Tuples: 100, Duration: 10, PerEngine: make([]int64, 4)}
	if s.Throughput() != 10 || s.PerThread() != 2.5 {
		t.Fatalf("helpers wrong: %v %v", s.Throughput(), s.PerThread())
	}
	zero := &Stats{}
	if zero.Throughput() != 0 || zero.PerThread() != 0 {
		t.Fatal("zero stats should be safe")
	}
}

func BenchmarkSimulate20Engines(b *testing.B) {
	cfg := Config{Engines: 20, Duration: 10, Warmup: 2, Seed: 1, SyncPeriod: 0.5, WindowN: 5000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSyncStrategiesInSimulator(t *testing.T) {
	base := Config{Engines: 10, Duration: 20, Warmup: 4, Seed: 1, SyncPeriod: 0.5, WindowN: 2000}
	ring := base
	bcast := base
	bcast.SyncStrategy = syncctl.Broadcast
	p2p := base
	p2p.SyncStrategy = syncctl.PeerToPeer

	rs := simOrFail(t, ring)
	bs := simOrFail(t, bcast)
	ps := simOrFail(t, p2p)
	if rs.SyncsSent == 0 || bs.SyncsSent == 0 || ps.SyncsSent == 0 {
		t.Fatalf("strategies should all sync: ring %d bcast %d p2p %d",
			rs.SyncsSent, bs.SyncsSent, ps.SyncsSent)
	}
	// Broadcast moves more snapshots per eligible round than ring; p2p
	// moves roughly n/2 per round.
	if bs.SyncsSent <= rs.SyncsSent {
		t.Fatalf("broadcast (%d) should out-message ring (%d)", bs.SyncsSent, rs.SyncsSent)
	}
	if ps.SyncsSent <= rs.SyncsSent {
		t.Fatalf("peer-to-peer (%d) should out-message ring (%d)", ps.SyncsSent, rs.SyncsSent)
	}
	// And the extra coordination traffic must not change throughput much.
	if math.Abs(bs.Throughput()-rs.Throughput())/rs.Throughput() > 0.1 {
		t.Fatalf("sync strategy should not dominate throughput: ring %v bcast %v",
			rs.Throughput(), bs.Throughput())
	}
}

func TestLowLatencyTransportRaisesSaturation(t *testing.T) {
	// The paper's closing suggestion: "Using the IBM Low Latency Messaging
	// can also significantly improve the overall computations performance".
	// Model it as a transport with far lower per-message overhead: the
	// NIC-bound 20-engine configuration should gain markedly, while a
	// compute-bound small configuration barely moves.
	stock := Config{Engines: 20, Duration: 10, Warmup: 2, Seed: 1}
	llm := stock
	llm.Spec = DefaultSpec()
	llm.Spec.TransportOverheadBytes = 1000
	llm.Spec.SendOverhead = 3e-6
	llm.Spec.RecvOverhead = 100e-6

	s1 := simOrFail(t, stock)
	s2 := simOrFail(t, llm)
	if s2.Throughput() < 1.2*s1.Throughput() {
		t.Fatalf("low-latency transport should lift the saturated config: %v vs %v",
			s2.Throughput(), s1.Throughput())
	}

	small := Config{Engines: 2, Duration: 10, Warmup: 2, Seed: 1}
	smallLLM := small
	smallLLM.Spec = llm.Spec
	a := simOrFail(t, small)
	b := simOrFail(t, smallLLM)
	if b.Throughput() > 1.6*a.Throughput() {
		t.Fatalf("compute-bound config should gain less: %v vs %v",
			b.Throughput(), a.Throughput())
	}
}
