package cluster

import (
	"testing"

	"streampca/internal/syncctl"
)

func chaosBase(engines int) Config {
	return Config{
		Engines:      engines,
		SyncPeriod:   0.5,
		SyncStrategy: syncctl.Ring,
		Duration:     10, Warmup: 2,
		Seed: 42,
	}
}

func TestChaosValidation(t *testing.T) {
	cfg := chaosBase(4)
	cfg.Chaos = &ChaosSpec{DropRate: 1.5}
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("drop rate > 1 should error")
	}
	cfg.Chaos = &ChaosSpec{Crashes: []CrashEvent{{Engine: 9, At: 1}}}
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("out-of-range crash engine should error")
	}
	cfg.Chaos = &ChaosSpec{Crashes: []CrashEvent{{Engine: 0, At: 2, RecoverAt: 1}}}
	if _, err := Simulate(cfg); err == nil {
		t.Fatal("recovery before crash should error")
	}
}

// TestChaosDeterminism: identical chaos scenarios yield identical stats.
func TestChaosDeterminism(t *testing.T) {
	cfg := chaosBase(4)
	cfg.Chaos = &ChaosSpec{
		DropRate: 0.05,
		Crashes:  []CrashEvent{{Engine: 1, At: 3, RecoverAt: 6}},
	}
	a := simOrFail(t, cfg)
	b := simOrFail(t, cfg)
	if a.Tuples != b.Tuples || a.TuplesDropped != b.TuplesDropped ||
		a.Crashes != b.Crashes || a.Recoveries != b.Recoveries {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.TuplesDropped == 0 {
		t.Fatal("5%% link drop produced no dropped tuples")
	}
	if a.Crashes != 1 || a.Recoveries != 1 {
		t.Fatalf("crashes=%d recoveries=%d, want 1/1", a.Crashes, a.Recoveries)
	}
}

// TestChaosDropReducesThroughput: on a NIC-bound scenario (20 engines, the
// Figure 7 saturation regime) a lossy link lowers measured completions —
// dropped tuples still burn wire capacity. In an engine-bound scenario the
// credit loop compensates: drops return credits, the splitter works harder,
// and completions hold — so that regime is pinned as unchanged-within-noise.
func TestChaosDropReducesThroughput(t *testing.T) {
	nicBound := func(chaos *ChaosSpec) *Stats {
		return simOrFail(t, Config{Engines: 20, Duration: 10, Warmup: 2, Seed: 1, Chaos: chaos})
	}
	clean := nicBound(nil)
	st := nicBound(&ChaosSpec{DropRate: 0.2})
	if st.TuplesDropped == 0 {
		t.Fatal("20%% link drop produced no dropped tuples")
	}
	if float64(st.Tuples) > 0.9*float64(clean.Tuples) {
		t.Fatalf("NIC-bound 20%% drop: %d tuples, clean run %d", st.Tuples, clean.Tuples)
	}

	cleanEng := simOrFail(t, chaosBase(4))
	lossyCfg := chaosBase(4)
	lossyCfg.Chaos = &ChaosSpec{DropRate: 0.2}
	lossyEng := simOrFail(t, lossyCfg)
	if lossyEng.TuplesDropped == 0 {
		t.Fatal("engine-bound run recorded no drops")
	}
	if float64(lossyEng.Tuples) < 0.95*float64(cleanEng.Tuples) {
		t.Fatalf("engine-bound throughput should survive link drops: %d vs %d",
			lossyEng.Tuples, cleanEng.Tuples)
	}
}

// TestChaosCrashStopsEngine: an engine crashed before the measured window
// and never recovered completes nothing, while the survivors keep going and
// absorb its share of the stream.
func TestChaosCrashStopsEngine(t *testing.T) {
	cfg := chaosBase(4)
	cfg.Chaos = &ChaosSpec{Crashes: []CrashEvent{{Engine: 2, At: 0.5}}}
	st := simOrFail(t, cfg)
	if st.PerEngine[2] != 0 {
		t.Fatalf("dead engine completed %d tuples", st.PerEngine[2])
	}
	for i, n := range st.PerEngine {
		if i != 2 && n == 0 {
			t.Fatalf("surviving engine %d completed nothing", i)
		}
	}
	if st.Crashes != 1 || st.Recoveries != 0 {
		t.Fatalf("crashes=%d recoveries=%d", st.Crashes, st.Recoveries)
	}
}

// TestChaosRecoveryRestoresWork: an engine down for a slice of the run
// completes less than its healthy peers but more than a dead one; recovery
// is visible in the stats.
func TestChaosRecoveryRestoresWork(t *testing.T) {
	cfg := chaosBase(4)
	cfg.Chaos = &ChaosSpec{Crashes: []CrashEvent{{Engine: 1, At: 4, RecoverAt: 8}}}
	st := simOrFail(t, cfg)
	if st.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", st.Recoveries)
	}
	if st.PerEngine[1] == 0 {
		t.Fatal("recovered engine completed nothing")
	}
	for i, n := range st.PerEngine {
		if i != 1 && n <= st.PerEngine[1] {
			t.Fatalf("engine %d (%d tuples) should out-produce the crashed engine (%d)",
				i, n, st.PerEngine[1])
		}
	}
}
