package cluster

import (
	"container/heap"
	"math/rand/v2"

	"streampca/internal/syncctl"
)

// Event kinds, in tie-break priority order.
const (
	evSplitDone  = iota // splitter finished per-tuple CPU work
	evNicDone           // node-0 NIC finished pushing a message
	evArrive            // tuple arrived at an engine
	evEngineDone        // engine finished a job
	evSyncTick          // synchronization controller round
	evCrash             // injected engine failure
	evRecover           // failed engine rejoins
)

type event struct {
	t    float64
	seq  int64 // FIFO tie-break for equal times
	kind int
	// a, b are kind-specific: engine ids, rounds, or flags.
	a, b int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// job is a unit of engine work.
type job struct {
	merge   bool
	crossed bool // arrived over the network (pays RecvOverhead)
}

// engineState is one simulated PCA instance.
type engineState struct {
	node      int
	queue     []job
	busy      bool
	failed    bool
	credits   int
	done      int64 // completions inside the measured window
	sinceSync float64
	syncsSent int64
}

type sim struct {
	cfg   Config
	rng   *rand.Rand
	h     eventHeap
	seq   int64
	now   float64
	end   float64
	meas0 float64

	engines []*engineState
	// busyThreads is the weighted runnable-thread count per node.
	busyThreads []float64
	// splitter state
	splitBlocked bool
	splitBusy    bool
	// nicFreeAt is when node 0's outgoing NIC next frees up.
	nicFreeAt float64

	ctl   *syncctl.Controller
	round int64

	stats Stats
}

// Simulate runs one scenario to completion and returns its statistics.
func Simulate(cfg Config) (*Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &sim{
		cfg:   cfg,
		rng:   rand.New(rand.NewPCG(cfg.Seed, 0xde5)),
		end:   cfg.Warmup + cfg.Duration,
		meas0: cfg.Warmup,
		ctl:   &syncctl.Controller{N: cfg.Engines, Strategy: cfg.SyncStrategy, Seed: cfg.Seed},
	}
	s.engines = make([]*engineState, cfg.Engines)
	for i := range s.engines {
		node := 0
		if !cfg.SingleNode {
			// Round-robin starting at node 1, so small engine counts live
			// away from the splitter (the paper's 1-thread-distributed
			// case pays the network hop) while 20 engines still land 2 per
			// node across all 10 including node 0.
			node = (i + 1) % cfg.Spec.Nodes
		}
		s.engines[i] = &engineState{node: node, credits: cfg.CreditWindow}
	}
	s.busyThreads = make([]float64, cfg.Spec.Nodes)
	s.stats.PerEngine = make([]int64, cfg.Engines)

	s.startSplit()
	if cfg.SyncPeriod > 0 && cfg.Engines > 1 {
		s.schedule(cfg.SyncPeriod, evSyncTick, 0, 0)
	}
	if cfg.Chaos != nil {
		for _, ev := range cfg.Chaos.Crashes {
			s.schedule(ev.At, evCrash, ev.Engine, 0)
			if ev.RecoverAt > 0 {
				s.schedule(ev.RecoverAt, evRecover, ev.Engine, 0)
			}
		}
	}

	for len(s.h) > 0 {
		e := heap.Pop(&s.h).(event)
		if e.t > s.end {
			break
		}
		s.now = e.t
		switch e.kind {
		case evSplitDone:
			s.onSplitDone(e.a, e.b != 0)
		case evNicDone:
			// NIC push finished; arrival after propagation latency.
			s.schedule(s.cfg.Spec.LinkLatency, evArrive, e.a, e.b)
		case evArrive:
			s.onArrive(e.a, e.b)
		case evEngineDone:
			s.onEngineDone(e.a, e.b != 0)
		case evSyncTick:
			s.onSyncTick()
		case evCrash:
			s.onCrash(e.a)
		case evRecover:
			s.onRecover(e.a)
		}
	}

	s.stats.Duration = s.cfg.Duration
	for i, en := range s.engines {
		s.stats.PerEngine[i] = en.done
		s.stats.Tuples += en.done
	}
	return &s.stats, nil
}

func (s *sim) schedule(dt float64, kind, a, b int) {
	s.seq++
	heap.Push(&s.h, event{t: s.now + dt, seq: s.seq, kind: kind, a: a, b: b})
}

// dilation returns the service-time multiplier on a node after `add`
// runnable threads join: fair sharing beyond the core count, plus — for
// distributed placements only — a thrashing penalty per excess thread.
// Fused in-process operators share one address space and scheduler-friendly
// threads, which is why the paper's single-node line plateaus without
// degrading while distributed 3-engines-per-node falls off.
func (s *sim) dilation(node int, add float64) float64 {
	runnable := s.busyThreads[node] + add
	cores := float64(s.cfg.Spec.CoresPerNode)
	if runnable <= cores {
		return 1
	}
	d := runnable / cores
	if !s.cfg.SingleNode {
		d *= 1 + s.cfg.Spec.ThrashPenalty*(runnable-cores)
	}
	return d
}

// threadsPerEngineJob is the runnable-thread weight of an active engine:
// a fused in-process operator is one thread; a distributed instance also
// keeps its transport thread hot.
func (s *sim) threadsPerEngineJob() float64 {
	if s.cfg.SingleNode {
		return 1
	}
	return 2
}

// startSplit dispatches the next tuple if any engine has credit, else
// blocks until a completion returns one.
func (s *sim) startSplit() {
	if s.splitBusy {
		return
	}
	target := s.pickEngine()
	if target < 0 {
		s.splitBlocked = true
		return
	}
	s.splitBlocked = false
	en := s.engines[target]
	en.credits--
	crossed := 0
	cost := s.cfg.Workload.SplitCost / 8 // fused pointer hand-off
	if !s.cfg.SingleNode && en.node != 0 {
		crossed = 1
		cost = s.cfg.Workload.SplitCost + s.cfg.Spec.SendOverhead
	}
	dil := s.dilation(0, 1)
	s.busyThreads[0]++
	s.splitBusy = true
	s.schedule(cost*dil, evSplitDone, target, crossed)
}

// pickEngine returns a random live engine holding credit, or -1.
func (s *sim) pickEngine() int {
	var avail []int
	for i, en := range s.engines {
		if en.credits > 0 && !en.failed {
			avail = append(avail, i)
		}
	}
	if len(avail) == 0 {
		return -1
	}
	return avail[s.rng.IntN(len(avail))]
}

func (s *sim) onSplitDone(target int, crossed bool) {
	s.busyThreads[0]--
	s.splitBusy = false
	if crossed {
		// Serialize through node 0's NIC.
		bytes := s.cfg.Workload.TupleBytes() + s.cfg.Spec.TransportOverheadBytes
		xfer := bytes / s.cfg.Spec.LinkBandwidth
		start := s.now
		if s.nicFreeAt > start {
			start = s.nicFreeAt
		}
		s.nicFreeAt = start + xfer
		if s.now >= s.meas0 {
			s.stats.WireBytes += bytes
		}
		s.seq++
		heap.Push(&s.h, event{t: s.nicFreeAt, seq: s.seq, kind: evNicDone, a: target, b: 1})
	} else {
		s.schedule(0, evArrive, target, 0)
	}
	s.startSplit()
}

// onArrive enqueues work at engine a. The b code distinguishes the arrival:
// 0 = local tuple, 1 = tuple that crossed the network, 2 = merge job.
// Arrivals at a failed engine are lost, and tuple arrivals additionally pass
// a seeded link-drop gate when chaos is configured.
func (s *sim) onArrive(engine, code int) {
	en := s.engines[engine]
	tuple := code != 2
	if en.failed || (tuple && s.cfg.Chaos != nil && s.cfg.Chaos.DropRate > 0 &&
		s.rng.Float64() < s.cfg.Chaos.DropRate) {
		s.dropArrival(en, tuple)
		return
	}
	en.queue = append(en.queue, job{crossed: code != 0, merge: code == 2})
	s.maybeStart(engine)
}

// dropArrival discards a message addressed to an engine. A lost tuple
// returns its flow-control credit (the paper's split never deadlocks on a
// lossy link); a lost merge snapshot simply never happens.
func (s *sim) dropArrival(en *engineState, tuple bool) {
	if !tuple {
		return
	}
	s.stats.TuplesDropped++
	en.credits++
	if s.splitBlocked {
		s.startSplit()
	}
}

func (s *sim) maybeStart(engine int) {
	en := s.engines[engine]
	if en.busy || len(en.queue) == 0 {
		return
	}
	j := en.queue[0]
	en.queue = en.queue[1:]
	svc := s.cfg.Workload.PCACost()
	if j.merge {
		svc *= s.cfg.Workload.MergeCostFactor
	}
	if j.crossed {
		svc += s.cfg.Spec.RecvOverhead
	}
	threads := s.threadsPerEngineJob()
	dil := s.dilation(en.node, threads)
	s.busyThreads[en.node] += threads
	en.busy = true
	merge := 0
	if j.merge {
		merge = 1
	}
	s.schedule(svc*dil, evEngineDone, engine, merge)
}

func (s *sim) onEngineDone(engine int, wasMerge bool) {
	en := s.engines[engine]
	s.busyThreads[en.node] -= s.threadsPerEngineJob()
	en.busy = false
	if en.failed {
		// The engine crashed mid-job: the result is lost, but the tuple's
		// credit returns so the splitter keeps flowing.
		if !wasMerge {
			s.stats.TuplesDropped++
			en.credits++
		}
		return
	}
	if !wasMerge {
		if s.now >= s.meas0 {
			en.done++
		}
		en.sinceSync++
		en.credits++
		if s.splitBlocked {
			s.startSplit()
		}
	}
	s.maybeStart(engine)
}

// onSyncTick runs one controller round: the planned sender shares its state
// with its receivers when the data-driven criterion (§II-C) holds on both
// sides.
func (s *sim) onSyncTick() {
	plan := s.ctl.Plan(s.round)
	s.round++
	for _, ctl := range plan {
		sender := s.engines[ctl.Sender]
		if !s.allowSync(sender) {
			s.stats.SyncsSkipped++
			continue
		}
		sent := false
		for _, r := range ctl.Receivers {
			recv := s.engines[r]
			if !s.allowSync(recv) {
				s.stats.SyncsSkipped++
				continue
			}
			// Snapshot transfer: sender NIC (modeled only for node 0,
			// other NICs are lightly loaded) plus latency; then a merge
			// job at the receiver.
			bytes := s.cfg.Workload.SnapshotBytes() + s.cfg.Spec.TransportOverheadBytes
			delay := s.cfg.Spec.LinkLatency + bytes/s.cfg.Spec.LinkBandwidth
			if sender.node == 0 && !s.cfg.SingleNode {
				start := s.now
				if s.nicFreeAt > start {
					start = s.nicFreeAt
				}
				s.nicFreeAt = start + bytes/s.cfg.Spec.LinkBandwidth
				delay = (s.nicFreeAt - s.now) + s.cfg.Spec.LinkLatency
			}
			if s.now >= s.meas0 {
				s.stats.WireBytes += bytes
				s.stats.SyncsSent++ // one snapshot transfer per receiver
			}
			s.scheduleMerge(r, delay)
			recv.sinceSync = 0
			sent = true
		}
		if sent {
			sender.sinceSync = 0
			sender.syncsSent++
		}
	}
	s.schedule(s.cfg.SyncPeriod, evSyncTick, 0, 0)
}

func (s *sim) allowSync(en *engineState) bool {
	if s.cfg.WindowN <= 0 {
		return true
	}
	return en.sinceSync > 1.5*s.cfg.WindowN
}

// scheduleMerge delivers a merge job to an engine after the given delay.
func (s *sim) scheduleMerge(engine int, delay float64) {
	s.seq++
	heap.Push(&s.h, event{t: s.now + delay, seq: s.seq, kind: evArrive, a: engine, b: 2})
}

// onCrash fails an engine: its queue is lost (tuple credits return so the
// split window stays intact), the sync controller excludes it from future
// plans, and any in-flight job is discarded when it completes.
func (s *sim) onCrash(engine int) {
	en := s.engines[engine]
	if en.failed {
		return
	}
	en.failed = true
	s.stats.Crashes++
	s.ctl.MarkFailed(engine)
	for _, j := range en.queue {
		if !j.merge {
			s.stats.TuplesDropped++
			en.credits++
		}
	}
	en.queue = nil
}

// onRecover rejoins a failed engine: it re-enters the split rotation with
// its full credit window (every lost tuple returned its credit) and the sync
// controller resumes planning transfers to and from it, which is how the
// restarted instance re-acquires cluster state.
func (s *sim) onRecover(engine int) {
	en := s.engines[engine]
	if !en.failed {
		return
	}
	en.failed = false
	// A restarted engine has trivially independent (empty) state, so it
	// passes the 1.5·N criterion immediately and re-acquires cluster state
	// on the next sync round it appears in.
	en.sinceSync = 1.5*s.cfg.WindowN + 1
	s.stats.Recoveries++
	s.ctl.MarkRecovered(engine)
	if s.splitBlocked {
		s.startSplit()
	}
}
