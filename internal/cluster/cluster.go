// Package cluster is a deterministic discrete-event simulator of the
// paper's 10-node evaluation testbed (§III-D): quad-core nodes, 1 GbE
// interconnect, a threaded splitter feeding N streaming-PCA engines, and a
// throttled ring synchronization fabric. It reproduces the *placement*
// phenomena of Figures 6–7 — fusion vs network hops, the 2-engines-per-node
// optimum, scheduler thrashing beyond it, and interconnect saturation for
// many small tuples — which depend on the cost model rather than on
// physical hardware.
//
// The model, in one paragraph: the splitter (node 0) is a serial server
// with a per-tuple CPU cost; cross-node tuples then pass through node 0's
// NIC, a serial server with per-message transport overhead bytes (the
// InfoSphere tuple transport is expensive for small messages), plus link
// latency. Each engine is a serial server whose per-tuple service is the
// measured PCA update cost, plus a receive-side CPU cost when the tuple
// crossed the network. CPU contention dilates service times: a node whose
// runnable thread count (engines are 2 threads each when distributed —
// worker + transport — and 1 when fused) exceeds its cores divides the
// excess fairly and pays an additional thrashing penalty per excess thread.
// The splitter uses credit-based flow control (each engine advertises a
// small window), so faster nodes naturally receive more tuples, exactly
// like the paper's non-blocking threaded split.
package cluster

import (
	"errors"
	"fmt"

	"streampca/internal/syncctl"
)

// Spec describes the simulated hardware.
type Spec struct {
	// Nodes is the cluster size (paper: 10).
	Nodes int
	// CoresPerNode is the per-node core count (paper: 4, Xeon E31230).
	CoresPerNode int
	// LinkBandwidth is NIC bandwidth in bytes/second (paper: 1 GbE =
	// 125e6).
	LinkBandwidth float64
	// LinkLatency is the one-way message latency in seconds.
	LinkLatency float64
	// TransportOverheadBytes is the per-message wire cost beyond payload
	// (framing, acks, and the stream-transport protocol); it is what makes
	// many small tuples saturate a link long before nominal bandwidth.
	TransportOverheadBytes float64
	// SendOverhead and RecvOverhead are per-message CPU seconds charged to
	// the sending and receiving node for serialization.
	SendOverhead, RecvOverhead float64
	// ThrashPenalty is the extra service dilation per runnable thread
	// beyond the core count (scheduler/context-switch cost).
	ThrashPenalty float64
}

// DefaultSpec returns the paper's testbed: 10 quad-core nodes on 1 GbE.
func DefaultSpec() Spec {
	return Spec{
		Nodes:                  10,
		CoresPerNode:           4,
		LinkBandwidth:          125e6,
		LinkLatency:            100e-6,
		TransportOverheadBytes: 12000,
		SendOverhead:           15e-6,
		RecvOverhead:           450e-6,
		ThrashPenalty:          0.18,
	}
}

// Workload describes the data stream and the PCA cost model.
type Workload struct {
	// Dim is the tuple dimensionality d.
	Dim int
	// Components is p; the engine maintains p+1 SVD columns per update.
	Components int
	// CostBase and CostPerFlop parameterize the per-tuple engine cost:
	// seconds = CostBase + CostPerFlop·d·(p+1)². Defaults calibrated so a
	// 250-dim, p=5 update costs ≈1.35 ms — the paper's measured ~700
	// tuples/s/thread (Fig. 7). Re-calibrate with Calibrate.
	CostBase, CostPerFlop float64
	// SplitCost is the splitter CPU per tuple (fused pointer hand-off costs
	// far less; the simulator uses SplitCost/8 for fused edges).
	SplitCost float64
	// MergeCostFactor scales the per-tuple cost into the eigensystem-merge
	// cost (a d×(2k+1) SVD ≈ 4× the d×(k+1) one).
	MergeCostFactor float64
}

// DefaultWorkload returns the Figure 6 workload: 250 dimensions, p=5.
func DefaultWorkload() Workload {
	return Workload{
		Dim: 250, Components: 5,
		CostBase: 50e-6, CostPerFlop: 1.44e-7,
		SplitCost: 20e-6, MergeCostFactor: 4,
	}
}

// TupleBytes returns the wire payload of one observation.
func (w Workload) TupleBytes() float64 { return 8*float64(w.Dim) + 64 }

// SnapshotBytes returns the wire payload of one eigensystem snapshot.
func (w Workload) SnapshotBytes() float64 {
	k := float64(w.Components + 1)
	return 8*float64(w.Dim)*(k+1) + 256
}

// PCACost returns the modeled seconds per engine update.
func (w Workload) PCACost() float64 {
	k := float64(w.Components + 1)
	return w.CostBase + w.CostPerFlop*float64(w.Dim)*k*k
}

// Calibrate sets the cost model from two measured update times (seconds per
// observation) at two dimensionalities, holding Components fixed — feed it
// the BenchmarkEngineObserve results from the machine you care about.
func (w *Workload) Calibrate(d1 int, s1 float64, d2 int, s2 float64) error {
	if d1 == d2 {
		return errors.New("cluster: calibration needs two distinct dims")
	}
	k := float64(w.Components + 1)
	f1 := float64(d1) * k * k
	f2 := float64(d2) * k * k
	w.CostPerFlop = (s2 - s1) / (f2 - f1)
	w.CostBase = s1 - w.CostPerFlop*f1
	if w.CostPerFlop <= 0 || w.CostBase < 0 {
		return fmt.Errorf("cluster: calibration produced non-physical model (base %v, perflop %v)",
			w.CostBase, w.CostPerFlop)
	}
	return nil
}

// Config is one simulation scenario.
type Config struct {
	// Spec is the hardware (DefaultSpec when zero).
	Spec Spec
	// Workload is the stream (DefaultWorkload when zero).
	Workload Workload
	// Engines is the number of parallel PCA instances.
	Engines int
	// SingleNode places every engine (and the splitter) fused on node 0;
	// otherwise engines spread round-robin over all nodes and every tuple
	// to a non-zero node crosses the network. The splitter always lives on
	// node 0.
	SingleNode bool
	// SyncPeriod is the controller throttle in virtual seconds (paper:
	// 0.5); 0 disables synchronization.
	SyncPeriod float64
	// SyncStrategy selects the controller pattern (default ring, the
	// paper's Figure 3 configuration).
	SyncStrategy syncctl.Strategy
	// WindowN is the forgetting window N for the 1.5·N independence
	// criterion (paper: 5000). 0 means always allowed.
	WindowN float64
	// CreditWindow is the per-engine in-flight tuple allowance (default 4).
	CreditWindow int
	// Duration is the measured virtual time in seconds (default 30,
	// matching the paper's averaging window), after Warmup (default 5).
	Duration, Warmup float64
	// Seed drives the random split.
	Seed uint64
	// Chaos, when non-nil, injects failures into the simulated cluster.
	Chaos *ChaosSpec
}

// CrashEvent schedules one engine failure in virtual time.
type CrashEvent struct {
	// Engine is the index of the instance that fails.
	Engine int
	// At is the failure time in virtual seconds from simulation start.
	At float64
	// RecoverAt is when the engine rejoins (must be > At); 0 means it
	// stays down for the rest of the run.
	RecoverAt float64
}

// ChaosSpec describes deterministic fault injection for a simulation: a
// lossy interconnect and scheduled engine crashes. Like the split, every
// random choice is driven by the scenario seed.
type ChaosSpec struct {
	// DropRate is the probability that a tuple is lost on arrival at an
	// engine (merge snapshots are not subject to link drop).
	DropRate float64
	// Crashes lists scheduled engine failures.
	Crashes []CrashEvent
}

func (c *ChaosSpec) validate(engines int) error {
	if c.DropRate < 0 || c.DropRate >= 1 {
		return fmt.Errorf("cluster: chaos drop rate %v outside [0,1)", c.DropRate)
	}
	for _, ev := range c.Crashes {
		if ev.Engine < 0 || ev.Engine >= engines {
			return fmt.Errorf("cluster: chaos crash targets engine %d of %d", ev.Engine, engines)
		}
		if ev.At < 0 || (ev.RecoverAt != 0 && ev.RecoverAt <= ev.At) {
			return fmt.Errorf("cluster: chaos crash times At=%v RecoverAt=%v", ev.At, ev.RecoverAt)
		}
	}
	return nil
}

func (c *Config) validate() error {
	if c.Spec.Nodes == 0 {
		c.Spec = DefaultSpec()
	}
	if c.Workload.Dim == 0 {
		c.Workload = DefaultWorkload()
	}
	if c.Engines <= 0 {
		return errors.New("cluster: Engines must be positive")
	}
	if c.Spec.Nodes <= 0 || c.Spec.CoresPerNode <= 0 || c.Spec.LinkBandwidth <= 0 {
		return errors.New("cluster: invalid hardware spec")
	}
	if c.Workload.Dim <= 0 || c.Workload.Components <= 0 {
		return errors.New("cluster: invalid workload")
	}
	if c.CreditWindow <= 0 {
		c.CreditWindow = 4
	}
	if c.Duration <= 0 {
		c.Duration = 30
	}
	if c.Warmup < 0 {
		return errors.New("cluster: negative warmup")
	}
	if c.Warmup == 0 {
		c.Warmup = 5
	}
	if c.SyncPeriod < 0 || c.WindowN < 0 {
		return errors.New("cluster: negative sync parameters")
	}
	if c.Chaos != nil {
		if err := c.Chaos.validate(c.Engines); err != nil {
			return err
		}
	}
	return nil
}

// Stats is the outcome of a simulation.
type Stats struct {
	// Tuples is the number of observations completed inside the measured
	// window.
	Tuples int64
	// Duration is the measured virtual time.
	Duration float64
	// PerEngine counts measured completions by engine.
	PerEngine []int64
	// SyncsSent counts snapshot transfers that actually happened during
	// the measured window (one per receiver that passed the 1.5·N
	// criterion).
	SyncsSent int64
	// SyncsSkipped counts controller commands suppressed by the criterion.
	SyncsSkipped int64
	// WireBytes is the total bytes (payload + transport overhead) that
	// crossed the splitter NIC during measurement.
	WireBytes float64
	// TuplesDropped counts tuples lost to link drops or failed engines
	// over the whole run (warmup included).
	TuplesDropped int64
	// Crashes and Recoveries count injected engine failures and rejoins.
	Crashes, Recoveries int64
}

// Throughput returns measured tuples per virtual second.
func (s *Stats) Throughput() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Tuples) / s.Duration
}

// PerThread returns measured tuples per second per engine.
func (s *Stats) PerThread() float64 {
	if len(s.PerEngine) == 0 {
		return 0
	}
	return s.Throughput() / float64(len(s.PerEngine))
}
