package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestFramelifeGolden(t *testing.T) {
	runGolden(t, "framelife", "golden.test/framelife", []*Analyzer{Framelife})
}

func TestAtomicMixGolden(t *testing.T) {
	runGolden(t, "atomicmix", "golden.test/atomicmix", []*Analyzer{AtomicMix})
}

func TestBlockingLockGolden(t *testing.T) {
	runGolden(t, "blockinglock", "golden.test/blockinglock", []*Analyzer{BlockingLock})
}

func TestSPSCRoleGolden(t *testing.T) {
	runGolden(t, "spscrole", "golden.test/internal/wire", []*Analyzer{SPSCRole})
}

// TestSPSCRoleMatch checks the package gate: the same fixture loaded outside
// internal/wire produces no diagnostics — roles are a wire-layer contract.
func TestSPSCRoleMatch(t *testing.T) {
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "spscrole"), "golden.test/other")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{SPSCRole})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == "spscrole" {
			t.Errorf("spscrole fired outside internal/wire: %s", d)
		}
	}
}

func TestWireKindGolden(t *testing.T) {
	runGolden(t, "wirekind", "golden.test/internal/wire", []*Analyzer{WireKind})
}

// TestFramelifeAcceptsRecvPoolLending is the cross-analyzer contract from the
// issue: the sanctioned RecvPool lending pattern in internal/wire/codec.go —
// release-and-return on the decode error path, ownership handoff through the
// frame's Release closure on success — must pass framelife with no finding
// and no framelife suppression directive anywhere in the package.
func TestFramelifeAcceptsRecvPoolLending(t *testing.T) {
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	var wire *Package
	for _, p := range pkgs {
		if strings.HasSuffix(p.Path, "internal/wire") {
			wire = p
			break
		}
	}
	if wire == nil {
		t.Fatal("internal/wire not found by LoadAll")
	}
	diags, err := Run([]*Package{wire}, []*Analyzer{Framelife})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer != "framelife" {
			continue
		}
		if d.Suppressed {
			t.Errorf("internal/wire needs a framelife suppression; the lending pattern must be accepted structurally: %s", d)
			continue
		}
		t.Errorf("framelife rejects internal/wire: %s", d)
	}
	// The package must also not carry dormant framelife directives: the
	// lending pattern is sanctioned by the analyzer's flow rules, not by
	// ignore comments.
	idx, _ := collectDirectives(wire)
	for _, dirs := range idx {
		for _, dir := range dirs {
			if dir.analyzer == "framelife" {
				t.Errorf("unexpected //streamvet:ignore framelife directive at line %d", dir.line)
			}
		}
	}
}
