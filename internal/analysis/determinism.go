package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs are the packages whose computations must be
// node-identical: the data-driven synchronization protocol (§II-C of the
// paper) merges eigensystems under the assumption that every node computes
// the same numbers from the same rows, so nothing in the numeric core may
// depend on map iteration order, the wall clock, or a shared random source.
var deterministicPkgs = []string{
	"internal/core",
	"internal/eig",
	"internal/mat",
	"internal/robust",
}

// Determinism forbids the four stdlib constructs whose results vary across
// runs or nodes — map iteration, wall-clock reads, the global math/rand
// source, and select-with-default (which makes scheduler timing observable)
// — inside the numeric core packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid map iteration, time.Now, global math/rand and select-with-default " +
		"in the numeric core, where node-identical eigensystems are assumed",
	Match: func(pkgPath string) bool {
		for _, p := range deterministicPkgs {
			if strings.HasSuffix(pkgPath, p) {
				return true
			}
		}
		return false
	},
	Run: runDeterminism,
}

// randConstructors are math/rand functions that build a seedable private
// source — the deterministic way to use the package — as opposed to the
// package-level functions that consult the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic; iterate a sorted key slice instead")
					}
				}
			case *ast.SelectorExpr:
				xid, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := info.Uses[xid].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "time":
					switch n.Sel.Name {
					case "Now", "Since", "Until":
						pass.Reportf(n.Pos(), "wall-clock read time.%s is nondeterministic across nodes; take the timestamp as an argument", n.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					if fn, ok := info.Uses[n.Sel].(*types.Func); ok && !randConstructors[fn.Name()] {
						pass.Reportf(n.Pos(), "rand.%s uses the shared global source; use a seeded *rand.Rand instead", n.Sel.Name)
					}
				}
			case *ast.SelectStmt:
				for _, clause := range n.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
						pass.Reportf(cc.Pos(), "select with default makes message-arrival timing observable; block or poll deterministically")
					}
				}
			}
			return true
		})
	}
	return nil
}
