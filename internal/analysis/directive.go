package analysis

import (
	"strings"
)

// ignoreDirective is one parsed //streamvet:ignore comment. A directive
// suppresses matching diagnostics on its own line (end-of-line form) and on
// the line directly below it (standalone form), and must name the analyzer
// it silences and carry a non-empty reason — undocumented suppressions are
// themselves reported as findings.
type ignoreDirective struct {
	analyzer string
	reason   string
	line     int
}

const ignorePrefix = "streamvet:ignore"

// suppressionIndex maps file path → directives in that file.
type suppressionIndex map[string][]ignoreDirective

// collectDirectives parses every //streamvet:ignore comment in pkg,
// returning the suppression index and a diagnostic for each malformed
// directive.
func collectDirectives(pkg *Package) (suppressionIndex, []Diagnostic) {
	idx := make(suppressionIndex)
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), ignorePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "streamvet",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed directive: want //streamvet:ignore <analyzer> <reason>",
					})
					continue
				}
				idx[pos.Filename] = append(idx[pos.Filename], ignoreDirective{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					line:     pos.Line,
				})
			}
		}
	}
	return idx, malformed
}

func (idx suppressionIndex) merge(other suppressionIndex) {
	for file, dirs := range other {
		idx[file] = append(idx[file], dirs...)
	}
}

// apply marks every diagnostic matched by a directive as suppressed,
// recording the directive's reason.
func (idx suppressionIndex) apply(diags []Diagnostic) {
	for i := range diags {
		d := &diags[i]
		for _, dir := range idx[d.File] {
			if dir.analyzer != d.Analyzer {
				continue
			}
			if dir.line == d.Line || dir.line == d.Line-1 {
				d.Suppressed = true
				d.Reason = dir.reason
				break
			}
		}
	}
}
