package analysis

import (
	"fmt"
	"sort"
)

// Run executes every analyzer over every package it matches, applies the
// //streamvet:ignore suppression directives, and returns the diagnostics
// (suppressed ones included, flagged) sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	idx := make(suppressionIndex)
	for _, pkg := range pkgs {
		dirs, malformed := collectDirectives(pkg)
		idx.merge(dirs)
		diags = append(diags, malformed...)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	idx.apply(diags)
	sortDiagnostics(diags)
	return diags, nil
}

// Suppress applies the //streamvet:ignore directives found in pkgs to an
// externally produced diagnostic list (the escape cross-check uses it, whose
// findings come from compiler output rather than an analyzer pass).
func Suppress(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	idx := make(suppressionIndex)
	for _, pkg := range pkgs {
		dirs, _ := collectDirectives(pkg)
		idx.merge(dirs)
	}
	idx.apply(diags)
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
