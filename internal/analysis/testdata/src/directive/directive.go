// Package directive is a fixture for the //streamvet:ignore machinery:
// a well-formed suppression with a reason, and a reasonless directive that
// must itself be reported while leaving its finding unsuppressed.
// TestDirectives asserts on it programmatically (no want comments here,
// since a trailing comment would be parsed as part of the directive).
package directive

//streampca:noalloc
func suppressed(n int) []int {
	//streamvet:ignore noalloc fixture exercises the suppression path
	s := make([]int, n)
	return s
}

//streampca:noalloc
func reasonless(n int) []int {
	//streamvet:ignore noalloc
	s := make([]int, n)
	return s
}
