// Package stream is a golden fixture for the goroutine-lifecycle analyzer.
// It is loaded under the import path "golden.test/internal/stream" so the
// analyzer's package matcher treats it as the stream runtime.
package stream

import (
	"context"
	"sync"
)

type worker struct {
	wg   sync.WaitGroup
	stop chan struct{}
	out  chan int
}

func (w *worker) goodWaitGroup() {
	w.wg.Add(1)
	go func() { // tied: signals completion through the WaitGroup
		defer w.wg.Done()
		w.out <- 1
	}()
}

func (w *worker) goodStopChannel() {
	go func() { // tied: subscribes to the stop channel
		select {
		case <-w.stop:
		case w.out <- 1:
		}
	}()
}

func (w *worker) goodContext(ctx context.Context) {
	go func() { // tied: blocks on ctx.Done
		<-ctx.Done()
	}()
}

func (w *worker) goodClose() {
	go func() { // tied: closing the channel signals the supervisor
		defer close(w.out)
	}()
}

func (w *worker) goodNamedSpawn() {
	go w.loop() // resolved to loop, which ranges over a channel
}

func (w *worker) loop() {
	for v := range w.out {
		_ = v
	}
}

func (w *worker) badFireAndForget(v int) {
	go func() { // want "goroutine is not tied to a WaitGroup, stop channel, or context"
		w.out <- v
	}()
}

func (w *worker) badNamedSpawn() {
	go w.pump() // want "goroutine is not tied to a WaitGroup, stop channel, or context"
}

func (w *worker) pump() {
	w.out <- 1
}
