// Package noalloc is a golden fixture for the noalloc analyzer: every
// allocating construct it must flag inside a //streampca:noalloc function,
// and the constructs it must leave alone elsewhere.
package noalloc

import "fmt"

type point struct {
	x, y float64
}

func helper() {}

func takesAny(v any) { _ = v }

func vints(xs ...int) int { return len(xs) }

//streampca:noalloc
func builtins(n int) int {
	s := make([]int, n) // want "call to make allocates"
	p := new(int)       // want "call to new allocates"
	s = append(s, n)    // want "append may grow and reallocate"
	return len(s) + *p
}

//streampca:noalloc
func literals() float64 {
	xs := []float64{1, 2}  // want "slice literal allocates"
	m := map[int]int{1: 2} // want "map literal allocates"
	q := &point{1, 2}      // want "address of composite literal allocates"
	v := point{3, 4}       // by-value struct literal stays on the stack
	return xs[0] + float64(m[1]) + q.x + v.y
}

//streampca:noalloc
func control(ch chan int) {
	f := func() {} // want "function literal (closure) allocates"
	f()
	go helper() // want "go statement allocates a goroutine"
	<-ch
}

//streampca:noalloc
func strs(a, b string, bs []byte) int {
	c := a + b      // want "string concatenation allocates"
	s := string(bs) // want "conversion to string allocates"
	d := []byte(a)  // want "conversion of string to []byte allocates"
	return len(c) + len(s) + len(d)
}

//streampca:noalloc
func boxing(n int) any {
	takesAny(n)     // want "passing int as any boxes into an interface"
	_ = any(n)      // want "conversion of int to any boxes into an interface"
	_ = vints(1, 2) // want "variadic call allocates its argument slice"
	fmt.Sprint(n)   // want "call to fmt.Sprint allocates"
	return n        // want "returning int as any boxes into an interface"
}

// unannotated may allocate freely: the analyzer gates on the directive.
func unannotated(n int) []int {
	return append(make([]int, 0, n), n)
}
