// Package atomicmix is a golden fixture for the atomicmix analyzer: mixed
// atomic/plain field access and by-value copies of atomic-bearing structs.
package atomicmix

import "sync/atomic"

// stats mixes function-style atomics with plain access in the bad cases.
type stats struct {
	hits  int64
	total int64
}

func (s *stats) bump() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) badPlainRead() int64 {
	return s.hits // want "plain access to field hits"
}

func (s *stats) badPlainWrite() {
	s.hits = 0 // want "plain access to field hits"
}

func (s *stats) goodAtomicRead() int64 {
	return atomic.LoadInt64(&s.hits)
}

// total is only ever accessed plainly: no finding.
func (s *stats) plainOnly() int64 {
	s.total++
	return s.total
}

// counters holds method-style atomic values: copying it by value tears
// concurrent updates.
type counters struct {
	sent atomic.Int64
	recv atomic.Int64
}

type nested struct {
	c counters
}

func (c *counters) add() { c.sent.Add(1) }

func badValueReceiver(c counters) int64 { // want "parameter passes"
	return c.sent.Load()
}

func (c counters) badMethod() {} // want "receiver passes"

func badReturnByValue(c *counters) counters { // want "result passes"
	return *c // want "copies"
}

func badAssignCopy(c *counters) {
	snapshot := *c // want "copies"
	_ = snapshot
}

func badNestedCopy(n *nested, m *nested) {
	n.c = m.c // want "copies"
}

func badRangeCopy(cs []counters) int64 {
	var sum int64
	for _, c := range cs { // want "range copies"
		sum += c.sent.Load()
	}
	return sum
}

func goodConstruction() *counters {
	c := &counters{}
	c.add()
	return c
}

func goodZeroValue() {
	var c counters
	c.add()
}

func suppressedCopy(c *counters) {
	//streamvet:ignore atomicmix fixture exercises the suppression path
	snapshot := *c
	_ = snapshot
}
