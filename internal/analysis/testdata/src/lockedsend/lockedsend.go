// Package lockedsend is a golden fixture for the lockedsend analyzer:
// channel operations and blocking calls under a held mutex.
package lockedsend

import (
	"sync"
	"time"
)

type queue struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
}

func (q *queue) badSend(v int) {
	q.mu.Lock()
	q.ch <- v // want "channel send while q.mu is locked"
	q.mu.Unlock()
}

func (q *queue) badDeferredRecv() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want "channel receive while q.mu is locked"
}

func (q *queue) badWait() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.wg.Wait() // want "blocking call sync.WaitGroup.Wait while q.mu is locked"
}

func (q *queue) badSleep() {
	q.mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking call time.Sleep while q.mu is locked"
	q.mu.Unlock()
}

func (q *queue) badSelect() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want "blocking select while q.mu is locked"
	case v := <-q.ch:
		return v
	}
}

func (q *queue) badRange() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for v := range q.ch { // want "range over channel while q.mu is locked"
		_ = v
	}
}

func (q *queue) goodSendAfterUnlock(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v // lock released before the send: fine
}

func (q *queue) goodPoll() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // non-blocking thanks to default: fine
	case v := <-q.ch:
		return v, true
	default:
		return 0, false
	}
}

func (q *queue) goodFuncLit() func(int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return func(v int) {
		q.ch <- v // runs after return, when the lock is free: fine
	}
}

type table struct {
	rw sync.RWMutex
	ch chan int
}

func (t *table) badRLockedRecv() {
	t.rw.RLock()
	<-t.ch // want "channel receive while t.rw is locked"
	t.rw.RUnlock()
}
