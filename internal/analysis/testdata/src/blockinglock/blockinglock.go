// Package blockinglock is a golden fixture for the blockinglock analyzer:
// blocking I/O performed while a sync.Mutex/RWMutex is held.
package blockinglock

import (
	"bufio"
	"io"
	"net"
	"sync"
)

type edge struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
	bw   *bufio.Writer
	ch   chan int
	buf  []byte
}

func (e *edge) badWriteUnderLock(p []byte) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.conn.Write(p) // want "blocking call net.Write while e.mu is locked"
}

func (e *edge) badReadUnderLock() error {
	e.mu.Lock()
	_, err := e.conn.Read(e.buf) // want "blocking call net.Read while e.mu is locked"
	e.mu.Unlock()
	return err
}

func (e *edge) badReadFullUnderRLock(r io.Reader) error {
	e.rw.RLock()
	defer e.rw.RUnlock()
	_, err := io.ReadFull(r, e.buf) // want "blocking call io.ReadFull while e.rw is locked"
	return err
}

func (e *edge) badFlushUnderLock() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bw.Flush() // want "blocking call bufio.Flush while e.mu is locked"
}

func badDialUnderLock(mu *sync.Mutex, addr string) (net.Conn, error) {
	mu.Lock()
	defer mu.Unlock()
	return net.Dial("tcp", addr) // want "blocking call net.Dial while mu is locked"
}

// goodWriteAfterUnlock snapshots under the lock and performs I/O outside it —
// the pattern the wire layer uses.
func (e *edge) goodWriteAfterUnlock(p []byte) (int, error) {
	e.mu.Lock()
	buf := append([]byte(nil), p...)
	e.mu.Unlock()
	return e.conn.Write(buf)
}

// goodChanUnderLock: channel operations are lockedsend's domain, not this
// analyzer's; no blockinglock finding here.
func (e *edge) goodChanUnderLock(v int) {
	e.mu.Lock()
	e.ch <- v
	e.mu.Unlock()
}

// goodLitIndependent: a function literal's call time is unknown, so the held
// set does not leak into it.
func (e *edge) goodLitIndependent() func() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return func() (int, error) { return e.conn.Write(e.buf) }
}

func (e *edge) suppressedWrite(p []byte) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	//streamvet:ignore blockinglock fixture exercises the suppression path
	return e.conn.Write(p)
}
