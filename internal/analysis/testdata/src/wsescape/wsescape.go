// Package wsescape is a golden fixture for the workspace-escape analyzer:
// scratch memory from workspace types and sync.Pool must not outlive the
// function that obtained it.
package wsescape

import "sync"

type scratchWorkspace struct {
	buf []float64
	sum float64
}

type engine struct {
	ws   *scratchWorkspace
	keep []float64
	out  chan []float64
}

func (e *engine) badReturn() []float64 {
	b := e.ws.buf
	return b // want "must not be returned"
}

func (e *engine) badStore() {
	e.keep = e.ws.buf // want "must not be stored into a struct field"
}

func (e *engine) badSend() {
	e.out <- e.ws.buf // want "must not be sent on a channel"
}

type wsPool struct {
	pool sync.Pool
}

func (p *wsPool) badPoolReturn() []float64 {
	b := p.pool.Get().([]float64)
	return b // want "must not be returned"
}

// accumulate sees the workspace through its own parameter — the documented
// lending pattern: the caller owns ws and its lifetime, so field reads do
// not taint.
func accumulate(ws *scratchWorkspace, xs []float64) float64 {
	buf := ws.buf
	total := 0.0
	for i, x := range xs {
		buf[i] = x
		total += x
	}
	return total // scalar derived from scratch: fine
}

// scalarRead proves scalars never taint even through a non-parameter
// workspace.
func (e *engine) scalarRead() float64 {
	return e.ws.sum // fine: a float cannot re-expose the buffer
}

// newScratch declares a workspace-typed result, so returning workspace
// memory is its purpose (the constructor/lender exemption).
func newScratch(n int) *scratchWorkspace {
	return &scratchWorkspace{buf: make([]float64, n)}
}

func (p *wsPool) lend() *scratchWorkspace {
	return p.pool.Get().(*scratchWorkspace) // fine: declared lender
}
