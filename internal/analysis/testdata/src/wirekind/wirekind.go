// Package wire is a golden fixture for the wirekind analyzer: exhaustiveness
// of switches over the wire message Kind type.
package wire

type Kind uint8

const (
	KindHello Kind = iota + 1
	KindFrame
	KindEOS
)

func badMissing(k Kind) int {
	switch k { // want "does not handle KindEOS"
	case KindHello:
		return 1
	case KindFrame:
		return 2
	}
	return 0
}

// badDefaultOnly shows that a default clause does not excuse missing kinds:
// the default is for hostile input, not for kinds the build knows about.
func badDefaultOnly(k Kind) int {
	switch k { // want "does not handle KindFrame, KindEOS"
	case KindHello:
		return 1
	default:
		return 0
	}
}

func goodExhaustive(k Kind) int {
	switch k {
	case KindHello:
		return 1
	case KindFrame:
		return 2
	case KindEOS:
		return 3
	default:
		return 0
	}
}

func goodMultiValueCase(k Kind) bool {
	switch k {
	case KindHello, KindFrame, KindEOS:
		return true
	}
	return false
}

func suppressedPartial(k Kind) bool {
	//streamvet:ignore wirekind fixture exercises the suppression path
	switch k {
	case KindHello:
		return true
	}
	return false
}

// otherSwitch is over a plain int: not this analyzer's concern.
func otherSwitch(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}
