// Package wire is a golden fixture for the spscrole analyzer: declared
// producer/consumer roles on SPSC ring call graphs.
package wire

type spscRing struct {
	buf []int
}

// push hands one element to the ring.
//
//streamvet:spsc producer
func (r *spscRing) push(v int) { r.buf = append(r.buf, v) }

// pop takes one element from the ring.
//
//streamvet:spsc consumer
func (r *spscRing) pop() (int, bool) {
	if len(r.buf) == 0 {
		return 0, false
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v, true
}

//streamvet:spsc consumer
func (r *spscRing) shutdown() { r.buf = nil }

type edge struct {
	ring *spscRing
}

// Process runs on the producer goroutine.
//
//streamvet:spsc producer
func (e *edge) Process(v int) {
	e.ring.push(v)
	e.stage(v)
}

// stage inherits the producer role from Process through the ordinary call.
func (e *edge) stage(v int) {
	e.ring.push(v + 1)
}

//streamvet:spsc consumer
func (e *edge) drain() {
	for {
		if _, ok := e.ring.pop(); !ok {
			return
		}
	}
}

//streamvet:spsc consumer
func (e *edge) badCrossRole(v int) {
	e.ring.push(v) // want "runs on the consumer goroutine"
}

func (e *edge) badNoRole() {
	e.ring.shutdown() // want "no declared or inherited spsc role"
}

// mixedHelper is reachable from both sides, so its ring access cannot be
// pinned to one goroutine.
func (e *edge) mixedHelper() {
	e.ring.push(0) // want "reachable from both producer and consumer"
}

//streamvet:spsc producer
func (e *edge) fromProducer() { e.mixedHelper() }

//streamvet:spsc consumer
func (e *edge) fromConsumer() { e.mixedHelper() }

// start spawns goroutines: a role directive on the line above a go statement
// assigns the spawned literal its role; spawning an annotated function is the
// annotation's purpose and is never a finding.
func (e *edge) start() {
	//streamvet:spsc consumer
	go func() {
		e.ring.pop()
	}()
	go func() {
		e.ring.push(1) // want "no declared or inherited spsc role"
	}()
	go e.drain()
}

//streamvet:spsc producer
func (e *edge) suppressedPop() {
	//streamvet:ignore spscrole fixture exercises the suppression path
	e.ring.pop()
}
