// Package core is a golden fixture for the determinism analyzer. It is
// loaded under the import path "golden.test/internal/core" so the analyzer's
// package matcher treats it as the numeric core.
package core

import (
	"math/rand"
	"time"
)

func mapOrder(m map[string]int) int {
	total := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		total += v
	}
	return total
}

func sliceOrder(xs []int) int {
	total := 0
	for _, v := range xs { // slice iteration is ordered: fine
		total += v
	}
	return total
}

func clock() int64 {
	t := time.Now() // want "wall-clock read time.Now is nondeterministic"
	return t.UnixNano()
}

func globalNoise() float64 {
	return rand.Float64() // want "rand.Float64 uses the shared global source"
}

func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // constructors build a private source: fine
}

func privateNoise(r *rand.Rand) float64 {
	return r.Float64() // method on a seeded source: fine
}

func poll(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default: // want "select with default makes message-arrival timing observable"
		return 0
	}
}
