// Package framelife is a golden fixture for the framelife analyzer: pooled
// frame/store lifetimes — release exactly once per path, no use after
// release, no retention in long-lived structures.
package framelife

import (
	"sync"

	"streampca/internal/stream"
)

// recvStore mirrors the wire layer's pooled backing store: the *store naming
// convention makes it a tracked pooled type.
type recvStore struct {
	buf []byte
}

type pool struct {
	p sync.Pool
}

func (p *pool) get() *recvStore       { return p.p.Get().(*recvStore) }
func (p *pool) put(rs *recvStore)     { p.p.Put(rs) }
func (p *pool) handle(f stream.Frame) {}

type sink struct {
	kept    stream.Frame
	stashed map[int]stream.Frame
	n       int
}

func consume(f stream.Frame) int { return len(f.Tuples) }

// badDoubleRelease releases the same frame twice on one path.
func badDoubleRelease(f stream.Frame) {
	f.Release()
	f.Release() // want "released twice on this path"
}

// badUseAfterRelease touches the payload after handing storage back.
func badUseAfterRelease(f stream.Frame) int {
	f.Release()
	return len(f.Tuples) // want "use of f after it was released"
}

// badBranchDouble releases on one branch, then again unconditionally: the
// join carries may-released into the second call.
func badBranchDouble(f stream.Frame, err bool) {
	if err {
		f.Release()
	}
	f.Release() // want "released twice on this path"
}

// goodBranchRelease releases on the error path and returns; the surviving
// path still owns the frame. This is the lending shape codec.go uses.
func goodBranchRelease(f stream.Frame, err bool) int {
	if err {
		f.Release()
		return 0
	}
	n := consume(f)
	f.Release()
	return n
}

// badLoopRelease releases a loop-outer frame every iteration.
func badLoopRelease(f stream.Frame, rounds []int) {
	for range rounds {
		f.Release() // want "released twice on this path"
	}
}

// badRetainField parks a pooled frame in a long-lived struct.
func badRetainField(s *sink, f stream.Frame) {
	s.kept = f // want "must not be retained in a struct field"
	f.Release()
}

// badRetainMap parks a pooled frame in a map.
func badRetainMap(s *sink, f stream.Frame) {
	s.stashed[s.n] = f // want "must not be retained in a map"
}

// badStoreDoublePut returns the same store to the pool twice.
func badStoreDoublePut(p *pool, rs *recvStore) {
	p.put(rs)
	p.put(rs) // want "released twice on this path"
}

// badStoreUseAfterPut reads a store's buffer after it went back to the pool.
func badStoreUseAfterPut(p *pool, rs *recvStore) int {
	p.put(rs)
	return len(rs.buf) // want "use of rs after it was released"
}

// goodLendViaClosure hands the store off through the frame's Release hook:
// the literal is a separate lifetime, so the put inside it is not a release
// on this function's path.
func goodLendViaClosure(p *pool, rs *recvStore) stream.Frame {
	f := stream.Frame{Release: func() { p.put(rs) }}
	return f
}

// goodGuardIdiom reads the Release field as a nil guard; field reads of
// Release are lifecycle management, not payload use.
func goodGuardIdiom(f stream.Frame) {
	if f.Release != nil {
		f.Release()
	}
}

// goodDeferRelease releases exactly once via defer.
func goodDeferRelease(f stream.Frame) int {
	defer f.Release()
	return consume(f)
}

// badDeferAfterRelease defers a release over a path that already released.
func badDeferAfterRelease(f stream.Frame, err bool) { // want "released by a defer but may already be released"
	defer f.Release()
	if err {
		f.Release()
	}
}

// suppressedDouble shows the escape hatch: a reasoned directive silences the
// finding.
func suppressedDouble(f stream.Frame) {
	f.Release()
	//streamvet:ignore framelife fixture exercises the suppression path
	f.Release()
}

// goodReassign gives the variable a fresh frame between releases.
func goodReassign(f stream.Frame, next func() stream.Frame) {
	f.Release()
	f = next()
	f.Release()
}
