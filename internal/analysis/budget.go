package analysis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements the suppression budget: the count of
// //streamvet:ignore directives per analyzer is checked into
// internal/analysis/suppressions.txt, and the lint gate fails when the live
// count exceeds the baseline — so suppressions can only grow through an
// explicit, reviewable diff to the baseline file. It also implements the
// unused-directive audit: a directive that no longer silences any finding is
// dead weight that hides future findings on its line, and is reported.

// UnusedDirective identifies a //streamvet:ignore comment that suppressed
// nothing in a diagnostic set.
type UnusedDirective struct {
	File     string
	Line     int
	Analyzer string
}

// Diagnostic renders the unused directive as an unsuppressible finding.
func (u UnusedDirective) Diagnostic() Diagnostic {
	return Diagnostic{
		Analyzer: "streamvet",
		File:     u.File,
		Line:     u.Line,
		Message: fmt.Sprintf("unused //streamvet:ignore %s directive: no %s finding on this or the next line; delete it",
			u.Analyzer, u.Analyzer),
	}
}

// FindUnusedDirectives returns every well-formed directive in pkgs that does
// not suppress at least one diagnostic in diags. diags must be the complete
// diagnostic set for the directives being audited: auditing noalloc
// directives requires the escape cross-check's findings too, since several
// noalloc suppressions target compiler-level escapes with no AST-level twin.
func FindUnusedDirectives(pkgs []*Package, diags []Diagnostic) []UnusedDirective {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	used := make(map[key]bool)
	for _, d := range diags {
		if !d.Suppressed {
			continue
		}
		// Mark both lines a directive could sit on for this diagnostic; the
		// directive index below resolves which one exists.
		used[key{d.File, d.Line, d.Analyzer}] = true
		used[key{d.File, d.Line - 1, d.Analyzer}] = true
	}
	var unused []UnusedDirective
	for _, pkg := range pkgs {
		idx, _ := collectDirectives(pkg)
		for file, dirs := range idx {
			for _, dir := range dirs {
				if !used[key{file, dir.line, dir.analyzer}] {
					unused = append(unused, UnusedDirective{File: file, Line: dir.line, Analyzer: dir.analyzer})
				}
			}
		}
	}
	sort.Slice(unused, func(i, j int) bool {
		if unused[i].File != unused[j].File {
			return unused[i].File < unused[j].File
		}
		return unused[i].Line < unused[j].Line
	})
	return unused
}

// DirectiveCounts tallies well-formed //streamvet:ignore directives per
// analyzer name across pkgs.
func DirectiveCounts(pkgs []*Package) map[string]int {
	counts := make(map[string]int)
	for _, pkg := range pkgs {
		idx, _ := collectDirectives(pkg)
		for _, dirs := range idx {
			for _, dir := range dirs {
				counts[dir.analyzer]++
			}
		}
	}
	return counts
}

// FormatDirectiveCounts renders counts one "analyzer count" pair per line,
// sorted — the same shape the baseline file uses.
func FormatDirectiveCounts(counts map[string]int) string {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s %d\n", name, counts[name])
	}
	return b.String()
}

// ParseSuppressionBudget reads a baseline file: one "analyzer count" pair
// per line, #-comments and blank lines ignored.
func ParseSuppressionBudget(data []byte) (map[string]int, error) {
	budget := make(map[string]int)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("analysis: suppression budget line %d: want \"analyzer count\", got %q", i+1, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("analysis: suppression budget line %d: bad count %q", i+1, fields[1])
		}
		budget[fields[0]] = n
	}
	return budget, nil
}

// CheckSuppressionBudget compares live directive counts against the
// baseline, returning one violation message per analyzer over budget. An
// analyzer absent from the baseline has budget zero.
func CheckSuppressionBudget(live, budget map[string]int) []string {
	names := make([]string, 0, len(live))
	for name := range live {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		if live[name] > budget[name] {
			violations = append(violations, fmt.Sprintf(
				"%s: %d //streamvet:ignore directives, budget is %d (grow internal/analysis/suppressions.txt explicitly if this is intended)",
				name, live[name], budget[name]))
		}
	}
	return violations
}
