package analysis

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// moduleRoot is the repository root relative to this package's directory,
// where the tests run.
const moduleRoot = "../.."

// collectWants parses the fixture's `// want "substring"` comments into a
// (file, line) → expected-substring index.
func collectWants(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				substr, err := strconv.Unquote(strings.TrimSpace(rest))
				if err != nil {
					t.Fatalf("%s: malformed want comment %q: %v",
						pkg.Fset.Position(c.Pos()), c.Text, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], substr)
			}
		}
	}
	return wants
}

// runGolden loads the fixture package in testdata/src/<dir> under the given
// import path, runs the analyzers over it, and requires the unsuppressed
// diagnostics to match the fixture's want comments exactly — every
// diagnostic wanted, every want diagnosed. Matching is by file, line, and
// message substring.
func runGolden(t *testing.T, dir, importPath string, analyzers []*Analyzer) {
	t.Helper()
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	for _, d := range Unsuppressed(diags) {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		matched := -1
		for i, w := range wants[key] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
	}
	for key, rest := range wants {
		for _, w := range rest {
			t.Errorf("%s: want %q, got no diagnostic", key, w)
		}
	}
}

func TestNoAllocGolden(t *testing.T) {
	runGolden(t, "noalloc", "golden.test/noalloc", []*Analyzer{NoAlloc})
}

func TestDeterminismGolden(t *testing.T) {
	runGolden(t, "determinism", "golden.test/internal/core", []*Analyzer{Determinism})
}

// TestDeterminismMatch checks the package gate: the same fixture loaded
// outside the numeric-core import paths must produce no diagnostics.
func TestDeterminismMatch(t *testing.T) {
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "determinism"), "golden.test/other")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{Determinism})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("determinism fired outside its matched packages: %s", d)
	}
}

func TestLockedSendGolden(t *testing.T) {
	runGolden(t, "lockedsend", "golden.test/lockedsend", []*Analyzer{LockedSend})
}

func TestGoroutineLifecycleGolden(t *testing.T) {
	runGolden(t, "goroutine", "golden.test/internal/stream", []*Analyzer{GoroutineLifecycle})
}

func TestWorkspaceEscapeGolden(t *testing.T) {
	runGolden(t, "wsescape", "golden.test/wsescape", []*Analyzer{WorkspaceEscape})
}

// TestDirectives exercises the //streamvet:ignore machinery on its fixture:
// a reasoned directive suppresses and records its reason; a reasonless
// directive is itself reported and suppresses nothing.
func TestDirectives(t *testing.T) {
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "directive"), "golden.test/directive")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{NoAlloc})
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, unsuppressedMake, malformed int
	for _, d := range diags {
		switch {
		case d.Analyzer == "noalloc" && d.Suppressed:
			suppressed++
			if d.Reason != "fixture exercises the suppression path" {
				t.Errorf("suppressed diagnostic lost its reason: %+v", d)
			}
		case d.Analyzer == "noalloc":
			unsuppressedMake++
		case d.Analyzer == "streamvet":
			malformed++
			if !strings.Contains(d.Message, "malformed directive") {
				t.Errorf("unexpected streamvet diagnostic: %s", d)
			}
			if d.Suppressed {
				t.Errorf("malformed-directive diagnostic must not be suppressible: %+v", d)
			}
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed noalloc findings = %d, want 1", suppressed)
	}
	if unsuppressedMake != 1 {
		t.Errorf("unsuppressed noalloc findings = %d, want 1 (reasonless directive must not suppress)", unsuppressedMake)
	}
	if malformed != 1 {
		t.Errorf("malformed-directive findings = %d, want 1", malformed)
	}
}
