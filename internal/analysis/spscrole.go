package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SPSCRole enforces the single-producer/single-consumer discipline of the
// lock-free rings in internal/wire. The rings are correct only while every
// push comes from exactly one goroutine and every pop/shutdown from exactly
// one other; a call from the wrong side is a data race the ring's Dekker
// handshake cannot survive, and it corrupts frames silently instead of
// crashing.
//
// Roles are declared with a //streamvet:spsc producer|consumer directive in
// a function's doc comment (or on the line directly above a `go func(){...}`
// spawn). A declared role propagates through ordinary intra-package calls —
// everything a consumer-annotated function calls synchronously also runs on
// the consumer goroutine — but never across `go` statements, which start a
// new goroutine with no inherited role. Each call to a role-annotated
// function is then checked against the caller's effective role set: calls
// from the opposite role, from a context reachable by both roles, or from a
// context with no role at all are reported. Spawning an annotated function
// (`go e.sendLoop()`) is exempt: the annotation describes the goroutine the
// spawn creates.
var SPSCRole = &Analyzer{
	Name: "spscrole",
	Doc: "enforce //streamvet:spsc producer/consumer role declarations on SPSC " +
		"ring call graphs: ring methods must only be reached from their own side",
	Match: func(pkgPath string) bool { return strings.HasSuffix(pkgPath, "internal/wire") },
	Run:   runSPSCRole,
}

const spscPrefix = "streamvet:spsc"

// spscCtx is one goroutine-local analysis context: a declared function, or a
// function literal spawned by a go statement (which severs role inheritance).
type spscCtx struct {
	label    string
	explicit string          // declared role, "" if none
	roles    map[string]bool // effective role set after propagation
}

func (c *spscCtx) addRole(r string) bool {
	if c.roles[r] {
		return false
	}
	c.roles[r] = true
	return true
}

// spscCall is one ordinary (same-goroutine) call edge.
type spscCall struct {
	caller *spscCtx
	callee *types.Func
	pos    token.Pos
}

func runSPSCRole(pass *Pass) error {
	sp := &spscScan{
		pass:  pass,
		info:  pass.Pkg.Info,
		fset:  pass.Pkg.Fset,
		ctxOf: make(map[*types.Func]*spscCtx),
	}
	sp.collectLineRoles()

	// Pass 1: register a context per declared function, with its role.
	var decls []*ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := sp.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ctx := &spscCtx{label: fd.Name.Name, roles: make(map[string]bool)}
			if role, pos, ok := sp.declRole(fd); ok {
				if role != "producer" && role != "consumer" {
					pass.Reportf(pos, "malformed directive: want //%s producer|consumer, got %q", spscPrefix, role)
				} else {
					ctx.explicit = role
					ctx.roles[role] = true
				}
			}
			sp.ctxOf[fn] = ctx
			decls = append(decls, fd)
		}
	}

	// Pass 2: walk bodies, collecting same-goroutine call edges and creating
	// severed contexts for go-spawned function literals.
	for _, fd := range decls {
		fn := sp.info.Defs[fd.Name].(*types.Func)
		sp.walk(fd.Body, sp.ctxOf[fn])
	}

	// Pass 3: propagate roles caller→callee over ordinary calls to fixpoint.
	// Explicitly annotated callees keep their declared role: the annotation
	// is the contract being checked, not a hint to be widened.
	for changed := true; changed; {
		changed = false
		for _, c := range sp.calls {
			callee := sp.ctxOf[c.callee]
			if callee == nil || callee.explicit != "" {
				continue
			}
			for r := range c.caller.roles {
				if callee.addRole(r) {
					changed = true
				}
			}
		}
	}

	// Pass 4: check every call to an explicitly annotated function.
	for _, c := range sp.calls {
		callee := sp.ctxOf[c.callee]
		if callee == nil || callee.explicit == "" {
			continue
		}
		want := callee.explicit
		s := c.caller.roles
		switch {
		case len(s) == 0:
			pass.Reportf(c.pos, "call to %s (%s side) from %s, which has no declared or inherited spsc role",
				c.callee.Name(), want, c.caller.label)
		case len(s) > 1:
			pass.Reportf(c.pos, "call to %s (%s side) from %s, which is reachable from both producer and consumer goroutines",
				c.callee.Name(), want, c.caller.label)
		case !s[want]:
			pass.Reportf(c.pos, "call to %s (%s side) from %s, which runs on the %s goroutine",
				c.callee.Name(), want, c.caller.label, otherRole(want))
		}
	}
	return nil
}

func otherRole(r string) string {
	if r == "producer" {
		return "consumer"
	}
	return "producer"
}

type spscScan struct {
	pass      *Pass
	info      *types.Info
	fset      *token.FileSet
	ctxOf     map[*types.Func]*spscCtx
	calls     []spscCall
	lineRoles map[string]map[int]string // file → line → role for go-lit spawns
}

// collectLineRoles indexes every //streamvet:spsc comment by position so a
// directive on the line above a `go func(){...}` statement can assign the
// spawned goroutine a role.
func (sp *spscScan) collectLineRoles() {
	sp.lineRoles = make(map[string]map[int]string)
	for _, f := range sp.pass.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				role, ok := spscCommentRole(c.Text)
				if !ok {
					continue
				}
				pos := sp.fset.Position(c.Pos())
				m := sp.lineRoles[pos.Filename]
				if m == nil {
					m = make(map[int]string)
					sp.lineRoles[pos.Filename] = m
				}
				m[pos.Line] = role
			}
		}
	}
}

func spscCommentRole(text string) (string, bool) {
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), spscPrefix)
	if !ok {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", true
	}
	return fields[0], true
}

// declRole extracts the spsc directive from a function's doc comment.
func (sp *spscScan) declRole(fd *ast.FuncDecl) (role string, pos token.Pos, found bool) {
	if fd.Doc == nil {
		return "", token.NoPos, false
	}
	for _, c := range fd.Doc.List {
		if r, ok := spscCommentRole(c.Text); ok {
			return r, c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// walk records call edges within ctx. Function literals run in the enclosing
// goroutine and share ctx — except a literal spawned directly by a go
// statement, which gets a fresh context (role from a preceding-line
// directive, if any).
func (sp *spscScan) walk(n ast.Node, ctx *spscCtx) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				sp.walk(a, ctx)
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				spawned := &spscCtx{
					label: "goroutine spawned at " + sp.fset.Position(n.Pos()).String(),
					roles: make(map[string]bool),
				}
				pos := sp.fset.Position(n.Pos())
				if role := sp.lineRoles[pos.Filename][pos.Line-1]; role == "producer" || role == "consumer" {
					spawned.explicit = role
					spawned.roles[role] = true
				}
				sp.walk(lit.Body, spawned)
			}
			// Spawning a named annotated function starts the goroutine the
			// annotation describes; no edge.
			return false
		case *ast.FuncLit:
			sp.walk(n.Body, ctx)
			return false
		case *ast.CallExpr:
			if fn := sp.calleeFunc(n); fn != nil {
				sp.calls = append(sp.calls, spscCall{caller: ctx, callee: fn, pos: n.Pos()})
			}
		}
		return true
	})
}

// calleeFunc resolves a direct call to a function or method declared in this
// package.
func (sp *spscScan) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := sp.info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg() != sp.pass.Pkg.Types {
		return nil
	}
	return fn
}
