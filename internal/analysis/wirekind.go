package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// WireKind enforces exhaustiveness of switch statements over the wire
// protocol's message Kind type. Decoders and routers that switch on Kind are
// the protocol's dispatch points; when a new kind is added (KindSnapshotDelta
// in PR 8 was the ninth), a switch that silently falls through to a default —
// or worse, to nothing — drops frames without an error, the one failure mode
// a loss-free transport must not have. Every constant of the Kind type must
// appear as a case, even when a default exists: the default is for hostile
// input, not for kinds the build already knows about. A deliberately partial
// switch takes a //streamvet:ignore with its justification.
var WireKind = &Analyzer{
	Name: "wirekind",
	Doc:  "require switches over the wire message Kind type to enumerate every Kind constant",
	Run:  runWireKind,
}

// isWireKindType reports whether t is the named type Kind declared in the
// wire package.
func isWireKindType(t types.Type) (*types.Named, bool) {
	n, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := n.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), "internal/wire") {
		return nil, false
	}
	return n, true
}

// kindConstants returns every package-level constant of the Kind type,
// ordered by value.
func kindConstants(n *types.Named) []*types.Const {
	scope := n.Obj().Pkg().Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), n) {
			continue
		}
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool {
		vi, _ := constant.Int64Val(consts[i].Val())
		vj, _ := constant.Int64Val(consts[j].Val())
		return vi < vj
	})
	return consts
}

func runWireKind(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			sw, ok := node.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := info.TypeOf(sw.Tag)
			if t == nil {
				return true
			}
			named, ok := isWireKindType(t)
			if !ok {
				return true
			}
			covered := make(map[string]bool)
			for _, clause := range sw.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					var id *ast.Ident
					switch e := ast.Unparen(e).(type) {
					case *ast.Ident:
						id = e
					case *ast.SelectorExpr:
						id = e.Sel
					}
					if id == nil {
						continue
					}
					if c, ok := info.Uses[id].(*types.Const); ok {
						covered[c.Name()] = true
					}
				}
			}
			var missing []string
			for _, c := range kindConstants(named) {
				if !covered[c.Name()] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch over %s does not handle %s; every Kind needs a case even when a default exists",
					t, strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}
