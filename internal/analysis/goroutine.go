package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lifecyclePkgs are the packages whose goroutines must be reclaimable: the
// stream runtime and the pipeline supervisor restart failed operators
// (Revive) and tear whole graphs down on cancellation, which only works when
// every spawned goroutine is observably tied to a completion mechanism.
var lifecyclePkgs = []string{
	"internal/stream",
	"internal/pipeline",
	"internal/ingest",
	"internal/wire",
	"internal/mat", // the kernel worker pool's parked goroutines (Pool.Close)
}

// GoroutineLifecycle requires every go statement in the stream/pipeline
// layers to be tied to a WaitGroup, a stop/done channel, or a context: the
// spawned body (or, for `go f()` calls, f's body when it is resolvable
// within the package) must contain a WaitGroup Done/Wait, a ctx.Done
// subscription, a channel receive/range/close, or a blocking select —
// otherwise Revive and shutdown can leak the worker forever.
var GoroutineLifecycle = &Analyzer{
	Name: "goroutine-lifecycle",
	Doc: "require every go statement in the stream, pipeline, ingest, wire and " +
		"mat layers to be tied to a WaitGroup, stop channel, or context",
	Match: func(pkgPath string) bool {
		for _, p := range lifecyclePkgs {
			if strings.HasSuffix(pkgPath, p) {
				return true
			}
		}
		return false
	},
	Run: runGoroutineLifecycle,
}

func runGoroutineLifecycle(pass *Pass) error {
	info := pass.Pkg.Info
	// Index the package's function declarations so `go f()` and
	// `go recv.m()` spawns can be resolved to their bodies.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			case *ast.Ident:
				if fn, ok := info.Uses[fun].(*types.Func); ok {
					if fd := decls[fn]; fd != nil {
						body = fd.Body
					}
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
					if fd := decls[fn]; fd != nil {
						body = fd.Body
					}
				}
			}
			if body == nil || !lifecycleTied(info, body) {
				pass.Reportf(gs.Pos(), "goroutine is not tied to a WaitGroup, stop channel, or context; Revive/shutdown can leak it")
			}
			return true
		})
	}
	return nil
}

// lifecycleTied reports whether a goroutine body contains any construct that
// ties its lifetime to an external completion signal.
func lifecycleTied(info *types.Info, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				// close(ch): ending a done channel is itself a completion
				// signal to the goroutine's supervisor.
				if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" {
					tied = true
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
					switch fn.FullName() {
					case "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait",
						"(context.Context).Done", "(context.Context).Err":
						tied = true
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				tied = true // receives, including <-ctx.Done() and stop channels
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					tied = true // terminates when the producer closes the channel
				}
			}
		}
		return !tied
	})
	return tied
}
