package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("streampca/internal/core").
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	// Info is the loader-wide type information map, shared by every package
	// and every analyzer so the tree is type-checked exactly once.
	Info *types.Info
	Fset *token.FileSet
}

// Loader parses and type-checks the repository's packages from source. Module
// -local imports are resolved by recursively type-checking their sources;
// standard-library imports are resolved from the gc toolchain's export data
// (located with `go list -export`, read by go/importer), which keeps the
// loader stdlib-only while avoiding a full source type-check of the standard
// library.
type Loader struct {
	Fset *token.FileSet

	root    string
	modPath string
	info    *types.Info
	pkgs    map[string]*Package
	loading map[string]bool
	exports map[string]string
	gc      types.Importer
	primed  bool
}

// NewLoader returns a loader rooted at the module directory root (the
// directory containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		root:    abs,
		modPath: modPath,
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		},
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		exports: make(map[string]string),
	}
	l.gc = importer.ForCompiler(fset, "gc", l.lookupExport)
	return l, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// ModulePath returns the module's import-path prefix.
func (l *Loader) ModulePath() string { return l.modPath }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadAll parses and type-checks every package under the module root
// (skipping testdata, vendor and hidden directories), returning them sorted
// by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. It exists for golden-file tests, whose fixture packages live
// in testdata (invisible to LoadAll) but need a real import path so that
// analyzer Match functions see them as the package they stand in for.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.check(importPath, abs)
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true, nil
		}
	}
	return false, nil
}

// load type-checks the module-local package with the given import path,
// memoized across the loader.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	return l.check(path, dir)
}

func (l *Loader) check(path, dir string) (*Package, error) {
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source in %s", dir)
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, l.info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: l.info, Fset: l.Fset}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-local packages are type-checked
// from source, everything else comes from gc export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.Import(path)
}

// lookupExport streams the gc export data for one dependency import path,
// locating it through the go command's build cache. The first call primes the
// cache with every dependency of the repo in one `go list` invocation;
// later misses (e.g. a testdata fixture importing a package the repo itself
// does not) resolve individually.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	if f, ok := l.exports[path]; ok {
		return os.Open(f)
	}
	if !l.primed {
		l.primed = true
		if err := l.primeExports("./..."); err != nil {
			return nil, err
		}
		if f, ok := l.exports[path]; ok {
			return os.Open(f)
		}
	}
	if err := l.primeExports(path); err != nil {
		return nil, err
	}
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no export data for %q", path)
	}
	return os.Open(f)
}

func (l *Loader) primeExports(pattern string) error {
	cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", pattern)
	cmd.Dir = l.root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("analysis: go list -export %s: %v\n%s", pattern, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			break
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}
