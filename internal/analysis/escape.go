package analysis

import (
	"fmt"
	"go/ast"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// funcSpan is the source extent of one //streampca:noalloc function.
type funcSpan struct {
	name       string
	start, end int
}

// noallocSpans collects the file line ranges of every annotated function.
func noallocSpans(pkgs []*Package) map[string][]funcSpan {
	spans := make(map[string][]funcSpan)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasNoAllocDirective(fd) {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				spans[start.Filename] = append(spans[start.Filename], funcSpan{
					name:  fd.Name.Name,
					start: start.Line,
					end:   end.Line,
				})
			}
		}
	}
	return spans
}

// EscapeCheck cross-checks the //streampca:noalloc annotations against the
// gc compiler's own escape analysis: it rebuilds the module with
// -gcflags=-m, parses the "escapes to heap" / "moved to heap" diagnostics,
// and reports any that land inside an annotated function — heap escapes the
// AST-level noalloc pass cannot see (an escaping local, a spilled closure
// capture introduced by inlining, an interface the compiler could not
// devirtualize). Suppression directives apply as usual. root is the module
// root directory.
func EscapeCheck(root string, pkgs []*Package) ([]Diagnostic, error) {
	spans := noallocSpans(pkgs)
	if len(spans) == 0 {
		return nil, nil
	}
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("analysis: go build -gcflags=-m: %v\n%s", err, out)
	}
	var diags []Diagnostic
	for _, line := range strings.Split(string(out), "\n") {
		file, lineNo, col, msg, ok := parseCompilerLine(line)
		if !ok {
			continue
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		// A string constant "escaping" is a panic argument being boxed: the
		// bytes are static data and the interface conversion only runs on the
		// invariant-violation path, never in steady state. Reporting these
		// would force a suppression on every bounds-check panic in the hot
		// path for zero signal.
		if strings.HasPrefix(msg, `"`) {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		for _, sp := range spans[file] {
			if lineNo >= sp.start && lineNo <= sp.end {
				diags = append(diags, Diagnostic{
					Analyzer: "noalloc",
					File:     file,
					Line:     lineNo,
					Col:      col,
					Message:  fmt.Sprintf("%s (compiler escape analysis, inside //streampca:noalloc %s)", msg, sp.name),
				})
				break
			}
		}
	}
	return Suppress(pkgs, diags), nil
}

// parseCompilerLine splits a `file.go:line:col: message` compiler
// diagnostic; reports ok=false for anything else (package headers, notes).
func parseCompilerLine(line string) (file string, lineNo, col int, msg string, ok bool) {
	idx := strings.Index(line, ".go:")
	if idx < 0 {
		return "", 0, 0, "", false
	}
	file = line[:idx+3]
	rest := line[idx+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return "", 0, 0, "", false
	}
	lineNo, err1 := strconv.Atoi(parts[0])
	col, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return file, lineNo, col, strings.TrimSpace(parts[2]), true
}
