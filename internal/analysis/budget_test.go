package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSuppressionBudget(t *testing.T) {
	budget, err := ParseSuppressionBudget([]byte("# comment\n\nnoalloc 8\ndeterminism 6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if budget["noalloc"] != 8 || budget["determinism"] != 6 {
		t.Errorf("parsed budget = %v", budget)
	}
	for _, bad := range []string{"noalloc", "noalloc eight", "noalloc -1", "noalloc 8 extra"} {
		if _, err := ParseSuppressionBudget([]byte(bad)); err == nil {
			t.Errorf("ParseSuppressionBudget(%q): want error", bad)
		}
	}
}

func TestCheckSuppressionBudget(t *testing.T) {
	live := map[string]int{"noalloc": 8, "determinism": 6, "framelife": 1}
	budget := map[string]int{"noalloc": 8, "determinism": 7}
	violations := CheckSuppressionBudget(live, budget)
	// noalloc at budget: fine; determinism under: fine; framelife has no
	// baseline line, so budget zero: violation.
	if len(violations) != 1 || !strings.Contains(violations[0], "framelife") {
		t.Errorf("violations = %v, want one framelife violation", violations)
	}
	if v := CheckSuppressionBudget(live, map[string]int{"noalloc": 7, "determinism": 6, "framelife": 1}); len(v) != 1 ||
		!strings.Contains(v[0], "noalloc: 8") {
		t.Errorf("violations = %v, want one noalloc violation", v)
	}
}

// TestDirectiveBudgetOnFixture exercises counting and the unused audit on
// the directive golden fixture: it carries one well-formed noalloc directive
// that suppresses a finding and one that (reasonless) is malformed and not
// counted.
func TestDirectiveBudgetOnFixture(t *testing.T) {
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "directive"), "golden.test/directive")
	if err != nil {
		t.Fatal(err)
	}
	counts := DirectiveCounts([]*Package{pkg})
	if counts["noalloc"] != 1 {
		t.Errorf("DirectiveCounts noalloc = %d, want 1 (malformed directives must not count)", counts["noalloc"])
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{NoAlloc})
	if err != nil {
		t.Fatal(err)
	}
	if unused := FindUnusedDirectives([]*Package{pkg}, diags); len(unused) != 0 {
		t.Errorf("unused = %v, want none: the fixture's well-formed directive suppresses a finding", unused)
	}
	// Strip the suppressions and the same directive shows up as unused.
	var bare []Diagnostic
	for _, d := range diags {
		d.Suppressed = false
		bare = append(bare, d)
	}
	unused := FindUnusedDirectives([]*Package{pkg}, bare)
	if len(unused) != 1 || unused[0].Analyzer != "noalloc" {
		t.Errorf("unused = %v, want the fixture's noalloc directive", unused)
	}
}
