package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoClean runs the full analyzer suite over the real repository tree
// and requires zero unsuppressed diagnostics — the same gate `make lint`
// enforces — plus a reason on every suppression, no dead directives, and
// directive counts within the committed suppression budget.
func TestRepoClean(t *testing.T) {
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages; loader is missing the tree", len(pkgs))
	}
	var cmdPkgs int
	for _, p := range pkgs {
		if strings.Contains(p.Path, "/cmd/") {
			cmdPkgs++
		}
	}
	if cmdPkgs == 0 {
		t.Error("no cmd/ packages loaded; the gate must cover the commands too")
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(All()) != 10 {
		t.Errorf("analyzer suite has %d analyzers, want 10", len(All()))
	}
	for _, d := range Unsuppressed(diags) {
		t.Errorf("unsuppressed: %s", d)
	}
	for _, d := range diags {
		if d.Suppressed && d.Reason == "" {
			t.Errorf("suppression without a reason: %s", d)
		}
	}
	// Unused-directive strictness: every directive must silence a live
	// finding. noalloc directives are audited in TestRepoEscapeClean instead,
	// since several of them target compiler-level escape findings the AST
	// pass cannot produce.
	for _, u := range FindUnusedDirectives(pkgs, diags) {
		if u.Analyzer == "noalloc" {
			continue
		}
		t.Errorf("%s", u.Diagnostic())
	}
	// Suppression budget: live directive counts must not exceed the
	// committed baseline.
	data, err := os.ReadFile(filepath.Join(moduleRoot, "internal", "analysis", "suppressions.txt"))
	if err != nil {
		t.Fatalf("suppression budget baseline missing: %v", err)
	}
	baseline, err := ParseSuppressionBudget(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range CheckSuppressionBudget(DirectiveCounts(pkgs), baseline) {
		t.Errorf("suppression budget exceeded: %s", v)
	}
}

// TestRepoEscapeClean cross-checks every //streampca:noalloc annotation in
// the tree against the gc compiler's escape analysis. It rebuilds the module
// with -gcflags=-m, so it is skipped under -short.
func TestRepoEscapeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("escape cross-check rebuilds the module; skipped with -short")
	}
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	spans := noallocSpans(pkgs)
	if len(spans) == 0 {
		t.Fatal("no //streampca:noalloc functions found; hot-path annotations are missing")
	}
	diags, err := EscapeCheck(loader.Root(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Unsuppressed(diags) {
		t.Errorf("escape: %s", d)
	}
	// With the escape findings in hand, the noalloc directives skipped by
	// TestRepoClean's audit can be judged: a directive silencing neither an
	// AST finding nor a compiler escape is dead.
	astDiags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range FindUnusedDirectives(pkgs, append(astDiags, diags...)) {
		t.Errorf("%s", u.Diagnostic())
	}
}
