package analysis

import (
	"testing"
)

// TestRepoClean runs the full analyzer suite over the real repository tree
// and requires zero unsuppressed diagnostics — the same gate `make lint`
// enforces — plus a reason on every suppression.
func TestRepoClean(t *testing.T) {
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("loaded only %d packages; loader is missing the tree", len(pkgs))
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Unsuppressed(diags) {
		t.Errorf("unsuppressed: %s", d)
	}
	for _, d := range diags {
		if d.Suppressed && d.Reason == "" {
			t.Errorf("suppression without a reason: %s", d)
		}
	}
}

// TestRepoEscapeClean cross-checks every //streampca:noalloc annotation in
// the tree against the gc compiler's escape analysis. It rebuilds the module
// with -gcflags=-m, so it is skipped under -short.
func TestRepoEscapeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("escape cross-check rebuilds the module; skipped with -short")
	}
	loader, err := NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	spans := noallocSpans(pkgs)
	if len(spans) == 0 {
		t.Fatal("no //streampca:noalloc functions found; hot-path annotations are missing")
	}
	diags, err := EscapeCheck(loader.Root(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Unsuppressed(diags) {
		t.Errorf("escape: %s", d)
	}
}
