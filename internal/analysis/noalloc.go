package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noallocDirective marks a function whose body must be free of allocating
// constructs. It goes in the function's doc comment:
//
//	//streampca:noalloc
//	func (en *Engine) Observe(x []float64) (Update, error) { ... }
const noallocDirective = "streampca:noalloc"

// NoAlloc enforces the zero-allocation steady state of the hot path: a
// function annotated //streampca:noalloc may not contain make/new calls,
// append (which can grow its backing array), slice or map composite
// literals, &-taken composite literals, closures, go statements, fmt calls,
// non-constant string concatenation, or conversions that box a concrete
// value into an interface. Calls into other functions are permitted — the
// -escape cross-check (EscapeCheck) catches heap escapes the AST cannot see.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "forbid allocating constructs in //streampca:noalloc functions " +
		"(the engine's Observe/ObserveBlock/rebuild path and the blocked mat kernels)",
	Run: runNoAlloc,
}

func hasNoAllocDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == noallocDirective {
			return true
		}
	}
	return false
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoAllocDirective(fd) {
				continue
			}
			checkNoAllocBody(pass, fd)
		}
	}
	return nil
}

func checkNoAllocBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	var resultTypes []types.Type
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		sig := obj.Type().(*types.Signature)
		for i := 0; i < sig.Results().Len(); i++ {
			resultTypes = append(resultTypes, sig.Results().At(i).Type())
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkNoAllocCall(pass, info, n)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates")
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address of composite literal allocates")
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "function literal (closure) allocates its captures")
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[ast.Expr(n)]; ok && tv.Value == nil && isStringType(tv.Type) {
					pass.Reportf(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "string concatenation allocates")
			}
		case *ast.ReturnStmt:
			for i, res := range n.Results {
				if i >= len(resultTypes) {
					break
				}
				rt := info.TypeOf(res)
				if rt == nil || isUntypedNil(rt) {
					continue
				}
				if types.IsInterface(resultTypes[i]) && !types.IsInterface(rt) {
					pass.Reportf(res.Pos(), "returning %s as %s boxes into an interface",
						rt, resultTypes[i])
				}
			}
		}
		return true
	})
}

func checkNoAllocCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "call to make allocates")
			case "new":
				pass.Reportf(call.Pos(), "call to new allocates")
			case "append":
				pass.Reportf(call.Pos(), "append may grow and reallocate its backing array")
			}
			return
		}
	}
	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if len(call.Args) != 1 {
			return
		}
		src := info.TypeOf(call.Args[0])
		if src == nil {
			return
		}
		switch {
		case types.IsInterface(target) && !types.IsInterface(src) && !isUntypedNil(src):
			pass.Reportf(call.Pos(), "conversion of %s to %s boxes into an interface", src, target)
		case isStringType(target) && !isStringType(src):
			pass.Reportf(call.Pos(), "conversion to string allocates")
		case isByteOrRuneSlice(target) && isStringType(src):
			pass.Reportf(call.Pos(), "conversion of string to %s allocates", target)
		}
		return
	}
	// fmt calls.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if xid, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[xid].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "call to fmt.%s allocates", sel.Sel.Name)
				return
			}
		}
	}
	// Interface boxing at call boundaries, and the implicit slice a variadic
	// call builds for its trailing arguments.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		pass.Reportf(call.Pos(), "variadic call allocates its argument slice")
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last
			} else if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s as %s boxes into an interface", at, pt)
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
