package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Framelife enforces the pooled-object lifetime contract of the micro-batched
// transport: a stream.Frame whose storage comes from a transport pool must be
// Released exactly once per execution path, never touched after its release,
// and never parked in a long-lived struct where it would outlive the pool
// recycle. The same contract covers the pooled stores behind the frames
// (recvStore, frameStore — any named struct type ending in "store"/"Store"):
// once a store has been handed back via put/Put, its buffers belong to the
// next user.
//
// The check is a flow-sensitive, intra-procedural abstract walk: each tracked
// local (a variable of type stream.Frame or pointer-to-*store) is live or
// released per path. Branches fork the state and re-join may-released;
// terminated branches (return) do not flow into the join — which is exactly
// what sanctions the RecvPool lending pattern in internal/wire/codec.go
// (release-and-return on the error path, hand off via the Release closure on
// success). Loop bodies are walked twice so a release of a loop-outer frame
// reports on the simulated second iteration. Function literals are walked
// independently with fresh state, since their run time is unknown — that is
// what permits `Release: func() { pool.put(rs) }` handoffs.
//
// Reading the Release field itself is never a use: `if f.Release != nil` is
// the documented guard idiom and must stay expressible after a conditional
// release.
var Framelife = &Analyzer{
	Name: "framelife",
	Doc: "require pooled frames/stores to be released exactly once per path, " +
		"never used after release, and never retained in struct fields or maps",
	Run: runFramelife,
}

// isFrameType reports whether t is the transport's stream.Frame type.
func isFrameType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Frame" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/stream")
}

// isStoreType reports whether t is a pooled backing-store type (a pointer to
// a named struct following the *store naming convention).
func isStoreType(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	if _, isStruct := n.Underlying().(*types.Struct); !isStruct {
		return false
	}
	return strings.HasSuffix(strings.ToLower(n.Obj().Name()), "store")
}

func isPooledType(t types.Type) bool {
	return t != nil && (isFrameType(t) || isStoreType(t))
}

func runFramelife(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fl := newFramelifeChecker(pass)
			fl.trackSignature(fd)
			fl.walkBody(fd.Body)
		}
	}
	return nil
}

// framelifeChecker is the per-function walk state. state maps each tracked
// object to released=true/false; terminated marks a path that cannot reach
// the following statement (return). reported de-duplicates diagnostics when
// a loop body is walked twice.
type framelifeChecker struct {
	pass       *Pass
	info       *types.Info
	state      map[types.Object]bool
	terminated bool
	// reported de-duplicates by position: loop bodies are walked twice.
	reported map[int]bool
	deferred []types.Object
}

func newFramelifeChecker(pass *Pass) *framelifeChecker {
	return &framelifeChecker{
		pass:     pass,
		info:     pass.Pkg.Info,
		state:    make(map[types.Object]bool),
		reported: make(map[int]bool),
	}
}

func (fl *framelifeChecker) reportf(n ast.Node, format string, args ...any) {
	key := int(n.Pos())
	if fl.reported[key] {
		return
	}
	fl.reported[key] = true
	fl.pass.Reportf(n.Pos(), format, args...)
}

// trackSignature registers pooled-typed parameters and receivers as live
// tracked objects: a function that takes a frame owns its per-call lifetime.
func (fl *framelifeChecker) trackSignature(fd *ast.FuncDecl) {
	collect := func(list *ast.FieldList) {
		if list == nil {
			return
		}
		for _, field := range list.List {
			for _, name := range field.Names {
				if obj := fl.info.Defs[name]; obj != nil && isPooledType(obj.Type()) {
					fl.state[obj] = false
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
}

// walkBody walks a function body and settles the deferred releases at exit.
func (fl *framelifeChecker) walkBody(body *ast.BlockStmt) {
	fl.stmts(body.List)
	for _, obj := range fl.deferred {
		if fl.state[obj] {
			// The deferred release runs after every path; a path that already
			// released is a double release. Conservatively reported only when
			// the exit state is must/may-released.
			fl.reportf(body, "%s is released by a defer but may already be released at function exit", obj.Name())
		}
	}
}

func (fl *framelifeChecker) clone() map[types.Object]bool {
	c := make(map[types.Object]bool, len(fl.state))
	for k, v := range fl.state {
		c[k] = v
	}
	return c
}

// join merges a completed branch state into dst: released in any live branch
// means may-released after the join.
func joinState(dst, branch map[types.Object]bool) {
	for k, v := range branch {
		if v {
			dst[k] = true
		} else if _, ok := dst[k]; !ok {
			dst[k] = false
		}
	}
}

func (fl *framelifeChecker) stmts(list []ast.Stmt) {
	for _, s := range list {
		if fl.terminated {
			return
		}
		fl.stmt(s)
	}
}

func (fl *framelifeChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if fl.releaseOp(s.X) {
			return
		}
		fl.useScan(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			fl.useScan(r)
		}
		for i, l := range s.Lhs {
			switch lhs := l.(type) {
			case *ast.Ident:
				obj := fl.info.Defs[lhs]
				if obj == nil {
					obj = fl.info.Uses[lhs]
				}
				if obj == nil {
					continue
				}
				if isPooledType(obj.Type()) {
					// Fresh value (definition or reassignment): live again.
					fl.state[obj] = false
				}
			case *ast.SelectorExpr:
				fl.useScan(lhs.X)
				fl.checkRetention(s, i, lhs)
			case *ast.IndexExpr:
				fl.useScan(lhs.X)
				fl.useScan(lhs.Index)
				fl.checkRetention(s, i, lhs)
			default:
				fl.useScan(l)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						fl.useScan(v)
					}
					for _, name := range vs.Names {
						if obj := fl.info.Defs[name]; obj != nil && isPooledType(obj.Type()) {
							fl.state[obj] = false
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			fl.useScan(r)
		}
		fl.terminated = true
	case *ast.DeferStmt:
		// A deferred x.Release()/pool.put(x) releases at return; anything else
		// only evaluates its arguments now.
		if obj := fl.releaseTarget(s.Call); obj != nil {
			fl.deferred = append(fl.deferred, obj)
			return
		}
		for _, a := range s.Call.Args {
			fl.useScan(a)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			fl.useScan(a)
		}
	case *ast.SendStmt:
		fl.useScan(s.Chan)
		fl.useScan(s.Value)
	case *ast.IfStmt:
		if s.Init != nil {
			fl.stmt(s.Init)
		}
		fl.useScan(s.Cond)
		fl.branch2(func() { fl.stmts(s.Body.List) }, func() {
			if s.Else != nil {
				fl.stmt(s.Else)
			}
		})
	case *ast.ForStmt:
		if s.Init != nil {
			fl.stmt(s.Init)
		}
		if s.Cond != nil {
			fl.useScan(s.Cond)
		}
		fl.loopBody(func() {
			fl.stmts(s.Body.List)
			if s.Post != nil && !fl.terminated {
				fl.stmt(s.Post)
			}
		})
	case *ast.RangeStmt:
		fl.useScan(s.X)
		fl.loopBody(func() { fl.stmts(s.Body.List) })
	case *ast.SwitchStmt:
		if s.Init != nil {
			fl.stmt(s.Init)
		}
		if s.Tag != nil {
			fl.useScan(s.Tag)
		}
		fl.caseClauses(s.Body.List, nil)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			fl.stmt(s.Init)
		}
		fl.caseClauses(s.Body.List, s)
	case *ast.SelectStmt:
		var fns []func()
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				cc := cc
				fns = append(fns, func() {
					if cc.Comm != nil {
						fl.stmt(cc.Comm)
					}
					fl.stmts(cc.Body)
				})
			}
		}
		fl.branches(fns, true)
	case *ast.BlockStmt:
		fl.stmts(s.List)
	case *ast.LabeledStmt:
		fl.stmt(s.Stmt)
	}
}

// caseClauses walks each case body as an independent branch. For a type
// switch, the clause's implicit variable is tracked when pooled-typed.
func (fl *framelifeChecker) caseClauses(clauses []ast.Stmt, ts *ast.TypeSwitchStmt) {
	var fns []func()
	for _, clause := range clauses {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		fns = append(fns, func() {
			if ts != nil {
				if obj := fl.info.Implicits[cc]; obj != nil && isPooledType(obj.Type()) {
					fl.state[obj] = false
				}
			}
			for _, e := range cc.List {
				fl.useScan(e)
			}
			fl.stmts(cc.Body)
		})
	}
	fl.branches(fns, true)
}

// branch2 runs then/else as alternatives and joins the surviving states.
func (fl *framelifeChecker) branch2(then, els func()) {
	fl.branches([]func(){then, els}, false)
}

// branches forks the state for each alternative, runs them, and joins every
// non-terminated branch. withFallthroughEntry keeps the pre-state in the join
// (a switch may match no case) — branch2's else arm plays that role itself.
func (fl *framelifeChecker) branches(fns []func(), withEntry bool) {
	entry := fl.clone()
	joined := make(map[types.Object]bool)
	if withEntry {
		joinState(joined, entry)
	}
	live := 0
	for _, fn := range fns {
		fl.state = cloneState(entry)
		fl.terminated = false
		fn()
		if !fl.terminated {
			joinState(joined, fl.state)
			live++
		}
	}
	if live == 0 && !withEntry && len(fns) > 0 {
		fl.state = entry
		fl.terminated = true
		return
	}
	fl.state = joined
	fl.terminated = false
}

func cloneState(s map[types.Object]bool) map[types.Object]bool {
	c := make(map[types.Object]bool, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// loopBody walks a loop body twice: the second pass runs with the first
// pass's may-released exit state, so releasing a loop-outer frame every
// iteration is caught without real fixpoint machinery.
func (fl *framelifeChecker) loopBody(body func()) {
	entry := fl.clone()
	for i := 0; i < 2; i++ {
		fl.terminated = false
		body()
		joinState(entry, fl.state)
		fl.state = cloneState(entry)
	}
	fl.terminated = false
}

// releaseOp handles a statement-level release call, reporting a double
// release; it returns true when e was one.
func (fl *framelifeChecker) releaseOp(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := fl.releaseTarget(call)
	if obj == nil {
		return false
	}
	if fl.state[obj] {
		fl.reportf(call, "%s is released twice on this path; the pool would hand the same storage to two owners", obj.Name())
	}
	fl.state[obj] = true
	return true
}

// releaseTarget resolves a call to the tracked object it releases: x.Release()
// for a tracked frame x, or pool.put(x)/Put(x) with a tracked store argument.
func (fl *framelifeChecker) releaseTarget(call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	switch sel.Sel.Name {
	case "Release":
		if base, ok := sel.X.(*ast.Ident); ok {
			if obj := fl.info.Uses[base]; obj != nil {
				if _, tracked := fl.state[obj]; tracked && isFrameType(obj.Type()) {
					return obj
				}
			}
		}
	case "put", "Put":
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				if obj := fl.info.Uses[id]; obj != nil {
					if _, tracked := fl.state[obj]; tracked && isStoreType(obj.Type()) {
						return obj
					}
				}
			}
		}
	}
	return nil
}

// checkRetention reports a tracked pooled value stored into a struct field or
// map element.
func (fl *framelifeChecker) checkRetention(s *ast.AssignStmt, i int, lhs ast.Expr) {
	if len(s.Rhs) != len(s.Lhs) {
		return
	}
	id, ok := ast.Unparen(s.Rhs[i]).(*ast.Ident)
	if !ok {
		return
	}
	obj := fl.info.Uses[id]
	if obj == nil {
		return
	}
	if _, tracked := fl.state[obj]; !tracked {
		return
	}
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		fl.reportf(s, "pooled %s must not be retained in a struct field; it outlives its release", obj.Name())
	case *ast.IndexExpr:
		if t := fl.info.TypeOf(l.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				fl.reportf(s, "pooled %s must not be retained in a map; it outlives its release", obj.Name())
			}
		}
	}
}

// useScan reports any use of a released tracked object inside e. Function
// literals are walked independently with fresh state; reading the Release
// field itself (the nil-guard idiom) and statement-level release calls are
// not uses.
func (fl *framelifeChecker) useScan(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inner := newFramelifeChecker(fl.pass)
			inner.reported = fl.reported
			inner.walkBody(n.Body)
			return false
		case *ast.SelectorExpr:
			if n.Sel.Name == "Release" {
				// The guard idiom: checking or calling Release is lifecycle
				// management, not payload use; the release itself is handled by
				// releaseOp.
				if base, ok := n.X.(*ast.Ident); ok {
					if obj := fl.info.Uses[base]; obj != nil {
						if _, tracked := fl.state[obj]; tracked {
							return false
						}
					}
				}
			}
		case *ast.Ident:
			obj := fl.info.Uses[n]
			if obj == nil {
				return true
			}
			if released, tracked := fl.state[obj]; tracked && released {
				fl.reportf(n, "use of %s after it was released; its storage may already belong to another frame", obj.Name())
			}
		}
		return true
	})
}
