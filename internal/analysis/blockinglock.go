package analysis

import (
	"go/ast"
	"go/types"
)

// BlockingLock flags blocking I/O performed while a sync.Mutex or RWMutex is
// held — the deadlock shape that stalls the edge send loop under
// backpressure: a socket Write blocks on a full TCP window while holding the
// lock the receive path needs to drain it, so neither side makes progress
// and the 1.5·N sync evidence silently goes stale. lockedsend already covers
// channel operations and synchronization waits; this pass covers the wire
// layer's other blocking surface: net.Conn reads/writes/dials/accepts and
// io/bufio transfers that sit on top of them. It reuses lockedsend's
// statement-order lock tracker (held from x.Lock() to the matching
// x.Unlock(); deferred Unlock holds to function end; FuncLits analyzed
// independently with no locks held).
var BlockingLock = &Analyzer{
	Name: "blockinglock",
	Doc:  "forbid blocking I/O (net read/write/dial/accept, io copies) while a sync.Mutex/RWMutex is held",
	Run:  runBlockingLock,
}

func runBlockingLock(pass *Pass) error {
	runLockWalker(pass, func() *lockedSendChecker {
		return &lockedSendChecker{pass: pass, chanOps: false, classify: ioBlockingCall(pass)}
	})
	return nil
}

// ioBlockingFuncs are package-level functions that block on I/O.
var ioBlockingFuncs = map[string]string{
	"io.ReadFull":     "io.ReadFull",
	"io.ReadAll":      "io.ReadAll",
	"io.Copy":         "io.Copy",
	"io.CopyN":        "io.CopyN",
	"io.CopyBuffer":   "io.CopyBuffer",
	"net.Dial":        "net.Dial",
	"net.DialTCP":     "net.DialTCP",
	"net.DialUDP":     "net.DialUDP",
	"net.Listen":      "net.Listen",
	"net.DialTimeout": "net.DialTimeout",
}

// ioBlockingMethodNames are method names that block when the receiver lives
// in a package whose operations hit the network or wrap something that does.
var ioBlockingMethodNames = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"Accept": true, "AcceptTCP": true, "Flush": true,
	"ReadByte": true, "ReadFull": true, "WriteString": true,
}

// ioBlockingCall classifies a call as blocking I/O: either a known
// package-level function, or a Read/Write/Accept-style method whose receiver
// type is declared in net, io, or bufio (a *net.TCPConn, an io.Reader
// interface value, a *bufio.Writer over a socket, ...).
func ioBlockingCall(pass *Pass) func(*ast.CallExpr) string {
	return func(call *ast.CallExpr) string {
		fn := calledFunc(pass, call)
		if fn == nil {
			return ""
		}
		full := fn.FullName()
		if name, ok := ioBlockingFuncs[full]; ok {
			return name
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !ioBlockingMethodNames[fn.Name()] {
			return ""
		}
		// Concrete methods named Read/Write on local types are not assumed to
		// block; the wire layer reaches sockets through net/io/bufio types,
		// and those packages declare every method this pass cares about
		// (including interface methods like io.Reader.Read and net.Conn.Write).
		if pkg := fn.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "net", "io", "bufio":
				return pkg.Path() + "." + fn.Name()
			}
		}
		return ""
	}
}
