package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockedSend flags channel operations and other blocking calls made while a
// sync.Mutex or sync.RWMutex is held — the classic stream-engine deadlock: a
// PE goroutine blocks on a full queue while holding the lock every other
// goroutine needs to drain it. The tracker is a per-function, statement-order
// approximation: a lock is considered held from the x.Lock() statement until
// a matching x.Unlock() on the same receiver expression; a deferred Unlock
// holds until the end of the function. Function literals are analyzed
// independently with no locks held, since their call time is unknown.
var LockedSend = &Analyzer{
	Name: "lockedsend",
	Doc:  "forbid channel sends/receives and blocking calls while a sync.Mutex/RWMutex is held",
	Run:  runLockedSend,
}

var lockMethods = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}

var unlockMethods = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

var blockingFuncs = map[string]string{
	"(*sync.WaitGroup).Wait": "sync.WaitGroup.Wait",
	"(*sync.Cond).Wait":      "sync.Cond.Wait",
	"time.Sleep":             "time.Sleep",
}

func runLockedSend(pass *Pass) error {
	runLockWalker(pass, func() *lockedSendChecker {
		return &lockedSendChecker{pass: pass, chanOps: true, classify: syncBlockingCall(pass)}
	})
	return nil
}

// runLockWalker applies a fresh lock-tracking checker (built by mk) to every
// function declaration and literal in the package. lockedsend and
// blockinglock share this skeleton and differ only in which operations the
// checker treats as blocking.
func runLockWalker(pass *Pass, mk func() *lockedSendChecker) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					mk().stmts(n.Body.List)
				}
			case *ast.FuncLit:
				mk().stmts(n.Body.List)
			}
			return true
		})
	}
}

type lockedSendChecker struct {
	pass     *Pass
	held     []string // receiver expressions of currently held locks
	chanOps  bool     // report channel send/recv/range/select while locked
	classify func(*ast.CallExpr) string
}

func (ls *lockedSendChecker) holding() string {
	if len(ls.held) == 0 {
		return ""
	}
	return ls.held[len(ls.held)-1]
}

func (ls *lockedSendChecker) acquire(key string) { ls.held = append(ls.held, key) }

func (ls *lockedSendChecker) release(key string) {
	for i := len(ls.held) - 1; i >= 0; i-- {
		if ls.held[i] == key {
			ls.held = append(ls.held[:i], ls.held[i+1:]...)
			return
		}
	}
}

// stmts walks a statement list in order, tracking the held-lock set.
func (ls *lockedSendChecker) stmts(list []ast.Stmt) {
	for _, s := range list {
		ls.stmt(s)
	}
}

func (ls *lockedSendChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, kind := ls.lockOp(call); kind == "lock" {
				ls.acquire(key)
				return
			} else if kind == "unlock" {
				ls.release(key)
				return
			}
		}
		ls.expr(s.X)
	case *ast.DeferStmt:
		// A deferred Unlock releases only at return: the lock stays held for
		// the remainder of the walk, which is exactly the semantics wanted.
		// Other deferred calls run outside the traced order; check their
		// argument expressions only.
		for _, a := range s.Call.Args {
			ls.expr(a)
		}
	case *ast.SendStmt:
		if m := ls.holding(); m != "" && ls.chanOps {
			ls.pass.Reportf(s.Pos(), "channel send while %s is locked can deadlock the stream engine", m)
		}
		ls.expr(s.Chan)
		ls.expr(s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ls.expr(e)
		}
		for _, e := range s.Lhs {
			ls.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ls.expr(v)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		ls.expr(s.Cond)
		ls.stmts(s.Body.List)
		if s.Else != nil {
			ls.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		if s.Cond != nil {
			ls.expr(s.Cond)
		}
		ls.stmts(s.Body.List)
		if s.Post != nil {
			ls.stmt(s.Post)
		}
	case *ast.RangeStmt:
		if t := ls.pass.Pkg.Info.TypeOf(s.X); t != nil && ls.chanOps {
			if _, ok := t.Underlying().(*types.Chan); ok {
				if m := ls.holding(); m != "" {
					ls.pass.Reportf(s.Pos(), "range over channel while %s is locked can deadlock the stream engine", m)
				}
			}
		}
		ls.expr(s.X)
		ls.stmts(s.Body.List)
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if m := ls.holding(); m != "" && !hasDefault && ls.chanOps {
			ls.pass.Reportf(s.Pos(), "blocking select while %s is locked can deadlock the stream engine", m)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				ls.stmts(cc.Body)
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			ls.stmt(s.Init)
		}
		if s.Tag != nil {
			ls.expr(s.Tag)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				ls.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				ls.stmts(cc.Body)
			}
		}
	case *ast.BlockStmt:
		ls.stmts(s.List)
	case *ast.LabeledStmt:
		ls.stmt(s.Stmt)
	case *ast.GoStmt:
		// The spawned body runs on another goroutine; only the argument
		// expressions evaluate here.
		for _, a := range s.Call.Args {
			ls.expr(a)
		}
	}
}

// expr scans an expression tree for channel receives and blocking calls,
// without descending into function literals (their bodies are checked
// independently).
func (ls *lockedSendChecker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && ls.chanOps {
				if m := ls.holding(); m != "" {
					ls.pass.Reportf(n.Pos(), "channel receive while %s is locked can deadlock the stream engine", m)
				}
			}
		case *ast.CallExpr:
			if name := ls.classify(n); name != "" {
				if m := ls.holding(); m != "" {
					ls.pass.Reportf(n.Pos(), "blocking call %s while %s is locked can deadlock the stream engine", name, m)
				}
			}
		}
		return true
	})
}

// lockOp classifies a call as a lock or unlock on a sync mutex, returning
// the receiver expression as the lock identity.
func (ls *lockedSendChecker) lockOp(call *ast.CallExpr) (key, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := ls.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", ""
	}
	full := fn.FullName()
	switch {
	case lockMethods[full]:
		return types.ExprString(sel.X), "lock"
	case unlockMethods[full]:
		return types.ExprString(sel.X), "unlock"
	}
	return "", ""
}

// syncBlockingCall classifies synchronization-layer blocking calls
// (WaitGroup.Wait, Cond.Wait, time.Sleep) — lockedsend's original scope.
func syncBlockingCall(pass *Pass) func(*ast.CallExpr) string {
	return func(call *ast.CallExpr) string {
		fn := calledFunc(pass, call)
		if fn == nil {
			return ""
		}
		return blockingFuncs[fn.FullName()]
	}
}

// calledFunc resolves the *types.Func a selector-style call invokes, or nil.
func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	return fn
}
