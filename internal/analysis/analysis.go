// Package analysis is a stdlib-only static-analysis framework for this
// repository: a small Analyzer interface, a loader that parses and
// type-checks every repo package once (sharing one token.FileSet and one
// types.Info across all analyzers), an inline suppression directive, and an
// escape-analysis cross-check driven by the gc compiler's -m diagnostics.
//
// The framework exists because the properties the paper's claims rest on —
// bitwise-reproducible eigensystem updates, a zero-allocation steady state,
// panic-safe operator concurrency — are promises the code makes but nothing
// checks on every build. Runtime tests (AllocsPerRun, scoped -race runs)
// cover the call sites someone remembered to test; the analyzers here check
// every function of every package on every `make check`.
//
// It deliberately depends only on go/ast, go/parser, go/token, go/types and
// go/importer — no golang.org/x/tools — preserving the repo's zero-dependency
// constraint.
package analysis

import (
	"fmt"
	"go/token"
)

// Diagnostic is one finding, positioned at file:line:col. Suppressed
// diagnostics carry the reason string of the //streamvet:ignore directive
// that silenced them; they are reported in -json output but do not fail the
// build.
type Diagnostic struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //streamvet:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// enforces and why it matters.
	Doc string
	// Match restricts the analyzer to packages whose import path it accepts;
	// nil means every package.
	Match func(pkgPath string) bool
	// Run reports findings on one package through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) pairing through a Run invocation.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full streamvet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NoAlloc,
		Determinism,
		LockedSend,
		GoroutineLifecycle,
		WorkspaceEscape,
		Framelife,
		AtomicMix,
		BlockingLock,
		SPSCRole,
		WireKind,
	}
}

// Unsuppressed filters diags down to the findings that should fail a build.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}
