package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// WorkspaceEscape enforces the scratch-memory ownership contract: slices and
// buffers obtained from a Workspace type or a sync.Pool are scratch, valid
// only inside the function that grabbed them — storing one into a struct
// field, returning it, or sending it on a channel lets it outlive its
// release and aliases the next user of the same buffer.
//
// The check is a per-function forward taint pass. Sources are (a) reads of a
// field through a workspace-typed value — unless that value is a parameter
// or receiver of the function, which is the documented lending pattern of
// the eig workspace kernels (the caller owns the workspace and knows the
// lifetime) — and (b) (*sync.Pool).Get results. Taint flows through
// assignments into reference-typed locals; sinks are returns (except from
// functions that declare a workspace-typed result, i.e. constructors),
// channel sends, and stores into struct fields or maps outside the
// workspace itself. Only reference-typed values (slices, pointers, maps,
// channels, funcs, interfaces) can re-expose scratch memory, so scalar
// reads (an element, a length, an accumulated float) never taint.
var WorkspaceEscape = &Analyzer{
	Name: "workspace-escape",
	Doc: "forbid workspace/sync.Pool scratch memory from being stored into struct " +
		"fields, returned, or sent on channels past its release",
	Run: runWorkspaceEscape,
}

// isWorkspaceType reports whether t (possibly behind a pointer) is a named
// type following the repo's workspace convention.
func isWorkspaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return strings.HasSuffix(strings.ToLower(n.Obj().Name()), "workspace")
}

func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

func runWorkspaceEscape(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWorkspaceEscape(pass, fd)
		}
	}
	return nil
}

type wsEscapeChecker struct {
	pass    *Pass
	info    *types.Info
	params  map[types.Object]bool
	tainted map[types.Object]bool
}

func checkWorkspaceEscape(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	c := &wsEscapeChecker{
		pass:    pass,
		info:    info,
		params:  make(map[types.Object]bool),
		tainted: make(map[types.Object]bool),
	}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					c.params[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)

	// Constructors and lenders declare a workspace-typed result; returning
	// workspace memory is their purpose.
	returnsWorkspace := false
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			if isWorkspaceType(info.TypeOf(field.Type)) {
				returnsWorkspace = true
			}
		}
	}

	// Forward taint to fixpoint: assignments whose right side touches a
	// source (or an already-tainted local) taint their reference-typed
	// left-side locals.
	for changed, rounds := true, 0; changed && rounds < 16; rounds++ {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				rhsTainted := false
				for _, r := range n.Rhs {
					if c.containsTaint(r) {
						rhsTainted = true
						break
					}
				}
				if !rhsTainted {
					return true
				}
				for _, l := range n.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok {
						continue
					}
					obj := c.info.Defs[id]
					if obj == nil {
						obj = c.info.Uses[id]
					}
					if obj == nil || c.tainted[obj] || !isRefType(obj.Type()) {
						continue
					}
					c.tainted[obj] = true
					changed = true
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i < len(n.Names) && c.containsTaint(v) {
						if obj := c.info.Defs[n.Names[i]]; obj != nil && !c.tainted[obj] && isRefType(obj.Type()) {
							c.tainted[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	// Sinks.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if returnsWorkspace {
				return true
			}
			for _, res := range n.Results {
				if c.containsTaint(res) && isRefType(c.info.TypeOf(res)) {
					c.pass.Reportf(res.Pos(), "workspace/pool scratch memory must not be returned; it aliases the next user after release")
				}
			}
		case *ast.SendStmt:
			if c.containsTaint(n.Value) && isRefType(c.info.TypeOf(n.Value)) {
				c.pass.Reportf(n.Value.Pos(), "workspace/pool scratch memory must not be sent on a channel; it aliases the next user after release")
			}
		case *ast.AssignStmt:
			for i, l := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				r := n.Rhs[0]
				if i < len(n.Rhs) {
					r = n.Rhs[i]
				}
				if !c.containsTaint(r) || !isRefType(c.info.TypeOf(r)) {
					continue
				}
				switch lhs := l.(type) {
				case *ast.SelectorExpr:
					// Stores into the workspace itself are its own business.
					if !isWorkspaceType(c.info.TypeOf(lhs.X)) {
						c.pass.Reportf(l.Pos(), "workspace/pool scratch memory must not be stored into a struct field; it aliases the next user after release")
					}
				case *ast.IndexExpr:
					if t := c.info.TypeOf(lhs.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							c.pass.Reportf(l.Pos(), "workspace/pool scratch memory must not be stored into a map; it aliases the next user after release")
						}
					}
				}
			}
		}
		return true
	})
}

// isSource reports whether e directly yields workspace- or pool-owned
// memory.
func (c *wsEscapeChecker) isSource(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		// Obtaining the workspace out of a container (en.ws) taints, as does
		// reading a field through a workspace value that the function does
		// not own via its signature.
		if base, ok := e.X.(*ast.Ident); ok {
			obj := c.info.Uses[base]
			if obj != nil && c.params[obj] && isWorkspaceType(obj.Type()) {
				return false // documented lending: workspace passed in by the caller
			}
		}
		if isWorkspaceType(c.info.TypeOf(e.X)) {
			return true
		}
		return isWorkspaceType(c.info.TypeOf(e))
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := c.info.Uses[sel.Sel].(*types.Func); ok {
				return fn.FullName() == "(*sync.Pool).Get"
			}
		}
	}
	return false
}

// containsTaint reports whether any subexpression of e is a source or a
// tainted local.
func (c *wsEscapeChecker) containsTaint(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := c.info.Uses[n]; obj != nil && c.tainted[obj] {
				found = true
			}
		case ast.Expr:
			if c.isSource(n) {
				found = true
			}
		}
		return !found
	})
	return found
}
