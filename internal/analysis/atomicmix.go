package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicMix enforces two memory-model contracts the lock-free layers (edge
// stats, SPSC rings, obs instruments) depend on:
//
//  1. A struct field accessed through sync/atomic functions anywhere in the
//     package must never be read or written plainly — a mixed access is a
//     data race that corrupts counters silently instead of crashing, the
//     exact failure mode the wire stats and 1.5·N sync evidence cannot
//     tolerate.
//  2. A struct holding atomic.Int64-style values (directly or nested) must
//     not be copied by value: the copy tears concurrent updates and forks
//     the counter history. Value receivers, value parameters/results and
//     copying assignments are reported; composite-literal construction and
//     zero-value declarations are not (nothing shared exists yet).
//
// The pass is package-local, like the convention it checks: atomic fields
// are unexported, so every access site is in the declaring package.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "forbid plain access to fields accessed via sync/atomic, and forbid " +
		"copying structs that contain atomic values",
	Run: runAtomicMix,
}

// atomicValueTypes are the sync/atomic struct types whose presence makes a
// containing struct copy-hostile.
var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isAtomicValueType reports whether t is one of sync/atomic's value types.
func isAtomicValueType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicValueTypes[obj.Name()]
}

// hasAtomicField reports whether t is a struct type containing an atomic
// value, directly or through nested structs (bounded depth, arrays included).
func hasAtomicField(t types.Type, depth int) bool {
	if t == nil || depth > 4 {
		return false
	}
	if isAtomicValueType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasAtomicField(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return hasAtomicField(u.Elem(), depth+1)
	}
	return false
}

// atomicCopyHostile reports whether a value of type t must not be copied:
// a non-pointer struct (or array of structs) holding atomic values.
func atomicCopyHostile(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return hasAtomicField(t, 0)
}

func runAtomicMix(pass *Pass) error {
	info := pass.Pkg.Info

	// Pass 1: find every &x.f handed to a sync/atomic function; record the
	// field object and the selector node (exempt from the plain-access scan).
	atomicFields := make(map[types.Object]string) // field -> atomic func name seen
	exempt := make(map[ast.Node]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := atomicFuncName(info, call)
			if name == "" {
				return true
			}
			for _, a := range call.Args {
				if obj, sel := addrOfField(info, a); obj != nil {
					atomicFields[obj] = name
					exempt[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: plain accesses to those fields, and struct-copy sites.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if exempt[n] {
					return true
				}
				var obj types.Object
				if s := info.Selections[n]; s != nil {
					obj = s.Obj()
				} else if o := info.Uses[n.Sel]; o != nil {
					obj = o
				}
				if obj == nil {
					return true
				}
				if name, ok := atomicFields[obj]; ok {
					pass.Reportf(n.Pos(),
						"plain access to field %s, which is accessed via %s elsewhere; mixed atomic/plain access is a data race",
						obj.Name(), name)
				}
			case *ast.FuncDecl:
				checkAtomicSignature(pass, info, n)
			case *ast.AssignStmt:
				for i, r := range n.Rhs {
					// Assigning to _ evaluates but shares nothing; not a copy
					// anyone can race on.
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					checkAtomicCopyExpr(pass, info, r)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkAtomicCopyExpr(pass, info, v)
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkAtomicCopyExpr(pass, info, r)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := info.TypeOf(n.Value); atomicCopyHostile(t) {
						pass.Reportf(n.Value.Pos(),
							"range copies %s by value; it holds atomic values and must be traversed by pointer or index", t)
					}
				}
			}
			return true
		})
	}
	return nil
}

// atomicFuncName returns the sync/atomic package function a call invokes
// ("atomic.AddInt64"), or "" when the call is not one.
func atomicFuncName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return ""
	}
	// Methods of atomic.Int64 etc. are type-safe by construction; only the
	// package-level functions can be mixed with plain accesses.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	return "atomic." + fn.Name()
}

// addrOfField matches an argument of the form &expr.field, returning the
// field object and the selector node.
func addrOfField(info *types.Info, arg ast.Expr) (types.Object, ast.Node) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op.String() != "&" {
		return nil, nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	if s := info.Selections[sel]; s != nil {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v, sel
		}
	}
	return nil, nil
}

// checkAtomicSignature reports value receivers, parameters and results of
// atomic-bearing struct types on a function declaration.
func checkAtomicSignature(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	report := func(field *ast.Field, what string) {
		t := info.TypeOf(field.Type)
		if atomicCopyHostile(t) {
			pass.Reportf(field.Pos(), "%s passes %s by value; it holds atomic values and must be passed by pointer", what, t)
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			report(field, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			report(field, "parameter")
		}
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			report(field, "result")
		}
	}
}

// checkAtomicCopyExpr reports an expression whose evaluation copies an
// atomic-bearing struct: dereferences, variable reads and call results of
// such types. Composite literals are construction, not copies.
func checkAtomicCopyExpr(pass *Pass, info *types.Info, e ast.Expr) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.CompositeLit, *ast.FuncLit:
		return
	case *ast.UnaryExpr:
		// &T{...} or &x: produces a pointer, no copy.
		return
	}
	t := info.TypeOf(e)
	if !atomicCopyHostile(t) {
		return
	}
	pass.Reportf(e.Pos(), "copies %s by value; it holds atomic values (use a pointer)", t)
}
