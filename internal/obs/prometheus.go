package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName sanitizes an ad-hoc metric name into the Prometheus charset
// ([a-zA-Z0-9_]); anything else becomes '_'.
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promHistogram(w io.Writer, name, labels string, h HistogramSnapshot) {
	var cum int64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=\"%d\"} %d\n", name, labels, bound, cum)
	}
	cum += h.Counts[len(h.Counts)-1]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(w, "%s_sum{%s} %d\n", name, strings.TrimSuffix(labels, ","), h.Sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, strings.TrimSuffix(labels, ","), h.Count)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4).
func WritePrometheus(w io.Writer, snap Snapshot) {
	fmt.Fprintf(w, "# HELP streampca_uptime_seconds Seconds since the instrument set was created.\n")
	fmt.Fprintf(w, "# TYPE streampca_uptime_seconds gauge\n")
	fmt.Fprintf(w, "streampca_uptime_seconds %g\n", float64(snap.UptimeNs)/1e9)

	if len(snap.Operators) > 0 {
		fmt.Fprintf(w, "# HELP streampca_op_latency_ns Per-operator Process latency in nanoseconds.\n")
		fmt.Fprintf(w, "# TYPE streampca_op_latency_ns histogram\n")
		for _, op := range snap.Operators {
			if op.Latency.Count > 0 || len(op.Latency.Bounds) > 0 {
				promHistogram(w, "streampca_op_latency_ns", fmt.Sprintf("op=%q,", op.Name), op.Latency)
			}
		}
		fmt.Fprintf(w, "# HELP streampca_op_batch_size Per-operator processed message tuple weight.\n")
		fmt.Fprintf(w, "# TYPE streampca_op_batch_size histogram\n")
		for _, op := range snap.Operators {
			if len(op.BatchSize.Bounds) > 0 {
				promHistogram(w, "streampca_op_batch_size", fmt.Sprintf("op=%q,", op.Name), op.BatchSize)
			}
		}
		fmt.Fprintf(w, "# HELP streampca_op_queue_depth Input backlog observed at dequeue.\n")
		fmt.Fprintf(w, "# TYPE streampca_op_queue_depth histogram\n")
		for _, op := range snap.Operators {
			if len(op.QueueDepth.Bounds) > 0 {
				promHistogram(w, "streampca_op_queue_depth", fmt.Sprintf("op=%q,", op.Name), op.QueueDepth)
			}
		}
		fmt.Fprintf(w, "# HELP streampca_op_tuples_total Cumulative tuples through each operator.\n")
		fmt.Fprintf(w, "# TYPE streampca_op_tuples_total counter\n")
		for _, op := range snap.Operators {
			if op.Counters == nil {
				continue
			}
			fmt.Fprintf(w, "streampca_op_tuples_total{op=%q,dir=\"in\"} %d\n", op.Name, op.Counters.TuplesIn)
			fmt.Fprintf(w, "streampca_op_tuples_total{op=%q,dir=\"out\"} %d\n", op.Name, op.Counters.TuplesOut)
		}
		fmt.Fprintf(w, "# HELP streampca_op_dropped_total Messages dropped on droppable edges.\n")
		fmt.Fprintf(w, "# TYPE streampca_op_dropped_total counter\n")
		for _, op := range snap.Operators {
			if op.Counters != nil {
				fmt.Fprintf(w, "streampca_op_dropped_total{op=%q} %d\n", op.Name, op.Counters.Dropped)
			}
		}
		fmt.Fprintf(w, "# HELP streampca_op_queue_len Current input backlog per operator.\n")
		fmt.Fprintf(w, "# TYPE streampca_op_queue_len gauge\n")
		for _, op := range snap.Operators {
			if op.Counters != nil {
				fmt.Fprintf(w, "streampca_op_queue_len{op=%q} %d\n", op.Name, op.Counters.QueueLen)
			}
		}
	}

	if len(snap.Engines) > 0 {
		fmt.Fprintf(w, "# HELP streampca_engine_sigma2 Robust M-scale estimate per engine.\n")
		fmt.Fprintf(w, "# TYPE streampca_engine_sigma2 gauge\n")
		for _, e := range snap.Engines {
			fmt.Fprintf(w, "streampca_engine_sigma2{engine=\"%d\"} %g\n", e.Index, e.Sigma2)
		}
		fmt.Fprintf(w, "# HELP streampca_engine_eff_n Forgetting-factor effective sample size.\n")
		fmt.Fprintf(w, "# TYPE streampca_engine_eff_n gauge\n")
		for _, e := range snap.Engines {
			fmt.Fprintf(w, "streampca_engine_eff_n{engine=\"%d\"} %g\n", e.Index, e.EffN)
		}
		fmt.Fprintf(w, "# HELP streampca_engine_since_sync Observations since the engine last synchronized.\n")
		fmt.Fprintf(w, "# TYPE streampca_engine_since_sync gauge\n")
		for _, e := range snap.Engines {
			fmt.Fprintf(w, "streampca_engine_since_sync{engine=\"%d\"} %g\n", e.Index, e.SinceSync)
		}
		fmt.Fprintf(w, "# HELP streampca_engine_eigenvalue Leading eigenvalues of the tracked subspace.\n")
		fmt.Fprintf(w, "# TYPE streampca_engine_eigenvalue gauge\n")
		for _, e := range snap.Engines {
			for i, v := range e.Eigenvalues {
				fmt.Fprintf(w, "streampca_engine_eigenvalue{engine=\"%d\",rank=\"%d\"} %g\n", e.Index, i, v)
			}
		}
		fmt.Fprintf(w, "# HELP streampca_engine_eigengap Gap between the p-th and (p+1)-th eigenvalues.\n")
		fmt.Fprintf(w, "# TYPE streampca_engine_eigengap gauge\n")
		for _, e := range snap.Engines {
			fmt.Fprintf(w, "streampca_engine_eigengap{engine=\"%d\"} %g\n", e.Index, e.Eigengap)
		}
		fmt.Fprintf(w, "# HELP streampca_engine_outlier_rate Fraction of observations flagged as outliers.\n")
		fmt.Fprintf(w, "# TYPE streampca_engine_outlier_rate gauge\n")
		for _, e := range snap.Engines {
			fmt.Fprintf(w, "streampca_engine_outlier_rate{engine=\"%d\"} %g\n", e.Index, e.OutlierRate)
		}
		fmt.Fprintf(w, "# HELP streampca_engine_observations_total Observations processed per engine.\n")
		fmt.Fprintf(w, "# TYPE streampca_engine_observations_total counter\n")
		for _, e := range snap.Engines {
			fmt.Fprintf(w, "streampca_engine_observations_total{engine=\"%d\"} %d\n", e.Index, e.Observations)
		}
		fmt.Fprintf(w, "# HELP streampca_engine_rebuilds_total Eigensystem rebuilds by route.\n")
		fmt.Fprintf(w, "# TYPE streampca_engine_rebuilds_total counter\n")
		for _, e := range snap.Engines {
			fmt.Fprintf(w, "streampca_engine_rebuilds_total{engine=\"%d\",kind=\"rank-one\"} %d\n", e.Index, e.Rebuilds.RankOne)
			fmt.Fprintf(w, "streampca_engine_rebuilds_total{engine=\"%d\",kind=\"rank-c\"} %d\n", e.Index, e.Rebuilds.RankC)
			fmt.Fprintf(w, "streampca_engine_rebuilds_total{engine=\"%d\",kind=\"svd\"} %d\n", e.Index, e.Rebuilds.SVD)
		}
	}

	fmt.Fprintf(w, "# HELP streampca_sync_rounds_total Planned synchronization rounds.\n")
	fmt.Fprintf(w, "# TYPE streampca_sync_rounds_total counter\n")
	fmt.Fprintf(w, "streampca_sync_rounds_total %d\n", snap.Sync.Rounds)
	fmt.Fprintf(w, "# HELP streampca_sync_staleness_seconds Seconds since the last planned sync round.\n")
	fmt.Fprintf(w, "# TYPE streampca_sync_staleness_seconds gauge\n")
	fmt.Fprintf(w, "streampca_sync_staleness_seconds %g\n", float64(snap.Sync.StalenessNs)/1e9)

	fmt.Fprintf(w, "# HELP streampca_journal_events Journal entries retained and lost.\n")
	fmt.Fprintf(w, "# TYPE streampca_journal_events gauge\n")
	fmt.Fprintf(w, "streampca_journal_events{state=\"retained\"} %d\n", snap.Journal.Len)
	fmt.Fprintf(w, "streampca_journal_events{state=\"dropped\"} %d\n", snap.Journal.Dropped)

	for _, kv := range sortedGauges(snap.Gauges) {
		fmt.Fprintf(w, "streampca_%s %g\n", promName(kv.k), kv.v)
	}
	for _, kv := range sortedCounters(snap.Counters) {
		fmt.Fprintf(w, "streampca_%s %d\n", promName(kv.k), kv.v)
	}
}

type gaugeKV struct {
	k string
	v float64
}

type counterKV struct {
	k string
	v int64
}

func sortedGauges(m map[string]float64) []gaugeKV {
	out := make([]gaugeKV, 0, len(m))
	for k, v := range m {
		out = append(out, gaugeKV{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

func sortedCounters(m map[string]int64) []counterKV {
	out := make([]counterKV, 0, len(m))
	for k, v := range m {
		out = append(out, counterKV{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}
