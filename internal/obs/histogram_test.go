package obs

import (
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 500, 1001, 5000} {
		h.Record(v)
	}
	s := h.Snapshot()
	// ≤10: {1,10}; ≤100: {11,100}; ≤1000: {500}; overflow: {1001,5000}
	exp := []int64{2, 2, 1, 2}
	if len(s.Counts) != 4 {
		t.Fatalf("counts len = %d, want 4", len(s.Counts))
	}
	for i, e := range exp {
		if s.Counts[i] != e {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], e)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 1+10+11+100+500+1001+5000 {
		t.Errorf("sum = %d", s.Sum)
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 30, 40})
	for i := int64(1); i <= 40; i++ {
		h.Record(i)
	}
	s := h.Snapshot()
	if got := s.Mean(); got != 820.0/40 {
		t.Errorf("mean = %g, want %g", got, 820.0/40)
	}
	if got := s.Quantile(0.5); got != 20 {
		t.Errorf("p50 = %d, want 20", got)
	}
	if got := s.Quantile(0.99); got != 40 {
		t.Errorf("p99 = %d, want 40", got)
	}
	var empty HistogramSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty snapshot should report zeros")
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	h := NewHistogram([]int64{10})
	h.Record(1000)
	if got := h.Snapshot().Quantile(0.5); got != 10 {
		t.Errorf("overflow quantile = %d, want last finite bound 10", got)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for i := 0; i < per; i++ {
				v = v*6364136223846793005 + 1442695040888963407
				h.Record(v & 0xFFFFF)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {5, 5}, {10, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestPresetBoundsStrictlyIncreasing(t *testing.T) {
	for name, bounds := range map[string][]int64{
		"latency": LatencyBounds(),
		"size":    SizeBounds(),
		"depth":   DepthBounds(),
	} {
		NewHistogram(bounds) // panics on a bad layout
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Errorf("%s bounds not increasing at %d", name, i)
			}
		}
	}
}
