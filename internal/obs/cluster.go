package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// ClusterCollector is the coordinator side of the distributed observability
// plane: it absorbs worker Reports, keeps the newest cumulative snapshot
// per node, merges their journals by gap-free sequence number, and serves
// the merged view (JSON, Prometheus with node labels, one skew-corrected
// Chrome trace). The coordinator's own instrument set participates as node
// "coordinator" with clock offset zero — its clock is the cluster timeline.
type ClusterCollector struct {
	local *Collector
	mu    sync.Mutex
	nodes map[string]*clusterNode
}

// clusterNode is the per-worker aggregation state.
type clusterNode struct {
	name string
	last Report
	// reports counts distinct reports absorbed; dups counts redeliveries
	// (report seq at or below one already absorbed — the at-least-once
	// transport doing its job).
	reports, dups int64
	// evNext is the next journal Seq expected; gaps totals the events the
	// seq chain proves were never delivered.
	evNext int64
	gaps   int64
	// events is the merged, deduplicated journal window (bounded; oldest
	// dropped first and counted in evDropped).
	events    []Event
	evDropped int64
}

// clusterEventCap bounds the merged journal window retained per node.
const clusterEventCap = DefaultJournalCap

// CoordinatorNode is the node name the coordinator's own set reports under.
const CoordinatorNode = "coordinator"

// NewClusterCollector returns a cluster collector whose local (coordinator)
// view is read from c; a nil c is allowed and simply omits the local node.
func NewClusterCollector(c *Collector) *ClusterCollector {
	return &ClusterCollector{local: c, nodes: make(map[string]*clusterNode)}
}

// Local returns the coordinator's own collector (nil when detached).
func (cc *ClusterCollector) Local() *Collector { return cc.local }

// Absorb merges one worker report. Idempotent under redelivery: a report
// whose Seq was already absorbed only bumps the node's duplicate counter,
// and journal events are deduplicated by their gap-free Seq, so the
// at-least-once report transport never double-counts. Returns false for a
// duplicate.
func (cc *ClusterCollector) Absorb(r Report) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	n := cc.nodes[r.Node]
	if n == nil {
		n = &clusterNode{name: r.Node}
		cc.nodes[r.Node] = n
	}
	if n.reports > 0 && r.Seq <= n.last.Seq {
		n.dups++
		return false
	}
	n.reports++
	n.last = r
	for _, ev := range r.Events {
		if ev.Seq < n.evNext {
			continue // overlap-window redelivery
		}
		if ev.Seq > n.evNext {
			n.gaps += ev.Seq - n.evNext
		}
		n.events = append(n.events, ev)
		n.evNext = ev.Seq + 1
	}
	if over := len(n.events) - clusterEventCap; over > 0 {
		n.evDropped += int64(over)
		n.events = append(n.events[:0], n.events[over:]...)
	}
	return true
}

// AbsorbJSON decodes a JSON-encoded report (the wire obs-report body) and
// absorbs it.
func (cc *ClusterCollector) AbsorbJSON(body []byte) error {
	var r Report
	if err := json.Unmarshal(body, &r); err != nil {
		return fmt.Errorf("obs: decoding cluster report: %w", err)
	}
	if r.Node == "" {
		return fmt.Errorf("obs: cluster report without a node name")
	}
	cc.Absorb(r)
	return nil
}

// NodeSnapshot is one node's entry in the cluster view.
type NodeSnapshot struct {
	Node string `json:"node"`
	// ReportSeq is the newest absorbed report's sequence number (0 for the
	// coordinator, which is read directly, not reported).
	ReportSeq int64 `json:"report_seq"`
	// Reports / DupReports / EventGaps / EventsMerged are the at-least-once
	// accounting: distinct reports absorbed, redeliveries discarded, journal
	// events the seq chain proves lost, and events merged into the window.
	Reports      int64 `json:"reports"`
	DupReports   int64 `json:"dup_reports"`
	EventGaps    int64 `json:"event_gaps"`
	EventsMerged int64 `json:"events_merged"`
	// ClockOffsetNs is the node's offset onto the coordinator clock and
	// ClockRTTNs the round trip bounding its error (±rtt/2).
	ClockOffsetNs int64 `json:"clock_offset_ns"`
	ClockRTTNs    int64 `json:"clock_rtt_ns"`
	// Snapshot is the node's newest cumulative snapshot.
	Snapshot Snapshot `json:"snapshot"`
}

// ClusterSnapshot is the merged cluster view.
type ClusterSnapshot struct {
	TakenNs int64 `json:"taken_ns"`
	// Nodes holds the coordinator first, then workers sorted by name.
	Nodes []NodeSnapshot `json:"nodes"`
	// E2ELatency is the cluster-wide end-to-end tuple-latency histogram:
	// every node's fixed-bucket histogram summed bucket-wise.
	E2ELatency *HistogramSnapshot `json:"e2e_latency_ns,omitempty"`
}

// Snapshot builds the merged cluster view: a fresh local snapshot plus the
// newest absorbed report per worker, with the end-to-end histograms merged
// by bucket addition.
func (cc *ClusterCollector) Snapshot() ClusterSnapshot {
	var cs ClusterSnapshot
	if cc.local != nil {
		local := cc.local.Refresh()
		cs.TakenNs = local.TakenNs
		cs.Nodes = append(cs.Nodes, NodeSnapshot{
			Node:     CoordinatorNode,
			Snapshot: local,
		})
	}
	cc.mu.Lock()
	names := make([]string, 0, len(cc.nodes))
	for name := range cc.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := cc.nodes[name]
		cs.Nodes = append(cs.Nodes, NodeSnapshot{
			Node:          n.name,
			ReportSeq:     n.last.Seq,
			Reports:       n.reports,
			DupReports:    n.dups,
			EventGaps:     n.gaps,
			EventsMerged:  int64(len(n.events)) + n.evDropped,
			ClockOffsetNs: n.last.ClockOffsetNs,
			ClockRTTNs:    n.last.ClockRTTNs,
			Snapshot:      n.last.Snapshot,
		})
		if cs.TakenNs < n.last.Snapshot.TakenNs {
			cs.TakenNs = n.last.Snapshot.TakenNs
		}
	}
	cc.mu.Unlock()
	var e2e HistogramSnapshot
	for _, ns := range cs.Nodes {
		if ns.Snapshot.E2ELatency != nil {
			e2e.MergeFrom(*ns.Snapshot.E2ELatency)
		}
	}
	if e2e.Count > 0 {
		cs.E2ELatency = &e2e
	}
	return cs
}

// WriteClusterPrometheus renders the cluster view in the Prometheus text
// format. Every sample carries a node label; per-node e2e histograms come
// labeled and the merged one unlabeled, so both a per-worker and a
// cluster-wide latency objective are one query away.
func WriteClusterPrometheus(w io.Writer, cs ClusterSnapshot) {
	fmt.Fprintf(w, "# HELP streampca_cluster_nodes Nodes visible in the merged cluster view.\n")
	fmt.Fprintf(w, "# TYPE streampca_cluster_nodes gauge\n")
	fmt.Fprintf(w, "streampca_cluster_nodes %d\n", len(cs.Nodes))

	fmt.Fprintf(w, "# HELP streampca_node_uptime_seconds Per-node seconds since instrument-set creation.\n")
	fmt.Fprintf(w, "# TYPE streampca_node_uptime_seconds gauge\n")
	for _, n := range cs.Nodes {
		fmt.Fprintf(w, "streampca_node_uptime_seconds{node=%q} %g\n", n.Node, float64(n.Snapshot.UptimeNs)/1e9)
	}

	fmt.Fprintf(w, "# HELP streampca_node_reports_total Distinct observability reports absorbed per node.\n")
	fmt.Fprintf(w, "# TYPE streampca_node_reports_total counter\n")
	for _, n := range cs.Nodes {
		fmt.Fprintf(w, "streampca_node_reports_total{node=%q} %d\n", n.Node, n.Reports)
	}
	fmt.Fprintf(w, "# HELP streampca_node_report_dups_total Redelivered reports discarded per node.\n")
	fmt.Fprintf(w, "# TYPE streampca_node_report_dups_total counter\n")
	for _, n := range cs.Nodes {
		fmt.Fprintf(w, "streampca_node_report_dups_total{node=%q} %d\n", n.Node, n.DupReports)
	}
	fmt.Fprintf(w, "# HELP streampca_node_event_gaps_total Journal events the report seq chain proves lost.\n")
	fmt.Fprintf(w, "# TYPE streampca_node_event_gaps_total counter\n")
	for _, n := range cs.Nodes {
		fmt.Fprintf(w, "streampca_node_event_gaps_total{node=%q} %d\n", n.Node, n.EventGaps)
	}

	fmt.Fprintf(w, "# HELP streampca_node_clock_offset_seconds Estimated node clock offset onto the coordinator clock.\n")
	fmt.Fprintf(w, "# TYPE streampca_node_clock_offset_seconds gauge\n")
	for _, n := range cs.Nodes {
		fmt.Fprintf(w, "streampca_node_clock_offset_seconds{node=%q} %g\n", n.Node, float64(n.ClockOffsetNs)/1e9)
	}
	fmt.Fprintf(w, "# HELP streampca_node_clock_rtt_seconds Round trip of the kept clock sample (error bound = rtt/2).\n")
	fmt.Fprintf(w, "# TYPE streampca_node_clock_rtt_seconds gauge\n")
	for _, n := range cs.Nodes {
		fmt.Fprintf(w, "streampca_node_clock_rtt_seconds{node=%q} %g\n", n.Node, float64(n.ClockRTTNs)/1e9)
	}

	fmt.Fprintf(w, "# HELP streampca_node_engine_observations_total Observations processed per engine per node.\n")
	fmt.Fprintf(w, "# TYPE streampca_node_engine_observations_total counter\n")
	for _, n := range cs.Nodes {
		for _, e := range n.Snapshot.Engines {
			fmt.Fprintf(w, "streampca_node_engine_observations_total{node=%q,engine=\"%d\"} %d\n",
				n.Node, e.Index, e.Observations)
		}
	}
	fmt.Fprintf(w, "# HELP streampca_node_engine_outlier_rate Outlier fraction per engine per node.\n")
	fmt.Fprintf(w, "# TYPE streampca_node_engine_outlier_rate gauge\n")
	for _, n := range cs.Nodes {
		for _, e := range n.Snapshot.Engines {
			fmt.Fprintf(w, "streampca_node_engine_outlier_rate{node=%q,engine=\"%d\"} %g\n",
				n.Node, e.Index, e.OutlierRate)
		}
	}

	fmt.Fprintf(w, "# HELP streampca_node_op_tuples_total Cumulative tuples through each operator, per node.\n")
	fmt.Fprintf(w, "# TYPE streampca_node_op_tuples_total counter\n")
	for _, n := range cs.Nodes {
		for _, op := range n.Snapshot.Operators {
			if op.Counters == nil {
				continue
			}
			fmt.Fprintf(w, "streampca_node_op_tuples_total{node=%q,op=%q,dir=\"in\"} %d\n", n.Node, op.Name, op.Counters.TuplesIn)
			fmt.Fprintf(w, "streampca_node_op_tuples_total{node=%q,op=%q,dir=\"out\"} %d\n", n.Node, op.Name, op.Counters.TuplesOut)
		}
	}

	fmt.Fprintf(w, "# HELP streampca_node_op_latency_ns Per-operator Process latency in nanoseconds, per node.\n")
	fmt.Fprintf(w, "# TYPE streampca_node_op_latency_ns histogram\n")
	for _, n := range cs.Nodes {
		for _, op := range n.Snapshot.Operators {
			if op.Latency.Count > 0 {
				promHistogram(w, "streampca_node_op_latency_ns",
					fmt.Sprintf("node=%q,op=%q,", n.Node, op.Name), op.Latency)
			}
		}
	}

	// Ad-hoc gauges and counters (the wire edges' bytes_per_writev /
	// frames_per_writev / cork_stalls land here) with node labels.
	fmt.Fprintf(w, "# HELP streampca_node_journal_events Journal entries retained and lost per node.\n")
	fmt.Fprintf(w, "# TYPE streampca_node_journal_events gauge\n")
	for _, n := range cs.Nodes {
		fmt.Fprintf(w, "streampca_node_journal_events{node=%q,state=\"retained\"} %d\n", n.Node, n.Snapshot.Journal.Len)
		fmt.Fprintf(w, "streampca_node_journal_events{node=%q,state=\"dropped\"} %d\n", n.Node, n.Snapshot.Journal.Dropped)
	}
	for _, n := range cs.Nodes {
		for _, kv := range sortedGauges(n.Snapshot.Gauges) {
			fmt.Fprintf(w, "streampca_node_%s{node=%q} %g\n", promName(kv.k), n.Node, kv.v)
		}
		for _, kv := range sortedCounters(n.Snapshot.Counters) {
			fmt.Fprintf(w, "streampca_node_%s{node=%q} %d\n", promName(kv.k), n.Node, kv.v)
		}
	}

	if cs.E2ELatency != nil {
		fmt.Fprintf(w, "# HELP streampca_e2e_latency_ns End-to-end tuple latency, ingest stamp to outlier decision, cluster-wide.\n")
		fmt.Fprintf(w, "# TYPE streampca_e2e_latency_ns histogram\n")
		promHistogram(w, "streampca_e2e_latency_ns", "", *cs.E2ELatency)
	}
	fmt.Fprintf(w, "# HELP streampca_node_e2e_latency_ns End-to-end tuple latency per observing node.\n")
	fmt.Fprintf(w, "# TYPE streampca_node_e2e_latency_ns histogram\n")
	for _, n := range cs.Nodes {
		if n.Snapshot.E2ELatency != nil {
			promHistogram(w, "streampca_node_e2e_latency_ns", fmt.Sprintf("node=%q,", n.Node), *n.Snapshot.E2ELatency)
		}
	}
}

// WriteTrace renders the merged cluster trace as one Chrome trace-event
// document: the coordinator is pid 1 (its own spans and journal, exactly as
// the single-process exporter draws them) and each worker gets its own pid
// whose span and journal timestamps are shifted onto the coordinator
// timeline by the worker's estimated clock offset. Spans are emitted in
// corrected start order per lane, so every lane's timestamps are monotone.
func (cc *ClusterCollector) WriteTrace(w io.Writer) error {
	var epoch int64
	doc := traceDoc{DisplayTimeUnit: "ms"}
	add := func(ev traceEvent) { doc.TraceEvents = append(doc.TraceEvents, ev) }

	cc.mu.Lock()
	names := make([]string, 0, len(cc.nodes))
	for name := range cc.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	reports := make([]Report, 0, len(names))
	accounts := make([][]Event, 0, len(names))
	for _, name := range names {
		reports = append(reports, cc.nodes[name].last)
		accounts = append(accounts, append([]Event(nil), cc.nodes[name].events...))
	}
	cc.mu.Unlock()

	if cc.local != nil {
		epoch = cc.local.Set().StartNs()
	} else {
		// Detached coordinator view: anchor the timeline at the earliest
		// corrected worker epoch instead.
		for _, r := range reports {
			if s := r.StartNs + r.ClockOffsetNs; epoch == 0 || s < epoch {
				epoch = s
			}
		}
	}

	if cc.local != nil {
		set := cc.local.Set()
		add(traceEvent{Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]any{"name": "streampca " + CoordinatorNode}})
		add(traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: 0,
			Args: map[string]any{"name": "control-plane"}})
		for i, op := range set.opList() {
			tid := i + 1
			add(traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": "op:" + op.Name}})
			addSpanLane(add, 1, tid, op.Spans.Spans(), 0, epoch)
		}
		for _, ev := range set.Journal().Events(0) {
			add(instantEvent(ev, 1, 0, epoch))
		}
	}

	for i, r := range reports {
		pid := i + 2
		off := r.ClockOffsetNs
		add(traceEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": "streampca " + r.Node}})
		add(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "control-plane"}})
		for j, ops := range r.Spans {
			tid := j + 1
			add(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": "op:" + ops.Name}})
			addSpanLane(add, pid, tid, ops.Spans, off, epoch)
		}
		for _, ev := range accounts[i] {
			add(instantEvent(ev, pid, 0, epoch-off))
		}
	}

	return json.NewEncoder(w).Encode(&doc)
}

// addSpanLane emits one lane's spans with timestamps shifted by offsetNs
// onto the epoch timeline, sorted so the lane is monotone; pre-epoch and
// torn slots are skipped.
func addSpanLane(add func(traceEvent), pid, tid int, spans []Span, offsetNs, epoch int64) {
	corrected := make([]Span, 0, len(spans))
	for _, sp := range spans {
		start := sp.StartNs + offsetNs
		if sp.StartNs == 0 || start < epoch {
			continue
		}
		corrected = append(corrected, Span{StartNs: start, DurNs: sp.DurNs})
	}
	sort.Slice(corrected, func(i, j int) bool { return corrected[i].StartNs < corrected[j].StartNs })
	for _, sp := range corrected {
		add(traceEvent{
			Name: "process",
			Ph:   "X",
			Pid:  pid,
			Tid:  tid,
			Ts:   float64(sp.StartNs-epoch) / 1e3,
			Dur:  float64(sp.DurNs) / 1e3,
		})
	}
}

// instantEvent renders one journal event as a thread-scoped instant at its
// time relative to epoch (clamped to the timeline origin).
func instantEvent(ev Event, pid, tid int, epoch int64) traceEvent {
	ts := float64(ev.TimeNs-epoch) / 1e3
	if ts < 0 {
		ts = 0
	}
	args := map[string]any{"seq": ev.Seq, "n": ev.N, "a": ev.A, "b": ev.B}
	if ev.Node != "" {
		args["node"] = ev.Node
	}
	if ev.Engine >= 0 {
		args["engine"] = ev.Engine
	}
	return traceEvent{
		Name: ev.Kind.String(),
		Ph:   "i",
		Pid:  pid,
		Tid:  tid,
		Ts:   ts,
		S:    "t",
		Args: args,
	}
}

// ClusterHandler returns the coordinator's full observability surface: the
// per-process Handler over cc's local collector plus the cluster endpoints:
//
//	/cluster/metrics.json  merged ClusterSnapshot as JSON
//	/cluster/metrics       cluster Prometheus text with node labels
//	/cluster/trace.json    merged skew-corrected Chrome trace
func ClusterHandler(cc *ClusterCollector) http.Handler {
	mux := http.NewServeMux()
	if cc.local != nil {
		mux.Handle("/", Handler(cc.local))
	}
	mux.HandleFunc("/cluster/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(cc.Snapshot())
	})
	mux.HandleFunc("/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteClusterPrometheus(w, cc.Snapshot())
	})
	mux.HandleFunc("/cluster/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = cc.WriteTrace(w)
	})
	return mux
}
