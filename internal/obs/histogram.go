package obs

import "sync/atomic"

// Histogram is a lock-free fixed-bucket histogram over int64 samples.
// Bucket boundaries are fixed at construction: bucket i counts samples
// v ≤ bounds[i], and one implicit overflow bucket counts everything above
// the last bound. Record is a linear scan over at most a few dozen bounds
// plus one atomic add — allocation free and safe from any number of
// goroutines, which is what lets the stream runtime call it on the data hot
// path (streamvet-verified).
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last = overflow
	count  atomic.Int64
	sum    atomic.Int64
}

// NewHistogram builds a histogram over the given strictly increasing
// bucket upper bounds. It panics on an empty or non-increasing bounds
// slice — histogram layouts are build-time constants, not runtime data.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Record adds one sample.
//
//streampca:noalloc
func (h *Histogram) Record(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the running total of all recorded samples (in the sample's
// unit). Count and Sum together give windowed means by differencing two
// reads, without paying for a full bucket Snapshot.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram. Counts[i] is
// the number of samples ≤ Bounds[i]; the final extra entry of Counts is the
// overflow bucket.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds.
	Bounds []int64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries, the last being the overflow bucket.
	Counts []int64 `json:"counts"`
	// Count and Sum aggregate all samples (Sum in the sample's unit).
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
}

// Snapshot copies the current state. Buckets and totals are read without a
// barrier, so a snapshot taken mid-record can be off by in-flight samples —
// each value is itself torn-free.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// MergeFrom adds other's buckets and totals into s — the cluster-side
// histogram merge. Fixed bucket layouts make this exact: two histograms
// over the same bounds merge by plain bucket addition, no rebinning, no
// approximation beyond what one histogram already had. It reports false
// (merging nothing) when the layouts differ; an empty s adopts other's
// layout first.
func (s *HistogramSnapshot) MergeFrom(other HistogramSnapshot) bool {
	if other.Count == 0 && len(other.Bounds) == 0 {
		return true
	}
	if len(s.Bounds) == 0 {
		s.Bounds = append([]int64(nil), other.Bounds...)
		s.Counts = make([]int64, len(other.Counts))
	}
	if len(s.Bounds) != len(other.Bounds) || len(s.Counts) != len(other.Counts) {
		return false
	}
	for i, b := range s.Bounds {
		if other.Bounds[i] != b {
			return false
		}
	}
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Count += other.Count
	s.Sum += other.Sum
	return true
}

// Mean returns the mean sample value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1):
// the bound of the first bucket whose cumulative count reaches q·Count.
// Samples in the overflow bucket report the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			break
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LatencyBounds is the per-operator Process latency layout: exponential
// (×2) nanosecond buckets from 1µs to ~8.6s, 24 buckets. Sub-microsecond
// dispatches land in the first bucket; anything beyond ~8.6s overflows.
func LatencyBounds() []int64 {
	b := make([]int64, 24)
	v := int64(1_000) // 1µs
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// SizeBounds is the batch-size layout: power-of-two buckets 1..4096 —
// bare tuples land in the first bucket, frames by their tuple count.
func SizeBounds() []int64 {
	b := make([]int64, 13)
	v := int64(1)
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// DepthBounds is the queue-depth layout: 0, then powers of two to 4096.
// A zero depth (operator keeping up) is its own bucket so backpressure is a
// one-glance read.
func DepthBounds() []int64 {
	b := make([]int64, 14)
	b[0] = 0
	v := int64(1)
	for i := 1; i < len(b); i++ {
		b[i] = v
		v *= 2
	}
	return b
}
