package obs

import (
	"encoding/json"
	"io"
)

// traceEvent is one entry in the Chrome trace-event JSON format
// (chrome://tracing, also loadable at ui.perfetto.dev). Timestamps are
// microseconds relative to the trace epoch.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceDoc struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders the set's journal and per-operator busy spans as a
// Chrome trace-event document: each operator becomes a named thread whose
// Process calls are complete ("X") spans, and each journal entry becomes a
// global instant ("i") event on a control-plane thread. The timeline origin
// is the instrument set's creation time.
func WriteTrace(w io.Writer, set *Set) error {
	epoch := set.StartNs()
	doc := traceDoc{DisplayTimeUnit: "ms"}
	add := func(ev traceEvent) { doc.TraceEvents = append(doc.TraceEvents, ev) }

	add(traceEvent{Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "streampca"}})
	add(traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "control-plane"}})

	for i, op := range set.opList() {
		tid := i + 1
		add(traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": "op:" + op.Name}})
		for _, sp := range op.Spans.Spans() {
			if sp.StartNs < epoch {
				continue // torn or pre-epoch slot
			}
			add(traceEvent{
				Name: "process",
				Ph:   "X",
				Pid:  1,
				Tid:  tid,
				Ts:   float64(sp.StartNs-epoch) / 1e3,
				Dur:  float64(sp.DurNs) / 1e3,
			})
		}
	}

	for _, ev := range set.Journal().Events(0) {
		ts := float64(ev.TimeNs-epoch) / 1e3
		if ts < 0 {
			ts = 0
		}
		args := map[string]any{"seq": ev.Seq, "n": ev.N, "a": ev.A, "b": ev.B}
		if ev.Node != "" {
			args["node"] = ev.Node
		}
		if ev.Engine >= 0 {
			args["engine"] = ev.Engine
		}
		add(traceEvent{
			Name: ev.Kind.String(),
			Ph:   "i",
			Pid:  1,
			Tid:  0,
			Ts:   ts,
			S:    "g",
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
