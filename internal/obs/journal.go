package obs

import (
	"sync"
	"time"
)

// EventKind labels one control-plane journal event.
type EventKind uint8

// The journal event taxonomy. Data-plane traffic never reaches the journal;
// these are the rare, decision-shaped moments of a run — exactly the events
// a postmortem (or the Chrome trace view) needs to line up against the
// per-operator load.
const (
	// EvSyncPlan: the controller planned one sync round.
	// N = round, A = control commands issued, B = failed peers excluded.
	EvSyncPlan EventKind = iota + 1
	// EvSyncSend: an engine passed the 1.5·N criterion and shared its state.
	// Engine = sender, N = round, A = observations since last sync,
	// B = the threshold (factor·N) it had to exceed.
	EvSyncSend
	// EvSyncSkip: an engine was asked to share but refused — the data-driven
	// criterion failed. Fields as EvSyncSend.
	EvSyncSkip
	// EvSyncMerge: an engine absorbed a peer snapshot.
	// Engine = receiver, N = round, A = its own since-sync count, B = threshold.
	EvSyncMerge
	// EvNodeFailure: an operator panic was converted to a node-failed event.
	// Node = operator name, Engine = engine index when known (else -1).
	EvNodeFailure
	// EvNodeRevive: a failed node was revived.
	// Node = operator name, Engine = engine index, A = 1 when state was
	// resumed from a checkpoint, 0 for a cold restart.
	EvNodeRevive
	// EvCheckpointWrite: an engine serialized its state.
	// Engine = index, N = observations absorbed at the write.
	EvCheckpointWrite
	// EvCheckpointRestore: a revived engine replayed a checkpoint.
	// Engine = index, N = the restored observation count.
	EvCheckpointRestore
	// EvGrossOutliers: warm-up pre-filtering rejected buffer vectors.
	// Engine = index, N = vectors rejected, A = buffer size before filtering.
	EvGrossOutliers
	// EvEngineInit: an engine completed warm-up.
	// Engine = index, N = warm-up observations, A = initial σ².
	EvEngineInit
	// EvScaleRescue: the scale-collapse rescue fired.
	// Engine = index, A = rescued σ², B = the collapsed σ² it replaced.
	EvScaleRescue
	// EvRebuildShift: an engine's eigensystem rebuild route changed kind
	// (rank-one ↔ rank-c ↔ full SVD). Engine = index, N = the new kind
	// (RebuildKind), A = the previous kind. Recorded on transitions only, so
	// steady streams journal nothing while mode changes stay visible.
	EvRebuildShift
	// EvCrash / EvRecover: a simulated (cluster DES) engine crash/rejoin.
	// Engine = index, A = virtual time in seconds.
	EvCrash
	EvRecover
	// EvWireConnect: a remote edge (re)established its TCP link.
	// Node = edge name, Engine = peer engine index (-1 unknown),
	// N = connection generation (1 = first connect), A = dial attempts used.
	EvWireConnect
	// EvWireDown: a remote edge lost its TCP link and entered reconnect.
	// Node = edge name, Engine = peer engine index, N = the failed
	// generation, A = 1 when the failure was an injected reset, 0 otherwise.
	EvWireDown
	// EvWireEOS: a remote edge received the peer's clean end-of-stream frame.
	// Node = edge name, Engine = peer engine index, N = tuples received.
	EvWireEOS
	// EvAdaptRetune: the adaptive transport tuner moved the frame width or
	// flush deadline. Engine = -1 (the decision is source-level),
	// N = the new frame width, A = the new flush deadline in ns,
	// B = the tuples/s observed over the evaluation window that drove it.
	EvAdaptRetune
)

// String returns the stable lowercase name used in JSON and Prometheus
// exposition.
func (k EventKind) String() string {
	switch k {
	case EvSyncPlan:
		return "sync-plan"
	case EvSyncSend:
		return "sync-send"
	case EvSyncSkip:
		return "sync-skip"
	case EvSyncMerge:
		return "sync-merge"
	case EvNodeFailure:
		return "node-failure"
	case EvNodeRevive:
		return "node-revive"
	case EvCheckpointWrite:
		return "checkpoint-write"
	case EvCheckpointRestore:
		return "checkpoint-restore"
	case EvGrossOutliers:
		return "gross-outliers"
	case EvEngineInit:
		return "engine-init"
	case EvScaleRescue:
		return "scale-rescue"
	case EvRebuildShift:
		return "rebuild-shift"
	case EvCrash:
		return "crash"
	case EvRecover:
		return "recover"
	case EvWireConnect:
		return "wire-connect"
	case EvWireDown:
		return "wire-down"
	case EvWireEOS:
		return "wire-eos"
	case EvAdaptRetune:
		return "adapt-retune"
	default:
		return "unknown"
	}
}

// Event is one journal entry. The numeric fields N, A and B carry
// kind-specific values (documented on each EventKind) so appending an event
// never formats strings or allocates.
type Event struct {
	// Seq is the journal-assigned sequence number (monotone, gap free).
	Seq int64
	// TimeNs is the wall-clock Unix timestamp in nanoseconds.
	TimeNs int64
	// Kind classifies the event.
	Kind EventKind
	// Node is the stream node name, when the event concerns one ("" else).
	Node string
	// Engine is the engine index the event concerns, -1 when none.
	Engine int
	// N, A, B are kind-specific payloads (see the EventKind docs).
	N    int64
	A, B float64
}

// Journal is a bounded ring buffer of control-plane events. Appends are
// mutex-guarded (event rates are low), never allocate after construction,
// and never block on readers; once full, each append overwrites the oldest
// entry and the Dropped counter records the loss.
type Journal struct {
	mu      sync.Mutex
	ring    []Event
	next    int64 // total events ever appended == next Seq
	dropped int64
}

// DefaultJournalCap is the default ring capacity: at one sync round per
// 5 ms — an aggressive control rate — 4096 entries hold ~20 s of history.
const DefaultJournalCap = 4096

// NewJournal returns a journal holding the last capacity events
// (DefaultJournalCap when capacity ≤ 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{ring: make([]Event, capacity)}
}

// Append records ev, stamping Seq and (when ev.TimeNs is zero) the wall
// clock. Allocation free: the event is copied into the preallocated ring.
func (j *Journal) Append(ev Event) {
	if ev.TimeNs == 0 {
		ev.TimeNs = time.Now().UnixNano()
	}
	j.mu.Lock()
	ev.Seq = j.next
	if j.next >= int64(len(j.ring)) {
		j.dropped++
	}
	j.ring[j.next%int64(len(j.ring))] = ev
	j.next++
	j.mu.Unlock()
}

// Len returns the number of events currently retained.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.next < int64(len(j.ring)) {
		return int(j.next)
	}
	return len(j.ring)
}

// Dropped returns how many events were overwritten before being read.
func (j *Journal) Dropped() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// EventsSince returns the retained events with Seq ≥ since, oldest first,
// at most max of them (the oldest max, so a capped read keeps the sequence
// chain contiguous for incremental consumers); max ≤ 0 means no cap. Events
// older than since that the ring has already overwritten are simply absent —
// the caller sees the gap in the Seq numbering, which is the point: journal
// sequence numbers are gap-free at the source, so a reader that tracks the
// next expected Seq can count exactly how many events it lost.
func (j *Journal) EventsSince(since int64, max int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := int(j.next)
	start := 0
	if j.next >= int64(len(j.ring)) {
		n = len(j.ring)
		start = int(j.next % int64(len(j.ring)))
	}
	oldest := j.next - int64(n)
	if since > oldest {
		skip := since - oldest
		if skip >= int64(n) {
			return nil
		}
		start = (start + int(skip)) % len(j.ring)
		n -= int(skip)
	}
	if max > 0 && n > max {
		n = max
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = j.ring[(start+i)%len(j.ring)]
	}
	return out
}

// Next returns the sequence number the next appended event will get — the
// exclusive upper bound of everything journaled so far.
func (j *Journal) Next() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Events returns the retained events in append order, oldest first. A
// non-positive max returns everything retained; otherwise only the newest
// max events.
func (j *Journal) Events(max int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := int(j.next)
	start := 0
	if j.next >= int64(len(j.ring)) {
		n = len(j.ring)
		start = int(j.next % int64(len(j.ring)))
	}
	if max > 0 && max < n {
		start = (start + n - max) % len(j.ring)
		if j.next < int64(len(j.ring)) {
			start = n - max
		}
		n = max
	}
	out := make([]Event, n)
	for i := 0; i < n; i++ {
		out[i] = j.ring[(start+i)%len(j.ring)]
	}
	return out
}
