package obs

import "sync/atomic"

// Span is one completed unit of operator work: a Process call with its wall
// start time and duration, as exported to the Chrome trace timeline.
type Span struct {
	StartNs int64 // wall-clock Unix nanoseconds
	DurNs   int64
}

// SpanRing retains the most recent spans of one operator in a fixed ring.
// Record is lock free — one atomic slot claim plus two atomic stores — so the
// stream runtime can call it on every Process without contention. A reader
// racing a writer can observe a slot mid-overwrite (start from one span, dur
// from another); that is acceptable for a best-effort trace view and keeps
// the write path free of locks and allocations.
type SpanRing struct {
	start []atomic.Int64
	dur   []atomic.Int64
	next  atomic.Int64
}

// DefaultSpanCap is the per-operator span ring capacity. 2048 spans at
// ~25µs each cover the last ~50ms of a saturated operator — enough to fill a
// trace-viewer screen — while costing 32KiB per operator.
const DefaultSpanCap = 2048

// NewSpanRing returns a ring retaining the last capacity spans
// (DefaultSpanCap when capacity ≤ 0).
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanRing{
		start: make([]atomic.Int64, capacity),
		dur:   make([]atomic.Int64, capacity),
	}
}

// Record retains one span.
//
//streampca:noalloc
func (r *SpanRing) Record(startNs, durNs int64) {
	i := int(r.next.Add(1)-1) % len(r.start)
	r.start[i].Store(startNs)
	r.dur[i].Store(durNs)
}

// Spans returns the retained spans ordered oldest first. Spans still being
// overwritten may be dropped or torn; callers treat the result as a sample.
func (r *SpanRing) Spans() []Span {
	total := r.next.Load()
	n := int(total)
	first := 0
	if total > int64(len(r.start)) {
		n = len(r.start)
		first = int(total % int64(len(r.start)))
	}
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		j := (first + i) % len(r.start)
		s := Span{StartNs: r.start[j].Load(), DurNs: r.dur[j].Load()}
		if s.StartNs == 0 {
			continue // slot claimed but not yet written
		}
		out = append(out, s)
	}
	return out
}
