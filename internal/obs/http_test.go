package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getBody(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(b)
}

func TestHandlerEndpoints(t *testing.T) {
	s := NewSet()
	populate(s)
	c := NewCollector(s, 0)
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	code, body := getBody(t, srv, "/")
	if code != 200 || !strings.Contains(body, "/metrics.json") {
		t.Errorf("index: %d %q", code, body)
	}

	code, body = getBody(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "streampca_engine_sigma2") {
		t.Errorf("/metrics: %d missing sigma2 (%d bytes)", code, len(body))
	}

	code, body = getBody(t, srv, "/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json: %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not a Snapshot: %v", err)
	}
	if len(snap.Engines) != 1 || snap.Engines[0].Sigma2 != 1.25 {
		t.Errorf("json snapshot engines = %+v", snap.Engines)
	}

	code, body = getBody(t, srv, "/journal?max=2")
	if code != 200 {
		t.Fatalf("/journal: %d", code)
	}
	var jr struct {
		Len    int         `json:"len"`
		Events []EventView `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &jr); err != nil {
		t.Fatalf("/journal not JSON: %v", err)
	}
	if jr.Len != 3 || len(jr.Events) != 2 {
		t.Errorf("/journal = %+v", jr)
	}
	if code, _ := getBody(t, srv, "/journal?max=bogus"); code != 400 {
		t.Errorf("bad max should 400, got %d", code)
	}

	code, body = getBody(t, srv, "/trace.json")
	if code != 200 {
		t.Fatalf("/trace.json: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace.json not JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Error("trace.json missing traceEvents array")
	}

	code, body = getBody(t, srv, "/debug/pprof/cmdline")
	if code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}

	if code, _ := getBody(t, srv, "/nope"); code != 404 {
		t.Errorf("unknown path should 404, got %d", code)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	s := NewSet()
	populate(s)
	c := NewCollector(s, 0)
	srv, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatalf("GET against Serve addr: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
