package obs

import (
	"sync"
	"testing"
)

func TestJournalAppendAndOrder(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		j.Append(Event{Kind: EvSyncSend, Engine: i, N: int64(i)})
	}
	if j.Len() != 5 || j.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 5/0", j.Len(), j.Dropped())
	}
	evs := j.Events(0)
	for i, ev := range evs {
		if ev.Seq != int64(i) || ev.Engine != i {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
		if ev.TimeNs == 0 {
			t.Fatal("Append did not stamp TimeNs")
		}
	}
}

func TestJournalWrapsAndCountsDrops(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(Event{Kind: EvSyncSkip, N: int64(i)})
	}
	if j.Len() != 4 {
		t.Fatalf("len = %d, want 4", j.Len())
	}
	if j.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", j.Dropped())
	}
	evs := j.Events(0)
	for i, ev := range evs {
		if want := int64(6 + i); ev.N != want || ev.Seq != want {
			t.Fatalf("event %d = %+v, want N=Seq=%d", i, ev, want)
		}
	}
}

func TestJournalEventsMax(t *testing.T) {
	j := NewJournal(16)
	for i := 0; i < 10; i++ {
		j.Append(Event{Kind: EvSyncMerge, N: int64(i)})
	}
	evs := j.Events(3)
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if want := int64(7 + i); ev.N != want {
			t.Fatalf("event %d N = %d, want %d", i, ev.N, want)
		}
	}
	// max after wrap
	for i := 10; i < 40; i++ {
		j.Append(Event{Kind: EvSyncMerge, N: int64(i)})
	}
	evs = j.Events(5)
	if len(evs) != 5 {
		t.Fatalf("post-wrap len = %d, want 5", len(evs))
	}
	for i, ev := range evs {
		if want := int64(35 + i); ev.N != want {
			t.Fatalf("post-wrap event %d N = %d, want %d", i, ev.N, want)
		}
	}
}

func TestJournalConcurrentAppend(t *testing.T) {
	j := NewJournal(128)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Append(Event{Kind: EvCheckpointWrite})
			}
		}()
	}
	wg.Wait()
	if j.Len() != 128 {
		t.Fatalf("len = %d, want 128", j.Len())
	}
	if got := j.Dropped(); got != workers*per-128 {
		t.Fatalf("dropped = %d, want %d", got, workers*per-128)
	}
	evs := j.Events(0)
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{
		EvSyncPlan, EvSyncSend, EvSyncSkip, EvSyncMerge, EvNodeFailure,
		EvNodeRevive, EvCheckpointWrite, EvCheckpointRestore, EvGrossOutliers,
		EvEngineInit, EvScaleRescue, EvRebuildShift, EvCrash, EvRecover,
		EvWireConnect, EvWireDown, EvWireEOS,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || s == "" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Error("out-of-range kind should be unknown")
	}
}
