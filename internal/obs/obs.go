// Package obs is the repository's observability subsystem: lock-free
// fixed-bucket histograms for hot-path measurements, a bounded ring-buffer
// journal for control-plane events, atomic gauges and counters for
// algorithm-level state, and an exposition layer (JSON, Prometheus text
// format, Chrome trace events, pprof) that makes all of it inspectable over
// HTTP while a pipeline runs.
//
// The paper's placement optimizer (§III-D) is driven by per-operator
// profiling metrics and its data-driven synchronization (§III-C) hinges on
// the 1.5·N independence criterion; this package is what makes both — plus
// the robust estimator's scale/subspace trajectory — visible at runtime.
//
// Design rules:
//
//   - stdlib only: nothing here may import another streampca package, so
//     every layer (stream, core, syncctl, pipeline, cmds) can depend on it.
//   - The record path is allocation free and lock free: histograms, gauges,
//     counters and span rings are arrays of atomics written by the hot path
//     (//streampca:noalloc, enforced by streamvet) and read by snapshots.
//   - The journal is mutex-guarded but bounded and allocation free after
//     construction; control-plane event rates (sync rounds, failures,
//     checkpoints) are orders of magnitude below the data rate.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
//
//streampca:noalloc
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
//
//streampca:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically published float64 — the cell an engine writes its
// current M-scale (or eigenvalue, or effective N) into after every update so
// the HTTP layer can read a torn-free value without touching engine state.
type Gauge struct {
	bits atomic.Uint64
}

// Set publishes v.
//
//streampca:noalloc
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Get returns the last published value (0 before the first Set).
func (g *Gauge) Get() float64 { return math.Float64frombits(g.bits.Load()) }
