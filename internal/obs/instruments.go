package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// OpInstruments is the per-operator hot-path instrument bundle the stream
// runtime writes into on every Process call. All fields are lock free; the
// bundle is handed to an operator once at wiring time so the record path
// never touches a map or lock.
type OpInstruments struct {
	// Name is the stream node name.
	Name string
	// Latency buckets Process wall time in nanoseconds.
	Latency *Histogram
	// BatchSize buckets the tuple weight of each processed message.
	BatchSize *Histogram
	// QueueDepth buckets the input-port backlog observed at dequeue.
	QueueDepth *Histogram
	// Spans retains recent Process busy spans for the trace exporter.
	Spans *SpanRing
}

func newOpInstruments(name string) *OpInstruments {
	return &OpInstruments{
		Name:       name,
		Latency:    NewHistogram(LatencyBounds()),
		BatchSize:  NewHistogram(SizeBounds()),
		QueueDepth: NewHistogram(DepthBounds()),
		Spans:      NewSpanRing(0),
	}
}

// RecordProcess records one Process call: its wall start time and duration
// in nanoseconds, the tuple weight of the message, and the input backlog
// observed when it was dequeued.
//
//streampca:noalloc
func (o *OpInstruments) RecordProcess(startNs, durNs, weight int64, queueLen int) {
	o.Latency.Record(durNs)
	o.BatchSize.Record(weight)
	o.QueueDepth.Record(int64(queueLen))
	o.Spans.Record(startNs, durNs)
}

// RebuildKind labels which eigensystem rebuild route an engine update took.
type RebuildKind int64

const (
	RebuildRankOne RebuildKind = 1 // structured analytic rank-one update
	RebuildRankC   RebuildKind = 2 // block-incremental rank-c update
	RebuildSVD     RebuildKind = 3 // full thin-SVD rebuild
)

// String returns the stable name used in exposition.
func (k RebuildKind) String() string {
	switch k {
	case RebuildRankOne:
		return "rank-one"
	case RebuildRankC:
		return "rank-c"
	case RebuildSVD:
		return "svd"
	default:
		return "unknown"
	}
}

// MaxEigGauges bounds how many leading eigenvalues an engine publishes.
const MaxEigGauges = 16

// EngineInstruments publishes one engine's algorithm-level state: the robust
// M-scale, the leading eigenvalues and eigengap, the forgetting-factor
// effective N, and outlier/rebuild tallies. Every publish is an atomic store;
// the Observe/ObserveBlock hot path pays ~a dozen uncontended atomics per
// update.
type EngineInstruments struct {
	// Index is the engine's index in the pipeline (-1 when standalone).
	Index int

	// Sigma2 is the current robust M-scale estimate σ².
	Sigma2 Gauge
	// EffN is the forgetting-factor effective sample size.
	EffN Gauge
	// SinceSync is the number of observations absorbed since the last sync.
	SinceSync Gauge
	// LastWeight is the most recent observation's robustness weight.
	LastWeight Gauge
	// Eigengap is λ_p − λ_{p+1} for the configured component count p
	// (0 when the subspace holds no spare direction to measure against).
	Eigengap Gauge

	// Observations counts processed vectors; Outliers counts those whose
	// robustness weight fell below the outlier threshold. Their ratio is the
	// outlier-rejection rate exposed by snapshots.
	Observations Counter
	Outliers     Counter

	// RankOne/RankC/SVD count eigensystem rebuilds by route.
	RankOne Counter
	RankC   Counter
	SVD     Counter

	eig      [MaxEigGauges]Gauge
	eigCount atomic.Int64

	lastRebuild atomic.Int64
	journal     *Journal
}

// RecordEigen publishes the leading eigenvalues (up to MaxEigGauges) and the
// eigengap λ_p − λ_{p+1} for component count p.
//
//streampca:noalloc
func (e *EngineInstruments) RecordEigen(vals []float64, p int) {
	n := len(vals)
	if n > MaxEigGauges {
		n = MaxEigGauges
	}
	for i := 0; i < n; i++ {
		e.eig[i].Set(vals[i])
	}
	e.eigCount.Store(int64(n))
	if p > 0 && p < len(vals) {
		e.Eigengap.Set(vals[p-1] - vals[p])
	} else {
		e.Eigengap.Set(0)
	}
}

// Eigenvalues returns the last published leading eigenvalues.
func (e *EngineInstruments) Eigenvalues() []float64 {
	n := int(e.eigCount.Load())
	out := make([]float64, n)
	for i := range out {
		out[i] = e.eig[i].Get()
	}
	return out
}

// RecordRebuild tallies one eigensystem rebuild and journals an
// EvRebuildShift when the route changes kind — steady operation journals
// nothing, mode transitions stay visible.
//
//streampca:noalloc
func (e *EngineInstruments) RecordRebuild(kind RebuildKind) {
	switch kind {
	case RebuildRankOne:
		e.RankOne.Inc()
	case RebuildRankC:
		e.RankC.Inc()
	case RebuildSVD:
		e.SVD.Inc()
	}
	prev := e.lastRebuild.Swap(int64(kind))
	if prev != int64(kind) && prev != 0 && e.journal != nil {
		e.journal.Append(Event{
			Kind:   EvRebuildShift,
			Engine: e.Index,
			N:      int64(kind),
			A:      float64(prev),
		})
	}
}

// RecordInit journals warm-up completion: n buffered observations seeded an
// eigensystem with initial scale sigma2.
func (e *EngineInstruments) RecordInit(n int64, sigma2 float64) {
	if e.journal != nil {
		e.journal.Append(Event{Kind: EvEngineInit, Engine: e.Index, N: n, A: sigma2})
	}
}

// RecordGrossOutliers journals warm-up pre-filtering: rejected vectors
// dropped from a buffer of bufSize.
func (e *EngineInstruments) RecordGrossOutliers(rejected int64, bufSize int) {
	if e.journal != nil {
		e.journal.Append(Event{Kind: EvGrossOutliers, Engine: e.Index,
			N: rejected, A: float64(bufSize)})
	}
}

// RecordRescue journals one scale-collapse rescue: σ² jumped from collapsed
// to rescued.
//
//streampca:noalloc
func (e *EngineInstruments) RecordRescue(rescued, collapsed float64) {
	if e.journal != nil {
		e.journal.Append(Event{Kind: EvScaleRescue, Engine: e.Index,
			A: rescued, B: collapsed})
	}
}

// SyncInstruments publishes the synchronization controller's view: round
// tallies and the wall time of the last plan, from which snapshots derive a
// staleness gauge.
type SyncInstruments struct {
	// Rounds counts planned sync rounds; Commands counts control commands
	// issued across all rounds; Excluded counts peer slots skipped because
	// the peer was marked failed.
	Rounds   Counter
	Commands Counter
	Excluded Counter

	lastPlanNs atomic.Int64
	journal    *Journal
}

// RecordPlan records one planned round: cmds control commands issued with
// failed peers excluded.
func (s *SyncInstruments) RecordPlan(round int64, cmds, failed int) {
	s.Rounds.Inc()
	s.Commands.Add(int64(cmds))
	s.Excluded.Add(int64(failed))
	now := time.Now().UnixNano()
	s.lastPlanNs.Store(now)
	if s.journal != nil {
		s.journal.Append(Event{
			Kind:   EvSyncPlan,
			Engine: -1,
			TimeNs: now,
			N:      round,
			A:      float64(cmds),
			B:      float64(failed),
		})
	}
}

// LastPlanNs returns the wall time of the most recent plan (0 before any).
func (s *SyncInstruments) LastPlanNs() int64 { return s.lastPlanNs.Load() }

// OpCounters mirrors the stream runtime's cumulative per-operator counters.
// It is declared here (rather than importing the stream package) so obs stays
// a leaf package; the pipeline installs an adapter that converts
// stream.MetricsSnapshot values into this shape.
type OpCounters struct {
	Name      string `json:"name"`
	In        int64  `json:"in"`
	Out       int64  `json:"out"`
	TuplesIn  int64  `json:"tuples_in"`
	TuplesOut int64  `json:"tuples_out"`
	Dropped   int64  `json:"dropped"`
	BusyNs    int64  `json:"busy_ns"`
	QueueLen  int64  `json:"queue_len"`
}

// Set is the root of one run's instruments: the journal, per-operator
// bundles, per-engine gauges, the sync controller's instruments, and any
// ad-hoc named gauges/counters a binary wants exposed. Instrument handles are
// created at wiring time under a lock and then written lock free.
type Set struct {
	mu      sync.Mutex
	ops     map[string]*OpInstruments
	engines map[int]*EngineInstruments
	gauges  map[string]*Gauge
	ctrs    map[string]*Counter

	sync    SyncInstruments
	journal *Journal
	e2e     *Histogram

	opCounters atomic.Pointer[func() []OpCounters]
	startNs    int64
}

// NewSet returns an empty instrument set with a DefaultJournalCap journal.
func NewSet() *Set {
	s := &Set{
		ops:     make(map[string]*OpInstruments),
		engines: make(map[int]*EngineInstruments),
		gauges:  make(map[string]*Gauge),
		ctrs:    make(map[string]*Counter),
		journal: NewJournal(0),
		e2e:     NewHistogram(LatencyBounds()),
		startNs: time.Now().UnixNano(),
	}
	s.sync.journal = s.journal
	return s
}

// E2E is the end-to-end tuple-latency histogram: ingest-time stamp to
// outlier decision, measured per frame on the observing engine's clock
// after skew correction. Cross-process by construction — the stamp rides
// the wire in the frame's trace context — and mergeable across nodes
// because every set uses the same LatencyBounds layout.
func (s *Set) E2E() *Histogram { return s.e2e }

// Journal returns the set's event journal.
func (s *Set) Journal() *Journal { return s.journal }

// StartNs returns the wall time the set was created — the trace epoch.
func (s *Set) StartNs() int64 { return s.startNs }

// Op returns (creating on first use) the instrument bundle for the named
// operator. Call once at wiring time and retain the pointer; the bundle
// itself is lock free.
func (s *Set) Op(name string) *OpInstruments {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.ops[name]
	if !ok {
		o = newOpInstruments(name)
		s.ops[name] = o
	}
	return o
}

// Engine returns (creating on first use) the instrument bundle for engine i.
func (s *Set) Engine(i int) *EngineInstruments {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.engines[i]
	if !ok {
		e = &EngineInstruments{Index: i, journal: s.journal}
		s.engines[i] = e
	}
	return e
}

// Sync returns the synchronization controller's instruments.
func (s *Set) Sync() *SyncInstruments { return &s.sync }

// Gauge returns (creating on first use) a named ad-hoc gauge.
func (s *Set) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// WireInstruments bundles one edge's syscall-amortization gauges: how many
// payload bytes and frames each writev carried, and how often a coalescing
// cork expired without amortizing anything. The edge's sender goroutine
// refreshes them after every delivered batch.
type WireInstruments struct {
	BytesPerWritev  *Gauge
	FramesPerWritev *Gauge
	CorkStalls      *Gauge
}

// Wire returns (creating on first use) the wire gauges for one named edge,
// registered as ad-hoc gauges under a "wire.<name>." prefix so the HTTP
// and trace expositions pick them up like any other gauge.
func (s *Set) Wire(name string) *WireInstruments {
	return &WireInstruments{
		BytesPerWritev:  s.Gauge("wire." + name + ".bytes_per_writev"),
		FramesPerWritev: s.Gauge("wire." + name + ".frames_per_writev"),
		CorkStalls:      s.Gauge("wire." + name + ".cork_stalls"),
	}
}

// Counter returns (creating on first use) a named ad-hoc counter.
func (s *Set) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.ctrs[name]
	if !ok {
		c = &Counter{}
		s.ctrs[name] = c
	}
	return c
}

// SetOpCounters installs the adapter that reads the stream runtime's
// cumulative per-operator counters (typically a closure over Graph.Metrics).
func (s *Set) SetOpCounters(f func() []OpCounters) {
	if f == nil {
		s.opCounters.Store(nil)
		return
	}
	s.opCounters.Store(&f)
}

func (s *Set) opCounterRows() []OpCounters {
	f := s.opCounters.Load()
	if f == nil {
		return nil
	}
	rows := (*f)()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}

// opList returns the operator bundles sorted by name.
func (s *Set) opList() []*OpInstruments {
	s.mu.Lock()
	out := make([]*OpInstruments, 0, len(s.ops))
	for _, o := range s.ops {
		out = append(out, o)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// engineList returns the engine bundles sorted by index.
func (s *Set) engineList() []*EngineInstruments {
	s.mu.Lock()
	out := make([]*EngineInstruments, 0, len(s.engines))
	for _, e := range s.engines {
		out = append(out, e)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// namedGauges returns name→value for the ad-hoc gauges.
func (s *Set) namedGauges() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.gauges))
	for k, g := range s.gauges {
		out[k] = g.Get()
	}
	return out
}

// namedCounters returns name→value for the ad-hoc counters.
func (s *Set) namedCounters() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.ctrs))
	for k, c := range s.ctrs {
		out[k] = c.Load()
	}
	return out
}
