package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the observability HTTP surface over c:
//
//	/              index of endpoints
//	/metrics       Prometheus text exposition (fresh snapshot)
//	/metrics.json  full Snapshot as JSON (fresh snapshot)
//	/journal       retained journal events as JSON (?max=N for newest N)
//	/trace.json    Chrome trace-event export of spans + journal
//	/debug/pprof/  standard pprof handlers
func Handler(c *Collector) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "streampca observability endpoints:")
		fmt.Fprintln(w, "  /metrics       Prometheus text format")
		fmt.Fprintln(w, "  /metrics.json  full snapshot as JSON")
		fmt.Fprintln(w, "  /journal       control-plane event journal (?max=N)")
		fmt.Fprintln(w, "  /trace.json    Chrome trace-event export (chrome://tracing)")
		fmt.Fprintln(w, "  /debug/pprof/  runtime profiles")
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, c.Refresh())
	})

	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.Refresh())
	})

	mux.HandleFunc("/journal", func(w http.ResponseWriter, r *http.Request) {
		max := 0
		if q := r.URL.Query().Get("max"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				http.Error(w, "max must be a non-negative integer", http.StatusBadRequest)
				return
			}
			max = n
		}
		j := c.Set().Journal()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Len     int         `json:"len"`
			Dropped int64       `json:"dropped"`
			Events  []EventView `json:"events"`
		}{j.Len(), j.Dropped(), viewEvents(j.Events(max))})
	})

	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteTrace(w, c.Set())
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// Serve listens on addr and serves Handler(c) until the returned server is
// closed. It returns once the listener is bound, so a caller that curls the
// returned address immediately will connect. The bound address (useful with
// ":0") is Addr on the returned server.
func Serve(addr string, c *Collector) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: Handler(c)}
	go func() {
		_ = srv.Serve(ln)
	}()
	return srv, nil
}

// ServeCluster is Serve for a cluster collector: the per-process endpoints
// plus the /cluster/* aggregated views.
func ServeCluster(addr string, cc *ClusterCollector) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: ClusterHandler(cc)}
	go func() {
		_ = srv.Serve(ln)
	}()
	return srv, nil
}
