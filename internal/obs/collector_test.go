package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"
)

// populate fills a set with a little of everything, for exposition tests.
func populate(s *Set) {
	op := s.Op("pca-0")
	op.RecordProcess(s.StartNs()+1_000, 25_000, 8, 3)
	op.RecordProcess(s.StartNs()+50_000, 12_000, 1, 0)

	e := s.Engine(0)
	e.Sigma2.Set(1.25)
	e.EffN.Set(512)
	e.SinceSync.Set(96)
	e.LastWeight.Set(0.9)
	e.RecordEigen([]float64{5, 3, 1}, 2)
	e.Observations.Add(100)
	e.Outliers.Add(4)
	e.RecordRebuild(RebuildRankOne)
	e.RecordRebuild(RebuildSVD)

	s.Sync().RecordPlan(3, 4, 1)
	s.Journal().Append(Event{Kind: EvSyncSend, Engine: 0, N: 3, A: 96, B: 64})
	s.Gauge("sim_time_s").Set(12.5)
	s.Counter("tuples_dropped").Add(7)
}

func TestSnapshotContents(t *testing.T) {
	s := NewSet()
	populate(s)
	snap := s.Snapshot()

	if len(snap.Operators) != 1 || snap.Operators[0].Name != "pca-0" {
		t.Fatalf("operators = %+v", snap.Operators)
	}
	if snap.Operators[0].Latency.Count != 2 {
		t.Errorf("latency count = %d, want 2", snap.Operators[0].Latency.Count)
	}
	if len(snap.Engines) != 1 {
		t.Fatalf("engines = %+v", snap.Engines)
	}
	e := snap.Engines[0]
	if e.Sigma2 != 1.25 || e.EffN != 512 {
		t.Errorf("engine gauges: %+v", e)
	}
	if want := []float64{5, 3, 1}; len(e.Eigenvalues) != 3 ||
		e.Eigenvalues[0] != want[0] || e.Eigenvalues[2] != want[2] {
		t.Errorf("eigenvalues = %v", e.Eigenvalues)
	}
	if e.Eigengap != 2 { // λ₂−λ₃ = 3−1
		t.Errorf("eigengap = %g, want 2", e.Eigengap)
	}
	if e.OutlierRate != 0.04 {
		t.Errorf("outlier rate = %g, want 0.04", e.OutlierRate)
	}
	if e.Rebuilds.RankOne != 1 || e.Rebuilds.SVD != 1 {
		t.Errorf("rebuilds = %+v", e.Rebuilds)
	}
	if snap.Sync.Rounds != 1 || snap.Sync.Commands != 4 || snap.Sync.Excluded != 1 {
		t.Errorf("sync = %+v", snap.Sync)
	}
	if snap.Sync.StalenessNs <= 0 {
		t.Errorf("staleness = %d, want > 0", snap.Sync.StalenessNs)
	}
	// journal: sync-plan, rebuild-shift (rank-one→svd), sync-send
	if snap.Journal.Len != 3 {
		t.Errorf("journal len = %d, want 3 (recent: %+v)", snap.Journal.Len, snap.Journal.Recent)
	}
	if snap.Gauges["sim_time_s"] != 12.5 || snap.Counters["tuples_dropped"] != 7 {
		t.Errorf("named metrics: %+v %+v", snap.Gauges, snap.Counters)
	}
}

func TestRebuildShiftJournalsTransitionsOnly(t *testing.T) {
	s := NewSet()
	e := s.Engine(1)
	for i := 0; i < 100; i++ {
		e.RecordRebuild(RebuildRankOne)
	}
	if got := s.Journal().Len(); got != 0 {
		t.Fatalf("steady rebuilds journaled %d events, want 0", got)
	}
	e.RecordRebuild(RebuildSVD)
	e.RecordRebuild(RebuildSVD)
	e.RecordRebuild(RebuildRankC)
	evs := s.Journal().Events(0)
	if len(evs) != 2 {
		t.Fatalf("journal = %+v, want 2 transitions", evs)
	}
	if evs[0].Kind != EvRebuildShift || RebuildKind(evs[0].N) != RebuildSVD {
		t.Errorf("first transition = %+v", evs[0])
	}
	if RebuildKind(evs[1].N) != RebuildRankC || RebuildKind(int64(evs[1].A)) != RebuildSVD {
		t.Errorf("second transition = %+v", evs[1])
	}
}

func TestOpCountersAdapterMergedIntoSnapshot(t *testing.T) {
	s := NewSet()
	s.Op("sink")
	s.SetOpCounters(func() []OpCounters {
		return []OpCounters{
			{Name: "source", TuplesOut: 100},
			{Name: "sink", TuplesIn: 100, QueueLen: 5},
		}
	})
	snap := s.Snapshot()
	if len(snap.Operators) != 2 {
		t.Fatalf("operators = %+v", snap.Operators)
	}
	for _, op := range snap.Operators {
		if op.Counters == nil {
			t.Fatalf("operator %q missing counters", op.Name)
		}
	}
	if snap.Operators[0].Name != "sink" || snap.Operators[0].Counters.QueueLen != 5 {
		t.Errorf("sink row = %+v", snap.Operators[0])
	}
	if snap.Operators[1].Name != "source" || snap.Operators[1].Counters.TuplesOut != 100 {
		t.Errorf("source row = %+v", snap.Operators[1])
	}
}

func TestCollectorPeriodicRefresh(t *testing.T) {
	s := NewSet()
	c := NewCollector(s, 10*time.Millisecond)
	if c.Latest().TakenNs == 0 {
		t.Fatal("NewCollector should take an initial snapshot")
	}
	c.Start()
	defer c.Stop()
	s.Counter("ticks").Add(1)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Latest().Counters["ticks"] == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("collector never refreshed the counter")
}

func TestWritePrometheusFormat(t *testing.T) {
	s := NewSet()
	populate(s)
	var buf bytes.Buffer
	WritePrometheus(&buf, s.Snapshot())
	out := buf.String()

	for _, want := range []string{
		`streampca_op_latency_ns_bucket{op="pca-0",le="+Inf"} 2`,
		`streampca_op_latency_ns_count{op="pca-0"} 2`,
		`streampca_engine_sigma2{engine="0"} 1.25`,
		`streampca_engine_eigengap{engine="0"} 2`,
		`streampca_engine_eigenvalue{engine="0",rank="0"} 5`,
		`streampca_engine_outlier_rate{engine="0"} 0.04`,
		`streampca_sync_rounds_total 1`,
		`streampca_sim_time_s 12.5`,
		`streampca_tuples_dropped 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// Cumulative bucket counts must be monotone per histogram.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `streampca_op_latency_ns_bucket{op="pca-0"`) {
			continue
		}
		v, err := sampleValue(line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
	}
}

// sampleValue pulls the trailing integer off a prometheus sample line.
func sampleValue(line string) (int64, error) {
	i := strings.LastIndexByte(line, ' ')
	return strconv.ParseInt(line[i+1:], 10, 64)
}

func TestWriteTraceLoadsAsTraceDoc(t *testing.T) {
	s := NewSet()
	populate(s)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, s); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace.json is not valid JSON: %v", err)
	}
	var spans, instants, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur <= 0 || ev.Ts < 0 {
				t.Errorf("bad span %+v", ev)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != 2 {
		t.Errorf("spans = %d, want 2", spans)
	}
	if instants != 3 { // sync-plan, rebuild-shift, sync-send
		t.Errorf("instants = %d, want 3", instants)
	}
	if meta < 3 { // process_name + control-plane + op thread
		t.Errorf("metadata events = %d, want ≥ 3", meta)
	}
}

func TestRecordPathsDoNotAllocate(t *testing.T) {
	s := NewSet()
	op := s.Op("hot")
	e := s.Engine(0)
	vals := []float64{4, 2, 1}
	if n := testing.AllocsPerRun(1000, func() {
		op.RecordProcess(1, 2, 3, 4)
		e.Sigma2.Set(1)
		e.EffN.Set(2)
		e.SinceSync.Set(3)
		e.LastWeight.Set(0.5)
		e.RecordEigen(vals, 2)
		e.Observations.Inc()
		e.RecordRebuild(RebuildRankOne)
	}); n != 0 {
		t.Fatalf("record path allocates %g allocs/op, want 0", n)
	}
}
