package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWirePrometheusGauges pins the exposition names of the wire transport
// gauges: an edge named wire-0 must surface its coalescing telemetry as
// streampca_wire_wire_0_{bytes,frames}_per_writev and _cork_stalls.
func TestWirePrometheusGauges(t *testing.T) {
	s := NewSet()
	wi := s.Wire("wire-0")
	wi.BytesPerWritev.Set(4096)
	wi.FramesPerWritev.Set(3.5)
	wi.CorkStalls.Set(2)

	var buf bytes.Buffer
	WritePrometheus(&buf, s.Snapshot())
	out := buf.String()
	for _, want := range []string{
		"streampca_wire_wire_0_bytes_per_writev 4096",
		"streampca_wire_wire_0_frames_per_writev 3.5",
		"streampca_wire_wire_0_cork_stalls 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// workerReport builds a report for a synthetic worker with engine activity,
// journal events, spans and wire gauges — the shape a real worker ships.
func workerReport(t *testing.T, node string, seq int64, offsetNs int64) Report {
	t.Helper()
	s := NewSet()
	wi := s.Wire("wire-worker")
	wi.BytesPerWritev.Set(1024)
	wi.FramesPerWritev.Set(2)
	wi.CorkStalls.Set(1)
	e := s.Engine(0)
	e.Observations.Add(500)
	e.Outliers.Add(10)
	s.E2E().Record(2_000_000)
	s.E2E().Record(4_000_000)
	op := s.Op("pca0")
	op.Latency.Record(5_000)
	op.Spans.Record(s.StartNs()+1_000, 500)
	s.Journal().Append(Event{Kind: EvSyncSend, Engine: 0})
	s.Journal().Append(Event{Kind: EvSyncMerge, Engine: 0})
	rep := NewReporter(s, node)
	var r Report
	for i := int64(0); i < seq; i++ {
		r = rep.Report(offsetNs, 40_000)
	}
	return r
}

// TestClusterPrometheusNodeLabels checks the aggregated text format: every
// sample carries a node label, the wire gauges surface per node, and the
// merged end-to-end histogram sums the per-node ones.
func TestClusterPrometheusNodeLabels(t *testing.T) {
	cc := NewClusterCollector(nil)
	if !cc.Absorb(workerReport(t, "worker-0", 1, 1500)) {
		t.Fatal("first report rejected")
	}
	if !cc.Absorb(workerReport(t, "worker-1", 1, -800)) {
		t.Fatal("second report rejected")
	}
	cs := cc.Snapshot()
	if cs.E2ELatency == nil || cs.E2ELatency.Count != 4 {
		t.Fatalf("merged e2e histogram = %+v, want count 4", cs.E2ELatency)
	}

	var buf bytes.Buffer
	WriteClusterPrometheus(&buf, cs)
	out := buf.String()
	for _, want := range []string{
		"streampca_cluster_nodes 2",
		`streampca_node_reports_total{node="worker-0"} 1`,
		`streampca_node_reports_total{node="worker-1"} 1`,
		`streampca_node_clock_offset_seconds{node="worker-0"} 1.5e-06`,
		`streampca_node_clock_rtt_seconds{node="worker-0"} 4e-05`,
		`streampca_node_engine_observations_total{node="worker-1",engine="0"} 500`,
		`streampca_node_wire_wire_worker_bytes_per_writev{node="worker-0"} 1024`,
		`streampca_node_wire_wire_worker_frames_per_writev{node="worker-1"} 2`,
		`streampca_node_wire_wire_worker_cork_stalls{node="worker-0"} 1`,
		`streampca_e2e_latency_ns_count{} 4`,
		`streampca_node_e2e_latency_ns_count{node="worker-0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster prometheus output missing %q", want)
		}
	}
}

// TestClusterAbsorbAccounting exercises the at-least-once bookkeeping:
// redelivered reports count as dups without double-merging, overlap-window
// events dedup by journal seq, and a seq jump is counted as exactly the
// events it proves lost.
func TestClusterAbsorbAccounting(t *testing.T) {
	cc := NewClusterCollector(nil)
	r1 := Report{Node: "w", Seq: 1, Events: []Event{
		{Seq: 0, Kind: EvSyncSend}, {Seq: 1, Kind: EvSyncSend},
	}}
	if !cc.Absorb(r1) {
		t.Fatal("fresh report rejected")
	}
	// Same seq again: a redelivery, not new data.
	if cc.Absorb(r1) {
		t.Fatal("redelivered report accepted as new")
	}
	// Next report re-carries event 1 (overlap) and jumps to 5: events 2-4
	// were lost for good (three of them).
	r2 := Report{Node: "w", Seq: 2, Events: []Event{
		{Seq: 1, Kind: EvSyncSend}, {Seq: 5, Kind: EvSyncMerge},
	}}
	if !cc.Absorb(r2) {
		t.Fatal("successor report rejected")
	}
	cs := cc.Snapshot()
	if len(cs.Nodes) != 1 {
		t.Fatalf("nodes = %d, want 1", len(cs.Nodes))
	}
	n := cs.Nodes[0]
	if n.Reports != 2 || n.DupReports != 1 {
		t.Errorf("reports/dups = %d/%d, want 2/1", n.Reports, n.DupReports)
	}
	if n.EventGaps != 3 {
		t.Errorf("event gaps = %d, want 3", n.EventGaps)
	}
	if n.EventsMerged != 3 { // seq 0, 1, 5 — the overlap copy deduped
		t.Errorf("events merged = %d, want 3", n.EventsMerged)
	}
}

// TestClusterReporterRoundTrip sends a reporter's output through the JSON
// wire shape and checks the journal floor semantics: consecutive reports
// overlap by reportEventOverlap and never lose an event between them.
func TestClusterReporterRoundTrip(t *testing.T) {
	s := NewSet()
	for i := 0; i < 10; i++ {
		s.Journal().Append(Event{Kind: EvSyncSend, Engine: i})
	}
	rep := NewReporter(s, "worker-3")
	cc := NewClusterCollector(nil)

	r1 := rep.Report(123, 456)
	body, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.AbsorbJSON(body); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 14; i++ {
		s.Journal().Append(Event{Kind: EvSyncMerge, Engine: i})
	}
	r2 := rep.Report(123, 456)
	if len(r2.Events) < 4 {
		t.Fatalf("second report carries %d events, want at least the 4 new ones", len(r2.Events))
	}
	body2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.AbsorbJSON(body2); err != nil {
		t.Fatal(err)
	}

	cs := cc.Snapshot()
	n := cs.Nodes[0]
	if n.EventGaps != 0 {
		t.Errorf("event gaps = %d, want 0 (overlap covers consecutive reports)", n.EventGaps)
	}
	if n.EventsMerged != 14 {
		t.Errorf("events merged = %d, want 14", n.EventsMerged)
	}
	if n.ClockOffsetNs != 123 || n.ClockRTTNs != 456 {
		t.Errorf("clock fields = %d/%d, want 123/456", n.ClockOffsetNs, n.ClockRTTNs)
	}
}

// TestClusterTraceMonotoneLanes renders a merged trace with a deliberately
// skewed worker and checks per-lane monotonicity and offset correction.
func TestClusterTraceMonotoneLanes(t *testing.T) {
	local := NewCollector(NewSet(), 0)
	cc := NewClusterCollector(local)

	// A worker whose clock runs 1ms behind the coordinator: spans stamped on
	// its clock shift forward by the offset.
	s := NewSet()
	op := s.Op("pca0")
	base := local.Set().StartNs()
	op.Spans.Record(base+3_000_000-1_000_000, 10_000) // out of order on purpose
	op.Spans.Record(base+1_000_000-1_000_000, 10_000)
	rep := NewReporter(s, "worker-0")
	cc.Absorb(rep.Report(1_000_000, 80_000))

	var buf bytes.Buffer
	if err := cc.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Pid int     `json:"pid"`
			Tid int     `json:"tid"`
			Ts  float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	last := map[[2]int]float64{}
	var workerSpans int
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Ts < 0 {
			t.Errorf("span before epoch: ts=%v", ev.Ts)
		}
		lane := [2]int{ev.Pid, ev.Tid}
		if ev.Ts < last[lane] {
			t.Errorf("lane %v not monotone: %v after %v", lane, ev.Ts, last[lane])
		}
		last[lane] = ev.Ts
		if ev.Pid >= 2 {
			workerSpans++
		}
	}
	if workerSpans != 2 {
		t.Errorf("worker spans in trace = %d, want 2", workerSpans)
	}
}
