package obs

import (
	"sync/atomic"
	"time"
)

// OpSnapshot is one operator's point-in-time view: the runtime's cumulative
// counters (when an adapter is installed) plus the three hot-path histograms.
type OpSnapshot struct {
	Name       string            `json:"name"`
	Counters   *OpCounters       `json:"counters,omitempty"`
	Latency    HistogramSnapshot `json:"latency_ns"`
	BatchSize  HistogramSnapshot `json:"batch_size"`
	QueueDepth HistogramSnapshot `json:"queue_depth"`
}

// RebuildCounts tallies eigensystem rebuilds by route.
type RebuildCounts struct {
	RankOne int64 `json:"rank_one"`
	RankC   int64 `json:"rank_c"`
	SVD     int64 `json:"svd"`
}

// EngineSnapshot is one engine's algorithm-level view.
type EngineSnapshot struct {
	Index        int           `json:"index"`
	Sigma2       float64       `json:"sigma2"`
	EffN         float64       `json:"eff_n"`
	SinceSync    float64       `json:"since_sync"`
	LastWeight   float64       `json:"last_weight"`
	Eigenvalues  []float64     `json:"eigenvalues"`
	Eigengap     float64       `json:"eigengap"`
	Observations int64         `json:"observations"`
	Outliers     int64         `json:"outliers"`
	OutlierRate  float64       `json:"outlier_rate"`
	Rebuilds     RebuildCounts `json:"rebuilds"`
}

// SyncSnapshot is the synchronization controller's view. StalenessNs is the
// wall time since the last planned round (0 before the first plan).
type SyncSnapshot struct {
	Rounds      int64 `json:"rounds"`
	Commands    int64 `json:"commands"`
	Excluded    int64 `json:"excluded"`
	LastPlanNs  int64 `json:"last_plan_ns"`
	StalenessNs int64 `json:"staleness_ns"`
}

// EventView is a journal event rendered for exposition: the kind becomes its
// stable string name.
type EventView struct {
	Seq    int64   `json:"seq"`
	TimeNs int64   `json:"time_ns"`
	Kind   string  `json:"kind"`
	Node   string  `json:"node,omitempty"`
	Engine int     `json:"engine"`
	N      int64   `json:"n"`
	A      float64 `json:"a"`
	B      float64 `json:"b"`
}

func viewEvents(evs []Event) []EventView {
	out := make([]EventView, len(evs))
	for i, ev := range evs {
		out[i] = EventView{
			Seq: ev.Seq, TimeNs: ev.TimeNs, Kind: ev.Kind.String(),
			Node: ev.Node, Engine: ev.Engine, N: ev.N, A: ev.A, B: ev.B,
		}
	}
	return out
}

// JournalSnapshot summarizes the journal: totals plus the newest events
// (bounded so the JSON document stays small; the /journal endpoint serves
// the full retained window).
type JournalSnapshot struct {
	Len     int         `json:"len"`
	Dropped int64       `json:"dropped"`
	Recent  []EventView `json:"recent"`
}

// Snapshot is a full point-in-time copy of an instrument set.
type Snapshot struct {
	TakenNs   int64              `json:"taken_ns"`
	UptimeNs  int64              `json:"uptime_ns"`
	Operators []OpSnapshot       `json:"operators"`
	Engines   []EngineSnapshot   `json:"engines"`
	Sync      SyncSnapshot       `json:"sync"`
	Gauges    map[string]float64 `json:"gauges,omitempty"`
	Counters  map[string]int64   `json:"counters,omitempty"`
	Journal   JournalSnapshot    `json:"journal"`
	// E2ELatency is the end-to-end tuple-latency histogram (ingest stamp to
	// outlier decision, skew-corrected); nil until a traced frame lands.
	E2ELatency *HistogramSnapshot `json:"e2e_latency_ns,omitempty"`
}

// snapshotRecentEvents bounds Snapshot.Journal.Recent.
const snapshotRecentEvents = 64

// Snapshot copies the set's current state.
func (s *Set) Snapshot() Snapshot {
	now := time.Now().UnixNano()
	snap := Snapshot{
		TakenNs:  now,
		UptimeNs: now - s.startNs,
		Gauges:   s.namedGauges(),
		Counters: s.namedCounters(),
	}

	rows := s.opCounterRows()
	byName := make(map[string]*OpCounters, len(rows))
	for i := range rows {
		byName[rows[i].Name] = &rows[i]
	}
	seen := make(map[string]bool, len(rows))
	for _, o := range s.opList() {
		seen[o.Name] = true
		snap.Operators = append(snap.Operators, OpSnapshot{
			Name:       o.Name,
			Counters:   byName[o.Name],
			Latency:    o.Latency.Snapshot(),
			BatchSize:  o.BatchSize.Snapshot(),
			QueueDepth: o.QueueDepth.Snapshot(),
		})
	}
	// Operators known to the runtime but never instrumented (e.g. wired
	// before Instrument was called) still surface their counters.
	for i := range rows {
		if !seen[rows[i].Name] {
			snap.Operators = append(snap.Operators, OpSnapshot{
				Name:     rows[i].Name,
				Counters: &rows[i],
			})
		}
	}

	for _, e := range s.engineList() {
		obsN := e.Observations.Load()
		out := e.Outliers.Load()
		es := EngineSnapshot{
			Index:        e.Index,
			Sigma2:       e.Sigma2.Get(),
			EffN:         e.EffN.Get(),
			SinceSync:    e.SinceSync.Get(),
			LastWeight:   e.LastWeight.Get(),
			Eigenvalues:  e.Eigenvalues(),
			Eigengap:     e.Eigengap.Get(),
			Observations: obsN,
			Outliers:     out,
			Rebuilds: RebuildCounts{
				RankOne: e.RankOne.Load(),
				RankC:   e.RankC.Load(),
				SVD:     e.SVD.Load(),
			},
		}
		if obsN > 0 {
			es.OutlierRate = float64(out) / float64(obsN)
		}
		snap.Engines = append(snap.Engines, es)
	}

	sy := SyncSnapshot{
		Rounds:     s.sync.Rounds.Load(),
		Commands:   s.sync.Commands.Load(),
		Excluded:   s.sync.Excluded.Load(),
		LastPlanNs: s.sync.LastPlanNs(),
	}
	if sy.LastPlanNs > 0 {
		sy.StalenessNs = now - sy.LastPlanNs
	}
	snap.Sync = sy

	snap.Journal = JournalSnapshot{
		Len:     s.journal.Len(),
		Dropped: s.journal.Dropped(),
		Recent:  viewEvents(s.journal.Events(snapshotRecentEvents)),
	}
	if s.e2e.Count() > 0 {
		e2e := s.e2e.Snapshot()
		snap.E2ELatency = &e2e
	}
	return snap
}

// Collector periodically snapshots a Set so readers (the HTTP layer, tests)
// get a consistent recent view without paying the snapshot cost per request.
type Collector struct {
	set      *Set
	interval time.Duration
	latest   atomic.Pointer[Snapshot]
	stop     chan struct{}
	done     chan struct{}
}

// DefaultCollectInterval is the default snapshot period.
const DefaultCollectInterval = time.Second

// NewCollector returns a collector over set snapshotting every interval
// (DefaultCollectInterval when ≤ 0). An initial snapshot is taken
// immediately so Latest never returns nil.
func NewCollector(set *Set, interval time.Duration) *Collector {
	if interval <= 0 {
		interval = DefaultCollectInterval
	}
	c := &Collector{set: set, interval: interval}
	c.Refresh()
	return c
}

// Set returns the underlying instrument set.
func (c *Collector) Set() *Set { return c.set }

// Refresh takes a snapshot now and returns it.
func (c *Collector) Refresh() Snapshot {
	snap := c.set.Snapshot()
	c.latest.Store(&snap)
	return snap
}

// Latest returns the most recent snapshot.
func (c *Collector) Latest() Snapshot { return *c.latest.Load() }

// Start begins periodic snapshotting. Calling Start twice panics.
func (c *Collector) Start() {
	if c.stop != nil {
		panic("obs: Collector started twice")
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.Refresh()
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop halts periodic snapshotting (no-op if never started).
func (c *Collector) Stop() {
	if c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop = nil
}
