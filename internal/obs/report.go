package obs

// The worker side of the distributed observability plane: a Reporter
// periodically folds its Set into a Report that the pipeline ships to the
// coordinator (JSON over a wire obs-report message). Reports are cumulative
// for everything snapshot-shaped — counters, gauges, histograms are totals,
// so the coordinator just keeps the newest report per node and redelivery
// is harmless — and incremental for the journal: each report carries the
// events appended since a floor that trails the last report by a fixed
// overlap, so a lost report costs nothing as long as a later one lands
// within the overlap window. The coordinator dedups by the journal's
// gap-free Seq, which also lets it count exactly how many events a chaotic
// link really lost.

// OpSpans is one operator's recent busy spans, as shipped in a report for
// the merged cluster trace.
type OpSpans struct {
	Name  string `json:"name"`
	Spans []Span `json:"spans"`
}

// Report is one worker's observability report.
type Report struct {
	// Node names the reporting process (e.g. "worker-1").
	Node string `json:"node"`
	// Seq numbers this node's reports, starting at 1, strictly increasing
	// within a session.
	Seq int64 `json:"seq"`
	// StartNs is the node's instrument-set creation time (its trace epoch),
	// on the node's own clock.
	StartNs int64 `json:"start_ns"`
	// ClockOffsetNs is the node's current NTP-style offset estimate θ
	// (coordinator clock − node clock) and ClockRTTNs the round trip of the
	// kept minimum-delay sample; the offset error is bounded by half the
	// RTT. Plain integers so obs stays a leaf package — the wire layer owns
	// the sampling.
	ClockOffsetNs int64 `json:"clock_offset_ns"`
	ClockRTTNs    int64 `json:"clock_rtt_ns"`
	// Snapshot is the node's full cumulative snapshot at build time.
	Snapshot Snapshot `json:"snapshot"`
	// Events are the journal events in this report's window (since the
	// reporter's floor), oldest first, carrying their gap-free Seq.
	Events []Event `json:"events,omitempty"`
	// Spans are the per-operator span-ring samples for the merged trace.
	Spans []OpSpans `json:"spans,omitempty"`
}

// reportEventOverlap is how many already-sent journal events each report
// re-carries: at-least-once delivery for the journal as long as no more
// than this many events separate two successfully delivered reports.
const reportEventOverlap = 256

// reportEventCap bounds one report's event window so a report body stays
// well under the wire layer's obs-body cap even after a long partition;
// the remainder ships with the next report (the floor only advances past
// what was actually included).
const reportEventCap = 2048

// Reporter builds the periodic reports for one node. Not safe for
// concurrent use; the worker's telemetry operator owns it.
type Reporter struct {
	set   *Set
	node  string
	seq   int64
	floor int64
}

// NewReporter returns a reporter over set for the named node.
func NewReporter(set *Set, node string) *Reporter {
	return &Reporter{set: set, node: node}
}

// Report builds the next report. clockOffsetNs and clockRTTNs are the
// node's current clock-sync estimate (zero before the first sample).
func (r *Reporter) Report(clockOffsetNs, clockRTTNs int64) Report {
	r.seq++
	events := r.set.Journal().EventsSince(r.floor, reportEventCap)
	if n := len(events); n > 0 {
		r.floor = events[n-1].Seq + 1 - reportEventOverlap
		if r.floor < 0 {
			r.floor = 0
		}
	}
	var spans []OpSpans
	for _, op := range r.set.opList() {
		if sp := op.Spans.Spans(); len(sp) > 0 {
			spans = append(spans, OpSpans{Name: op.Name, Spans: sp})
		}
	}
	return Report{
		Node:          r.node,
		Seq:           r.seq,
		StartNs:       r.set.StartNs(),
		ClockOffsetNs: clockOffsetNs,
		ClockRTTNs:    clockRTTNs,
		Snapshot:      r.set.Snapshot(),
		Events:        events,
		Spans:         spans,
	}
}
