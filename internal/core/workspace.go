package core

import (
	"streampca/internal/eig"
	"streampca/internal/mat"
)

// rejectedCap bounds the ring buffer of recently rejected residuals the
// scale-collapse rescue consults.
const rejectedCap = 64

// workspace owns every scratch buffer the steady-state Observe path touches,
// so an initialized engine absorbs observations with zero heap allocations.
// One workspace per engine, allocated once in NewEngine (or ResumeEngine)
// and never resized: the engine's dimension and component count are fixed at
// construction.
//
// Aliasing rules: y holds the centered observation and is read by
// rebuildEigensystem after updateAlpha fills it — the two must not be
// reordered. aMat is rebuilt from scratch on every call, and the SVD
// workspace's returned U/S/V are only read between Decompose and the end of
// rebuildEigensystem. Nothing in the workspace is valid across Observe
// calls; it is scratch, not state.
type workspace struct {
	y     []float64 // centered observation x − µ (length d)
	coef  []float64 // projection coefficients Eᵀy (length k)
	ny2   float64   // ‖y‖² from the same fused pass that filled y and coef
	scale []float64 // per-column √(γ2·λⱼ) factors of A (length k+1)

	// structured-rebuild scratch: the small Gram system and the k×k update
	// map of the fast path (see rebuildEigensystem).
	gram   *mat.Dense // (k+1)×(k+1) AᵀA, built analytically
	sym    *eig.SymEigWorkspace
	mt     *mat.Dense // k×k transposed update map Mᵀ
	yw     []float64  // per-column y coefficients of the update (length k)
	invs   []float64  // inverse singular values (length k)
	rowTmp []float64  // one basis row, copied before overwrite (length k)

	// explicit-SVD rebuild scratch: the materialized d×(k+1) matrix A and
	// its thin-SVD workspace, used by the reference route the structured
	// path is verified against (and by tests).
	aMat *mat.Dense
	svd  *eig.ThinSVDWorkspace

	orth *eig.OrthoWorkspace
	med  []float64 // rescue-median sort scratch (capacity rejectedCap)

	// block-update scratch (ObserveBlock): the chunk's centered rows and
	// projections, the rank-c fold weights, and the small (k+c)-sized
	// eigenproblems — one Gram matrix and eigensolver per chunk size so the
	// solver always runs at the true dimension (see rebuildEigensystemBlock).
	yMat   *mat.Dense             // blockMax×d centered rows Y of the current chunk
	coefs  *mat.Dense             // blockMax×k per-row projections Eᵀy
	bvals  []float64              // fold weights b_m of the firing rows (length blockMax)
	bscale []float64              // √b_m (length blockMax)
	syrk   *mat.Dense             // blockMax×blockMax Y·Yᵀ inner products
	wMat   *mat.Dense             // blockMax×k basis-update coefficients W
	mMat   *mat.Dense             // k×k basis-update map M (E ← E·M + Yᵀ·W)
	eNew   *mat.Dense             // d×k staging area for the rebuilt basis
	bgram  []*mat.Dense           // [c] → (k+c)×(k+c) analytic Gram, c = 2..blockMax
	bsym   []*eig.SymEigWorkspace // [c] → matching eigensolver workspace
}

func newWorkspace(d, k int) *workspace {
	ws := &workspace{
		y:      make([]float64, d),
		coef:   make([]float64, k),
		scale:  make([]float64, k+1),
		gram:   mat.NewDense(k+1, k+1),
		sym:    eig.NewSymEigWorkspace(k + 1),
		mt:     mat.NewDense(k, k),
		yw:     make([]float64, k),
		invs:   make([]float64, k),
		rowTmp: make([]float64, k),
		aMat:   mat.NewDense(d, k+1),
		svd:    eig.NewThinSVDWorkspace(d, k+1),
		orth:   eig.NewOrthoWorkspace(d),
		med:    make([]float64, rejectedCap),

		yMat:   mat.NewDense(blockMax, d),
		coefs:  mat.NewDense(blockMax, k),
		bvals:  make([]float64, blockMax),
		bscale: make([]float64, blockMax),
		syrk:   mat.NewDense(blockMax, blockMax),
		wMat:   mat.NewDense(blockMax, k),
		mMat:   mat.NewDense(k, k),
		eNew:   mat.NewDense(d, k),
		bgram:  make([]*mat.Dense, blockMax+1),
		bsym:   make([]*eig.SymEigWorkspace, blockMax+1),
	}
	for c := 2; c <= blockMax; c++ {
		ws.bgram[c] = mat.NewDense(k+c, k+c)
		ws.bsym[c] = eig.NewSymEigWorkspace(k + c)
	}
	return ws
}
