package core

import (
	"streampca/internal/eig"
	"streampca/internal/mat"
)

// rejectedCap bounds the ring buffer of recently rejected residuals the
// scale-collapse rescue consults.
const rejectedCap = 64

// workspace owns every scratch buffer the steady-state Observe path touches,
// so an initialized engine absorbs observations with zero heap allocations.
// One workspace per engine, allocated once in NewEngine (or ResumeEngine)
// and never resized: the engine's dimension and component count are fixed at
// construction.
//
// Aliasing rules: y holds the centered observation and is read by
// rebuildEigensystem after updateAlpha fills it — the two must not be
// reordered. aMat is rebuilt from scratch on every call, and the SVD
// workspace's returned U/S/V are only read between Decompose and the end of
// rebuildEigensystem. Nothing in the workspace is valid across Observe
// calls; it is scratch, not state.
type workspace struct {
	y     []float64 // centered observation x − µ (length d)
	coef  []float64 // projection coefficients Eᵀy (length k)
	ny2   float64   // ‖y‖² from the same fused pass that filled y and coef
	scale []float64 // per-column √(γ2·λⱼ) factors of A (length k+1)

	// structured-rebuild scratch: the small Gram system and the k×k update
	// map of the fast path (see rebuildEigensystem).
	gram   *mat.Dense // (k+1)×(k+1) AᵀA, built analytically
	sym    *eig.SymEigWorkspace
	mt     *mat.Dense // k×k transposed update map Mᵀ
	yw     []float64  // per-column y coefficients of the update (length k)
	invs   []float64  // inverse singular values (length k)
	rowTmp []float64  // one basis row, copied before overwrite (length k)

	// explicit-SVD rebuild scratch: the materialized d×(k+1) matrix A and
	// its thin-SVD workspace, used by the reference route the structured
	// path is verified against (and by tests).
	aMat *mat.Dense
	svd  *eig.ThinSVDWorkspace

	orth *eig.OrthoWorkspace
	med  []float64 // rescue-median sort scratch (capacity rejectedCap)
}

func newWorkspace(d, k int) *workspace {
	return &workspace{
		y:      make([]float64, d),
		coef:   make([]float64, k),
		scale:  make([]float64, k+1),
		gram:   mat.NewDense(k+1, k+1),
		sym:    eig.NewSymEigWorkspace(k + 1),
		mt:     mat.NewDense(k, k),
		yw:     make([]float64, k),
		invs:   make([]float64, k),
		rowTmp: make([]float64, k),
		aMat:   mat.NewDense(d, k+1),
		svd:    eig.NewThinSVDWorkspace(d, k+1),
		orth:   eig.NewOrthoWorkspace(d),
		med:    make([]float64, rejectedCap),
	}
}
