package core

import (
	"streampca/internal/eig"
	"streampca/internal/mat"
)

// rejectedCap bounds the ring buffer of recently rejected residuals the
// scale-collapse rescue consults.
const rejectedCap = 64

// workspace owns every scratch buffer the steady-state Observe path touches,
// so an initialized engine absorbs observations with zero heap allocations.
// One workspace per engine, allocated once in NewEngine (or ResumeEngine)
// and never resized: the engine's dimension, component count and chunk width
// are fixed at construction.
//
// Aliasing rules: y holds the centered observation and is read by
// rebuildEigensystem after updateAlpha fills it — the two must not be
// reordered. aMat is rebuilt from scratch on every call, and the SVD
// workspace's returned U/S/V are only read between Decompose and the end of
// rebuildEigensystem. Nothing in the workspace is valid across Observe
// calls; it is scratch, not state.
type workspace struct {
	y     []float64 // centered observation x − µ (length d)
	coef  []float64 // projection coefficients Eᵀy (length k)
	ny2   float64   // ‖y‖² from the same fused pass that filled y and coef
	scale []float64 // per-column √(γ2·λⱼ) factors of A (length k+1)

	// structured-rebuild scratch: the small Gram system and the k×k update
	// map of the fast path (see rebuildEigensystem). mt holds the TRANSPOSED
	// map Mᵀ the rank-one route's fused basis kernel dots rows against; the
	// rank-c route builds its map in natural orientation (mMat below).
	gram   *mat.Dense // (k+1)×(k+1) AᵀA, built analytically
	sym    *eig.SymEigWorkspace
	mt     *mat.Dense // k×k transposed update map Mᵀ
	yw     []float64  // per-column y coefficients of the update (length k)
	invs   []float64  // inverse singular values (length k)
	rowTmp []float64  // one basis row, copied before overwrite (length k)

	// cpPart holds the fused center/project pass's panel-partial sums:
	// mat.CenterProjectPanels(d) panels × (k+1) accumulators. The panel
	// reduction is the canonical (serial = parallel) accumulation order.
	cpPart []float64

	// explicit-SVD rebuild scratch: the materialized d×(k+1) matrix A and
	// its thin-SVD workspace, used by the reference route the structured
	// path is verified against (and by tests).
	aMat *mat.Dense
	svd  *eig.ThinSVDWorkspace

	orth *eig.OrthoWorkspace
	med  []float64 // rescue-median sort scratch (capacity rejectedCap)

	// block-update scratch (ObserveBlock), sized by the engine's chunk
	// width blockC: the chunk's centered rows and projections, the rank-c
	// fold weights, and the small (k+c)-sized eigenproblems — one Gram
	// matrix and eigensolver per chunk size so the solver always runs at
	// the true dimension (see rebuildEigensystemBlock). The bgram matrices
	// are zeroed once here: the rebuild writes only their upper triangle
	// (all the solvers read), so the lower triangle stays zero forever.
	yMat   *mat.Dense             // blockC×d centered rows Y of the current chunk
	coefs  *mat.Dense             // blockC×k per-row projections Eᵀy
	bvals  []float64              // fold weights b_m of the firing rows (length blockC)
	bscale []float64              // √b_m (length blockC)
	syrk   *mat.Dense             // blockC×blockC Y·Yᵀ inner products
	mMat   *mat.Dense             // k×k rank-c update map M (natural orientation)
	wMat   *mat.Dense             // blockC×k basis-update coefficients W
	eNew   *mat.Dense             // d×k staging buffer for the rebuilt basis
	bgram  []*mat.Dense           // [c] → (k+c)×(k+c) analytic Gram, c = 2..blockC
	bsym   []*eig.SymEigWorkspace // [c] → matching eigensolver workspace
}

func newWorkspace(d, k, blockC int) *workspace {
	if blockC < 1 {
		blockC = 1
	}
	ws := &workspace{
		y:      make([]float64, d),
		coef:   make([]float64, k),
		scale:  make([]float64, k+1),
		gram:   mat.NewDense(k+1, k+1),
		sym:    eig.NewSymEigWorkspace(k + 1),
		mt:     mat.NewDense(k, k),
		yw:     make([]float64, k),
		invs:   make([]float64, k),
		rowTmp: make([]float64, k),
		cpPart: make([]float64, mat.CenterProjectPanels(d)*(k+1)),
		aMat:   mat.NewDense(d, k+1),
		svd:    eig.NewThinSVDWorkspace(d, k+1),
		orth:   eig.NewOrthoWorkspace(d),
		med:    make([]float64, rejectedCap),

		yMat:   mat.NewDense(blockC, d),
		coefs:  mat.NewDense(blockC, k),
		bvals:  make([]float64, blockC),
		bscale: make([]float64, blockC),
		syrk:   mat.NewDense(blockC, blockC),
		mMat:   mat.NewDense(k, k),
		wMat:   mat.NewDense(blockC, k),
		eNew:   mat.NewDense(d, k),
		bgram:  make([]*mat.Dense, blockC+1),
		bsym:   make([]*eig.SymEigWorkspace, blockC+1),
	}
	for c := 2; c <= blockC; c++ {
		ws.bgram[c] = mat.NewDense(k+c, k+c)
		ws.bsym[c] = eig.NewSymEigWorkspace(k + c)
	}
	return ws
}
