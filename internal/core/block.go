package core

import (
	"math"

	"streampca/internal/eig"
	"streampca/internal/mat"
	"streampca/internal/obs"
)

// blockMax caps the chunk width of ObserveBlock. Per observation the block
// path costs ≈ d·(2k + c/2 + k²/c) flops against the sequential path's
// d·(2k + k²): the O(d·k²) basis rebuild amortizes over the chunk while the
// new O(d·c²) Y·Yᵀ term and the (k+c)³ eigensolve grow with it, so an
// interior optimum exists near c ≈ √2·k. The width an engine actually uses,
// en.blockC ≤ blockMax, comes from the calibrated cost model (mat.BlockSize)
// unless Config.BlockSize pins it. Larger chunks also widen the window in
// which projections use a stale (chunk-start) basis, so the cap stays small
// and caller batches of any size are processed as a sequence of ≤ en.blockC
// chunks.
const blockMax = 16

// ObserveBlock absorbs a batch of complete observation vectors, behaving like
// one Observe call per row — identical per-row weights, M-scale and running-sum
// recursions, in order — except that the eigensystem rebuilds are folded: up
// to en.blockC consecutive rank-one updates collapse into a single structured
// rank-c rebuild (one (k+c)×(k+c) eigenproblem and one pass over the basis per
// chunk instead of c). Within a chunk the projections Eᵀy use the chunk-start
// basis, which is the approximation that buys the speedup; a batch of one
// reduces exactly to the sequential path.
//
// Updates are appended to out (pass a reused buffer with spare capacity for a
// zero-allocation steady state) and one Update is returned per absorbed row.
// Rows that fail validation — wrong length, non-finite entries (use
// ObserveMasked for gappy data) — or whose warm-up step fails are skipped,
// mirroring how the pipeline drops malformed tuples; the first such error is
// returned after the rest of the batch has been processed.
//
//streampca:noalloc
func (en *Engine) ObserveBlock(xs [][]float64, out []Update) ([]Update, error) {
	var firstErr error
	i := 0
	for i < len(xs) {
		if !en.ready {
			// Warm-up buffers row by row; initialization can complete
			// mid-batch, so readiness is re-checked per row.
			u, err := en.Observe(xs[i])
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				//streamvet:ignore noalloc appends into the caller-provided Update buffer; steady state passes spare capacity (AllocsPerRun-verified)
				out = append(out, u)
			}
			i++
			continue
		}
		// Chunk on the cheap length check only: observeChunk's fused pass
		// already visits every entry, so non-finite rows are detected there
		// from the residual norm instead of a separate validation scan.
		c := 0
		for c < en.blockC && i+c < len(xs) && len(xs[i+c]) == en.cfg.Dim {
			c++
		}
		if c == 0 {
			if firstErr == nil {
				firstErr = validateObservation(xs[i], en.cfg.Dim)
			}
			i++
			continue
		}
		if c == 1 {
			// The rank-one fast path has no fused finiteness check, so a
			// lone row still takes the full validation scan.
			if err := validateObservation(xs[i], en.cfg.Dim); err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				//streamvet:ignore noalloc appends into the caller-provided Update buffer; steady state passes spare capacity (AllocsPerRun-verified)
				out = append(out, en.update(xs[i]))
			}
		} else {
			var err error
			out, err = en.observeChunk(xs[i:i+c], out)
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		i += c
	}
	return out, firstErr
}

// observeChunk folds 2 ≤ len(xs) ≤ en.blockC length-checked observations
// into the engine with one deferred rank-c eigensystem rebuild. Every scalar
// recursion of updateAlpha — weights, M-scale, rescue, mean, running sums —
// runs exactly per row; only the covariance update is deferred. Sequentially,
// each firing row m applies C ← γ2_m·C + yCoef_m·y_m·y_mᵀ, so the chunk
// composes to
//
//	C ← g·C + Σ_m b_m·y_m·y_mᵀ,  g = Π γ2_m,  b_m = yCoef_m·Π_{j>m} γ2_j
//
// over the firing rows — exact up to the per-step rank-k truncations the
// sequential path interleaves. The fold weights are maintained incrementally:
// each firing row scales g and every already-folded b by its γ2.
//
// Rows with non-finite entries surface as a non-finite residual norm in the
// fused pass and are skipped before any state is touched; the first such error
// is returned after the chunk completes.
//
//streampca:noalloc
func (en *Engine) observeChunk(xs [][]float64, out []Update) ([]Update, error) {
	st := &en.state
	cfg := &en.cfg
	ws := en.ws
	p := cfg.Components
	k := en.k
	d := cfg.Dim
	alpha := cfg.Alpha
	if en.pendingAlpha > 0 {
		alpha = en.pendingAlpha
	}

	var firstErr error
	g := 1.0
	nf := 0 // firing rows folded so far
	bv := ws.bvals
	yd := ws.yMat.Data()
	cd := ws.coefs.Data()
	mean := st.Mean

	for _, x := range xs {
		// Fused center/project pass (the same pooled kernel updateAlpha uses,
		// so batch-of-one stays bitwise equal to Observe), writing into the
		// next firing slot; non-firing rows leave the slot to be reused.
		y := yd[nf*d : (nf+1)*d]
		coef := cd[nf*k : (nf+1)*k]
		ny2 := en.pool.CenterProject(y, coef, x, mean, st.Vectors, ws.cpPart)
		if math.IsNaN(ny2) || math.IsInf(ny2, 0) {
			// A NaN or ±Inf anywhere in x propagates into ‖y‖²; the slot is
			// left to be overwritten and no recursion has run yet.
			if firstErr == nil {
				firstErr = errNonFinite
			}
			continue
		}
		r2 := ny2
		for j := 0; j < p; j++ {
			r2 -= coef[j] * coef[j]
		}
		if r2 < 0 {
			r2 = 0
		}

		sigma2 := st.Sigma2
		if sigma2 < en.minSigma2 {
			sigma2 = en.minSigma2
		}
		t := r2 / sigma2
		w := cfg.Rho.W(t)
		wstar := cfg.Rho.WStar(t)

		uNew := alpha*st.SumU + 1
		gamma3 := alpha * st.SumU / uNew
		sigma2New := gamma3*st.Sigma2 + (1-gamma3)*wstar*r2/cfg.Delta
		if sigma2New < en.minSigma2 {
			sigma2New = en.minSigma2
		}
		if w == 0 && cfg.RescueStreak > 0 {
			//streamvet:ignore noalloc inlined recordRejected lazily allocates its ring buffer once, on the first rejected row
			en.recordRejected(r2)
			en.zeroStreak++
			if en.zeroStreak >= cfg.RescueStreak {
				if med := en.rejectedMedian(); med > sigma2New {
					if en.inst != nil {
						en.inst.RecordRescue(med, sigma2New)
					}
					sigma2New = med
					en.rescues++
				}
				en.zeroStreak = 0
			}
		} else if w > 0 {
			en.zeroStreak = 0
		}

		vNew := alpha*st.SumV + w
		if vNew > 0 {
			gamma1 := alpha * st.SumV / vNew
			mat.Lerp(st.Mean, gamma1, st.Mean, 1-gamma1, x)
		}

		qNew := alpha*st.SumQ + w*r2
		if qNew > 0 && w > 0 {
			gamma2 := alpha * st.SumQ / qNew
			g *= gamma2
			for m := 0; m < nf; m++ {
				bv[m] *= gamma2
			}
			bv[nf] = sigma2New * w / qNew
			nf++
		}

		st.Sigma2 = sigma2New
		st.SumU = uNew
		st.SumV = vNew
		if qNew > 0 {
			st.SumQ = qNew
		}
		st.Count++
		en.sinceSync++
		en.updatesSince++
		en.publish(sigma2New, uNew, w, t > cfg.OutlierT)

		//streamvet:ignore noalloc appends into the caller-provided Update buffer; steady state passes spare capacity (AllocsPerRun-verified)
		out = append(out, Update{
			Seq:       st.Count,
			Weight:    w,
			Residual2: r2,
			T:         t,
			Sigma2:    sigma2New,
			Outlier:   t > cfg.OutlierT,
		})
	}

	if nf > 0 {
		if nf == 1 {
			// A single firing row is exactly the rank-one system; reuse the
			// cheaper (k+1)-sized fast path. Its y/coef inputs live in the
			// block slots, so copy them into the rank-one scratch.
			copy(ws.y, yd[:d])
			copy(ws.coef, cd[:k])
			ws.ny2 = mat.Dot(ws.y, ws.y)
			en.rebuildEigensystem(g, bv[0])
		} else {
			en.rebuildEigensystemBlock(g, nf)
		}
		if en.inst != nil {
			// Per-row publishes carried the chunk-start spectrum; refresh the
			// eigen gauges now that the deferred rebuild landed.
			en.inst.RecordEigen(st.Values, p)
		}
	}
	if cfg.ReorthEvery > 0 && en.updatesSince >= cfg.ReorthEvery {
		eig.OrthonormalizeWS(st.Vectors, ws.orth)
		en.updatesSince = 0
	}
	return out, firstErr
}

// rebuildEigensystemBlock installs the rank-c eigensystem update: conceptually
// it decomposes the d×(k+c) matrix A = [E·diag(√(g·λⱼ)) | Y·diag(√b_m)] and
// keeps the top-k left singular system. Like the rank-one fast path it never
// materializes A: with EᵀE = I the (k+c)×(k+c) Gram matrix is
//
//	AᵀA = ⎡ diag(g·λⱼ)          diag(√(g·λ))·Cᵀ·D_b ⎤
//	      ⎣ D_b·C·diag(√(g·λ))   D_b·(Y·Yᵀ)·D_b     ⎦
//
// with C the c×k projections Eᵀy_m already paid for by the fused pass and
// D_b = diag(√b_m); only the c×c inner products Y·Yᵀ cost fresh O(d·c²/2)
// work (SyrkRows). The eigen decomposition V then yields the new basis as
// E_new = E·M + Yᵀ·W with M[l][j] = √(g·λ_l)·V[l][j]/s_j and
// W[m][j] = √b_m·V[k+m][j]/s_j, staged through the eNew buffer: the register-
// tiled Mul kernel streams E·M, AddMulTARows folds in the Yᵀ·W panel one
// source row at a time (two-stream passes the prefetcher handles; a fused
// per-row gather over all c panel rows measures ~20% slower at c = 16). All
// three d-proportional kernels — Syrk, Mul and the panel accumulation — run
// on the engine's worker pool when the calibrated crossover says the dispatch
// pays; results are bitwise independent of the worker count. ws.yMat,
// ws.coefs and ws.bvals must hold the c firing rows.
//
//streampca:noalloc
func (en *Engine) rebuildEigensystemBlock(g float64, c int) {
	st := &en.state
	d := en.cfg.Dim
	k := en.k
	ws := en.ws
	scale := ws.scale
	for j := 0; j < k; j++ {
		lj := st.Values[j]
		if lj < 0 {
			lj = 0
		}
		scale[j] = math.Sqrt(g * lj)
	}
	bs := ws.bscale
	for m := 0; m < c; m++ {
		b := ws.bvals[m]
		if b < 0 {
			b = 0
		}
		bs[m] = math.Sqrt(b)
	}
	en.pool.SyrkRows(ws.syrk, ws.yMat, c)

	// Both solvers below (TridiagSym, and its JacobiSym fallback) read only
	// the upper triangle, so the Gram assembly writes only that: the lower
	// triangle and the structurally-zero off-diagonals of the diag(g·λ) block
	// were zeroed once at workspace allocation and never touched since, and
	// every upper entry that can be nonzero is overwritten here per call.
	kc := k + c
	gram := ws.bgram[c]
	gd := gram.Data()
	for j := 0; j < k; j++ {
		gd[j*kc+j] = scale[j] * scale[j]
	}
	cd := ws.coefs.Data()
	sy := ws.syrk.Data()
	sc := ws.syrk.Cols()
	for m := 0; m < c; m++ {
		sb := bs[m]
		row := cd[m*k : m*k+k]
		for j := 0; j < k; j++ {
			gd[j*kc+(k+m)] = scale[j] * sb * row[j]
		}
		srow := sy[m*sc : m*sc+c]
		for m2 := m; m2 < c; m2++ {
			gd[(k+m)*kc+(k+m2)] = sb * bs[m2] * srow[m2]
		}
	}
	// The (k+c)-sized system sits past the Jacobi/QL crossover, so the block
	// path uses the tridiagonal solver; the rank-one rebuild keeps Jacobi for
	// its (k+1)-sized systems.
	lam, v, ok := eig.TridiagSym(gram, ws.bsym[c])
	if !ok {
		// Keep the previous eigensystem; the decayed sums still advanced.
		return
	}
	if en.inst != nil {
		en.inst.RecordRebuild(obs.RebuildRankC)
	}
	smax := 0.0
	if lam[0] > 0 {
		smax = math.Sqrt(lam[0])
	}
	tol := 1e-13 * smax * math.Sqrt(float64(d))
	tol2 := tol * tol
	null := 0
	for j := 0; j < k; j++ {
		if lam[j] > tol2 && lam[j] > 0 {
			st.Values[j] = lam[j]
			ws.invs[j] = 1 / math.Sqrt(lam[j])
		} else {
			st.Values[j] = 0
			ws.invs[j] = 0 // zeroes the column; completed below
			null++
		}
	}
	// Build the update map M = diag(√(g·λ))·V[:k,:k]·diag(1/s) in natural
	// orientation for the tiled Mul kernel, and the panel coefficients W.
	vdat := v.Data()
	md := ws.mMat.Data()
	for l := 0; l < k; l++ {
		sl := scale[l]
		mrow := md[l*k : l*k+k]
		for j := 0; j < k; j++ {
			mrow[j] = sl * vdat[l*kc+j] * ws.invs[j]
		}
	}
	wd := ws.wMat.Data()
	for m := 0; m < c; m++ {
		sb := bs[m]
		vrow := vdat[(k+m)*kc : (k+m)*kc+k]
		wrow := wd[m*k : m*k+k]
		for j := 0; j < k; j++ {
			wrow[j] = sb * vrow[j] * ws.invs[j]
		}
	}
	// Staged basis rebuild: E_new = E·M (register-tiled), += Yᵀ·W (panel
	// accumulation), then install. Each stage is a pooled kernel with a
	// bitwise partition-independent reduction order.
	en.pool.Mul(ws.eNew, st.Vectors, ws.mMat)
	en.pool.AddMulTARows(ws.eNew, ws.yMat, ws.wMat, c)
	st.Vectors.CopyFrom(ws.eNew)
	if null > 0 {
		// Degenerate directions (collapsed spectrum) were zeroed; complete
		// them to an orthonormal set like the rank-one route does.
		eig.OrthonormalizeWS(st.Vectors, ws.orth)
	}
}
