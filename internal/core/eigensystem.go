package core

import (
	"fmt"
	"math"

	"streampca/internal/mat"
)

// Eigensystem is a snapshot of a streaming PCA estimator's state: the
// truncated eigensystem of the robustly weighted covariance, the location
// estimate, the M-scale, and the running sums that drive the α-forgetting
// recursions (eqs. 12–14). Snapshots are what parallel engines exchange
// during synchronization.
type Eigensystem struct {
	// Mean is the robust location estimate µ (length d).
	Mean []float64
	// Vectors holds the eigenvectors as columns (d×k, k = p+q).
	Vectors *mat.Dense
	// Values holds the corresponding eigenvalues, descending (length k).
	Values []float64
	// Sigma2 is the M-scale σ² of the fit residuals.
	Sigma2 float64
	// SumU, SumV, SumQ are the α-decayed running sums of 1, w, and w·r²
	// (u, v, q in eqs. 12–14). SumV weighs this system in merges.
	SumU, SumV, SumQ float64
	// Count is the total number of observations absorbed.
	Count int64
}

// Dim returns the ambient dimensionality d.
func (e *Eigensystem) Dim() int { return len(e.Mean) }

// NumComponents returns the number of maintained components k = p+q.
func (e *Eigensystem) NumComponents() int { return len(e.Values) }

// Clone returns a deep copy of e.
func (e *Eigensystem) Clone() *Eigensystem {
	return &Eigensystem{
		Mean:    mat.CopyVec(e.Mean),
		Vectors: e.Vectors.Clone(),
		Values:  mat.CopyVec(e.Values),
		Sigma2:  e.Sigma2,
		SumU:    e.SumU,
		SumV:    e.SumV,
		SumQ:    e.SumQ,
		Count:   e.Count,
	}
}

// Component returns a copy of the i-th eigenvector.
func (e *Eigensystem) Component(i int) []float64 {
	return e.Vectors.Col(i, nil)
}

// Project returns the coefficients Eᵀ(x−µ) of x in the eigenbasis.
func (e *Eigensystem) Project(x []float64) []float64 {
	y := mat.SubTo(make([]float64, len(x)), x, e.Mean)
	return mat.MulVecT(nil, e.Vectors, y)
}

// Reconstruct returns µ + E·coef, the point represented by the given
// coefficients. Passing fewer than k coefficients truncates the basis.
func (e *Eigensystem) Reconstruct(coef []float64) []float64 {
	if len(coef) > e.NumComponents() {
		panic("core: too many coefficients")
	}
	out := mat.CopyVec(e.Mean)
	col := make([]float64, e.Dim())
	for i, c := range coef {
		e.Vectors.Col(i, col)
		mat.Axpy(c, col, out)
	}
	return out
}

// Residual2 returns the squared residual ‖(I−EpEpᵀ)(x−µ)‖² of x against the
// first p components (eq. 4). p must be ≤ NumComponents().
func (e *Eigensystem) Residual2(x []float64, p int) float64 {
	if p > e.NumComponents() {
		panic("core: p exceeds maintained components")
	}
	y := mat.SubTo(make([]float64, len(x)), x, e.Mean)
	coef := mat.MulVecT(nil, e.Vectors, y)
	t := mat.Dot(y, y)
	for i := 0; i < p; i++ {
		t -= coef[i] * coef[i]
	}
	if t < 0 {
		t = 0
	}
	return t
}

// SubspaceAffinity measures how well the first p components of e span the
// column space of truth (d×p, orthonormal columns): the mean squared cosine
// (1/p)·‖truthᵀ·Ep‖²_F, which is 1 for identical subspaces and ≈ p/d for
// random ones.
func (e *Eigensystem) SubspaceAffinity(truth *mat.Dense) float64 {
	p := truth.Cols()
	if p > e.NumComponents() {
		p = e.NumComponents()
	}
	ep := e.Vectors.SliceCols(0, p)
	g := mat.MulTA(nil, truth, ep)
	f := g.FrobeniusNorm()
	return f * f / float64(truth.Cols())
}

// EffectiveWindow returns the α-decayed count u, which converges to
// 1/(1−α) — the effective sample size of the estimator.
func (e *Eigensystem) EffectiveWindow() float64 { return e.SumU }

// String summarizes the eigensystem for logs.
func (e *Eigensystem) String() string {
	k := e.NumComponents()
	show := k
	if show > 6 {
		show = 6
	}
	return fmt.Sprintf("Eigensystem{d=%d k=%d count=%d sigma2=%.4g lambda[:%d]=%.4g}",
		e.Dim(), k, e.Count, e.Sigma2, show, e.Values[:show])
}

// checkFinite reports whether all state entries are finite; used by tests
// and the engine's failure detection.
func (e *Eigensystem) checkFinite() bool {
	for _, v := range e.Mean {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	for _, v := range e.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	for _, v := range e.Vectors.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return !(math.IsNaN(e.Sigma2) || math.IsInf(e.Sigma2, 0))
}
