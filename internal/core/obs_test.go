package core

import (
	"math/rand/v2"
	"testing"

	"streampca/internal/obs"
)

// TestEnginePublishesGauges checks the full instrument contract: after
// warm-up and steady updates, the attached bundle carries σ², the leading
// eigenvalues and eigengap, the effective N, outlier tallies, rebuild
// counters and the warm-up journal entry.
func TestEnginePublishesGauges(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 1))
	m := newModel(rng, 60, 3, []float64{9, 4, 1}, 0.05)
	en, err := NewEngine(Config{Dim: 60, Components: 3, Alpha: 1 - 1.0/500})
	if err != nil {
		t.Fatal(err)
	}
	set := obs.NewSet()
	inst := set.Engine(0)
	en.SetInstruments(inst)

	xs := m.samples(en.Config().InitSize + 200)
	for _, x := range xs {
		if _, err := en.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	if !en.Ready() {
		t.Fatal("engine not ready")
	}

	st := en.Eigensystem()
	if got := inst.Sigma2.Get(); got != st.Sigma2 {
		t.Errorf("Sigma2 gauge = %g, state = %g", got, st.Sigma2)
	}
	if inst.EffN.Get() <= 0 {
		t.Error("EffN gauge not published")
	}
	if got := inst.SinceSync.Get(); got != float64(en.SinceSync()) {
		t.Errorf("SinceSync gauge = %g, engine = %d", got, en.SinceSync())
	}
	vals := inst.Eigenvalues()
	if len(vals) != en.k {
		t.Fatalf("published %d eigenvalues, want %d", len(vals), en.k)
	}
	for j, v := range vals {
		if v != st.Values[j] {
			t.Errorf("eigenvalue %d gauge = %g, state = %g", j, v, st.Values[j])
		}
	}
	if p := en.cfg.Components; p < en.k {
		if got, want := inst.Eigengap.Get(), st.Values[p-1]-st.Values[p]; got != want {
			t.Errorf("eigengap = %g, want %g", got, want)
		}
	}
	if got := inst.Observations.Load(); got != 200 {
		// Warm-up rows are buffered, not updated; only post-init rows publish.
		t.Errorf("observations = %d, want 200", got)
	}
	if inst.RankOne.Load() == 0 {
		t.Error("rank-one rebuild counter never incremented")
	}

	var sawInit bool
	for _, ev := range set.Journal().Events(0) {
		if ev.Kind == obs.EvEngineInit && ev.Engine == 0 {
			sawInit = true
			if ev.N != int64(en.Config().InitSize) || ev.A <= 0 {
				t.Errorf("engine-init event = %+v", ev)
			}
		}
	}
	if !sawInit {
		t.Error("no engine-init journal entry")
	}
}

// TestObserveBlockPublishesRankC checks the block path tallies rank-c
// rebuilds and refreshes the eigen gauges after the deferred rebuild.
func TestObserveBlockPublishesRankC(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 2))
	m := newModel(rng, 60, 3, []float64{9, 4, 1}, 0.05)
	en, err := NewEngine(Config{Dim: 60, Components: 3, Alpha: 1 - 1.0/500})
	if err != nil {
		t.Fatal(err)
	}
	set := obs.NewSet()
	inst := set.Engine(2)
	en.SetInstruments(inst)

	warm := m.samples(en.Config().InitSize)
	if _, err := en.ObserveBlock(warm, nil); err != nil {
		t.Fatal(err)
	}
	buf := make([]Update, 0, 16)
	for i := 0; i < 10; i++ {
		buf, _ = en.ObserveBlock(m.samples(16), buf[:0])
	}
	if inst.RankC.Load() == 0 {
		t.Error("rank-c rebuild counter never incremented")
	}
	st := en.Eigensystem()
	vals := inst.Eigenvalues()
	for j, v := range vals {
		if v != st.Values[j] {
			t.Errorf("post-chunk eigenvalue %d gauge = %g, state = %g", j, v, st.Values[j])
		}
	}
}

// TestInstrumentedObserveZeroAllocs is the acceptance gate: attaching
// instruments must not reintroduce allocations on the Observe path.
func TestInstrumentedObserveZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 7))
	m := newModel(rng, 80, 3, []float64{9, 4, 1}, 0.05)
	en, err := NewEngine(Config{Dim: 80, Components: 3, Alpha: 1 - 1.0/500, ReorthEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	en.SetInstruments(obs.NewSet().Engine(0))
	xs := m.samples(256)
	for i := 0; i <= en.Config().InitSize; i++ {
		if _, err := en.Observe(xs[i%len(xs)]); err != nil {
			t.Fatal(err)
		}
	}
	if !en.Ready() {
		t.Fatal("engine not ready after warm-up")
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		en.Observe(xs[i%len(xs)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("instrumented Observe allocated %v times per run", allocs)
	}
}

// TestInstrumentedObserveBlockZeroAllocs mirrors the block-path contract.
func TestInstrumentedObserveBlockZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 9))
	m := newModel(rng, 80, 3, []float64{9, 4, 1}, 0.05)
	en, err := NewEngine(Config{Dim: 80, Components: 3, Alpha: 1 - 1.0/500, ReorthEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	en.SetInstruments(obs.NewSet().Engine(0))
	warm := m.samples(en.Config().InitSize + 8)
	if _, err := en.ObserveBlock(warm, nil); err != nil {
		t.Fatal(err)
	}
	if !en.Ready() {
		t.Fatal("engine not ready after warm-up")
	}
	const batch = 16
	blocks := make([][][]float64, 8)
	for b := range blocks {
		blocks[b] = m.samples(batch)
	}
	buf := make([]Update, 0, batch)
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		buf, _ = en.ObserveBlock(blocks[i%len(blocks)], buf[:0])
		i++
	})
	if allocs != 0 {
		t.Fatalf("instrumented ObserveBlock allocated %v times per run", allocs)
	}
}
