package core

import (
	"errors"
	"fmt"
	"math"

	"streampca/internal/mat"
)

// ObserveMasked absorbs an observation with missing entries (§II-D).
// mask[i] = true means x[i] was observed; masked entries of x are ignored
// (they may be NaN). The gaps are patched by the unbiased reconstruction of
// Connolly & Szalay: coefficients are fitted on the observed bins against
// the current (p+q)-component basis, missing bins are filled with the
// reconstruction, and the patched vector flows through the standard update.
//
// Because patching uses all p+q components while the robust residual is
// taken against the first p only, the residual in each patched bin is the
// difference between the two truncated reconstructions — exactly the
// higher-order correction the paper prescribes, so spectra with many empty
// pixels do not receive artificially inflated weights (set Config.Extra > 0
// to enable it; with Extra = 0 patched bins contribute zero residual).
//
// During warm-up, when no basis exists yet, missing entries are filled with
// the per-bin running mean of the observed values so the initial batch
// decomposition stays unbiased in location.
func (en *Engine) ObserveMasked(x []float64, mask []bool) (Update, error) {
	d := en.cfg.Dim
	if len(x) != d || len(mask) != d {
		return Update{}, fmt.Errorf("core: masked observation length %d/%d, want %d", len(x), len(mask), d)
	}
	nObs := 0
	for i, ok := range mask {
		if !ok {
			continue
		}
		if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			return Update{}, errors.New("core: non-finite value in observed bin")
		}
		nObs++
	}
	if nObs == 0 {
		return Update{}, errors.New("core: observation is entirely masked")
	}
	if nObs == d {
		return en.Observe(x)
	}
	k := en.k
	if nObs <= k {
		return Update{}, fmt.Errorf("core: only %d observed bins; need more than %d to fit the basis", nObs, k)
	}

	if !en.ready {
		xp := en.fillWithBinMeans(x, mask)
		u, err := en.bufferWarmupMasked(xp, mask)
		u.Patched = d - nObs
		return u, err
	}

	xp, _, err := en.PatchVector(x, mask)
	if err != nil {
		return Update{}, err
	}
	u := en.update(xp)
	u.Patched = d - nObs
	return u, nil
}

// PatchVector returns a copy of x with masked entries replaced by the
// current best reconstruction, together with the fitted coefficients. The
// engine must be initialized.
func (en *Engine) PatchVector(x []float64, mask []bool) (patched, coef []float64, err error) {
	if !en.ready {
		return nil, nil, errors.New("core: engine not initialized yet")
	}
	return patchLS(en.state.Vectors, en.state.Mean, x, mask)
}

// patchLS fills the masked entries of x by least squares against basis:
// coefficients solve the normal equations restricted to the observed rows,
// (E_obsᵀ·E_obs)·c = E_obsᵀ·(x−µ)_obs, and masked bins take µ + E·c.
func patchLS(basis *mat.Dense, mean, x []float64, mask []bool) (patched, coef []float64, err error) {
	d, k := basis.Dims()
	g := mat.NewDense(k, k)
	b := make([]float64, k)
	for i := 0; i < d; i++ {
		if !mask[i] {
			continue
		}
		row := basis.Row(i)
		yi := x[i] - mean[i]
		for a := 0; a < k; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			b[a] += ra * yi
			ga := g.Row(a)
			for c := a; c < k; c++ {
				ga[c] += ra * row[c]
			}
		}
	}
	for a := 0; a < k; a++ {
		for c := a + 1; c < k; c++ {
			g.Set(c, a, g.At(a, c))
		}
	}
	coef, err = solveSPD(g, b)
	if err != nil {
		return nil, nil, err
	}

	patched = make([]float64, d)
	for i := 0; i < d; i++ {
		if mask[i] {
			patched[i] = x[i]
			continue
		}
		v := mean[i]
		row := basis.Row(i)
		for a := 0; a < k; a++ {
			v += row[a] * coef[a]
		}
		patched[i] = v
	}
	return patched, coef, nil
}

// fillWithBinMeans replaces masked entries with the running per-bin mean of
// everything observed so far (warm-up only). Bins never observed fall back
// to 0.
func (en *Engine) fillWithBinMeans(x []float64, mask []bool) []float64 {
	d := en.cfg.Dim
	if en.binSum == nil {
		en.binSum = make([]float64, d)
		en.binCount = make([]float64, d)
	}
	for i := 0; i < d; i++ {
		if mask[i] {
			en.binSum[i] += x[i]
			en.binCount[i]++
		}
	}
	xp := make([]float64, d)
	for i := 0; i < d; i++ {
		if mask[i] {
			xp[i] = x[i]
		} else if en.binCount[i] > 0 {
			xp[i] = en.binSum[i] / en.binCount[i]
		}
	}
	return xp
}
