package core

import (
	"math/rand/v2"
	"testing"
)

// TestEngineForcedParallelismBitwise pins the engine-level determinism
// contract on top of the kernel-level one: a serial engine and a pooled
// engine with the crossover forced open must produce BITWISE identical
// updates, eigensystems and scales over an identical stream, through both
// the per-observation and the block path. Parallelism is a resource knob,
// never a numeric one.
func TestEngineForcedParallelismBitwise(t *testing.T) {
	const steps = 1200
	d, p := 160, 4
	for _, batch := range []int{1, 7, 32} {
		mkEngine := func(workers int) (*Engine, [][]float64) {
			rng := rand.New(rand.NewPCG(63, 9))
			m := newModel(rng, d, p, []float64{16, 9, 4, 1}, 0.1)
			m.outlier = 0.05
			en, err := NewEngine(Config{Dim: d, Components: p, Alpha: 1 - 1.0/600, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			xs := make([][]float64, steps)
			for i := range xs {
				xs[i], _ = m.sample()
			}
			return en, xs
		}
		ser, xs := mkEngine(1)
		defer ser.Close()
		for _, nw := range []int{2, 4} {
			par, xs2 := mkEngine(nw)
			par.pool.SetMinWork(0) // force every kernel through the dispatch path
			serUpd := feedBlocks(t, ser, xs, batch)
			parUpd := feedBlocks(t, par, xs2, batch)
			if len(serUpd) != len(parUpd) {
				t.Fatalf("nw=%d batch=%d: %d updates vs %d", nw, batch, len(parUpd), len(serUpd))
			}
			for i := range serUpd {
				if serUpd[i] != parUpd[i] {
					t.Fatalf("nw=%d batch=%d: update %d diverged: %+v vs %+v",
						nw, batch, i, parUpd[i], serUpd[i])
				}
			}
			ss, es := ser.Eigensystem(), par.Eigensystem()
			if ss.Sigma2 != es.Sigma2 || ss.Count != es.Count {
				t.Fatalf("nw=%d batch=%d: scalar state diverged", nw, batch)
			}
			for j := range ss.Values {
				if ss.Values[j] != es.Values[j] {
					t.Fatalf("nw=%d batch=%d: eigenvalue %d: %v vs %v",
						nw, batch, j, es.Values[j], ss.Values[j])
				}
			}
			sv, ev := ss.Vectors.Data(), es.Vectors.Data()
			for i := range sv {
				if sv[i] != ev[i] {
					t.Fatalf("nw=%d batch=%d: basis entry %d differs by %g",
						nw, batch, i, ev[i]-sv[i])
				}
			}
			for i := range ss.Mean {
				if ss.Mean[i] != es.Mean[i] {
					t.Fatalf("nw=%d batch=%d: mean entry %d differs", nw, batch, i)
				}
			}
			par.Close()
			// Re-seed the serial engine for the next worker count.
			ser, xs = mkEngine(1)
		}
	}
}

// TestEngineParallelZeroAllocs extends the steady-state allocation contract
// to a pooled engine with the crossover forced open: the channel handoff,
// the parked workers and the per-worker scratch must all be allocation-free
// per observation, through Observe and ObserveBlock alike.
func TestEngineParallelZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 10))
	d := 300
	m := newModel(rng, d, 3, []float64{9, 4, 1}, 0.05)
	en, err := NewEngine(Config{Dim: d, Components: 3, Alpha: 1 - 1.0/500, ReorthEvery: 32, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer en.Close()
	en.pool.SetMinWork(0)
	warm := m.samples(en.Config().InitSize + 8)
	if _, err := en.ObserveBlock(warm, nil); err != nil {
		t.Fatal(err)
	}
	if !en.Ready() {
		t.Fatal("engine not ready after warm-up")
	}
	const batch = 16
	blocks := make([][][]float64, 8)
	for b := range blocks {
		blocks[b] = m.samples(batch)
	}
	buf := make([]Update, 0, batch)
	i := 0
	if allocs := testing.AllocsPerRun(100, func() {
		buf, _ = en.ObserveBlock(blocks[i%len(blocks)], buf[:0])
		i++
	}); allocs != 0 {
		t.Fatalf("pooled ObserveBlock allocated %v times per run", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		_, _ = en.Observe(blocks[i%len(blocks)][0])
		i++
	}); allocs != 0 {
		t.Fatalf("pooled Observe allocated %v times per run", allocs)
	}
}
