package core

import (
	"errors"
	"math"
	"time"
)

// Time-based windows (§II-B: "there are several options to maintain the
// eigensystem over varying temporal extents, including a damping factor or
// time-based windows ... Both approaches can be implemented"). Observe
// applies the per-observation damping factor α; ObserveAt instead decays
// the running sums by exp(−Δt/τ) for the wall-clock gap Δt since the
// previous observation, making the effective window a fixed span of
// *time* regardless of the arrival rate — the natural choice for sensor
// feeds with irregular cadence.

// ObserveAt absorbs one complete observation stamped with its arrival (or
// measurement) time, using time-based forgetting with the time constant
// Config.TimeWindow. It returns an error when TimeWindow is unset.
// Timestamps should be non-decreasing; a backwards stamp is treated as
// simultaneous (no decay). During warm-up the observation is buffered like
// any other.
func (en *Engine) ObserveAt(x []float64, at time.Time) (Update, error) {
	if en.cfg.TimeWindow <= 0 {
		return Update{}, errors.New("core: ObserveAt requires Config.TimeWindow")
	}
	if len(x) != en.cfg.Dim {
		return Update{}, errors.New("core: observation length mismatch")
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Update{}, errors.New("core: observation contains non-finite values")
		}
	}
	alpha := en.timeDecay(at)
	if !en.ready {
		return en.bufferWarmup(x)
	}
	return en.updateAlpha(x, alpha), nil
}

// ObserveMaskedAt is the gappy counterpart of ObserveAt.
func (en *Engine) ObserveMaskedAt(x []float64, mask []bool, at time.Time) (Update, error) {
	if en.cfg.TimeWindow <= 0 {
		return Update{}, errors.New("core: ObserveMaskedAt requires Config.TimeWindow")
	}
	alpha := en.timeDecay(at)
	en.pendingAlpha = alpha
	defer func() { en.pendingAlpha = 0 }()
	return en.ObserveMasked(x, mask)
}

// timeDecay converts the gap since the previous stamped observation into a
// one-step decay factor exp(−Δt/τ).
func (en *Engine) timeDecay(at time.Time) float64 {
	if en.lastObserved.IsZero() {
		en.lastObserved = at
		return 1
	}
	dt := at.Sub(en.lastObserved)
	if dt < 0 {
		dt = 0
	}
	en.lastObserved = at
	return math.Exp(-dt.Seconds() / en.cfg.TimeWindow.Seconds())
}
