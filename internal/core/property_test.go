package core

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"streampca/internal/mat"
)

// Property-based tests (testing/quick) over the core invariants.

func TestQuickProjectReconstructIdempotent(t *testing.T) {
	// Reconstructing from a projection and projecting again is a fixed
	// point: Project(Reconstruct(Project(x))) == Project(x).
	rng := rand.New(rand.NewPCG(960, 1))
	m := newModel(rng, 25, 3, []float64{9, 4, 1}, 0.05)
	en, _ := NewEngine(testConfig(25, 3))
	feedN(t, en, m, 800)
	es := en.Eigensystem()

	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		x := make([]float64, 25)
		for i := range x {
			x[i] = 5 * r.NormFloat64()
		}
		c1 := es.Project(x)
		rec := es.Reconstruct(c1)
		c2 := es.Project(rec)
		return mat.EqualApproxVec(c1, c2, 1e-9*(1+mat.NormInf(c1)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickResidualOrthogonalToProjection(t *testing.T) {
	// ‖y‖² == ‖proj‖² + r² (Pythagoras for the orthonormal basis).
	rng := rand.New(rand.NewPCG(961, 2))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	en, _ := NewEngine(testConfig(20, 2))
	feedN(t, en, m, 600)
	es := en.Eigensystem()

	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 4))
		x := make([]float64, 20)
		for i := range x {
			x[i] = 3 * r.NormFloat64()
		}
		y := mat.SubTo(make([]float64, 20), x, es.Mean)
		ny2 := mat.Dot(y, y)
		coef := es.Project(x)
		var proj2 float64
		for _, c := range coef {
			proj2 += c * c
		}
		r2 := es.Residual2(x, es.NumComponents())
		return math.Abs(ny2-(proj2+r2)) <= 1e-8*(1+ny2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeWeightMonotonic(t *testing.T) {
	// Merging a heavier peer pulls the mean strictly closer to the peer's
	// mean (affine combination with weight v₂/(v₁+v₂)).
	rng := rand.New(rand.NewPCG(962, 3))
	m := newModel(rng, 15, 2, []float64{4, 1}, 0.05)
	base, _ := NewEngine(Config{Dim: 15, Components: 2})
	feedN(t, base, m, 300)
	snapBase, _ := base.Snapshot()

	f := func(scale uint8) bool {
		peer := snapBase.Clone()
		for i := range peer.Mean {
			peer.Mean[i] += 1 // shifted location
		}
		peer.SumV = snapBase.SumV * (1 + float64(scale%16))
		en, err := ResumeEngine(Config{Dim: 15, Components: 2}, snapBase)
		if err != nil {
			return false
		}
		if err := en.MergeSnapshot(peer); err != nil {
			return false
		}
		got := en.Eigensystem().Mean[0]
		want := snapBase.Mean[0] + peer.SumV/(peer.SumV+snapBase.SumV)
		return math.Abs(got-want) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCheckpointRoundTripAnyState(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		d := 5 + int(seed%20)
		p := 1 + int(seed%3)
		if p >= d {
			p = d - 1
		}
		lambda := make([]float64, p)
		for i := range lambda {
			lambda[i] = 1 + r.Float64()*8
		}
		m := newModel(r, d, p, lambda, 0.05)
		en, err := NewEngine(Config{Dim: d, Components: p, Alpha: 1 - 1.0/200})
		if err != nil {
			return false
		}
		for i := 0; i < en.Config().InitSize+50; i++ {
			x, _ := m.sample()
			en.Observe(x)
		}
		if !en.Ready() {
			return false
		}
		var buf bytes.Buffer
		if err := en.SaveCheckpoint(&buf); err != nil {
			return false
		}
		back, err := ReadEigensystem(&buf)
		if err != nil {
			return false
		}
		want := en.Eigensystem()
		return back.Vectors.EqualApprox(want.Vectors, 0) &&
			mat.EqualApproxVec(back.Mean, want.Mean, 0) &&
			back.Sigma2 == want.Sigma2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
