package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"streampca/internal/mat"
	"streampca/internal/robust"
)

func TestBatchPCARecoversModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(400, 1))
	m := newModel(rng, 30, 3, []float64{9, 4, 1}, 0.05)
	xs := m.samples(5000)
	res, err := BatchPCA(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if aff := affinity(m.basis, res.Vectors); aff < 0.99 {
		t.Fatalf("batch affinity = %v", aff)
	}
	for j, want := range []float64{9, 4, 1} {
		if math.Abs(res.Values[j]-want)/want > 0.15 {
			t.Fatalf("lambda[%d] = %v, want ≈ %v", j, res.Values[j], want)
		}
	}
	if !mat.EqualApproxVec(res.Mean, m.mean, 0.1) {
		t.Fatal("batch mean off")
	}
	if res.Sigma2 <= 0 {
		t.Fatal("batch sigma2 should be positive")
	}
}

func TestBatchPCAErrors(t *testing.T) {
	if _, err := BatchPCA(nil, 1); err == nil {
		t.Fatal("empty input should error")
	}
	xs := [][]float64{{1, 2}, {3, 4}}
	if _, err := BatchPCA(xs, 0); err == nil {
		t.Fatal("p=0 should error")
	}
	if _, err := BatchPCA(xs, 3); err == nil {
		t.Fatal("p>d should error")
	}
	if _, err := BatchPCA([][]float64{{1, 2}, {3}}, 1); err == nil {
		t.Fatal("ragged input should error")
	}
}

func TestBatchRobustPCAUnderContamination(t *testing.T) {
	rng := rand.New(rand.NewPCG(401, 2))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
	m.outlier = 0.15
	xs := m.samples(3000)

	classic, err := BatchPCA(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	rob, err := BatchRobustPCA(xs, 2, robust.DefaultBisquare(), 0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	affC := affinity(m.basis, classic.Vectors)
	affR := affinity(m.basis, rob.Vectors)
	if affR < 0.97 {
		t.Fatalf("robust batch affinity = %v", affR)
	}
	if affC > affR {
		t.Fatalf("classic (%v) should not beat robust (%v) under contamination", affC, affR)
	}
	if rob.Iterations < 2 {
		t.Fatalf("robust batch should iterate, got %d", rob.Iterations)
	}
	// Robust scale should be near the clean residual scale, far below the
	// contaminated classical one.
	if rob.Sigma2 > classic.Sigma2/10 {
		t.Fatalf("robust sigma2 %v vs classic %v", rob.Sigma2, classic.Sigma2)
	}
}

func TestBatchRobustMatchesBatchOnCleanData(t *testing.T) {
	rng := rand.New(rand.NewPCG(402, 3))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	xs := m.samples(2000)
	classic, err := BatchPCA(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	rob, err := BatchRobustPCA(xs, 2, robust.DefaultBisquare(), 0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if aff := affinity(classic.Vectors, rob.Vectors); aff < 0.999 {
		t.Fatalf("clean-data subspaces should agree: %v", aff)
	}
}

func TestStreamingConvergesToBatchRobust(t *testing.T) {
	// The streaming robust estimator should land near the offline Maronna
	// solution on the same distribution.
	rng := rand.New(rand.NewPCG(403, 4))
	m := newModel(rng, 25, 2, []float64{4, 1}, 0.05)
	m.outlier = 0.08
	xs := m.samples(6000)

	rob, err := BatchRobustPCA(xs, 2, robust.DefaultBisquare(), 0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	en, _ := NewEngine(testConfig(25, 2))
	for _, x := range xs {
		if _, err := en.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	if aff := affinity(rob.Vectors, en.Eigensystem().Vectors.SliceCols(0, 2)); aff < 0.95 {
		t.Fatalf("streaming vs batch-robust affinity = %v", aff)
	}
}

func TestRobustEigenvaluesOnTrueBasis(t *testing.T) {
	rng := rand.New(rand.NewPCG(404, 5))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.02)
	xs := m.samples(5000)
	vals, err := RobustEigenvalues(m.basis, m.mean, xs, robust.DefaultBisquare(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range []float64{4, 1} {
		if math.Abs(vals[j]-want)/want > 0.2 {
			t.Fatalf("robust lambda[%d] = %v, want ≈ %v", j, vals[j], want)
		}
	}
}

func TestRobustEigenvaluesIgnoreOutliers(t *testing.T) {
	rng := rand.New(rand.NewPCG(405, 6))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.02)
	clean := m.samples(4000)
	m.outlier = 0.2
	dirty := m.samples(4000)
	vc, err := RobustEigenvalues(m.basis, m.mean, clean, robust.DefaultBisquare(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	vd, err := RobustEigenvalues(m.basis, m.mean, dirty, robust.DefaultBisquare(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for j := range vc {
		if vd[j] > 3*vc[j] {
			t.Fatalf("robust eigenvalue %d exploded under contamination: %v vs %v", j, vd[j], vc[j])
		}
	}
}

func TestRobustEigenvaluesErrors(t *testing.T) {
	basis := mat.NewDense(5, 2)
	if _, err := RobustEigenvalues(basis, make([]float64, 5), nil, robust.DefaultBisquare(), 0.5); err == nil {
		t.Fatal("no data should error")
	}
	if _, err := RobustEigenvalues(basis, make([]float64, 4), [][]float64{make([]float64, 5)}, robust.DefaultBisquare(), 0.5); err == nil {
		t.Fatal("mean mismatch should error")
	}
	if _, err := RobustEigenvalues(basis, make([]float64, 5), [][]float64{make([]float64, 4)}, robust.DefaultBisquare(), 0.5); err == nil {
		t.Fatal("obs mismatch should error")
	}
}

func BenchmarkBatchRobustPCA(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	m := newModel(rng, 50, 3, []float64{9, 4, 1}, 0.05)
	m.outlier = 0.05
	xs := m.samples(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BatchRobustPCA(xs, 3, robust.DefaultBisquare(), 0.5, 20); err != nil {
			b.Fatal(err)
		}
	}
}
