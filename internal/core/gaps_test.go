package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"streampca/internal/mat"
)

// randomMask masks each bin independently with probability pMask.
func randomMask(rng *rand.Rand, d int, pMask float64) []bool {
	mask := make([]bool, d)
	for i := range mask {
		mask[i] = rng.Float64() >= pMask
	}
	return mask
}

func TestPatchVectorRecoversMissingBins(t *testing.T) {
	rng := rand.New(rand.NewPCG(300, 1))
	m := newModel(rng, 40, 3, []float64{9, 4, 1}, 0.02)
	en, _ := NewEngine(testConfig(40, 3))
	feedN(t, en, m, 3000)

	for trial := 0; trial < 20; trial++ {
		x, _ := m.sample()
		truth := mat.CopyVec(x)
		mask := randomMask(rng, 40, 0.25)
		nMasked := 0
		for i, ok := range mask {
			if !ok {
				x[i] = math.NaN()
				nMasked++
			}
		}
		if nMasked == 0 {
			continue
		}
		patched, coef, err := en.PatchVector(x, mask)
		if err != nil {
			t.Fatal(err)
		}
		if len(coef) != 3 {
			t.Fatalf("coef length %d", len(coef))
		}
		var maxErr float64
		for i, ok := range mask {
			if ok {
				if patched[i] != x[i] {
					t.Fatal("observed bin modified")
				}
				continue
			}
			if e := math.Abs(patched[i] - truth[i]); e > maxErr {
				maxErr = e
			}
		}
		// The signal scale is ~3 (largest λ=9); reconstruction error should
		// be on the noise scale, far below signal.
		if maxErr > 0.5 {
			t.Fatalf("trial %d: patch error %v", trial, maxErr)
		}
	}
}

func TestObserveMaskedStreamConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(301, 2))
	m := newModel(rng, 40, 3, []float64{9, 4, 1}, 0.05)
	cfg := testConfig(40, 3)
	cfg.Extra = 2
	en, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6000; i++ {
		x, _ := m.sample()
		mask := randomMask(rng, 40, 0.2)
		if _, err := en.ObserveMasked(x, mask); err != nil {
			t.Fatalf("obs %d: %v", i, err)
		}
	}
	if aff := en.Eigensystem().SubspaceAffinity(m.basis); aff < 0.95 {
		t.Fatalf("gappy-stream affinity = %v", aff)
	}
}

func TestObserveMaskedWarmupUsesBinMeans(t *testing.T) {
	rng := rand.New(rand.NewPCG(302, 3))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	cfg := testConfig(20, 2)
	cfg.InitSize = 15
	en, _ := NewEngine(cfg)
	for i := 0; i < 15; i++ {
		x, _ := m.sample()
		mask := randomMask(rng, 20, 0.15)
		u, err := en.ObserveMasked(x, mask)
		if err != nil {
			t.Fatal(err)
		}
		if i < 14 && !u.Warmup {
			t.Fatal("expected warmup")
		}
	}
	if !en.Ready() {
		t.Fatal("engine should initialize from masked warm-up")
	}
}

func TestObserveMaskedValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(303, 4))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	en, _ := NewEngine(testConfig(20, 2))
	feedN(t, en, m, 200)
	x, _ := m.sample()

	if _, err := en.ObserveMasked(x[:10], make([]bool, 20)); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := en.ObserveMasked(x, make([]bool, 20)); err == nil {
		t.Fatal("fully masked should error")
	}
	// Too few observed bins to fit k components.
	mask := make([]bool, 20)
	mask[0], mask[1] = true, true
	if _, err := en.ObserveMasked(x, mask); err == nil {
		t.Fatal("insufficient observed bins should error")
	}
	// NaN in an observed bin.
	full := make([]bool, 20)
	for i := range full {
		full[i] = true
	}
	bad := mat.CopyVec(x)
	bad[5] = math.NaN()
	if _, err := en.ObserveMasked(bad, full); err == nil {
		t.Fatal("NaN in observed bin should error")
	}
}

func TestObserveMaskedCompleteVectorEqualsObserve(t *testing.T) {
	rng := rand.New(rand.NewPCG(304, 5))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	mkEngine := func() *Engine {
		en, _ := NewEngine(testConfig(20, 2))
		r2 := rand.New(rand.NewPCG(42, 42))
		m2 := newModel(r2, 20, 2, []float64{4, 1}, 0.05)
		feedN(t, en, m2, 300)
		return en
	}
	a, b := mkEngine(), mkEngine()
	full := make([]bool, 20)
	for i := range full {
		full[i] = true
	}
	x, _ := m.sample()
	ua, err1 := a.Observe(x)
	ub, err2 := b.ObserveMasked(x, full)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if ua.Weight != ub.Weight || ua.Residual2 != ub.Residual2 {
		t.Fatal("masked path with full mask should match Observe exactly")
	}
}

func TestResidualCorrectionAvoidsWeightInflation(t *testing.T) {
	// §II-D: without the p+q correction, heavily masked spectra get
	// near-zero residuals in the patched bins and thus inflated weights.
	// With Extra > 0 the residual of a masked observation should stay
	// comparable to that of complete observations.
	rng := rand.New(rand.NewPCG(305, 6))
	m := newModel(rng, 60, 3, []float64{9, 4, 1}, 0.3)
	cfg := testConfig(60, 3)
	cfg.Extra = 3
	en, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, en, m, 3000)

	var fullR2, maskR2 float64
	const trials = 300
	for i := 0; i < trials; i++ {
		x, _ := m.sample()
		uf, err := en.Observe(x)
		if err != nil {
			t.Fatal(err)
		}
		fullR2 += uf.Residual2

		y, _ := m.sample()
		mask := randomMask(rng, 60, 0.4)
		um, err := en.ObserveMasked(y, mask)
		if err != nil {
			t.Fatal(err)
		}
		maskR2 += um.Residual2
	}
	ratio := maskR2 / fullR2
	// Perfect correction would give ratio ≈ observed fraction + corrected
	// tail; without any correction the ratio collapses toward the observed
	// fraction of (d−p) noise bins (~0.6) *minus* the k-fit absorption,
	// empirically < 0.5. Require the corrected ratio to stay sane.
	if ratio < 0.35 || ratio > 1.5 {
		t.Fatalf("masked/full residual ratio = %v", ratio)
	}
}

func TestFillWithBinMeansFallsBackToZero(t *testing.T) {
	en, _ := NewEngine(Config{Dim: 4, Components: 1, InitSize: 10})
	x := []float64{1, 2, 3, 4}
	mask := []bool{true, true, true, false} // bin 3 never observed
	xp := en.fillWithBinMeans(x, mask)
	if xp[3] != 0 {
		t.Fatalf("never-observed bin should fill 0, got %v", xp[3])
	}
	if xp[0] != 1 || xp[2] != 3 {
		t.Fatal("observed bins must pass through")
	}
	// Second call: bin means now exist.
	y := []float64{3, 4, 5, 6}
	en.fillWithBinMeans(y, []bool{true, true, true, true})
	xp = en.fillWithBinMeans([]float64{0, 0, 0, 0}, []bool{false, false, false, true})
	if math.Abs(xp[0]-2) > 1e-12 {
		t.Fatalf("bin mean fill = %v", xp[0])
	}
}

func TestSolveSPD(t *testing.T) {
	g := mat.NewDenseData(2, 2, []float64{4, 1, 1, 3})
	x, err := solveSPD(g, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Verify G·x = b.
	b := mat.MulVec(nil, g, x)
	if !mat.EqualApproxVec(b, []float64{1, 2}, 1e-12) {
		t.Fatalf("solveSPD wrong: %v", x)
	}
}

func TestSolveSPDSingularWithJitter(t *testing.T) {
	// Rank-1 Gram matrix: jitter should still produce a finite solution.
	g := mat.NewDenseData(2, 2, []float64{1, 1, 1, 1})
	x, err := solveSPD(g, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite solution %v", x)
		}
	}
}

func TestSolveSPDEmpty(t *testing.T) {
	x, err := solveSPD(mat.NewDense(0, 0), nil)
	if err != nil || x != nil {
		t.Fatalf("empty solve: %v %v", x, err)
	}
}
