package core

import (
	"math/rand/v2"
	"testing"
)

// TestObserveZeroAllocsSteadyState asserts the initialized engine's Observe
// is allocation free — the workspace contract this PR's performance rests
// on. The run spans a ReorthEvery boundary so the periodic
// re-orthonormalization path is covered too.
func TestObserveZeroAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 1))
	m := newModel(rng, 80, 3, []float64{9, 4, 1}, 0.05)
	en, err := NewEngine(Config{Dim: 80, Components: 3, Alpha: 1 - 1.0/500, ReorthEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	xs := m.samples(256)
	for i := 0; i <= en.Config().InitSize; i++ {
		if _, err := en.Observe(xs[i%len(xs)]); err != nil {
			t.Fatal(err)
		}
	}
	if !en.Ready() {
		t.Fatal("engine not ready after warm-up")
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		en.Observe(xs[i%len(xs)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Observe allocated %v times per run", allocs)
	}
}

// TestLocationObserveZeroAllocs asserts the location analytic's steady
// state is also allocation free.
func TestLocationObserveZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 2))
	m := newModel(rng, 40, 2, []float64{4, 1}, 0.1)
	le, err := NewLocationEngine(LocationConfig{Dim: 40})
	if err != nil {
		t.Fatal(err)
	}
	xs := m.samples(128)
	for i := 0; i < 32; i++ {
		if _, err := le.Observe(xs[i%len(xs)]); err != nil {
			t.Fatal(err)
		}
	}
	if !le.Ready() {
		t.Fatal("location engine not ready after warm-up")
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		le.Observe(xs[i%len(xs)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state location Observe allocated %v times per run", allocs)
	}
}
