package core

import (
	"errors"
	"math"

	"streampca/internal/mat"
)

// solveSPD solves G·x = b for a symmetric positive-definite k×k matrix G by
// Cholesky factorization, adding a diagonal jitter and retrying when G is
// only semi-definite (masked bins can make the observed-row Gram singular).
// G is not modified.
func solveSPD(g *mat.Dense, b []float64) ([]float64, error) {
	k := g.Rows()
	if g.Cols() != k || len(b) != k {
		panic("core: solveSPD shape mismatch")
	}
	if k == 0 {
		return nil, nil
	}
	var trace float64
	for i := 0; i < k; i++ {
		trace += g.At(i, i)
	}
	jitter := 0.0
	for attempt := 0; attempt < 8; attempt++ {
		l, ok := cholesky(g, jitter)
		if ok {
			return cholSolve(l, b), nil
		}
		if jitter == 0 {
			jitter = 1e-12 * (trace/float64(k) + 1e-300)
		} else {
			jitter *= 100
		}
	}
	return nil, errors.New("core: Cholesky failed even with jitter")
}

// cholesky returns the lower-triangular L with (G + jitter·I) = L·Lᵀ, or
// ok=false when a pivot is non-positive.
func cholesky(g *mat.Dense, jitter float64) (*mat.Dense, bool) {
	k := g.Rows()
	l := mat.NewDense(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j <= i; j++ {
			s := g.At(i, j)
			if i == j {
				s += jitter
			}
			for m := 0; m < j; m++ {
				s -= l.At(i, m) * l.At(j, m)
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, false
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, true
}

// cholSolve solves L·Lᵀ·x = b by forward and back substitution.
func cholSolve(l *mat.Dense, b []float64) []float64 {
	k := l.Rows()
	y := make([]float64, k)
	for i := 0; i < k; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	x := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < k; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
