package core

import (
	"errors"
	"math"

	"streampca/internal/eig"
	"streampca/internal/mat"
)

// MergeSnapshot combines a peer's eigensystem into this engine's state
// following §II-C. The relative weights are the robust decayed weight sums,
// γ₁ = v₁/(v₁+v₂): the location merges as µ = γ₁µ₁ + γ₂µ₂ and the
// covariance as the exact eq. (15), realized in low-rank form as
//
//	C = γ₁·E₁Λ₁E₁ᵀ + γ₂·E₂Λ₂E₂ᵀ + γ₁γ₂·(µ₁−µ₂)(µ₁−µ₂)ᵀ = A·Aᵀ
//
// (the mean-shift outer products of eq. 15 collapse to the single pooled
// rank-one term). When the means agree to within numerical noise the last
// column vanishes and the update reduces to the fast approximation of
// eq. (16). The stacked A is d×(2k+1) and is decomposed with the same thin
// SVD as the per-tuple update — the "most computation-intensive operation
// of the algorithm" per §III-B.
//
// The running sums add (the criterion of ShouldSync guarantees the two
// histories are statistically independent), the scale merges v-weighted,
// and the engine's since-sync counter resets.
func (en *Engine) MergeSnapshot(o *Eigensystem) error {
	if !en.ready {
		return errors.New("core: cannot merge into an uninitialized engine")
	}
	st := &en.state
	if o.Dim() != st.Dim() {
		return errors.New("core: merge dimension mismatch")
	}
	if o.NumComponents() != st.NumComponents() {
		return errors.New("core: merge component-count mismatch")
	}
	if !o.checkFinite() {
		return errors.New("core: refusing to merge non-finite eigensystem")
	}
	v1, v2 := st.SumV, o.SumV
	if v1+v2 <= 0 {
		return errors.New("core: merge with zero total weight")
	}
	g1 := v1 / (v1 + v2)
	g2 := v2 / (v1 + v2)

	d := st.Dim()
	k := st.NumComponents()
	diff := mat.SubTo(make([]float64, d), st.Mean, o.Mean)

	a := mat.NewDense(d, 2*k+1)
	writeScaledBasis(a, 0, st.Vectors, st.Values, g1)
	writeScaledBasis(a, k, o.Vectors, o.Values, g2)
	sd := math.Sqrt(g1 * g2)
	for i := 0; i < d; i++ {
		a.Set(i, 2*k, sd*diff[i])
	}

	dec, ok := eig.ThinSVD(a)
	if !ok {
		return errors.New("core: merge SVD failed")
	}

	mat.Lerp(st.Mean, g1, st.Mean, g2, o.Mean)
	col := make([]float64, d)
	for j := 0; j < k; j++ {
		st.Values[j] = dec.S[j] * dec.S[j]
		st.Vectors.SetCol(j, dec.U.Col(j, col))
	}
	st.Sigma2 = g1*st.Sigma2 + g2*o.Sigma2
	st.SumU += o.SumU
	st.SumV += o.SumV
	st.SumQ += o.SumQ
	st.Count += o.Count
	en.MarkSynced()
	return nil
}

// MergeApprox is the fast path of eq. (16): it ignores the mean difference
// entirely (A is d×2k). It is what the paper runs "when the eigensystem
// vector locations of the components are close to each other", trading a
// bias of order ‖µ₁−µ₂‖² for one fewer SVD column. Exposed separately so
// the ablation bench can quantify the trade.
func (en *Engine) MergeApprox(o *Eigensystem) error {
	if !en.ready {
		return errors.New("core: cannot merge into an uninitialized engine")
	}
	st := &en.state
	if o.Dim() != st.Dim() || o.NumComponents() != st.NumComponents() {
		return errors.New("core: merge shape mismatch")
	}
	v1, v2 := st.SumV, o.SumV
	if v1+v2 <= 0 {
		return errors.New("core: merge with zero total weight")
	}
	g1 := v1 / (v1 + v2)
	g2 := v2 / (v1 + v2)

	d := st.Dim()
	k := st.NumComponents()
	a := mat.NewDense(d, 2*k)
	writeScaledBasis(a, 0, st.Vectors, st.Values, g1)
	writeScaledBasis(a, k, o.Vectors, o.Values, g2)
	dec, ok := eig.ThinSVD(a)
	if !ok {
		return errors.New("core: merge SVD failed")
	}
	mat.Lerp(st.Mean, g1, st.Mean, g2, o.Mean)
	col := make([]float64, d)
	for j := 0; j < k; j++ {
		st.Values[j] = dec.S[j] * dec.S[j]
		st.Vectors.SetCol(j, dec.U.Col(j, col))
	}
	st.Sigma2 = g1*st.Sigma2 + g2*o.Sigma2
	st.SumU += o.SumU
	st.SumV += o.SumV
	st.SumQ += o.SumQ
	st.Count += o.Count
	en.MarkSynced()
	return nil
}

// MergeMany folds a set of peer snapshots into a single fresh eigensystem
// without touching any engine — the broadcast strategy's reduction. The
// result weights every system by its SumV and applies the exact pooled
// mean-shift correction pairwise left-to-right.
func MergeMany(systems []*Eigensystem) (*Eigensystem, error) {
	if len(systems) == 0 {
		return nil, errors.New("core: MergeMany of nothing")
	}
	acc := systems[0].Clone()
	for _, s := range systems[1:] {
		tmp := &Engine{state: *acc, ready: true, cfg: Config{Dim: acc.Dim()}}
		if err := tmp.MergeSnapshot(s); err != nil {
			return nil, err
		}
		*acc = tmp.state
	}
	return acc, nil
}

// writeScaledBasis writes columns eⱼ·√(g·λⱼ) of (vectors, values) into a
// starting at column offset.
func writeScaledBasis(a *mat.Dense, offset int, vectors *mat.Dense, values []float64, g float64) {
	d := vectors.Rows()
	for j, lj := range values {
		if lj < 0 {
			lj = 0
		}
		s := math.Sqrt(g * lj)
		for i := 0; i < d; i++ {
			a.Set(i, offset+j, s*vectors.At(i, j))
		}
	}
}
