package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"streampca/internal/eig"
)

// feedBlocks drives an engine over xs through ObserveBlock in batches of
// size p, reusing one Update buffer, and returns all updates in order.
func feedBlocks(t *testing.T, en *Engine, xs [][]float64, p int) []Update {
	t.Helper()
	var all []Update
	buf := make([]Update, 0, p)
	for i := 0; i < len(xs); i += p {
		end := i + p
		if end > len(xs) {
			end = len(xs)
		}
		out, err := en.ObserveBlock(xs[i:end], buf[:0])
		if err != nil {
			t.Fatalf("ObserveBlock batch at %d: %v", i, err)
		}
		all = append(all, out...)
	}
	return all
}

// TestObserveBlockMatchesSequential runs the block path against the
// per-observation path over an identical 3000-step stream for batch sizes 1,
// 4, 16 and 64. A batch of one must reduce to the sequential code path
// exactly; larger batches use the chunk-start basis for their projections, so
// the comparison there is a convergence contract: the two engines must track
// the same subspace, spectrum and scale within small tolerances rather than
// bitwise.
func TestObserveBlockMatchesSequential(t *testing.T) {
	const steps = 3000
	d, p := 120, 4
	for _, batch := range []int{1, 4, 16, 64} {
		// Exact for batch 1 (code-path identity); approximate beyond.
		affTol, valTol := 1e-12, 1e-12
		if batch > 1 {
			affTol, valTol = 1e-8, 5e-3
		}
		rng := rand.New(rand.NewPCG(47, 1))
		m := newModel(rng, d, p, []float64{16, 9, 4, 1}, 0.1)
		m.outlier = 0.05
		cfg := Config{Dim: d, Components: p, Alpha: 1 - 1.0/800}

		seq, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		blk, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}

		xs := make([][]float64, steps)
		for i := range xs {
			xs[i], _ = m.sample()
		}
		var seqUpd []Update
		for _, x := range xs {
			u, err := seq.Observe(x)
			if err != nil {
				t.Fatal(err)
			}
			seqUpd = append(seqUpd, u)
		}
		blkUpd := feedBlocks(t, blk, xs, batch)

		if len(blkUpd) != len(seqUpd) {
			t.Fatalf("batch %d: %d updates, want %d", batch, len(blkUpd), len(seqUpd))
		}
		if batch == 1 {
			for i := range seqUpd {
				if seqUpd[i] != blkUpd[i] {
					t.Fatalf("batch 1: update %d diverged: %+v vs %+v", i, blkUpd[i], seqUpd[i])
				}
			}
		}
		if !seq.Ready() || !blk.Ready() {
			t.Fatalf("batch %d: engines not ready", batch)
		}
		ss := seq.Eigensystem()
		sb := blk.Eigensystem()
		if aff := affinity(ss.Vectors, sb.Vectors); aff < 1-affTol {
			t.Fatalf("batch %d: subspaces diverged: affinity %v", batch, aff)
		}
		for j := range ss.Values {
			diff := math.Abs(ss.Values[j] - sb.Values[j])
			if diff > valTol*(1+math.Abs(ss.Values[j])) {
				t.Fatalf("batch %d: eigenvalue %d diverged: %v vs %v", batch, j, sb.Values[j], ss.Values[j])
			}
		}
		if s := math.Abs(ss.Sigma2 - sb.Sigma2); s > valTol*(1+ss.Sigma2) {
			t.Fatalf("batch %d: scales diverged: %v vs %v", batch, sb.Sigma2, ss.Sigma2)
		}
		if sb.Count != ss.Count {
			t.Fatalf("batch %d: counts diverged: %d vs %d", batch, sb.Count, ss.Count)
		}
		// The block rebuild must keep the basis orthonormal on its own.
		if e := eig.OrthonormalityError(sb.Vectors); e > 1e-9 {
			t.Fatalf("batch %d: block rebuild let orthonormality drift: %g", batch, e)
		}
	}
}

// TestObserveBlockSkipsInvalidRows pins the drop semantics: malformed rows
// inside a batch are skipped, the surrounding valid rows are still absorbed,
// and the first error is reported after the whole batch has been processed.
func TestObserveBlockSkipsInvalidRows(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 2))
	d := 40
	m := newModel(rng, d, 2, []float64{9, 1}, 0.1)
	en, err := NewEngine(Config{Dim: d, Components: 2, Alpha: 1 - 1.0/300})
	if err != nil {
		t.Fatal(err)
	}
	warm := m.samples(en.Config().InitSize + 8)
	if _, err := en.ObserveBlock(warm, nil); err != nil {
		t.Fatal(err)
	}
	if !en.Ready() {
		t.Fatal("engine not ready after warm-up")
	}
	before := en.Eigensystem().Count

	batch := m.samples(6)
	batch[1] = batch[1][:d-1] // wrong length
	bad := m.samples(1)[0]
	bad[3] = math.NaN()
	batch[4] = bad
	out, err := en.ObserveBlock(batch, nil)
	if err == nil {
		t.Fatal("expected an error for the malformed rows")
	}
	if len(out) != 4 {
		t.Fatalf("got %d updates, want 4 (two rows skipped)", len(out))
	}
	if got := en.Eigensystem().Count - before; got != 4 {
		t.Fatalf("engine absorbed %d rows, want 4", got)
	}
}

// TestObserveBlockZeroAllocs asserts the steady-state block path is
// allocation free when the caller reuses the Update buffer — the contract the
// batched pipeline transport relies on. The run spans a ReorthEvery boundary.
func TestObserveBlockZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 3))
	m := newModel(rng, 80, 3, []float64{9, 4, 1}, 0.05)
	en, err := NewEngine(Config{Dim: 80, Components: 3, Alpha: 1 - 1.0/500, ReorthEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	warm := m.samples(en.Config().InitSize + 8)
	if _, err := en.ObserveBlock(warm, nil); err != nil {
		t.Fatal(err)
	}
	if !en.Ready() {
		t.Fatal("engine not ready after warm-up")
	}
	const batch = 16
	blocks := make([][][]float64, 8)
	for b := range blocks {
		blocks[b] = m.samples(batch)
	}
	buf := make([]Update, 0, batch)
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		buf, _ = en.ObserveBlock(blocks[i%len(blocks)], buf[:0])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state ObserveBlock allocated %v times per run", allocs)
	}
}
