package core

import (
	"bytes"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"streampca/internal/mat"
)

func trainedEngine(t *testing.T, seed uint64) (*Engine, *model) {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 77))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
	en, err := NewEngine(testConfig(30, 2))
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, en, m, 1500)
	return en, m
}

func TestEigensystemRoundTrip(t *testing.T) {
	en, _ := trainedEngine(t, 700)
	var buf bytes.Buffer
	if err := en.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEigensystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := en.Eigensystem()
	if !mat.EqualApproxVec(got.Mean, want.Mean, 0) ||
		!mat.EqualApproxVec(got.Values, want.Values, 0) ||
		!got.Vectors.EqualApprox(want.Vectors, 0) ||
		got.Sigma2 != want.Sigma2 || got.SumU != want.SumU ||
		got.SumV != want.SumV || got.SumQ != want.SumQ ||
		got.Count != want.Count {
		t.Fatal("round trip lost state")
	}
}

func TestSaveCheckpointBeforeReadyFails(t *testing.T) {
	en, _ := NewEngine(Config{Dim: 5, Components: 1})
	if err := en.SaveCheckpoint(&bytes.Buffer{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestReadEigensystemRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOPE" + strings.Repeat("\x00", 64),
		"truncated": "SPCA\x01\x00\x00",
	}
	for name, in := range cases {
		if _, err := ReadEigensystem(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReadEigensystemRejectsBadVersionAndShape(t *testing.T) {
	en, _ := trainedEngine(t, 701)
	var buf bytes.Buffer
	if err := en.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Corrupt the version field (offset 4).
	bad := append([]byte(nil), raw...)
	bad[4] = 99
	if _, err := ReadEigensystem(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}

	// Corrupt the dimension field to an absurd value (offset 8).
	bad = append([]byte(nil), raw...)
	bad[8], bad[9], bad[10], bad[11] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadEigensystem(bytes.NewReader(bad)); err == nil {
		t.Fatal("absurd shape accepted")
	}
}

func TestWriteEigensystemRejectsNonFinite(t *testing.T) {
	en, _ := trainedEngine(t, 702)
	es := en.Eigensystem().Clone()
	es.Values[0] = math.NaN()
	if err := WriteEigensystem(&bytes.Buffer{}, es); err == nil {
		t.Fatal("NaN state serialized")
	}
	if err := WriteEigensystem(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("nil eigensystem serialized")
	}
}

func TestResumeEngineContinuesLearning(t *testing.T) {
	en, m := trainedEngine(t, 703)
	var buf bytes.Buffer
	if err := en.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	es, err := ReadEigensystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeEngine(testConfig(30, 2), es)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Ready() {
		t.Fatal("resumed engine not ready")
	}
	if resumed.Count() != en.Count() {
		t.Fatalf("count %d, want %d", resumed.Count(), en.Count())
	}
	// Both engines must process the identical continuation identically.
	cont := m.samples(500)
	for _, x := range cont {
		u1, err1 := en.Observe(x)
		u2, err2 := resumed.Observe(x)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Abs(u1.Weight-u2.Weight) > 1e-12 || math.Abs(u1.Residual2-u2.Residual2) > 1e-9 {
			t.Fatal("resumed engine diverges from original")
		}
	}
	if aff := resumed.Eigensystem().SubspaceAffinity(m.basis); aff < 0.95 {
		t.Fatalf("resumed affinity = %v", aff)
	}
}

func TestResumeEngineValidation(t *testing.T) {
	en, _ := trainedEngine(t, 704)
	es := en.Eigensystem().Clone()

	if _, err := ResumeEngine(testConfig(30, 2), nil); err == nil {
		t.Fatal("nil eigensystem accepted")
	}
	if _, err := ResumeEngine(testConfig(31, 2), es); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := ResumeEngine(testConfig(30, 3), es); err == nil {
		t.Fatal("component mismatch accepted")
	}
	bad := es.Clone()
	bad.Sigma2 = math.Inf(1)
	if _, err := ResumeEngine(testConfig(30, 2), bad); err == nil {
		t.Fatal("non-finite state accepted")
	}
	cfg := testConfig(30, 2)
	cfg.Dim = -1
	if _, err := ResumeEngine(cfg, es); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestResumeWithRetunedParameters(t *testing.T) {
	// Resuming under a different forgetting factor is a supported retune.
	en, m := trainedEngine(t, 705)
	es := en.Eigensystem().Clone()
	cfg := Config{Dim: 30, Components: 2, Alpha: 1 - 1.0/100} // shorter window
	resumed, err := ResumeEngine(cfg, es)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, resumed, m, 500)
	if aff := resumed.Eigensystem().SubspaceAffinity(m.basis); aff < 0.9 {
		t.Fatalf("retuned resume degraded: %v", aff)
	}
}
