package core

import (
	"errors"
	"math"

	"streampca/internal/mat"
	"streampca/internal/robust"
)

// BatchResult is the outcome of an offline PCA: the baselines the streaming
// estimator is compared against in the experiments.
type BatchResult struct {
	// Mean is the (possibly weighted) location estimate.
	Mean []float64
	// Vectors holds eigenvectors as columns (d×p).
	Vectors *mat.Dense
	// Values holds the corresponding sample-covariance eigenvalues
	// (descending). Note these are in plain variance units, unlike the
	// streaming engine's weighted-covariance units.
	Values []float64
	// Sigma2 is the residual scale: mean squared residual for BatchPCA,
	// M-scale for BatchRobustPCA.
	Sigma2 float64
	// Iterations is the number of reweighting passes BatchRobustPCA ran
	// (1 for BatchPCA).
	Iterations int
}

// BatchPCA computes classical offline PCA with p components: sample mean,
// sample covariance eigensystem via SVD of the centered data matrix. It is
// the paper's classical baseline.
func BatchPCA(xs [][]float64, p int) (*BatchResult, error) {
	n := len(xs)
	if n < 2 {
		return nil, errors.New("core: BatchPCA needs at least 2 observations")
	}
	d := len(xs[0])
	if p <= 0 || p > d || p > n {
		return nil, errors.New("core: BatchPCA invalid component count")
	}
	mu := make([]float64, d)
	for _, x := range xs {
		if len(x) != d {
			return nil, errors.New("core: BatchPCA ragged input")
		}
		mat.Axpy(1, x, mu)
	}
	mat.Scale(1/float64(n), mu)

	basis, svals, err := leftSingular(xs, mu, p)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, p)
	for j := 0; j < p; j++ {
		vals[j] = svals[j] * svals[j] / float64(n)
	}
	// Residual scale against the p-dimensional fit.
	var sumR2 float64
	y := make([]float64, d)
	coef := make([]float64, p)
	for _, x := range xs {
		mat.SubTo(y, x, mu)
		mat.MulVecT(coef, basis, y)
		r2 := mat.Dot(y, y) - mat.Dot(coef, coef)
		if r2 > 0 {
			sumR2 += r2
		}
	}
	return &BatchResult{
		Mean: mu, Vectors: basis, Values: vals,
		Sigma2: sumR2 / float64(n), Iterations: 1,
	}, nil
}

// BatchRobustPCA computes the offline robust PCA of Maronna (2005) by
// alternating: (1) residuals against the current p-dimensional hyperplane,
// (2) M-scale σ² of the residuals, (3) weights wᵢ = W(rᵢ²/σ²), (4) weighted
// mean and weighted covariance eigensystem (eqs. 6–7). Iterates until the
// subspace and scale stabilize or maxIter passes. It is both the reference
// the streaming robust estimator should converge to and the offline
// comparator for the experiments.
func BatchRobustPCA(xs [][]float64, p int, rho robust.Rho, delta float64, maxIter int) (*BatchResult, error) {
	fit, err := robustFit(xs, p, p, rho, delta, maxIter)
	if err != nil {
		return nil, err
	}
	return &BatchResult{
		Mean: fit.mean, Vectors: fit.basis, Values: fit.vals,
		Sigma2: fit.sigma2, Iterations: fit.iters,
	}, nil
}

// robustFitResult carries everything the engine's warm-up needs to seed its
// state from a Maronna fit: k-component basis, eigenvalues in the weighted-
// covariance units of eq. (7), and the final mean weight statistics that
// initialize the running sums v and q.
type robustFitResult struct {
	mean    []float64
	basis   *mat.Dense // d×k
	vals    []float64  // length k, σ²·s²/Σ(w·r²) units
	sigma2  float64
	meanW   float64 // (1/n)·Σ wᵢ at the solution
	meanWR2 float64 // (1/n)·Σ wᵢ·rᵢ² at the solution
	iters   int
}

// robustFit runs the Maronna alternation maintaining k ≥ p components while
// weighting residuals against the first p only.
func robustFit(xs [][]float64, p, k int, rho robust.Rho, delta float64, maxIter int) (*robustFitResult, error) {
	n := len(xs)
	if n < 2 {
		return nil, errors.New("core: robust fit needs at least 2 observations")
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	if k < p {
		k = p
	}
	start, err := BatchPCA(xs, k)
	if err != nil {
		return nil, err
	}
	d := len(xs[0])
	mu := start.Mean
	basis := start.Vectors
	vals := start.Values
	sigma2 := 0.0

	// Per-iteration buffers, hoisted: coefficient vector, the double-buffered
	// weighted mean (mu and muBuf swap roles each pass so the new mean is
	// never written into the array residuals were taken against), and the
	// backing rows of the scaled data matrix.
	r2 := make([]float64, n)
	w := make([]float64, n)
	y := make([]float64, d)
	coef := make([]float64, k)
	muBuf := make([]float64, d)
	rowBuf := make([]float64, n*d)
	scaled := make([][]float64, 0, n)
	iter := 0
	for ; iter < maxIter; iter++ {
		// Residuals against the current p-dimensional hyperplane (the extra
		// k−p components are carried along but do not affect the weights).
		for i, x := range xs {
			mat.SubTo(y, x, mu)
			mat.MulVecT(coef, basis, y)
			ri := mat.Dot(y, y)
			for j := 0; j < p; j++ {
				ri -= coef[j] * coef[j]
			}
			if ri < 0 {
				ri = 0
			}
			r2[i] = ri
		}
		s2, errS := robust.MScale(rho, r2, delta, sigma2)
		if errS != nil {
			return nil, errS
		}
		prevSigma2 := sigma2
		sigma2 = s2
		robust.Weights(rho, r2, sigma2, w)

		// Weighted mean (eq. 6).
		var wsum float64
		for i := range w {
			wsum += w[i]
		}
		if wsum <= 0 {
			return nil, errors.New("core: all observations rejected; increase delta or cutoff")
		}
		for i := range muBuf {
			muBuf[i] = 0
		}
		for i, x := range xs {
			if w[i] != 0 {
				mat.Axpy(w[i], x, muBuf)
			}
		}
		mat.Scale(1/wsum, muBuf)
		mu, muBuf = muBuf, mu

		// Weighted covariance eigensystem (eq. 7) via the scaled data
		// matrix: C = σ²·Yw·Ywᵀ/Σ(w·r²) with Yw columns √wᵢ·(xᵢ−µ).
		var qsum float64
		for i := range w {
			qsum += w[i] * r2[i]
		}
		if qsum <= 0 {
			qsum = wsum * sigma2
		}
		scaled = scaled[:0]
		for i, x := range xs {
			if w[i] == 0 {
				continue
			}
			row := rowBuf[len(scaled)*d : (len(scaled)+1)*d]
			mat.SubTo(row, x, mu)
			mat.Scale(math.Sqrt(w[i]), row)
			mat.Axpy(1, mu, row) // leftSingular re-centers on the mean we pass
			scaled = append(scaled, row)
		}
		// Decompose around mu with zero-centering trick: pass mean = mu so
		// rows become √w·(x−µ) again.
		basisNew, svals, errB := leftSingular(scaled, mu, k)
		if errB != nil {
			return nil, errB
		}
		for j := 0; j < k && j < len(svals); j++ {
			vals[j] = sigma2 * svals[j] * svals[j] / qsum
		}
		// Convergence: subspace rotation and scale change both small.
		aff := affinity(basis, basisNew)
		basis = basisNew
		if iter > 0 && math.Abs(sigma2-prevSigma2) <= 1e-10*sigma2 && aff > 1-1e-10 {
			iter++
			break
		}
	}
	var wsum, wr2sum float64
	for i := range w {
		wsum += w[i]
		wr2sum += w[i] * r2[i]
	}
	return &robustFitResult{
		mean: mu, basis: basis, vals: vals, sigma2: sigma2,
		meanW: wsum / float64(n), meanWR2: wr2sum / float64(n),
		iters: iter,
	}, nil
}

// affinity returns the mean squared cosine between the column spaces of two
// orthonormal bases with equal shape.
func affinity(a, b *mat.Dense) float64 {
	g := mat.MulTA(nil, a, b)
	f := g.FrobeniusNorm()
	return f * f / float64(a.Cols())
}
