package core

import (
	"errors"

	"streampca/internal/mat"
	"streampca/internal/robust"
)

// RobustEigenvalues computes a robust variance estimate along each column
// of basis, per the last paragraph of §II-B: the data are centered on mean,
// projected onto each basis vector, and the M-scale of the squared
// projections solves the same equation as eq. (5) with residuals replaced
// by projected values. The result is a robust estimate of λₖ for *any*
// basis — which is what makes performance comparisons between different
// bases meaningful.
func RobustEigenvalues(basis *mat.Dense, mean []float64, xs [][]float64, rho robust.Rho, delta float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, errors.New("core: RobustEigenvalues needs data")
	}
	d, k := basis.Dims()
	if len(mean) != d {
		return nil, errors.New("core: mean length mismatch")
	}
	proj2 := make([]float64, len(xs))
	col := make([]float64, d)
	y := make([]float64, d)
	out := make([]float64, k)
	for j := 0; j < k; j++ {
		basis.Col(j, col)
		for i, x := range xs {
			if len(x) != d {
				return nil, errors.New("core: observation length mismatch")
			}
			mat.SubTo(y, x, mean)
			p := mat.Dot(col, y)
			proj2[i] = p * p
		}
		s2, err := robust.MScale(rho, proj2, delta, 0)
		if err != nil {
			return nil, err
		}
		out[j] = s2
	}
	return out, nil
}
