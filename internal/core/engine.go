package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"streampca/internal/eig"
	"streampca/internal/mat"
	"streampca/internal/obs"
	"streampca/internal/robust"
)

// Update reports what a single Observe call did to the engine state.
type Update struct {
	// Seq is the 1-based index of this observation within the engine.
	Seq int64
	// Weight is the robust observation weight w = W(r²/σ²); 0 means the
	// vector was fully rejected as an outlier.
	Weight float64
	// Residual2 is the squared fit residual r² against the first p
	// components (eq. 4).
	Residual2 float64
	// T is the squared standardized residual r²/σ² the weight was computed
	// from.
	T float64
	// Sigma2 is the M-scale after this update.
	Sigma2 float64
	// Outlier is true when T exceeded Config.OutlierT.
	Outlier bool
	// Warmup is true while the observation was only buffered (eigensystem
	// not yet initialized).
	Warmup bool
	// Initialized is true on the exact call that triggered warm-up
	// completion.
	Initialized bool
	// Patched is the number of missing entries filled in (masked input
	// only).
	Patched int
}

// Engine is a streaming robust PCA estimator. It is not safe for concurrent
// use; the pipeline layer gives each engine its own goroutine, matching the
// paper's stateful single-threaded InfoSphere operator.
type Engine struct {
	cfg Config
	k   int // p+q maintained components

	state     Eigensystem
	minSigma2 float64
	ready     bool

	warmup [][]float64
	// warmupMasks[i] is non-nil when warmup[i] arrived gappy; its masked
	// entries hold provisional bin-mean fills that initialize() refines by
	// iterative re-patching (Yip et al.'s scheme on the buffer).
	warmupMasks [][]bool
	// per-bin running sums for warm-up gap filling (lazily allocated)
	binSum, binCount []float64

	sinceSync    int64
	updatesSince int // updates since last re-orthonormalization

	// disableWarmupRefine is a test hook for A/B-ing the gappy warm-up
	// refinement.
	disableWarmupRefine bool
	// useSVDRebuild routes the eigensystem update through the explicit
	// thin-SVD reference instead of the structured fast path (test hook).
	useSVDRebuild bool

	// time-based window state (Config.TimeWindow)
	lastObserved time.Time
	pendingAlpha float64 // one-shot alpha override for the masked time path

	// scale-collapse rescue state (see Config.RescueStreak)
	zeroStreak int
	rejectedR2 []float64 // ring buffer of recent rejected residuals
	rejectedAt int
	rescues    int64

	// ws owns every scratch buffer of the steady-state Observe path; see
	// workspace for the aliasing rules.
	ws *workspace

	// pool runs the d-proportional kernels (fused center/project, rank-c
	// panels, basis updates), dispatching across its parked workers when the
	// calibrated crossover says the handoff pays; blockC is the rank-c chunk
	// width ObserveBlock folds at (Config.BlockSize, or the mat.BlockSize
	// cost-model pick). Results are bitwise independent of both knobs.
	pool   *mat.Pool
	blockC int

	// inst, when non-nil (SetInstruments), receives algorithm-level gauges
	// after every update plus control-plane journal events. All record paths
	// are atomic stores, so publishing keeps the hot path allocation free.
	inst *obs.EngineInstruments
}

// NewEngine validates cfg and returns a ready-to-feed engine.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := cfg.Components + cfg.Extra
	blockC := cfg.BlockSize
	if blockC <= 0 {
		blockC = mat.BlockSize(cfg.Dim, k, blockMax)
	}
	pool := mat.NewPool(cfg.Workers)
	pool.Reserve(k + blockC)
	return &Engine{
		cfg:    cfg,
		k:      k,
		warmup: make([][]float64, 0, cfg.InitSize),
		ws:     newWorkspace(cfg.Dim, k, blockC),
		pool:   pool,
		blockC: blockC,
	}, nil
}

// Close parks the engine permanently: it releases the kernel worker pool's
// goroutines (a no-op for Workers ≤ 1). The engine remains usable afterwards
// — every kernel degrades to its serial twin with identical results — so
// Close is about resource hygiene, not correctness. Safe on nil and safe to
// call twice.
func (en *Engine) Close() {
	if en == nil {
		return
	}
	en.pool.Close()
}

// Config returns the validated configuration the engine runs with.
func (en *Engine) Config() Config { return en.cfg }

// SetInstruments attaches (or, with nil, detaches) an observability bundle:
// every subsequent update publishes σ², the leading eigenvalues and
// eigengap, the effective sample size, the since-sync count and outlier
// tallies, and warm-up/rescue/rebuild transitions are journaled.
func (en *Engine) SetInstruments(inst *obs.EngineInstruments) { en.inst = inst }

// publish pushes the per-update gauges to the attached instruments; w and
// outlier describe the observation just absorbed.
//
//streampca:noalloc
func (en *Engine) publish(sigma2, effN, w float64, outlier bool) {
	inst := en.inst
	if inst == nil {
		return
	}
	inst.Sigma2.Set(sigma2)
	inst.EffN.Set(effN)
	inst.SinceSync.Set(float64(en.sinceSync))
	inst.LastWeight.Set(w)
	inst.Observations.Inc()
	if outlier {
		inst.Outliers.Inc()
	}
	inst.RecordEigen(en.state.Values, en.cfg.Components)
}

// Ready reports whether warm-up has completed and the eigensystem exists.
func (en *Engine) Ready() bool { return en.ready }

// Count returns the number of observations absorbed (including warm-up).
func (en *Engine) Count() int64 {
	if !en.ready {
		return int64(len(en.warmup))
	}
	return en.state.Count
}

// SinceSync returns the number of observations absorbed since the last
// synchronization (or since initialization). The parallel criterion of
// §II-C allows a merge only once this exceeds 1.5·N.
func (en *Engine) SinceSync() int64 { return en.sinceSync }

// Snapshot returns a deep copy of the current eigensystem, or an error when
// warm-up has not completed.
func (en *Engine) Snapshot() (*Eigensystem, error) {
	if !en.ready {
		return nil, errors.New("core: engine not initialized yet")
	}
	return en.state.Clone(), nil
}

// Eigensystem returns the live (shared, not copied) state for read-only
// inspection; it panics when warm-up has not completed.
func (en *Engine) Eigensystem() *Eigensystem {
	if !en.ready {
		panic("core: engine not initialized yet")
	}
	return &en.state
}

// errNonFinite is the shared rejection for complete-vector entry points fed
// NaN or Inf entries.
var errNonFinite = errors.New("core: observation contains non-finite values; use ObserveMasked")

// validateObservation checks that x is a complete observation of the right
// length with only finite entries — the admission contract of Observe and
// ObserveBlock. It allocates only on the error path.
func validateObservation(x []float64, dim int) error {
	if len(x) != dim {
		return fmt.Errorf("core: observation length %d, want %d", len(x), dim)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errNonFinite
		}
	}
	return nil
}

// Observe absorbs one complete observation vector and returns the update
// report. The vector must have length Config.Dim and contain only finite
// values; use ObserveMasked (or ObserveAuto) for gappy data.
//
//streampca:noalloc
func (en *Engine) Observe(x []float64) (Update, error) {
	if err := validateObservation(x, en.cfg.Dim); err != nil {
		return Update{}, err
	}
	if !en.ready {
		return en.bufferWarmup(x)
	}
	return en.update(x), nil
}

// ObserveAuto routes complete vectors to Observe and vectors containing NaN
// entries to ObserveMasked with the NaN positions treated as gaps.
func (en *Engine) ObserveAuto(x []float64) (Update, error) {
	hasGap := false
	for _, v := range x {
		if math.IsNaN(v) {
			hasGap = true
			break
		}
	}
	if !hasGap {
		return en.Observe(x)
	}
	mask := make([]bool, len(x))
	for i, v := range x {
		mask[i] = !math.IsNaN(v)
	}
	return en.ObserveMasked(x, mask)
}

func (en *Engine) bufferWarmup(x []float64) (Update, error) {
	return en.bufferWarmupMasked(x, nil)
}

func (en *Engine) bufferWarmupMasked(x []float64, mask []bool) (Update, error) {
	en.warmup = append(en.warmup, mat.CopyVec(x))
	if mask != nil {
		m := make([]bool, len(mask))
		copy(m, mask)
		mask = m
	}
	en.warmupMasks = append(en.warmupMasks, mask)
	seq := int64(len(en.warmup))
	if len(en.warmup) < en.cfg.InitSize {
		return Update{Seq: seq, Warmup: true, Weight: 1}, nil
	}
	if err := en.initialize(); err != nil {
		// Drop the oldest half of the buffer and keep collecting; a fully
		// degenerate buffer (all-identical vectors) cannot seed a basis.
		en.warmup = en.warmup[len(en.warmup)/2:]
		en.warmupMasks = en.warmupMasks[len(en.warmupMasks)/2:]
		return Update{Seq: seq, Warmup: true, Weight: 1}, err
	}
	return Update{Seq: seq, Warmup: true, Initialized: true, Weight: 1, Sigma2: en.state.Sigma2}, nil
}

// initialize seeds the eigensystem from the warm-up buffer, then replays
// nothing: the buffered vectors count as absorbed history through the
// running sums. The seed is the offline Maronna fit so that outliers in the
// warm-up buffer cannot poison the initial basis or inflate the initial
// eigenvalues ("the iteration starts from a non-robust set of eigenspectra"
// is the paper's failure mode; a robust start removes the transient). When
// the robust fit fails (degenerate buffer) a classic decomposition is
// attempted as a fallback.
func (en *Engine) initialize() error {
	n0 := len(en.warmup)
	alpha := en.cfg.Alpha
	u := 0.0
	for i := 0; i < n0; i++ {
		u = alpha*u + 1
	}

	// Gappy warm-up vectors carry provisional bin-mean fills; refine them
	// by iterating fit → re-patch → fit on the buffer until the basis
	// stabilizes — the batch scheme of Yip et al. that §II-D cites,
	// applied only to the small warm-up set. Without this, a systematic
	// gap pattern (e.g. every red end missing) can seed a basis whose
	// self-patched reconstructions confirm it forever.
	en.refineGappyWarmup()

	// Pre-filter gross outliers by robust distance from the coordinatewise
	// median. Maronna weighting alone cannot reject an outlier that made
	// it *into* the warm-up basis (its residual is then ≈ 0 and it keeps
	// full weight), which is the standard breakdown mode of residual-based
	// robust PCA when the buffer is barely larger than the rank.
	seedData := filterGrossOutliers(en.warmup, en.cfg.Rho, en.cfg.Delta, en.cfg.OutlierT, en.k)
	if en.inst != nil && len(seedData) < len(en.warmup) {
		en.inst.RecordGrossOutliers(int64(len(en.warmup)-len(seedData)), len(en.warmup))
	}

	fit, err := robustFit(seedData, en.cfg.Components, en.k, en.cfg.Rho, en.cfg.Delta, 25)
	if err == nil && fit.sigma2 > 0 && fit.meanW > 0 {
		// Small-sample bias correction: residuals against a basis fitted
		// from the same n0 points underestimate the true scale.
		if p := en.cfg.Components; n0 > p+1 {
			fit.sigma2 *= float64(n0) / float64(n0-p)
		}
		en.minSigma2 = 1e-12*fit.sigma2 + math.SmallestNonzeroFloat64
		meanWR2 := fit.meanWR2
		if meanWR2 <= 0 {
			meanWR2 = fit.sigma2
		}
		// Re-estimate the seed eigenvalues robustly (§II-B: "robust
		// eigenvalues can be computed for any basis"): the M-scale of the
		// per-direction projections ignores outliers that survived into
		// the warm-up basis, so a contaminated direction starts with a
		// *small* eigenvalue and is rotated out by the first fresh data
		// instead of dominating the system for N·ln(λ_bad/λ_true)
		// observations.
		if lam, lerr := RobustEigenvalues(fit.basis, fit.mean, en.warmup, en.cfg.Rho, en.cfg.Delta); lerr == nil {
			scale := fit.sigma2 * fit.meanW / meanWR2
			for j := range fit.vals {
				fit.vals[j] = lam[j] * scale
			}
			sortEigensystem(fit.basis, fit.vals)
		}
		en.state = Eigensystem{
			Mean:    fit.mean,
			Vectors: fit.basis,
			Values:  fit.vals,
			Sigma2:  fit.sigma2,
			SumU:    u,
			SumV:    u * fit.meanW,
			SumQ:    u * meanWR2,
			Count:   int64(n0),
		}
		en.sinceSync = int64(n0)
		en.ready = true
		en.warmup = nil
		if en.inst != nil {
			en.inst.RecordInit(int64(n0), en.state.Sigma2)
		}
		return nil
	}
	return en.classicInitialize(u)
}

// classicInitialize is the non-robust warm-up fallback: plain SVD of the
// centered buffer with unit weights.
func (en *Engine) classicInitialize(u float64) error {
	n0 := len(en.warmup)
	d := en.cfg.Dim
	mu := make([]float64, d)
	for _, x := range en.warmup {
		mat.Axpy(1, x, mu)
	}
	mat.Scale(1/float64(n0), mu)

	// Centered data as a d×n0 (or transposed) matrix; take the top-k left
	// singular vectors in R^d.
	basis, svals, err := leftSingular(en.warmup, mu, en.k)
	if err != nil {
		return err
	}

	// Residuals against the first p components seed the M-scale.
	p := en.cfg.Components
	r2 := make([]float64, n0)
	var sumR2, sumY2 float64
	y := make([]float64, d)
	coef := make([]float64, en.k)
	for i, x := range en.warmup {
		mat.SubTo(y, x, mu)
		mat.MulVecT(coef, basis, y)
		t := mat.Dot(y, y)
		sumY2 += t
		for j := 0; j < p; j++ {
			t -= coef[j] * coef[j]
		}
		if t < 0 {
			t = 0
		}
		r2[i] = t
		sumR2 += t
	}
	sigma2, errS := robust.MScale(en.cfg.Rho, r2, en.cfg.Delta, 0)
	if errS != nil || sigma2 <= 0 {
		// Noise-free warm-up data: fall back to a small fraction of the
		// total variance so standardized residuals stay finite.
		sigma2 = 1e-9 * sumY2 / float64(n0)
		if sigma2 <= 0 {
			return errors.New("core: degenerate warm-up buffer (zero variance)")
		}
	}
	en.minSigma2 = 1e-12*sigma2 + math.SmallestNonzeroFloat64

	// Eigenvalues in the units of the weighted covariance of eq. (7):
	// C = σ²·Σyyᵀ/Σ(w·r²) with unit warm-up weights.
	if sumR2 <= 0 {
		sumR2 = float64(n0) * sigma2
	}
	vals := make([]float64, en.k)
	for j := 0; j < en.k && j < len(svals); j++ {
		vals[j] = sigma2 * svals[j] * svals[j] / sumR2
	}

	// The α-decayed running sums treat the buffer as streamed with w=1.
	meanR2 := sumR2 / float64(n0)

	en.state = Eigensystem{
		Mean:    mu,
		Vectors: basis,
		Values:  vals,
		Sigma2:  sigma2,
		SumU:    u,
		SumV:    u,
		SumQ:    u * meanR2,
		Count:   int64(n0),
	}
	en.sinceSync = int64(n0)
	en.ready = true
	en.warmup = nil
	if en.inst != nil {
		en.inst.RecordInit(int64(n0), en.state.Sigma2)
	}
	return nil
}

// leftSingular returns the top-k left singular vectors (as columns of a
// d×k matrix) and all singular values of the centered data matrix whose
// columns are xs[i]−mu.
func leftSingular(xs [][]float64, mu []float64, k int) (*mat.Dense, []float64, error) {
	n := len(xs)
	d := len(mu)
	if n >= d {
		// Tall n×d matrix: rows are centered observations; left singular
		// vectors of the d×n transpose are its right singular vectors.
		m := mat.NewDense(n, d)
		for i, x := range xs {
			mat.SubTo(m.Row(i), x, mu)
		}
		dec, ok := eig.ThinSVD(m)
		if !ok {
			return nil, nil, errors.New("core: warm-up SVD failed")
		}
		return dec.V.SliceCols(0, k), dec.S, nil
	}
	// d×n tall matrix: columns are centered observations.
	m := mat.NewDense(d, n)
	y := make([]float64, d)
	for i, x := range xs {
		mat.SubTo(y, x, mu)
		m.SetCol(i, y)
	}
	dec, ok := eig.ThinSVD(m)
	if !ok {
		return nil, nil, errors.New("core: warm-up SVD failed")
	}
	if k > n {
		return nil, nil, fmt.Errorf("core: warm-up buffer rank %d below k=%d", n, k)
	}
	return dec.U.SliceCols(0, k), dec.S, nil
}

// update runs the robust incremental step of §II on a complete (possibly
// patched) vector with the configured per-observation damping.
//
//streampca:noalloc
func (en *Engine) update(x []float64) Update {
	alpha := en.cfg.Alpha
	if en.pendingAlpha > 0 {
		alpha = en.pendingAlpha
	}
	return en.updateAlpha(x, alpha)
}

// updateAlpha is update with an explicit one-step decay factor, the hook
// for time-based windows.
//
//streampca:noalloc
func (en *Engine) updateAlpha(x []float64, alpha float64) Update {
	st := &en.state
	cfg := &en.cfg
	p := cfg.Components
	ws := en.ws

	// Residual against the previous eigensystem (eq. 4), fused into one
	// pass: centering, the k projection coefficients Eᵀy and ‖y‖² all come
	// from a single streaming read of x, µ and the contiguous rows of E —
	// one memory sweep instead of the three separate SubTo/MulVecT/Dot
	// kernels, which is what the per-observation cost is made of at large d.
	// The pooled kernel splits that sweep across workers above the crossover;
	// its fixed-panel reduction order makes the result identical either way.
	coef := ws.coef
	ny2 := en.pool.CenterProject(ws.y, coef, x, st.Mean, st.Vectors, ws.cpPart)
	ws.ny2 = ny2
	r2 := ny2
	for j := 0; j < p; j++ {
		r2 -= coef[j] * coef[j]
	}
	if r2 < 0 {
		r2 = 0
	}

	sigma2 := st.Sigma2
	if sigma2 < en.minSigma2 {
		sigma2 = en.minSigma2
	}
	t := r2 / sigma2
	w := cfg.Rho.W(t)
	wstar := cfg.Rho.WStar(t)

	// Scale recursion (eqs. 11, 14).
	uNew := alpha*st.SumU + 1
	gamma3 := alpha * st.SumU / uNew
	sigma2New := gamma3*st.Sigma2 + (1-gamma3)*wstar*r2/cfg.Delta
	if sigma2New < en.minSigma2 {
		sigma2New = en.minSigma2
	}
	// Scale-collapse rescue: a long unbroken run of fully rejected
	// observations means σ² is stuck far below the stream's residual
	// scale; jump it to the median rejected residual so learning resumes.
	if w == 0 && cfg.RescueStreak > 0 {
		//streamvet:ignore noalloc inlined recordRejected lazily allocates its ring buffer once, on the first rejected row
		en.recordRejected(r2)
		en.zeroStreak++
		if en.zeroStreak >= cfg.RescueStreak {
			if med := en.rejectedMedian(); med > sigma2New {
				if en.inst != nil {
					en.inst.RecordRescue(med, sigma2New)
				}
				sigma2New = med
				en.rescues++
			}
			en.zeroStreak = 0
		}
	} else if w > 0 {
		en.zeroStreak = 0
	}

	// Location recursion (eqs. 9, 12).
	vNew := alpha*st.SumV + w
	if vNew > 0 {
		gamma1 := alpha * st.SumV / vNew
		mat.Lerp(st.Mean, gamma1, st.Mean, 1-gamma1, x)
	}

	// Covariance recursion (eqs. 10, 13) in low-rank form (eqs. 1–3):
	// C ≈ γ2·E·Λ·Eᵀ + (σ²·w/qNew)·y·yᵀ = A·Aᵀ.
	qNew := alpha*st.SumQ + w*r2
	if qNew > 0 && w > 0 {
		gamma2 := alpha * st.SumQ / qNew
		en.rebuildEigensystem(gamma2, sigma2New*w/qNew)
	}

	st.Sigma2 = sigma2New
	st.SumU = uNew
	st.SumV = vNew
	if qNew > 0 {
		st.SumQ = qNew
	}
	st.Count++
	en.sinceSync++
	en.updatesSince++
	if cfg.ReorthEvery > 0 && en.updatesSince >= cfg.ReorthEvery {
		eig.OrthonormalizeWS(st.Vectors, ws.orth)
		en.updatesSince = 0
	}

	en.publish(sigma2New, uNew, w, t > cfg.OutlierT)
	return Update{
		Seq:       st.Count,
		Weight:    w,
		Residual2: r2,
		T:         t,
		Sigma2:    sigma2New,
		Outlier:   t > cfg.OutlierT,
	}
}

// rebuildEigensystem performs the rank-one eigensystem update of eqs. 1–3:
// conceptually it decomposes the d×(k+1) matrix A with columns eⱼ·√(γ2·λⱼ)
// and y·√(yCoef) and installs the top-k left singular system (E = U,
// Λ = S²). ws.y and ws.coef must already hold the centered vector and its
// projections from updateAlpha's fused pass.
//
// The fast path never materializes A. Writing A = [E·D | √yCoef·y] with
// D = diag(√(γ2·λⱼ)) and using EᵀE = I (maintained by construction and by
// the periodic re-orthonormalization), the Gram matrix of the thin-SVD
// route is known analytically:
//
//	AᵀA = ⎡ D²            D·(√yCoef·Eᵀy) ⎤
//	      ⎣ (√yCoef·Eᵀy)ᵀ·D   yCoef·‖y‖² ⎦
//
// and Eᵀy is exactly ws.coef, ‖y‖² exactly ws.ny2 — both already paid for.
// The (k+1)×(k+1) eigenproblem gives Λ directly, and the new basis is one
// fused row-wise pass E ← E·Mᵀ + y·wᵀ with M the k×k map V·S⁻¹ restricted
// to the top-k columns. Per observation this removes two O(d·k²) kernels
// (the explicit Gram accumulation and the A·V product) plus all A traffic;
// only the O(d·k) basis pass remains. rebuildEigensystemSVD keeps the
// explicit route for verification.
//
//streampca:noalloc
func (en *Engine) rebuildEigensystem(gamma2, yCoef float64) {
	if en.useSVDRebuild {
		en.rebuildEigensystemSVD(gamma2, yCoef)
		return
	}
	st := &en.state
	d := en.cfg.Dim
	k := en.k
	ws := en.ws
	scale := ws.scale
	for j := 0; j < k; j++ {
		lj := st.Values[j]
		if lj < 0 {
			lj = 0
		}
		scale[j] = math.Sqrt(gamma2 * lj)
	}
	if yCoef < 0 {
		yCoef = 0
	}
	sy := math.Sqrt(yCoef)
	kc := k + 1
	gd := ws.gram.Data()
	for i := range gd {
		gd[i] = 0
	}
	for j := 0; j < k; j++ {
		gd[j*kc+j] = scale[j] * scale[j]
		c := scale[j] * sy * ws.coef[j]
		gd[j*kc+k] = c
		gd[k*kc+j] = c
	}
	gd[k*kc+k] = yCoef * ws.ny2
	lam, v, ok := eig.JacobiSym(ws.gram, ws.sym)
	if !ok {
		// Keep the previous eigensystem; the decayed sums still advance so
		// a single pathological vector cannot wedge the stream.
		return
	}
	if en.inst != nil {
		en.inst.RecordRebuild(obs.RebuildRankOne)
	}
	// Λ = S² with the same numerical-null threshold as the thin-SVD route.
	smax := 0.0
	if lam[0] > 0 {
		smax = math.Sqrt(lam[0])
	}
	tol := 1e-13 * smax * math.Sqrt(float64(d))
	tol2 := tol * tol
	null := 0
	for j := 0; j < k; j++ {
		if lam[j] > tol2 && lam[j] > 0 {
			st.Values[j] = lam[j]
			ws.invs[j] = 1 / math.Sqrt(lam[j])
		} else {
			st.Values[j] = 0
			ws.invs[j] = 0 // zeroes the column; rebuilt below
			null++
		}
	}
	// Mᵀ[j][l] = scale_l·V[l][j]/s_j and w[j] = √yCoef·V[k][j]/s_j, so the
	// new j-th basis column is Σ_l e_l·Mᵀ[j][l] + y·w[j] — installed with
	// one streaming pass over the contiguous basis rows.
	vdat := v.Data()
	mtd := ws.mt.Data()
	for j := 0; j < k; j++ {
		inv := ws.invs[j]
		row := mtd[j*k : j*k+k]
		for l := 0; l < k; l++ {
			row[l] = scale[l] * vdat[l*kc+j] * inv
		}
		ws.yw[j] = sy * vdat[k*kc+j] * inv
	}
	en.pool.BasisUpdateVec(st.Vectors, ws.mt, ws.y, ws.yw)
	if null > 0 {
		// Degenerate directions (collapsed spectrum) were zeroed; complete
		// them to an orthonormal set like the thin-SVD route does.
		eig.OrthonormalizeWS(st.Vectors, ws.orth)
	}
}

// rebuildEigensystemSVD is the explicit reference route: materialize A,
// run the workspace thin SVD, install U. The structured fast path above is
// property-tested against it; it also serves streams that have disabled
// re-orthonormalization, where the EᵀE = I assumption erodes.
//
//streampca:noalloc
func (en *Engine) rebuildEigensystemSVD(gamma2, yCoef float64) {
	st := &en.state
	d := en.cfg.Dim
	k := en.k
	ws := en.ws
	scale := ws.scale
	for j := 0; j < k; j++ {
		lj := st.Values[j]
		if lj < 0 {
			lj = 0
		}
		scale[j] = math.Sqrt(gamma2 * lj)
	}
	if yCoef < 0 {
		yCoef = 0
	}
	sy := math.Sqrt(yCoef)
	kc := k + 1
	ad := ws.aMat.Data()
	vd := st.Vectors.Data()
	y := ws.y
	for i := 0; i < d; i++ {
		arow := ad[i*kc : i*kc+kc]
		vrow := vd[i*k : i*k+k]
		for j, v := range vrow {
			arow[j] = scale[j] * v
		}
		arow[k] = sy * y[i]
	}
	dec, ok := ws.svd.Decompose(ws.aMat)
	if !ok {
		return
	}
	if en.inst != nil {
		en.inst.RecordRebuild(obs.RebuildSVD)
	}
	for j := 0; j < k; j++ {
		st.Values[j] = dec.S[j] * dec.S[j]
	}
	ud := dec.U.Data()
	for i := 0; i < d; i++ {
		copy(vd[i*k:i*k+k], ud[i*kc:i*kc+k])
	}
}

// refineGappyWarmup iterates robust fit → least-squares re-patch over the
// warm-up buffer until the fitted basis stabilizes (or a few rounds pass),
// replacing the provisional bin-mean fills of gappy buffer entries with
// model-consistent reconstructions. No-op for fully observed buffers.
func (en *Engine) refineGappyWarmup() {
	if en.disableWarmupRefine {
		return
	}
	anyGaps := false
	for _, m := range en.warmupMasks {
		if m != nil {
			anyGaps = true
			break
		}
	}
	if !anyGaps {
		return
	}
	var prevBasis *mat.Dense
	for iter := 0; iter < 3; iter++ {
		fit, err := robustFit(en.warmup, en.cfg.Components, en.k, en.cfg.Rho, en.cfg.Delta, 10)
		if err != nil {
			return
		}
		for i, mask := range en.warmupMasks {
			if mask == nil {
				continue
			}
			patched, _, perr := patchLS(fit.basis, fit.mean, en.warmup[i], mask)
			if perr == nil {
				en.warmup[i] = patched
			}
		}
		if prevBasis != nil && affinity(prevBasis, fit.basis) > 1-1e-6 {
			return
		}
		prevBasis = fit.basis
	}
}

// filterGrossOutliers drops buffer vectors whose squared distance from the
// coordinatewise median, standardized by its M-scale, exceeds outlierT. The
// filter never shrinks the buffer below k+2 vectors (it returns the input
// unchanged instead), so a pathological buffer still seeds something.
func filterGrossOutliers(xs [][]float64, rho robust.Rho, delta, outlierT float64, k int) [][]float64 {
	n := len(xs)
	if n < 4 {
		return xs
	}
	d := len(xs[0])
	med := make([]float64, d)
	col := make([]float64, n)
	for j := 0; j < d; j++ {
		for i, x := range xs {
			col[i] = x[j]
		}
		med[j] = quickselectMedianFloat(col)
	}
	dist2 := make([]float64, n)
	for i, x := range xs {
		var s float64
		for j := 0; j < d; j++ {
			t := x[j] - med[j]
			s += t * t
		}
		dist2[i] = s
	}
	s2, err := robust.MScale(rho, dist2, delta, 0)
	if err != nil || s2 <= 0 {
		return xs
	}
	keep := make([][]float64, 0, n)
	for i, x := range xs {
		if outlierT <= 0 || dist2[i]/s2 <= outlierT {
			keep = append(keep, x)
		}
	}
	if len(keep) < k+2 {
		return xs
	}
	return keep
}

// quickselectMedianFloat returns the lower median, mutating its argument.
func quickselectMedianFloat(c []float64) float64 {
	sort.Float64s(c)
	return c[(len(c)-1)/2]
}

// sortEigensystem reorders vals descending, permuting the columns of basis
// to match.
func sortEigensystem(basis *mat.Dense, vals []float64) {
	k := len(vals)
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })
	sortedVals := make([]float64, k)
	cols := mat.NewDense(basis.Rows(), k)
	buf := make([]float64, basis.Rows())
	for newJ, oldJ := range order {
		sortedVals[newJ] = vals[oldJ]
		cols.SetCol(newJ, basis.Col(oldJ, buf))
	}
	copy(vals, sortedVals)
	basis.CopyFrom(cols)
}

// recordRejected appends r2 to the bounded ring buffer of recently
// rejected residuals.
func (en *Engine) recordRejected(r2 float64) {
	if en.rejectedR2 == nil {
		en.rejectedR2 = make([]float64, 0, rejectedCap)
	}
	if len(en.rejectedR2) < rejectedCap {
		en.rejectedR2 = append(en.rejectedR2, r2)
		return
	}
	en.rejectedR2[en.rejectedAt] = r2
	en.rejectedAt = (en.rejectedAt + 1) % rejectedCap
}

// rejectedMedian returns the median of the rejected-residual buffer (0 when
// empty), sorting into workspace scratch.
func (en *Engine) rejectedMedian() float64 {
	if len(en.rejectedR2) == 0 {
		return 0
	}
	c := en.ws.med[:len(en.rejectedR2)]
	copy(c, en.rejectedR2)
	sort.Float64s(c)
	return c[len(c)/2]
}

// Rescues returns how many times the scale-collapse rescue fired.
func (en *Engine) Rescues() int64 { return en.rescues }

// MarkSynced resets the since-last-sync observation counter; the
// synchronization layer calls it after a completed merge.
func (en *Engine) MarkSynced() { en.sinceSync = 0 }

// ShouldSync implements the data-driven criterion of §II-C: participate in
// a synchronization only when the observations absorbed since the last one
// exceed factor·N, with N = 1/(1−α) the effective window. The paper uses
// factor = 1.5 as "a good compromise between speed and consistency". For
// α = 1 (infinite memory) the criterion always allows syncing.
func (en *Engine) ShouldSync(factor float64) bool {
	if !en.ready {
		return false
	}
	n := en.cfg.WindowN()
	if n == 0 {
		return true
	}
	return float64(en.sinceSync) > factor*n
}
