package core

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"streampca/internal/mat"
	"streampca/internal/stream"
)

func TestLocationEngineValidation(t *testing.T) {
	bad := []LocationConfig{
		{},
		{Dim: 5, Alpha: 2},
		{Dim: 5, Delta: 1.5},
		{Dim: 5, InitSize: 1},
	}
	for i, cfg := range bad {
		if _, err := NewLocationEngine(cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := NewLocationEngine(LocationConfig{Dim: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestLocationEngineTracksMean(t *testing.T) {
	rng := rand.New(rand.NewPCG(970, 1))
	le, err := NewLocationEngine(LocationConfig{Dim: 10, Alpha: 1 - 1.0/500})
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, 10)
	for i := range truth {
		truth[i] = float64(i) - 4
	}
	for i := 0; i < 3000; i++ {
		x := mat.CopyVec(truth)
		for j := range x {
			x[j] += 0.5 * rng.NormFloat64()
		}
		if _, err := le.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	if !mat.EqualApproxVec(le.Mean(), truth, 0.1) {
		t.Fatalf("mean = %v", le.Mean())
	}
	if le.Sigma2() <= 0 {
		t.Fatal("sigma2 not estimated")
	}
}

func TestLocationEngineRobustToOutliers(t *testing.T) {
	rng := rand.New(rand.NewPCG(971, 2))
	le, _ := NewLocationEngine(LocationConfig{Dim: 8, Alpha: 1 - 1.0/500})
	var flagged, injected int
	for i := 0; i < 4000; i++ {
		x := make([]float64, 8)
		isOut := rng.Float64() < 0.15
		for j := range x {
			if isOut {
				x[j] = 100 * rng.NormFloat64()
			} else {
				x[j] = 3 + 0.3*rng.NormFloat64()
			}
		}
		if isOut {
			injected++
		}
		u, err := le.Observe(x)
		if err != nil {
			t.Fatal(err)
		}
		if u.Outlier && isOut {
			flagged++
		}
	}
	mean := le.Mean()
	for j := range mean {
		if math.Abs(mean[j]-3) > 0.3 {
			t.Fatalf("contaminated mean = %v", mean)
		}
	}
	if rate := float64(flagged) / float64(injected); rate < 0.9 {
		t.Fatalf("outlier detection rate = %v", rate)
	}
}

func TestLocationEngineMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(972, 3))
	mk := func(offset float64, n int) *LocationEngine {
		le, _ := NewLocationEngine(LocationConfig{Dim: 4})
		for i := 0; i < n; i++ {
			x := []float64{offset, offset, offset, offset}
			for j := range x {
				x[j] += 0.1 * rng.NormFloat64()
			}
			le.Observe(x)
		}
		return le
	}
	a := mk(0, 300)
	b := mk(1, 100)
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(sb); err != nil {
		t.Fatal(err)
	}
	// v-weighted average: ≈ 100/400 of the way toward 1.
	got := a.Mean()[0]
	if got < 0.15 || got > 0.35 {
		t.Fatalf("merged mean = %v, want ≈ 0.25", got)
	}
	if a.SinceSync() != 0 {
		t.Fatal("merge should reset SinceSync")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil merge should fail")
	}
}

func TestLocationEngineShouldSync(t *testing.T) {
	rng := rand.New(rand.NewPCG(973, 4))
	le, _ := NewLocationEngine(LocationConfig{Dim: 4, Alpha: 1 - 1.0/100})
	for i := 0; i < 20; i++ {
		le.Observe([]float64{rng.NormFloat64(), 1, 2, 3})
	}
	le.MarkSynced()
	for i := 0; i < 100; i++ {
		le.Observe([]float64{rng.NormFloat64(), 1, 2, 3})
	}
	if le.ShouldSync(1.5) {
		t.Fatal("100 < 150 should not sync")
	}
	for i := 0; i < 60; i++ {
		le.Observe([]float64{rng.NormFloat64(), 1, 2, 3})
	}
	if !le.ShouldSync(1.5) {
		t.Fatal("160 > 150 should sync")
	}
}

// TestMixedAnalyticsGraph wires a PCA engine AND a location engine into one
// stream graph fed by the same split — the paper's claim that the
// parallelization framework hosts any partial-sum analytic.
func TestMixedAnalyticsGraph(t *testing.T) {
	rng := rand.New(rand.NewPCG(974, 5))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	xs := m.samples(4000)

	pca, err := NewEngine(Config{Dim: 20, Components: 2, Alpha: 1 - 1.0/500})
	if err != nil {
		t.Fatal(err)
	}
	loc, err := NewLocationEngine(LocationConfig{Dim: 20, Alpha: 1 - 1.0/500})
	if err != nil {
		t.Fatal(err)
	}

	g := stream.NewGraph()
	i := 0
	src := g.AddSource("src", stream.CounterSource(int64(len(xs)), func(seq int64) stream.Message {
		x := xs[seq]
		i++
		return stream.Tuple{Seq: seq, Vec: x}
	}))
	fan := g.Add("fan", &stream.FuncOperator{
		OnMessage: func(_ int, msg stream.Message, emit stream.Emit) {
			emit(0, msg)
			emit(1, msg)
		},
	})
	pcaOp := g.Add("pca", &stream.FuncOperator{
		OnMessage: func(_ int, msg stream.Message, _ stream.Emit) {
			pca.Observe(msg.(stream.Tuple).Vec)
		},
	})
	locOp := g.Add("loc", &stream.FuncOperator{
		OnMessage: func(_ int, msg stream.Message, _ stream.Emit) {
			loc.Observe(msg.(stream.Tuple).Vec)
		},
	})
	for _, e := range [][3]stream.NodeID{{src, fan, 0}, {fan, pcaOp, 0}} {
		if err := g.Connect(e[0], 0, e[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect(fan, 1, locOp, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if aff := pca.Eigensystem().SubspaceAffinity(m.basis); aff < 0.95 {
		t.Fatalf("pca affinity = %v", aff)
	}
	if !mat.EqualApproxVec(loc.Mean(), m.mean, 0.2) {
		t.Fatal("location analytic did not track the mean")
	}
}

func TestLocationEngineAccessorsBeforeReady(t *testing.T) {
	le, _ := NewLocationEngine(LocationConfig{Dim: 4})
	if le.Ready() {
		t.Fatal("fresh engine should not be ready")
	}
	if le.Mean() != nil {
		t.Fatal("Mean before ready should be nil")
	}
	if _, err := le.Snapshot(); err == nil {
		t.Fatal("Snapshot before ready should fail")
	}
	if le.ShouldSync(1.5) {
		t.Fatal("unready engine should not sync")
	}
	le.Observe([]float64{1, 2, 3, 4})
	if le.Count() != 1 {
		t.Fatalf("Count = %d", le.Count())
	}
	if _, err := le.Observe([]float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := le.Observe([]float64{1, 2, math.NaN(), 4}); err == nil {
		t.Fatal("NaN should error")
	}
}

func TestLocationEngineInfiniteMemorySyncAlways(t *testing.T) {
	rng := rand.New(rand.NewPCG(975, 6))
	le, _ := NewLocationEngine(LocationConfig{Dim: 3}) // alpha = 1
	for i := 0; i < 20; i++ {
		le.Observe([]float64{rng.NormFloat64(), 1, 2})
	}
	if !le.ShouldSync(1.5) {
		t.Fatal("alpha=1 location engines may always sync")
	}
}

func TestPatchVectorBeforeReadyFails(t *testing.T) {
	en, _ := NewEngine(Config{Dim: 5, Components: 1})
	if _, _, err := en.PatchVector(make([]float64, 5), make([]bool, 5)); err == nil {
		t.Fatal("PatchVector before warm-up should fail")
	}
}
