package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"streampca/internal/eig"
)

// TestStructuredRebuildMatchesSVD runs two engines over an identical stream,
// one using the structured analytic rebuild (default) and one the explicit
// thin-SVD reference, and asserts their eigensystems stay numerically
// indistinguishable. This is the correctness contract of the fast path: the
// analytic Gram matrix relies on EᵀE = I, which must hold well enough per
// step that the two routes never diverge beyond round-off accumulation.
func TestStructuredRebuildMatchesSVD(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 1))
	d, p := 120, 4
	m := newModel(rng, d, p, []float64{16, 9, 4, 1}, 0.1)
	m.outlier = 0.05
	cfg := Config{Dim: d, Components: p, Alpha: 1 - 1.0/800}

	fast, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.useSVDRebuild = true

	const steps = 3000
	for i := 0; i < steps; i++ {
		x, _ := m.sample()
		uf, errF := fast.Observe(x)
		ur, errR := ref.Observe(x)
		if (errF == nil) != (errR == nil) {
			t.Fatalf("step %d: error divergence: %v vs %v", i, errF, errR)
		}
		if !fast.Ready() {
			continue
		}
		if math.Abs(uf.Weight-ur.Weight) > 1e-6 {
			t.Fatalf("step %d: weights diverge: %v vs %v", i, uf.Weight, ur.Weight)
		}
	}
	if !fast.Ready() || !ref.Ready() {
		t.Fatal("engines not ready")
	}
	sf := fast.Eigensystem()
	sr := ref.Eigensystem()
	if aff := affinity(sf.Vectors, sr.Vectors); aff < 1-1e-8 {
		t.Fatalf("subspaces diverged: affinity %v", aff)
	}
	for j := range sf.Values {
		diff := math.Abs(sf.Values[j] - sr.Values[j])
		if diff > 1e-6*(1+math.Abs(sr.Values[j])) {
			t.Fatalf("eigenvalue %d diverged: %v vs %v", j, sf.Values[j], sr.Values[j])
		}
	}
	if s := math.Abs(sf.Sigma2 - sr.Sigma2); s > 1e-6*(1+sr.Sigma2) {
		t.Fatalf("scales diverged: %v vs %v", sf.Sigma2, sr.Sigma2)
	}
	// The fast path must also keep the basis orthonormal between the
	// periodic re-orthonormalizations.
	if e := eig.OrthonormalityError(sf.Vectors); e > 1e-9 {
		t.Fatalf("structured rebuild let orthonormality drift: %g", e)
	}
}
