package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"streampca/internal/mat"
	"streampca/internal/robust"
)

// These tests target the hardening machinery added on top of the paper's
// equations: warm-up outlier pre-filtering, robust seed eigenvalues,
// scale-collapse rescue, and iterative gappy warm-up refinement.

func TestFilterGrossOutliersDropsContamination(t *testing.T) {
	rng := rand.New(rand.NewPCG(500, 1))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.1)
	xs := m.samples(20)
	// Replace 4 with gross outliers.
	for i := 0; i < 4; i++ {
		for j := range xs[i] {
			xs[i][j] = 100 * rng.NormFloat64()
		}
	}
	kept := filterGrossOutliers(xs, robust.DefaultBisquare(), 0.5, robust.DefaultBisquare().C*robust.DefaultBisquare().C, 2)
	if len(kept) > 16 {
		t.Fatalf("filter kept %d of 20 (should drop the 4 gross outliers)", len(kept))
	}
	for _, x := range kept {
		if mat.Norm2(x) > 50 {
			t.Fatal("a gross outlier survived the filter")
		}
	}
}

func TestFilterGrossOutliersKeepsCleanData(t *testing.T) {
	rng := rand.New(rand.NewPCG(501, 2))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.1)
	xs := m.samples(20)
	kept := filterGrossOutliers(xs, robust.DefaultBisquare(), 0.5, 9, 2)
	if len(kept) < 15 {
		t.Fatalf("filter dropped too much clean data: %d of 20", len(kept))
	}
}

func TestFilterGrossOutliersNeverStarves(t *testing.T) {
	// All points identical except one: the filter must not shrink the
	// buffer below k+2 (it returns the input unchanged instead).
	xs := make([][]float64, 6)
	for i := range xs {
		xs[i] = []float64{1, 2, 3, 4}
	}
	xs[5] = []float64{100, 100, 100, 100}
	kept := filterGrossOutliers(xs, robust.DefaultBisquare(), 0.5, 2.4, 4)
	if len(kept) < 6 {
		t.Fatalf("filter starved the buffer: %d", len(kept))
	}
}

func TestPoisonedWarmupRecoversFast(t *testing.T) {
	// 30% outliers *during warm-up*; the engine must still converge within
	// a couple of windows instead of carrying inflated eigenvalues for
	// N·ln(λ_bad/λ_true) observations.
	rng := rand.New(rand.NewPCG(502, 3))
	m := newModel(rng, 50, 3, []float64{4, 2, 1}, 0.1)
	m.outlier = 0.30
	en, err := NewEngine(Config{Dim: 50, Components: 3, Alpha: 1 - 1.0/500})
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, en, m, en.Config().InitSize+1)
	if !en.Ready() {
		t.Fatal("engine did not initialize")
	}
	m.outlier = 0.1
	feedN(t, en, m, 1500)
	if aff := en.Eigensystem().SubspaceAffinity(m.basis); aff < 0.9 {
		t.Fatalf("poisoned warm-up not recovered after 3 windows: affinity %v", aff)
	}
}

func TestScaleCollapseRescue(t *testing.T) {
	rng := rand.New(rand.NewPCG(503, 4))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	cfg := testConfig(20, 2)
	cfg.RescueStreak = 40
	en, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, en, m, 500)
	// Force a scale collapse by hand.
	en.state.Sigma2 = 1e-20
	en.minSigma2 = 0
	// Everything now gets weight zero until the rescue fires.
	for i := 0; i < cfg.RescueStreak+5; i++ {
		x, _ := m.sample()
		if _, err := en.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	if en.Rescues() == 0 {
		t.Fatal("rescue never fired")
	}
	if en.state.Sigma2 < 1e-6 {
		t.Fatalf("rescue did not restore the scale: %v", en.state.Sigma2)
	}
	// Subsequent inliers get weight again.
	x, _ := m.sample()
	u, err := en.Observe(x)
	if err != nil {
		t.Fatal(err)
	}
	if u.Weight == 0 {
		t.Fatal("engine still frozen after rescue")
	}
}

func TestRescueDisabled(t *testing.T) {
	rng := rand.New(rand.NewPCG(504, 5))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	cfg := testConfig(20, 2)
	cfg.RescueStreak = -1
	en, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, en, m, 300)
	en.state.Sigma2 = 1e-20
	en.minSigma2 = 0
	for i := 0; i < 200; i++ {
		x, _ := m.sample()
		en.Observe(x)
	}
	if en.Rescues() != 0 {
		t.Fatal("disabled rescue fired anyway")
	}
}

func TestSortEigensystem(t *testing.T) {
	basis := mat.NewDenseData(2, 3, []float64{
		1, 2, 3,
		4, 5, 6,
	})
	vals := []float64{0.5, 3, 1}
	sortEigensystem(basis, vals)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 0.5 {
		t.Fatalf("vals = %v", vals)
	}
	if basis.At(0, 0) != 2 || basis.At(0, 1) != 3 || basis.At(0, 2) != 1 {
		t.Fatalf("basis columns not permuted: %v", basis)
	}
}

func TestRefineGappyWarmupHarmlessOnSlidingMasks(t *testing.T) {
	// The survey-like regime: a contiguous observation window sliding per
	// sample. Warm-up refinement must not hurt the seeded basis relative
	// to raw bin-mean filling, and the engine must initialize cleanly.
	run := func(refine bool) float64 {
		rng := rand.New(rand.NewPCG(505, 6))
		m := newModel(rng, 60, 2, []float64{4, 1}, 0.05)
		cfg := Config{Dim: 60, Components: 2, Extra: 1, Alpha: 1 - 1.0/500, InitSize: 24}
		en, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		en.disableWarmupRefine = !refine
		const margin = 12
		for i := 0; i < 24; i++ {
			x, _ := m.sample()
			mask := make([]bool, 60)
			shift := rng.IntN(margin + 1)
			for j := margin - shift; j < 60-shift; j++ {
				mask[j] = true
			}
			if _, err := en.ObserveMasked(x, mask); err != nil {
				t.Fatal(err)
			}
		}
		if !en.Ready() {
			t.Fatal("engine did not initialize")
		}
		return en.Eigensystem().SubspaceAffinity(m.basis)
	}
	with := run(true)
	without := run(false)
	if with < without-0.1 {
		t.Fatalf("EM warm-up refinement should not hurt: with %v, without %v", with, without)
	}
	if with < 0.25 {
		t.Fatalf("refined warm-up too weak: %v", with)
	}
}

func TestRobustSeedEigenvaluesAreSane(t *testing.T) {
	// Even with a clean warm-up, seed eigenvalues must be finite, ordered,
	// and within a plausible range of the planted spectrum.
	rng := rand.New(rand.NewPCG(507, 8))
	m := newModel(rng, 40, 3, []float64{9, 4, 1}, 0.05)
	en, _ := NewEngine(testConfig(40, 3))
	feedN(t, en, m, en.Config().InitSize+1)
	es := en.Eigensystem()
	for j := 0; j < 2; j++ {
		if es.Values[j] < es.Values[j+1] {
			t.Fatalf("seed eigenvalues not sorted: %v", es.Values)
		}
	}
	if !es.checkFinite() {
		t.Fatal("non-finite seed state")
	}
	if es.Values[0] <= 0 || es.Values[0] > 1e4 {
		t.Fatalf("implausible seed eigenvalue %v", es.Values[0])
	}
}

func TestMinSigma2FloorsRecursion(t *testing.T) {
	rng := rand.New(rand.NewPCG(508, 9))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	en, _ := NewEngine(testConfig(20, 2))
	feedN(t, en, m, 200)
	// Feed vectors lying exactly in the current plane: r² = 0 repeatedly.
	es := en.Eigensystem()
	col := es.Component(0)
	for i := 0; i < 500; i++ {
		x := mat.CopyVec(es.Mean)
		mat.Axpy(2*rng.NormFloat64(), col, x)
		if _, err := en.Observe(x); err != nil {
			t.Fatal(err)
		}
	}
	if s := en.Eigensystem().Sigma2; math.IsNaN(s) || s <= 0 {
		t.Fatalf("sigma2 degenerated to %v", s)
	}
}

func TestQuickselectMedianFloat(t *testing.T) {
	if m := quickselectMedianFloat([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := quickselectMedianFloat([]float64{4, 1}); m != 1 {
		t.Fatalf("even median = %v", m)
	}
}
