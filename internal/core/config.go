// Package core implements the paper's primary contribution: a robust,
// incremental principal components analysis over high-dimensional data
// streams (Mishin, Budavári, Szalay, Ahmad — SC 2012).
//
// The estimator maintains a truncated eigensystem {Λp, Ep} of a robustly
// weighted covariance matrix. Each arriving vector x updates the system in
// O(d·(p+1)²) time via the SVD of a low-rank A matrix (eq. 1–3); robustness
// against outliers comes from Maronna-style M-scale weighting (eq. 5–8); a
// forgetting factor α turns the estimator into a sliding exponential window
// (eq. 9–14); eigensystems from independently processed sub-streams merge
// through the same low-rank machinery (eq. 15–16); and gappy observations
// are patched from the current basis with a p+q residual correction
// (§II-D).
package core

import (
	"errors"
	"fmt"
	"time"

	"streampca/internal/robust"
)

// Config parameterizes a streaming PCA Engine. The zero value is not
// usable; fill Dim and Components and call Validate, or rely on NewEngine
// which validates and applies defaults.
type Config struct {
	// Dim is the dimensionality d of the observation vectors.
	Dim int

	// Components is p, the number of principal components reported to the
	// user (the truncated eigensystem size of eq. 1).
	Components int

	// Extra is q, the number of additional higher-order components
	// maintained internally for the missing-data residual correction of
	// §II-D. Zero disables the correction (the engine still runs and still
	// patches gaps, but residuals in masked bins are not re-estimated).
	Extra int

	// Alpha is the forgetting factor α ∈ (0, 1] of eqs. (12)–(14). α = 1 is
	// the classic infinite-memory estimator; α = 1 − 1/N gives an effective
	// exponential window of N observations. Default 1.
	Alpha float64

	// TimeWindow, when positive, enables time-based forgetting through
	// ObserveAt/ObserveMaskedAt: the running sums decay by exp(−Δt/TimeWindow)
	// per wall-clock gap instead of by α per observation (§II-B's
	// "time-based windows"). Observe/ObserveMasked keep using Alpha.
	TimeWindow time.Duration

	// Delta is the M-scale breakdown parameter δ of eq. (5). Default 0.5.
	Delta float64

	// Rho is the bounded robust loss. Default: bisquare tuned for Delta
	// (robust.DefaultBisquare for δ=0.5, robust.TuneBisquare otherwise).
	// Use robust.Classic{} to recover classical (non-robust) incremental
	// PCA with the same code path.
	Rho robust.Rho

	// InitSize is the number of warm-up observations buffered before the
	// eigensystem is initialized by a small batch decomposition. The paper
	// keeps this set small "to minimize the computational requirements".
	// Default max(2·(p+q), 10).
	InitSize int

	// OutlierT is the squared standardized residual t = r²/σ² above which
	// an observation is flagged as an outlier in Update.Outlier. Default:
	// the ρ-function's rejection point (c² for bisquare) when it has one,
	// otherwise 9 (3σ).
	OutlierT float64

	// ReorthEvery forces a re-orthonormalization of the basis every that
	// many updates to bound floating-point drift. Default 1024; negative
	// disables.
	ReorthEvery int

	// RescueStreak guards against scale collapse: when that many
	// consecutive observations all receive weight 0 (which means σ² has
	// fallen far below the data's residual scale and the estimator can no
	// longer learn), σ² is reset to the median squared residual of the
	// recent rejected observations. Default max(32, 2·InitSize); negative
	// disables the rescue.
	RescueStreak int

	// Workers sizes the engine's persistent kernel worker pool, which
	// parallelizes the d-proportional inner loops (the fused center/project
	// pass, the rank-c panel products, the basis update) when the startup
	// calibration says the dispatch pays for itself. 0 selects GOMAXPROCS;
	// 1 forces serial execution. Results are bitwise identical for every
	// setting — the kernels partition output elements only — so Workers is
	// purely a resource knob. Engines with Workers ≥ 2 own parked goroutines
	// and should be Closed when discarded.
	Workers int

	// BlockSize overrides the rank-c chunk width of ObserveBlock, in
	// [1, 16]. 0 (the default) picks the width from the calibrated per-row
	// cost model (mat.BlockSize), which balances basis-update amortization
	// against the O(d·c²) Y·Yᵀ corner and the (k+c)³ eigensolve; set it
	// explicitly to reproduce a historical run exactly.
	BlockSize int
}

// Validate checks the configuration and fills defaulted fields in place.
func (c *Config) Validate() error {
	if c.Dim <= 0 {
		return fmt.Errorf("core: Dim must be positive, got %d", c.Dim)
	}
	if c.Components <= 0 {
		return fmt.Errorf("core: Components must be positive, got %d", c.Components)
	}
	if c.Extra < 0 {
		return fmt.Errorf("core: Extra must be non-negative, got %d", c.Extra)
	}
	if c.Components+c.Extra >= c.Dim {
		return fmt.Errorf("core: Components+Extra (%d) must be < Dim (%d)", c.Components+c.Extra, c.Dim)
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: Alpha must lie in (0,1], got %v", c.Alpha)
	}
	if c.TimeWindow < 0 {
		return fmt.Errorf("core: TimeWindow must be non-negative, got %v", c.TimeWindow)
	}
	if c.Delta == 0 {
		if _, classic := c.Rho.(robust.Classic); classic {
			// ρ(t)=t with δ=1 makes the M-scale the plain mean square, so
			// the whole machinery collapses to classical incremental PCA.
			c.Delta = 1
		} else {
			c.Delta = robust.DefaultDelta
		}
	}
	if c.Delta <= 0 || c.Delta > 1 {
		return fmt.Errorf("core: Delta must lie in (0,1], got %v", c.Delta)
	}
	if c.Rho == nil {
		switch {
		case c.Delta == robust.DefaultDelta:
			c.Rho = robust.DefaultBisquare()
		case c.Delta < 1:
			c.Rho = robust.NewBisquare(robust.TuneBisquare(c.Delta))
		default:
			return errors.New("core: Delta = 1 requires an explicit Rho (use robust.Classic)")
		}
	}
	if c.InitSize == 0 {
		// 4·k keeps the warm-up fit from overfitting its own buffer (which
		// collapses the initial M-scale and freezes the stream) while
		// staying "small to minimize the computational requirements".
		c.InitSize = 4 * (c.Components + c.Extra)
		if c.InitSize < 16 {
			c.InitSize = 16
		}
	}
	if c.InitSize < c.Components+c.Extra+1 {
		return fmt.Errorf("core: InitSize (%d) must exceed Components+Extra (%d)",
			c.InitSize, c.Components+c.Extra)
	}
	if c.InitSize > 1<<20 {
		return errors.New("core: InitSize unreasonably large")
	}
	if c.OutlierT == 0 {
		switch r := c.Rho.(type) {
		case robust.Bisquare:
			c.OutlierT = r.C * r.C
		default:
			c.OutlierT = 9
		}
	}
	if c.OutlierT < 0 {
		return fmt.Errorf("core: OutlierT must be non-negative, got %v", c.OutlierT)
	}
	if c.ReorthEvery == 0 {
		c.ReorthEvery = 1024
	}
	if c.RescueStreak == 0 {
		c.RescueStreak = 2 * c.InitSize
		if c.RescueStreak < 32 {
			c.RescueStreak = 32
		}
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: Workers must be non-negative, got %d", c.Workers)
	}
	if c.Workers > 1024 {
		return fmt.Errorf("core: Workers unreasonably large (%d)", c.Workers)
	}
	if c.BlockSize < 0 || c.BlockSize > blockMax {
		return fmt.Errorf("core: BlockSize must lie in [0,%d], got %d", blockMax, c.BlockSize)
	}
	return nil
}

// WindowN returns the effective sample size N = 1/(1−α) of the exponential
// window, or 0 for the infinite-memory case α = 1. The parallel
// synchronization criterion (§II-C) declares two eigensystems independent
// once each has absorbed more than 1.5·N observations since they last met.
func (c *Config) WindowN() float64 {
	if c.Alpha >= 1 {
		return 0
	}
	return 1 / (1 - c.Alpha)
}
