package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"streampca/internal/mat"
)

// Binary eigensystem serialization (§III-C: "the intermediate calculation
// results are periodically saved to the disk for future reference"). The
// format is versioned and self-describing:
//
//	magic "SPCA" | version u32 | d u32 | k u32 | count i64
//	| sigma2, sumU, sumV, sumQ f64
//	| mean[d] f64 | values[k] f64 | vectors[d*k] f64 (row-major)
//
// all little-endian.
const (
	persistMagic   = "SPCA"
	persistVersion = 1
)

// WriteEigensystem serializes es to w in the versioned binary format.
func WriteEigensystem(w io.Writer, es *Eigensystem) error {
	if es == nil || es.Vectors == nil {
		return errors.New("core: cannot serialize a nil eigensystem")
	}
	if !es.checkFinite() {
		return errors.New("core: refusing to serialize non-finite eigensystem")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return err
	}
	d, k := es.Vectors.Dims()
	if len(es.Mean) != d || len(es.Values) != k {
		return errors.New("core: inconsistent eigensystem shapes")
	}
	hdr := []any{
		uint32(persistVersion), uint32(d), uint32(k), es.Count,
		es.Sigma2, es.SumU, es.SumV, es.SumQ,
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, block := range [][]float64{es.Mean, es.Values, es.Vectors.Data()} {
		if err := binary.Write(bw, binary.LittleEndian, block); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Checkpoint size guards: shapes beyond these are rejected as corrupt
// rather than allocated. maxCheckpointElems caps the total float64 payload
// (~1 GiB) — far above any plausible spectral survey eigensystem, far
// below what a hostile 28-byte header could otherwise demand.
const (
	maxCheckpointDim   = 1 << 24
	maxCheckpointElems = 1 << 27
)

// readFloats reads exactly n little-endian float64 values from r in bounded
// chunks, so memory use grows with the bytes actually present rather than
// with whatever the header claims — a truncated or corrupted checkpoint
// fails fast instead of over-allocating.
func readFloats(r io.Reader, n int) ([]float64, error) {
	const chunk = 1 << 14
	first := n
	if first > chunk {
		first = chunk
	}
	out := make([]float64, 0, first)
	for len(out) < n {
		c := n - len(out)
		if c > chunk {
			c = chunk
		}
		buf := make([]float64, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

// ReadEigensystem deserializes an eigensystem previously written with
// WriteEigensystem, validating the header, shapes and finiteness. It never
// panics on corrupted or truncated input, and never allocates more memory
// than the input actually backs plus one bounded chunk.
func ReadEigensystem(r io.Reader) (*Eigensystem, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading checkpoint magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, errors.New("core: not a streampca checkpoint (bad magic)")
	}
	var version, d32, k32 uint32
	var count int64
	var sigma2, sumU, sumV, sumQ float64
	for _, v := range []any{&version, &d32, &k32, &count, &sigma2, &sumU, &sumV, &sumQ} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("core: reading checkpoint header: %w", err)
		}
	}
	if version != persistVersion {
		return nil, fmt.Errorf("core: unsupported checkpoint version %d", version)
	}
	d, k := int(d32), int(k32)
	if d <= 0 || k <= 0 || d > maxCheckpointDim || k > d {
		return nil, fmt.Errorf("core: implausible checkpoint shape %dx%d", d, k)
	}
	if int64(d)*int64(k) > maxCheckpointElems {
		return nil, fmt.Errorf("core: checkpoint payload %dx%d exceeds the size limit", d, k)
	}
	mean, err := readFloats(br, d)
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint payload: %w", err)
	}
	values, err := readFloats(br, k)
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint payload: %w", err)
	}
	vectors, err := readFloats(br, d*k)
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint payload: %w", err)
	}
	es := &Eigensystem{
		Mean:    mean,
		Values:  values,
		Vectors: mat.NewDenseData(d, k, vectors),
		Sigma2:  sigma2, SumU: sumU, SumV: sumV, SumQ: sumQ, Count: count,
	}
	if !es.checkFinite() {
		return nil, errors.New("core: checkpoint contains non-finite values")
	}
	return es, nil
}

// SaveCheckpoint writes the engine's current eigensystem to w; it fails
// before warm-up completes.
func (en *Engine) SaveCheckpoint(w io.Writer) error {
	if !en.ready {
		return errors.New("core: engine not initialized yet")
	}
	return WriteEigensystem(w, &en.state)
}

// ResumeEngine builds a ready engine from a restored eigensystem, skipping
// warm-up. cfg must be shape-compatible with the checkpoint (Dim and
// Components+Extra must match); the forgetting and robustness parameters
// may differ — resuming with a new α, δ or ρ is how an operator retunes a
// long-running analysis without losing its state.
func ResumeEngine(cfg Config, es *Eigensystem) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if es == nil {
		return nil, errors.New("core: resume with nil eigensystem")
	}
	k := cfg.Components + cfg.Extra
	if es.Dim() != cfg.Dim || es.NumComponents() != k {
		return nil, fmt.Errorf("core: checkpoint shape %dx%d does not match config %dx%d",
			es.Dim(), es.NumComponents(), cfg.Dim, k)
	}
	if !es.checkFinite() {
		return nil, errors.New("core: refusing to resume from non-finite eigensystem")
	}
	blockC := cfg.BlockSize
	if blockC <= 0 {
		blockC = mat.BlockSize(cfg.Dim, k, blockMax)
	}
	pool := mat.NewPool(cfg.Workers)
	pool.Reserve(k + blockC)
	en := &Engine{
		cfg:    cfg,
		k:      k,
		state:  *es.Clone(),
		ready:  true,
		ws:     newWorkspace(cfg.Dim, k, blockC),
		pool:   pool,
		blockC: blockC,
	}
	en.minSigma2 = 1e-12*es.Sigma2 + math.SmallestNonzeroFloat64
	return en, nil
}
