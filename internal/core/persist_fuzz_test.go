package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"streampca/internal/mat"
)

// fuzzCheckpoint builds a small valid checkpoint for the seed corpus.
func fuzzCheckpoint(t testing.TB, d, k int) []byte {
	es := &Eigensystem{
		Mean:    make([]float64, d),
		Values:  make([]float64, k),
		Vectors: mat.NewDense(d, k),
		Sigma2:  0.5, SumU: 10, SumV: 9, SumQ: 8, Count: 100,
	}
	for i := range es.Mean {
		es.Mean[i] = float64(i) * 0.25
	}
	for j := 0; j < k; j++ {
		es.Values[j] = float64(k - j)
		es.Vectors.Set(j, j, 1)
	}
	var buf bytes.Buffer
	if err := WriteEigensystem(&buf, es); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadEigensystem feeds corrupted, truncated and hostile SPCA blobs to
// the checkpoint reader, asserting it returns an error instead of panicking
// and never allocates more than the input can back. Accepted inputs must
// survive a write/read round-trip.
func FuzzReadEigensystem(f *testing.F) {
	valid := fuzzCheckpoint(f, 6, 3)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])        // truncated payload
	f.Add(valid[:10])                  // truncated header
	f.Add([]byte("SPCA"))              // magic only
	f.Add([]byte("JUNKJUNKJUNKJUNK"))  // bad magic
	f.Add(bytes.Repeat([]byte{0}, 64)) // zeros
	f.Add(fuzzCheckpoint(f, 1, 1))     // minimal shape
	// A hostile header claiming a gigantic shape with no payload behind it.
	hostile := append([]byte("SPCA"), make([]byte, 48)...)
	binary.LittleEndian.PutUint32(hostile[4:], 1)      // version
	binary.LittleEndian.PutUint32(hostile[8:], 1<<24)  // d = max
	binary.LittleEndian.PutUint32(hostile[12:], 1<<24) // k = max
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		es, err := ReadEigensystem(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		// Accepted inputs must be internally consistent and re-serializable.
		d, k := es.Vectors.Dims()
		if len(es.Mean) != d || len(es.Values) != k || k > d || d <= 0 {
			t.Fatalf("accepted inconsistent eigensystem %dx%d (mean %d, values %d)",
				d, k, len(es.Mean), len(es.Values))
		}
		for _, v := range es.Mean {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("accepted non-finite mean")
			}
		}
		var buf bytes.Buffer
		if werr := WriteEigensystem(&buf, es); werr != nil {
			t.Fatalf("round-trip write of accepted checkpoint failed: %v", werr)
		}
		back, rerr := ReadEigensystem(&buf)
		if rerr != nil {
			t.Fatalf("round-trip read failed: %v", rerr)
		}
		if back.Count != es.Count || back.Sigma2 != es.Sigma2 {
			t.Fatal("round-trip changed scalar state")
		}
	})
}

// TestReadEigensystemHostileHeader pins the over-allocation guard: a header
// claiming the maximum shape with no payload must fail fast (the chunked
// reader stops at the first missing byte) and the d·k cap must reject
// payloads beyond the size limit.
func TestReadEigensystemHostileHeader(t *testing.T) {
	hostile := append([]byte("SPCA"), make([]byte, 48)...)
	binary.LittleEndian.PutUint32(hostile[4:], 1)
	binary.LittleEndian.PutUint32(hostile[8:], 1<<24)
	binary.LittleEndian.PutUint32(hostile[12:], 1<<20)
	if _, err := ReadEigensystem(bytes.NewReader(hostile)); err == nil {
		t.Fatal("gigantic claimed shape with empty payload must not parse")
	}
	// Shape within dim bounds but over the element cap.
	over := append([]byte("SPCA"), make([]byte, 48)...)
	binary.LittleEndian.PutUint32(over[4:], 1)
	binary.LittleEndian.PutUint32(over[8:], 1<<16)
	binary.LittleEndian.PutUint32(over[12:], 1<<12)
	_, err := ReadEigensystem(bytes.NewReader(over))
	if err == nil {
		t.Fatal("payload over the element cap must be rejected")
	}
}
