package core

import (
	"errors"
	"fmt"
	"math"

	"streampca/internal/mat"
	"streampca/internal/robust"
)

// LocationEngine is a second partial-sum analytic built on the same
// machinery as the PCA Engine — the paper's §III-A2 point that "replaceable
// application components ... include different partial sum analytics
// algorithms beyond streaming PCA into the application workflow". It tracks
// a robust location µ and scale σ² of the stream with α-forgetting: the
// recursions are exactly eqs. (9), (11), (12) and (14) with the residual
// r² = ‖x−µ‖² replacing the PCA fit residual. Like the PCA engine it
// supports snapshot/merge, so the same split + sync-controller fabric
// coordinates it.
type LocationEngine struct {
	// configuration
	dim    int
	alpha  float64
	delta  float64
	rho    robust.Rho
	outT   float64
	warmN  int
	warmup [][]float64

	// state
	mean      []float64
	sigma2    float64
	sumU      float64
	sumV      float64
	count     int64
	sinceSync int64
	minSigma2 float64
	ready     bool
}

// LocationConfig parameterizes a LocationEngine.
type LocationConfig struct {
	// Dim is the observation dimensionality.
	Dim int
	// Alpha is the forgetting factor (default 1).
	Alpha float64
	// Delta is the M-scale breakdown (default 0.5).
	Delta float64
	// Rho is the bounded loss (default bisquare).
	Rho robust.Rho
	// InitSize is the warm-up buffer (default 16).
	InitSize int
	// OutlierT flags observations with r²/σ² above it (default rejection
	// point).
	OutlierT float64
}

// NewLocationEngine validates cfg and returns a robust location tracker.
func NewLocationEngine(cfg LocationConfig) (*LocationEngine, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("core: LocationEngine Dim must be positive, got %d", cfg.Dim)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("core: Alpha must lie in (0,1], got %v", cfg.Alpha)
	}
	if cfg.Delta == 0 {
		cfg.Delta = robust.DefaultDelta
	}
	if cfg.Delta <= 0 || cfg.Delta > 1 {
		return nil, fmt.Errorf("core: Delta must lie in (0,1], got %v", cfg.Delta)
	}
	if cfg.Rho == nil {
		cfg.Rho = robust.DefaultBisquare()
	}
	if cfg.InitSize == 0 {
		cfg.InitSize = 16
	}
	if cfg.InitSize < 3 {
		return nil, errors.New("core: LocationEngine InitSize too small")
	}
	if cfg.OutlierT == 0 {
		if b, ok := cfg.Rho.(robust.Bisquare); ok {
			cfg.OutlierT = b.C * b.C
		} else {
			cfg.OutlierT = 9
		}
	}
	return &LocationEngine{
		dim: cfg.Dim, alpha: cfg.Alpha, delta: cfg.Delta, rho: cfg.Rho,
		outT: cfg.OutlierT, warmN: cfg.InitSize,
	}, nil
}

// Ready reports whether warm-up completed.
func (le *LocationEngine) Ready() bool { return le.ready }

// Count returns the observations absorbed.
func (le *LocationEngine) Count() int64 { return le.count }

// Mean returns a copy of the current location estimate (nil before ready).
func (le *LocationEngine) Mean() []float64 {
	if !le.ready {
		return nil
	}
	return mat.CopyVec(le.mean)
}

// Sigma2 returns the current M-scale (0 before ready).
func (le *LocationEngine) Sigma2() float64 { return le.sigma2 }

// SinceSync returns the observations since the last merge; the same 1.5·N
// criterion as the PCA engine applies (§II-C).
func (le *LocationEngine) SinceSync() int64 { return le.sinceSync }

// ShouldSync implements the data-driven criterion with window N = 1/(1−α).
func (le *LocationEngine) ShouldSync(factor float64) bool {
	if !le.ready {
		return false
	}
	if le.alpha >= 1 {
		return true
	}
	return float64(le.sinceSync) > factor/(1-le.alpha)
}

// MarkSynced resets the since-sync counter.
func (le *LocationEngine) MarkSynced() { le.sinceSync = 0 }

// LocationUpdate reports one observation's effect.
type LocationUpdate struct {
	// Weight is the robust weight (0 = rejected).
	Weight float64
	// T is the squared standardized residual.
	T float64
	// Outlier is true when T exceeded the threshold.
	Outlier bool
	// Warmup is true while buffering.
	Warmup bool
}

// Observe absorbs one observation.
func (le *LocationEngine) Observe(x []float64) (LocationUpdate, error) {
	if len(x) != le.dim {
		return LocationUpdate{}, fmt.Errorf("core: observation length %d, want %d", len(x), le.dim)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return LocationUpdate{}, errors.New("core: non-finite observation")
		}
	}
	if !le.ready {
		le.warmup = append(le.warmup, mat.CopyVec(x))
		le.count++
		if len(le.warmup) >= le.warmN {
			if err := le.initialize(); err != nil {
				le.warmup = le.warmup[len(le.warmup)/2:]
				return LocationUpdate{Warmup: true, Weight: 1}, err
			}
		}
		return LocationUpdate{Warmup: true, Weight: 1}, nil
	}

	// r² = ‖x−µ‖² accumulated directly — the steady-state path allocates
	// nothing.
	var r2 float64
	for i, xi := range x {
		dv := xi - le.mean[i]
		r2 += dv * dv
	}
	s2 := le.sigma2
	if s2 < le.minSigma2 {
		s2 = le.minSigma2
	}
	t := r2 / s2
	w := le.rho.W(t)
	wstar := le.rho.WStar(t)

	uNew := le.alpha*le.sumU + 1
	g3 := le.alpha * le.sumU / uNew
	le.sigma2 = g3*le.sigma2 + (1-g3)*wstar*r2/le.delta
	if le.sigma2 < le.minSigma2 {
		le.sigma2 = le.minSigma2
	}
	vNew := le.alpha*le.sumV + w
	if vNew > 0 {
		g1 := le.alpha * le.sumV / vNew
		mat.Lerp(le.mean, g1, le.mean, 1-g1, x)
	}
	le.sumU = uNew
	le.sumV = vNew
	le.count++
	le.sinceSync++
	return LocationUpdate{Weight: w, T: t, Outlier: t > le.outT}, nil
}

// initialize seeds µ from the coordinatewise median and σ² from the
// M-scale of distances to it — both 50%-breakdown estimators, so a
// contaminated warm-up cannot poison the seed.
func (le *LocationEngine) initialize() error {
	n0 := len(le.warmup)
	le.mean = make([]float64, le.dim)
	col := make([]float64, n0)
	for j := 0; j < le.dim; j++ {
		for i, x := range le.warmup {
			col[i] = x[j]
		}
		le.mean[j] = quickselectMedianFloat(col)
	}
	r2 := make([]float64, n0)
	for i, x := range le.warmup {
		var s float64
		for j, xj := range x {
			dv := xj - le.mean[j]
			s += dv * dv
		}
		r2[i] = s
	}
	s2, err := robust.MScale(le.rho, r2, le.delta, 0)
	if err != nil || s2 <= 0 {
		return errors.New("core: degenerate location warm-up")
	}
	le.sigma2 = s2
	le.minSigma2 = 1e-12*s2 + math.SmallestNonzeroFloat64
	u := 0.0
	for i := 0; i < n0; i++ {
		u = le.alpha*u + 1
	}
	le.sumU = u
	le.sumV = u
	le.sinceSync = int64(n0)
	le.warmup = nil
	le.ready = true
	return nil
}

// LocationSnapshot is the mergeable state a LocationEngine shares.
type LocationSnapshot struct {
	// Mean and Sigma2 are the estimates; SumV weighs the merge; Count is
	// informational.
	Mean   []float64
	Sigma2 float64
	SumU   float64
	SumV   float64
	Count  int64
}

// Snapshot returns a deep copy of the shareable state.
func (le *LocationEngine) Snapshot() (*LocationSnapshot, error) {
	if !le.ready {
		return nil, errors.New("core: location engine not initialized")
	}
	return &LocationSnapshot{
		Mean: mat.CopyVec(le.mean), Sigma2: le.sigma2,
		SumU: le.sumU, SumV: le.sumV, Count: le.count,
	}, nil
}

// Merge combines a peer snapshot exactly as §II-C merges locations:
// µ = γ₁µ₁ + γ₂µ₂ with γ₁ = v₁/(v₁+v₂).
func (le *LocationEngine) Merge(o *LocationSnapshot) error {
	if !le.ready {
		return errors.New("core: location engine not initialized")
	}
	if o == nil || len(o.Mean) != le.dim {
		return errors.New("core: location merge shape mismatch")
	}
	tot := le.sumV + o.SumV
	if tot <= 0 {
		return errors.New("core: location merge with zero weight")
	}
	g1 := le.sumV / tot
	mat.Lerp(le.mean, g1, le.mean, 1-g1, o.Mean)
	le.sigma2 = g1*le.sigma2 + (1-g1)*o.Sigma2
	le.sumU += o.SumU
	le.sumV += o.SumV
	le.count += o.Count
	le.MarkSynced()
	return nil
}
