package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

func timeCfg(d, p int, window time.Duration) Config {
	return Config{Dim: d, Components: p, TimeWindow: window}
}

func TestObserveAtRequiresTimeWindow(t *testing.T) {
	en, _ := NewEngine(Config{Dim: 5, Components: 1})
	if _, err := en.ObserveAt(make([]float64, 5), time.Now()); err == nil {
		t.Fatal("expected error without TimeWindow")
	}
	if _, err := en.ObserveMaskedAt(make([]float64, 5), make([]bool, 5), time.Now()); err == nil {
		t.Fatal("expected error without TimeWindow")
	}
}

func TestTimeWindowValidation(t *testing.T) {
	cfg := Config{Dim: 5, Components: 1, TimeWindow: -time.Second}
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("negative TimeWindow accepted")
	}
}

func TestObserveAtValidatesInput(t *testing.T) {
	en, _ := NewEngine(timeCfg(5, 1, time.Minute))
	now := time.Now()
	if _, err := en.ObserveAt(make([]float64, 3), now); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := []float64{1, 2, math.NaN(), 4, 5}
	if _, err := en.ObserveAt(bad, now); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestObserveAtConvergesAtSteadyRate(t *testing.T) {
	rng := rand.New(rand.NewPCG(800, 1))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
	en, err := NewEngine(timeCfg(30, 2, 10*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1e9, 0)
	for i := 0; i < 3000; i++ {
		x, _ := m.sample()
		now = now.Add(time.Second)
		if _, err := en.ObserveAt(x, now); err != nil {
			t.Fatal(err)
		}
	}
	if aff := en.Eigensystem().SubspaceAffinity(m.basis); aff < 0.97 {
		t.Fatalf("time-windowed affinity = %v", aff)
	}
}

func TestObserveAtForgetsByWallClock(t *testing.T) {
	// Two regimes separated by a long silent gap: the gap alone (many time
	// constants) must wipe the old subspace even though few observations
	// arrive afterwards.
	rng := rand.New(rand.NewPCG(801, 2))
	m1 := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
	m2 := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
	en, err := NewEngine(timeCfg(30, 2, time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1e9, 0)
	for i := 0; i < 2000; i++ {
		x, _ := m1.sample()
		now = now.Add(100 * time.Millisecond)
		if _, err := en.ObserveAt(x, now); err != nil {
			t.Fatal(err)
		}
	}
	if aff := en.Eigensystem().SubspaceAffinity(m1.basis); aff < 0.95 {
		t.Fatalf("phase 1 affinity = %v", aff)
	}
	// One hour of silence = 60 time constants.
	now = now.Add(time.Hour)
	for i := 0; i < 600; i++ {
		x, _ := m2.sample()
		now = now.Add(100 * time.Millisecond)
		if _, err := en.ObserveAt(x, now); err != nil {
			t.Fatal(err)
		}
	}
	es := en.Eigensystem()
	if aff := es.SubspaceAffinity(m2.basis); aff < 0.85 {
		t.Fatalf("did not adapt after the gap: %v", aff)
	}
	if aff := es.SubspaceAffinity(m1.basis); aff > 0.5 {
		t.Fatalf("did not forget across the gap: %v", aff)
	}
}

func TestObserveAtBackwardsTimestampIsSimultaneous(t *testing.T) {
	rng := rand.New(rand.NewPCG(802, 3))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	en, _ := NewEngine(timeCfg(20, 2, time.Minute))
	now := time.Unix(1e9, 0)
	for i := 0; i < 200; i++ {
		x, _ := m.sample()
		if _, err := en.ObserveAt(x, now); err != nil {
			t.Fatal(err)
		}
	}
	// A stamp in the past must not panic or inject negative decay.
	x, _ := m.sample()
	if _, err := en.ObserveAt(x, now.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	if !en.Eigensystem().checkFinite() {
		t.Fatal("state corrupted by backwards timestamp")
	}
}

func TestObserveMaskedAtPatchesAndDecays(t *testing.T) {
	rng := rand.New(rand.NewPCG(803, 4))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
	cfg := timeCfg(30, 2, time.Minute)
	cfg.Extra = 1
	en, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1e9, 0)
	for i := 0; i < 2500; i++ {
		x, _ := m.sample()
		now = now.Add(50 * time.Millisecond)
		mask := randomMask(rng, 30, 0.15)
		if _, err := en.ObserveMaskedAt(x, mask, now); err != nil {
			t.Fatal(err)
		}
	}
	if aff := en.Eigensystem().SubspaceAffinity(m.basis); aff < 0.9 {
		t.Fatalf("masked time-window affinity = %v", aff)
	}
	if en.pendingAlpha != 0 {
		t.Fatal("pendingAlpha leaked")
	}
}
