package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"streampca/internal/mat"
)

func TestMergeTwoEnginesMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewPCG(200, 1))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
	mk := func() *Engine {
		en, err := NewEngine(testConfig(30, 2))
		if err != nil {
			t.Fatal(err)
		}
		return en
	}
	a, b := mk(), mk()
	// Interleave the same stream across two engines (random split).
	for i := 0; i < 6000; i++ {
		x, _ := m.sample()
		var err error
		if rng.Float64() < 0.5 {
			_, err = a.Observe(x)
		} else {
			_, err = b.Observe(x)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	snapB, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergeSnapshot(snapB); err != nil {
		t.Fatal(err)
	}
	if aff := a.Eigensystem().SubspaceAffinity(m.basis); aff < 0.97 {
		t.Fatalf("merged affinity = %v", aff)
	}
	if !a.Eigensystem().checkFinite() {
		t.Fatal("merge produced non-finite state")
	}
	if a.SinceSync() != 0 {
		t.Fatal("merge should reset SinceSync")
	}
}

func TestMergeMeanIsWeightedAverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(201, 2))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	a, _ := NewEngine(testConfig(20, 2))
	b, _ := NewEngine(testConfig(20, 2))
	feedN(t, a, m, 400)
	feedN(t, b, m, 400)
	sa, _ := a.Snapshot()
	sb, _ := b.Snapshot()
	g1 := sa.SumV / (sa.SumV + sb.SumV)
	want := mat.Lerp(make([]float64, 20), g1, sa.Mean, 1-g1, sb.Mean)
	if err := a.MergeSnapshot(sb); err != nil {
		t.Fatal(err)
	}
	if !mat.EqualApproxVec(a.Eigensystem().Mean, want, 1e-12) {
		t.Fatal("merged mean is not the v-weighted average")
	}
}

func TestMergeWeightsFavorHeavierSystem(t *testing.T) {
	// Engine A sees 10x the data of B drawn from a different subspace; the
	// merge should stay close to A's subspace.
	rng := rand.New(rand.NewPCG(202, 3))
	mA := newModel(rng, 25, 2, []float64{4, 1}, 0.05)
	mB := newModel(rng, 25, 2, []float64{4, 1}, 0.05)
	cfg := Config{Dim: 25, Components: 2, Alpha: 1 - 1.0/5000}
	a, _ := NewEngine(cfg)
	b, _ := NewEngine(cfg)
	feedN(t, a, mA, 5000)
	feedN(t, b, mB, 100)
	sb, _ := b.Snapshot()
	if err := a.MergeSnapshot(sb); err != nil {
		t.Fatal(err)
	}
	affA := a.Eigensystem().SubspaceAffinity(mA.basis)
	affB := a.Eigensystem().SubspaceAffinity(mB.basis)
	if affA < 0.8 || affA <= affB {
		t.Fatalf("merge ignored weights: affA=%v affB=%v", affA, affB)
	}
}

func TestMergeExactCapturesMeanShift(t *testing.T) {
	// Two populations with well-separated means: the pooled covariance must
	// contain the mean-difference direction, which only the exact merge
	// (eq. 15) captures.
	rng := rand.New(rand.NewPCG(203, 4))
	d := 20
	shift := make([]float64, d)
	shift[0] = 10 // separation along e0
	m1 := newModel(rng, d, 2, []float64{1, 0.5}, 0.05)
	m2 := newModel(rng, d, 2, []float64{1, 0.5}, 0.05)
	copy(m2.mean, m1.mean)
	mat.Axpy(1, shift, m2.mean)

	cfg := testConfig(d, 2)
	a, _ := NewEngine(cfg)
	b, _ := NewEngine(cfg)
	feedN(t, a, m1, 2000)
	feedN(t, b, m2, 2000)
	sb, _ := b.Snapshot()

	exact := a
	if err := exact.MergeSnapshot(sb); err != nil {
		t.Fatal(err)
	}
	es := exact.Eigensystem()
	// Top eigenvector should align with the shift direction e0.
	top := es.Component(0)
	if c := math.Abs(top[0]); c < 0.9 {
		t.Fatalf("exact merge missed mean-shift direction: |e0·v1| = %v", c)
	}
}

func TestMergeApproxIgnoresMeanShift(t *testing.T) {
	rng := rand.New(rand.NewPCG(204, 5))
	d := 20
	m1 := newModel(rng, d, 2, []float64{1, 0.5}, 0.05)
	m2 := newModel(rng, d, 2, []float64{1, 0.5}, 0.05)
	copy(m2.basis.Data(), m1.basis.Data())
	copy(m2.mean, m1.mean)
	m2.mean[0] += 10

	cfg := testConfig(d, 2)
	a, _ := NewEngine(cfg)
	b, _ := NewEngine(cfg)
	feedN(t, a, m1, 2000)
	feedN(t, b, m2, 2000)
	sb, _ := b.Snapshot()
	if err := a.MergeApprox(sb); err != nil {
		t.Fatal(err)
	}
	// The shared true basis should still dominate: approx merge keeps the
	// component subspaces and ignores the mean gap.
	if aff := a.Eigensystem().SubspaceAffinity(m1.basis); aff < 0.9 {
		t.Fatalf("approx merge broke shared subspace: %v", aff)
	}
}

func TestMergeApproxAgreesWithExactWhenMeansMatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(205, 6))
	m := newModel(rng, 25, 3, []float64{9, 4, 1}, 0.05)
	cfg := testConfig(25, 3)
	a1, _ := NewEngine(cfg)
	a2, _ := NewEngine(cfg)
	b, _ := NewEngine(cfg)
	feedN(t, a1, m, 2000)
	feedN(t, b, m, 2000)
	// a2 replays a1's state.
	s1, _ := a1.Snapshot()
	a2.state = *s1.Clone()
	a2.ready = true
	sb, _ := b.Snapshot()
	if err := a1.MergeSnapshot(sb); err != nil {
		t.Fatal(err)
	}
	if err := a2.MergeApprox(sb); err != nil {
		t.Fatal(err)
	}
	v1, v2 := a1.Eigensystem().Values, a2.Eigensystem().Values
	for i := range v1 {
		if math.Abs(v1[i]-v2[i]) > 0.05*(v1[i]+1e-12) {
			t.Fatalf("eigenvalues diverge between exact and approx: %v vs %v", v1, v2)
		}
	}
}

func TestMergeErrorCases(t *testing.T) {
	rng := rand.New(rand.NewPCG(206, 7))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	a, _ := NewEngine(testConfig(20, 2))
	if err := a.MergeSnapshot(&Eigensystem{}); err == nil {
		t.Fatal("merge into unready engine should fail")
	}
	feedN(t, a, m, 200)
	snap, _ := a.Snapshot()

	small := newModel(rng, 10, 2, []float64{4, 1}, 0.05)
	b, _ := NewEngine(testConfig(10, 2))
	feedN(t, b, small, 200)
	sb, _ := b.Snapshot()
	if err := a.MergeSnapshot(sb); err == nil {
		t.Fatal("dimension mismatch should fail")
	}

	bad := snap.Clone()
	bad.Values[0] = math.NaN()
	if err := a.MergeSnapshot(bad); err == nil {
		t.Fatal("non-finite snapshot should be rejected")
	}

	zero := snap.Clone()
	zero.SumV = 0
	a.state.SumV = 0
	if err := a.MergeSnapshot(zero); err == nil {
		t.Fatal("zero total weight should fail")
	}
}

func TestMergeManyMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewPCG(207, 8))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	var snaps []*Eigensystem
	for i := 0; i < 4; i++ {
		en, _ := NewEngine(testConfig(20, 2))
		feedN(t, en, m, 1000)
		s, _ := en.Snapshot()
		snaps = append(snaps, s)
	}
	merged, err := MergeMany(snaps)
	if err != nil {
		t.Fatal(err)
	}
	if aff := merged.SubspaceAffinity(m.basis); aff < 0.97 {
		t.Fatalf("MergeMany affinity = %v", aff)
	}
	wantCount := int64(0)
	for _, s := range snaps {
		wantCount += s.Count
	}
	if merged.Count != wantCount {
		t.Fatalf("Count = %d, want %d", merged.Count, wantCount)
	}
	if _, err := MergeMany(nil); err == nil {
		t.Fatal("empty MergeMany should fail")
	}
}

func TestMergeAccumulatesSums(t *testing.T) {
	rng := rand.New(rand.NewPCG(208, 9))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	a, _ := NewEngine(Config{Dim: 20, Components: 2}) // alpha = 1
	b, _ := NewEngine(Config{Dim: 20, Components: 2})
	feedN(t, a, m, 300)
	feedN(t, b, m, 500)
	sa, _ := a.Snapshot()
	sb, _ := b.Snapshot()
	if err := a.MergeSnapshot(sb); err != nil {
		t.Fatal(err)
	}
	es := a.Eigensystem()
	if math.Abs(es.SumU-(sa.SumU+sb.SumU)) > 1e-9 {
		t.Fatalf("SumU = %v, want %v", es.SumU, sa.SumU+sb.SumU)
	}
	if es.Count != 800 {
		t.Fatalf("Count = %d", es.Count)
	}
}
