package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"streampca/internal/eig"
	"streampca/internal/mat"
	"streampca/internal/robust"
)

// model is a ground-truth low-rank Gaussian generator used across the core
// tests: x = mean + Σ √λⱼ·zⱼ·bⱼ + noise·ε, with optional gross outliers.
type model struct {
	d, p    int
	mean    []float64
	basis   *mat.Dense // d×p orthonormal
	lambda  []float64
	noise   float64
	outlier float64 // probability of replacing a sample with garbage
	outAmp  float64
	rng     *rand.Rand
}

func newModel(rng *rand.Rand, d, p int, lambda []float64, noise float64) *model {
	raw := mat.NewDense(d, p)
	for i := 0; i < d; i++ {
		for j := 0; j < p; j++ {
			raw.Set(i, j, rng.NormFloat64())
		}
	}
	eig.Orthonormalize(raw)
	mean := make([]float64, d)
	for i := range mean {
		mean[i] = rng.NormFloat64()
	}
	return &model{
		d: d, p: p, mean: mean, basis: raw,
		lambda: lambda, noise: noise, outAmp: 100, rng: rng,
	}
}

// sample returns a fresh observation and whether it is an injected outlier.
func (m *model) sample() ([]float64, bool) {
	x := mat.CopyVec(m.mean)
	if m.outlier > 0 && m.rng.Float64() < m.outlier {
		for i := range x {
			x[i] = m.outAmp * m.rng.NormFloat64()
		}
		return x, true
	}
	col := make([]float64, m.d)
	for j := 0; j < m.p; j++ {
		m.basis.Col(j, col)
		mat.Axpy(math.Sqrt(m.lambda[j])*m.rng.NormFloat64(), col, x)
	}
	for i := range x {
		x[i] += m.noise * m.rng.NormFloat64()
	}
	return x, false
}

func (m *model) samples(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i], _ = m.sample()
	}
	return out
}

func testConfig(d, p int) Config {
	return Config{Dim: d, Components: p, Alpha: 1 - 1.0/500}
}

func feedN(t testing.TB, en *Engine, m *model, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		x, _ := m.sample()
		if _, err := en.Observe(x); err != nil {
			t.Fatalf("Observe #%d: %v", i, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Dim: 0, Components: 1},
		{Dim: 10, Components: 0},
		{Dim: 10, Components: 3, Extra: -1},
		{Dim: 10, Components: 8, Extra: 2},
		{Dim: 10, Components: 2, Alpha: 1.5},
		{Dim: 10, Components: 2, Alpha: -0.1},
		{Dim: 10, Components: 2, Delta: 1.2},
		{Dim: 10, Components: 2, Delta: 1}, // δ=1 without explicit rho
		{Dim: 10, Components: 2, InitSize: 2},
		{Dim: 10, Components: 2, OutlierT: -3},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, cfg)
		}
	}
	good := Config{Dim: 10, Components: 2}
	en, err := NewEngine(good)
	if err != nil {
		t.Fatal(err)
	}
	cfg := en.Config()
	if cfg.Alpha != 1 || cfg.Delta != 0.5 || cfg.Rho == nil || cfg.InitSize < 3 || cfg.OutlierT <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestConfigClassicDefaults(t *testing.T) {
	cfg := Config{Dim: 10, Components: 2, Rho: robust.Classic{}}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Delta != 1 {
		t.Fatalf("classic delta default = %v, want 1", cfg.Delta)
	}
}

func TestWindowN(t *testing.T) {
	c := Config{Alpha: 1}
	if c.WindowN() != 0 {
		t.Fatal("alpha=1 should report infinite window as 0")
	}
	c.Alpha = 1 - 1.0/250
	if math.Abs(c.WindowN()-250) > 1e-9 {
		t.Fatalf("WindowN = %v", c.WindowN())
	}
}

func TestWarmupLifecycle(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 1))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.1)
	cfg := testConfig(20, 2)
	cfg.InitSize = 12
	en, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 12; i++ {
		x, _ := m.sample()
		u, err := en.Observe(x)
		if err != nil {
			t.Fatal(err)
		}
		if !u.Warmup || u.Initialized || en.Ready() {
			t.Fatalf("obs %d: unexpected lifecycle %+v ready=%v", i, u, en.Ready())
		}
		if en.Count() != int64(i) {
			t.Fatalf("Count = %d, want %d", en.Count(), i)
		}
	}
	x, _ := m.sample()
	u, err := en.Observe(x)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Initialized || !en.Ready() {
		t.Fatalf("expected initialization on obs 12: %+v", u)
	}
	if _, err := en.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if en.Count() != 12 {
		t.Fatalf("Count = %d", en.Count())
	}
}

func TestSnapshotBeforeReadyErrors(t *testing.T) {
	en, _ := NewEngine(Config{Dim: 5, Components: 1})
	if _, err := en.Snapshot(); err == nil {
		t.Fatal("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Eigensystem should panic before ready")
		}
	}()
	en.Eigensystem()
}

func TestObserveInputValidation(t *testing.T) {
	en, _ := NewEngine(Config{Dim: 5, Components: 1})
	if _, err := en.Observe([]float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := en.Observe([]float64{1, 2, math.NaN(), 4, 5}); err == nil {
		t.Fatal("NaN should error")
	}
	if _, err := en.Observe([]float64{1, 2, math.Inf(1), 4, 5}); err == nil {
		t.Fatal("Inf should error")
	}
}

func TestConvergenceCleanData(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 2))
	m := newModel(rng, 40, 3, []float64{9, 4, 1}, 0.05)
	en, err := NewEngine(testConfig(40, 3))
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, en, m, 4000)
	es := en.Eigensystem()
	if aff := es.SubspaceAffinity(m.basis); aff < 0.98 {
		t.Fatalf("subspace affinity = %v, want > 0.98", aff)
	}
	if !mat.EqualApproxVec(es.Mean, m.mean, 0.15) {
		t.Fatal("mean estimate off")
	}
	for j := 0; j < 2; j++ {
		if es.Values[j] < es.Values[j+1] {
			t.Fatalf("eigenvalues not descending: %v", es.Values[:3])
		}
	}
	if !es.checkFinite() {
		t.Fatal("non-finite state")
	}
}

func TestClassicPathConvergence(t *testing.T) {
	rng := rand.New(rand.NewPCG(102, 3))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
	cfg := Config{Dim: 30, Components: 2, Rho: robust.Classic{}, Alpha: 1 - 1.0/500}
	en, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, en, m, 3000)
	if aff := en.Eigensystem().SubspaceAffinity(m.basis); aff < 0.98 {
		t.Fatalf("classic affinity = %v", aff)
	}
}

func TestRobustBeatsClassicUnderOutliers(t *testing.T) {
	mk := func(seed uint64) *model {
		rng := rand.New(rand.NewPCG(seed, 4))
		m := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
		m.outlier = 0.10
		return m
	}
	run := func(cfg Config, m *model) float64 {
		en, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		feedN(t, en, m, 5000)
		return en.Eigensystem().SubspaceAffinity(m.basis)
	}
	robustCfg := testConfig(30, 2)
	classicCfg := Config{Dim: 30, Components: 2, Rho: robust.Classic{}, Alpha: 1 - 1.0/500}
	affR := run(robustCfg, mk(103))
	affC := run(classicCfg, mk(103))
	if affR < 0.95 {
		t.Fatalf("robust affinity under contamination = %v", affR)
	}
	if affC > affR-0.1 {
		t.Fatalf("classic (%v) should be much worse than robust (%v)", affC, affR)
	}
}

func TestOutlierFlagging(t *testing.T) {
	rng := rand.New(rand.NewPCG(104, 5))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
	en, err := NewEngine(testConfig(30, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Converge on clean data first.
	feedN(t, en, m, 1500)
	m.outlier = 0.10
	var truePos, falsePos, outliers, inliers int
	for i := 0; i < 3000; i++ {
		x, isOut := m.sample()
		u, err := en.Observe(x)
		if err != nil {
			t.Fatal(err)
		}
		if isOut {
			outliers++
			if u.Outlier {
				truePos++
			}
			if u.Weight != 0 {
				t.Fatalf("gross outlier got weight %v", u.Weight)
			}
		} else {
			inliers++
			if u.Outlier {
				falsePos++
			}
		}
	}
	if outliers == 0 {
		t.Fatal("test produced no outliers")
	}
	if rate := float64(truePos) / float64(outliers); rate < 0.95 {
		t.Fatalf("outlier detection rate = %v", rate)
	}
	if rate := float64(falsePos) / float64(inliers); rate > 0.35 {
		t.Fatalf("false positive rate = %v", rate)
	}
}

func TestSigma2Stable(t *testing.T) {
	rng := rand.New(rand.NewPCG(105, 6))
	m := newModel(rng, 30, 2, []float64{4, 1}, 0.1)
	en, err := NewEngine(testConfig(30, 2))
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, en, m, 2000)
	s1 := en.Eigensystem().Sigma2
	feedN(t, en, m, 2000)
	s2 := en.Eigensystem().Sigma2
	if s1 <= 0 || s2 <= 0 {
		t.Fatalf("non-positive scale: %v %v", s1, s2)
	}
	if s2 > 3*s1 || s1 > 3*s2 {
		t.Fatalf("scale not stable: %v then %v", s1, s2)
	}
}

func TestForgettingTracksSubspaceChange(t *testing.T) {
	rng := rand.New(rand.NewPCG(106, 7))
	m1 := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
	m2 := newModel(rng, 30, 2, []float64{4, 1}, 0.05)
	cfg := Config{Dim: 30, Components: 2, Alpha: 1 - 1.0/200}
	en, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feedN(t, en, m1, 2000)
	if aff := en.Eigensystem().SubspaceAffinity(m1.basis); aff < 0.95 {
		t.Fatalf("phase 1 affinity = %v", aff)
	}
	feedN(t, en, m2, 4000)
	es := en.Eigensystem()
	if aff := es.SubspaceAffinity(m2.basis); aff < 0.9 {
		t.Fatalf("did not adapt to new subspace: affinity = %v", aff)
	}
	if aff := es.SubspaceAffinity(m1.basis); aff > 0.5 {
		t.Fatalf("did not forget old subspace: affinity = %v", aff)
	}
}

func TestShouldSyncCriterion(t *testing.T) {
	rng := rand.New(rand.NewPCG(107, 8))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	cfg := Config{Dim: 20, Components: 2, Alpha: 1 - 1.0/100} // N = 100
	en, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if en.ShouldSync(1.5) {
		t.Fatal("unready engine should not sync")
	}
	feedN(t, en, m, cfg.InitSize)
	en.MarkSynced()
	feedN(t, en, m, 100)
	if en.ShouldSync(1.5) {
		t.Fatalf("100 obs < 1.5·100 should not sync (since=%d)", en.SinceSync())
	}
	feedN(t, en, m, 60)
	if !en.ShouldSync(1.5) {
		t.Fatalf("160 obs > 150 should sync (since=%d)", en.SinceSync())
	}
	en.MarkSynced()
	if en.SinceSync() != 0 {
		t.Fatal("MarkSynced did not reset")
	}
}

func TestShouldSyncInfiniteMemoryAlwaysTrue(t *testing.T) {
	rng := rand.New(rand.NewPCG(108, 9))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	en, _ := NewEngine(Config{Dim: 20, Components: 2})
	feedN(t, en, m, 20)
	if !en.ShouldSync(1.5) {
		t.Fatal("alpha=1 engines may always sync")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	rng := rand.New(rand.NewPCG(109, 10))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	en, _ := NewEngine(testConfig(20, 2))
	feedN(t, en, m, 100)
	snap, err := en.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := snap.Clone()
	feedN(t, en, m, 500)
	if !mat.EqualApproxVec(snap.Mean, before.Mean, 0) || !snap.Vectors.EqualApprox(before.Vectors, 0) {
		t.Fatal("snapshot mutated by further observations")
	}
}

func TestBasisStaysOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewPCG(110, 11))
	m := newModel(rng, 25, 3, []float64{9, 4, 1}, 0.05)
	cfg := testConfig(25, 3)
	cfg.ReorthEvery = 128
	en, _ := NewEngine(cfg)
	feedN(t, en, m, 5000)
	if err := eig.OrthonormalityError(en.Eigensystem().Vectors); err > 1e-8 {
		t.Fatalf("basis drifted: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Eigensystem {
		rng := rand.New(rand.NewPCG(111, 12))
		m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
		en, _ := NewEngine(testConfig(20, 2))
		feedN(t, en, m, 800)
		return en.Eigensystem().Clone()
	}
	a, b := run(), run()
	if !mat.EqualApproxVec(a.Mean, b.Mean, 0) || !a.Vectors.EqualApprox(b.Vectors, 0) ||
		!mat.EqualApproxVec(a.Values, b.Values, 0) || a.Sigma2 != b.Sigma2 {
		t.Fatal("engine is not deterministic for identical input")
	}
}

func TestUpdateSequenceNumbers(t *testing.T) {
	rng := rand.New(rand.NewPCG(112, 13))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	cfg := testConfig(20, 2)
	cfg.InitSize = 10
	en, _ := NewEngine(cfg)
	var last int64
	for i := 0; i < 50; i++ {
		x, _ := m.sample()
		u, err := en.Observe(x)
		if err != nil {
			t.Fatal(err)
		}
		if u.Seq != last+1 {
			t.Fatalf("Seq = %d after %d", u.Seq, last)
		}
		last = u.Seq
	}
}

func TestObserveAutoRoutesNaN(t *testing.T) {
	rng := rand.New(rand.NewPCG(113, 14))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.05)
	en, _ := NewEngine(testConfig(20, 2))
	feedN(t, en, m, 200)
	x, _ := m.sample()
	x[3] = math.NaN()
	x[7] = math.NaN()
	u, err := en.ObserveAuto(x)
	if err != nil {
		t.Fatal(err)
	}
	if u.Patched != 2 {
		t.Fatalf("Patched = %d, want 2", u.Patched)
	}
	// Complete vectors go down the plain path.
	y, _ := m.sample()
	u, err = en.ObserveAuto(y)
	if err != nil || u.Patched != 0 {
		t.Fatalf("complete vector mishandled: %+v, %v", u, err)
	}
}

func TestEigensystemHelpers(t *testing.T) {
	rng := rand.New(rand.NewPCG(114, 15))
	m := newModel(rng, 20, 2, []float64{4, 1}, 0.02)
	en, _ := NewEngine(testConfig(20, 2))
	feedN(t, en, m, 2000)
	es := en.Eigensystem()

	x, _ := m.sample()
	coef := es.Project(x)
	if len(coef) != es.NumComponents() {
		t.Fatal("Project length")
	}
	rec := es.Reconstruct(coef[:2])
	// Reconstruction from a converged 2-component basis of 2-rank data
	// should be close.
	diff := mat.SubTo(make([]float64, 20), rec, x)
	if mat.Norm2(diff) > 1.0 {
		t.Fatalf("reconstruction error %v", mat.Norm2(diff))
	}
	r2 := es.Residual2(x, 2)
	if r2 < 0 || r2 > 1 {
		t.Fatalf("Residual2 = %v", r2)
	}
	if es.Dim() != 20 || es.NumComponents() != 2 {
		t.Fatal("dims wrong")
	}
	if s := es.String(); len(s) == 0 {
		t.Fatal("empty String")
	}
	if es.EffectiveWindow() <= 0 {
		t.Fatal("EffectiveWindow should be positive")
	}
}

func TestReconstructTooManyCoefsPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(115, 16))
	m := newModel(rng, 10, 2, []float64{4, 1}, 0.05)
	en, _ := NewEngine(testConfig(10, 2))
	feedN(t, en, m, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	en.Eigensystem().Reconstruct(make([]float64, 5))
}

func TestDegenerateWarmupRecovers(t *testing.T) {
	// A warm-up buffer of identical vectors cannot seed a basis; the engine
	// must report the problem and keep accepting data until it can.
	en, _ := NewEngine(Config{Dim: 8, Components: 2, InitSize: 6})
	same := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	var sawErr bool
	for i := 0; i < 6; i++ {
		if _, err := en.Observe(same); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("degenerate warm-up should surface an error")
	}
	if en.Ready() {
		t.Fatal("engine should not be ready")
	}
	// Now real data arrives; engine should eventually initialize.
	rng := rand.New(rand.NewPCG(116, 17))
	m := newModel(rng, 8, 2, []float64{4, 1}, 0.1)
	for i := 0; i < 20 && !en.Ready(); i++ {
		x, _ := m.sample()
		en.Observe(x)
	}
	if !en.Ready() {
		t.Fatal("engine never recovered from degenerate warm-up")
	}
}

func BenchmarkEngineObserve250(b *testing.B)  { benchObserve(b, 250, 5) }
func BenchmarkEngineObserve500(b *testing.B)  { benchObserve(b, 500, 5) }
func BenchmarkEngineObserve1000(b *testing.B) { benchObserve(b, 1000, 5) }
func BenchmarkEngineObserve2000(b *testing.B) { benchObserve(b, 2000, 5) }

func benchObserve(b *testing.B, d, p int) {
	rng := rand.New(rand.NewPCG(1, uint64(d)))
	lambda := make([]float64, p)
	for i := range lambda {
		lambda[i] = float64(p - i)
	}
	m := newModel(rng, d, p, lambda, 0.05)
	en, err := NewEngine(Config{Dim: d, Components: p, Alpha: 1 - 1.0/5000})
	if err != nil {
		b.Fatal(err)
	}
	// Pre-generate the stream so sampling cost is excluded.
	xs := m.samples(512)
	for _, x := range xs[:en.Config().InitSize+1] {
		en.Observe(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := en.Observe(xs[i%len(xs)]); err != nil {
			b.Fatal(err)
		}
	}
}
