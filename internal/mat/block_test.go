package mat

import (
	"math/rand/v2"
	"testing"
)

// kernelShapes are the deliberate edge shapes: degenerate 1×n and n×1,
// exact multiples of the 4-wide tile, off-by-one fringes on every side, and
// reduction dims straddling the ncBlock cache block.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 17, 1},
	{1, 5, 33},
	{33, 5, 1},
	{4, 4, 4},
	{8, 16, 8},
	{7, 9, 5},
	{13, 3, 21},
	{16, ncBlock + 7, 12},
	{5, ncBlock, 4},
	{64, 31, 48},
	{50, 6, 6}, // the engine's d×(k+1)·(k+1) SVD shape
}

// TestBlockedMulMatchesNaive asserts the blocked GEMM agrees with the naive
// triple loop to 1e-12 over fixed edge shapes and randomized shapes.
func TestBlockedMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 1))
	check := func(m, k, n int) {
		t.Helper()
		a := randDense(rng, m, k)
		b := randDense(rng, k, n)
		want := naiveMul(a, b)

		got := NewDense(m, n)
		mulBlocked(got, a, b, 0, m)
		if !got.EqualApprox(want, 1e-12) {
			t.Fatalf("mulBlocked mismatch at %dx%dx%d", m, k, n)
		}
		ref := NewDense(m, n)
		mulRows(ref, a, b, 0, m)
		if !ref.EqualApprox(want, 1e-12) {
			t.Fatalf("mulRows reference mismatch at %dx%dx%d", m, k, n)
		}
		if !Mul(nil, a, b).EqualApprox(want, 1e-12) {
			t.Fatalf("Mul mismatch at %dx%dx%d", m, k, n)
		}
		if !MulParallel(nil, a, b).EqualApprox(want, 1e-12) {
			t.Fatalf("MulParallel mismatch at %dx%dx%d", m, k, n)
		}
	}
	for _, s := range kernelShapes {
		check(s.m, s.k, s.n)
	}
	for trial := 0; trial < 60; trial++ {
		check(1+rng.IntN(40), 1+rng.IntN(2*ncBlock), 1+rng.IntN(40))
	}
}

// TestBlockedMulPartialRows asserts the row-ranged blocked kernel (the unit
// MulParallel partitions across goroutines) fills exactly its assigned rows.
func TestBlockedMulPartialRows(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 2))
	a := randDense(rng, 23, 11)
	b := randDense(rng, 11, 9)
	want := naiveMul(a, b)
	got := NewDense(23, 9)
	for _, cut := range []int{0, 3, 4, 11, 20, 23} {
		got.Zero()
		mulBlocked(got, a, b, 0, cut)
		mulBlocked(got, a, b, cut, 23)
		if !got.EqualApprox(want, 1e-12) {
			t.Fatalf("partitioned mulBlocked mismatch at cut %d", cut)
		}
	}
}

// TestBlockedTransposeKernels asserts the transpose-aware blocked kernels
// match products computed through explicit transposes.
func TestBlockedTransposeKernels(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 3))
	for trial := 0; trial < 40; trial++ {
		r := 1 + rng.IntN(3*ncBlock/2)
		m := 1 + rng.IntN(30)
		n := 1 + rng.IntN(30)

		a := randDense(rng, r, m)
		b := randDense(rng, r, n)
		want := naiveMul(a.T(), b)
		if got := MulTA(nil, a, b); !got.EqualApprox(want, 1e-11) {
			t.Fatalf("MulTA mismatch at r=%d m=%d n=%d", r, m, n)
		}
		gotS := NewDense(m, n)
		mulTABlocked(gotS, a, b)
		if !gotS.EqualApprox(want, 1e-11) {
			t.Fatalf("mulTABlocked mismatch at r=%d m=%d n=%d", r, m, n)
		}

		c := randDense(rng, m, r)
		d := randDense(rng, n, r)
		wantBT := naiveMul(c, d.T())
		if got := MulBT(nil, c, d); !got.EqualApprox(wantBT, 1e-11) {
			t.Fatalf("MulBT mismatch at m=%d k=%d n=%d", m, r, n)
		}
		gotBT := NewDense(m, n)
		mulBTBlocked(gotBT, c, d)
		if !gotBT.EqualApprox(wantBT, 1e-11) {
			t.Fatalf("mulBTBlocked mismatch at m=%d k=%d n=%d", m, r, n)
		}
	}
}

// TestGramParallelScratch asserts the scratch-driven parallel Gram matches
// the serial kernel for awkward worker counts.
func TestGramParallelScratch(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 4))
	for _, shape := range []struct{ r, c int }{{1, 3}, {7, 5}, {100, 13}, {257, 8}} {
		a := randDense(rng, shape.r, shape.c)
		want := Gram(nil, a)
		for _, nw := range []int{1, 2, 3, 8} {
			partials := make([]*Dense, nw)
			for i := range partials {
				partials[i] = NewDense(shape.c, shape.c)
			}
			got := GramParallelScratch(NewDense(shape.c, shape.c), a, partials)
			if !got.EqualApprox(want, 1e-12) {
				t.Fatalf("GramParallelScratch mismatch at %dx%d nw=%d", shape.r, shape.c, nw)
			}
		}
	}
}

// TestMulZeroAllocs asserts the dst-provided product paths are allocation
// free — the contract the engine's steady state depends on.
func TestMulZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 5))
	a := randDense(rng, 48, 32)
	b := randDense(rng, 32, 24)
	dst := NewDense(48, 24)
	if n := testing.AllocsPerRun(50, func() { Mul(dst, a, b) }); n != 0 {
		t.Fatalf("Mul with dst allocated %v times per run", n)
	}
	ta := NewDense(32, 24)
	bb := randDense(rng, 48, 24)
	if n := testing.AllocsPerRun(50, func() { MulTA(ta, a, bb) }); n != 0 {
		t.Fatalf("MulTA with dst allocated %v times per run", n)
	}
	bt := NewDense(48, 48)
	cc := randDense(rng, 48, 32)
	if n := testing.AllocsPerRun(50, func() { MulBT(bt, a, cc) }); n != 0 {
		t.Fatalf("MulBT with dst allocated %v times per run", n)
	}
	small := randDense(rng, 3, 3)
	sdst := NewDense(3, 3)
	if n := testing.AllocsPerRun(50, func() { Mul(sdst, small, small) }); n != 0 {
		t.Fatalf("small Mul with dst allocated %v times per run", n)
	}
}

func BenchmarkMulBlocked(b *testing.B) {
	rng := rand.New(rand.NewPCG(101, 6))
	for _, n := range []int{64, 256} {
		a := randDense(rng, n, n)
		c := randDense(rng, n, n)
		dst := NewDense(n, n)
		b.Run(sizeName("blocked", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mulBlocked(dst, a, c, 0, n)
			}
		})
		b.Run(sizeName("naive", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mulRows(dst, a, c, 0, n)
			}
		})
	}
}

func sizeName(kind string, n int) string {
	return kind + "-" + string(rune('0'+n/100)) + string(rune('0'+(n/10)%10)) + string(rune('0'+n%10))
}
