package mat

// Panel kernels for the block-incremental eigensystem update: the rank-c
// rebuild needs the c×c inner products of the chunk's centered rows (SyrkRows)
// and the d×k panel accumulation E += Yᵀ·W (AddMulTARows). Both operate on a
// leading-row prefix of their inputs so a fixed-capacity workspace matrix can
// serve every chunk size without re-slicing (which would allocate a header on
// the hot path). Property-tested against MulBT/MulTA in panel_test.go.

// SyrkRows computes the leading r×r block of dst = A·Aᵀ from the first r rows
// of a, exploiting symmetry (each off-diagonal dot is computed once and
// mirrored). dst must be at least r×r; entries outside the leading block are
// left untouched. It performs no heap allocations.
//
//streampca:noalloc
func SyrkRows(dst, a *Dense, r int) {
	if r < 0 || r > a.rows {
		panic("mat: SyrkRows row count out of range")
	}
	if dst.rows < r || dst.cols < r {
		panic("mat: SyrkRows destination too small")
	}
	n := dst.cols
	kk := a.cols
	for i := 0; i < r; i++ {
		ai := a.data[i*kk : (i+1)*kk]
		di := dst.data[i*n : i*n+r]
		for j := i; j < r; j++ {
			v := Dot(ai, a.data[j*kk:(j+1)*kk])
			di[j] = v
			dst.data[j*n+i] = v
		}
	}
}

// AddMulTARows accumulates dst += Aᵀ·B using only the first r rows of a and b:
// a is (≥r)×m, b is (≥r)×n, dst is m×n. The reduction over rows is 4-way
// unrolled like mulTABlocked, keeping four streaming B rows live per pass over
// the destination — this is the blocked d×k panel product of the rank-c basis
// update E ← E·M + Yᵀ·W, where a holds the chunk's centered rows and b the
// per-row update coefficients. It performs no heap allocations.
//
//streampca:noalloc
func AddMulTARows(dst, a, b *Dense, r int) {
	if r < 0 || r > a.rows || r > b.rows {
		panic("mat: AddMulTARows row count out of range")
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic("mat: AddMulTARows shape mismatch")
	}
	m, n := a.cols, b.cols
	k := 0
	for ; k+3 < r; k += 4 {
		ak0 := a.data[k*m : (k+1)*m]
		ak1 := a.data[(k+1)*m : (k+2)*m]
		ak2 := a.data[(k+2)*m : (k+3)*m]
		ak3 := a.data[(k+3)*m : (k+4)*m]
		bk0 := b.data[k*n : (k+1)*n]
		bk1 := b.data[(k+1)*n : (k+2)*n]
		bk2 := b.data[(k+2)*n : (k+3)*n]
		bk3 := b.data[(k+3)*n : (k+4)*n]
		for i := 0; i < m; i++ {
			v0, v1, v2, v3 := ak0[i], ak1[i], ak2[i], ak3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			di := dst.data[i*n : (i+1)*n]
			for j, d := range di {
				di[j] = d + v0*bk0[j] + v1*bk1[j] + v2*bk2[j] + v3*bk3[j]
			}
		}
	}
	for ; k < r; k++ {
		ak := a.data[k*m : (k+1)*m]
		bk := b.data[k*n : (k+1)*n]
		for i, aki := range ak {
			if aki == 0 {
				continue
			}
			Axpy(aki, bk, dst.data[i*n:(i+1)*n])
		}
	}
}
