package mat

// Panel kernels for the block-incremental eigensystem update: the rank-c
// rebuild needs the c×c inner products of the chunk's centered rows (SyrkRows)
// and the d×k panel accumulation E += Yᵀ·W (AddMulTARows). Both operate on a
// leading-row prefix of their inputs so a fixed-capacity workspace matrix can
// serve every chunk size without re-slicing (which would allocate a header on
// the hot path). Property-tested against MulBT/MulTA in panel_test.go.

// SyrkRows computes the leading r×r block of dst = A·Aᵀ from the first r rows
// of a, exploiting symmetry (each off-diagonal dot is computed once and
// mirrored). dst must be at least r×r; entries outside the leading block are
// left untouched. It performs no heap allocations.
//
//streampca:noalloc
func SyrkRows(dst, a *Dense, r int) {
	if r < 0 || r > a.rows {
		panic("mat: SyrkRows row count out of range")
	}
	if dst.rows < r || dst.cols < r {
		panic("mat: SyrkRows destination too small")
	}
	syrkRowsSpan(dst, a, r, 0, r)
}

// AddMulTARows accumulates dst += Aᵀ·B using only the first r rows of a and b:
// a is (≥r)×m, b is (≥r)×n, dst is m×n. The reduction over rows is 4-way
// unrolled like mulTABlocked, keeping four streaming B rows live per pass over
// the destination — this is the blocked d×k panel product of the rank-c basis
// update E ← E·M + Yᵀ·W, where a holds the chunk's centered rows and b the
// per-row update coefficients. It performs no heap allocations.
//
//streampca:noalloc
func AddMulTARows(dst, a, b *Dense, r int) {
	if r < 0 || r > a.rows || r > b.rows {
		panic("mat: AddMulTARows row count out of range")
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic("mat: AddMulTARows shape mismatch")
	}
	addMulTARowsSpan(dst, a, b, r, 0, a.cols)
}
