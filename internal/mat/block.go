package mat

// Cache-blocked matrix kernels. The micro-kernel holds a 2-row × 4-step
// register tile: every pass folds four reduction steps into two destination
// rows, cutting C read-modify-write traffic 4× and reusing each loaded B
// element across two rows, while the destination panel is blocked to ncBlock
// columns so the C segments stay L1-resident. The tile is deliberately
// narrow — the Go compiler spills wider accumulator tiles, which costs more
// than the saved traffic. mulRows in mul.go is the naive reference these
// kernels are property-tested against.
const (
	// ncBlock bounds the destination panel width: 2 C rows + 4 B rows ×
	// ncBlock columns ≈ 24 KiB, within L1 reach.
	ncBlock = 512
	// blockedMinWork is the flop count below which the naive kernel wins
	// (panel setup and fringe handling dominate tiny products).
	blockedMinWork = 1 << 11
)

// useBlocked reports whether the blocked kernel should handle an m×kk×n
// product.
func useBlocked(m, kk, n int) bool {
	return m >= 2 && n >= 4 && m*kk*n >= blockedMinWork
}

// mulBlocked computes rows [lo,hi) of dst = a·b with the 4-row panel kernel.
// dst rows in [lo,hi) are fully overwritten. Semantics match mulRows.
//
//streampca:noalloc
func mulBlocked(dst, a, b *Dense, lo, hi int) {
	n := b.cols
	kk := a.cols
	for i := lo; i < hi; i++ {
		ci := dst.data[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
	}
	for j0 := 0; j0 < n; j0 += ncBlock {
		j1 := j0 + ncBlock
		if j1 > n {
			j1 = n
		}
		i := lo
		for ; i+1 < hi; i += 2 {
			mulPanel2x4(dst, a, b, i, j0, j1)
		}
		for ; i < hi; i++ {
			ci := dst.data[i*n+j0 : i*n+j1]
			ai := a.data[i*kk : (i+1)*kk]
			for k, aik := range ai {
				if aik == 0 {
					continue
				}
				Axpy(aik, b.data[k*n+j0:k*n+j1], ci)
			}
		}
	}
}

// mulPanel2x4 accumulates dst[i..i+1, j0:j1] += a[i..i+1, :]·b[:, j0:j1],
// consuming four reduction steps per pass: each visit to a C element folds in
// four B rows, so C read-modify-write traffic drops 4× and every B segment
// load feeds two rows.
//
//streampca:noalloc
func mulPanel2x4(dst, a, b *Dense, i, j0, j1 int) {
	n := b.cols
	kk := a.cols
	a0 := a.data[i*kk : (i+1)*kk]
	a1 := a.data[(i+1)*kk : (i+2)*kk]
	w := j1 - j0
	c0 := dst.data[i*n+j0 : i*n+j1][:w]
	c1 := dst.data[(i+1)*n+j0 : (i+1)*n+j1][:w]
	k := 0
	for ; k+3 < kk; k += 4 {
		v00, v01, v02, v03 := a0[k], a0[k+1], a0[k+2], a0[k+3]
		v10, v11, v12, v13 := a1[k], a1[k+1], a1[k+2], a1[k+3]
		bk0 := b.data[k*n+j0 : k*n+j1][:w]
		bk1 := b.data[(k+1)*n+j0 : (k+1)*n+j1][:w]
		bk2 := b.data[(k+2)*n+j0 : (k+2)*n+j1][:w]
		bk3 := b.data[(k+3)*n+j0 : (k+3)*n+j1][:w]
		for j, b0 := range bk0 {
			b1, b2, b3 := bk1[j], bk2[j], bk3[j]
			c0[j] += v00*b0 + v01*b1 + v02*b2 + v03*b3
			c1[j] += v10*b0 + v11*b1 + v12*b2 + v13*b3
		}
	}
	for ; k < kk; k++ {
		v0, v1 := a0[k], a1[k]
		if v0 == 0 && v1 == 0 {
			continue
		}
		bk := b.data[k*n+j0 : k*n+j1][:w]
		for j, bv := range bk {
			c0[j] += v0 * bv
			c1[j] += v1 * bv
		}
	}
}

// mulTABlocked computes dst = aᵀ·b (a is r×m, b is r×n, dst m×n) without
// materializing the transpose: a 4-way unrolled rank-1 accumulation that
// keeps four streaming B rows live per pass over the destination.
//
//streampca:noalloc
func mulTABlocked(dst, a, b *Dense) {
	m, n, r := a.cols, b.cols, a.rows
	dst.Zero()
	k := 0
	for ; k+3 < r; k += 4 {
		ak0 := a.data[k*m : (k+1)*m]
		ak1 := a.data[(k+1)*m : (k+2)*m]
		ak2 := a.data[(k+2)*m : (k+3)*m]
		ak3 := a.data[(k+3)*m : (k+4)*m]
		bk0 := b.data[k*n : (k+1)*n]
		bk1 := b.data[(k+1)*n : (k+2)*n]
		bk2 := b.data[(k+2)*n : (k+3)*n]
		bk3 := b.data[(k+3)*n : (k+4)*n]
		for i := 0; i < m; i++ {
			v0, v1, v2, v3 := ak0[i], ak1[i], ak2[i], ak3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			di := dst.data[i*n : (i+1)*n]
			for j, d := range di {
				di[j] = d + v0*bk0[j] + v1*bk1[j] + v2*bk2[j] + v3*bk3[j]
			}
		}
	}
	for ; k < r; k++ {
		ak := a.data[k*m : (k+1)*m]
		bk := b.data[k*n : (k+1)*n]
		for i, aki := range ak {
			if aki == 0 {
				continue
			}
			Axpy(aki, bk, dst.data[i*n:(i+1)*n])
		}
	}
}

// mulBTBlocked computes dst = a·bᵀ (a is m×kk, b is n×kk, dst m×n): each dst
// entry is a dot of two contiguous rows, tiled 2×2 so four row streams feed
// four accumulators per pass over kk.
//
//streampca:noalloc
func mulBTBlocked(dst, a, b *Dense) {
	m, n, kk := a.rows, b.rows, a.cols
	i := 0
	for ; i+1 < m; i += 2 {
		a0 := a.data[i*kk : (i+1)*kk]
		a1 := a.data[(i+1)*kk : (i+2)*kk]
		j := 0
		for ; j+1 < n; j += 2 {
			b0 := b.data[j*kk : (j+1)*kk]
			b1 := b.data[(j+1)*kk : (j+2)*kk]
			var s00, s01, s10, s11 float64
			for k, v0 := range a0 {
				v1 := a1[k]
				w0, w1 := b0[k], b1[k]
				s00 += v0 * w0
				s01 += v0 * w1
				s10 += v1 * w0
				s11 += v1 * w1
			}
			dst.data[i*n+j] = s00
			dst.data[i*n+j+1] = s01
			dst.data[(i+1)*n+j] = s10
			dst.data[(i+1)*n+j+1] = s11
		}
		if j < n {
			bj := b.data[j*kk : (j+1)*kk]
			dst.data[i*n+j] = Dot(a0, bj)
			dst.data[(i+1)*n+j] = Dot(a1, bj)
		}
	}
	if i < m {
		ai := a.data[i*kk : (i+1)*kk]
		for j := 0; j < n; j++ {
			dst.data[i*n+j] = Dot(ai, b.data[j*kk:(j+1)*kk])
		}
	}
}
