package mat

import "testing"

// TestMinWorkForMonotoneInWorkers sweeps the crossover policy over worker
// counts: for a fixed measured overhead, adding workers increases the
// parallel saving per unit of work, so the calibrated crossover must never
// rise with the worker count. This pins the formula itself — the timing
// half of calibrateMinWork can be noisy, the policy half must not be.
func TestMinWorkForMonotoneInWorkers(t *testing.T) {
	cases := []struct {
		name             string
		overheadNs, maNs float64
	}{
		{"cheap-dispatch", 5_000, 1.0},
		{"typical", 60_000, 0.7},
		{"slow-machine", 60_000, 3.5},
		{"huge-overhead", 5_000_000, 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prev := 0
			for nw := 2; nw <= 64; nw++ {
				got := minWorkFor(tc.overheadNs, tc.maNs, nw)
				if got < 1<<14 || got > 1<<30 {
					t.Fatalf("nw=%d: crossover %d escaped clamp [2^14, 2^30]", nw, got)
				}
				if prev != 0 && got > prev {
					t.Fatalf("nw=%d: crossover %d rose from %d at nw=%d — more workers must not raise the bar",
						nw, got, prev, nw-1)
				}
				prev = got
			}
		})
	}
}

// TestMinWorkForClamps pins the boundary behavior the sweep only grazes.
func TestMinWorkForClamps(t *testing.T) {
	if got := minWorkFor(0, 1.0, 4); got != 1<<14 {
		t.Fatalf("zero overhead: got %d, want floor %d", got, 1<<14)
	}
	if got := minWorkFor(-100, 1.0, 4); got != 1<<14 {
		t.Fatalf("negative overhead must clamp to the floor, got %d", got)
	}
	if got := minWorkFor(1e18, 1.0, 4); got != 1<<30 {
		t.Fatalf("huge overhead: got %d, want ceiling %d", got, 1<<30)
	}
}
