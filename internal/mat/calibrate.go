package mat

import (
	"runtime"
	"sync"
	"time"
)

// Startup crossover calibration. Two hardcoded thresholds used to govern the
// serial/parallel and chunk-width decisions (parallelThreshold, the engine's
// fixed block width); both are machine-dependent, so this file measures the
// machine once instead: the serial cost of a multiply-add (maNs), the cost
// of a small symmetric eigensolve per n³ (eigNs), and — per pool — the real
// round-trip overhead of a worker handoff. GOMAXPROCS can lie about physical
// cores (containers, affinity masks), so the handoff is measured by actually
// timing a pooled product against its serial twin: on a box where "parallel"
// just timeshares one core, the measured overhead swallows the predicted
// gain and the crossover correctly parks the workers.

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }

// calSize is the square matrix size the probes multiply: big enough that the
// panel kernel dominates setup, small enough to stay L1/L2-resident and keep
// calibration under ~1ms per pool.
const calSize = 64

var (
	calOnce sync.Once
	calMANs float64 // serial ns per multiply-add
)

// lcgFill writes a deterministic pseudo-random pattern; calibration must not
// depend on math/rand (determinism contract of the package).
func lcgFill(x []float64, seed uint64) {
	s := seed*6364136223846793005 + 1442695040888963407
	for i := range x {
		s = s*6364136223846793005 + 1442695040888963407
		x[i] = float64(int64(s>>33))/float64(1<<30) - 1
	}
}

// serialMANs measures (once) the serial cost of one multiply-add through the
// blocked product kernel.
func serialMANs() float64 {
	calOnce.Do(func() {
		a := NewDense(calSize, calSize)
		b := NewDense(calSize, calSize)
		dst := NewDense(calSize, calSize)
		lcgFill(a.data, 1)
		lcgFill(b.data, 2)
		mulBlocked(dst, a, b, 0, calSize) // warm the caches and the code path
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now() //streamvet:ignore determinism calibration timing steers only the serial/parallel crossover, never a numeric result
			mulBlocked(dst, a, b, 0, calSize)
			if el := time.Since(t0); el < best { //streamvet:ignore determinism calibration timing steers only the serial/parallel crossover, never a numeric result
				best = el
			}
		}
		calMANs = float64(best.Nanoseconds()) / float64(calSize*calSize*calSize)
		if calMANs <= 0 {
			calMANs = 0.5 // timer too coarse; a sane modern-CPU default
		}
	})
	return calMANs
}

// calibrateMinWork measures the pool's real handoff overhead and converts it
// into a multiply-add crossover: parallel execution of W multiply-adds saves
// at most W·(1−1/nw) serial work, so dispatch pays off once that saving
// clears the measured overhead with a 2× safety margin. Called from NewPool
// with the workers already parked.
func calibrateMinWork(p *Pool) int {
	ma := serialMANs()
	a := NewDense(calSize, calSize)
	b := NewDense(calSize, calSize)
	dst := NewDense(calSize, calSize)
	lcgFill(a.data, 3)
	lcgFill(b.data, 4)
	work := calSize * calSize * calSize
	serialNs := ma * float64(work)

	// Time the pooled product with the crossover forced open.
	p.minWork = 0
	p.Mul(dst, a, b) // park-to-running warmup for every worker
	best := time.Duration(1 << 62)
	for rep := 0; rep < 5; rep++ {
		t0 := time.Now() //streamvet:ignore determinism calibration timing steers only the serial/parallel crossover, never a numeric result
		p.Mul(dst, a, b)
		if el := time.Since(t0); el < best { //streamvet:ignore determinism calibration timing steers only the serial/parallel crossover, never a numeric result
			best = el
		}
	}
	overheadNs := float64(best.Nanoseconds()) - serialNs/float64(p.nw)
	return minWorkFor(overheadNs, ma, p.nw)
}

// minWorkFor converts measured dispatch overhead into the serial/parallel
// crossover: the smallest multiply-add count whose parallel saving
// (ma·(1−1/nw) per unit of work) clears the overhead with a 2× margin.
// Pure so the calibration policy is testable without timing anything: for
// fixed overhead the crossover must fall as workers are added (more saving
// per unit of work), and clamp at the same floor/ceiling everywhere.
func minWorkFor(overheadNs, maNs float64, nw int) int {
	if overheadNs < 0 {
		overheadNs = 0
	}
	saving := maNs * (1 - 1/float64(nw))
	minWork := int(2 * overheadNs / saving)
	// Clamp: never dispatch tiny products even on a perfect machine, and
	// never rule parallelism out entirely on a noisy one — the upper clamp
	// still exceeds every product the engine issues at d ≤ 100k.
	if minWork < 1<<14 {
		minWork = 1 << 14
	}
	if minWork > 1<<30 {
		minWork = 1 << 30
	}
	return minWork
}

// eigProbeSize is the symmetric system the eigensolver probe runs; the
// engine's (k+c) Gram systems live in the same few-dozen range.
const eigProbeSize = 16

var (
	eigOnce sync.Once
	eigNsN3 float64 // ns per n³ of a TridiagSym-style solve
)

// serialEigNs measures (once) the tridiagonal eigensolver cost per n³.
func serialEigNs() float64 {
	eigOnce.Do(func() {
		n := eigProbeSize
		g := NewDense(n, n)
		base := NewDense(n, n)
		lcgFill(base.data, 5)
		// A symmetric positive form AᵀA keeps the probe's spectrum generic.
		MulTA(g, base, base)
		// The eig package depends on mat, not the reverse, so the probe
		// approximates the solver with its dominant kernel shape: n
		// Householder-style sweeps of n² work against the accumulator. The
		// constant factor is folded into the measured ns.
		d := make([]float64, n)
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now() //streamvet:ignore determinism calibration timing steers only the chunk-width cost model, never a numeric result
			householderProbe(g, d)
			if el := time.Since(t0); el < best { //streamvet:ignore determinism calibration timing steers only the chunk-width cost model, never a numeric result
				best = el
			}
		}
		// tred2+tql2 cost ≈ 4× the probe's single accumulation pass (two
		// passes in the reduction plus rotation accumulation in the QL
		// phase); the calibrated figure only steers a c argmin, so the
		// constant needs to be right to ~2×, not exact.
		eigNsN3 = 4 * float64(best.Nanoseconds()) / float64(n*n*n)
		if eigNsN3 <= 0 {
			eigNsN3 = 4 * serialMANs()
		}
	})
	return eigNsN3
}

// householderProbe runs the reduction-shaped kernel the eigensolver cost is
// extrapolated from: n sweeps of symmetric rank-two-style updates.
func householderProbe(g *Dense, d []float64) {
	n := g.rows
	gd := g.data
	for i := n - 1; i >= 1; i-- {
		var h float64
		gi := gd[i*n : i*n+i]
		for _, v := range gi {
			h += v * v
		}
		d[i] = h
		for j := 0; j < i; j++ {
			gj := gd[j*n : j*n+i]
			var s float64
			for k2, v := range gj {
				s += v * gi[k2]
			}
			d[j] = s
		}
		for j := 0; j < i; j++ {
			f := gi[j]
			gj := gd[j*n : j*n+j+1]
			for k2 := range gj {
				gj[k2] -= f*d[k2] + d[j]*gi[k2]
			}
		}
	}
}

// BlockSize returns the cost-model-optimal rank-c chunk width for a d×k
// engine, in [2, max]. Per absorbed row the block path costs
//
//	d·(c+1)/8         Y·Yᵀ inner products (SyrkRows)
//	4·d·k²/c + d·k    basis rebuild E·M product + Yᵀ·W accumulation, over c
//	E·(k+c)³/c        the (k+c)-sized eigensolve, amortized over c
//
// in panel-kernel multiply-add equivalents, with E the calibrated
// eigensolver/multiply-add cost ratio. Two terms carry efficiency weights
// relative to the square blocked product the calibration measures: SyrkRows
// streams two unit-stride rows per dot with no packing or panel bookkeeping
// and retires multiply-adds ≈4× faster (weight ⅛ instead of ½), while the
// E·M rebuild product is k-skinny — a d×k by k×k product at k≈5 never fills
// the 2×4 register tile — and runs ≈4× slower (weight 4). Both factors come
// from the c-sweep benchmark (c ∈ {4..16}, d ∈ {250..1000}): the unweighted
// model argmins at c≈6 where measurement favors c≈12–16.
// The d·(k+2) center/project term is c-independent and excluded. Small c
// wastes the amortization; large c pays quadratically in the Syrk corner and
// cubically in the eigensolve — the argmin replaces the hardcoded chunk
// width the engine used before.
func BlockSize(d, k, max int) int {
	if max < 2 {
		return max
	}
	eigR := serialEigNs() / serialMANs()
	best := 2
	bestCost := blockCost(d, k, 2, eigR)
	for c := 3; c <= max; c++ {
		if cost := blockCost(d, k, c, eigR); cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best
}

func blockCost(d, k, c int, eigR float64) float64 {
	fd, fk, fc := float64(d), float64(k), float64(c)
	kc := fk + fc
	return fd*(fc+1)/8 + 4*fd*fk*fk/fc + fd*fk + eigR*kc*kc*kc/fc
}
