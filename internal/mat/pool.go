package mat

// Persistent worker pool for the d-proportional kernels of the streaming PCA
// hot path. A Pool is owned by a single engine (single-goroutine dispatch,
// like the engine itself): workers are spawned once at construction and park
// on per-worker span channels, so a kernel dispatch is one channel send per
// worker and one receive per completion — no per-call goroutine spawn, no
// closures, no heap traffic. Every kernel partitions its OUTPUT elements
// across spans, and every output element is computed with the same
// instruction sequence regardless of the partition, so results are bitwise
// identical for any worker count — including the serial fallback. That
// determinism contract is what lets the crossover model flip between serial
// and parallel execution per call without perturbing the estimator.

// kernelKind selects the span kernel a dispatched job runs. An enum (not a
// closure) keeps the dispatch allocation-free: captured closures would heap-
// allocate on every call.
type kernelKind uint8

const (
	kMul kernelKind = iota
	kAddMulTA
	kSyrk
	kBasis
	kBasisVec
	kCenter
)

// span is a half-open output range [lo, hi) in the units of the current job
// (rows for the matrix kernels, panels for the fused center/project pass).
type span struct{ lo, hi int }

// Pool runs mat kernels across a fixed set of parked worker goroutines.
// The zero Pool and a nil *Pool are valid and always run serially. A Pool is
// not safe for concurrent dispatch: one owner, one kernel at a time — the
// same contract as the engine workspace it serves.
type Pool struct {
	nw int // participants: the caller plus len(ch) parked workers

	// minWork is the multiply-add count below which dispatch is not worth
	// the handoff, measured at construction (see calibrate.go). The parallel
	// branch is taken only above it.
	minWork int

	ch     []chan span   // one parked worker per channel
	done   chan struct{} // completion signals, buffered to len(ch)
	closed bool

	// scratch[i] is participant i's private buffer (0 = the caller); sized
	// by Reserve before the first dispatch that needs it.
	scratch [][]float64

	// Current job operands, written by the dispatching owner before the span
	// sends (the channel send is the happens-before edge workers read them
	// through). Field names are j-prefixed to keep the job state visually
	// separate from the pool machinery.
	kind               kernelKind
	jDst, jA, jB, jMt  *Dense
	jR                 int
	jBlocked           bool
	jX, jMean, jY, jYw []float64
	jPart              []float64
}

// NewPool returns a pool with the given number of participants; workers <= 0
// selects GOMAXPROCS. A pool of one spawns no goroutines and always runs
// serially. Pools with workers >= 2 must be Closed when the owner is done
// with them or the parked goroutines leak.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = gomaxprocs()
	}
	p := &Pool{nw: workers, minWork: int(^uint(0) >> 1)}
	p.scratch = make([][]float64, workers)
	if workers < 2 {
		return p
	}
	p.ch = make([]chan span, workers-1)
	p.done = make(chan struct{}, workers-1)
	for i := range p.ch {
		p.ch[i] = make(chan span, 1)
		go p.worker(i)
	}
	p.minWork = calibrateMinWork(p)
	return p
}

// Workers returns the number of participants (caller included).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.nw
}

// MinWork returns the calibrated multiply-add crossover below which every
// dispatch runs serially.
func (p *Pool) MinWork() int {
	if p == nil {
		return int(^uint(0) >> 1)
	}
	return p.minWork
}

// SetMinWork overrides the calibrated crossover (tests force the parallel
// branch with 0). It must not race a dispatch.
func (p *Pool) SetMinWork(w int) {
	if p != nil {
		p.minWork = w
	}
}

// Reserve grows every participant's private scratch buffer to at least n
// floats. Kernel methods that need scratch (BasisUpdate, BasisUpdateVec)
// require a prior Reserve; sizing up front is what keeps the dispatch itself
// allocation-free.
func (p *Pool) Reserve(n int) {
	if p == nil {
		return
	}
	for i := range p.scratch {
		if len(p.scratch[i]) < n {
			p.scratch[i] = make([]float64, n)
		}
	}
}

// Close releases the parked workers. Idempotent; the pool degrades to the
// serial path afterwards, so late callers still get correct results.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.ch {
		close(ch)
	}
	p.ch = nil
	p.nw = 1
	p.minWork = int(^uint(0) >> 1)
}

// worker parks on its span channel until Close; each received span is one
// slice of the owner's current job.
func (p *Pool) worker(i int) {
	for sp := range p.ch[i] {
		p.runSpan(sp, p.scratch[i+1])
		p.done <- struct{}{}
	}
}

// runSpan executes the current job over one output span with the given
// participant-private scratch.
//
//streampca:noalloc
func (p *Pool) runSpan(sp span, scratch []float64) {
	switch p.kind {
	case kMul:
		if p.jBlocked {
			mulBlocked(p.jDst, p.jA, p.jB, sp.lo, sp.hi)
		} else {
			mulRows(p.jDst, p.jA, p.jB, sp.lo, sp.hi)
		}
	case kAddMulTA:
		addMulTARowsSpan(p.jDst, p.jA, p.jB, p.jR, sp.lo, sp.hi)
	case kSyrk:
		syrkRowsSpan(p.jDst, p.jA, p.jR, sp.lo, sp.hi)
	case kBasis:
		basisUpdateSpan(p.jDst, p.jMt, p.jA, p.jB, p.jR, sp.lo, sp.hi, scratch)
	case kBasisVec:
		basisUpdateVecSpan(p.jDst, p.jMt, p.jY, p.jYw, sp.lo, sp.hi, scratch)
	case kCenter:
		centerProjectSpan(p.jY, p.jX, p.jMean, p.jDst, p.jPart, sp.lo, sp.hi)
	}
}

// dispatch splits [0, n) into per-participant spans whose boundaries are
// multiples of align, hands all but the first to the parked workers, runs
// the first span on the calling goroutine, and waits for every handoff to
// complete. It must only be called with nw >= 2 and n >= 1.
//
//streampca:noalloc
func (p *Pool) dispatch(n, align int) {
	chunk := (n + p.nw - 1) / p.nw
	if align > 1 && chunk%align != 0 {
		chunk += align - chunk%align
	}
	sent := 0
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		p.ch[sent] <- span{lo, hi}
		sent++
	}
	first := chunk
	if first > n {
		first = n
	}
	p.runSpan(span{0, first}, p.scratch[0])
	for i := 0; i < sent; i++ {
		<-p.done
	}
}

// Mul computes dst = a·b like Mul, splitting destination rows across the
// pool when the product is past the crossover. Row spans stay aligned to the
// blocked kernel's row-pair tile, so the result is bitwise identical to the
// serial Mul for every worker count.
//
//streampca:noalloc
func (p *Pool) Mul(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic("mat: Pool.Mul inner dimension mismatch")
	}
	//streamvet:ignore noalloc inlined prepDst nil-dst fallback; steady-state callers pass a preallocated dst so the branch never runs
	dst = prepDst(dst, a.rows, b.cols)
	work := a.rows * a.cols * b.cols
	blocked := useBlocked(a.rows, a.cols, b.cols)
	if p == nil || p.nw < 2 || work < p.minWork || a.rows < 2*p.nw {
		if blocked {
			mulBlocked(dst, a, b, 0, a.rows)
		} else {
			mulRows(dst, a, b, 0, a.rows)
		}
		return dst
	}
	p.kind = kMul
	p.jDst, p.jA, p.jB = dst, a, b
	p.jBlocked = blocked
	align := 1
	if blocked {
		align = 2 // preserve the serial kernel's (even, odd) row pairing
	}
	p.dispatch(a.rows, align)
	return dst
}

// AddMulTARows accumulates dst += Aᵀ·B over the first r rows of a and b like
// the package-level AddMulTARows, splitting destination rows (a's columns)
// across the pool. Per destination row the reduction order over the r source
// rows is fixed, so the result is bitwise partition-independent.
//
//streampca:noalloc
func (p *Pool) AddMulTARows(dst, a, b *Dense, r int) {
	if r < 0 || r > a.rows || r > b.rows {
		panic("mat: Pool.AddMulTARows row count out of range")
	}
	if dst.rows != a.cols || dst.cols != b.cols {
		panic("mat: Pool.AddMulTARows shape mismatch")
	}
	work := r * a.cols * b.cols
	if p == nil || p.nw < 2 || work < p.minWork || a.cols < 2*p.nw {
		addMulTARowsSpan(dst, a, b, r, 0, a.cols)
		return
	}
	p.kind = kAddMulTA
	p.jDst, p.jA, p.jB = dst, a, b
	p.jR = r
	p.dispatch(a.cols, 1)
}

// SyrkRows computes the leading r×r block of dst = A·Aᵀ like the
// package-level SyrkRows, splitting the triangle's rows across the pool.
// Every entry is an independent Dot, so any partition is bitwise identical.
//
//streampca:noalloc
func (p *Pool) SyrkRows(dst, a *Dense, r int) {
	if r < 0 || r > a.rows {
		panic("mat: Pool.SyrkRows row count out of range")
	}
	if dst.rows < r || dst.cols < r {
		panic("mat: Pool.SyrkRows destination too small")
	}
	work := r * (r + 1) / 2 * a.cols
	if p == nil || p.nw < 2 || work < p.minWork || r < 2*p.nw {
		syrkRowsSpan(dst, a, r, 0, r)
		return
	}
	p.kind = kSyrk
	p.jDst, p.jA = dst, a
	p.jR = r
	p.dispatch(r, 1)
}

// BasisUpdate applies the fused in-place rank-c basis update
//
//	E ← E·M + Yᵀ·W
//
// row-wise: vecs is the d×k basis E (updated in place), mt the k×k
// TRANSPOSED map Mᵀ (mt[j][l] = M[l][j]), y the (≥r)×d panel of centered
// rows, w the (≥r)×k update coefficients. One streaming pass per basis row
// replaces the Mul + AddMulTARows + CopyFrom triple of the staged update —
// a third of the d×k memory traffic. Requires Reserve(k+r) scratch.
//
//streampca:noalloc
func (p *Pool) BasisUpdate(vecs, mt, y, w *Dense, r int) {
	k := vecs.cols
	if mt.rows != k || mt.cols != k {
		panic("mat: Pool.BasisUpdate map shape mismatch")
	}
	if r < 0 || r > y.rows || r > w.rows || y.cols != vecs.rows || w.cols != k {
		panic("mat: Pool.BasisUpdate panel shape mismatch")
	}
	d := vecs.rows
	work := d * k * (k + r)
	if p == nil || p.nw < 2 || work < p.minWork || d < 2*p.nw {
		var scratch []float64
		if p != nil && len(p.scratch) > 0 {
			scratch = p.scratch[0]
		}
		if len(scratch) < k+r {
			panic("mat: Pool.BasisUpdate scratch not reserved")
		}
		basisUpdateSpan(vecs, mt, y, w, r, 0, d, scratch)
		return
	}
	p.kind = kBasis
	p.jDst, p.jMt, p.jA, p.jB = vecs, mt, y, w
	p.jR = r
	p.dispatch(d, 1)
}

// BasisUpdateVec is the rank-one specialization of BasisUpdate: the update
// panel is a single centered vector y with per-column coefficients yw
// (E ← E·M + y·ywᵀ). The per-row arithmetic matches the rank-one engine
// rebuild exactly. Requires Reserve(k) scratch.
//
//streampca:noalloc
func (p *Pool) BasisUpdateVec(vecs, mt *Dense, y, yw []float64) {
	k := vecs.cols
	d := vecs.rows
	if mt.rows != k || mt.cols != k {
		panic("mat: Pool.BasisUpdateVec map shape mismatch")
	}
	if len(y) != d || len(yw) != k {
		panic("mat: Pool.BasisUpdateVec vector length mismatch")
	}
	work := d * k * (k + 1)
	if p == nil || p.nw < 2 || work < p.minWork || d < 2*p.nw {
		var scratch []float64
		if p != nil && len(p.scratch) > 0 {
			scratch = p.scratch[0]
		}
		if len(scratch) < k {
			panic("mat: Pool.BasisUpdateVec scratch not reserved")
		}
		basisUpdateVecSpan(vecs, mt, y, yw, 0, d, scratch)
		return
	}
	p.kind = kBasisVec
	p.jDst, p.jMt = vecs, mt
	p.jY, p.jYw = y, yw
	p.dispatch(d, 1)
}

// CenterProject runs the fused center/project pass y = x − mean,
// coef = Eᵀy, returning ‖y‖². The reduction is panel-deterministic: rows are
// cut into fixed cpPanel-sized panels, each panel accumulates its k+1
// partial sums into part (length ≥ CenterProjectPanels(d)·(k+1)), and the
// partials are folded into coef in panel order — the SAME chunked reduction
// whether panels ran serially or across the pool, so the result is bitwise
// partition-independent. coef is overwritten.
//
//streampca:noalloc
func (p *Pool) CenterProject(y, coef, x, mean []float64, vecs *Dense, part []float64) float64 {
	d := vecs.rows
	k := vecs.cols
	if len(x) != d || len(y) != d || len(mean) != d || len(coef) != k {
		panic("mat: Pool.CenterProject length mismatch")
	}
	np := CenterProjectPanels(d)
	if len(part) < np*(k+1) {
		panic("mat: Pool.CenterProject partial buffer too small")
	}
	work := d * (k + 2)
	if p == nil || p.nw < 2 || work < p.minWork || np < 2 {
		centerProjectSpan(y, x, mean, vecs, part, 0, np)
	} else {
		p.kind = kCenter
		p.jY, p.jX, p.jMean = y, x, mean
		p.jDst = vecs
		p.jPart = part
		p.dispatch(np, 1)
	}
	// Fold the panel partials in panel order (the canonical reduction).
	for j := range coef {
		coef[j] = 0
	}
	var ny2 float64
	for pi := 0; pi < np; pi++ {
		pp := part[pi*(k+1) : pi*(k+1)+k+1]
		for j := range coef {
			coef[j] += pp[j]
		}
		ny2 += pp[k]
	}
	return ny2
}
