// Package mat provides the dense linear-algebra kernels used throughout
// streampca: vectors, row-major dense matrices, and the small set of
// products (GEMM, Gram, rank-one updates) the incremental PCA engine needs.
//
// The package is deliberately small and allocation-conscious rather than a
// general BLAS replacement. Every routine validates dimensions and panics on
// mismatch; shape errors are programming errors, not runtime conditions.
package mat

import "math"

// Dot returns the inner product of x and y.
// It panics if the vectors have different lengths.
// The sum is accumulated in four independent chains (reassociated), so the
// result can differ from strict left-to-right summation by O(ε·‖x‖·‖y‖).
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm2 returns the Euclidean norm of x, guarding against overflow and
// underflow by scaling with the largest magnitude entry.
func Norm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute entry of x (0 for an empty vector).
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += alpha*x in place.
// It panics if the vectors have different lengths.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	y = y[:len(x)]
	i := 0
	for ; i+3 < len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every entry of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// AddTo stores x+y into dst and returns dst. dst may alias x or y.
func AddTo(dst, x, y []float64) []float64 {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("mat: AddTo length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
	return dst
}

// SubTo stores x−y into dst and returns dst. dst may alias x or y.
func SubTo(dst, x, y []float64) []float64 {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("mat: SubTo length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
	return dst
}

// Lerp stores a*x + b*y into dst and returns dst. dst may alias x or y.
// It is the weighted-combination kernel used by the recursive mean update
// µ = γ·µprev + (1−γ)·x.
func Lerp(dst []float64, a float64, x []float64, b float64, y []float64) []float64 {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("mat: Lerp length mismatch")
	}
	for i := range dst {
		dst[i] = a*x[i] + b*y[i]
	}
	return dst
}

// CopyVec copies src into a freshly allocated vector.
func CopyVec(src []float64) []float64 {
	dst := make([]float64, len(src))
	copy(dst, src)
	return dst
}

// Fill sets every entry of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left untouched and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	Scale(1/n, x)
	return n
}

// EqualApproxVec reports whether x and y have the same length and agree
// entrywise within tol.
func EqualApproxVec(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if math.Abs(x[i]-y[i]) > tol {
			return false
		}
	}
	return true
}
