package mat

import (
	"math/rand/v2"
	"strings"
	"testing"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDenseShape(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatal("Rows/Cols mismatch")
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseDataWrapsWithoutCopy(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	m := NewDenseData(2, 2, d)
	d[0] = 9
	if m.At(0, 0) != 9 {
		t.Fatal("NewDenseData should not copy")
	}
}

func TestNewDenseDataLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDenseData(2, 2, []float64{1})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Identity(%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestAtSetAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(1, 0, 5)
	m.Add(1, 0, 2)
	if m.At(1, 0) != 7 {
		t.Fatalf("At = %v", m.At(1, 0))
	}
}

func TestIndexPanics(t *testing.T) {
	m := NewDense(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(2) },
		func() { m.Col(2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRowSharesStorage(t *testing.T) {
	m := NewDense(2, 3)
	m.Row(1)[2] = 42
	if m.At(1, 2) != 42 {
		t.Fatal("Row should share storage")
	}
}

func TestSetRowColRoundTrip(t *testing.T) {
	m := NewDense(3, 2)
	m.SetRow(1, []float64{7, 8})
	m.SetCol(0, []float64{1, 2, 3})
	if m.At(1, 0) != 2 || m.At(1, 1) != 8 {
		t.Fatalf("unexpected: %v", m)
	}
	col := m.Col(0, nil)
	if !EqualApproxVec(col, []float64{1, 2, 3}, 0) {
		t.Fatalf("Col = %v", col)
	}
	dst := make([]float64, 3)
	if got := m.Col(0, dst); &got[0] != &dst[0] {
		t.Fatal("Col should use provided dst")
	}
}

func TestSetRowLengthPanics(t *testing.T) {
	m := NewDense(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SetRow(0, []float64{1})
}

func TestCloneIndependence(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases source")
	}
	if !m.EqualApprox(m.Clone(), 0) {
		t.Fatal("Clone differs from source")
	}
}

func TestCopyFrom(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDense(2, 2)
	b.CopyFrom(a)
	if !a.EqualApprox(b, 0) {
		t.Fatal("CopyFrom mismatch")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T dims = %d,%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T(%d,%d) mismatch", j, i)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	m := randDense(rng, 5, 7)
	if !m.T().T().EqualApprox(m, 0) {
		t.Fatal("(Mᵀ)ᵀ != M")
	}
}

func TestZeroScaleMaxAbs(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, -5, 2, 3})
	if m.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	m.ScaleAll(2)
	if m.At(0, 1) != -10 {
		t.Fatal("ScaleAll failed")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestIsSymmetric(t *testing.T) {
	s := NewDenseData(2, 2, []float64{1, 2, 2, 5})
	if !s.IsSymmetric(0) {
		t.Fatal("should be symmetric")
	}
	s.Set(0, 1, 2.1)
	if s.IsSymmetric(1e-6) {
		t.Fatal("should not be symmetric")
	}
	if NewDense(2, 3).IsSymmetric(1) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestSliceCols(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	s := m.SliceCols(1, 3)
	want := NewDenseData(2, 2, []float64{2, 3, 5, 6})
	if !s.EqualApprox(want, 0) {
		t.Fatalf("SliceCols = %v", s)
	}
	// must be a copy
	s.Set(0, 0, 99)
	if m.At(0, 1) == 99 {
		t.Fatal("SliceCols aliases source")
	}
}

func TestStringElides(t *testing.T) {
	m := NewDense(20, 20)
	out := m.String()
	if !strings.Contains(out, "...") {
		t.Fatal("large matrix should be elided")
	}
	if !strings.Contains(out, "20x20") {
		t.Fatal("should include dims")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewDenseData(1, 2, []float64{3, 4})
	if n := m.FrobeniusNorm(); n != 5 {
		t.Fatalf("FrobeniusNorm = %v", n)
	}
}
