package mat

import (
	"runtime"
	"sync"
)

// parallelThreshold is the number of scalar multiply-adds below which the
// products run single-threaded; spawning goroutines for tiny matrices costs
// more than it saves.
const parallelThreshold = 1 << 17

// Mul computes C = A·B and returns C. If dst is non-nil it is used as C and
// must have shape A.Rows()×B.Cols(); dst must not alias A or B. With a
// provided dst, Mul performs no heap allocations. Large products go through
// the cache-blocked 4×4 register-tiled kernel; tiny ones use the naive loop.
func Mul(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic("mat: Mul inner dimension mismatch")
	}
	dst = prepDst(dst, a.rows, b.cols)
	if useBlocked(a.rows, a.cols, b.cols) {
		mulBlocked(dst, a, b, 0, a.rows)
	} else {
		mulRows(dst, a, b, 0, a.rows)
	}
	return dst
}

// MulParallel computes C = A·B using up to GOMAXPROCS goroutines when the
// problem is large enough to benefit. Semantics match Mul; the serial
// fallback (small products or GOMAXPROCS=1) performs no heap allocations
// when dst is provided.
func MulParallel(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic("mat: MulParallel inner dimension mismatch")
	}
	dst = prepDst(dst, a.rows, b.cols)
	work := a.rows * a.cols * b.cols
	nw := runtime.GOMAXPROCS(0)
	blocked := useBlocked(a.rows, a.cols, b.cols)
	if work < parallelThreshold || nw < 2 || a.rows < 2 {
		if blocked {
			mulBlocked(dst, a, b, 0, a.rows)
		} else {
			mulRows(dst, a, b, 0, a.rows)
		}
		return dst
	}
	// The goroutine fan-out lives in a separate function: a closure that
	// escapes forces its captures to the heap at function entry, which
	// would make even the serial fast path above allocate.
	mulParallelSpawn(dst, a, b, nw, blocked)
	return dst
}

func mulParallelSpawn(dst, a, b *Dense, nw int, blocked bool) {
	if nw > a.rows {
		nw = a.rows
	}
	chunk := (a.rows + nw - 1) / nw
	// Align worker boundaries to the row-pair tile so every goroutine runs
	// the full micro-kernel on its interior.
	if blocked && chunk%4 != 0 {
		chunk += 4 - chunk%4
	}
	var wg sync.WaitGroup
	for lo := 0; lo < a.rows; lo += chunk {
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if blocked {
				mulBlocked(dst, a, b, lo, hi)
			} else {
				mulRows(dst, a, b, lo, hi)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// mulRows computes rows [lo,hi) of dst = a·b with an ikj loop order that
// streams through b row-wise (cache friendly for row-major storage).
func mulRows(dst, a, b *Dense, lo, hi int) {
	n := b.cols
	for i := lo; i < hi; i++ {
		ci := dst.data[i*n : (i+1)*n]
		for j := range ci {
			ci[j] = 0
		}
		ai := a.data[i*a.cols : (i+1)*a.cols]
		for k, aik := range ai {
			if aik == 0 {
				continue
			}
			bk := b.data[k*n : (k+1)*n]
			Axpy(aik, bk, ci)
		}
	}
}

// MulTA computes C = Aᵀ·B without materializing Aᵀ. A is r×m, B is r×n,
// C is m×n. With a provided dst it performs no heap allocations.
func MulTA(dst, a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic("mat: MulTA row mismatch")
	}
	dst = prepDst(dst, a.cols, b.cols)
	if useBlocked(a.cols, a.rows, b.cols) {
		mulTABlocked(dst, a, b)
		return dst
	}
	dst.Zero()
	n := b.cols
	for k := 0; k < a.rows; k++ {
		ak := a.data[k*a.cols : (k+1)*a.cols]
		bk := b.data[k*n : (k+1)*n]
		for i, aki := range ak {
			if aki == 0 {
				continue
			}
			Axpy(aki, bk, dst.data[i*n:(i+1)*n])
		}
	}
	return dst
}

// MulBT computes C = A·Bᵀ without materializing Bᵀ. A is m×k, B is n×k,
// C is m×n. With a provided dst it performs no heap allocations.
func MulBT(dst, a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic("mat: MulBT column mismatch")
	}
	dst = prepDst(dst, a.rows, b.rows)
	if useBlocked(a.rows, a.cols, b.rows) {
		mulBTBlocked(dst, a, b)
		return dst
	}
	for i := 0; i < a.rows; i++ {
		ai := a.Row(i)
		ci := dst.Row(i)
		for j := 0; j < b.rows; j++ {
			ci[j] = Dot(ai, b.Row(j))
		}
	}
	return dst
}

// MulVec computes y = A·x. If dst is non-nil it is used as y (length
// A.Rows()); dst must not alias x.
func MulVec(dst []float64, a *Dense, x []float64) []float64 {
	if len(x) != a.cols {
		panic("mat: MulVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.rows)
	} else if len(dst) != a.rows {
		panic("mat: MulVec dst length mismatch")
	}
	for i := 0; i < a.rows; i++ {
		dst[i] = Dot(a.Row(i), x)
	}
	return dst
}

// MulVecT computes y = Aᵀ·x. If dst is non-nil it is used as y (length
// A.Cols()); dst must not alias x.
func MulVecT(dst []float64, a *Dense, x []float64) []float64 {
	if len(x) != a.rows {
		panic("mat: MulVecT length mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.cols)
	} else if len(dst) != a.cols {
		panic("mat: MulVecT dst length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.rows; i++ {
		Axpy(x[i], a.Row(i), dst)
	}
	return dst
}

// Gram computes G = AᵀA (Cols×Cols, symmetric). It exploits symmetry,
// computing only the upper triangle and mirroring.
func Gram(dst, a *Dense) *Dense {
	k := a.cols
	dst = prepDst(dst, k, k)
	dst.Zero()
	for r := 0; r < a.rows; r++ {
		row := a.Row(r)
		for i := 0; i < k; i++ {
			if row[i] == 0 {
				continue
			}
			gi := dst.data[i*k : (i+1)*k]
			v := row[i]
			for j := i; j < k; j++ {
				gi[j] += v * row[j]
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			dst.data[j*k+i] = dst.data[i*k+j]
		}
	}
	return dst
}

// GramParallel computes G = AᵀA using up to GOMAXPROCS goroutines: workers
// accumulate partial Gram matrices over row blocks and the results are
// reduced. Falls back to the serial kernel for small inputs. It implements
// the paper's stated improvement of "using a multithreaded SVD processing
// algorithm to distribute the computation load to all the node processor
// cores" — the Gram accumulation is the dominant term of the thin SVD.
func GramParallel(dst, a *Dense) *Dense {
	k := a.cols
	nw := GramWorkers(a.rows, k)
	if nw == 0 {
		return Gram(dst, a)
	}
	dst = prepDst(dst, k, k)
	partials := make([]*Dense, nw)
	for w := range partials {
		partials[w] = NewDense(k, k)
	}
	return GramParallelScratch(dst, a, partials)
}

// GramWorkers returns the number of partial accumulators GramParallel would
// use for a rows×cols input under the current GOMAXPROCS, or 0 when the
// serial kernel wins. Workspace owners size their scratch with it so hot
// paths can call GramParallelScratch without allocating.
func GramWorkers(rows, cols int) int {
	work := rows * cols * cols
	nw := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || nw < 2 || rows < 2*nw {
		return 0
	}
	if nw > rows {
		nw = rows
	}
	return nw
}

// GramParallelScratch is GramParallel with caller-owned partial accumulators:
// one k×k matrix per worker (k = a.Cols()), overwritten on entry. It performs
// no heap allocations beyond goroutine spawns, making it suitable for
// workspace-driven hot paths that still want the parallel reduction.
func GramParallelScratch(dst, a *Dense, partials []*Dense) *Dense {
	k := a.cols
	dst = prepDst(dst, k, k)
	nw := len(partials)
	if nw == 0 || a.rows == 0 {
		return Gram(dst, a)
	}
	for _, part := range partials {
		if part.rows != k || part.cols != k {
			panic("mat: GramParallelScratch partial shape mismatch")
		}
		part.Zero()
	}
	gramSpawn(dst, a, partials)
	return dst
}

// gramSpawn is the goroutine fan-out of GramParallelScratch, split out so
// the serial fallback path in the caller stays allocation free (escaping
// closures heap-allocate their captures at function entry).
func gramSpawn(dst, a *Dense, partials []*Dense) {
	k := a.cols
	nw := len(partials)
	chunk := (a.rows + nw - 1) / nw
	var wg sync.WaitGroup
	used := 0
	for w := 0; w < nw; w++ {
		lo := w * chunk
		if lo >= a.rows {
			break
		}
		hi := lo + chunk
		if hi > a.rows {
			hi = a.rows
		}
		used++
		wg.Add(1)
		go func(part *Dense, lo, hi int) {
			defer wg.Done()
			for r := lo; r < hi; r++ {
				row := a.Row(r)
				for i := 0; i < k; i++ {
					if row[i] == 0 {
						continue
					}
					gi := part.data[i*k : (i+1)*k]
					v := row[i]
					for j := i; j < k; j++ {
						gi[j] += v * row[j]
					}
				}
			}
		}(partials[w], lo, hi)
	}
	wg.Wait()
	dst.Zero()
	for _, part := range partials[:used] {
		Axpy(1, part.data, dst.data)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			dst.data[j*k+i] = dst.data[i*k+j]
		}
	}
}

// RankOneUpdate performs C += alpha·x·yᵀ in place.
func RankOneUpdate(c *Dense, alpha float64, x, y []float64) {
	if len(x) != c.rows || len(y) != c.cols {
		panic("mat: RankOneUpdate shape mismatch")
	}
	for i := 0; i < c.rows; i++ {
		Axpy(alpha*x[i], y, c.Row(i))
	}
}

// AddScaled performs C += alpha·B in place. Shapes must match.
func AddScaled(c *Dense, alpha float64, b *Dense) {
	if c.rows != b.rows || c.cols != b.cols {
		panic("mat: AddScaled shape mismatch")
	}
	Axpy(alpha, b.data, c.data)
}

func prepDst(dst *Dense, r, c int) *Dense {
	if dst == nil {
		return NewDense(r, c)
	}
	if dst.rows != r || dst.cols != c {
		panic("mat: destination shape mismatch")
	}
	return dst
}
