package mat

import (
	"math/rand/v2"
	"testing"
)

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// TestSyrkRowsMatchesMulBT checks SyrkRows against the full A·Aᵀ computed by
// MulBT, across prefix sizes and into an oversized destination.
func TestSyrkRowsMatchesMulBT(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 1))
	const cap, d = 16, 37
	a := randomDense(rng, cap, d)
	for _, r := range []int{0, 1, 2, 3, 7, 8, 15, 16} {
		dst := randomDense(rng, cap, cap) // pre-filled: outside block must survive
		before := dst.Clone()
		SyrkRows(dst, a, r)
		want := MulBT(nil, a, a)
		for i := 0; i < cap; i++ {
			for j := 0; j < cap; j++ {
				if i < r && j < r {
					if diff := dst.At(i, j) - want.At(i, j); diff > 1e-12 || diff < -1e-12 {
						t.Fatalf("r=%d: dst[%d][%d] = %v, want %v", r, i, j, dst.At(i, j), want.At(i, j))
					}
				} else if dst.At(i, j) != before.At(i, j) {
					t.Fatalf("r=%d: SyrkRows touched entry (%d,%d) outside the leading block", r, i, j)
				}
			}
		}
	}
}

// TestAddMulTARowsMatchesMulTA checks the accumulating panel kernel against
// dst0 + Aᵀ·B on the same row prefix.
func TestAddMulTARowsMatchesMulTA(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 2))
	const cap, m, n = 16, 53, 5
	a := randomDense(rng, cap, m)
	b := randomDense(rng, cap, n)
	for _, r := range []int{0, 1, 2, 3, 4, 5, 8, 13, 16} {
		dst := randomDense(rng, m, n)
		want := dst.Clone()
		AddMulTARows(dst, a, b, r)
		if r > 0 {
			ar := NewDense(r, m)
			br := NewDense(r, n)
			for i := 0; i < r; i++ {
				copy(ar.Row(i), a.Row(i))
				copy(br.Row(i), b.Row(i))
			}
			AddScaled(want, 1, MulTA(nil, ar, br))
		}
		if !dst.EqualApprox(want, 1e-11) {
			t.Fatalf("r=%d: AddMulTARows diverged from reference", r)
		}
	}
}

// TestPanelKernelsZeroAlloc pins the no-allocation contract both kernels are
// used under in the engine's block rebuild.
func TestPanelKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 3))
	a := randomDense(rng, 8, 200)
	b := randomDense(rng, 8, 6)
	syrk := NewDense(8, 8)
	dst := NewDense(200, 6)
	allocs := testing.AllocsPerRun(50, func() {
		SyrkRows(syrk, a, 7)
		AddMulTARows(dst, a, b, 7)
	})
	if allocs != 0 {
		t.Fatalf("panel kernels allocated %v times per run", allocs)
	}
}
