package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix. The zero value is an empty (0×0)
// matrix; use NewDense or NewDenseData to create one with a shape.
type Dense struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewDense returns a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData wraps data (row-major, length r*c) as an r×c matrix without
// copying. The caller must not alias data afterwards unless it intends the
// sharing.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the row and column counts.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the row count.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice sharing the matrix storage.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic("mat: row index out of range")
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// SetRow copies v into row i. It panics if len(v) != Cols().
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic("mat: SetRow length mismatch")
	}
	copy(m.Row(i), v)
}

// Col copies column j into dst (allocated when nil) and returns it.
func (m *Dense) Col(j int, dst []float64) []float64 {
	if j < 0 || j >= m.cols {
		panic("mat: col index out of range")
	}
	if dst == nil {
		dst = make([]float64, m.rows)
	}
	if len(dst) != m.rows {
		panic("mat: Col dst length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = m.data[i*m.cols+j]
	}
	return dst
}

// SetCol copies v into column j. It panics if len(v) != Rows().
func (m *Dense) SetCol(j int, v []float64) {
	if j < 0 || j >= m.cols {
		panic("mat: col index out of range")
	}
	if len(v) != m.rows {
		panic("mat: SetCol length mismatch")
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Data returns the backing row-major slice. Mutating it mutates the matrix.
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// CopyFrom copies the contents of src into m. Shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic("mat: CopyFrom shape mismatch")
	}
	copy(m.data, src.data)
}

// Zero sets every entry to 0.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// ScaleAll multiplies every entry by alpha.
func (m *Dense) ScaleAll(alpha float64) {
	for i := range m.data {
		m.data[i] *= alpha
	}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range ri {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// MaxAbs returns the maximum absolute entry (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 { return Norm2(m.data) }

// EqualApprox reports whether m and b have the same shape and agree
// entrywise within tol.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	return EqualApproxVec(m.data, b.data, tol)
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// SliceCols returns a new matrix holding columns [j0, j1) of m.
func (m *Dense) SliceCols(j0, j1 int) *Dense {
	if j0 < 0 || j1 > m.cols || j0 > j1 {
		panic("mat: SliceCols range out of bounds")
	}
	s := NewDense(m.rows, j1-j0)
	for i := 0; i < m.rows; i++ {
		copy(s.Row(i), m.Row(i)[j0:j1])
	}
	return s
}

// String renders m for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Dense %dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows && i < maxShow; i++ {
		for j := 0; j < m.cols && j < maxShow; j++ {
			fmt.Fprintf(&b, "% .4g\t", m.At(i, j))
		}
		if m.cols > maxShow {
			b.WriteString("...")
		}
		b.WriteByte('\n')
	}
	if m.rows > maxShow {
		b.WriteString("...\n")
	}
	return b.String()
}
